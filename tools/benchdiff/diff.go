package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Benchmark and Report mirror the bench2json output schema; benchdiff only
// reads the fields it compares.
type Benchmark struct {
	Name    string             `json:"name"`
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the envelope of one archived benchmark run.
type Report struct {
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Row is the comparison of one benchmark across the two runs.
type Row struct {
	Name      string
	OldNs     float64
	NewNs     float64
	Speedup   float64 // old/new; >1 means the new run is faster
	OldAllocs float64
	NewAllocs float64
	Regressed bool
}

func load(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &rep, nil
}

// Diff compares every benchmark present in both reports, in name order. A
// benchmark regresses when its ns/op grew past threshold AND by more than
// noise nanoseconds — the absolute floor keeps timer jitter on
// sub-microsecond benchmarks from tripping a purely relative gate — or
// when its allocs/op grew by more than max(allocSlack, allocSlackPct% of
// the old count). The relative term matters for the whole-run experiment
// benchmarks, whose tens of thousands of allocs/op shift by a constant
// handful whenever a setup path gains an object; a zero-alloc micro
// benchmark has old = 0, so both terms vanish and it stays gated at
// exactly zero. Benchmarks present in only one report are skipped:
// additions and removals are not regressions.
func Diff(old, new_ *Report, threshold, allocSlack, allocSlackPct, noise float64) (rows []Row, regressions int) {
	byName := fold(old)
	for _, nb := range fold(new_).ordered {
		ob, ok := byName.m[nb.Name]
		if !ok {
			continue
		}
		r := Row{
			Name:      nb.Name,
			OldNs:     ob.Metrics["ns/op"],
			NewNs:     nb.Metrics["ns/op"],
			OldAllocs: ob.Metrics["allocs/op"],
			NewAllocs: nb.Metrics["allocs/op"],
		}
		if r.NewNs > 0 {
			r.Speedup = r.OldNs / r.NewNs
		}
		if r.OldNs > 0 && r.NewNs > r.OldNs*threshold && r.NewNs-r.OldNs > noise {
			r.Regressed = true
		}
		slack := allocSlack
		if rel := r.OldAllocs * allocSlackPct / 100; rel > slack {
			slack = rel
		}
		if r.NewAllocs > r.OldAllocs+slack {
			r.Regressed = true
		}
		if r.Regressed {
			regressions++
		}
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Name < rows[j].Name })
	return rows, regressions
}

// folded is a report reduced to one entry per benchmark name.
type folded struct {
	m       map[string]Benchmark
	ordered []Benchmark
}

// fold collapses repeated entries for the same benchmark (a `-count=N`
// run) into one, keeping the minimum of each compared metric: the best
// observed sample measures the code's cost, the rest measure scheduler
// interference, so comparing minima makes the gate robust on noisy hosts.
func fold(rep *Report) folded {
	f := folded{m: make(map[string]Benchmark, len(rep.Benchmarks))}
	for _, b := range rep.Benchmarks {
		prev, ok := f.m[b.Name]
		if !ok {
			f.m[b.Name] = b
			f.ordered = append(f.ordered, b)
			continue
		}
		merged := Benchmark{Name: b.Name, Metrics: map[string]float64{}}
		for k, v := range prev.Metrics {
			merged.Metrics[k] = v
		}
		for _, k := range []string{"ns/op", "allocs/op"} {
			v, ok := b.Metrics[k]
			if !ok {
				continue
			}
			if pv, ok := merged.Metrics[k]; !ok || v < pv {
				merged.Metrics[k] = v
			}
		}
		f.m[b.Name] = merged
		for i := range f.ordered {
			if f.ordered[i].Name == b.Name {
				f.ordered[i] = merged
				break
			}
		}
	}
	return f
}
