package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Benchmark and Report mirror the bench2json output schema; benchdiff only
// reads the fields it compares.
type Benchmark struct {
	Name    string             `json:"name"`
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the envelope of one archived benchmark run.
type Report struct {
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Row is the comparison of one benchmark across the two runs.
type Row struct {
	Name      string
	OldNs     float64
	NewNs     float64
	Speedup   float64 // old/new; >1 means the new run is faster
	OldAllocs float64
	NewAllocs float64
	OldBytes  float64
	NewBytes  float64
	Regressed bool
}

func load(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &rep, nil
}

// Gates holds the regression thresholds of one Diff run. Each metric pairs
// a relative threshold with an absolute floor: the ratio catches real
// slowdowns, the floor keeps jitter on tiny baselines from tripping a
// purely relative gate.
type Gates struct {
	// Threshold is the max allowed ns/op ratio new/old (1.10 = 10% slower);
	// Noise is the absolute ns/op growth a regression must also exceed.
	Threshold float64
	Noise     float64

	// AllocSlack and AllocSlackPct allow allocs/op to grow by
	// max(AllocSlack, AllocSlackPct% of the old count). The relative term
	// absorbs a constant handful of setup objects on whole-run benchmarks;
	// a zero-alloc benchmark has old = 0, so both terms vanish and it stays
	// gated at exactly zero.
	AllocSlack    float64
	AllocSlackPct float64

	// BopThreshold and BopSlack gate B/op the same way Threshold/Noise gate
	// ns/op: a regression must exceed the ratio AND grow by more than
	// BopSlack absolute bytes. BopThreshold = 0 disables the bytes gate
	// (archives older than the B/op column lack the metric entirely).
	BopThreshold float64
	BopSlack     float64
}

// Diff compares every benchmark present in both reports, in name order,
// flagging regressions per the Gates documentation. Benchmarks present in
// only one report are skipped: additions and removals are not regressions.
func Diff(old, new_ *Report, g Gates) (rows []Row, regressions int) {
	byName := fold(old)
	for _, nb := range fold(new_).ordered {
		ob, ok := byName.m[nb.Name]
		if !ok {
			continue
		}
		r := Row{
			Name:      nb.Name,
			OldNs:     ob.Metrics["ns/op"],
			NewNs:     nb.Metrics["ns/op"],
			OldAllocs: ob.Metrics["allocs/op"],
			NewAllocs: nb.Metrics["allocs/op"],
			OldBytes:  ob.Metrics["B/op"],
			NewBytes:  nb.Metrics["B/op"],
		}
		if r.NewNs > 0 {
			r.Speedup = r.OldNs / r.NewNs
		}
		if r.OldNs > 0 && r.NewNs > r.OldNs*g.Threshold && r.NewNs-r.OldNs > g.Noise {
			r.Regressed = true
		}
		slack := g.AllocSlack
		if rel := r.OldAllocs * g.AllocSlackPct / 100; rel > slack {
			slack = rel
		}
		if r.NewAllocs > r.OldAllocs+slack {
			r.Regressed = true
		}
		if g.BopThreshold > 0 && r.OldBytes > 0 &&
			r.NewBytes > r.OldBytes*g.BopThreshold && r.NewBytes-r.OldBytes > g.BopSlack {
			r.Regressed = true
		}
		if r.Regressed {
			regressions++
		}
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Name < rows[j].Name })
	return rows, regressions
}

// folded is a report reduced to one entry per benchmark name.
type folded struct {
	m       map[string]Benchmark
	ordered []Benchmark
}

// fold collapses repeated entries for the same benchmark (a `-count=N`
// run) into one, keeping the minimum of each compared metric: the best
// observed sample measures the code's cost, the rest measure scheduler
// interference, so comparing minima makes the gate robust on noisy hosts.
func fold(rep *Report) folded {
	f := folded{m: make(map[string]Benchmark, len(rep.Benchmarks))}
	for _, b := range rep.Benchmarks {
		prev, ok := f.m[b.Name]
		if !ok {
			f.m[b.Name] = b
			f.ordered = append(f.ordered, b)
			continue
		}
		merged := Benchmark{Name: b.Name, Metrics: map[string]float64{}}
		for k, v := range prev.Metrics {
			merged.Metrics[k] = v
		}
		for _, k := range []string{"ns/op", "allocs/op", "B/op"} {
			v, ok := b.Metrics[k]
			if !ok {
				continue
			}
			if pv, ok := merged.Metrics[k]; !ok || v < pv {
				merged.Metrics[k] = v
			}
		}
		f.m[b.Name] = merged
		for i := range f.ordered {
			if f.ordered[i].Name == b.Name {
				f.ordered[i] = merged
				break
			}
		}
	}
	return f
}
