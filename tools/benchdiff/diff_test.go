package main

import "testing"

func rep(bs ...Benchmark) *Report { return &Report{Benchmarks: bs} }

func bench(name string, ns, allocs float64) Benchmark {
	return Benchmark{Name: name, Metrics: map[string]float64{"ns/op": ns, "allocs/op": allocs}}
}

func TestDiffSpeedupAndOrder(t *testing.T) {
	old := rep(bench("Zeta", 100, 4), bench("Alpha", 200, 8))
	new_ := rep(bench("Alpha", 100, 8), bench("Zeta", 100, 4))
	rows, regressions := Diff(old, new_, 1.10, 0, 0, 0)
	if regressions != 0 {
		t.Fatalf("regressions = %d, want 0", regressions)
	}
	if len(rows) != 2 || rows[0].Name != "Alpha" || rows[1].Name != "Zeta" {
		t.Fatalf("rows not sorted by name: %+v", rows)
	}
	if rows[0].Speedup != 2.0 {
		t.Fatalf("Alpha speedup = %f, want 2", rows[0].Speedup)
	}
}

func TestDiffNsRegression(t *testing.T) {
	old := rep(bench("A", 100, 0))
	// 15% slower with a 10% threshold: regression.
	rows, regressions := Diff(old, rep(bench("A", 115, 0)), 1.10, 0, 0, 0)
	if regressions != 1 || !rows[0].Regressed {
		t.Fatalf("want ns/op regression, got %+v", rows)
	}
	// 5% slower is inside the threshold.
	_, regressions = Diff(old, rep(bench("A", 105, 0)), 1.10, 0, 0, 0)
	if regressions != 0 {
		t.Fatalf("5%% slowdown flagged at 10%% threshold")
	}
}

func TestDiffAllocRegression(t *testing.T) {
	old := rep(bench("A", 100, 2))
	_, regressions := Diff(old, rep(bench("A", 100, 3)), 1.10, 0, 0, 0)
	if regressions != 1 {
		t.Fatal("alloc growth not flagged with zero slack")
	}
	_, regressions = Diff(old, rep(bench("A", 100, 3)), 1.10, 1, 0, 0)
	if regressions != 0 {
		t.Fatal("alloc growth inside slack flagged")
	}
}

// The relative slack tolerates a constant handful of setup allocations on
// whole-run benchmarks (tens of thousands of allocs/op) while keeping
// zero-alloc benchmarks gated at exactly zero: any percentage of 0 is 0.
func TestDiffAllocRelativeSlack(t *testing.T) {
	old := rep(bench("Macro", 1e6, 90000), bench("Micro", 100, 0))
	// +30 allocs on 90k is inside 0.5%; +1 alloc on a zero-alloc
	// benchmark is always a regression.
	_, regressions := Diff(old, rep(bench("Macro", 1e6, 90030), bench("Micro", 100, 1)), 1.10, 0, 0.5, 0)
	if regressions != 1 {
		t.Fatalf("regressions = %d, want 1 (only the zero-alloc benchmark)", regressions)
	}
	// +600 allocs on 90k exceeds 0.5% (450): regression.
	_, regressions = Diff(old, rep(bench("Macro", 1e6, 90600), bench("Micro", 100, 0)), 1.10, 0, 0.5, 0)
	if regressions != 1 {
		t.Fatal("alloc growth past the relative slack not flagged")
	}
	// The larger of the absolute and relative terms wins.
	small := rep(bench("Small", 100, 4))
	_, regressions = Diff(small, rep(bench("Small", 100, 5)), 1.10, 1, 0.5, 0)
	if regressions != 0 {
		t.Fatal("growth inside the absolute slack flagged despite tiny relative term")
	}
}

// A relative slowdown under the absolute noise floor is jitter, not a
// regression; past the floor the ratio threshold governs again.
func TestDiffNoiseFloor(t *testing.T) {
	old := rep(bench("Micro", 80, 0))
	_, regressions := Diff(old, rep(bench("Micro", 100, 0)), 1.10, 0, 0, 50)
	if regressions != 0 {
		t.Fatal("20ns growth under a 50ns floor flagged")
	}
	_, regressions = Diff(old, rep(bench("Micro", 140, 0)), 1.10, 0, 0, 50)
	if regressions != 1 {
		t.Fatal("60ns growth past the floor not flagged")
	}
}

// A -count=N archive holds repeated entries per benchmark; the diff folds
// them to the per-metric minimum before comparing.
func TestDiffFoldsRepeatedEntries(t *testing.T) {
	old := rep(bench("A", 100, 3), bench("A", 90, 2), bench("A", 120, 3))
	new_ := rep(bench("A", 200, 2), bench("A", 95, 2))
	rows, regressions := Diff(old, new_, 1.10, 0, 0, 0)
	if len(rows) != 1 {
		t.Fatalf("rows = %+v, want 1 folded row", rows)
	}
	r := rows[0]
	if r.OldNs != 90 || r.NewNs != 95 || r.OldAllocs != 2 || r.NewAllocs != 2 {
		t.Fatalf("folded minima wrong: %+v", r)
	}
	if regressions != 0 {
		t.Fatal("95 vs 90 within 10%: no regression expected")
	}
}

func TestDiffSkipsUnmatched(t *testing.T) {
	old := rep(bench("OnlyOld", 100, 0), bench("Common", 100, 0))
	rows, regressions := Diff(old, rep(bench("Common", 50, 0), bench("OnlyNew", 1, 0)), 1.10, 0, 0, 0)
	if len(rows) != 1 || rows[0].Name != "Common" || regressions != 0 {
		t.Fatalf("unmatched benchmarks not skipped: %+v", rows)
	}
}
