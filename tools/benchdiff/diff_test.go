package main

import "testing"

func rep(bs ...Benchmark) *Report { return &Report{Benchmarks: bs} }

func bench(name string, ns, allocs float64) Benchmark {
	return Benchmark{Name: name, Metrics: map[string]float64{"ns/op": ns, "allocs/op": allocs}}
}

func benchB(name string, ns, allocs, bytes float64) Benchmark {
	b := bench(name, ns, allocs)
	b.Metrics["B/op"] = bytes
	return b
}

func TestDiffSpeedupAndOrder(t *testing.T) {
	old := rep(bench("Zeta", 100, 4), bench("Alpha", 200, 8))
	new_ := rep(bench("Alpha", 100, 8), bench("Zeta", 100, 4))
	rows, regressions := Diff(old, new_, Gates{Threshold: 1.10})
	if regressions != 0 {
		t.Fatalf("regressions = %d, want 0", regressions)
	}
	if len(rows) != 2 || rows[0].Name != "Alpha" || rows[1].Name != "Zeta" {
		t.Fatalf("rows not sorted by name: %+v", rows)
	}
	if rows[0].Speedup != 2.0 {
		t.Fatalf("Alpha speedup = %f, want 2", rows[0].Speedup)
	}
}

func TestDiffNsRegression(t *testing.T) {
	old := rep(bench("A", 100, 0))
	// 15% slower with a 10% threshold: regression.
	rows, regressions := Diff(old, rep(bench("A", 115, 0)), Gates{Threshold: 1.10})
	if regressions != 1 || !rows[0].Regressed {
		t.Fatalf("want ns/op regression, got %+v", rows)
	}
	// 5% slower is inside the threshold.
	_, regressions = Diff(old, rep(bench("A", 105, 0)), Gates{Threshold: 1.10})
	if regressions != 0 {
		t.Fatalf("5%% slowdown flagged at 10%% threshold")
	}
}

func TestDiffAllocRegression(t *testing.T) {
	old := rep(bench("A", 100, 2))
	_, regressions := Diff(old, rep(bench("A", 100, 3)), Gates{Threshold: 1.10})
	if regressions != 1 {
		t.Fatal("alloc growth not flagged with zero slack")
	}
	_, regressions = Diff(old, rep(bench("A", 100, 3)), Gates{Threshold: 1.10, AllocSlack: 1})
	if regressions != 0 {
		t.Fatal("alloc growth inside slack flagged")
	}
}

// The relative slack tolerates a constant handful of setup allocations on
// whole-run benchmarks (tens of thousands of allocs/op) while keeping
// zero-alloc benchmarks gated at exactly zero: any percentage of 0 is 0.
func TestDiffAllocRelativeSlack(t *testing.T) {
	old := rep(bench("Macro", 1e6, 90000), bench("Micro", 100, 0))
	// +30 allocs on 90k is inside 0.5%; +1 alloc on a zero-alloc
	// benchmark is always a regression.
	_, regressions := Diff(old, rep(bench("Macro", 1e6, 90030), bench("Micro", 100, 1)), Gates{Threshold: 1.10, AllocSlackPct: 0.5})
	if regressions != 1 {
		t.Fatalf("regressions = %d, want 1 (only the zero-alloc benchmark)", regressions)
	}
	// +600 allocs on 90k exceeds 0.5% (450): regression.
	_, regressions = Diff(old, rep(bench("Macro", 1e6, 90600), bench("Micro", 100, 0)), Gates{Threshold: 1.10, AllocSlackPct: 0.5})
	if regressions != 1 {
		t.Fatal("alloc growth past the relative slack not flagged")
	}
	// The larger of the absolute and relative terms wins.
	small := rep(bench("Small", 100, 4))
	_, regressions = Diff(small, rep(bench("Small", 100, 5)), Gates{Threshold: 1.10, AllocSlack: 1, AllocSlackPct: 0.5})
	if regressions != 0 {
		t.Fatal("growth inside the absolute slack flagged despite tiny relative term")
	}
}

// A relative slowdown under the absolute noise floor is jitter, not a
// regression; past the floor the ratio threshold governs again.
func TestDiffNoiseFloor(t *testing.T) {
	old := rep(bench("Micro", 80, 0))
	_, regressions := Diff(old, rep(bench("Micro", 100, 0)), Gates{Threshold: 1.10, Noise: 50})
	if regressions != 0 {
		t.Fatal("20ns growth under a 50ns floor flagged")
	}
	_, regressions = Diff(old, rep(bench("Micro", 140, 0)), Gates{Threshold: 1.10, Noise: 50})
	if regressions != 1 {
		t.Fatal("60ns growth past the floor not flagged")
	}
}

// The B/op gate mirrors the ns/op one: a regression must exceed the ratio
// AND grow by more than the absolute slack, so small-footprint benchmarks
// (tens of bytes) never trip on a couple of stray bytes while whole-run
// benchmarks (hundreds of megabytes) are held to the ratio.
func TestDiffBytesRegression(t *testing.T) {
	g := Gates{Threshold: 1.10, AllocSlackPct: 100, BopThreshold: 1.10, BopSlack: 256}
	old := rep(benchB("Macro", 1e6, 1000, 1e8))
	// +50% bytes: regression.
	rows, regressions := Diff(old, rep(benchB("Macro", 1e6, 1000, 1.5e8)), g)
	if regressions != 1 || !rows[0].Regressed {
		t.Fatalf("want B/op regression, got %+v", rows)
	}
	if rows[0].OldBytes != 1e8 || rows[0].NewBytes != 1.5e8 {
		t.Fatalf("B/op columns wrong: %+v", rows[0])
	}
	// +5% bytes is inside the ratio.
	_, regressions = Diff(old, rep(benchB("Macro", 1e6, 1000, 1.05e8)), g)
	if regressions != 0 {
		t.Fatal("5% B/op growth flagged at a 10% threshold")
	}
	// A tiny benchmark doubling from 40 to 80 bytes is under the absolute
	// slack floor: jitter from a resized buffer, not a regression.
	tiny := rep(benchB("Tiny", 100, 1, 40))
	_, regressions = Diff(tiny, rep(benchB("Tiny", 100, 1, 80)), g)
	if regressions != 0 {
		t.Fatal("40-byte growth under a 256-byte floor flagged")
	}
	// Past the floor the ratio governs: 40 -> 400 bytes regresses.
	_, regressions = Diff(tiny, rep(benchB("Tiny", 100, 1, 400)), g)
	if regressions != 1 {
		t.Fatal("10x B/op growth past the floor not flagged")
	}
}

// BopThreshold = 0 disables the bytes gate entirely, and archives written
// before the B/op column (metric absent, so it reads as 0) never trip it.
func TestDiffBytesGateDisabledOrAbsent(t *testing.T) {
	old := rep(benchB("A", 100, 0, 100))
	_, regressions := Diff(old, rep(benchB("A", 100, 0, 1e6)), Gates{Threshold: 1.10})
	if regressions != 0 {
		t.Fatal("bytes growth flagged with the gate disabled")
	}
	// Old archive without B/op: OldBytes = 0, gate stays quiet.
	_, regressions = Diff(rep(bench("A", 100, 0)), rep(benchB("A", 100, 0, 1e6)),
		Gates{Threshold: 1.10, BopThreshold: 1.10, BopSlack: 256})
	if regressions != 0 {
		t.Fatal("missing old B/op metric treated as a regression")
	}
}

// A -count=N archive holds repeated entries per benchmark; the diff folds
// them to the per-metric minimum before comparing.
func TestDiffFoldsRepeatedEntries(t *testing.T) {
	old := rep(benchB("A", 100, 3, 500), benchB("A", 90, 2, 600), benchB("A", 120, 3, 450))
	new_ := rep(benchB("A", 200, 2, 470), benchB("A", 95, 2, 480))
	rows, regressions := Diff(old, new_, Gates{Threshold: 1.10})
	if len(rows) != 1 {
		t.Fatalf("rows = %+v, want 1 folded row", rows)
	}
	r := rows[0]
	if r.OldNs != 90 || r.NewNs != 95 || r.OldAllocs != 2 || r.NewAllocs != 2 {
		t.Fatalf("folded minima wrong: %+v", r)
	}
	if r.OldBytes != 450 || r.NewBytes != 470 {
		t.Fatalf("folded B/op minima wrong: %+v", r)
	}
	if regressions != 0 {
		t.Fatal("95 vs 90 within 10%: no regression expected")
	}
}

func TestDiffSkipsUnmatched(t *testing.T) {
	old := rep(bench("OnlyOld", 100, 0), bench("Common", 100, 0))
	rows, regressions := Diff(old, rep(bench("Common", 50, 0), bench("OnlyNew", 1, 0)), Gates{Threshold: 1.10})
	if len(rows) != 1 || rows[0].Name != "Common" || regressions != 0 {
		t.Fatalf("unmatched benchmarks not skipped: %+v", rows)
	}
}
