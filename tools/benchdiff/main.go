// Command benchdiff compares two archived benchmark JSON files (the
// bench2json output that `make bench` writes) and fails when the new run
// regresses past a threshold, so performance changes are gated the same
// way correctness is: `make benchdiff OLD=BENCH_pr4.json NEW=BENCH_pr5.json`.
//
// Archives produced with -count=N hold repeated entries per benchmark;
// those fold to the per-metric minimum (the best sample measures the
// code, the rest measure scheduler interference). For every benchmark
// present in both files it reports the ns/op speedup (old/new, so >1 is
// faster) plus the allocs/op and B/op deltas. The exit status is non-zero
// if any common benchmark got slower than -threshold allows (and by more
// than the -noise jitter floor in absolute ns/op), grew its allocations
// beyond max(-alloc-slack, -alloc-slack-pct percent of the old count) —
// the relative term absorbs constant setup allocations on whole-run
// benchmarks while zero-alloc benchmarks stay gated at zero — or grew its
// bytes per op past the -bop-threshold ratio and by more than -bop-slack
// absolute bytes (the same ratio+floor shape as the ns/op gate).
//
// Usage:
//
//	benchdiff [-threshold 1.10] [-alloc-slack 0] [-alloc-slack-pct 0.5] [-noise 50] [-bop-threshold 1.10] [-bop-slack 256] OLD.json NEW.json
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	var g Gates
	flag.Float64Var(&g.Threshold, "threshold", 1.10, "max allowed ns/op ratio new/old before failing (1.10 = 10% slower)")
	flag.Float64Var(&g.AllocSlack, "alloc-slack", 0, "absolute allocs/op increase allowed before failing")
	flag.Float64Var(&g.AllocSlackPct, "alloc-slack-pct", 0.5, "relative allocs/op increase allowed, as a percent of the old count (zero-alloc benchmarks are unaffected: 0.5% of 0 is 0)")
	flag.Float64Var(&g.Noise, "noise", 50, "absolute ns/op growth a regression must also exceed (jitter floor for sub-microsecond benchmarks)")
	flag.Float64Var(&g.BopThreshold, "bop-threshold", 1.10, "max allowed B/op ratio new/old before failing (0 disables the bytes gate)")
	flag.Float64Var(&g.BopSlack, "bop-slack", 256, "absolute B/op growth a regression must also exceed (floor for small-footprint benchmarks)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: benchdiff [flags] OLD.json NEW.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}

	old, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
	new_, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}

	rows, regressions := Diff(old, new_, g)
	if len(rows) == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no benchmarks in common")
		os.Exit(1)
	}
	fmt.Printf("%-40s %14s %14s %8s %12s %12s %14s %14s\n",
		"benchmark", "old ns/op", "new ns/op", "speedup", "old allocs", "new allocs", "old B/op", "new B/op")
	for _, r := range rows {
		mark := ""
		if r.Regressed {
			mark = "  << REGRESSION"
		}
		fmt.Printf("%-40s %14.0f %14.0f %7.2fx %12.0f %12.0f %14.0f %14.0f%s\n",
			r.Name, r.OldNs, r.NewNs, r.Speedup, r.OldAllocs, r.NewAllocs, r.OldBytes, r.NewBytes, mark)
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d benchmark(s) regressed past threshold %.2f (alloc slack %.0f, %.2g%%; B/op threshold %.2f, slack %.0f)\n",
			regressions, g.Threshold, g.AllocSlack, g.AllocSlackPct, g.BopThreshold, g.BopSlack)
		os.Exit(1)
	}
}
