// Command bench2json converts `go test -bench` text output into a JSON
// document, so benchmark results can be archived and diffed alongside the
// code (`make bench` writes BENCH_pr3.json). The raw text stays the
// benchstat input; the JSON is for machines.
//
// Usage:
//
//	go test -bench . -benchmem -run '^$' . | bench2json -o BENCH.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	report, err := Parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench2json:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
}
