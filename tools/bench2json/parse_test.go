package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: heteromem
cpu: Test CPU @ 3.00GHz
BenchmarkTranslationTableLookup-8   	50000000	        25.3 ns/op	       0 B/op	       0 allocs/op
BenchmarkFig11Designs-8    	       2	 612345678 ns/op	        88.5 N-minus-Live-cycles	12345 B/op	  678 allocs/op
BenchmarkTemporalObservabilityOff 	  300000	      4100 ns/op
PASS
ok  	heteromem	12.345s
`

func TestParse(t *testing.T) {
	rep, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.Pkg != "heteromem" {
		t.Fatalf("envelope wrong: %+v", rep)
	}
	if rep.CPU != "Test CPU @ 3.00GHz" {
		t.Fatalf("cpu wrong: %q", rep.CPU)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(rep.Benchmarks))
	}

	b := rep.Benchmarks[0]
	if b.Name != "TranslationTableLookup" || b.Procs != 8 || b.Iterations != 50000000 {
		t.Fatalf("first benchmark wrong: %+v", b)
	}
	if b.Metrics["ns/op"] != 25.3 || b.Metrics["allocs/op"] != 0 {
		t.Fatalf("first benchmark metrics wrong: %+v", b.Metrics)
	}

	// Custom ReportMetric units come through as ordinary metrics.
	if got := rep.Benchmarks[1].Metrics["N-minus-Live-cycles"]; got != 88.5 {
		t.Fatalf("custom metric = %v, want 88.5", got)
	}

	// No -P suffix means GOMAXPROCS 1.
	b = rep.Benchmarks[2]
	if b.Name != "TemporalObservabilityOff" || b.Procs != 1 || b.Metrics["ns/op"] != 4100 {
		t.Fatalf("third benchmark wrong: %+v", b)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"BenchmarkX-4",               // no iteration count
		"BenchmarkX-4 abc 1 ns/op",   // bad iteration count
		"BenchmarkX-4 10 1 ns/op 2",  // unpaired value/unit
		"BenchmarkX-4 10 oops ns/op", // bad metric value
	} {
		if _, err := Parse(strings.NewReader(bad + "\n")); err == nil {
			t.Errorf("Parse accepted malformed line %q", bad)
		}
	}
}

func TestParseEmpty(t *testing.T) {
	rep, err := Parse(strings.NewReader("PASS\nok x 1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 0 {
		t.Fatalf("expected no benchmarks, got %+v", rep.Benchmarks)
	}
}
