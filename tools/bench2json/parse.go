package main

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name       string             `json:"name"`       // without the Benchmark prefix or -P suffix
	Procs      int                `json:"procs"`      // GOMAXPROCS suffix (1 if absent)
	Iterations int64              `json:"iterations"` // b.N
	Metrics    map[string]float64 `json:"metrics"`    // unit -> value (ns/op, B/op, custom ReportMetric units)
}

// Report is the full parsed `go test -bench` run.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Parse reads `go test -bench` text output. Header lines (goos/goarch/
// pkg/cpu) fill the report envelope; each Benchmark... line becomes one
// entry with every value/unit pair captured, so -benchmem columns and
// custom b.ReportMetric units come through unchanged. Unrecognized lines
// (PASS, ok, test logs) are skipped.
func Parse(r io.Reader) (*Report, error) {
	rep := &Report{Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkg = strings.TrimPrefix(line, "pkg: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		b, err := parseLine(line)
		if err != nil {
			return nil, err
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rep, nil
}

// parseLine parses one `BenchmarkName-P  N  v1 u1  v2 u2 ...` line.
func parseLine(line string) (Benchmark, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Benchmark{}, fmt.Errorf("short benchmark line: %q", line)
	}
	b := Benchmark{Procs: 1, Metrics: map[string]float64{}}
	b.Name = strings.TrimPrefix(fields[0], "Benchmark")
	if i := strings.LastIndex(b.Name, "-"); i >= 0 {
		if p, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Name, b.Procs = b.Name[:i], p
		}
	}
	n, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, fmt.Errorf("bad iteration count in %q: %v", line, err)
	}
	b.Iterations = n
	rest := fields[2:]
	if len(rest)%2 != 0 {
		return Benchmark{}, fmt.Errorf("unpaired value/unit in %q", line)
	}
	for i := 0; i < len(rest); i += 2 {
		v, err := strconv.ParseFloat(rest[i], 64)
		if err != nil {
			return Benchmark{}, fmt.Errorf("bad metric value %q in %q: %v", rest[i], line, err)
		}
		b.Metrics[rest[i+1]] = v
	}
	return b, nil
}
