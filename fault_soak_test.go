package heteromem

import (
	"os"
	"reflect"
	"strconv"
	"testing"
)

// soakEnv reads an integer knob for the fault soak, falling back to def.
// `make soak` randomizes SOAK_SEED; plain `go test` uses the fixed default
// so the tier-1 suite stays deterministic.
func soakEnv(t *testing.T, name string, def uint64) uint64 {
	s := os.Getenv(name)
	if s == "" {
		return def
	}
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		t.Fatalf("%s=%q: %v", name, s, err)
	}
	return v
}

// TestFaultSoak is the PR's acceptance campaign: a 1e-4 fault rate on
// every injection point over an audited million-record run of each
// migration design. The run must complete without error (no invariant
// violation ever surfaces through Err), and the disposition ledger must
// balance — every injected fault ends in exactly one of retried,
// rolled-back, retired, or degraded.
func TestFaultSoak(t *testing.T) {
	records := soakEnv(t, "SOAK_RECORDS", 1_000_000)
	fseed := soakEnv(t, "SOAK_SEED", 7)
	for _, d := range []struct {
		name   string
		design Design
	}{
		{"n", DesignN},
		{"n-1", DesignN1},
		{"live", DesignLive},
	} {
		t.Run(d.name, func(t *testing.T) {
			sys, err := New(Config{
				Migration: Migration{Enabled: true, Design: d.design, SwapInterval: 1000},
				Audit:     true,
				Fault: FaultConfig{
					Seed:       fseed,
					DeviceRate: 1e-4,
					CopyRate:   1e-4,
					BulkRate:   1e-4,
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			res, err := sys.RunWorkload("pgbench", 1, records)
			if err != nil {
				t.Fatal(err)
			}
			f := res.Faults
			if f == nil {
				t.Fatal("fault campaign produced no ledger")
			}
			if f.Injected == 0 {
				t.Fatalf("no faults injected over %d records", records)
			}
			if !f.Balanced(f.Injected) {
				t.Fatalf("disposition ledger unbalanced: %+v", f)
			}
			t.Logf("design %s: %+v", d.name, f)
		})
	}
}

// TestFaultConfigZeroValueIsInert pins the compatibility contract: a run
// with the zero FaultConfig — and one whose config only sets fields that
// do not enable injection — must produce results identical to each other
// and carry no fault ledger. The fault layer must be invisible unless a
// rate or schedule turns it on.
func TestFaultConfigZeroValueIsInert(t *testing.T) {
	run := func(fc FaultConfig) Result {
		sys, err := New(Config{
			Migration: Migration{Enabled: true, Design: DesignLive, SwapInterval: 1000},
			Audit:     true,
			Fault:     fc,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.RunWorkload("pgbench", 1, 200_000)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	zero := run(FaultConfig{})
	seedOnly := run(FaultConfig{Seed: 99, RetryBudget: 5, RetireAfter: 2})
	if zero.Faults != nil || seedOnly.Faults != nil {
		t.Fatalf("inert fault config produced a ledger: %+v / %+v", zero.Faults, seedOnly.Faults)
	}
	if !reflect.DeepEqual(zero, seedOnly) {
		t.Fatal("disabled fault injection perturbed simulation results")
	}
}
