package heteromem

import (
	"heteromem/internal/workload"
)

// WorkloadSpec describes a synthetic workload as a weighted mixture of
// access-pattern components; use the *Maker helpers to build components.
type WorkloadSpec = workload.Spec

// WorkloadComponent is one weighted stream of a WorkloadSpec.
type WorkloadComponent = workload.Component

// NewGenerator builds a deterministic trace source for a custom spec.
func NewGenerator(spec WorkloadSpec, seed int64) (*workload.Generator, error) {
	return workload.New(spec, seed)
}

// MemoryWorkload returns the spec of a built-in Section IV workload so it
// can be inspected or modified.
func MemoryWorkload(name string) (WorkloadSpec, error) { return workload.MemorySpec(name) }

// Pattern makers re-exported for custom workloads. Each returns a
// WorkloadComponent.Make function.
var (
	// SeqMaker: sequential sweep with the given stride.
	SeqMaker = workload.SeqMaker
	// StridedMaker: transposed-dimension walk (stride, unit).
	StridedMaker = workload.StridedMaker
	// ZipfMaker: Zipf-skewed blocks (block size, exponent, scatter).
	ZipfMaker = workload.ZipfMaker
	// UniformMaker: uniform random touches.
	UniformMaker = workload.UniformMaker
	// ChaseMaker: pointer-chase walk.
	ChaseMaker = workload.ChaseMaker
	// DriftMaker: wrap a maker so its hot region moves (span, period).
	DriftMaker = workload.DriftMaker
	// VCycleMaker: multigrid V-cycle (levels, accesses per visit).
	VCycleMaker = workload.VCycleMaker
)
