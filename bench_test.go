package heteromem

// The benchmark harness: one testing.B target per table and figure of the
// paper's evaluation (scaled down so `go test -bench=.` completes in
// minutes; run cmd/hmsim for full-scale reproductions), plus the ablation
// benches DESIGN.md calls out and microbenchmarks of the core data paths.

import (
	"context"
	"io"
	"testing"

	"heteromem/internal/addr"
	"heteromem/internal/core"
	"heteromem/internal/dram"
	"heteromem/internal/experiments"
	"heteromem/internal/memctrl"
	"heteromem/internal/sched"
	"heteromem/internal/scheme"
	"heteromem/internal/sim"
	"heteromem/internal/trace"
	"heteromem/internal/workload"

	iconfig "heteromem/internal/config"
)

// benchParams scales experiment drivers for benchmarking.
func benchParams(records uint64, wls ...string) experiments.Params {
	return experiments.Params{Records: records, Warmup: records / 2, Seed: 1, Workloads: wls}
}

// ---- Section II ----

func BenchmarkTable1Footprints(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Table1(context.Background(), io.Discard, experiments.Params{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2Config(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Table2(context.Background(), io.Discard, experiments.Params{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4MissRate(b *testing.B) {
	p := benchParams(120_000, "EP.C", "CG.C", "FT.C")
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig4Data(context.Background(), p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pts[len(pts)-1].MissRate*100, "missrate-1GB-%")
	}
}

func BenchmarkFig5IPC(b *testing.B) {
	p := benchParams(120_000, "EP.C", "FT.C")
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig5Data(context.Background(), p)
		if err != nil {
			b.Fatal(err)
		}
		_, _, all := rows[0].Improvement()
		b.ReportMetric(all, "ideal-ipc-gain-%")
	}
}

// ---- Section III ----

func BenchmarkFig10Overhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Fig10(context.Background(), io.Discard, experiments.Params{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(core.HardwareBits(1*GiB, 4*MiB, 4*KiB, addr.Bits)), "bits-at-4MB")
}

// ---- Section IV ----

func BenchmarkFig11Designs(b *testing.B) {
	p := benchParams(150_000, "SPEC2006")
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig11Data(context.Background(), p, 1000)
		if err != nil {
			b.Fatal(err)
		}
		var worstN, bestLive float64
		for _, pt := range pts {
			if pt.PageSize == 4*MiB {
				switch pt.Design {
				case core.DesignN:
					worstN = pt.MeanLatency
				case core.DesignLive:
					bestLive = pt.MeanLatency
				}
			}
		}
		b.ReportMetric(worstN-bestLive, "N-minus-Live-cycles")
	}
}

func benchFig1214(b *testing.B, interval uint64) {
	p := benchParams(200_000, "SPEC2006", "pgbench")
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig1214Data(context.Background(), p, interval)
		if err != nil {
			b.Fatal(err)
		}
		best := pts[0].MeanLatency
		for _, pt := range pts {
			if pt.MeanLatency < best {
				best = pt.MeanLatency
			}
		}
		b.ReportMetric(best, "best-latency-cycles")
	}
}

func BenchmarkFig12Interval1K(b *testing.B)   { benchFig1214(b, 1000) }
func BenchmarkFig13Interval10K(b *testing.B)  { benchFig1214(b, 10000) }
func BenchmarkFig14Interval100K(b *testing.B) { benchFig1214(b, 100000) }

func BenchmarkTable4Effectiveness(b *testing.B) {
	p := benchParams(400_000, "SPEC2006")
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table4Data(context.Background(), p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].Effectiveness, "effectiveness-%")
	}
}

func BenchmarkFig15Capacity(b *testing.B) {
	p := benchParams(200_000, "pgbench")
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig15Data(context.Background(), p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pts[len(pts)-1].LatMig, "lat-512MB-cycles")
	}
}

func BenchmarkFig16Power(b *testing.B) {
	p := benchParams(120_000, "pgbench")
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig16Data(context.Background(), p)
		if err != nil {
			b.Fatal(err)
		}
		max := 0.0
		for _, pt := range pts {
			if pt.Normalized > max {
				max = pt.Normalized
			}
		}
		b.ReportMetric(max, "max-normalized-power")
	}
}

// ---- Ablations (DESIGN.md section 5) ----

// ablationRun simulates SPEC2006 under one configuration and returns the
// mean DRAM latency.
func ablationRun(b *testing.B, mutate func(*sim.Config)) float64 {
	b.Helper()
	gen, err := workload.NewMemory("SPEC2006", 1)
	if err != nil {
		b.Fatal(err)
	}
	cfg := sim.Default()
	cfg.Geometry.MacroPageSize = 64 * KiB
	cfg.Migration = &core.Options{Design: core.DesignLive, SwapInterval: 1000}
	cfg.MaxRecords = 250_000
	cfg.Warmup = 125_000
	mutate(&cfg)
	res, err := sim.Run(trace.NewLimit(gen, cfg.MaxRecords), cfg)
	if err != nil {
		b.Fatal(err)
	}
	return res.MeanDRAMLatency
}

func BenchmarkAblationCriticalFirst(b *testing.B) {
	for i := 0; i < b.N; i++ {
		with := ablationRun(b, func(*sim.Config) {})
		without := ablationRun(b, func(c *sim.Config) { c.Migration.NoCriticalFirst = true })
		b.ReportMetric(without-with, "critical-first-gain-cycles")
	}
}

func BenchmarkAblationMultiQueue(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mq := ablationRun(b, func(*sim.Config) {})
		naive := ablationRun(b, func(c *sim.Config) { c.Migration.NaiveMRU = true })
		b.ReportMetric(naive-mq, "multiqueue-gain-cycles")
	}
}

func BenchmarkAblationPendingBit(b *testing.B) {
	// N-1 (pending bit hides the swap) vs N (stall-the-world): what the
	// P bit buys at coarse granularity.
	for i := 0; i < b.N; i++ {
		n1 := ablationRun(b, func(c *sim.Config) {
			c.Geometry.MacroPageSize = 4 * MiB
			c.Migration.Design = core.DesignN1
		})
		n := ablationRun(b, func(c *sim.Config) {
			c.Geometry.MacroPageSize = 4 * MiB
			c.Migration.Design = core.DesignN
		})
		b.ReportMetric(n-n1, "pending-bit-gain-cycles")
	}
}

func BenchmarkAblationSchedulers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		frfcfs := ablationRun(b, func(*sim.Config) {})
		fcfs := ablationRun(b, func(c *sim.Config) { c.Sched.FCFSOnly = true })
		b.ReportMetric(fcfs-frfcfs, "frfcfs-gain-cycles")
	}
}

// ---- Microbenchmarks of the core data paths ----

// benchAccessPath drives Controller.Access directly — no sim layer, no
// generator work inside the timed region — over a pre-materialized trace,
// so ns/op and allocs/op measure the per-record access path alone. The
// paths taken at steady state (translation, policy touch, scheduling,
// completion accounting, object recycling) must be allocation-free.
func benchAccessPath(b *testing.B, design core.Design) {
	benchAccessPathConfig(b, &core.Options{Design: design, SwapInterval: 1000}, scheme.Spec{})
}

// benchAccessPathConfig is benchAccessPath generalized over the capacity
// scheme: pure cache schemes run with no migration engine, memcache runs
// its memory part under the given migration options. All of them share the
// same zero-allocation bar as the migration designs.
func benchAccessPathConfig(b *testing.B, mig *core.Options, sp scheme.Spec) {
	scfg := sim.Default()
	scfg.Geometry.MacroPageSize = 64 * KiB
	mcfg := memctrl.Config{
		Geometry:  scfg.Geometry,
		Latencies: scfg.Latencies,
		OffTiming: scfg.OffTiming,
		OnTiming:  scfg.OnTiming,
		Sched:     scfg.Sched,
		Migration: mig,
		Scheme:    sp,
	}
	ctrl, err := memctrl.New(mcfg, nil)
	if err != nil {
		b.Fatal(err)
	}
	gen, err := workload.NewMemory("SPEC2006", 1)
	if err != nil {
		b.Fatal(err)
	}
	type rec struct {
		addr  uint64
		gap   int64
		write bool
	}
	const n = 1 << 15
	recs := make([]rec, n)
	var prev uint64
	for i := range recs {
		r, err := gen.Next()
		if err != nil {
			b.Fatal(err)
		}
		recs[i] = rec{addr: r.Addr, gap: int64(r.Cycle - prev), write: r.Write}
		prev = r.Cycle
	}
	// One untimed pass warms the freelists, scheduler queues, and policy
	// arenas and gets the first swaps out of the way.
	var cycle int64
	for _, r := range recs {
		cycle += r.gap
		if err := ctrl.Access(r.addr, r.write, cycle); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := recs[i&(n-1)]
		cycle += r.gap
		if err := ctrl.Access(r.addr, r.write, cycle); err != nil {
			b.Fatal(err)
		}
	}
	ctrl.Flush()
	if err := ctrl.Err(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "records/s")
}

func BenchmarkAccessPath(b *testing.B) {
	for _, d := range []struct {
		name   string
		design core.Design
	}{
		{"N", core.DesignN},
		{"N-1", core.DesignN1},
		{"Live", core.DesignLive},
	} {
		b.Run(d.name, func(b *testing.B) { benchAccessPath(b, d.design) })
	}
}

// BenchmarkAccessPathScheme covers the full scheme grid on the same
// per-record access path: the three migration designs under the default
// scheme, the two pure cache schemes, and the memcache hybrid. Every
// variant must hold 0 allocs/op at steady state.
func BenchmarkAccessPathScheme(b *testing.B) {
	live := &core.Options{Design: core.DesignLive, SwapInterval: 1000}
	for _, v := range []struct {
		name   string
		mig    *core.Options
		scheme string
	}{
		{"N", &core.Options{Design: core.DesignN, SwapInterval: 1000}, ""},
		{"N-1", &core.Options{Design: core.DesignN1, SwapInterval: 1000}, ""},
		{"Live", live, ""},
		{"Alloy", nil, "alloy"},
		{"CacheMode", nil, "cachemode"},
		{"MemCache", live, "memcache"},
	} {
		b.Run(v.name, func(b *testing.B) {
			var sp scheme.Spec
			if v.scheme != "" {
				var err error
				if sp, err = scheme.Parse(v.scheme); err != nil {
					b.Fatal(err)
				}
			}
			benchAccessPathConfig(b, v.mig, sp)
		})
	}
}

// benchAccessPathSharded drives Hub.Access — channel routing plus the shard
// controller's pipeline — the same way benchAccessPath drives a bare
// controller, so the sharded ns/op and allocs/op are directly comparable.
// The access path must stay allocation-free at every channel count (the
// hard gate is memctrl's TestHubZeroAllocAccess; the benchmark archives the
// numbers).
func benchAccessPathSharded(b *testing.B, channels int) {
	scfg := sim.Default()
	scfg.Geometry.MacroPageSize = 64 * KiB
	mcfg := memctrl.Config{
		Geometry:  scfg.Geometry,
		Latencies: scfg.Latencies,
		OffTiming: scfg.OffTiming,
		OnTiming:  scfg.OnTiming,
		Sched:     scfg.Sched,
		Migration: &core.Options{Design: core.DesignLive, SwapInterval: 1000},
	}
	hub, err := memctrl.NewHub(mcfg, memctrl.HubConfig{Channels: channels}, nil)
	if err != nil {
		b.Fatal(err)
	}
	gen, err := workload.NewMemory("SPEC2006", 1)
	if err != nil {
		b.Fatal(err)
	}
	type rec struct {
		addr  uint64
		gap   int64
		write bool
	}
	const n = 1 << 15
	recs := make([]rec, n)
	var prev uint64
	for i := range recs {
		r, err := gen.Next()
		if err != nil {
			b.Fatal(err)
		}
		recs[i] = rec{addr: r.Addr, gap: int64(r.Cycle - prev), write: r.Write}
		prev = r.Cycle
	}
	var cycle int64
	for _, r := range recs {
		cycle += r.gap
		if err := hub.Access(r.addr, r.write, cycle); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := recs[i&(n-1)]
		cycle += r.gap
		if err := hub.Access(r.addr, r.write, cycle); err != nil {
			b.Fatal(err)
		}
	}
	hub.Flush()
	if err := hub.Err(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "records/s")
}

func BenchmarkAccessPathSharded(b *testing.B) {
	for _, channels := range []int{1, 2, 4} {
		b.Run(map[int]string{1: "c1", 2: "c2", 4: "c4"}[channels], func(b *testing.B) {
			benchAccessPathSharded(b, channels)
		})
	}
}

func BenchmarkTranslationTableLookup(b *testing.B) {
	mig, err := core.NewMigrator(core.Options{
		Design: core.DesignLive, Slots: 128, TotalPages: 1024,
		PageSize: 4 * MiB, SubBlockSize: 4 * KiB, SwapInterval: 1000,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mig.Translate(uint64(i) * 64 % (4 * GiB))
	}
}

func BenchmarkDRAMService(b *testing.B) {
	dev, err := dram.New(dram.Geometry{
		Channels: 4, BanksPerCh: 8, RowBytes: 8192, BurstBytes: 64,
	}, iconfig.OffPackageTiming())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dev.Service(uint64(i)*64%(1<<30), i%4 == 0, int64(i)*20)
	}
}

func BenchmarkSchedulerThroughput(b *testing.B) {
	dev, _ := dram.New(dram.Geometry{
		Channels: 4, BanksPerCh: 8, RowBytes: 8192, BurstBytes: 64,
	}, iconfig.OffPackageTiming())
	// Recycle requests through a freelist fed by the completion callback,
	// the way the memory controller drives the scheduler at steady state.
	var free []*sched.Request
	s, err := sched.New(dev, sched.Config{}, func(r *sched.Request) {
		free = append(free, r)
	}, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now := int64(i) * 25
		var r *sched.Request
		if n := len(free); n > 0 {
			r, free = free[n-1], free[:n-1]
			*r = sched.Request{}
		} else {
			r = new(sched.Request)
		}
		r.ID = uint64(i)
		r.Arrive = now
		r.Addr = uint64(i) * 64 % (1 << 30)
		s.Submit(r, now)
	}
	s.Flush()
}

func BenchmarkWorkloadGeneration(b *testing.B) {
	gen, err := workload.NewMemory("pgbench", 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gen.Next(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEndToEndSimulation(b *testing.B) {
	gen, err := workload.NewMemory("SPEC2006", 1)
	if err != nil {
		b.Fatal(err)
	}
	cfg := sim.Default()
	cfg.Geometry.MacroPageSize = 64 * KiB
	cfg.Migration = &core.Options{Design: core.DesignLive, SwapInterval: 1000}
	cfg.MaxRecords = uint64(b.N)
	b.ResetTimer()
	if _, err := sim.Run(trace.NewLimit(gen, uint64(b.N)), cfg); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkBatchReplay is EndToEndSimulation over the packed replay path
// the experiment drivers use: the trace is materialized into the packed
// columnar form untimed, then the simulator replays it batch-at-a-time.
// Compare against BenchmarkEndToEndSimulation to see what replacing the
// generator with the chunk decoder buys on the record path.
func BenchmarkBatchReplay(b *testing.B) {
	gen, err := workload.NewMemory("SPEC2006", 1)
	if err != nil {
		b.Fatal(err)
	}
	p, err := trace.Pack(gen, uint64(b.N))
	if err != nil {
		b.Fatal(err)
	}
	cfg := sim.Default()
	cfg.Geometry.MacroPageSize = 64 * KiB
	cfg.Migration = &core.Options{Design: core.DesignLive, SwapInterval: 1000}
	cfg.MaxRecords = uint64(b.N)
	b.ResetTimer()
	if _, err := sim.Run(trace.NewPackedSource(p), cfg); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkPackedEncode packs b.N generator records; the reported
// compression-x metric is the in-memory []Record footprint over the packed
// bytes (the tentpole's >= 4x size target).
func BenchmarkPackedEncode(b *testing.B) {
	gen, err := workload.NewMemory("SPEC2006", 1)
	if err != nil {
		b.Fatal(err)
	}
	recs, err := trace.Collect(trace.NewLimit(gen, uint64(b.N)), 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	p := trace.PackRecords(recs)
	b.StopTimer()
	b.ReportMetric(float64(len(recs)*24)/float64(p.EncodedBytes()), "compression-x")
}

// BenchmarkPackedDecode measures the chunk decoder alone: b.N records
// streamed out of a packed trace through NextBatch into a reused batch.
// This is the per-record cost every sweep cell pays to replay a trace.
func BenchmarkPackedDecode(b *testing.B) {
	gen, err := workload.NewMemory("SPEC2006", 1)
	if err != nil {
		b.Fatal(err)
	}
	const records = 1 << 20
	p, err := trace.Pack(gen, records)
	if err != nil {
		b.Fatal(err)
	}
	src := trace.NewPackedSource(p)
	var batch trace.Batch
	batch.Resize(trace.PackedChunkRecords)
	b.ResetTimer()
	for n := 0; n < b.N; {
		k, err := src.NextBatch(&batch)
		n += k
		if err != nil { // io.EOF: rewind and keep streaming
			src.Reset()
		}
	}
}

// benchTemporal is the end-to-end access benchmark with the temporal
// observability layer at a given setting; compare Off against On with
// benchstat. Off must stay within 5% of a build without the layer — the
// disabled path is one nil check per touch point.
func benchTemporal(b *testing.B, spans, series int) {
	gen, err := workload.NewMemory("SPEC2006", 1)
	if err != nil {
		b.Fatal(err)
	}
	cfg := sim.Default()
	cfg.Geometry.MacroPageSize = 64 * KiB
	cfg.Migration = &core.Options{Design: core.DesignLive, SwapInterval: 1000}
	cfg.MaxRecords = uint64(b.N)
	cfg.SpanTrace = spans
	cfg.EpochSeries = series
	b.ResetTimer()
	if _, err := sim.Run(trace.NewLimit(gen, uint64(b.N)), cfg); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkTemporalObservabilityOff(b *testing.B) { benchTemporal(b, 0, 0) }
func BenchmarkTemporalObservabilityOn(b *testing.B)  { benchTemporal(b, 1<<16, 1<<12) }

// benchCheckpoint is the end-to-end access benchmark with checkpointing at
// a given cadence (0 = off); compare Off against On with benchstat to bound
// what serializing the full run state costs. The encoded snapshots are
// discarded, so the number isolates serialization, not I/O.
func benchCheckpoint(b *testing.B, every uint64) {
	gen, err := workload.NewMemory("SPEC2006", 1)
	if err != nil {
		b.Fatal(err)
	}
	cfg := sim.Default()
	cfg.Geometry.MacroPageSize = 64 * KiB
	cfg.Migration = &core.Options{Design: core.DesignLive, SwapInterval: 1000}
	cfg.MaxRecords = uint64(b.N)
	if every > 0 {
		cfg.CheckpointEvery = every
		var bytes uint64
		cfg.CheckpointSink = func(data []byte, _ uint64) error {
			bytes += uint64(len(data))
			return nil
		}
		defer func() {
			if n := uint64(b.N) / every; n > 0 {
				b.ReportMetric(float64(bytes)/float64(n), "snapshot-bytes")
			}
		}()
	}
	b.ResetTimer()
	if _, err := sim.Run(trace.NewLimit(gen, uint64(b.N)), cfg); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkCheckpointOff(b *testing.B) { benchCheckpoint(b, 0) }
func BenchmarkCheckpointOn(b *testing.B)  { benchCheckpoint(b, 10_000) }

func BenchmarkAblationVictimPolicy(b *testing.B) {
	// Clock pseudo-LRU (paper) vs FIFO rotation vs random victim.
	for i := 0; i < b.N; i++ {
		clock := ablationRun(b, func(*sim.Config) {})
		fifo := ablationRun(b, func(c *sim.Config) { c.Migration.Victim = core.VictimFIFO })
		random := ablationRun(b, func(c *sim.Config) { c.Migration.Victim = core.VictimRandom })
		b.ReportMetric(fifo-clock, "fifo-penalty-cycles")
		b.ReportMetric(random-clock, "random-penalty-cycles")
	}
}

func BenchmarkAblationRefresh(b *testing.B) {
	// DDR3 auto-refresh on vs off: the bandwidth tax the paper's
	// evaluation leaves unmodeled.
	for i := 0; i < b.N; i++ {
		off := ablationRun(b, func(*sim.Config) {})
		on := ablationRun(b, func(c *sim.Config) {
			c.OffTiming = iconfig.WithRefresh(c.OffTiming)
			c.OnTiming = iconfig.WithRefresh(c.OnTiming)
		})
		b.ReportMetric(on-off, "refresh-tax-cycles")
	}
}
