package main

import (
	"bytes"
	"flag"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// genFile writes a small deterministic trace in the given format and
// returns its path.
func genFile(t *testing.T, format string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace."+format)
	args := []string{"-workload", "pgbench", "-seed", "3", "-n", "2000", "-o", path}
	switch format {
	case "text":
		args = append(args, "-text")
	case "packed":
		args = append(args, "-packed")
	}
	if err := cmdGen(args, io.Discard); err != nil {
		t.Fatal(err)
	}
	return path
}

// run invokes one subcommand and captures its stdout.
func run(t *testing.T, cmd func([]string, io.Writer) error, args ...string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := cmd(args, &buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (generate with -update): %v", err)
	}
	if got != string(want) {
		t.Fatalf("%s diverged from golden:\n got:\n%s\nwant:\n%s", name, got, want)
	}
}

// TestCatFormatsAgree pins that the three containers carry the identical
// record stream: cat over binary, text-generated, and packed files of the
// same workload/seed must render the same text, which is also a golden.
func TestCatFormatsAgree(t *testing.T) {
	bin := genFile(t, "bin")
	packed := genFile(t, "packed")

	fromBin := run(t, cmdCat, "-i", bin)
	fromPacked := run(t, cmdCat, "-i", packed)
	if fromBin != fromPacked {
		t.Fatal("cat over packed diverged from cat over binary")
	}
	// The text generator writes the same stream directly.
	text, err := os.ReadFile(genFile(t, "text"))
	if err != nil {
		t.Fatal(err)
	}
	if fromBin != string(text) {
		t.Fatal("gen -text diverged from cat over binary")
	}
	lines := strings.SplitAfter(fromBin, "\n")
	if len(lines) < 32 {
		t.Fatalf("only %d lines of cat output", len(lines))
	}
	checkGolden(t, "cat_head.golden", strings.Join(lines[:32], ""))
}

// TestCatSkipPacked exercises -skip through the packed Positioner: skipping
// N records must yield exactly the tail of the full rendering.
func TestCatSkipPacked(t *testing.T) {
	packed := genFile(t, "packed")
	full := strings.SplitAfter(run(t, cmdCat, "-i", packed), "\n")
	const skip = 1234
	got := run(t, cmdCat, "-i", packed, "-skip", "1234")
	if want := strings.Join(full[skip:], ""); got != want {
		t.Fatalf("cat -skip %d diverged:\n got:\n%.200s\nwant:\n%.200s", skip, got, want)
	}
	if out := run(t, cmdCat, "-i", packed, "-skip", "2000"); out != "" {
		t.Fatalf("skip to end still printed %d bytes", len(out))
	}
	if err := cmdCat([]string{"-i", packed, "-skip", "2001"}, io.Discard); err == nil {
		t.Fatal("skip past end accepted")
	}
}

// TestInfoGolden pins the info rendering for both containers.
func TestInfoGolden(t *testing.T) {
	bin := genFile(t, "bin")
	packed := genFile(t, "packed")
	got := run(t, cmdInfo, "-i", bin)
	if fromPacked := run(t, cmdInfo, "-i", packed); fromPacked != got {
		t.Fatal("info over packed diverged from info over binary")
	}
	checkGolden(t, "info.golden", got)
}

// TestConvert drives every conversion pair through the new subcommand and
// checks the packed container actually compresses.
func TestConvert(t *testing.T) {
	bin := genFile(t, "bin")
	dir := t.TempDir()

	packed := filepath.Join(dir, "trace.hmpk")
	if err := cmdConvert([]string{"-i", bin, "-to", "packed", "-o", packed}, io.Discard); err != nil {
		t.Fatal(err)
	}
	head, err := os.ReadFile(packed)
	if err != nil {
		t.Fatal(err)
	}
	if len(head) < 4 || string(head[:4]) != "HMPK" {
		t.Fatalf("converted file does not start with HMPK: %q", head[:4])
	}
	binInfo, err := os.Stat(bin)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(head))*3 > binInfo.Size() {
		t.Fatalf("packed %d bytes vs binary %d: expected >= 3x smaller", len(head), binInfo.Size())
	}

	// packed -> bin must reproduce the original binary file byte-for-byte.
	back := filepath.Join(dir, "back.bin")
	if err := cmdConvert([]string{"-i", packed, "-to", "bin", "-o", back}, io.Discard); err != nil {
		t.Fatal(err)
	}
	orig, err := os.ReadFile(bin)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(orig, got) {
		t.Fatal("bin -> packed -> bin round trip changed the file")
	}

	// convert -to text matches cat.
	if text := run(t, cmdConvert, "-i", packed, "-to", "text"); text != run(t, cmdCat, "-i", bin) {
		t.Fatal("convert -to text diverged from cat")
	}

	if err := cmdConvert([]string{"-i", bin, "-to", "bogus"}, io.Discard); err == nil {
		t.Fatal("unknown output format accepted")
	}
}

// TestWSSPackedMatchesBinary pins wss over the packed container to the
// binary one.
func TestWSSPackedMatchesBinary(t *testing.T) {
	bin := genFile(t, "bin")
	packed := genFile(t, "packed")
	want := run(t, cmdWSS, "-i", bin, "-window", "500")
	if got := run(t, cmdWSS, "-i", packed, "-window", "500"); got != want {
		t.Fatalf("wss over packed diverged:\n got:\n%s\nwant:\n%s", got, want)
	}
}
