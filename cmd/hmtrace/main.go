// Command hmtrace generates, inspects, and converts memory-access traces.
//
// Usage:
//
//	hmtrace gen -workload pgbench -n 1000000 -o trace.bin
//	hmtrace gen -workload FT -n 100000 -text -o trace.txt
//	hmtrace gen -workload FT -n 100000 -packed -o trace.hmpk
//	hmtrace info -i trace.bin
//	hmtrace cat -i trace.hmpk | head
//	hmtrace convert -i trace.bin -to packed -o trace.hmpk
//
// Binary (HMTR) and packed columnar (HMPK) inputs are detected by magic;
// every reading command accepts either.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"heteromem/internal/trace"
	"heteromem/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:], os.Stdout)
	case "info":
		err = cmdInfo(os.Args[2:], os.Stdout)
	case "cat":
		err = cmdCat(os.Args[2:], os.Stdout)
	case "wss":
		err = cmdWSS(os.Args[2:], os.Stdout)
	case "convert":
		err = cmdConvert(os.Args[2:], os.Stdout)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hmtrace:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: hmtrace <gen|info|cat|wss|convert> [flags]
  gen     -workload <name> -n <records> [-seed N] [-text|-packed] [-o file]
  info    -i <file>
  cat     -i <file> [-skip N]
  wss     -i <file> [-window N] [-block B]   working-set profile per window
  convert -i <file> -to <bin|text|packed> [-o file]
workloads: `+strings.Join(workload.Names(), ", "))
}

// writeAll drains src into w in the named format ("bin", "text", or
// "packed"). The packed form is built in memory first: its file layout
// needs the chunk directory up front.
func writeAll(w io.Writer, src trace.Source, format string) error {
	switch format {
	case "text":
		_, err := trace.WriteText(w, src)
		return err
	case "packed":
		p, err := trace.Pack(src, 0)
		if err != nil {
			return err
		}
		_, err = p.WriteTo(w)
		return err
	case "bin":
		tw, err := trace.NewWriter(w)
		if err != nil {
			return err
		}
		for {
			rec, err := src.Next()
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				return err
			}
			if err := tw.Write(rec); err != nil {
				return err
			}
		}
		return tw.Flush()
	default:
		return fmt.Errorf("unknown output format %q (want bin, text, or packed)", format)
	}
}

func cmdGen(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	name := fs.String("workload", "", "workload name")
	n := fs.Uint64("n", 1_000_000, "number of records")
	seed := fs.Int64("seed", 1, "generator seed")
	text := fs.Bool("text", false, "write the text format instead of binary")
	packed := fs.Bool("packed", false, "write the packed columnar format instead of binary")
	out := fs.String("o", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *text && *packed {
		return errors.New("gen: -text and -packed are mutually exclusive")
	}
	gen, err := workload.NewMemory(*name, *seed)
	if err != nil {
		return err
	}
	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	format := "bin"
	if *text {
		format = "text"
	} else if *packed {
		format = "packed"
	}
	return writeAll(w, trace.NewLimit(gen, *n), format)
}

// openTrace opens path and detects the container by magic: HMPK loads the
// packed columnar form (seekable both ways), anything else goes to the
// binary reader, whose own magic check reports unknown formats.
func openTrace(path string) (trace.Source, func() error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	br := bufio.NewReader(f)
	magic, err := br.Peek(4)
	if err == nil && string(magic) == "HMPK" {
		p, err := trace.ReadPacked(br)
		if err != nil {
			f.Close()
			return nil, nil, err
		}
		// The whole trace is decoded into memory; nothing keeps the file open.
		if err := f.Close(); err != nil {
			return nil, nil, err
		}
		return trace.NewPackedSource(p), func() error { return nil }, nil
	}
	r, err := trace.NewReader(br)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return r, f.Close, nil
}

func cmdInfo(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	in := fs.String("i", "", "input trace file (binary or packed)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	src, closer, err := openTrace(*in)
	if err != nil {
		return err
	}
	defer closer()
	var n, writes uint64
	var minA, maxA uint64 = ^uint64(0), 0
	var lastCycle uint64
	for {
		rec, err := src.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return err
		}
		n++
		if rec.Write {
			writes++
		}
		if rec.Addr < minA {
			minA = rec.Addr
		}
		if rec.Addr > maxA {
			maxA = rec.Addr
		}
		lastCycle = rec.Cycle
	}
	if n == 0 {
		fmt.Fprintln(stdout, "empty trace")
		return nil
	}
	fmt.Fprintf(stdout, "records:    %d\n", n)
	fmt.Fprintf(stdout, "writes:     %d (%.1f%%)\n", writes, float64(writes)/float64(n)*100)
	fmt.Fprintf(stdout, "addr range: 0x%x .. 0x%x (%.1f MB span)\n", minA, maxA, float64(maxA-minA)/(1<<20))
	fmt.Fprintf(stdout, "last cycle: %d (%.2f ms at 3.2 GHz)\n", lastCycle, float64(lastCycle)/3.2e6)
	return nil
}

func cmdWSS(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("wss", flag.ExitOnError)
	in := fs.String("i", "", "input trace file (binary or packed)")
	window := fs.Uint64("window", 100000, "accesses per analysis window")
	block := fs.Uint64("block", 4096, "working-set block size (bytes, power of two)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	src, closer, err := openTrace(*in)
	if err != nil {
		return err
	}
	defer closer()
	a, err := trace.Analyze(src, *window, *block)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "records=%d writes=%.1f%% footprint=%.1fMB mean-gap=%.1f cycles\n",
		a.Records, a.WriteShare()*100, float64(a.Footprint)/(1<<20), a.MeanGap)
	fmt.Fprintf(stdout, "%-8s %-12s %-12s %-10s\n", "window", "wss(MB)", "new(MB)", "writes%")
	for i, w := range a.Windows {
		fmt.Fprintf(stdout, "%-8d %-12.1f %-12.1f %-10.1f\n", i,
			float64(w.UniqueHot**block)/(1<<20),
			float64(w.NewBlocks**block)/(1<<20),
			float64(w.Writes)/float64(w.Accesses)*100)
	}
	return nil
}

func cmdCat(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("cat", flag.ExitOnError)
	in := fs.String("i", "", "input trace file (binary or packed)")
	skip := fs.Uint64("skip", 0, "skip the first N records before printing")
	if err := fs.Parse(args); err != nil {
		return err
	}
	src, closer, err := openTrace(*in)
	if err != nil {
		return err
	}
	defer closer()
	if *skip > 0 {
		if err := src.(trace.Positioner).SkipTo(*skip); err != nil {
			return err
		}
	}
	_, err = trace.WriteText(stdout, src)
	return err
}

func cmdConvert(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	in := fs.String("i", "", "input trace file (binary or packed)")
	to := fs.String("to", "packed", "output format: bin, text, or packed")
	out := fs.String("o", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	src, closer, err := openTrace(*in)
	if err != nil {
		return err
	}
	defer closer()
	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return writeAll(w, src, *to)
}
