// Command hmtrace generates, inspects, and converts memory-access traces.
//
// Usage:
//
//	hmtrace gen -workload pgbench -n 1000000 -o trace.bin
//	hmtrace gen -workload FT -n 100000 -text -o trace.txt
//	hmtrace info -i trace.bin
//	hmtrace cat -i trace.bin | head
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"heteromem/internal/trace"
	"heteromem/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:])
	case "info":
		err = cmdInfo(os.Args[2:])
	case "cat":
		err = cmdCat(os.Args[2:])
	case "wss":
		err = cmdWSS(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hmtrace:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: hmtrace <gen|info|cat|wss> [flags]
  gen  -workload <name> -n <records> [-seed N] [-text] [-o file]
  info -i <file>
  cat  -i <file> [-skip N]
  wss  -i <file> [-window N] [-block B]   working-set profile per window
workloads: `+strings.Join(workload.Names(), ", "))
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	name := fs.String("workload", "", "workload name")
	n := fs.Uint64("n", 1_000_000, "number of records")
	seed := fs.Int64("seed", 1, "generator seed")
	text := fs.Bool("text", false, "write the text format instead of binary")
	out := fs.String("o", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	gen, err := workload.NewMemory(*name, *seed)
	if err != nil {
		return err
	}
	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	src := trace.NewLimit(gen, *n)
	if *text {
		_, err = trace.WriteText(w, src)
		return err
	}
	tw, err := trace.NewWriter(w)
	if err != nil {
		return err
	}
	for {
		rec, err := src.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return err
		}
		if err := tw.Write(rec); err != nil {
			return err
		}
	}
	return tw.Flush()
}

func openTrace(path string) (trace.Source, func() error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	r, err := trace.NewReader(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return r, f.Close, nil
}

func cmdInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	in := fs.String("i", "", "input trace file (binary format)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	src, closer, err := openTrace(*in)
	if err != nil {
		return err
	}
	defer closer()
	var n, writes uint64
	var minA, maxA uint64 = ^uint64(0), 0
	var lastCycle uint64
	for {
		rec, err := src.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return err
		}
		n++
		if rec.Write {
			writes++
		}
		if rec.Addr < minA {
			minA = rec.Addr
		}
		if rec.Addr > maxA {
			maxA = rec.Addr
		}
		lastCycle = rec.Cycle
	}
	if n == 0 {
		fmt.Println("empty trace")
		return nil
	}
	fmt.Printf("records:    %d\n", n)
	fmt.Printf("writes:     %d (%.1f%%)\n", writes, float64(writes)/float64(n)*100)
	fmt.Printf("addr range: 0x%x .. 0x%x (%.1f MB span)\n", minA, maxA, float64(maxA-minA)/(1<<20))
	fmt.Printf("last cycle: %d (%.2f ms at 3.2 GHz)\n", lastCycle, float64(lastCycle)/3.2e6)
	return nil
}

func cmdWSS(args []string) error {
	fs := flag.NewFlagSet("wss", flag.ExitOnError)
	in := fs.String("i", "", "input trace file (binary format)")
	window := fs.Uint64("window", 100000, "accesses per analysis window")
	block := fs.Uint64("block", 4096, "working-set block size (bytes, power of two)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	src, closer, err := openTrace(*in)
	if err != nil {
		return err
	}
	defer closer()
	a, err := trace.Analyze(src, *window, *block)
	if err != nil {
		return err
	}
	fmt.Printf("records=%d writes=%.1f%% footprint=%.1fMB mean-gap=%.1f cycles\n",
		a.Records, a.WriteShare()*100, float64(a.Footprint)/(1<<20), a.MeanGap)
	fmt.Printf("%-8s %-12s %-12s %-10s\n", "window", "wss(MB)", "new(MB)", "writes%")
	for i, w := range a.Windows {
		fmt.Printf("%-8d %-12.1f %-12.1f %-10.1f\n", i,
			float64(w.UniqueHot**block)/(1<<20),
			float64(w.NewBlocks**block)/(1<<20),
			float64(w.Writes)/float64(w.Accesses)*100)
	}
	return nil
}

func cmdCat(args []string) error {
	fs := flag.NewFlagSet("cat", flag.ExitOnError)
	in := fs.String("i", "", "input trace file (binary format)")
	skip := fs.Uint64("skip", 0, "skip the first N records before printing")
	if err := fs.Parse(args); err != nil {
		return err
	}
	src, closer, err := openTrace(*in)
	if err != nil {
		return err
	}
	defer closer()
	if *skip > 0 {
		if err := src.(trace.Positioner).SkipTo(*skip); err != nil {
			return err
		}
	}
	_, err = trace.WriteText(os.Stdout, src)
	return err
}
