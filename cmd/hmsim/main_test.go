package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"heteromem"
	"heteromem/internal/dsweep"
	"heteromem/internal/experiments"
	"heteromem/internal/flog"
)

// TestSingleRunMetricsJSON pins the acceptance contract of `hmsim
// -workload ... -metrics -events N`: the emitted JSON must carry at least
// swap counts, per-region queue-latency histograms, P-bit stall counts,
// and background-copy traffic, plus the structured event trace.
func TestSingleRunMetricsJSON(t *testing.T) {
	var buf bytes.Buffer
	live, ok := parseDesign("live")
	if !ok {
		t.Fatal("parseDesign rejected \"live\"")
	}
	err := singleRun(context.Background(), &buf, singleRunConfig{
		Workload: "pgbench", Design: live, Interval: 1000,
		Records: 200_000, Seed: 1,
		Metrics: true, Events: 64, Audit: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	var out struct {
		Workload string
		Design   string
		Records  uint64
		Result   struct {
			Metrics *struct {
				Counters   map[string]uint64          `json:"counters"`
				Gauges     map[string]int64           `json:"gauges"`
				Histograms map[string]json.RawMessage `json:"histograms"`
			} `json:"Metrics"`
			Events      []json.RawMessage
			EventsTotal uint64
		}
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if out.Workload != "pgbench" || out.Design != "live" || out.Records != 200_000 {
		t.Fatalf("run summary wrong: %+v", out)
	}
	m := out.Result.Metrics
	if m == nil {
		t.Fatal("-metrics produced no metrics snapshot")
	}
	for _, counter := range []string{
		"memctrl.swap.started",
		"memctrl.swap.completed",
		"memctrl.pstall.redirects",
		"memctrl.copy.bytes",
		"memctrl.copy.sub_blocks",
	} {
		if _, ok := m.Counters[counter]; !ok {
			t.Errorf("counter %q missing from metrics JSON", counter)
		}
	}
	if m.Counters["memctrl.swap.completed"] == 0 {
		t.Error("no swaps completed in a workload that should migrate")
	}
	if m.Counters["memctrl.copy.bytes"] == 0 {
		t.Error("no background copy traffic recorded")
	}
	for _, hist := range []string{"memctrl.qlat.on", "memctrl.qlat.off"} {
		if _, ok := m.Histograms[hist]; !ok {
			t.Errorf("per-region queue-latency histogram %q missing", hist)
		}
	}
	if len(out.Result.Events) == 0 || out.Result.EventsTotal == 0 {
		t.Error("-events produced no event trace")
	}
}

// TestSingleRunTraceAndSeriesOut pins the -trace-out/-series-out contract:
// the trace file is loadable Chrome trace-event JSON, the series file is one
// JSON EpochSample per line ending with the flush sample, and neither blob
// leaks into the stdout result JSON.
func TestSingleRunTraceAndSeriesOut(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.json")
	seriesPath := filepath.Join(dir, "series.jsonl")
	live, _ := parseDesign("live")
	var buf bytes.Buffer
	err := singleRun(context.Background(), &buf, singleRunConfig{
		Workload: "pgbench", Design: live, Interval: 1000,
		Records: 200_000, Seed: 1,
		TraceOut: tracePath, SeriesOut: seriesPath,
	})
	if err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(raw, &trace); err != nil {
		t.Fatalf("trace file is not valid Chrome trace JSON: %v", err)
	}
	if trace.DisplayTimeUnit == "" || len(trace.TraceEvents) == 0 {
		t.Fatalf("trace file empty or missing displayTimeUnit: %d events", len(trace.TraceEvents))
	}
	sawSwap := false
	for _, ev := range trace.TraceEvents {
		if ev.Name == "swap" && ev.Ph == "X" {
			sawSwap = true
			break
		}
	}
	if !sawSwap {
		t.Error("trace file has no complete swap spans")
	}

	sraw, err := os.ReadFile(seriesPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(sraw)), "\n")
	if len(lines) < 2 {
		t.Fatalf("series file has only %d lines", len(lines))
	}
	var last heteromem.EpochSample
	for i, line := range lines {
		var s heteromem.EpochSample
		if err := json.Unmarshal([]byte(line), &s); err != nil {
			t.Fatalf("series line %d is not valid JSON: %v", i, err)
		}
		last = s
	}
	if !last.Final {
		t.Error("last series line is not the flush sample")
	}

	for _, key := range []string{"Spans", "Series"} {
		if bytes.Contains(buf.Bytes(), []byte(`"`+key+`"`)) {
			t.Errorf("stdout JSON leaks %q despite the file redirect", key)
		}
	}
}

// probeTelemetry fetches one endpoint and returns its body.
func probeTelemetry(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	return string(body)
}

// TestRunExperimentsServesTelemetry is the -listen acceptance test run
// in-process: a small sweep serves /metrics, /progress, and pprof while it
// executes, and the server is gone once runExperiments returns.
func TestRunExperimentsServesTelemetry(t *testing.T) {
	var addr string
	err := runExperiments(context.Background(), io.Discard, expRunConfig{
		Names:  []string{"fig11a"},
		Params: experiments.Params{Records: 40_000, Workloads: []string{"pgbench"}},
		Listen: "127.0.0.1:0",
		OnListen: func(a string) {
			addr = a
			metrics := probeTelemetry(t, "http://"+a+"/metrics")
			for _, want := range []string{"hmsim_runs_planned", "hmsim_runs_completed", "hmsim_records_total"} {
				if !strings.Contains(metrics, want) {
					t.Errorf("/metrics missing %s", want)
				}
			}
			var p struct {
				Planned    int64   `json:"planned"`
				ETASeconds float64 `json:"eta_seconds"`
			}
			if err := json.Unmarshal([]byte(probeTelemetry(t, "http://"+a+"/progress")), &p); err != nil {
				t.Errorf("/progress is not valid JSON: %v", err)
			}
			if probeTelemetry(t, "http://"+a+"/debug/pprof/cmdline") == "" {
				t.Error("pprof cmdline endpoint empty")
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if addr == "" {
		t.Fatal("OnListen never fired")
	}
	// Clean shutdown: the port must be released once the sweep is done.
	client := http.Client{Timeout: time.Second}
	if _, err := client.Get("http://" + addr + "/metrics"); err == nil {
		t.Fatal("telemetry server still reachable after runExperiments returned")
	}
}

// TestRunExperimentsTelemetryShutdownOnCancel checks the timeout path: a
// cancelled context aborts the sweep with ctx.Err() and still tears the
// telemetry server down.
func TestRunExperimentsTelemetryShutdownOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var addr string
	err := runExperiments(ctx, io.Discard, expRunConfig{
		Names:    []string{"fig11a"},
		Params:   experiments.Params{Records: 40_000, Workloads: []string{"pgbench"}},
		Listen:   "127.0.0.1:0",
		OnListen: func(a string) { addr = a },
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if addr == "" {
		t.Fatal("server never started")
	}
	client := http.Client{Timeout: time.Second}
	if _, err := client.Get("http://" + addr + "/progress"); err == nil {
		t.Fatal("telemetry server survived the cancelled sweep")
	}
}

// TestParseDesign covers the flag-validation path.
func TestParseDesign(t *testing.T) {
	if _, ok := parseDesign("bogus"); ok {
		t.Fatal("bogus design accepted")
	}
	for _, name := range []string{"n", "n-1", "n1", "live", "none", "static", "LIVE"} {
		if _, ok := parseDesign(name); !ok {
			t.Errorf("design %q rejected", name)
		}
	}
	if d, _ := parseDesign("none"); d.migrate {
		t.Error("design none should not migrate")
	}
}

// TestSingleRunFaultInjection pins the fault-injection contract end to end:
// a seeded fault campaign over an audited run must finish without error and
// report a balanced disposition ledger in the JSON output.
func TestSingleRunFaultInjection(t *testing.T) {
	live, _ := parseDesign("live")
	var buf bytes.Buffer
	err := singleRun(context.Background(), &buf, singleRunConfig{
		Workload: "pgbench", Design: live, Interval: 1000,
		Records: 100_000, Seed: 1, Audit: true,
		Fault: heteromem.FaultConfig{Seed: 7, DeviceRate: 1e-4, CopyRate: 1e-4, BulkRate: 1e-4},
	})
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Result struct {
			Faults *heteromem.FaultReport
		}
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	f := out.Result.Faults
	if f == nil {
		t.Fatal("fault campaign produced no Faults ledger")
	}
	if f.Injected == 0 {
		t.Fatal("fault campaign injected nothing")
	}
	if !f.Balanced(f.Injected) {
		t.Fatalf("fault ledger unbalanced: %+v", f)
	}
}

// TestBuildCells pins the coordinator-mode grid construction: workloads x
// designs expansion, the all-workloads default, and early rejection of
// cells that could never simulate.
func TestBuildCells(t *testing.T) {
	base := dsweep.CellSpec{Seed: 1, Interval: 1000, Records: 1000}
	cells, err := buildCells([]string{"pgbench", "indexer"}, []string{"live", "none"}, nil, base)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("2x2 grid produced %d cells", len(cells))
	}
	labels := map[string]bool{}
	for _, c := range cells {
		labels[c.Label()] = true
	}
	for _, want := range []string{"pgbench/live", "pgbench/none", "indexer/live", "indexer/none"} {
		if !labels[want] {
			t.Errorf("grid missing cell %s", want)
		}
	}

	all, err := buildCells(nil, []string{"live"}, nil, base)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(heteromem.Workloads()) {
		t.Fatalf("empty workload list expanded to %d cells, want one per built-in workload (%d)",
			len(all), len(heteromem.Workloads()))
	}

	if _, err := buildCells([]string{"pgbench"}, []string{"bogus"}, nil, base); err == nil {
		t.Error("unknown design accepted")
	}
	if _, err := buildCells([]string{"nosuch"}, []string{"live"}, nil, base); err == nil {
		t.Error("unknown workload accepted")
	}
	noInterval := base
	noInterval.Interval = 0
	if _, err := buildCells([]string{"pgbench"}, []string{"live"}, nil, noInterval); err == nil {
		t.Error("migrating design without a swap interval accepted")
	}
	if _, err := buildCells([]string{"pgbench"}, []string{"none"}, nil, noInterval); err != nil {
		t.Errorf("non-migrating design should not need an interval: %v", err)
	}
}

// TestBuildCellsSchemes pins the scheme dimension of the grid: pure cache
// schemes collapse the design axis to one "none" cell per workload, memcache
// and migrate cross with -designs, and incompatible combinations are
// rejected at build time.
func TestBuildCellsSchemes(t *testing.T) {
	base := dsweep.CellSpec{Seed: 1, Interval: 1000, Records: 1000}
	cells, err := buildCells([]string{"pgbench"}, []string{"live", "n-1"},
		[]string{"migrate", "alloy-pred", "cachemode", "memcache:25"}, base)
	if err != nil {
		t.Fatal(err)
	}
	labels := map[string]bool{}
	for _, c := range cells {
		labels[c.Label()] = true
	}
	want := []string{
		"pgbench/live", "pgbench/n-1", // migrate crosses with designs
		"pgbench/none/alloy-pred", "pgbench/none/cachemode", // cache: one cell each
		"pgbench/live/memcache:25", "pgbench/n-1/memcache:25", // memcache crosses
	}
	if len(cells) != len(want) {
		t.Fatalf("grid produced %d cells (%v), want %d", len(cells), labels, len(want))
	}
	for _, w := range want {
		if !labels[w] {
			t.Errorf("grid missing cell %s", w)
		}
	}
	// Every cell keys distinctly: the scheme reaches the config digest.
	keys := map[string]bool{}
	for _, c := range cells {
		k, err := c.Key()
		if err != nil {
			t.Fatalf("%s: %v", c.Label(), err)
		}
		if keys[k] {
			t.Errorf("duplicate key for %s", c.Label())
		}
		keys[k] = true
	}

	if _, err := buildCells([]string{"pgbench"}, []string{"live"}, []string{"bogus"}, base); err == nil {
		t.Error("unknown scheme accepted")
	}
	if _, err := buildCells([]string{"pgbench"}, []string{"none"}, []string{"memcache"}, base); err == nil {
		t.Error("memcache without a migrating design accepted")
	}
}

// TestCoordinateModeEndToEnd drives runCoordinator exactly as coordinator
// mode does, with two in-process workers racing the grid, and checks the
// stats summary and the durable manifest.
func TestCoordinateModeEndToEnd(t *testing.T) {
	dir := t.TempDir()
	manifestPath := filepath.Join(dir, "sweep.jsonl")
	journalPath := filepath.Join(dir, "sweep.journal")
	cells, err := buildCells([]string{"pgbench", "indexer"}, []string{"live", "none"}, []string{"migrate", "alloy"},
		dsweep.CellSpec{Seed: 1, Interval: 1000, Records: 60_000, Warmup: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	journal, closeJournal, err := openJournal(journalPath, "coordinator", "test-coord")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var buf bytes.Buffer
	var wg sync.WaitGroup
	workerErrs := make(chan error, 2)
	stats, err := runCoordinator(ctx, &buf, coordRunConfig{
		Addr: "127.0.0.1:0", Cells: cells, Manifest: manifestPath,
		SpillDir: dir, Journal: journal,
		OnListen: func(addr, telemetryAddr string) {
			if telemetryAddr != "" {
				t.Errorf("telemetry server started without -listen: %s", telemetryAddr)
			}
			for i := 0; i < 2; i++ {
				wg.Add(1)
				name := fmt.Sprintf("w%d", i)
				go func() {
					defer wg.Done()
					workerErrs <- dsweep.RunWorker(ctx, addr, dsweep.WorkerConfig{Name: name})
				}()
			}
		},
	})
	if err != nil {
		t.Fatalf("runCoordinator: %v", err)
	}
	wg.Wait()
	close(workerErrs)
	for werr := range workerErrs {
		if werr != nil {
			t.Errorf("worker: %v", werr)
		}
	}
	if stats.Completed != len(cells) || stats.Failed != 0 {
		t.Fatalf("stats %+v, want %d completed and 0 failed", stats, len(cells))
	}

	var out struct {
		Manifest  string
		Completed int
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("stats output is not valid JSON: %v", err)
	}
	if out.Manifest != manifestPath || out.Completed != len(cells) {
		t.Fatalf("stats JSON wrong: %+v", out)
	}

	// The fleet-health counters are part of the stats JSON contract even
	// when zero: an operator greps for them after every sweep.
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"Takeovers", "Expiries", "Duplicates", "BadResumes", "Failures"} {
		if _, ok := raw[key]; !ok {
			t.Errorf("stats JSON missing fleet-health counter %q", key)
		}
	}

	// The journal must reconstruct the sweep: every cell planned and
	// completed exactly once, and the summary sweep-done record present.
	closeJournal()
	jf, err := os.Open(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := flog.Read(jf)
	jf.Close()
	if err != nil {
		t.Fatal(err)
	}
	fleet := flog.BuildFleet(recs)
	if len(fleet.Cells) != len(cells) {
		t.Fatalf("journal reconstructs %d cells, want %d", len(fleet.Cells), len(cells))
	}
	for _, c := range fleet.Cells {
		if !c.Completed || len(c.Attempts) != 1 {
			t.Errorf("cell %s: completed=%v attempts=%d, want clean single-attempt completion",
				c.Cell, c.Completed, len(c.Attempts))
		}
	}
	sawDone := false
	for _, r := range recs {
		if r.Event == flog.EvSweepDone {
			sawDone = true
		}
	}
	if !sawDone {
		t.Error("journal has no sweep-done record")
	}

	man, err := experiments.OpenManifest(manifestPath)
	if err != nil {
		t.Fatal(err)
	}
	defer man.Close()
	if man.Len() != len(cells) {
		t.Fatalf("manifest holds %d cells, want %d", man.Len(), len(cells))
	}

	// A second coordinator over the same manifest has nothing left to lease
	// and resolves without any worker connecting.
	stats2, err := runCoordinator(ctx, io.Discard, coordRunConfig{
		Addr: "127.0.0.1:0", Cells: cells, Manifest: manifestPath,
	})
	if err != nil {
		t.Fatalf("restarted coordinator: %v", err)
	}
	if stats2.Skipped != len(cells) || stats2.Planned != 0 {
		t.Fatalf("restarted coordinator stats %+v, want all %d cells skipped", stats2, len(cells))
	}
}

// TestSingleRunCancelled pins the signal path below main: a cancelled
// context aborts a single run with an error wrapping context.Canceled.
func TestSingleRunCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	live, _ := parseDesign("live")
	err := singleRun(ctx, io.Discard, singleRunConfig{
		Workload: "pgbench", Design: live, Interval: 1000,
		Records: 200_000, Seed: 1,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestSingleRunScheme runs one workload under a pure cache scheme and
// checks the JSON output carries the scheme name and its hit statistics.
func TestSingleRunScheme(t *testing.T) {
	var buf bytes.Buffer
	err := singleRun(context.Background(), &buf, singleRunConfig{
		Workload: "pgbench", Design: designChoice{name: "none"}, Scheme: "alloy",
		Records: 200_000, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Scheme string
		Result struct {
			Report struct {
				Scheme *struct {
					Name     string
					Accesses uint64
					Hits     uint64
					HitRate  float64
				}
			}
		}
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if out.Scheme != "alloy" {
		t.Fatalf("output Scheme = %q, want alloy", out.Scheme)
	}
	sr := out.Result.Report.Scheme
	if sr == nil || sr.Name != "alloy" || sr.Accesses == 0 {
		t.Fatalf("scheme report missing or empty: %+v", sr)
	}
	if sr.Hits == 0 || sr.HitRate <= 0 || sr.HitRate > 1 {
		t.Fatalf("implausible hit stats: %+v", sr)
	}
}

// TestMainSchemeUsageErrors re-executes main() with flag combinations that
// must die as usage errors (exit 2): a pure cache scheme combined with
// migration-only flags, and an unknown scheme name. memcache keeps the
// migration engine, so the same flags must be accepted there (the run is
// kept tiny and merely has to get past flag validation).
func TestMainSchemeUsageErrors(t *testing.T) {
	if args := os.Getenv("HMSIM_SCHEME_HELPER"); args != "" {
		os.Args = append([]string{"hmsim"}, strings.Split(args, " ")...)
		main()
		return
	}
	if testing.Short() {
		t.Skip("spawns child processes; skipped in -short")
	}
	bin, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	run := func(args string) (int, string) {
		t.Helper()
		cmd := exec.Command(bin, "-test.run", "^TestMainSchemeUsageErrors$")
		cmd.Env = append(os.Environ(), "HMSIM_SCHEME_HELPER="+args)
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		err := cmd.Run()
		if err == nil {
			return 0, stderr.String()
		}
		var exitErr *exec.ExitError
		if !errors.As(err, &exitErr) {
			t.Fatalf("%s: %v (stderr %q)", args, err, stderr.String())
		}
		return exitErr.ExitCode(), stderr.String()
	}
	for _, args := range []string{
		"-workload pgbench -scheme alloy -design live",
		"-workload pgbench -scheme alloy -interval 500",
		"-workload pgbench -scheme cachemode -audit",
		"-workload pgbench -scheme bogus",
		"-workload pgbench -scheme memcache -design none",
		"-exp fig11a -scheme alloy", // -scheme is single-run only
	} {
		if code, errOut := run(args); code != 2 {
			t.Errorf("%s: exit %d (stderr %q), want usage error 2", args, code, errOut)
		}
	}
	// memcache keeps the migration machinery: the same flags validate.
	if code, errOut := run("-workload pgbench -scheme memcache -design live -interval 1000 -audit -records 20000"); code != 0 {
		t.Errorf("memcache with migration flags exited %d (stderr %q), want success", code, errOut)
	}
}

// TestMainSignalExit sends a real SIGINT to hmsim's main() mid-run (via the
// re-executed test binary) and checks the conventional exit code 130.
func TestMainSignalExit(t *testing.T) {
	if os.Getenv("HMSIM_MAIN_HELPER") == "1" {
		os.Args = []string{"hmsim", "-workload", "pgbench", "-design", "live", "-records", "100000000"}
		main()
		return
	}
	if testing.Short() {
		t.Skip("spawns a child process; skipped in -short")
	}
	bin, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin, "-test.run", "^TestMainSignalExit$")
	cmd.Env = append(os.Environ(), "HMSIM_MAIN_HELPER=1")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond) // let the run get past flag parsing and start simulating
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	err = cmd.Wait()
	var exitErr *exec.ExitError
	if !errors.As(err, &exitErr) {
		t.Fatalf("child did not exit with an error after SIGINT (err %v, stderr %q)", err, stderr.String())
	}
	if code := exitErr.ExitCode(); code != 130 {
		t.Fatalf("exit code %d after SIGINT, want 130 (stderr %q)", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "cancelled") {
		t.Errorf("stderr does not mention cancellation: %q", stderr.String())
	}
}
