package main

import (
	"bytes"
	"encoding/json"
	"testing"

	"heteromem"
)

// TestSingleRunMetricsJSON pins the acceptance contract of `hmsim
// -workload ... -metrics -events N`: the emitted JSON must carry at least
// swap counts, per-region queue-latency histograms, P-bit stall counts,
// and background-copy traffic, plus the structured event trace.
func TestSingleRunMetricsJSON(t *testing.T) {
	var buf bytes.Buffer
	live, ok := parseDesign("live")
	if !ok {
		t.Fatal("parseDesign rejected \"live\"")
	}
	err := singleRun(&buf, singleRunConfig{
		Workload: "pgbench", Design: live, Interval: 1000,
		Records: 200_000, Seed: 1,
		Metrics: true, Events: 64, Audit: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	var out struct {
		Workload string
		Design   string
		Records  uint64
		Result   struct {
			Metrics *struct {
				Counters   map[string]uint64          `json:"counters"`
				Gauges     map[string]int64           `json:"gauges"`
				Histograms map[string]json.RawMessage `json:"histograms"`
			} `json:"Metrics"`
			Events      []json.RawMessage
			EventsTotal uint64
		}
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if out.Workload != "pgbench" || out.Design != "live" || out.Records != 200_000 {
		t.Fatalf("run summary wrong: %+v", out)
	}
	m := out.Result.Metrics
	if m == nil {
		t.Fatal("-metrics produced no metrics snapshot")
	}
	for _, counter := range []string{
		"memctrl.swap.started",
		"memctrl.swap.completed",
		"memctrl.pstall.redirects",
		"memctrl.copy.bytes",
		"memctrl.copy.sub_blocks",
	} {
		if _, ok := m.Counters[counter]; !ok {
			t.Errorf("counter %q missing from metrics JSON", counter)
		}
	}
	if m.Counters["memctrl.swap.completed"] == 0 {
		t.Error("no swaps completed in a workload that should migrate")
	}
	if m.Counters["memctrl.copy.bytes"] == 0 {
		t.Error("no background copy traffic recorded")
	}
	for _, hist := range []string{"memctrl.qlat.on", "memctrl.qlat.off"} {
		if _, ok := m.Histograms[hist]; !ok {
			t.Errorf("per-region queue-latency histogram %q missing", hist)
		}
	}
	if len(out.Result.Events) == 0 || out.Result.EventsTotal == 0 {
		t.Error("-events produced no event trace")
	}
}

// TestParseDesign covers the flag-validation path.
func TestParseDesign(t *testing.T) {
	if _, ok := parseDesign("bogus"); ok {
		t.Fatal("bogus design accepted")
	}
	for _, name := range []string{"n", "n-1", "n1", "live", "none", "static", "LIVE"} {
		if _, ok := parseDesign(name); !ok {
			t.Errorf("design %q rejected", name)
		}
	}
	if d, _ := parseDesign("none"); d.migrate {
		t.Error("design none should not migrate")
	}
}

// TestSingleRunFaultInjection pins the fault-injection contract end to end:
// a seeded fault campaign over an audited run must finish without error and
// report a balanced disposition ledger in the JSON output.
func TestSingleRunFaultInjection(t *testing.T) {
	live, _ := parseDesign("live")
	var buf bytes.Buffer
	err := singleRun(&buf, singleRunConfig{
		Workload: "pgbench", Design: live, Interval: 1000,
		Records: 100_000, Seed: 1, Audit: true,
		Fault: heteromem.FaultConfig{Seed: 7, DeviceRate: 1e-4, CopyRate: 1e-4, BulkRate: 1e-4},
	})
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Result struct {
			Faults *heteromem.FaultReport
		}
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	f := out.Result.Faults
	if f == nil {
		t.Fatal("fault campaign produced no Faults ledger")
	}
	if f.Injected == 0 {
		t.Fatal("fault campaign injected nothing")
	}
	if !f.Balanced(f.Injected) {
		t.Fatalf("fault ledger unbalanced: %+v", f)
	}
}
