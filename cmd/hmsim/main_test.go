package main

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestSingleRunMetricsJSON pins the acceptance contract of `hmsim
// -workload ... -metrics -events N`: the emitted JSON must carry at least
// swap counts, per-region queue-latency histograms, P-bit stall counts,
// and background-copy traffic, plus the structured event trace.
func TestSingleRunMetricsJSON(t *testing.T) {
	var buf bytes.Buffer
	err := singleRun(&buf, singleRunConfig{
		Workload: "pgbench", Design: "live", Interval: 1000,
		Records: 200_000, Seed: 1,
		Metrics: true, Events: 64, Audit: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	var out struct {
		Workload string
		Design   string
		Records  uint64
		Result   struct {
			Metrics *struct {
				Counters   map[string]uint64          `json:"counters"`
				Gauges     map[string]int64           `json:"gauges"`
				Histograms map[string]json.RawMessage `json:"histograms"`
			} `json:"Metrics"`
			Events      []json.RawMessage
			EventsTotal uint64
		}
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if out.Workload != "pgbench" || out.Design != "live" || out.Records != 200_000 {
		t.Fatalf("run summary wrong: %+v", out)
	}
	m := out.Result.Metrics
	if m == nil {
		t.Fatal("-metrics produced no metrics snapshot")
	}
	for _, counter := range []string{
		"memctrl.swap.started",
		"memctrl.swap.completed",
		"memctrl.pstall.redirects",
		"memctrl.copy.bytes",
		"memctrl.copy.sub_blocks",
	} {
		if _, ok := m.Counters[counter]; !ok {
			t.Errorf("counter %q missing from metrics JSON", counter)
		}
	}
	if m.Counters["memctrl.swap.completed"] == 0 {
		t.Error("no swaps completed in a workload that should migrate")
	}
	if m.Counters["memctrl.copy.bytes"] == 0 {
		t.Error("no background copy traffic recorded")
	}
	for _, hist := range []string{"memctrl.qlat.on", "memctrl.qlat.off"} {
		if _, ok := m.Histograms[hist]; !ok {
			t.Errorf("per-region queue-latency histogram %q missing", hist)
		}
	}
	if len(out.Result.Events) == 0 || out.Result.EventsTotal == 0 {
		t.Error("-events produced no event trace")
	}
}

// TestSingleRunRejectsBadDesign covers the flag-validation path.
func TestSingleRunRejectsBadDesign(t *testing.T) {
	var buf bytes.Buffer
	err := singleRun(&buf, singleRunConfig{Workload: "pgbench", Design: "bogus", Interval: 1000, Records: 10})
	if err == nil {
		t.Fatal("bogus design accepted")
	}
}
