// Command hmsim runs the paper's experiments: every table and figure of
// the evaluation has a driver, selected with -exp. It also supports a
// single-run mode (-workload) that simulates one workload through one
// migration design and emits the full result — optionally with metrics,
// an event trace, and fault injection — as JSON.
//
// Usage:
//
//	hmsim -exp table4                 # reproduce Table IV
//	hmsim -exp fig11a -records 1e6    # Fig. 11 at swap interval 1000
//	hmsim -exp all -timeout 10m       # everything, bounded wall clock
//	hmsim -list                       # show available experiments
//
//	hmsim -workload pgbench -design live -records 1000000 -metrics
//	hmsim -workload tpcc -design n-1 -audit -events 256
//	hmsim -workload pgbench -scheme alloy-pred    # DRAM-cache scheme, no migration
//	hmsim -workload pgbench -scheme memcache:25 -design live
//	hmsim -workload pgbench -design live -audit \
//	    -fault-device 1e-4 -fault-copy 1e-4 -fault-seed 7
//
// A sweep can also be distributed across processes and machines: one
// coordinator owns the manifest and leases cells to any number of workers,
// which may crash (or be SIGKILLed) and be replaced at any point without
// changing the sweep's results:
//
//	hmsim -coordinate :9090 -manifest sweep.jsonl -designs live,n-1 \
//	    -schemes migrate,alloy,cachemode,memcache
//	hmsim -worker host:9090        # run on as many machines as you like
//
// SIGINT/SIGTERM cancel any mode gracefully (the coordinator drains its
// workers; runs stop at the next cancellation poll) and exit with code 130.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"heteromem"
	"heteromem/internal/dsweep"
	"heteromem/internal/experiments"
	"heteromem/internal/flog"
	"heteromem/internal/scheme"
)

func main() {
	var (
		exp       = flag.String("exp", "", "experiment id (see -list), or 'all'")
		list      = flag.Bool("list", false, "list available experiments")
		records   = flag.Uint64("records", 0, "trace records per simulation (0 = experiment default)")
		warmup    = flag.Uint64("warmup", 0, "warmup records excluded from statistics (0 = records/2)")
		seed      = flag.Int64("seed", 1, "workload generator seed")
		workloads = flag.String("workloads", "", "comma-separated workload subset (default: all)")
		channels  = flag.Int("channels", 0, "shard the controller across this many channels (power of two; 0 or 1 = single controller); sharded runs execute deterministically in parallel")
		timeout   = flag.Duration("timeout", 0, "experiment mode: wall-clock budget; exceeded runs abort between simulations")
		listen    = flag.String("listen", "", "experiment/coordinator mode: serve live sweep telemetry (/metrics, /progress, pprof) on this address, e.g. :8080 or :0")
		manifest  = flag.String("manifest", "", "experiment/coordinator mode: record completed runs in this JSONL file and skip cells it already holds (crash-resilient sweeps)")

		// Distributed sweep (coordinator/worker) mode.
		coordinate  = flag.String("coordinate", "", "coordinator mode: lease sweep cells to workers on this address, e.g. :9090")
		workerAddr  = flag.String("worker", "", "worker mode: execute cells leased by the coordinator at this address")
		workerName  = flag.String("name", "", "worker mode: worker name in coordinator logs (default host-pid)")
		designs     = flag.String("designs", "live", "coordinator mode: comma-separated migration designs for the workloads x designs sweep grid")
		schemes     = flag.String("schemes", "", "coordinator mode: comma-separated on-package schemes for the sweep grid (migrate, alloy[-pred], cachemode, memcache[-pred][:PCT]); cache schemes sweep once per workload as design 'none'")
		leaseTTL    = flag.Duration("lease-ttl", 0, "coordinator mode: lease expiry without a heartbeat (0 = default); must exceed the wall time between worker checkpoints")
		spillDir    = flag.String("spill-dir", "", "coordinator mode: persist in-flight checkpoints here so a restarted coordinator resumes takeover cells mid-run")
		maxAttempts = flag.Int("max-attempts", 0, "coordinator mode: lease attempts per cell before it fails permanently (0 = default)")
		journalOut  = flag.String("journal-out", "", "coordinator/worker mode: append the structured JSONL lifecycle journal to this file (hmreport -fleet reconstructs the sweep from it)")

		// Single-run mode.
		workloadName = flag.String("workload", "", "single-run mode: workload name (see heteromem.Workloads)")
		design       = flag.String("design", "live", "single-run migration design: n, n-1, live, or none")
		schemeName   = flag.String("scheme", "", "single-run on-package capacity scheme: migrate (default), alloy, alloy-pred, cachemode, memcache[:PCT], memcache-pred[:PCT]; pure cache schemes take no -design/-interval/-audit")
		interval     = flag.Uint64("interval", 1000, "single-run swap interval (accesses per epoch)")
		page         = flag.Uint64("page", 0, "single-run macro page size in bytes (0 = Table III default)")
		metrics      = flag.Bool("metrics", false, "single-run: collect and emit the metrics snapshot")
		events       = flag.Int("events", 0, "single-run: keep the last N structured pipeline events")
		audit        = flag.Bool("audit", false, "single-run: verify translation-table invariants throughout")
		traceOut     = flag.String("trace-out", "", "single-run: write a cycle-domain span trace as Chrome trace-event JSON to this file")
		seriesOut    = flag.String("series-out", "", "single-run: write the per-epoch time series as JSONL to this file")

		// Single-run checkpoint/resume.
		cpuProfile = flag.String("cpuprofile", "", "single-run: write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "single-run: write a heap profile to this file at exit")

		ckOut   = flag.String("checkpoint-out", "", "single-run: write run-state checkpoints to this file (atomically replaced each time)")
		ckEvery = flag.Uint64("checkpoint-every", 0, "single-run: records between checkpoints (requires -checkpoint-out)")
		resume  = flag.String("resume", "", "single-run: resume from this checkpoint file")
		ckInfo  = flag.String("checkpoint-info", "", "inspect a checkpoint file (validates checksums, prints metadata as JSON) and exit")

		// Single-run fault injection (see heteromem.FaultConfig).
		faultSeed     = flag.Uint64("fault-seed", 0, "single-run: fault injector PRNG seed")
		faultDevice   = flag.Float64("fault-device", 0, "single-run: DRAM burst fault probability [0,1]")
		faultCopy     = flag.Float64("fault-copy", 0, "single-run: migration copy-leg fault probability [0,1]")
		faultBulk     = flag.Float64("fault-bulk", 0, "single-run: bulk step-completion fault probability [0,1]")
		faultSchedule = flag.String("fault-schedule", "", "single-run: exact fault ordinals, e.g. 'copy@3,device@100x2,bulk@1-4'")
		faultRetries  = flag.Int("fault-retries", 0, "single-run: retry budget per faulted operation (0 = default)")
		faultBackoff  = flag.Int64("fault-backoff", 0, "single-run: base retry backoff in cycles (0 = default)")
		faultRetire   = flag.Int("fault-retire-after", 0, "single-run: faults on one frame before its slot retires (0 = default)")
		faultDegrade  = flag.Int("fault-degrade-budget", 0, "single-run: total faults before migration degrades to static (0 = never)")
	)
	flag.Parse()

	usageErr := func(format string, args ...interface{}) {
		fmt.Fprintf(os.Stderr, "hmsim: "+format+"\n", args...)
		os.Exit(2)
	}

	if *list {
		fmt.Println("available experiments:")
		for _, name := range experiments.Names() {
			fmt.Println("  " + name)
		}
		return
	}

	if *ckInfo != "" {
		if err := printCheckpointInfo(os.Stdout, *ckInfo); err != nil {
			fmt.Fprintf(os.Stderr, "hmsim: %v\n", err)
			os.Exit(1)
		}
		return
	}

	// Validate the flag set up front so misuse fails immediately with a
	// usage error instead of surfacing mid-run (or being ignored). Exactly
	// one mode flag selects the mode; every other flag belongs to one or
	// more modes and is rejected outside them.
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	const (
		modeSingle = "single"
		modeExp    = "exp"
		modeCoord  = "coordinate"
		modeWorker = "worker"
	)
	mode := ""
	for _, m := range []struct {
		name string
		on   bool
	}{
		{modeSingle, *workloadName != ""},
		{modeExp, *exp != ""},
		{modeCoord, *coordinate != ""},
		{modeWorker, *workerAddr != ""},
	} {
		if !m.on {
			continue
		}
		if mode != "" {
			usageErr("-workload, -exp, -coordinate, and -worker are mutually exclusive")
		}
		mode = m.name
	}
	onlyIn := func(flags []string, allowed bool, what string) {
		if allowed {
			return
		}
		for _, name := range flags {
			if set[name] {
				usageErr("-%s applies only to %s", name, what)
			}
		}
	}
	onlyIn([]string{
		"design", "scheme", "metrics", "events", "audit",
		"trace-out", "series-out", "cpuprofile", "memprofile",
		"checkpoint-out", "resume",
		"fault-seed", "fault-device", "fault-copy", "fault-bulk",
		"fault-schedule", "fault-retries", "fault-backoff",
		"fault-retire-after", "fault-degrade-budget",
	}, mode == modeSingle, "single-run mode (-workload)")
	onlyIn([]string{"interval", "page", "checkpoint-every"},
		mode == modeSingle || mode == modeCoord, "single-run or coordinator mode")
	onlyIn([]string{"timeout"}, mode == modeExp, "experiment mode (-exp)")
	onlyIn([]string{"workloads", "listen", "manifest"},
		mode == modeExp || mode == modeCoord, "experiment or coordinator mode")
	onlyIn([]string{"designs", "schemes", "lease-ttl", "spill-dir", "max-attempts"},
		mode == modeCoord, "coordinator mode (-coordinate)")
	onlyIn([]string{"journal-out"},
		mode == modeCoord || mode == modeWorker, "coordinator or worker mode")
	onlyIn([]string{"name"}, mode == modeWorker, "worker mode (-worker)")
	onlyIn([]string{"records", "warmup", "seed", "channels"},
		mode != modeWorker, "a mode that simulates locally (workers take cell parameters from their leases)")
	if *events < 0 {
		usageErr("-events must be >= 0, got %d", *events)
	}
	if *channels < 0 {
		usageErr("-channels must be >= 0, got %d", *channels)
	}
	if *records > 0 && *warmup >= *records {
		usageErr("-warmup (%d) must be smaller than -records (%d)", *warmup, *records)
	}
	if *timeout < 0 {
		usageErr("-timeout must be >= 0, got %v", *timeout)
	}
	if *leaseTTL < 0 {
		usageErr("-lease-ttl must be >= 0, got %v", *leaseTTL)
	}
	if *maxAttempts < 0 {
		usageErr("-max-attempts must be >= 0, got %d", *maxAttempts)
	}
	if mode == modeSingle {
		if *ckEvery > 0 && *ckOut == "" {
			usageErr("-checkpoint-every requires -checkpoint-out")
		}
		if *ckOut != "" && *ckEvery == 0 {
			usageErr("-checkpoint-out requires -checkpoint-every")
		}
	}

	// Every mode runs under one signal-aware context: the first SIGINT or
	// SIGTERM cancels it (single runs stop at the next cancellation poll,
	// sweeps between cells, the coordinator drains its workers) and the
	// process exits with the conventional 130. A second signal kills the
	// process immediately via the restored default handler.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	go func() {
		// After the first signal cancels ctx, unregister the handler so a
		// second signal gets the default disposition and kills a stuck drain.
		<-ctx.Done()
		stopSignals()
	}()
	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "hmsim: %v\n", err)
		if ctx.Err() != nil {
			os.Exit(130)
		}
		os.Exit(1)
	}

	if *workloadName != "" {
		d, ok := parseDesign(*design)
		if !ok {
			usageErr("unknown design %q (want n, n-1, live, or none)", *design)
		}
		sp, err := scheme.Parse(*schemeName)
		if err != nil {
			usageErr("%v", err)
		}
		iv := *interval
		if sp.IsCache() {
			// A pure cache scheme runs no migration engine, so the
			// migration-only flags would be silently meaningless; reject
			// them outright (memcache keeps its memory part migrating and
			// so keeps these flags).
			for _, name := range []string{"design", "interval", "audit"} {
				if set[name] {
					usageErr("-%s does not apply to scheme %s (no migration engine)", name, sp)
				}
			}
			d, iv = designChoice{name: "none"}, 0
		} else if sp.Kind == scheme.KindMemCache && !d.migrate {
			usageErr("scheme %s needs a migrating -design (its memory part runs the paper's migration)", sp)
		}
		if d.migrate && iv == 0 {
			usageErr("-interval must be > 0 when migration is enabled")
		}
		fcfg := heteromem.FaultConfig{
			Seed:          *faultSeed,
			DeviceRate:    *faultDevice,
			CopyRate:      *faultCopy,
			BulkRate:      *faultBulk,
			Schedule:      *faultSchedule,
			RetryBudget:   *faultRetries,
			RetryBackoff:  *faultBackoff,
			RetireAfter:   *faultRetire,
			DegradeBudget: *faultDegrade,
		}
		if err := fcfg.Validate(); err != nil {
			usageErr("%v", err)
		}
		// Profiling brackets the simulation itself; the profile files are
		// finalized before any error exit so a failed run still profiles.
		var cpuFile *os.File
		if *cpuProfile != "" {
			f, err := os.Create(*cpuProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "hmsim: %v\n", err)
				os.Exit(1)
			}
			if err := pprof.StartCPUProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "hmsim: cpu profile: %v\n", err)
				os.Exit(1)
			}
			cpuFile = f
		}
		runErr := singleRun(ctx, os.Stdout, singleRunConfig{
			Workload: *workloadName, Design: d, Scheme: *schemeName, Interval: iv, Page: *page,
			Channels: *channels,
			Records:  *records, Warmup: *warmup, Seed: *seed,
			Metrics: *metrics, Events: *events, Audit: *audit, Fault: fcfg,
			TraceOut: *traceOut, SeriesOut: *seriesOut,
			CheckpointOut: *ckOut, CheckpointEvery: *ckEvery, ResumeFrom: *resume,
		})
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "hmsim: cpu profile: %v\n", err)
				os.Exit(1)
			}
		}
		if *memProfile != "" {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "hmsim: %v\n", err)
				os.Exit(1)
			}
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "hmsim: heap profile: %v\n", err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "hmsim: heap profile: %v\n", err)
				os.Exit(1)
			}
		}
		if runErr != nil {
			fail(runErr)
		}
		return
	}

	if *workerAddr != "" {
		name := *workerName
		if name == "" {
			host, _ := os.Hostname()
			name = fmt.Sprintf("%s-%d", host, os.Getpid())
		}
		journal, closeJournal, err := openJournal(*journalOut, "worker", name)
		if err != nil {
			fail(err)
		}
		err = dsweep.RunWorker(ctx, *workerAddr, dsweep.WorkerConfig{
			Name:    name,
			Journal: journal,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "hmsim: "+format+"\n", args...)
			},
		})
		closeJournal()
		if err != nil {
			fail(err)
		}
		return
	}

	if *coordinate != "" {
		if *manifest == "" {
			usageErr("-coordinate requires -manifest (the durable sweep ledger)")
		}
		recs := *records
		if recs == 0 {
			recs = 1_000_000
		}
		wu := *warmup
		if wu == 0 {
			wu = recs / 2
		}
		var wls []string
		if *workloads != "" {
			wls = strings.Split(*workloads, ",")
		}
		var schs []string
		if *schemes != "" {
			schs = strings.Split(*schemes, ",")
		}
		cells, err := buildCells(wls, strings.Split(*designs, ","), schs, dsweep.CellSpec{
			Seed: *seed, PageSize: *page, Interval: *interval,
			Records: recs, Warmup: wu, Channels: *channels,
		})
		if err != nil {
			usageErr("%v", err)
		}
		host, _ := os.Hostname()
		journal, closeJournal, err := openJournal(*journalOut, "coordinator", fmt.Sprintf("%s-%d", host, os.Getpid()))
		if err != nil {
			fail(err)
		}
		_, err = runCoordinator(ctx, os.Stdout, coordRunConfig{
			Addr: *coordinate, Cells: cells, Manifest: *manifest, Listen: *listen,
			LeaseTTL: *leaseTTL, CheckpointEvery: *ckEvery,
			SpillDir: *spillDir, MaxAttempts: *maxAttempts,
			Journal: journal,
			OnListen: func(workerAddr, telemetryAddr string) {
				fmt.Fprintf(os.Stderr, "hmsim: coordinator leasing %d cells on %s\n", len(cells), workerAddr)
				if telemetryAddr != "" {
					fmt.Fprintf(os.Stderr, "hmsim: telemetry listening on http://%s\n", telemetryAddr)
				}
			},
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "hmsim: "+format+"\n", args...)
			},
		})
		closeJournal()
		if err != nil {
			fail(err)
		}
		return
	}

	if *exp == "" {
		usageErr("-exp, -workload, -coordinate, or -worker required (use -list to see experiments)")
	}

	p := experiments.Params{Records: *records, Warmup: *warmup, Seed: *seed, Channels: *channels}
	if *workloads != "" {
		p.Workloads = strings.Split(*workloads, ",")
	}

	registry := experiments.Registry()
	names := []string{*exp}
	if *exp == "all" {
		names = experiments.Names()
	}
	for _, name := range names {
		if _, ok := registry[name]; !ok {
			usageErr("unknown experiment %q (use -list)", name)
		}
	}

	runCtx := ctx
	if *timeout > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	err := runExperiments(runCtx, os.Stdout, expRunConfig{
		Names: names, Params: p, Listen: *listen, Manifest: *manifest,
		OnListen: func(addr string) {
			fmt.Fprintf(os.Stderr, "hmsim: telemetry listening on http://%s\n", addr)
		},
	})
	if err != nil {
		fail(err)
	}
}

// expRunConfig collects the experiment-mode inputs.
type expRunConfig struct {
	Names    []string
	Params   experiments.Params
	Listen   string            // telemetry listen address ("" disables)
	Manifest string            // sweep manifest JSONL path ("" disables)
	OnListen func(addr string) // called with the bound address once listening
}

// runExperiments runs the named drivers in order, optionally serving live
// sweep telemetry while they execute. The telemetry server is shut down
// cleanly whether the sweep finishes, fails, or the context is cancelled.
func runExperiments(ctx context.Context, w io.Writer, c expRunConfig) error {
	p := c.Params
	if c.Manifest != "" {
		man, err := experiments.OpenManifest(c.Manifest)
		if err != nil {
			return fmt.Errorf("manifest: %w", err)
		}
		defer func() {
			fmt.Fprintf(os.Stderr, "hmsim: manifest %s: %d cells ran, %d served from manifest\n",
				c.Manifest, man.Ran(), man.Hits())
			if err := man.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "hmsim: closing manifest: %v\n", err)
			}
		}()
		p.Manifest = man
	}
	if c.Listen != "" {
		tel := experiments.NewTelemetry()
		p.Telemetry = tel
		srv, err := serveTelemetry(c.Listen, tel)
		if err != nil {
			return fmt.Errorf("telemetry: %w", err)
		}
		defer srv.Close()
		if c.OnListen != nil {
			c.OnListen(srv.Addr())
		}
	}
	registry := experiments.Registry()
	for _, name := range c.Names {
		if err := registry[name](ctx, w, p); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// buildCells expands a workloads x designs x schemes grid into validated
// sweep cells. base supplies the shared cell parameters (seed, page size,
// interval, record budget, warmup, channels); an empty workload list means
// every built-in workload, an empty scheme list means the default migration
// scheme. Pure cache schemes have no design dimension: they produce one
// cell per workload with design "none", regardless of the -designs grid.
func buildCells(workloads, designs, schemes []string, base dsweep.CellSpec) ([]dsweep.CellSpec, error) {
	if len(workloads) == 0 {
		workloads = heteromem.Workloads()
	}
	if len(schemes) == 0 {
		schemes = []string{"migrate"}
	}
	cells := make([]dsweep.CellSpec, 0, len(workloads)*len(designs)*len(schemes))
	for _, wl := range workloads {
		for _, sch := range schemes {
			sch = strings.TrimSpace(sch)
			sp, err := scheme.Parse(sch)
			if err != nil {
				return nil, err
			}
			if sp.IsCache() {
				spec := base
				spec.Workload = strings.TrimSpace(wl)
				spec.Design = "none"
				spec.Interval = 0
				spec.Scheme = sch
				if err := spec.Validate(); err != nil {
					return nil, err
				}
				cells = append(cells, spec)
				continue
			}
			for _, d := range designs {
				spec := base
				spec.Workload = strings.TrimSpace(wl)
				spec.Design = strings.TrimSpace(d)
				if sch != "" && sch != "migrate" {
					spec.Scheme = sch
				}
				if err := spec.Validate(); err != nil {
					return nil, err
				}
				cells = append(cells, spec)
			}
		}
	}
	return cells, nil
}

// coordRunConfig collects the coordinator-mode inputs.
type coordRunConfig struct {
	Addr            string // worker listen address
	Cells           []dsweep.CellSpec
	Manifest        string        // durable sweep ledger JSONL path (required)
	Listen          string        // telemetry listen address ("" disables)
	LeaseTTL        time.Duration // 0 = dsweep default
	CheckpointEvery uint64        // 0 = dsweep default
	SpillDir        string
	MaxAttempts     int           // 0 = dsweep default
	Journal         *flog.Journal // structured lifecycle journal (nil disables)

	OnListen func(workerAddr, telemetryAddr string) // called once both servers are bound
	Logf     func(format string, args ...any)
}

// openJournal opens (appending) the structured JSONL journal at path. An
// empty path yields a nil journal — every emit is then a no-op. The
// returned closer flushes the file and reports a latched write error to
// stderr; the journal is an observability artifact, so journal trouble
// never fails the sweep itself.
func openJournal(path, role, node string) (*flog.Journal, func(), error) {
	if path == "" {
		return nil, func() {}, nil
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("journal-out: %w", err)
	}
	j := flog.New(f, role, node)
	return j, func() {
		if err := j.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "hmsim: journal %s: %v\n", path, err)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "hmsim: closing journal %s: %v\n", path, err)
		}
	}, nil
}

// runCoordinator serves one distributed sweep: it opens the manifest,
// optionally serves telemetry, leases cells to workers until every cell is
// complete (or the context is cancelled, which drains workers gracefully),
// and emits the final stats as JSON.
func runCoordinator(ctx context.Context, w io.Writer, c coordRunConfig) (dsweep.Stats, error) {
	man, err := experiments.OpenManifest(c.Manifest)
	if err != nil {
		return dsweep.Stats{}, fmt.Errorf("manifest: %w", err)
	}
	defer func() {
		if err := man.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "hmsim: closing manifest: %v\n", err)
		}
	}()

	var tel *experiments.Telemetry
	telAddr := ""
	if c.Listen != "" {
		tel = experiments.NewTelemetry()
		srv, err := serveTelemetry(c.Listen, tel)
		if err != nil {
			return dsweep.Stats{}, fmt.Errorf("telemetry: %w", err)
		}
		defer srv.Close()
		telAddr = srv.Addr()
	}

	coord, err := dsweep.NewCoordinator(dsweep.CoordinatorConfig{
		Cells:           c.Cells,
		Manifest:        man,
		Telemetry:       tel,
		LeaseTTL:        c.LeaseTTL,
		CheckpointEvery: c.CheckpointEvery,
		SpillDir:        c.SpillDir,
		MaxAttempts:     c.MaxAttempts,
		Logf:            c.Logf,
		Journal:         c.Journal,
	})
	if err != nil {
		return dsweep.Stats{}, err
	}
	ln, err := net.Listen("tcp", c.Addr)
	if err != nil {
		return dsweep.Stats{}, err
	}
	if c.OnListen != nil {
		c.OnListen(ln.Addr().String(), telAddr)
	}
	serveErr := coord.Serve(ctx, ln)
	stats := coord.Stats()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(struct {
		Manifest string
		dsweep.Stats
	}{Manifest: c.Manifest, Stats: stats}); err != nil && serveErr == nil {
		serveErr = err
	}
	return stats, serveErr
}

// telemetryServer is the live sweep-telemetry HTTP server.
type telemetryServer struct {
	ln   net.Listener
	srv  *http.Server
	done chan struct{}
}

// serveTelemetry binds addr and serves t's endpoints until Close.
func serveTelemetry(addr string, t *experiments.Telemetry) (*telemetryServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &telemetryServer{ln: ln, srv: &http.Server{Handler: t.Handler()}, done: make(chan struct{})}
	go func() {
		defer close(s.done)
		if err := s.srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			fmt.Fprintf(os.Stderr, "hmsim: telemetry server: %v\n", err)
		}
	}()
	return s, nil
}

// Addr returns the bound address (useful with ":0").
func (s *telemetryServer) Addr() string { return s.ln.Addr().String() }

// Close drains the server gracefully, bounded by a short timeout so a hung
// client cannot wedge shutdown.
func (s *telemetryServer) Close() {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_ = s.srv.Shutdown(ctx)
	<-s.done
}

// designChoice is a parsed -design value.
type designChoice struct {
	name    string
	migrate bool
	design  heteromem.Design
}

// parseDesign maps the -design flag to a migration design.
func parseDesign(s string) (designChoice, bool) {
	switch strings.ToLower(s) {
	case "n":
		return designChoice{name: s, migrate: true, design: heteromem.DesignN}, true
	case "n-1", "n1":
		return designChoice{name: s, migrate: true, design: heteromem.DesignN1}, true
	case "live":
		return designChoice{name: s, migrate: true, design: heteromem.DesignLive}, true
	case "none", "static":
		return designChoice{name: s}, true
	default:
		return designChoice{}, false
	}
}

// singleRunConfig collects the single-run flags.
type singleRunConfig struct {
	Workload string
	Design   designChoice
	Scheme   string // on-package scheme name ("" = migrate)
	Interval uint64
	Page     uint64
	Channels int
	Records  uint64
	Warmup   uint64
	Seed     int64
	Metrics  bool
	Events   int
	Audit    bool
	Fault    heteromem.FaultConfig

	TraceOut  string // Chrome trace-event JSON destination ("" disables)
	SeriesOut string // per-epoch JSONL destination ("" disables)

	CheckpointOut   string // checkpoint file, atomically replaced ("" disables)
	CheckpointEvery uint64 // records between checkpoints
	ResumeFrom      string // checkpoint file to resume from ("" disables)
}

// singleRunOutput is the JSON document single-run mode emits.
type singleRunOutput struct {
	Workload string
	Design   string
	Scheme   string `json:",omitempty"`
	Interval uint64
	PageSize uint64 `json:",omitempty"`
	Channels int    `json:",omitempty"`
	Records  uint64
	Seed     int64
	Result   heteromem.Result
}

func singleRun(ctx context.Context, w io.Writer, c singleRunConfig) error {
	cfg := heteromem.Config{
		MacroPageSize: c.Page,
		Scheme:        c.Scheme,
		Channels:      c.Channels,
		Warmup:        c.Warmup,
		Metrics:       c.Metrics,
		EventTrace:    c.Events,
		Audit:         c.Audit,
		Fault:         c.Fault,
	}
	if c.TraceOut != "" {
		cfg.SpanTrace = 1 << 20
	}
	if c.SeriesOut != "" {
		cfg.EpochSeries = 1 << 16
	}
	if c.Design.migrate {
		cfg.Migration = heteromem.Migration{Enabled: true, Design: c.Design.design, SwapInterval: c.Interval}
	}
	sys, err := heteromem.New(cfg)
	if err != nil {
		return err
	}
	records := c.Records
	if records == 0 {
		records = 1_000_000
	}
	var ck heteromem.Checkpointing
	if c.CheckpointOut != "" {
		ck.Every = c.CheckpointEvery
		ck.Sink = func(data []byte, n uint64) error {
			return writeFileAtomic(c.CheckpointOut, data)
		}
	}
	if c.ResumeFrom != "" {
		data, err := os.ReadFile(c.ResumeFrom)
		if err != nil {
			return fmt.Errorf("resume: %w", err)
		}
		ck.Resume = data
	}
	var res heteromem.Result
	var err2 error
	if ck.Every > 0 || ck.Resume != nil {
		res, err2 = sys.RunWorkloadCheckpointedContext(ctx, c.Workload, c.Seed, records, ck)
	} else {
		res, err2 = sys.RunWorkloadContext(ctx, c.Workload, c.Seed, records)
	}
	if err2 != nil {
		return err2
	}
	if c.TraceOut != "" {
		if err := writeTraceFile(c.TraceOut, res.Spans); err != nil {
			return err
		}
		// The file is the deliverable; keep the stdout JSON readable.
		res.Spans, res.SpansDropped = nil, 0
	}
	if c.SeriesOut != "" {
		if err := writeSeriesFile(c.SeriesOut, res.Series); err != nil {
			return err
		}
		res.Series, res.SeriesDropped = nil, 0
	}
	out := singleRunOutput{
		Workload: c.Workload,
		Design:   c.Design.name,
		Scheme:   c.Scheme,
		Interval: c.Interval,
		PageSize: c.Page,
		Channels: c.Channels,
		Records:  res.Records,
		Seed:     c.Seed,
		Result:   res,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// writeFileAtomic writes data to path via a temp file and rename, so a
// crash mid-write never leaves a truncated checkpoint behind.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// printCheckpointInfo validates a checkpoint file and prints its metadata.
func printCheckpointInfo(w io.Writer, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	info, err := heteromem.InspectCheckpoint(data)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		File string
		heteromem.CheckpointInfo
		ConfigDigestHex string
	}{File: path, CheckpointInfo: info, ConfigDigestHex: fmt.Sprintf("%016x", info.ConfigDigest)})
}

// writeTraceFile writes the span trace as Chrome trace-event JSON.
func writeTraceFile(path string, spans []heteromem.Span) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := heteromem.WriteChromeTrace(f, spans); err != nil {
		f.Close()
		return fmt.Errorf("trace-out: %w", err)
	}
	return f.Close()
}

// writeSeriesFile writes the per-epoch time series as JSONL, one sample
// per line.
func writeSeriesFile(path string, series []heteromem.EpochSample) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	for _, s := range series {
		if err := enc.Encode(s); err != nil {
			f.Close()
			return fmt.Errorf("series-out: %w", err)
		}
	}
	return f.Close()
}
