// Command hmsim runs the paper's experiments: every table and figure of
// the evaluation has a driver, selected with -exp. It also supports a
// single-run mode (-workload) that simulates one workload through one
// migration design and emits the full result — optionally with metrics,
// an event trace, and fault injection — as JSON.
//
// Usage:
//
//	hmsim -exp table4                 # reproduce Table IV
//	hmsim -exp fig11a -records 1e6    # Fig. 11 at swap interval 1000
//	hmsim -exp all -timeout 10m       # everything, bounded wall clock
//	hmsim -list                       # show available experiments
//
//	hmsim -workload pgbench -design live -records 1000000 -metrics
//	hmsim -workload tpcc -design n-1 -audit -events 256
//	hmsim -workload pgbench -design live -audit \
//	    -fault-device 1e-4 -fault-copy 1e-4 -fault-seed 7
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"heteromem"
	"heteromem/internal/experiments"
)

func main() {
	var (
		exp       = flag.String("exp", "", "experiment id (see -list), or 'all'")
		list      = flag.Bool("list", false, "list available experiments")
		records   = flag.Uint64("records", 0, "trace records per simulation (0 = experiment default)")
		warmup    = flag.Uint64("warmup", 0, "warmup records excluded from statistics (0 = records/2)")
		seed      = flag.Int64("seed", 1, "workload generator seed")
		workloads = flag.String("workloads", "", "comma-separated workload subset (default: all)")
		channels  = flag.Int("channels", 0, "shard the controller across this many channels (power of two; 0 or 1 = single controller); sharded runs execute deterministically in parallel")
		timeout   = flag.Duration("timeout", 0, "experiment mode: wall-clock budget; exceeded runs abort between simulations")
		listen    = flag.String("listen", "", "experiment mode: serve live sweep telemetry (/metrics, /progress, pprof) on this address, e.g. :8080 or :0")
		manifest  = flag.String("manifest", "", "experiment mode: record completed runs in this JSONL file and skip cells it already holds (crash-resilient sweeps)")

		// Single-run mode.
		workloadName = flag.String("workload", "", "single-run mode: workload name (see heteromem.Workloads)")
		design       = flag.String("design", "live", "single-run migration design: n, n-1, live, or none")
		interval     = flag.Uint64("interval", 1000, "single-run swap interval (accesses per epoch)")
		page         = flag.Uint64("page", 0, "single-run macro page size in bytes (0 = Table III default)")
		metrics      = flag.Bool("metrics", false, "single-run: collect and emit the metrics snapshot")
		events       = flag.Int("events", 0, "single-run: keep the last N structured pipeline events")
		audit        = flag.Bool("audit", false, "single-run: verify translation-table invariants throughout")
		traceOut     = flag.String("trace-out", "", "single-run: write a cycle-domain span trace as Chrome trace-event JSON to this file")
		seriesOut    = flag.String("series-out", "", "single-run: write the per-epoch time series as JSONL to this file")

		// Single-run checkpoint/resume.
		cpuProfile = flag.String("cpuprofile", "", "single-run: write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "single-run: write a heap profile to this file at exit")

		ckOut   = flag.String("checkpoint-out", "", "single-run: write run-state checkpoints to this file (atomically replaced each time)")
		ckEvery = flag.Uint64("checkpoint-every", 0, "single-run: records between checkpoints (requires -checkpoint-out)")
		resume  = flag.String("resume", "", "single-run: resume from this checkpoint file")
		ckInfo  = flag.String("checkpoint-info", "", "inspect a checkpoint file (validates checksums, prints metadata as JSON) and exit")

		// Single-run fault injection (see heteromem.FaultConfig).
		faultSeed     = flag.Uint64("fault-seed", 0, "single-run: fault injector PRNG seed")
		faultDevice   = flag.Float64("fault-device", 0, "single-run: DRAM burst fault probability [0,1]")
		faultCopy     = flag.Float64("fault-copy", 0, "single-run: migration copy-leg fault probability [0,1]")
		faultBulk     = flag.Float64("fault-bulk", 0, "single-run: bulk step-completion fault probability [0,1]")
		faultSchedule = flag.String("fault-schedule", "", "single-run: exact fault ordinals, e.g. 'copy@3,device@100x2,bulk@1-4'")
		faultRetries  = flag.Int("fault-retries", 0, "single-run: retry budget per faulted operation (0 = default)")
		faultBackoff  = flag.Int64("fault-backoff", 0, "single-run: base retry backoff in cycles (0 = default)")
		faultRetire   = flag.Int("fault-retire-after", 0, "single-run: faults on one frame before its slot retires (0 = default)")
		faultDegrade  = flag.Int("fault-degrade-budget", 0, "single-run: total faults before migration degrades to static (0 = never)")
	)
	flag.Parse()

	usageErr := func(format string, args ...interface{}) {
		fmt.Fprintf(os.Stderr, "hmsim: "+format+"\n", args...)
		os.Exit(2)
	}

	if *list {
		fmt.Println("available experiments:")
		for _, name := range experiments.Names() {
			fmt.Println("  " + name)
		}
		return
	}

	if *ckInfo != "" {
		if err := printCheckpointInfo(os.Stdout, *ckInfo); err != nil {
			fmt.Fprintf(os.Stderr, "hmsim: %v\n", err)
			os.Exit(1)
		}
		return
	}

	// Validate the flag set up front so misuse fails immediately with a
	// usage error instead of surfacing mid-run (or being ignored).
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	singleOnly := []string{
		"design", "interval", "page", "metrics", "events", "audit",
		"trace-out", "series-out", "cpuprofile", "memprofile",
		"checkpoint-out", "checkpoint-every", "resume",
		"fault-seed", "fault-device", "fault-copy", "fault-bulk",
		"fault-schedule", "fault-retries", "fault-backoff",
		"fault-retire-after", "fault-degrade-budget",
	}
	expOnly := []string{"workloads", "timeout", "listen", "manifest"}
	if *workloadName != "" {
		if *exp != "" {
			usageErr("-workload and -exp are mutually exclusive")
		}
		for _, name := range expOnly {
			if set[name] {
				usageErr("-%s applies only to experiment mode (-exp)", name)
			}
		}
	} else {
		for _, name := range singleOnly {
			if set[name] {
				usageErr("-%s applies only to single-run mode (-workload)", name)
			}
		}
	}
	if *events < 0 {
		usageErr("-events must be >= 0, got %d", *events)
	}
	if *channels < 0 {
		usageErr("-channels must be >= 0, got %d", *channels)
	}
	if *records > 0 && *warmup >= *records {
		usageErr("-warmup (%d) must be smaller than -records (%d)", *warmup, *records)
	}
	if *timeout < 0 {
		usageErr("-timeout must be >= 0, got %v", *timeout)
	}
	if *ckEvery > 0 && *ckOut == "" {
		usageErr("-checkpoint-every requires -checkpoint-out")
	}
	if *ckOut != "" && *ckEvery == 0 {
		usageErr("-checkpoint-out requires -checkpoint-every")
	}

	if *workloadName != "" {
		d, ok := parseDesign(*design)
		if !ok {
			usageErr("unknown design %q (want n, n-1, live, or none)", *design)
		}
		if d.migrate && *interval == 0 {
			usageErr("-interval must be > 0 when migration is enabled")
		}
		fcfg := heteromem.FaultConfig{
			Seed:          *faultSeed,
			DeviceRate:    *faultDevice,
			CopyRate:      *faultCopy,
			BulkRate:      *faultBulk,
			Schedule:      *faultSchedule,
			RetryBudget:   *faultRetries,
			RetryBackoff:  *faultBackoff,
			RetireAfter:   *faultRetire,
			DegradeBudget: *faultDegrade,
		}
		if err := fcfg.Validate(); err != nil {
			usageErr("%v", err)
		}
		// Profiling brackets the simulation itself; the profile files are
		// finalized before any error exit so a failed run still profiles.
		var cpuFile *os.File
		if *cpuProfile != "" {
			f, err := os.Create(*cpuProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "hmsim: %v\n", err)
				os.Exit(1)
			}
			if err := pprof.StartCPUProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "hmsim: cpu profile: %v\n", err)
				os.Exit(1)
			}
			cpuFile = f
		}
		runErr := singleRun(os.Stdout, singleRunConfig{
			Workload: *workloadName, Design: d, Interval: *interval, Page: *page,
			Channels: *channels,
			Records:  *records, Warmup: *warmup, Seed: *seed,
			Metrics: *metrics, Events: *events, Audit: *audit, Fault: fcfg,
			TraceOut: *traceOut, SeriesOut: *seriesOut,
			CheckpointOut: *ckOut, CheckpointEvery: *ckEvery, ResumeFrom: *resume,
		})
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "hmsim: cpu profile: %v\n", err)
				os.Exit(1)
			}
		}
		if *memProfile != "" {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "hmsim: %v\n", err)
				os.Exit(1)
			}
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "hmsim: heap profile: %v\n", err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "hmsim: heap profile: %v\n", err)
				os.Exit(1)
			}
		}
		if runErr != nil {
			fmt.Fprintf(os.Stderr, "hmsim: %v\n", runErr)
			os.Exit(1)
		}
		return
	}

	if *exp == "" {
		usageErr("-exp or -workload required (use -list to see experiments)")
	}

	p := experiments.Params{Records: *records, Warmup: *warmup, Seed: *seed, Channels: *channels}
	if *workloads != "" {
		p.Workloads = strings.Split(*workloads, ",")
	}

	registry := experiments.Registry()
	names := []string{*exp}
	if *exp == "all" {
		names = experiments.Names()
	}
	for _, name := range names {
		if _, ok := registry[name]; !ok {
			usageErr("unknown experiment %q (use -list)", name)
		}
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	err := runExperiments(ctx, os.Stdout, expRunConfig{
		Names: names, Params: p, Listen: *listen, Manifest: *manifest,
		OnListen: func(addr string) {
			fmt.Fprintf(os.Stderr, "hmsim: telemetry listening on http://%s\n", addr)
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "hmsim: %v\n", err)
		os.Exit(1)
	}
}

// expRunConfig collects the experiment-mode inputs.
type expRunConfig struct {
	Names    []string
	Params   experiments.Params
	Listen   string            // telemetry listen address ("" disables)
	Manifest string            // sweep manifest JSONL path ("" disables)
	OnListen func(addr string) // called with the bound address once listening
}

// runExperiments runs the named drivers in order, optionally serving live
// sweep telemetry while they execute. The telemetry server is shut down
// cleanly whether the sweep finishes, fails, or the context is cancelled.
func runExperiments(ctx context.Context, w io.Writer, c expRunConfig) error {
	p := c.Params
	if c.Manifest != "" {
		man, err := experiments.OpenManifest(c.Manifest)
		if err != nil {
			return fmt.Errorf("manifest: %w", err)
		}
		defer func() {
			fmt.Fprintf(os.Stderr, "hmsim: manifest %s: %d cells ran, %d served from manifest\n",
				c.Manifest, man.Ran(), man.Hits())
			if err := man.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "hmsim: closing manifest: %v\n", err)
			}
		}()
		p.Manifest = man
	}
	if c.Listen != "" {
		tel := experiments.NewTelemetry()
		p.Telemetry = tel
		srv, err := serveTelemetry(c.Listen, tel)
		if err != nil {
			return fmt.Errorf("telemetry: %w", err)
		}
		defer srv.Close()
		if c.OnListen != nil {
			c.OnListen(srv.Addr())
		}
	}
	registry := experiments.Registry()
	for _, name := range c.Names {
		if err := registry[name](ctx, w, p); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// telemetryServer is the live sweep-telemetry HTTP server.
type telemetryServer struct {
	ln   net.Listener
	srv  *http.Server
	done chan struct{}
}

// serveTelemetry binds addr and serves t's endpoints until Close.
func serveTelemetry(addr string, t *experiments.Telemetry) (*telemetryServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &telemetryServer{ln: ln, srv: &http.Server{Handler: t.Handler()}, done: make(chan struct{})}
	go func() {
		defer close(s.done)
		if err := s.srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			fmt.Fprintf(os.Stderr, "hmsim: telemetry server: %v\n", err)
		}
	}()
	return s, nil
}

// Addr returns the bound address (useful with ":0").
func (s *telemetryServer) Addr() string { return s.ln.Addr().String() }

// Close drains the server gracefully, bounded by a short timeout so a hung
// client cannot wedge shutdown.
func (s *telemetryServer) Close() {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_ = s.srv.Shutdown(ctx)
	<-s.done
}

// designChoice is a parsed -design value.
type designChoice struct {
	name    string
	migrate bool
	design  heteromem.Design
}

// parseDesign maps the -design flag to a migration design.
func parseDesign(s string) (designChoice, bool) {
	switch strings.ToLower(s) {
	case "n":
		return designChoice{name: s, migrate: true, design: heteromem.DesignN}, true
	case "n-1", "n1":
		return designChoice{name: s, migrate: true, design: heteromem.DesignN1}, true
	case "live":
		return designChoice{name: s, migrate: true, design: heteromem.DesignLive}, true
	case "none", "static":
		return designChoice{name: s}, true
	default:
		return designChoice{}, false
	}
}

// singleRunConfig collects the single-run flags.
type singleRunConfig struct {
	Workload string
	Design   designChoice
	Interval uint64
	Page     uint64
	Channels int
	Records  uint64
	Warmup   uint64
	Seed     int64
	Metrics  bool
	Events   int
	Audit    bool
	Fault    heteromem.FaultConfig

	TraceOut  string // Chrome trace-event JSON destination ("" disables)
	SeriesOut string // per-epoch JSONL destination ("" disables)

	CheckpointOut   string // checkpoint file, atomically replaced ("" disables)
	CheckpointEvery uint64 // records between checkpoints
	ResumeFrom      string // checkpoint file to resume from ("" disables)
}

// singleRunOutput is the JSON document single-run mode emits.
type singleRunOutput struct {
	Workload string
	Design   string
	Interval uint64
	PageSize uint64 `json:",omitempty"`
	Channels int    `json:",omitempty"`
	Records  uint64
	Seed     int64
	Result   heteromem.Result
}

func singleRun(w io.Writer, c singleRunConfig) error {
	cfg := heteromem.Config{
		MacroPageSize: c.Page,
		Channels:      c.Channels,
		Warmup:        c.Warmup,
		Metrics:       c.Metrics,
		EventTrace:    c.Events,
		Audit:         c.Audit,
		Fault:         c.Fault,
	}
	if c.TraceOut != "" {
		cfg.SpanTrace = 1 << 20
	}
	if c.SeriesOut != "" {
		cfg.EpochSeries = 1 << 16
	}
	if c.Design.migrate {
		cfg.Migration = heteromem.Migration{Enabled: true, Design: c.Design.design, SwapInterval: c.Interval}
	}
	sys, err := heteromem.New(cfg)
	if err != nil {
		return err
	}
	records := c.Records
	if records == 0 {
		records = 1_000_000
	}
	var ck heteromem.Checkpointing
	if c.CheckpointOut != "" {
		ck.Every = c.CheckpointEvery
		ck.Sink = func(data []byte, n uint64) error {
			return writeFileAtomic(c.CheckpointOut, data)
		}
	}
	if c.ResumeFrom != "" {
		data, err := os.ReadFile(c.ResumeFrom)
		if err != nil {
			return fmt.Errorf("resume: %w", err)
		}
		ck.Resume = data
	}
	var res heteromem.Result
	var err2 error
	if ck.Every > 0 || ck.Resume != nil {
		res, err2 = sys.RunWorkloadCheckpointed(c.Workload, c.Seed, records, ck)
	} else {
		res, err2 = sys.RunWorkload(c.Workload, c.Seed, records)
	}
	if err2 != nil {
		return err2
	}
	if c.TraceOut != "" {
		if err := writeTraceFile(c.TraceOut, res.Spans); err != nil {
			return err
		}
		// The file is the deliverable; keep the stdout JSON readable.
		res.Spans, res.SpansDropped = nil, 0
	}
	if c.SeriesOut != "" {
		if err := writeSeriesFile(c.SeriesOut, res.Series); err != nil {
			return err
		}
		res.Series, res.SeriesDropped = nil, 0
	}
	out := singleRunOutput{
		Workload: c.Workload,
		Design:   c.Design.name,
		Interval: c.Interval,
		PageSize: c.Page,
		Channels: c.Channels,
		Records:  res.Records,
		Seed:     c.Seed,
		Result:   res,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// writeFileAtomic writes data to path via a temp file and rename, so a
// crash mid-write never leaves a truncated checkpoint behind.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// printCheckpointInfo validates a checkpoint file and prints its metadata.
func printCheckpointInfo(w io.Writer, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	info, err := heteromem.InspectCheckpoint(data)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		File string
		heteromem.CheckpointInfo
		ConfigDigestHex string
	}{File: path, CheckpointInfo: info, ConfigDigestHex: fmt.Sprintf("%016x", info.ConfigDigest)})
}

// writeTraceFile writes the span trace as Chrome trace-event JSON.
func writeTraceFile(path string, spans []heteromem.Span) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := heteromem.WriteChromeTrace(f, spans); err != nil {
		f.Close()
		return fmt.Errorf("trace-out: %w", err)
	}
	return f.Close()
}

// writeSeriesFile writes the per-epoch time series as JSONL, one sample
// per line.
func writeSeriesFile(path string, series []heteromem.EpochSample) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	for _, s := range series {
		if err := enc.Encode(s); err != nil {
			f.Close()
			return fmt.Errorf("series-out: %w", err)
		}
	}
	return f.Close()
}
