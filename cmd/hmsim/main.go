// Command hmsim runs the paper's experiments: every table and figure of
// the evaluation has a driver, selected with -exp.
//
// Usage:
//
//	hmsim -exp table4                 # reproduce Table IV
//	hmsim -exp fig11a -records 1e6    # Fig. 11 at swap interval 1000
//	hmsim -exp all                    # everything (slow)
//	hmsim -list                       # show available experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"heteromem/internal/experiments"
)

func main() {
	var (
		exp       = flag.String("exp", "", "experiment id (see -list), or 'all'")
		list      = flag.Bool("list", false, "list available experiments")
		records   = flag.Uint64("records", 0, "trace records per simulation (0 = experiment default)")
		warmup    = flag.Uint64("warmup", 0, "warmup records excluded from statistics (0 = records/2)")
		seed      = flag.Int64("seed", 1, "workload generator seed")
		workloads = flag.String("workloads", "", "comma-separated workload subset (default: all)")
	)
	flag.Parse()

	if *list {
		fmt.Println("available experiments:")
		for _, name := range experiments.Names() {
			fmt.Println("  " + name)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "hmsim: -exp required (use -list to see choices)")
		os.Exit(2)
	}

	p := experiments.Params{Records: *records, Warmup: *warmup, Seed: *seed}
	if *workloads != "" {
		p.Workloads = strings.Split(*workloads, ",")
	}

	registry := experiments.Registry()
	names := []string{*exp}
	if *exp == "all" {
		names = experiments.Names()
	}
	for _, name := range names {
		run, ok := registry[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "hmsim: unknown experiment %q (use -list)\n", name)
			os.Exit(2)
		}
		if err := run(os.Stdout, p); err != nil {
			fmt.Fprintf(os.Stderr, "hmsim: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}
}
