// Command hmsim runs the paper's experiments: every table and figure of
// the evaluation has a driver, selected with -exp. It also supports a
// single-run mode (-workload) that simulates one workload through one
// migration design and emits the full result — optionally with metrics
// and an event trace — as JSON.
//
// Usage:
//
//	hmsim -exp table4                 # reproduce Table IV
//	hmsim -exp fig11a -records 1e6    # Fig. 11 at swap interval 1000
//	hmsim -exp all                    # everything (slow)
//	hmsim -list                       # show available experiments
//
//	hmsim -workload pgbench -design live -records 1000000 -metrics
//	hmsim -workload tpcc -design n-1 -audit -events 256
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"heteromem"
	"heteromem/internal/experiments"
)

func main() {
	var (
		exp       = flag.String("exp", "", "experiment id (see -list), or 'all'")
		list      = flag.Bool("list", false, "list available experiments")
		records   = flag.Uint64("records", 0, "trace records per simulation (0 = experiment default)")
		warmup    = flag.Uint64("warmup", 0, "warmup records excluded from statistics (0 = records/2)")
		seed      = flag.Int64("seed", 1, "workload generator seed")
		workloads = flag.String("workloads", "", "comma-separated workload subset (default: all)")

		// Single-run mode.
		workloadName = flag.String("workload", "", "single-run mode: workload name (see heteromem.Workloads)")
		design       = flag.String("design", "live", "single-run migration design: n, n-1, live, or none")
		interval     = flag.Uint64("interval", 1000, "single-run swap interval (accesses per epoch)")
		page         = flag.Uint64("page", 0, "single-run macro page size in bytes (0 = Table III default)")
		metrics      = flag.Bool("metrics", false, "single-run: collect and emit the metrics snapshot")
		events       = flag.Int("events", 0, "single-run: keep the last N structured pipeline events")
		audit        = flag.Bool("audit", false, "single-run: verify translation-table invariants throughout")
	)
	flag.Parse()

	if *list {
		fmt.Println("available experiments:")
		for _, name := range experiments.Names() {
			fmt.Println("  " + name)
		}
		return
	}

	if *workloadName != "" {
		if err := singleRun(os.Stdout, singleRunConfig{
			Workload: *workloadName, Design: *design, Interval: *interval, Page: *page,
			Records: *records, Warmup: *warmup, Seed: *seed,
			Metrics: *metrics, Events: *events, Audit: *audit,
		}); err != nil {
			fmt.Fprintf(os.Stderr, "hmsim: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *exp == "" {
		fmt.Fprintln(os.Stderr, "hmsim: -exp or -workload required (use -list to see experiments)")
		os.Exit(2)
	}

	p := experiments.Params{Records: *records, Warmup: *warmup, Seed: *seed}
	if *workloads != "" {
		p.Workloads = strings.Split(*workloads, ",")
	}

	registry := experiments.Registry()
	names := []string{*exp}
	if *exp == "all" {
		names = experiments.Names()
	}
	for _, name := range names {
		run, ok := registry[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "hmsim: unknown experiment %q (use -list)\n", name)
			os.Exit(2)
		}
		if err := run(os.Stdout, p); err != nil {
			fmt.Fprintf(os.Stderr, "hmsim: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}
}

// singleRunConfig collects the single-run flags.
type singleRunConfig struct {
	Workload string
	Design   string
	Interval uint64
	Page     uint64
	Records  uint64
	Warmup   uint64
	Seed     int64
	Metrics  bool
	Events   int
	Audit    bool
}

// singleRunOutput is the JSON document single-run mode emits.
type singleRunOutput struct {
	Workload string
	Design   string
	Interval uint64
	PageSize uint64 `json:",omitempty"`
	Records  uint64
	Seed     int64
	Result   heteromem.Result
}

func singleRun(w io.Writer, c singleRunConfig) error {
	cfg := heteromem.Config{
		MacroPageSize: c.Page,
		Warmup:        c.Warmup,
		Metrics:       c.Metrics,
		EventTrace:    c.Events,
		Audit:         c.Audit,
	}
	switch strings.ToLower(c.Design) {
	case "n":
		cfg.Migration = heteromem.Migration{Enabled: true, Design: heteromem.DesignN, SwapInterval: c.Interval}
	case "n-1", "n1":
		cfg.Migration = heteromem.Migration{Enabled: true, Design: heteromem.DesignN1, SwapInterval: c.Interval}
	case "live":
		cfg.Migration = heteromem.Migration{Enabled: true, Design: heteromem.DesignLive, SwapInterval: c.Interval}
	case "none", "static":
		// static mapping baseline
	default:
		return fmt.Errorf("unknown design %q (want n, n-1, live, or none)", c.Design)
	}
	sys, err := heteromem.New(cfg)
	if err != nil {
		return err
	}
	records := c.Records
	if records == 0 {
		records = 1_000_000
	}
	res, err := sys.RunWorkload(c.Workload, c.Seed, records)
	if err != nil {
		return err
	}
	out := singleRunOutput{
		Workload: c.Workload,
		Design:   c.Design,
		Interval: c.Interval,
		PageSize: c.Page,
		Records:  res.Records,
		Seed:     c.Seed,
		Result:   res,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
