// Command hmreport runs the quantitative experiments, writes their data as
// CSV files, and prints a measured-vs-paper summary — the tool that
// generated the numbers in EXPERIMENTS.md.
//
// Usage:
//
//	hmreport -out results/ [-records N] [-seed N] [-series WORKLOAD]
//
// It also post-processes distributed sweeps: -fleet reads the structured
// journal a coordinator wrote (hmsim -coordinate -journal-out) and prints
// the sweep post-mortem — takeover chains, slowest cells, per-worker
// throughput — optionally emitting a wall-clock Chrome-trace timeline with
// one lane per worker:
//
//	hmreport -fleet sweep.journal -fleet-trace-out fleet.json
//
// And it compares on-package capacity schemes from a sweep manifest
// (written by hmsim -manifest or a -coordinate sweep over a scheme grid):
// per (workload, scheme) DRAM latency, cache hit rate, the paper's η
// effectiveness against the manifest's static cells, and an estimated IPC:
//
//	hmreport -schemes sweep.jsonl -schemes-csv schemes.csv
package main

import (
	"context"
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"heteromem/internal/cpu"
	"heteromem/internal/experiments"
	"heteromem/internal/flog"
	"heteromem/internal/sim"
	"heteromem/internal/stats"
)

func main() {
	var (
		out        = flag.String("out", "results", "directory for CSV output")
		records    = flag.Uint64("records", 0, "records per simulation (0 = experiment defaults)")
		seed       = flag.Int64("seed", 1, "workload seed")
		series     = flag.String("series", "pgbench", "workload for the per-epoch effectiveness trajectory (empty disables)")
		fleet      = flag.String("fleet", "", "print a sweep post-mortem from these comma-separated journal files (hmsim -journal-out) instead of running experiments")
		fleetOut   = flag.String("fleet-trace-out", "", "with -fleet: also write the wall-clock fleet timeline as Chrome trace-event JSON to this file")
		schemes    = flag.String("schemes", "", "print a cross-scheme comparison (η vs the static cells, estimated IPC) from these comma-separated sweep manifests (hmsim -manifest / -coordinate) instead of running experiments")
		schemesCSV = flag.String("schemes-csv", "", "with -schemes: also write the comparison as CSV to this file")
	)
	flag.Parse()
	if *fleetOut != "" && *fleet == "" {
		fmt.Fprintln(os.Stderr, "hmreport: -fleet-trace-out requires -fleet")
		os.Exit(2)
	}
	if *schemesCSV != "" && *schemes == "" {
		fmt.Fprintln(os.Stderr, "hmreport: -schemes-csv requires -schemes")
		os.Exit(2)
	}
	if *fleet != "" && *schemes != "" {
		fmt.Fprintln(os.Stderr, "hmreport: -fleet and -schemes are mutually exclusive")
		os.Exit(2)
	}
	if *fleet != "" {
		if err := runFleet(os.Stdout, strings.Split(*fleet, ","), *fleetOut); err != nil {
			fmt.Fprintln(os.Stderr, "hmreport:", err)
			os.Exit(1)
		}
		return
	}
	if *schemes != "" {
		if err := runSchemes(os.Stdout, strings.Split(*schemes, ","), *schemesCSV); err != nil {
			fmt.Fprintln(os.Stderr, "hmreport:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(context.Background(), os.Stdout, *out, experiments.Params{Records: *records, Seed: *seed}, *series); err != nil {
		fmt.Fprintln(os.Stderr, "hmreport:", err)
		os.Exit(1)
	}
}

// runFleet reconstructs a distributed sweep from its structured journals
// and prints the post-mortem; traceOut optionally receives the Chrome
// trace-event timeline. Multiple journal files (a coordinator's plus any
// workers') concatenate cleanly — the coordinator records drive the
// reconstruction and worker records are tolerated.
func runFleet(w io.Writer, paths []string, traceOut string) error {
	var records []flog.Record
	for _, path := range paths {
		path = strings.TrimSpace(path)
		if path == "" {
			continue
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		recs, err := flog.Read(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		records = append(records, recs...)
	}
	if len(records) == 0 {
		return fmt.Errorf("no journal records in %s", strings.Join(paths, ","))
	}
	fleet := flog.BuildFleet(records)
	fleet.WriteSummary(w)
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		if err := fleet.WriteTrace(f); err != nil {
			f.Close()
			return fmt.Errorf("fleet-trace-out: %w", err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "fleet timeline: %s (load in chrome://tracing or ui.perfetto.dev)\n", traceOut)
	}
	return nil
}

// schemeGroupKey identifies the η baseline scope: effectiveness is only
// meaningful against a static cell of the same workload, seed, and record
// budget.
type schemeGroupKey struct {
	Workload string
	Seed     int64
	Records  uint64
}

// runSchemes reads sweep manifests and prints the cross-scheme comparison:
// one row per cell with its DRAM latency, cache hit rate, η effectiveness
// against the manifest's static cell for the same (workload, seed,
// records), and the quad-core model's estimated IPC. Cells written before
// the manifest carried design/scheme fields render with both blank and get
// no η (their design is unrecoverable from the ledger alone).
func runSchemes(w io.Writer, paths []string, csvOut string) error {
	var entries []experiments.ManifestEntry
	for _, path := range paths {
		path = strings.TrimSpace(path)
		if path == "" {
			continue
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		recs, err := experiments.ReadManifest(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		entries = append(entries, recs...)
	}
	if len(entries) == 0 {
		return fmt.Errorf("no manifest cells in %s", strings.Join(paths, ","))
	}

	// η baselines: the static cells (no migration design, default scheme).
	static := map[schemeGroupKey]float64{}
	for _, e := range entries {
		if e.Design == "" && e.Scheme == "" {
			static[schemeGroupKey{e.Workload, e.Seed, e.Records}] = e.Result.MeanDRAMLatency
		}
	}
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.Workload != b.Workload {
			return a.Workload < b.Workload
		}
		if a.Seed != b.Seed {
			return a.Seed < b.Seed
		}
		if a.Records != b.Records {
			return a.Records < b.Records
		}
		if a.Scheme != b.Scheme {
			return a.Scheme < b.Scheme
		}
		return a.Design < b.Design
	})

	model := cpu.DefaultModel()
	t := stats.NewTable("Workload", "Design", "Scheme", "DRAM lat", "On-pkg share", "Hit rate", "Effectiveness", "Est. IPC")
	rows := [][]string{{"workload", "seed", "records", "design", "scheme", "mean_lat", "dram_lat", "on_share", "hit_rate", "effectiveness_pct", "est_ipc"}}
	for _, e := range entries {
		res := e.Result
		isStatic := e.Design == "" && e.Scheme == ""
		eta, hit := "", ""
		etaCSV, hitCSV := "", ""
		if base, ok := static[schemeGroupKey{e.Workload, e.Seed, e.Records}]; ok && !isStatic {
			v := sim.Effectiveness(base, res.MeanDRAMLatency, res.Report.MeanCoreLat)
			eta = fmt.Sprintf("%.1f%%", v)
			etaCSV = fmt.Sprintf("%.2f", v)
		}
		if res.Report.Scheme != nil {
			hit = fmt.Sprintf("%.3f", res.Report.Scheme.HitRate)
			hitCSV = fmt.Sprintf("%.4f", res.Report.Scheme.HitRate)
		}
		design, schemeName := e.Design, e.Scheme
		if isStatic {
			design, schemeName = "none", "static"
		} else if schemeName == "" && e.Design != "" {
			schemeName = "migrate"
		}
		ipc := model.EstimateIPC(res.MeanLatency)
		t.AddRow(e.Workload, design, schemeName,
			fmt.Sprintf("%.1f", res.MeanDRAMLatency),
			fmt.Sprintf("%.3f", res.Report.OnShare),
			hit, eta, fmt.Sprintf("%.3f", ipc))
		rows = append(rows, []string{
			e.Workload, strconv.FormatInt(e.Seed, 10), strconv.FormatUint(e.Records, 10),
			e.Design, e.Scheme,
			fmt.Sprintf("%.3f", res.MeanLatency),
			fmt.Sprintf("%.3f", res.MeanDRAMLatency),
			fmt.Sprintf("%.4f", res.Report.OnShare),
			hitCSV, etaCSV, fmt.Sprintf("%.4f", ipc),
		})
	}
	fmt.Fprintf(w, "Cross-scheme comparison from %s (%d cells)\n", strings.Join(paths, ","), len(entries))
	if _, err := io.WriteString(w, t.String()); err != nil {
		return err
	}
	if csvOut != "" {
		if err := writeCSV(csvOut, rows); err != nil {
			return err
		}
		fmt.Fprintf(w, "schemes CSV: %s\n", csvOut)
	}
	return nil
}

// run executes the full report: CSV files into dir, the human-readable
// measured-vs-paper summary onto w. When seriesWL names a workload, the
// report also includes its per-epoch effectiveness trajectory.
func run(ctx context.Context, w io.Writer, dir string, p experiments.Params, seriesWL string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}

	// Table IV with the paper comparison.
	rows, err := experiments.Table4Data(ctx, p)
	if err != nil {
		return err
	}
	t4 := [][]string{{"workload", "core_lat", "lat_static", "lat_migrated", "best_page", "best_interval", "effectiveness_pct", "paper_pct"}}
	var sum, paperSum float64
	for _, r := range rows {
		paper := experiments.PaperTable4[r.Workload]
		t4 = append(t4, []string{
			r.Workload,
			f(r.CoreLatency), f(r.LatNoMig), f(r.BestLatMig),
			strconv.FormatUint(r.BestPage, 10), strconv.FormatUint(r.BestInterval, 10),
			f(r.Effectiveness), f(paper),
		})
		sum += r.Effectiveness
		paperSum += paper
	}
	if err := writeCSV(filepath.Join(dir, "table4.csv"), t4); err != nil {
		return err
	}
	if n := len(rows); n > 0 {
		fmt.Fprintf(w, "Table IV average effectiveness: measured %.1f%%, paper %.1f%%\n",
			sum/float64(n), paperSum/float64(n))
		for _, r := range rows {
			fmt.Fprintf(w, "  %-9s measured %5.1f%%  paper %5.1f%%\n",
				r.Workload, r.Effectiveness, experiments.PaperTable4[r.Workload])
		}
	}

	// Fig. 11 (all three intervals) and Figs. 12-14.
	for _, iv := range experiments.Intervals {
		pts, err := experiments.Fig11Data(ctx, p, iv)
		if err != nil {
			return err
		}
		rows := [][]string{{"workload", "page_bytes", "design", "latency", "on_share", "swaps"}}
		for _, pt := range pts {
			rows = append(rows, []string{
				pt.Workload, strconv.FormatUint(pt.PageSize, 10), pt.Design.String(),
				f(pt.MeanLatency), f(pt.OnShare), strconv.FormatUint(pt.Swaps, 10),
			})
		}
		if err := writeCSV(filepath.Join(dir, fmt.Sprintf("fig11_interval%d.csv", iv)), rows); err != nil {
			return err
		}
	}

	// Fig. 15 capacity sensitivity.
	pts15, err := experiments.Fig15Data(ctx, p)
	if err != nil {
		return err
	}
	rows15 := [][]string{{"workload", "capacity_bytes", "core_lat", "lat_migrated", "lat_static"}}
	for _, pt := range pts15 {
		rows15 = append(rows15, []string{
			pt.Workload, strconv.FormatUint(pt.Capacity, 10),
			f(pt.CoreLat), f(pt.LatMig), f(pt.LatNoMig),
		})
	}
	if err := writeCSV(filepath.Join(dir, "fig15.csv"), rows15); err != nil {
		return err
	}

	// Fig. 16 power.
	pts16, err := experiments.Fig16Data(ctx, p)
	if err != nil {
		return err
	}
	rows16 := [][]string{{"workload", "page_bytes", "interval", "normalized_power"}}
	minPower := -1.0
	for _, pt := range pts16 {
		rows16 = append(rows16, []string{
			pt.Workload, strconv.FormatUint(pt.PageSize, 10),
			strconv.FormatUint(pt.Interval, 10), f(pt.Normalized),
		})
		if minPower < 0 || pt.Normalized < minPower {
			minPower = pt.Normalized
		}
	}
	if err := writeCSV(filepath.Join(dir, "fig16.csv"), rows16); err != nil {
		return err
	}
	fmt.Fprintf(w, "Fig. 16 minimum power overhead: measured %.2fx, paper ~%.1fx\n",
		minPower, experiments.PaperFig16MinOverhead)

	// Per-epoch effectiveness trajectory: how fast migration converges on
	// its end-of-run η, from the series sampler rather than the aggregate.
	if seriesWL != "" {
		if err := writeTrajectory(ctx, w, dir, p, seriesWL); err != nil {
			return err
		}
	}
	fmt.Fprintf(w, "CSV files written to %s\n", dir)
	return nil
}

// writeTrajectory emits epoch_series.csv plus a decimated stdout table of
// the per-epoch effectiveness trajectory.
func writeTrajectory(ctx context.Context, w io.Writer, dir string, p experiments.Params, name string) error {
	pts, err := experiments.EpochTrajectoryData(ctx, p, name)
	if err != nil {
		return err
	}
	rows := [][]string{{"workload", "epoch", "cycle", "final", "on_share", "p_stalls", "stall_cycles", "swaps_completed", "mean_dram_lat", "effectiveness_pct"}}
	for _, pt := range pts {
		rows = append(rows, []string{
			name,
			strconv.FormatUint(pt.Epoch, 10), strconv.FormatInt(pt.Cycle, 10),
			strconv.FormatBool(pt.Final), f(pt.OnShare),
			strconv.FormatUint(pt.PStalls, 10), strconv.FormatUint(pt.StallCycles, 10),
			strconv.FormatUint(pt.SwapsCompleted, 10),
			f(pt.MeanDRAMLat), f(pt.Effectiveness),
		})
	}
	if err := writeCSV(filepath.Join(dir, "epoch_series.csv"), rows); err != nil {
		return err
	}
	fmt.Fprintf(w, "Per-epoch effectiveness trajectory (%s, live, 4MB pages, interval %d):\n",
		name, experiments.TrajectoryInterval)
	fmt.Fprintf(w, "  %7s %12s %9s %6s %10s %7s\n", "epoch", "cycle", "on-share", "swaps", "mean-dram", "eta")
	// Decimate to at most 8 rows; the final reconciling sample always prints.
	step := 1
	if len(pts) > 8 {
		step = (len(pts) + 7) / 8
	}
	for i, pt := range pts {
		if i%step != 0 && i != len(pts)-1 {
			continue
		}
		label := strconv.FormatUint(pt.Epoch, 10)
		if pt.Final {
			label = "final"
		}
		fmt.Fprintf(w, "  %7s %12d %8.1f%% %6d %10.1f %6.1f%%\n",
			label, pt.Cycle, pt.OnShare*100, pt.SwapsCompleted, pt.MeanDRAMLat, pt.Effectiveness)
	}
	return nil
}

func f(v float64) string { return strconv.FormatFloat(v, 'f', 2, 64) }

func writeCSV(path string, rows [][]string) error {
	fd, err := os.Create(path)
	if err != nil {
		return err
	}
	defer fd.Close()
	w := csv.NewWriter(fd)
	if err := w.WriteAll(rows); err != nil {
		return err
	}
	w.Flush()
	return w.Error()
}
