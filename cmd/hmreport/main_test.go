package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"heteromem/internal/experiments"
	"heteromem/internal/flog"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// goldenParams pins the report to a tiny deterministic configuration: one
// workload, a fixed seed, and few enough records that the whole sweep runs
// in well under a second.
func goldenParams() experiments.Params {
	return experiments.Params{Records: 4000, Seed: 1, Workloads: []string{"pgbench"}}
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden file (re-run with -update if intended)\n--- got ---\n%s\n--- want ---\n%s",
			name, got, want)
	}
}

// TestRunGolden locks down both hmreport outputs — the human-readable
// summary and the CSV files — against golden copies, so an accidental
// change to metric computation or report formatting shows up as a diff.
func TestRunGolden(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := run(context.Background(), &buf, dir, goldenParams(), "pgbench"); err != nil {
		t.Fatal(err)
	}

	// The output directory is a temp path; normalize it for comparison.
	summary := strings.ReplaceAll(buf.String(), dir, "<out>")
	checkGolden(t, "summary.golden", []byte(summary))

	for _, csv := range []string{"table4.csv", "fig11_interval1000.csv", "fig15.csv", "fig16.csv", "epoch_series.csv"} {
		got, err := os.ReadFile(filepath.Join(dir, csv))
		if err != nil {
			t.Fatalf("report did not write %s: %v", csv, err)
		}
		checkGolden(t, csv+".golden", got)
	}
}

// TestExperimentSummariesGolden locks down the text output of the fast
// deterministic experiment drivers (configuration tables and the hardware
// cost model, which involve no trace simulation).
func TestExperimentSummariesGolden(t *testing.T) {
	reg := experiments.Registry()
	for _, name := range []string{"table2", "table3", "fig10"} {
		run, ok := reg[name]
		if !ok {
			t.Fatalf("experiment %q missing from registry", name)
		}
		var buf bytes.Buffer
		if err := run(context.Background(), &buf, goldenParams()); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		checkGolden(t, name+".golden", buf.Bytes())
	}
}

// TestSchemesGolden locks down hmreport -schemes end to end: a tiny
// deterministic scheme sweep populates a real manifest (through the same
// runTrace/store path a production sweep uses), and the rendered comparison
// table and CSV must match their goldens byte-for-byte.
func TestSchemesGolden(t *testing.T) {
	dir := t.TempDir()
	manifestPath := filepath.Join(dir, "sweep.jsonl")
	man, err := experiments.OpenManifest(manifestPath)
	if err != nil {
		t.Fatal(err)
	}
	p := goldenParams()
	p.Manifest = man
	p.Parallelism = 1 // deterministic manifest line order
	if err := experiments.Schemes(context.Background(), io.Discard, p); err != nil {
		t.Fatal(err)
	}
	if err := man.Close(); err != nil {
		t.Fatal(err)
	}

	csvPath := filepath.Join(dir, "schemes.csv")
	var buf bytes.Buffer
	if err := runSchemes(&buf, []string{manifestPath}, csvPath); err != nil {
		t.Fatal(err)
	}
	summary := strings.ReplaceAll(buf.String(), dir, "<out>")
	checkGolden(t, "schemes_summary.golden", []byte(summary))
	got, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "schemes.csv.golden", got)

	// A missing manifest and an empty one both fail cleanly.
	if err := runSchemes(io.Discard, []string{filepath.Join(dir, "nope.jsonl")}, ""); err == nil {
		t.Error("missing manifest accepted")
	}
	empty := filepath.Join(dir, "empty.jsonl")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runSchemes(io.Discard, []string{empty}, ""); err == nil {
		t.Error("empty manifest accepted")
	}
}

// writeFleetJournal synthesizes a deterministic coordinator journal with
// one takeover chain (cell pgbench/live: expired on w0, bad resume on w1,
// completed on w1's retry) and one clean cell, plus interleaved worker
// records that the reconstruction must skip.
func writeFleetJournal(t *testing.T, path string) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	t0 := time.Date(2026, 8, 9, 12, 0, 0, 0, time.UTC)
	n := 0
	clock := func() time.Time {
		ts := t0.Add(time.Duration(n) * 500 * time.Millisecond)
		n++
		return ts
	}
	coord := flog.New(f, "coordinator", "coord-1", flog.WithClock(clock))
	wj := flog.New(f, "worker", "w0", flog.WithClock(clock))

	wj.Emit(flog.Record{Event: flog.EvDial})
	coord.Emit(flog.Record{Event: flog.EvPlanned, Cell: "pgbench/live", Key: "ka"})
	coord.Emit(flog.Record{Event: flog.EvPlanned, Cell: "indexer/none", Key: "kb"})
	coord.Emit(flog.Record{Event: flog.EvLeased, Cell: "pgbench/live", Key: "ka", Worker: "w0", Lease: 1, Attempt: 1})
	coord.Emit(flog.Record{Event: flog.EvLeased, Cell: "indexer/none", Key: "kb", Worker: "w1", Lease: 2, Attempt: 1})
	coord.Emit(flog.Record{Event: flog.EvHeartbeat, Level: flog.LevelDebug, Worker: "w0", Lease: 1, Records: 2000, Bytes: 96, RTTMicros: 120})
	coord.Emit(flog.Record{Event: flog.EvCompleted, Worker: "w1", Lease: 2, Records: 8000})
	coord.Emit(flog.Record{Event: flog.EvExpired, Level: flog.LevelWarn, Worker: "w0", Lease: 1, Attempt: 1, Err: "missed heartbeats"})
	coord.Emit(flog.Record{Event: flog.EvLeased, Cell: "pgbench/live", Key: "ka", Worker: "w1", Lease: 3, Attempt: 2, Records: 2000})
	coord.Emit(flog.Record{Event: flog.EvBadResume, Level: flog.LevelWarn, Worker: "w1", Lease: 3, Err: "digest mismatch"})
	coord.Emit(flog.Record{Event: flog.EvCellFail, Level: flog.LevelWarn, Worker: "w1", Lease: 3, Err: "unusable resume checkpoint"})
	coord.Emit(flog.Record{Event: flog.EvLeased, Cell: "pgbench/live", Key: "ka", Worker: "w1", Lease: 4, Attempt: 3})
	coord.Emit(flog.Record{Event: flog.EvHeartbeat, Level: flog.LevelDebug, Worker: "w1", Lease: 4, Records: 5000, Bytes: 96, RTTMicros: 90})
	coord.Emit(flog.Record{Event: flog.EvCompleted, Worker: "w1", Lease: 4, Records: 8000})
	coord.Emit(flog.Record{Event: flog.EvSweepDone, Records: 2})
	if err := coord.Err(); err != nil {
		t.Fatal(err)
	}
	if err := wj.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestFleetGolden locks down hmreport -fleet: the post-mortem summary
// goldens byte-for-byte and the emitted timeline is loadable Chrome trace
// JSON with one lane per worker plus the coordinator lane.
func TestFleetGolden(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "sweep.journal")
	traceOut := filepath.Join(dir, "fleet.json")
	writeFleetJournal(t, journal)

	var buf bytes.Buffer
	if err := runFleet(&buf, []string{journal}, traceOut); err != nil {
		t.Fatal(err)
	}
	summary := strings.ReplaceAll(buf.String(), dir, "<out>")
	checkGolden(t, "fleet_summary.golden", []byte(summary))

	raw, err := os.ReadFile(traceOut)
	if err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(raw, &trace); err != nil {
		t.Fatalf("fleet trace is not valid JSON: %v", err)
	}
	if trace.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit %q, want ms", trace.DisplayTimeUnit)
	}
	if len(trace.TraceEvents) == 0 {
		t.Fatal("fleet trace is empty")
	}
	metaEvents := 0
	for _, ev := range trace.TraceEvents {
		if ev.Ph == "M" {
			metaEvents++
		}
	}
	// process_name + per-lane thread_name/thread_sort_index for the
	// coordinator lane and both worker lanes.
	if metaEvents < 7 {
		t.Errorf("%d metadata events, want >= 7 (3 lanes)", metaEvents)
	}

	// A missing journal and an empty journal list both fail cleanly.
	if err := runFleet(io.Discard, []string{filepath.Join(dir, "nope.journal")}, ""); err == nil {
		t.Error("missing journal file accepted")
	}
	if err := runFleet(io.Discard, []string{""}, ""); err == nil {
		t.Error("empty journal list accepted")
	}
}
