package main

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"heteromem/internal/experiments"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// goldenParams pins the report to a tiny deterministic configuration: one
// workload, a fixed seed, and few enough records that the whole sweep runs
// in well under a second.
func goldenParams() experiments.Params {
	return experiments.Params{Records: 4000, Seed: 1, Workloads: []string{"pgbench"}}
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden file (re-run with -update if intended)\n--- got ---\n%s\n--- want ---\n%s",
			name, got, want)
	}
}

// TestRunGolden locks down both hmreport outputs — the human-readable
// summary and the CSV files — against golden copies, so an accidental
// change to metric computation or report formatting shows up as a diff.
func TestRunGolden(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := run(context.Background(), &buf, dir, goldenParams(), "pgbench"); err != nil {
		t.Fatal(err)
	}

	// The output directory is a temp path; normalize it for comparison.
	summary := strings.ReplaceAll(buf.String(), dir, "<out>")
	checkGolden(t, "summary.golden", []byte(summary))

	for _, csv := range []string{"table4.csv", "fig11_interval1000.csv", "fig15.csv", "fig16.csv", "epoch_series.csv"} {
		got, err := os.ReadFile(filepath.Join(dir, csv))
		if err != nil {
			t.Fatalf("report did not write %s: %v", csv, err)
		}
		checkGolden(t, csv+".golden", got)
	}
}

// TestExperimentSummariesGolden locks down the text output of the fast
// deterministic experiment drivers (configuration tables and the hardware
// cost model, which involve no trace simulation).
func TestExperimentSummariesGolden(t *testing.T) {
	reg := experiments.Registry()
	for _, name := range []string{"table2", "table3", "fig10"} {
		run, ok := reg[name]
		if !ok {
			t.Fatalf("experiment %q missing from registry", name)
		}
		var buf bytes.Buffer
		if err := run(context.Background(), &buf, goldenParams()); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		checkGolden(t, name+".golden", buf.Bytes())
	}
}
