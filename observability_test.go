package heteromem_test

import (
	"encoding/json"
	"fmt"
	"reflect"
	"testing"

	"heteromem"
)

// TestDeterministicRuns locks in reproducibility: the same workload, seed,
// and configuration must yield a byte-identical Result — including the full
// metrics snapshot and event trace — across two independent runs.
func TestDeterministicRuns(t *testing.T) {
	run := func() heteromem.Result {
		t.Helper()
		sys, err := heteromem.New(heteromem.Config{
			Migration:  heteromem.Migration{Enabled: true, Design: heteromem.DesignLive, SwapInterval: 1000},
			Metrics:    true,
			EventTrace: 512,
			Audit:      true,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.RunWorkload("pgbench", 7, 300_000)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two identical runs produced different Results")
	}
	ja, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(ja) != string(jb) {
		t.Fatal("two identical runs produced different JSON encodings")
	}
	if a.Metrics == nil || len(a.Events) == 0 {
		t.Fatal("metrics snapshot or event trace missing from the result")
	}
}

// TestMillionRecordAuditZeroViolations is the acceptance run: with auditing
// and metrics enabled, each of the three designs processes a 1M-record
// workload with zero invariant violations — any violation fails the run
// with an error. It also checks the audit actually fired and swaps
// actually happened, so a silently-disabled auditor cannot pass.
func TestMillionRecordAuditZeroViolations(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-record acceptance run skipped in -short mode")
	}
	for _, d := range []heteromem.Design{heteromem.DesignN, heteromem.DesignN1, heteromem.DesignLive} {
		d := d
		t.Run(fmt.Sprint(d), func(t *testing.T) {
			t.Parallel()
			sys, err := heteromem.New(heteromem.Config{
				Migration: heteromem.Migration{Enabled: true, Design: d, SwapInterval: 1000},
				Metrics:   true,
				Audit:     true,
			})
			if err != nil {
				t.Fatal(err)
			}
			res, err := sys.RunWorkload("pgbench", 1, 1_000_000)
			if err != nil {
				t.Fatalf("audited 1M-record run failed: %v", err)
			}
			m := res.Metrics
			if m == nil {
				t.Fatal("no metrics snapshot")
			}
			if res.Report.Migration.SwapsCompleted == 0 {
				t.Fatal("no swaps completed; the audit exercised nothing")
			}
			if m.Gauges["check.audits.step"]+m.Gauges["check.audits.quiescent"] == 0 {
				t.Fatal("auditor never ran")
			}
			if got := m.Counters["memctrl.swap.completed"]; got != res.Report.Migration.SwapsCompleted {
				t.Fatalf("swap counter %d disagrees with migration stats %d",
					got, res.Report.Migration.SwapsCompleted)
			}
		})
	}
}

// TestMetricsDisabledByDefault confirms the zero-cost default: no metrics
// config means no snapshot and no events in the result.
func TestMetricsDisabledByDefault(t *testing.T) {
	sys, err := heteromem.New(heteromem.Config{
		Migration: heteromem.Migration{Enabled: true, Design: heteromem.DesignN1, SwapInterval: 1000},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.RunWorkload("pgbench", 1, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics != nil || res.Events != nil {
		t.Fatal("metrics/events present despite being disabled")
	}
}
