// Package heteromem is a simulation library for heterogeneous main memory
// with on-chip memory controller support, reproducing Dong, Xie,
// Muralimanohar, and Jouppi, "Simple but Effective Heterogeneous Main Memory
// with On-Chip Memory Controller Support" (SC 2010).
//
// The simulated system couples fast on-package DRAM (SiP/3D, many banks,
// wide interposer bus) with commodity off-package DIMMs into a single main
// memory space. An extra physical-to-machine address-translation layer in
// the on-chip memory controller migrates macro pages between the regions
// with a hottest-coldest swapping policy, using one of three designs:
//
//   - DesignN: basic; page exchanges stall execution.
//   - DesignN1: one slot is sacrificed so swaps run in the background,
//     with a pending bit keeping every page reachable throughout.
//   - DesignLive: N-1 plus sub-block live migration (critical-data-first).
//
// Quick start:
//
//	sys, err := heteromem.New(heteromem.Config{
//		Migration: heteromem.Migration{Design: heteromem.DesignLive, SwapInterval: 1000},
//	})
//	res, err := sys.RunWorkload("pgbench", 1, 1_000_000)
//	fmt.Println(res.MeanDRAMLatency)
//
// The internal packages implement the substrates: DRAM bank/bus timing
// (internal/dram), FR-FCFS scheduling with background copy traffic
// (internal/sched), the translation table and migration engine
// (internal/core), the heterogeneity-aware controller (internal/memctrl),
// synthetic workload models (internal/workload), the Section II cache/IPC
// models (internal/cache, internal/cpu), and the paper's experiment
// drivers (internal/experiments), which are runnable via cmd/hmsim.
package heteromem

import (
	"context"
	"fmt"
	"io"

	"heteromem/internal/addr"
	"heteromem/internal/config"
	"heteromem/internal/core"
	"heteromem/internal/fault"
	"heteromem/internal/obs"
	"heteromem/internal/scheme"
	"heteromem/internal/sim"
	"heteromem/internal/trace"
	"heteromem/internal/workload"
)

// Size helpers re-exported for configuration literals.
const (
	KiB = addr.KiB
	MiB = addr.MiB
	GiB = addr.GiB
)

// Design selects the migration algorithm.
type Design = core.Design

// Migration designs, re-exported from the core package.
const (
	DesignN    = core.DesignN
	DesignN1   = core.DesignN1
	DesignLive = core.DesignLive
)

// Migration configures dynamic data migration. The zero value disables
// migration (static mapping: lowest addresses on-package).
type Migration struct {
	Enabled      bool
	Design       Design
	SwapInterval uint64 // memory accesses per monitoring epoch
}

// Config describes a heterogeneous memory system. Zero values select the
// paper's Table III defaults (4 GB total, 512 MB on-package, 4 MB macro
// pages, 4 KB sub-blocks).
type Config struct {
	TotalCapacity     uint64
	OnPackageCapacity uint64
	MacroPageSize     uint64
	SubBlockSize      uint64

	Migration Migration

	// Scheme selects the on-package capacity policy by name: "" or
	// "migrate" (the paper's designs, the default), "alloy", "alloy-pred",
	// "cachemode", or "memcache[:PCT]". The cache schemes ("alloy",
	// "cachemode") manage the whole on-package capacity as a cache and
	// reject Migration.Enabled; "memcache" requires it and migrates only
	// its memory share.
	Scheme string

	// Channels shards the memory system across this many per-channel
	// controllers (a power of two; 0 and 1 both mean a single controller).
	// The address space stripes across channels at InterleaveBytes
	// granularity and the simulation executes deterministically in parallel,
	// one goroutine per channel. Cross-channel swap copy legs pay a fixed
	// interconnect hop (HopLatency).
	Channels int

	// InterleaveBytes is the channel-striping granularity (0 = the macro
	// page size). Must be a power-of-two multiple of the macro page size so
	// a macro page — the migration unit — lives wholly inside one channel.
	InterleaveBytes uint64

	// HopLatency is the cross-channel interconnect hop in cycles charged on
	// sharded swap copy legs (0 selects the default; single-channel systems
	// never charge a hop).
	HopLatency int64

	// OSAssisted charges the OS table-update overhead each epoch; when
	// false the library follows the paper's feasibility rule automatically
	// (pure hardware for pages >= 1 MB, OS-assisted below).
	OSAssisted bool

	// MeterPower enables the Section IV-D energy accounting.
	MeterPower bool

	// Warmup discards statistics for the first Warmup records.
	Warmup uint64

	// Metrics enables the observability layer: pipeline counters, gauges,
	// and latency histograms are collected and returned in Result.Metrics.
	Metrics bool

	// EventTrace, when positive, additionally records the last N structured
	// pipeline events (epochs, swap steps, P-bit stalls, copy completions)
	// into Result.Events. Implies Metrics.
	EventTrace int

	// SpanTrace, when positive, records up to N cycle-domain begin/end
	// spans (swap lifecycles, copy legs, N-design stalls, fault ladders)
	// into Result.Spans; export them with WriteChromeTrace. Implies Metrics.
	SpanTrace int

	// EpochSeries, when positive, samples the cumulative pipeline counters
	// at every monitoring-epoch boundary (plus once at flush) into
	// Result.Series, keeping the last N samples. Implies Metrics.
	EpochSeries int

	// Audit verifies the translation-table invariants after every swap step
	// and at every quiescent point; any violation fails the run with a
	// diagnostic error.
	Audit bool

	// Fault enables deterministic fault injection with graceful
	// degradation; see FaultConfig. The zero value is a no-op.
	Fault FaultConfig
}

// FaultConfig configures deterministic fault injection: DRAM device
// bursts, migration copy legs, and bulk-step completions can be failed by
// seeded probability (DeviceRate/CopyRate/BulkRate) or by an explicit
// schedule ("device@100,copy@5-8,bulk@3x2"). The controller responds with
// bounded retries, swap rollback, slot retirement, and degraded mode; the
// zero value disables injection and leaves results byte-identical.
type FaultConfig = fault.Config

// FaultReport is the fault-handling ledger returned in Result.Faults:
// injected faults per point and the disposition of each (retried, rolled
// back, retired, degraded).
type FaultReport = fault.Report

// Result re-exports the simulation outcome.
type Result = sim.Result

// Span is one cycle-domain interval of the span trace (Result.Spans).
type Span = obs.Span

// EpochSample is one cumulative-counter record of the per-epoch time
// series (Result.Series).
type EpochSample = obs.EpochSample

// WriteChromeTrace serializes a span trace as Chrome trace-event JSON,
// loadable by chrome://tracing and Perfetto; timestamps are cycles and
// each pipeline stage renders as its own thread lane.
func WriteChromeTrace(w io.Writer, spans []Span) error {
	return obs.WriteChromeTrace(w, spans)
}

// Record re-exports the trace record type.
type Record = trace.Record

// Source re-exports the trace source interface.
type Source = trace.Source

// System is a configured heterogeneous-memory simulation.
type System struct {
	cfg sim.Config
}

// New validates cfg and builds a System.
func New(c Config) (*System, error) {
	scfg := sim.Default()
	if c.TotalCapacity > 0 {
		scfg.Geometry.TotalCapacity = c.TotalCapacity
	}
	if c.OnPackageCapacity > 0 {
		scfg.Geometry.OnPackageCapacity = c.OnPackageCapacity
	}
	if c.MacroPageSize > 0 {
		scfg.Geometry.MacroPageSize = c.MacroPageSize
	}
	if c.SubBlockSize > 0 {
		scfg.Geometry.SubBlockSize = c.SubBlockSize
	}
	if err := scfg.Geometry.Validate(); err != nil {
		return nil, err
	}
	if c.Migration.Enabled {
		if c.Migration.SwapInterval == 0 {
			return nil, fmt.Errorf("heteromem: migration enabled with zero swap interval")
		}
		scfg.Migration = &core.Options{
			Design:       c.Migration.Design,
			SwapInterval: c.Migration.SwapInterval,
		}
		scfg.OSAssisted = c.OSAssisted || scfg.Geometry.MacroPageSize < 1*MiB
	}
	sp, err := scheme.Parse(c.Scheme)
	if err != nil {
		return nil, fmt.Errorf("heteromem: %w", err)
	}
	if sp.IsCache() && c.Migration.Enabled {
		return nil, fmt.Errorf("heteromem: scheme %s manages the on-package capacity as a cache; disable Migration", sp)
	}
	if sp.Kind == scheme.KindMemCache && !c.Migration.Enabled {
		return nil, fmt.Errorf("heteromem: scheme %s migrates its memory share; enable Migration", sp)
	}
	scfg.Scheme = sp
	scfg.Channels = c.Channels
	scfg.InterleaveBytes = c.InterleaveBytes
	scfg.HopLatency = c.HopLatency
	scfg.MeterPower = c.MeterPower
	scfg.Warmup = c.Warmup
	scfg.Metrics = c.Metrics
	scfg.EventTrace = c.EventTrace
	scfg.SpanTrace = c.SpanTrace
	scfg.EpochSeries = c.EpochSeries
	scfg.Audit = c.Audit
	scfg.Fault = c.Fault
	if err := scfg.Fault.Validate(); err != nil {
		return nil, fmt.Errorf("heteromem: %w", err)
	}
	return &System{cfg: scfg}, nil
}

// Run simulates up to maxRecords accesses from src (0 = the whole trace).
func (s *System) Run(src Source, maxRecords uint64) (Result, error) {
	return s.RunContext(context.Background(), src, maxRecords)
}

// RunContext is Run with cooperative cancellation: the context is polled
// every few thousand records (never in the per-record hot path), and a
// cancelled run returns an error wrapping ctx.Err(). Cancellation never
// alters simulated results — an uncancelled RunContext is byte-identical
// to Run.
func (s *System) RunContext(ctx context.Context, src Source, maxRecords uint64) (Result, error) {
	cfg := s.cfg
	cfg.MaxRecords = maxRecords
	return sim.RunContext(ctx, src, cfg)
}

// Checkpointing configures periodic run-state snapshots and crash-resilient
// resume. Every `Every` records the complete simulation state — controller,
// devices, schedulers, migration engine, fault injector, and trace-source
// position — is serialized into a versioned, checksummed snapshot and
// handed to Sink. A run restarted with Resume set to any such snapshot
// (same configuration, same freshly constructed source) produces a Result
// identical to the uninterrupted run. Checkpointing is incompatible with
// the observability collectors (Metrics, EventTrace, SpanTrace,
// EpochSeries).
type Checkpointing struct {
	Every  uint64                                  // records between checkpoints (0 = off)
	Sink   func(data []byte, records uint64) error // receives each checkpoint
	Resume []byte                                  // checkpoint to resume from (nil = fresh run)
}

// RunCheckpointed is Run with periodic checkpoints and/or resume.
func (s *System) RunCheckpointed(src Source, maxRecords uint64, ck Checkpointing) (Result, error) {
	return s.RunCheckpointedContext(context.Background(), src, maxRecords, ck)
}

// RunCheckpointedContext is RunCheckpointed with cooperative cancellation
// (see RunContext).
func (s *System) RunCheckpointedContext(ctx context.Context, src Source, maxRecords uint64, ck Checkpointing) (Result, error) {
	cfg := s.cfg
	cfg.MaxRecords = maxRecords
	cfg.CheckpointEvery = ck.Every
	cfg.CheckpointSink = ck.Sink
	cfg.Resume = ck.Resume
	return sim.RunContext(ctx, src, cfg)
}

// RunWorkloadCheckpointed is RunWorkload with periodic checkpoints and/or
// resume. The built-in workload generators serialize their full PRNG state
// into the checkpoint, so resume is exact at any boundary.
func (s *System) RunWorkloadCheckpointed(name string, seed int64, maxRecords uint64, ck Checkpointing) (Result, error) {
	return s.RunWorkloadCheckpointedContext(context.Background(), name, seed, maxRecords, ck)
}

// RunWorkloadCheckpointedContext is RunWorkloadCheckpointed with
// cooperative cancellation (see RunContext).
func (s *System) RunWorkloadCheckpointedContext(ctx context.Context, name string, seed int64, maxRecords uint64, ck Checkpointing) (Result, error) {
	gen, err := workload.NewMemory(name, seed)
	if err != nil {
		return Result{}, err
	}
	return s.RunCheckpointedContext(ctx, gen, maxRecords, ck)
}

// CheckpointInfo summarizes a checkpoint file without restoring it.
type CheckpointInfo = sim.CheckpointInfo

// InspectCheckpoint validates a checkpoint's checksums and version and
// returns its metadata.
func InspectCheckpoint(data []byte) (CheckpointInfo, error) {
	return sim.InspectCheckpoint(data)
}

// ErrConfigMismatch reports a checkpoint taken under a different
// configuration than the one resuming from it.
var ErrConfigMismatch = sim.ErrConfigMismatch

// RunWindows is Run with a convergence time series: one Result.Windows
// point per `window` records, so the approach to steady state is visible.
func (s *System) RunWindows(src Source, maxRecords, window uint64) (Result, error) {
	cfg := s.cfg
	cfg.MaxRecords = maxRecords
	cfg.WindowRecords = window
	return sim.Run(src, cfg)
}

// RunWorkload simulates one of the built-in Section IV workloads
// (see Workloads) with the given seed.
func (s *System) RunWorkload(name string, seed int64, maxRecords uint64) (Result, error) {
	return s.RunWorkloadContext(context.Background(), name, seed, maxRecords)
}

// RunWorkloadContext is RunWorkload with cooperative cancellation (see
// RunContext).
func (s *System) RunWorkloadContext(ctx context.Context, name string, seed int64, maxRecords uint64) (Result, error) {
	gen, err := workload.NewMemory(name, seed)
	if err != nil {
		return Result{}, err
	}
	return s.RunContext(ctx, gen, maxRecords)
}

// Workloads lists the built-in Section IV trace workloads.
func Workloads() []string { return workload.Names() }

// ProgramWorkloads lists the built-in NPB program-level workloads used by
// the Section II cache and IPC experiments.
func ProgramWorkloads() []string { return workload.ProgramNames() }

// Effectiveness computes the paper's η metric:
// (latNoMig − latMig) / (latNoMig − coreLat) × 100%.
func Effectiveness(latNoMig, latMig, coreLat float64) float64 {
	return sim.Effectiveness(latNoMig, latMig, coreLat)
}

// HardwareBits returns the pure-hardware migration cost in bits for a
// given on-package size and granularity (Fig. 10's curve; 9,228 bits for
// 1 GB at 4 MB pages with 4 KB sub-blocks).
func HardwareBits(onPackageBytes, macroPage, subBlock uint64) uint64 {
	return core.HardwareBits(onPackageBytes, macroPage, subBlock, addr.Bits)
}

// DefaultLatencies returns the reconstructed Table II latency components.
func DefaultLatencies() config.Latencies { return config.TableIILatencies() }
