package heteromem_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"heteromem"
)

// TestSpanTraceLifecycles runs each design with span tracing on and checks
// the trace tells a coherent temporal story: swaps nest their copy legs,
// every span has a sane interval, and the whole thing exports as loadable
// Chrome trace JSON.
func TestSpanTraceLifecycles(t *testing.T) {
	for _, d := range []heteromem.Design{heteromem.DesignN, heteromem.DesignN1, heteromem.DesignLive} {
		d := d
		t.Run(fmt.Sprint(d), func(t *testing.T) {
			t.Parallel()
			sys, err := heteromem.New(heteromem.Config{
				Migration: heteromem.Migration{Enabled: true, Design: d, SwapInterval: 1000},
				SpanTrace: 1 << 21,
			})
			if err != nil {
				t.Fatal(err)
			}
			res, err := sys.RunWorkload("pgbench", 7, 300_000)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Spans) == 0 {
				t.Fatal("no spans recorded")
			}
			kinds := map[string]int{}
			for _, s := range res.Spans {
				if s.End < s.Begin {
					t.Fatalf("span ends before it begins: %+v", s)
				}
				kinds[s.Kind.String()]++
			}
			for _, want := range []string{"swap", "swap-step", "copy-read", "copy-write", "epoch"} {
				if kinds[want] == 0 {
					t.Fatalf("no %q spans; kinds seen: %v", want, kinds)
				}
			}
			if d == heteromem.DesignN && kinds["stall"] == 0 {
				t.Fatalf("N design produced no stall spans; kinds: %v", kinds)
			}
			// Swap count in the trace must reconcile with the final stats
			// (the buffer was sized not to drop).
			if res.SpansDropped != 0 {
				t.Fatalf("spans dropped (%d); grow the test buffer", res.SpansDropped)
			}
			if got := uint64(kinds["swap"]); got != res.Report.Migration.SwapsCompleted {
				t.Fatalf("swap spans %d != swaps completed %d", got, res.Report.Migration.SwapsCompleted)
			}

			var buf bytes.Buffer
			if err := heteromem.WriteChromeTrace(&buf, res.Spans); err != nil {
				t.Fatal(err)
			}
			var top struct {
				TraceEvents []json.RawMessage `json:"traceEvents"`
			}
			if err := json.Unmarshal(buf.Bytes(), &top); err != nil {
				t.Fatalf("exported trace is not valid JSON: %v", err)
			}
			if len(top.TraceEvents) < len(res.Spans) {
				t.Fatalf("trace has %d events for %d spans", len(top.TraceEvents), len(res.Spans))
			}
		})
	}
}

// TestEpochSeriesReconciles checks the per-epoch time series: one sample
// per monitoring epoch plus the flush-time sample, cumulative counters
// monotone, and the final sample agreeing with the final metrics snapshot.
func TestEpochSeriesReconciles(t *testing.T) {
	sys, err := heteromem.New(heteromem.Config{
		Migration:   heteromem.Migration{Enabled: true, Design: heteromem.DesignLive, SwapInterval: 1000},
		Metrics:     true,
		EpochSeries: 1 << 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.RunWorkload("pgbench", 7, 300_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) < 2 {
		t.Fatalf("series too short: %d samples", len(res.Series))
	}
	if res.SeriesDropped != 0 {
		t.Fatalf("series dropped %d samples", res.SeriesDropped)
	}
	epochs := res.Metrics.Gauges["mig.epochs"]
	// One sample per epoch boundary plus the final flush sample.
	if got := len(res.Series); got != int(epochs)+1 {
		t.Fatalf("series has %d samples for %d epochs (+1 final)", got, epochs)
	}
	var prev heteromem.EpochSample
	for i, s := range res.Series {
		final := i == len(res.Series)-1
		if s.Final != final {
			t.Fatalf("sample %d Final=%v, want %v", i, s.Final, final)
		}
		if s.Cycle < prev.Cycle || s.AccOn+s.AccOff < prev.AccOn+prev.AccOff ||
			s.SwapsStarted < prev.SwapsStarted || s.SwapsCompleted < prev.SwapsCompleted ||
			s.DRAMLatN < prev.DRAMLatN {
			t.Fatalf("cumulative counters regressed at sample %d: %+v after %+v", i, s, prev)
		}
		if s.QueueLatSum > int64(s.DRAMLatSum) {
			t.Fatalf("sample %d queue wait exceeds total DRAM latency: %+v", i, s)
		}
		prev = s
	}
	last := res.Series[len(res.Series)-1]
	m := res.Metrics
	if last.SwapsStarted != uint64(m.Gauges["mig.swaps_started"]) ||
		last.SwapsCompleted != uint64(m.Gauges["mig.swaps_completed"]) {
		t.Fatalf("final sample swaps (%d/%d) disagree with snapshot gauges (%d/%d)",
			last.SwapsStarted, last.SwapsCompleted,
			m.Gauges["mig.swaps_started"], m.Gauges["mig.swaps_completed"])
	}
	if last.AccOn != m.Counters["memctrl.access.on"] || last.AccOff != m.Counters["memctrl.access.off"] {
		t.Fatal("final sample access counts disagree with snapshot counters")
	}
	if last.DRAMLatN != res.Report.DRAMAll.Count() {
		t.Fatalf("final sample DRAM count %d != report %d", last.DRAMLatN, res.Report.DRAMAll.Count())
	}
	if got, want := last.MeanDRAMLatency(), res.MeanDRAMLatency; got != want {
		t.Fatalf("final sample mean DRAM latency %v != result %v", got, want)
	}
}

// TestTemporalObservabilityIsPure locks in the purity contract: enabling
// span tracing and series sampling must not change a single simulated
// number — same latencies, same cycle count, same migration stats as a
// bare run — and the zero config must keep the new Result fields absent
// from the JSON encoding entirely (byte-identity discipline).
func TestTemporalObservabilityIsPure(t *testing.T) {
	run := func(spans, series int) heteromem.Result {
		t.Helper()
		sys, err := heteromem.New(heteromem.Config{
			Migration:   heteromem.Migration{Enabled: true, Design: heteromem.DesignLive, SwapInterval: 1000},
			SpanTrace:   spans,
			EpochSeries: series,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.RunWorkload("pgbench", 7, 200_000)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	bare := run(0, 0)
	traced := run(1<<18, 1<<16)
	if bare.MeanLatency != traced.MeanLatency ||
		bare.MeanDRAMLatency != traced.MeanDRAMLatency ||
		bare.LastCycle != traced.LastCycle ||
		bare.Records != traced.Records ||
		bare.Report.Migration != traced.Report.Migration {
		t.Fatal("enabling span/series observability changed simulated results")
	}
	if bare.Spans != nil || bare.Series != nil {
		t.Fatal("disabled run returned spans/series")
	}
	if len(traced.Spans) == 0 || len(traced.Series) == 0 {
		t.Fatal("enabled run returned no spans/series")
	}
	jb, err := json.Marshal(bare)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"Spans", "Series", "SpansDropped", "SeriesDropped", "EventsDropped", "Metrics"} {
		if bytes.Contains(jb, []byte(`"`+key+`"`)) {
			t.Fatalf("zero-config result JSON leaks %q — byte-identity with pre-PR builds broken", key)
		}
	}
}
