# Verification targets. `make ci` is the full gate: vet, build, the whole
# test suite under the race detector (fuzz seed corpora included, in
# regression mode), and the golden-file checks.

GO ?= go

.PHONY: all build vet test race fuzz-regression fuzz bench golden-update ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The tier-1 suite under the race detector. The parallel experiment sweeps
# and the forEachIndex tests exercise real goroutine concurrency, so -race
# is load-bearing here, not ceremonial.
race:
	$(GO) test -race ./...

# Run the committed fuzz seed corpora (testdata/fuzz/...) as regression
# tests. This is what `go test` already does for fuzz targets without
# -fuzz; the explicit target documents and isolates it.
fuzz-regression:
	$(GO) test ./internal/trace/ -run 'Fuzz'

# Active fuzzing (not part of ci; run locally when touching the parsers).
FUZZTIME ?= 30s
fuzz:
	$(GO) test ./internal/trace/ -fuzz FuzzTextReader -fuzztime $(FUZZTIME)
	$(GO) test ./internal/trace/ -fuzz FuzzReader -fuzztime $(FUZZTIME)

bench:
	$(GO) test -bench . -benchmem -run '^$$' .

# Rewrite the hmreport golden files after an intended output change.
golden-update:
	$(GO) test ./cmd/hmreport/ -update

ci: vet build race fuzz-regression
