# Verification targets. `make ci` is the full gate: lint (vet + strict
# gofmt), build, the whole test suite under the race detector, the
# randomized fault soak, the distributed-sweep chaos campaign, the fuzz
# seed corpora (in regression mode), and the golden-file checks.

GO ?= go

.PHONY: all build vet lint test race soak chaos fuzz-regression fuzz bench benchdiff golden-update ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Lint is vet plus strict formatting: any file gofmt would rewrite fails
# the gate, so formatting drift never reaches review.
lint: vet
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt -l flagged:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

# The tier-1 suite under the race detector. The parallel experiment sweeps
# and the forEachIndex tests exercise real goroutine concurrency, so -race
# is load-bearing here, not ceremonial.
race:
	$(GO) test -race ./...

# Randomized fault soak: the acceptance campaign (1e-4 fault rates over a
# million-record audited run of each migration design) with a fresh PRNG
# seed each invocation. Set SOAK_SEED / SOAK_RECORDS to reproduce a run.
SOAK_SEED ?= $(shell date +%s)
soak:
	SOAK_SEED=$(SOAK_SEED) $(GO) test -run TestFaultSoak -count=1 -v .

# Distributed-sweep chaos campaign: worker processes are SIGKILLed mid-cell
# on a seeded schedule; the sweep must still finish with per-cell results
# byte-identical to an uninterrupted run, and the structured journal (kept
# at CHAOS_JOURNAL for post-mortem: hmreport -fleet $(CHAOS_JOURNAL)) must
# tell the true story of every kill. A fresh PRNG seed each invocation
# randomizes the kill timing; set CHAOS_SEED to reproduce a run.
CHAOS_SEED ?= $(shell date +%s)
# go test runs with the package dir as cwd, so anchor the journal path.
CHAOS_JOURNAL ?= $(CURDIR)/chaos.journal
chaos:
	CHAOS_SEED=$(CHAOS_SEED) CHAOS_JOURNAL=$(CHAOS_JOURNAL) $(GO) test -run TestChaosKillAndTakeover -count=1 -v ./internal/dsweep/

# Run the committed fuzz seed corpora (testdata/fuzz/...) as regression
# tests. This is what `go test` already does for fuzz targets without
# -fuzz; the explicit target documents and isolates it.
fuzz-regression:
	$(GO) test ./internal/trace/ -run 'Fuzz'
	$(GO) test ./internal/fault/ -run 'Fuzz'
	$(GO) test ./internal/snap/ -run 'Fuzz'
	$(GO) test ./internal/addr/ -run 'Fuzz'
	$(GO) test ./internal/scheme/ -run 'Fuzz'

# Active fuzzing (not part of ci; run locally when touching the parsers).
FUZZTIME ?= 30s
fuzz:
	$(GO) test ./internal/trace/ -fuzz FuzzTextReader -fuzztime $(FUZZTIME)
	$(GO) test ./internal/trace/ -fuzz FuzzReader -fuzztime $(FUZZTIME)
	$(GO) test ./internal/trace/ -fuzz FuzzPackedTrace -fuzztime $(FUZZTIME)
	$(GO) test ./internal/fault/ -fuzz FuzzParseSchedule -fuzztime $(FUZZTIME)
	$(GO) test ./internal/snap/ -fuzz FuzzSnapshotRestore -fuzztime $(FUZZTIME)
	$(GO) test ./internal/addr/ -fuzz FuzzAddressMapping -fuzztime $(FUZZTIME)
	$(GO) test ./internal/scheme/ -fuzz FuzzSetCodec -fuzztime $(FUZZTIME)

# Benchmarks: the raw text is benchstat input, the JSON is the archived
# machine-readable form; both default to per-PR names so history is kept
# side by side. Compare the TemporalObservabilityOff/On pair to bound the
# tracing overhead, the CheckpointOff/On pair to bound the checkpoint
# serialization overhead, and the AccessPathScheme variants against the
# AccessPath designs to bound what each capacity scheme's bookkeeping
# costs per record.
BENCH_TXT ?= BENCH_pr10.txt
BENCH_JSON ?= BENCH_pr10.json
BENCH_COUNT ?= 3
bench:
	$(GO) test -bench . -benchmem -count $(BENCH_COUNT) -run '^$$' . | tee $(BENCH_TXT)
	$(GO) run ./tools/bench2json -o $(BENCH_JSON) < $(BENCH_TXT)

# Regression gate between two archived benchmark runs: fails if NEW is
# slower than OLD past the threshold (default 10%, with an absolute ns/op
# jitter floor) or allocates more. -count'ed archives are folded to each
# benchmark's best sample, so the gate compares code, not host load.
#   make benchdiff OLD=BENCH_pr9.json NEW=BENCH_pr10.json
OLD ?= BENCH_pr9.json
NEW ?= BENCH_pr10.json
benchdiff:
	$(GO) run ./tools/benchdiff $(OLD) $(NEW)

# Rewrite the golden files after an intended output change.
golden-update:
	$(GO) test ./cmd/hmreport/ -update
	$(GO) test ./internal/workload/ -run TestGeneratorGolden -update

ci: lint build race soak chaos fuzz-regression
