package heteromem

import "testing"

func TestDefaultsBuild(t *testing.T) {
	sys, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.RunWorkload("SPEC2006", 1, 30000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 30000 || res.MeanDRAMLatency <= 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
}

func TestMigrationConfig(t *testing.T) {
	sys, err := New(Config{
		MacroPageSize: 64 * KiB,
		Migration:     Migration{Enabled: true, Design: DesignLive, SwapInterval: 1000},
		Warmup:        20000,
		MeterPower:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.RunWorkload("SPEC2006", 1, 120000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Migration.SwapsCompleted == 0 {
		t.Fatal("no swaps under migration config")
	}
	if res.NormalizedPower <= 0 {
		t.Fatal("power not metered")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{MacroPageSize: 3 * MiB}); err == nil {
		t.Fatal("invalid page size accepted")
	}
	if _, err := New(Config{Migration: Migration{Enabled: true}}); err == nil {
		t.Fatal("zero swap interval accepted")
	}
	if _, err := New(Config{TotalCapacity: 1 * GiB, OnPackageCapacity: 1 * GiB}); err == nil {
		t.Fatal("on-package == total accepted")
	}
}

func TestUnknownWorkload(t *testing.T) {
	sys, _ := New(Config{})
	if _, err := sys.RunWorkload("nope", 1, 10); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestWorkloadLists(t *testing.T) {
	if len(Workloads()) != 6 {
		t.Fatalf("%d trace workloads, want 6", len(Workloads()))
	}
	if len(ProgramWorkloads()) != 10 {
		t.Fatalf("%d program workloads, want 10", len(ProgramWorkloads()))
	}
}

func TestHardwareBitsExported(t *testing.T) {
	if got := HardwareBits(1*GiB, 4*MiB, 4*KiB); got != 9228 {
		t.Fatalf("HardwareBits = %d, want 9228", got)
	}
}

func TestCustomWorkload(t *testing.T) {
	spec := WorkloadSpec{
		Name: "custom", MeanGap: 50, Cores: 2,
		Components: []WorkloadComponent{
			{Name: "hot", Weight: 8, Region: 64 * MiB, Make: ZipfMaker(4096, 1.3, true)},
			{Name: "scan", Weight: 2, Region: 512 * MiB, Make: SeqMaker(64)},
		},
	}
	gen, err := NewGenerator(spec, 5)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(Config{
		TotalCapacity:     1 * GiB,
		OnPackageCapacity: 128 * MiB,
		MacroPageSize:     256 * KiB,
		Migration:         Migration{Enabled: true, Design: DesignN1, SwapInterval: 2000},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(gen, 60000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.OnShare <= 0 {
		t.Fatal("nothing routed on-package")
	}
}

func TestEffectivenessExported(t *testing.T) {
	if Effectiveness(200, 60, 60) != 100 {
		t.Fatal("effectiveness miscomputed")
	}
}

func TestMemoryWorkloadInspectable(t *testing.T) {
	spec, err := MemoryWorkload("FT")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Footprint() == 0 || len(spec.Components) == 0 {
		t.Fatal("FT spec empty")
	}
}

func TestSystemIsReusable(t *testing.T) {
	// Each Run starts from a fresh controller: results for the same inputs
	// must be identical, not influenced by earlier runs.
	sys, err := New(Config{
		MacroPageSize: 64 * KiB,
		Migration:     Migration{Enabled: true, Design: DesignLive, SwapInterval: 1000},
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := sys.RunWorkload("SPEC2006", 1, 50000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sys.RunWorkload("SPEC2006", 1, 50000)
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanDRAMLatency != b.MeanDRAMLatency || a.Report.OnShare != b.Report.OnShare {
		t.Fatalf("runs diverged: %.3f/%.3f vs %.3f/%.3f",
			a.MeanDRAMLatency, a.Report.OnShare, b.MeanDRAMLatency, b.Report.OnShare)
	}
}
