package addr

import (
	"math/rand"
	"testing"
)

func mustMapping(t *testing.T, ch, rank, bank, row, col BitField) *Mapping {
	t.Helper()
	m, err := NewMapping(ch, rank, bank, row, col)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMappingRejectsOverlap(t *testing.T) {
	_, err := NewMapping(
		BitField{Width: 2, Offset: 10},
		BitField{Width: 2, Offset: 11}, // overlaps channel bit 11
		BitField{}, BitField{}, BitField{},
	)
	if err == nil {
		t.Fatal("overlapping fields accepted")
	}
}

func TestMappingRejectsOutOfRange(t *testing.T) {
	cases := []BitField{
		{Width: 2, Offset: 47},  // spills past bit 48
		{Width: 49, Offset: 0},  // wider than the space
		{Width: 1, Offset: 48},  // entirely outside
		{Width: 1, Offset: 200}, // far outside
	}
	for _, f := range cases {
		if _, err := NewMapping(f, BitField{}, BitField{}, BitField{}, BitField{}); err == nil {
			t.Fatalf("out-of-range field %+v accepted", f)
		}
	}
}

func TestMappingZeroWidthFieldsAllowed(t *testing.T) {
	m := mustMapping(t, BitField{}, BitField{}, BitField{}, BitField{}, BitField{})
	if m.RestWidth() != Bits {
		t.Fatalf("empty mapping rest width = %d, want %d", m.RestWidth(), Bits)
	}
	const a = 0x1234_5678_9abc
	if got := m.Encode(m.Decode(a)); got != a {
		t.Fatalf("empty mapping round trip %#x -> %#x", a, got)
	}
}

// TestMappingRoundTripRandomLayouts is the bijection property test: for
// randomized non-overlapping layouts, Encode(Decode(a)) == a&Mask and
// Decode(Encode(c)) == c.
func TestMappingRoundTripRandomLayouts(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for layout := 0; layout < 200; layout++ {
		m := randomMapping(rng)
		for i := 0; i < 200; i++ {
			a := rng.Uint64() & Mask
			c := m.Decode(a)
			if got := m.Encode(c); got != a {
				t.Fatalf("layout %d: Encode(Decode(%#x)) = %#x (coord %+v)", layout, a, got, c)
			}
			if c2 := m.Decode(m.Encode(c)); c2 != c {
				t.Fatalf("layout %d: Decode(Encode(%+v)) = %+v", layout, c, c2)
			}
		}
		// The address space edges must round-trip too.
		for _, a := range []uint64{0, 1, Mask, Mask - 1, ^uint64(0)} {
			if got := m.Encode(m.Decode(a)); got != a&Mask {
				t.Fatalf("layout %d: edge %#x -> %#x", layout, a, got)
			}
		}
	}
}

// randomMapping builds a random valid layout by shuffling disjoint field
// positions into the 48-bit space.
func randomMapping(rng *rand.Rand) *Mapping {
	var fields [5]BitField
	pos := uint(0)
	order := rng.Perm(5)
	for _, idx := range order {
		if pos >= Bits {
			break
		}
		// Random gap, then a random-width field (width 0 sometimes).
		pos += uint(rng.Intn(6))
		if pos >= Bits {
			break
		}
		w := uint(rng.Intn(9))
		if pos+w > Bits {
			w = Bits - pos
		}
		fields[idx] = BitField{Width: w, Offset: pos}
		pos += w
	}
	m, err := NewMapping(fields[0], fields[1], fields[2], fields[3], fields[4])
	if err != nil {
		panic(err)
	}
	return m
}

func TestInterleaveValidation(t *testing.T) {
	if _, err := NewInterleave(3, 4096); err == nil {
		t.Fatal("non-power-of-two channel count accepted")
	}
	if _, err := NewInterleave(0, 4096); err == nil {
		t.Fatal("zero channels accepted")
	}
	if _, err := NewInterleave(4, 4095); err == nil {
		t.Fatal("non-power-of-two granularity accepted")
	}
	if _, err := NewInterleave(4, 0); err == nil {
		t.Fatal("zero granularity accepted")
	}
	if _, err := NewInterleave(4, uint64(1)<<47); err == nil {
		t.Fatal("channel field past bit 48 accepted")
	}
}

func TestInterleaveRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, channels := range []int{1, 2, 4, 8, 16} {
		for _, gran := range []uint64{4 * KiB, 64 * KiB, 4 * MiB} {
			iv, err := NewInterleave(channels, gran)
			if err != nil {
				t.Fatal(err)
			}
			if iv.Channels() != channels || iv.Granularity() != gran {
				t.Fatalf("iv reports %d/%d, want %d/%d", iv.Channels(), iv.Granularity(), channels, gran)
			}
			for i := 0; i < 2000; i++ {
				a := rng.Uint64() & Mask
				ch := iv.ChannelOf(a)
				if ch < 0 || ch >= channels {
					t.Fatalf("channel %d out of range", ch)
				}
				// The channel is the striping unit index modulo the count.
				if want := int((a / gran) % uint64(channels)); ch != want {
					t.Fatalf("ChannelOf(%#x) = %d, want stripe %d", a, ch, want)
				}
				if got := iv.Global(ch, iv.Local(a)); got != a {
					t.Fatalf("Global(ChannelOf, Local)(%#x) = %#x", a, got)
				}
			}
		}
	}
}

// TestInterleaveLocalIsContiguous pins the compaction shape: consecutive
// granularity-units on one channel are consecutive in local space.
func TestInterleaveLocalIsContiguous(t *testing.T) {
	iv, err := NewInterleave(4, 4*KiB)
	if err != nil {
		t.Fatal(err)
	}
	for unit := uint64(0); unit < 64; unit++ {
		global := unit * 4 * KiB * 4 // unit i of channel 0 (stride = channels * gran)
		if got, want := iv.Local(global), unit*4*KiB; got != want {
			t.Fatalf("Local(unit %d) = %#x, want %#x", unit, got, want)
		}
		if iv.ChannelOf(global) != 0 {
			t.Fatalf("unit %d not on channel 0", unit)
		}
	}
}

// TestInterleaveMatchesMapping cross-checks the fast path against the
// general bit-field decode it specializes.
func TestInterleaveMatchesMapping(t *testing.T) {
	iv, err := NewInterleave(8, 64*KiB)
	if err != nil {
		t.Fatal(err)
	}
	m := iv.Mapping()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		a := rng.Uint64() & Mask
		if got, want := iv.ChannelOf(a), m.ChannelOf(a); got != want {
			t.Fatalf("ChannelOf(%#x): interleave %d, mapping %d", a, got, want)
		}
		c := m.Decode(a)
		// Local address = unit index (Row) over the intra-unit offset (Column).
		if want := c.Row<<16 | c.Column; iv.Local(a) != want {
			t.Fatalf("Local(%#x) = %#x, mapping says %#x", a, iv.Local(a), want)
		}
	}
}
