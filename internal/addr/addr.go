// Package addr provides helpers for the 48-bit physical/machine address
// space used throughout the simulator: splitting addresses into macro-page
// index and offset, region decoding, and size arithmetic.
//
// The paper assumes a 48-bit memory address. A macro page — the migration
// granularity — ranges from 4 KB to 4 MB, so for a 4 MB page the lowest
// 22 bits are the in-page offset and the highest 26 bits the macro-page ID
// (Fig. 6 of the paper).
package addr

import "fmt"

// Bits is the width of the simulated physical address space.
const Bits = 48

// Mask selects the valid address bits.
const Mask = (uint64(1) << Bits) - 1

// Common power-of-two sizes in bytes.
const (
	KiB = 1 << 10
	MiB = 1 << 20
	GiB = 1 << 30
)

// PageGeom describes a macro-page split of the address space.
type PageGeom struct {
	PageSize  uint64 // macro-page size in bytes; power of two
	offsetLen uint   // log2(PageSize)
}

// NewPageGeom returns the geometry for the given macro-page size.
// The size must be a power of two between 4 KiB and 4 MiB inclusive
// (the paper's evaluated range) — larger values are accepted up to 1 GiB
// so that sensitivity studies beyond the paper's sweep remain possible.
func NewPageGeom(pageSize uint64) (PageGeom, error) {
	if pageSize < 4*KiB || pageSize > GiB {
		return PageGeom{}, fmt.Errorf("addr: macro-page size %d out of range [4KiB, 1GiB]", pageSize)
	}
	if pageSize&(pageSize-1) != 0 {
		return PageGeom{}, fmt.Errorf("addr: macro-page size %d not a power of two", pageSize)
	}
	return PageGeom{PageSize: pageSize, offsetLen: uint(log2(pageSize))}, nil
}

// MustPageGeom is NewPageGeom that panics on error; for constants in tests
// and experiment drivers where the size is a literal.
func MustPageGeom(pageSize uint64) PageGeom {
	g, err := NewPageGeom(pageSize)
	if err != nil {
		panic(err)
	}
	return g
}

// OffsetBits returns log2(PageSize): the number of in-page offset bits.
func (g PageGeom) OffsetBits() uint { return g.offsetLen }

// PageOf returns the macro-page ID containing a.
func (g PageGeom) PageOf(a uint64) uint64 { return (a & Mask) >> g.offsetLen }

// OffsetOf returns the in-page offset of a.
func (g PageGeom) OffsetOf(a uint64) uint64 { return a & (g.PageSize - 1) }

// Join rebuilds an address from a macro-page ID and offset.
func (g PageGeom) Join(page, offset uint64) uint64 {
	return ((page << g.offsetLen) | (offset & (g.PageSize - 1))) & Mask
}

// PagesIn returns how many macro pages cover the given capacity in bytes.
// The capacity must be a multiple of the page size.
func (g PageGeom) PagesIn(capacity uint64) uint64 { return capacity / g.PageSize }

// log2 of a power of two.
func log2(v uint64) uint {
	var n uint
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// AlignDown rounds a down to a multiple of size (power of two).
func AlignDown(a, size uint64) uint64 { return a &^ (size - 1) }

// AlignUp rounds a up to a multiple of size (power of two).
func AlignUp(a, size uint64) uint64 { return (a + size - 1) &^ (size - 1) }
