package addr

import "testing"

// FuzzAddressMapping drives NewMapping with arbitrary field layouts. Each
// field arrives packed in a uint16 (low byte width, high byte offset).
// Invalid layouts (overlap, out of range) must be rejected with an error —
// never a panic — and every accepted layout must be a Decode/Encode
// bijection for the fuzzed address.
func FuzzAddressMapping(f *testing.F) {
	pack := func(width, offset uint8) uint16 { return uint16(offset)<<8 | uint16(width) }
	// The Table III-ish layout: column 11, bank 3, row 8, channel 2, rank 2.
	f.Add(pack(2, 22), pack(2, 30), pack(3, 11), pack(8, 14), pack(11, 0), uint64(0x1234_5678_9abc))
	// Empty mapping: everything flows through Rest.
	f.Add(uint16(0), uint16(0), uint16(0), uint16(0), uint16(0), uint64(42))
	// Overlapping channel/rank fields: must be rejected.
	f.Add(pack(4, 10), pack(4, 12), uint16(0), uint16(0), uint16(0), ^uint64(0))
	// Field spilling past bit 48: must be rejected.
	f.Add(pack(8, 44), uint16(0), uint16(0), uint16(0), uint16(0), uint64(1))
	// Full 48-bit single field.
	f.Add(pack(48, 0), uint16(0), uint16(0), uint16(0), uint16(0), Mask)
	f.Fuzz(func(t *testing.T, ch, rank, bank, row, col uint16, a uint64) {
		unpack := func(v uint16) BitField {
			return BitField{Width: uint(v & 0xff), Offset: uint(v >> 8)}
		}
		m, err := NewMapping(unpack(ch), unpack(rank), unpack(bank), unpack(row), unpack(col))
		if err != nil {
			return
		}
		c := m.Decode(a)
		if got := m.Encode(c); got != a&Mask {
			t.Fatalf("Encode(Decode(%#x)) = %#x (coord %+v)", a, got, c)
		}
		if c2 := m.Decode(m.Encode(c)); c2 != c {
			t.Fatalf("Decode(Encode(%+v)) = %+v", c, c2)
		}
		// The coordinate widths must respect the field widths.
		for _, fc := range []struct {
			f BitField
			v uint64
		}{
			{unpack(ch), c.Channel}, {unpack(rank), c.Rank}, {unpack(bank), c.Bank},
			{unpack(row), c.Row}, {unpack(col), c.Column},
		} {
			if fc.f.Width < 64 && fc.v>>fc.f.Width != 0 {
				t.Fatalf("coordinate %#x wider than its %d-bit field", fc.v, fc.f.Width)
			}
		}
	})
}
