// Address mapping: the channel/rank/bank/row/column bit-field decode a
// multi-channel memory controller hub applies to a physical address before
// routing. A Mapping is a set of non-overlapping bit fields over the 48-bit
// physical space; decode extracts each field, encode reassembles the exact
// address, and the two are a bijection over the whole space (uncovered bits
// are carried through a compacted Rest field). The hub's hot path uses the
// specialized Interleave form, which strips the channel bits in O(1).
package addr

import "fmt"

// BitField selects Width consecutive bits starting at bit Offset of a
// physical address. A zero Width means the field is absent (it always
// decodes to zero and encodes nothing).
type BitField struct {
	Width  uint // number of bits (0 = absent)
	Offset uint // bit position of the field's LSB
}

// Mask returns the field's positioned bit mask.
func (f BitField) Mask() uint64 {
	if f.Width == 0 {
		return 0
	}
	return ((uint64(1) << f.Width) - 1) << f.Offset
}

// Value extracts the field from address a.
func (f BitField) Value(a uint64) uint64 {
	if f.Width == 0 {
		return 0
	}
	return (a >> f.Offset) & ((uint64(1) << f.Width) - 1)
}

// Place positions field value v at the field's offset; bits of v beyond the
// field width are dropped.
func (f BitField) Place(v uint64) uint64 {
	if f.Width == 0 {
		return 0
	}
	return (v & ((uint64(1) << f.Width) - 1)) << f.Offset
}

// Coord is one decoded address: the five DRAM coordinates plus the
// compacted leftover bits, so Decode/Encode lose nothing.
type Coord struct {
	Channel uint64
	Rank    uint64
	Bank    uint64
	Row     uint64
	Column  uint64

	// Rest packs every address bit not covered by a field, LSB-first in
	// ascending bit order. Carrying it makes Decode/Encode a bijection over
	// the full 48-bit space even for partial mappings.
	Rest uint64
}

// Mapping is a validated channel/rank/bank/row/column bit-field layout.
type Mapping struct {
	Channel BitField
	Rank    BitField
	Bank    BitField
	Row     BitField
	Column  BitField

	rest []BitField // uncovered bit runs, ascending offset
}

// NewMapping validates the five fields — each must lie inside the 48-bit
// physical space and no two may overlap — and precomputes the uncovered-bit
// runs. Zero-width fields are allowed (a mapping need not use every
// coordinate; a single-channel mapping has a zero-width Channel field).
func NewMapping(channel, rank, bank, row, column BitField) (*Mapping, error) {
	m := &Mapping{Channel: channel, Rank: rank, Bank: bank, Row: row, Column: column}
	var covered uint64
	for _, f := range []struct {
		name  string
		field BitField
	}{
		{"channel", channel}, {"rank", rank}, {"bank", bank}, {"row", row}, {"column", column},
	} {
		if f.field.Width == 0 {
			continue
		}
		if f.field.Width > Bits || f.field.Offset >= Bits || f.field.Offset+f.field.Width > Bits {
			return nil, fmt.Errorf("addr: %s field [%d,%d) outside the %d-bit physical space",
				f.name, f.field.Offset, f.field.Offset+f.field.Width, Bits)
		}
		mask := f.field.Mask()
		if covered&mask != 0 {
			return nil, fmt.Errorf("addr: %s field [%d,%d) overlaps another field",
				f.name, f.field.Offset, f.field.Offset+f.field.Width)
		}
		covered |= mask
	}
	// Collect the uncovered bits as maximal runs so Rest compaction walks a
	// handful of fields instead of 48 single bits.
	for bit := uint(0); bit < Bits; {
		if covered&(uint64(1)<<bit) != 0 {
			bit++
			continue
		}
		start := bit
		for bit < Bits && covered&(uint64(1)<<bit) == 0 {
			bit++
		}
		m.rest = append(m.rest, BitField{Width: bit - start, Offset: start})
	}
	return m, nil
}

// RestWidth returns how many address bits no field covers.
func (m *Mapping) RestWidth() uint {
	var w uint
	for _, f := range m.rest {
		w += f.Width
	}
	return w
}

// Decode splits address a (only the low 48 bits are considered) into its
// coordinates. Decode and Encode are exact inverses.
func (m *Mapping) Decode(a uint64) Coord {
	a &= Mask
	c := Coord{
		Channel: m.Channel.Value(a),
		Rank:    m.Rank.Value(a),
		Bank:    m.Bank.Value(a),
		Row:     m.Row.Value(a),
		Column:  m.Column.Value(a),
	}
	var shift uint
	for _, f := range m.rest {
		c.Rest |= f.Value(a) << shift
		shift += f.Width
	}
	return c
}

// Encode reassembles the address from its coordinates. Coordinate bits
// beyond their field width are dropped, so Encode(Decode(a)) == a&Mask for
// every address and Decode(Encode(c)) == c for every in-range coordinate.
func (m *Mapping) Encode(c Coord) uint64 {
	a := m.Channel.Place(c.Channel) |
		m.Rank.Place(c.Rank) |
		m.Bank.Place(c.Bank) |
		m.Row.Place(c.Row) |
		m.Column.Place(c.Column)
	var shift uint
	for _, f := range m.rest {
		a |= f.Place(c.Rest >> shift)
		shift += f.Width
	}
	return a
}

// ChannelOf returns the decoded channel index of address a.
func (m *Mapping) ChannelOf(a uint64) int { return int(m.Channel.Value(a & Mask)) }

// Interleave is the hub's routing specialization of a Mapping: channel bits
// of width log2(channels) sit at offset log2(granularity), addresses stripe
// across channels in granularity-sized units, and removing the channel bits
// compacts an address into a per-channel local space. All three operations
// are a few shifts — no loops, no allocation — so they can sit on the
// per-record hot path.
type Interleave struct {
	shift uint // log2(granularity)
	width uint // log2(channels)
}

// NewInterleave builds the routing mapping for a power-of-two channel count
// interleaved at a power-of-two granularity.
func NewInterleave(channels int, granularity uint64) (Interleave, error) {
	if channels <= 0 || channels&(channels-1) != 0 {
		return Interleave{}, fmt.Errorf("addr: channel count %d must be a positive power of two", channels)
	}
	if granularity == 0 || granularity&(granularity-1) != 0 {
		return Interleave{}, fmt.Errorf("addr: interleave granularity %d must be a positive power of two", granularity)
	}
	iv := Interleave{shift: uint(log2(granularity)), width: uint(log2(uint64(channels)))}
	if iv.shift+iv.width > Bits {
		return Interleave{}, fmt.Errorf("addr: channel field [%d,%d) outside the %d-bit physical space",
			iv.shift, iv.shift+iv.width, Bits)
	}
	return iv, nil
}

// Channels returns the channel count.
func (iv Interleave) Channels() int { return 1 << iv.width }

// Granularity returns the interleave unit in bytes.
func (iv Interleave) Granularity() uint64 { return uint64(1) << iv.shift }

// Mapping returns the equivalent full bit-field mapping: the channel field
// at the interleave position, the intra-unit offset as Column, and the unit
// index above the channel bits as Row.
func (iv Interleave) Mapping() *Mapping {
	m, err := NewMapping(
		BitField{Width: iv.width, Offset: iv.shift},
		BitField{}, BitField{},
		BitField{Width: Bits - iv.shift - iv.width, Offset: iv.shift + iv.width},
		BitField{Width: iv.shift, Offset: 0},
	)
	if err != nil {
		panic(err) // unreachable: NewInterleave validated the layout
	}
	return m
}

// ChannelOf returns the channel address a stripes to.
func (iv Interleave) ChannelOf(a uint64) int {
	return int((a >> iv.shift) & ((uint64(1) << iv.width) - 1))
}

// Local compacts address a into its channel's local space by removing the
// channel bits: bits below the channel field keep their position, bits
// above it shift down by the field width.
func (iv Interleave) Local(a uint64) uint64 {
	a &= Mask
	low := a & ((uint64(1) << iv.shift) - 1)
	return low | (a>>(iv.shift+iv.width))<<iv.shift
}

// Global is the inverse of (ChannelOf, Local): it re-inserts the channel
// bits into a local address.
func (iv Interleave) Global(ch int, local uint64) uint64 {
	low := local & ((uint64(1) << iv.shift) - 1)
	return low | uint64(ch)<<iv.shift | (local>>iv.shift)<<(iv.shift+iv.width)
}
