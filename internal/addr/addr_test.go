package addr

import (
	"testing"
	"testing/quick"
)

func TestNewPageGeomValidation(t *testing.T) {
	cases := []struct {
		size uint64
		ok   bool
	}{
		{4 * KiB, true},
		{4 * MiB, true},
		{1 * GiB, true},
		{2 * KiB, false}, // below minimum
		{2 * GiB, false}, // above maximum
		{3 * MiB, false}, // not a power of two
		{6 * KiB, false}, // not a power of two
		{0, false},
	}
	for _, c := range cases {
		_, err := NewPageGeom(c.size)
		if (err == nil) != c.ok {
			t.Errorf("NewPageGeom(%d): err=%v, want ok=%v", c.size, err, c.ok)
		}
	}
}

func TestPageGeomSplit(t *testing.T) {
	g := MustPageGeom(4 * MiB)
	if g.OffsetBits() != 22 {
		t.Fatalf("4MB pages: offset bits = %d, want 22 (paper Fig. 6)", g.OffsetBits())
	}
	a := uint64(0x0000_1234_5678_9abc) & Mask
	page, off := g.PageOf(a), g.OffsetOf(a)
	if got := g.Join(page, off); got != a {
		t.Fatalf("Join(PageOf, OffsetOf) = %#x, want %#x", got, a)
	}
}

func TestPageOfMasksTo48Bits(t *testing.T) {
	g := MustPageGeom(4 * KiB)
	// Bits above 48 must be ignored.
	withJunk := uint64(0xffff_0000_0000_1000)
	clean := uint64(0x0000_0000_0000_1000)
	if g.PageOf(withJunk) != g.PageOf(clean) {
		t.Fatal("PageOf did not mask to 48 bits")
	}
}

func TestPagesIn(t *testing.T) {
	g := MustPageGeom(4 * MiB)
	if n := g.PagesIn(1 * GiB); n != 256 {
		t.Fatalf("1GB / 4MB = %d pages, want 256 (paper's N)", n)
	}
}

func TestAlign(t *testing.T) {
	if AlignDown(4097, 4096) != 4096 {
		t.Error("AlignDown(4097, 4096) != 4096")
	}
	if AlignUp(4097, 4096) != 8192 {
		t.Error("AlignUp(4097, 4096) != 8192")
	}
	if AlignUp(4096, 4096) != 4096 {
		t.Error("AlignUp(4096, 4096) != 4096")
	}
}

// Property: split/join round-trips for every page size and address.
func TestSplitJoinRoundTrip(t *testing.T) {
	f := func(raw uint64, sizeSel uint8) bool {
		sizes := []uint64{4 * KiB, 64 * KiB, 1 * MiB, 4 * MiB}
		g := MustPageGeom(sizes[int(sizeSel)%len(sizes)])
		a := raw & Mask
		return g.Join(g.PageOf(a), g.OffsetOf(a)) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: offsets are always smaller than the page size.
func TestOffsetBound(t *testing.T) {
	f := func(raw uint64) bool {
		g := MustPageGeom(64 * KiB)
		return g.OffsetOf(raw) < g.PageSize
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
