package experiments

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"heteromem/internal/obs"
)

// TestTelemetryFoldShuffledCompletion pins the sweep-telemetry contract for
// sharded runs: per-channel metric snapshots folding in ANY completion
// order — channels of a parallel run finish in nondeterministic order —
// must render the exact same /metrics text, with every series in sorted
// name order.
func TestTelemetryFoldShuffledCompletion(t *testing.T) {
	snapshots := make([]*obs.Snapshot, 6)
	for i := range snapshots {
		r := obs.NewRegistry()
		r.Counter("mc.reads").Add(uint64(1000 + 17*i))
		r.Counter("mig.swaps").Add(uint64(i))
		if i%2 == 0 {
			r.Counter("fault.injected").Inc()
		}
		r.Gauge("mig.slots_free").Set(int64(32 - i))
		snapshots[i] = r.Snapshot()
	}

	render := func(order []int) string {
		tel := NewTelemetry()
		for _, i := range order {
			tel.observeRun(500, snapshots[i])
		}
		var b strings.Builder
		tel.WriteMetrics(&b)
		return b.String()
	}

	want := render([]int{0, 1, 2, 3, 4, 5})
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		order := rng.Perm(len(snapshots))
		if got := render(order); got != want {
			t.Fatalf("completion order %v changed /metrics:\n got:\n%s\nwant:\n%s", order, got, want)
		}
	}

	// The rendered series sort by their internal key: every counter row
	// ("counter.<name>") precedes every gauge row ("gauge.<name>" → _sum
	// suffix), and each block is itself in sorted name order.
	var counters, gauges []string
	for _, line := range strings.Split(want, "\n") {
		if !strings.HasPrefix(line, "hmsim_sim_") {
			continue
		}
		name := strings.Fields(line)[0]
		if strings.HasSuffix(name, "_sum") {
			gauges = append(gauges, name)
		} else {
			if len(gauges) > 0 {
				t.Fatalf("counter row %s rendered after a gauge row", name)
			}
			counters = append(counters, name)
		}
	}
	if len(counters) == 0 || len(gauges) == 0 {
		t.Fatalf("missing series: counters=%v gauges=%v", counters, gauges)
	}
	if !sort.StringsAreSorted(counters) || !sort.StringsAreSorted(gauges) {
		t.Fatalf("series out of sorted order: counters=%v gauges=%v", counters, gauges)
	}
}
