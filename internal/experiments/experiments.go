// Package experiments contains one driver per table and figure of the
// paper's evaluation. Each driver builds the workloads, runs the relevant
// simulations, and renders the same rows/series the paper reports. The
// DESIGN.md per-experiment index maps every driver to the modules it
// exercises and the bench target that regenerates it.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"

	"heteromem/internal/addr"
	"heteromem/internal/config"
	"heteromem/internal/core"
	"heteromem/internal/sim"
	"heteromem/internal/stats"
	"heteromem/internal/trace"
	"heteromem/internal/workload"
)

// newTable is a local alias for the stats table renderer.
func newTable(header ...string) *stats.Table { return stats.NewTable(header...) }

// Params scales an experiment run.
type Params struct {
	// Records per trace simulation (0 selects the experiment's default).
	Records uint64
	// Warmup records excluded from statistics (0 = Records/2... the
	// experiment default).
	Warmup uint64
	// Seed for the workload generators.
	Seed int64
	// Workloads filters to a subset (nil = the experiment's full list).
	Workloads []string
	// Parallelism caps the worker goroutines used for independent
	// simulations (0 = GOMAXPROCS).
	Parallelism int
	// Channels shards every simulation across this many per-channel
	// controllers under the deterministic cycle barrier (0 or 1 = the
	// single-controller classic path). Manifest cells key on the config
	// digest, which covers the channel layout, so sharded and unsharded
	// sweeps never collide.
	Channels int
	// Telemetry, when non-nil, receives live sweep telemetry (run
	// progress, merged metrics) from every driver; serve its Handler to
	// watch a sweep over HTTP. Nil keeps the drivers telemetry-free.
	Telemetry *Telemetry
	// Manifest, when non-nil, makes the sweep crash-resilient: completed
	// (workload, seed, config) cells are recorded as they finish, and cells
	// already recorded are served from the manifest instead of re-running.
	Manifest *Manifest

	// packed, when non-nil, replays each workload from a shared packed
	// materialization (built once per workload, ~4-5x smaller than
	// []trace.Record) instead of re-running the generator in every sweep
	// cell. The sweep drivers set it; the record stream — and therefore
	// every result — is identical either way.
	packed *packedTraces
}

func (p Params) records(def uint64) uint64 {
	if p.Records > 0 {
		return p.Records
	}
	return def
}

func (p Params) warmup(records uint64) uint64 {
	if p.Warmup > 0 && p.Warmup < records {
		return p.Warmup
	}
	return records / 2
}

func (p Params) seed() int64 {
	if p.Seed != 0 {
		return p.Seed
	}
	return 1
}

func (p Params) workloads(def []string) []string {
	if len(p.Workloads) == 0 {
		return def
	}
	return p.Workloads
}

// Granularities is the paper's macro-page sweep (Table III: 4 KB to 4 MB).
var Granularities = []uint64{4 * addr.KiB, 16 * addr.KiB, 64 * addr.KiB, 256 * addr.KiB, 1 * addr.MiB, 4 * addr.MiB}

// Intervals is the paper's swap-interval sweep in memory accesses
// (Section IV: "after each 1,000, 10,000, and 100,000 memory accesses").
var Intervals = []uint64{1000, 10000, 100000}

// PureHardwareMinPage is the paper's feasibility split: pure-hardware
// migration for granularity >= 1 MB, OS-assisted below it (Section III-B).
const PureHardwareMinPage = 1 * addr.MiB

// runTrace simulates one (workload, configuration) pair.
func runTrace(name string, seed int64, cfg sim.Config) (sim.Result, error) {
	gen, err := workload.NewMemory(name, seed)
	if err != nil {
		return sim.Result{}, err
	}
	src := trace.NewLimit(gen, cfg.MaxRecords)
	return sim.Run(src, cfg)
}

// packedTraces materializes each (workload, seed, record-count) memory
// trace into the packed columnar form exactly once — even when sweep cells
// race on it from forEach workers — so a driver that replays the same
// trace across dozens of configurations pays the generator and the trace
// storage once per workload instead of once per cell.
type packedTraces struct {
	mu sync.Mutex
	m  map[packedTraceKey]*packedTraceEntry
}

type packedTraceKey struct {
	name string
	seed int64
	n    uint64
}

type packedTraceEntry struct {
	once sync.Once
	p    *trace.Packed
	err  error
}

func newPackedTraces() *packedTraces {
	return &packedTraces{m: make(map[packedTraceKey]*packedTraceEntry)}
}

// source returns a fresh replay source over the shared packed trace for
// (name, seed, n), building the packed trace on first use.
func (c *packedTraces) source(name string, seed int64, n uint64) (trace.Source, error) {
	key := packedTraceKey{name: name, seed: seed, n: n}
	c.mu.Lock()
	e := c.m[key]
	if e == nil {
		e = &packedTraceEntry{}
		c.m[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		gen, err := workload.NewMemory(name, seed)
		if err != nil {
			e.err = err
			return
		}
		e.p, e.err = trace.Pack(gen, n)
	})
	if e.err != nil {
		return nil, e.err
	}
	return trace.NewPackedSource(e.p), nil
}

// traceConfig assembles a Section IV configuration.
func traceConfig(pageSize uint64, mig *core.Options, records, warmup uint64) sim.Config {
	cfg := sim.Default()
	cfg.Geometry.MacroPageSize = pageSize
	cfg.Migration = mig
	cfg.OSAssisted = mig != nil && pageSize < PureHardwareMinPage
	cfg.MaxRecords = records
	cfg.Warmup = warmup
	return cfg
}

// Runner is an experiment entry point for the CLI. Cancelling ctx stops
// the driver between simulations and surfaces ctx.Err().
type Runner func(ctx context.Context, w io.Writer, p Params) error

// Registry maps experiment IDs to their drivers.
func Registry() map[string]Runner {
	return map[string]Runner{
		"table1":  Table1,
		"table2":  Table2,
		"table3":  Table3,
		"table4":  Table4,
		"fig4":    Fig4,
		"fig5":    Fig5,
		"fig10":   Fig10,
		"fig11a":  func(ctx context.Context, w io.Writer, p Params) error { return Fig11(ctx, w, p, 1000) },
		"fig11b":  func(ctx context.Context, w io.Writer, p Params) error { return Fig11(ctx, w, p, 10000) },
		"fig11c":  func(ctx context.Context, w io.Writer, p Params) error { return Fig11(ctx, w, p, 100000) },
		"fig12":   func(ctx context.Context, w io.Writer, p Params) error { return Fig1214(ctx, w, p, 1000) },
		"fig13":   func(ctx context.Context, w io.Writer, p Params) error { return Fig1214(ctx, w, p, 10000) },
		"fig14":   func(ctx context.Context, w io.Writer, p Params) error { return Fig1214(ctx, w, p, 100000) },
		"fig15":   Fig15,
		"fig16":   Fig16,
		"schemes": Schemes,
	}
}

// Names returns the registered experiment IDs, sorted.
func Names() []string {
	r := Registry()
	out := make([]string, 0, len(r))
	for k := range r {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// sizeLabel formats a byte count the way the paper's axes do.
func sizeLabel(b uint64) string {
	switch {
	case b >= addr.GiB && b%addr.GiB == 0:
		return fmt.Sprintf("%dGB", b/addr.GiB)
	case b >= addr.MiB && b%addr.MiB == 0:
		return fmt.Sprintf("%dMB", b/addr.MiB)
	default:
		return fmt.Sprintf("%dKB", b/addr.KiB)
	}
}

// designList is the Fig. 11 design comparison.
var designList = []core.Design{core.DesignN, core.DesignN1, core.DesignLive}

// defaultLatencies gives drivers access to the Table II constants.
func defaultLatencies() config.Latencies { return config.TableIILatencies() }
