package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"heteromem/internal/core"
	"heteromem/internal/scheme"
	"heteromem/internal/sim"
)

// manifestParams is a small but real sweep: Fig. 11 at one interval with
// one workload is 6 granularities x 3 designs = 18 cells.
func manifestParams(man *Manifest) Params {
	return Params{
		Records: 20_000, Warmup: 5_000, Seed: 1,
		Workloads: []string{"pgbench"}, Parallelism: 1, Manifest: man,
	}
}

// TestManifestKillAndResume is the sweep-resilience contract: a sweep
// killed mid-flight and restarted against its manifest re-runs only the
// cells that had not completed, and produces identical results.
func TestManifestKillAndResume(t *testing.T) {
	const cells = 18 // pgbench x 6 granularities x 3 designs
	path := filepath.Join(t.TempDir(), "sweep.jsonl")

	// The uninterrupted sweep, manifest-free, is the reference.
	want, err := Fig11Data(context.Background(), manifestParams(nil), 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != cells {
		t.Fatalf("sweep has %d cells, want %d", len(want), cells)
	}

	// Kill the sweep once at least killAfter cells have committed: cancel
	// the context and let forEach abort between jobs.
	const killAfter = 5
	man, err := OpenManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		for man.Ran() < killAfter {
			time.Sleep(time.Millisecond)
		}
		cancel()
	}()
	if _, err := Fig11Data(ctx, manifestParams(man), 1000); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted sweep: err = %v, want context.Canceled", err)
	}
	committed := man.Ran()
	if err := man.Close(); err != nil {
		t.Fatal(err)
	}
	if committed < killAfter || committed >= cells {
		t.Fatalf("kill committed %d cells, want in [%d, %d)", committed, killAfter, cells)
	}

	// Resume: a fresh process opens the same manifest and re-runs the grid.
	man2, err := OpenManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	defer man2.Close()
	if got := man2.Len(); uint64(got) != committed {
		t.Fatalf("reopened manifest holds %d cells, want %d", got, committed)
	}
	got, err := Fig11Data(context.Background(), manifestParams(man2), 1000)
	if err != nil {
		t.Fatal(err)
	}
	if man2.Hits() != committed {
		t.Errorf("resume served %d cells from the manifest, want %d", man2.Hits(), committed)
	}
	if want := cells - committed; man2.Ran() != want {
		t.Errorf("resume re-ran %d cells, want only the %d incomplete ones", man2.Ran(), want)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("resumed sweep diverged from the uninterrupted run:\n got %+v\nwant %+v", got, want)
	}
}

// TestManifestTornLine verifies crash tolerance of the file itself: a kill
// mid-append leaves a torn final line, which reopen must skip while keeping
// every complete record.
func TestManifestTornLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	man, err := OpenManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.Default()
	cfg.MaxRecords = 123
	if err := man.store("pgbench", 1, cfg, sim.Result{Records: 123}); err != nil {
		t.Fatal(err)
	}
	if err := man.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate the torn append.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"key":"torn|1|456|abc","result":{"Rec`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	man2, err := OpenManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if man2.Len() != 1 {
		t.Fatalf("reopened manifest holds %d cells, want 1 (torn line skipped)", man2.Len())
	}
	res, ok, err := man2.lookup("pgbench", 1, cfg)
	if err != nil || !ok {
		t.Fatalf("lookup after torn line: ok=%v err=%v", ok, err)
	}
	if res.Records != 123 {
		t.Fatalf("restored Records = %d, want 123", res.Records)
	}

	// The next append must start on a fresh line so the torn bytes never
	// merge with a valid record.
	cfg2 := cfg
	cfg2.MaxRecords = 456
	if err := man2.store("pgbench", 1, cfg2, sim.Result{Records: 456}); err != nil {
		t.Fatal(err)
	}
	if err := man2.Close(); err != nil {
		t.Fatal(err)
	}
	man3, err := OpenManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	defer man3.Close()
	if man3.Len() != 2 {
		t.Fatalf("manifest holds %d cells after post-torn append, want 2", man3.Len())
	}
}

// TestManifestCompaction: reopening a ledger that holds duplicate cell
// lines (takeover races), garbage, and a torn trailing fragment rewrites it
// atomically down to one well-formed line per cell — and a clean ledger is
// left untouched, so compaction does not churn healthy files.
func TestManifestCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	man, err := OpenManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	cfgA := sim.Default()
	cfgA.MaxRecords = 111
	cfgB := sim.Default()
	cfgB.MaxRecords = 222
	if err := man.store("pgbench", 1, cfgA, sim.Result{Records: 111}); err != nil {
		t.Fatal(err)
	}
	if err := man.store("tpcc", 1, cfgB, sim.Result{Records: 222}); err != nil {
		t.Fatal(err)
	}
	// A duplicate line for the first cell (as a pre-dedup build or a
	// takeover race would append), superseding the original with a newer
	// Result, plus garbage and a torn fragment.
	if err := man.store("pgbench", 1, cfgA, sim.Result{Records: 111, LastCycle: 99}); err != nil {
		t.Fatal(err)
	}
	if err := man.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("not json at all\n{\"key\":\"torn|1|2|3\",\"result\":{\"Rec"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	man2, err := OpenManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if !man2.Compacted() {
		t.Fatal("reopen did not compact a ledger with duplicate and torn lines")
	}
	if man2.Len() != 2 {
		t.Fatalf("compacted manifest holds %d cells, want 2", man2.Len())
	}
	// The superseding (latest) line must win for the duplicated cell.
	res, ok, err := man2.lookup("pgbench", 1, cfgA)
	if err != nil || !ok {
		t.Fatalf("lookup after compaction: ok=%v err=%v", ok, err)
	}
	if res.LastCycle != 99 {
		t.Fatalf("compaction kept LastCycle=%d, want the superseding line's 99", res.LastCycle)
	}
	// Appends after compaction still land on their own lines.
	cfgC := sim.Default()
	cfgC.MaxRecords = 333
	if err := man2.store("ycsb", 1, cfgC, sim.Result{Records: 333}); err != nil {
		t.Fatal(err)
	}
	if err := man2.Close(); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimRight(data, "\n"), []byte{'\n'})
	if len(lines) != 3 {
		t.Fatalf("compacted file has %d lines, want 3:\n%s", len(lines), data)
	}
	for i, line := range lines {
		var rec manifestRecord
		if err := json.Unmarshal(line, &rec); err != nil || rec.Key == "" {
			t.Fatalf("line %d is not a well-formed record: %v\n%s", i, err, line)
		}
	}

	// A clean ledger must reopen without a rewrite.
	man3, err := OpenManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	defer man3.Close()
	if man3.Compacted() {
		t.Fatal("reopen compacted an already-clean ledger")
	}
	if man3.Len() != 3 {
		t.Fatalf("clean reopen holds %d cells, want 3", man3.Len())
	}
}

// TestManifestStoreRawIdempotent: the coordinator's duplicate-completion
// path — the first result for a cell wins, later ones are dropped without
// touching the file.
func TestManifestStoreRawIdempotent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	man, err := OpenManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.Default()
	cfg.MaxRecords = 10
	first, _ := json.Marshal(sim.Result{Records: 10})
	second, _ := json.Marshal(sim.Result{Records: 10, LastCycle: 7})
	if stored, err := man.StoreRaw("pgbench", 1, cfg, first); err != nil || !stored {
		t.Fatalf("first StoreRaw: stored=%v err=%v", stored, err)
	}
	if stored, err := man.StoreRaw("pgbench", 1, cfg, second); err != nil || stored {
		t.Fatalf("duplicate StoreRaw: stored=%v err=%v, want dropped", stored, err)
	}
	raw, ok := man.LookupRaw(CellKey("pgbench", 1, cfg))
	if !ok {
		t.Fatal("LookupRaw missed a stored cell")
	}
	if !bytes.Equal(raw, first) {
		t.Fatalf("LookupRaw = %s, want the first write %s", raw, first)
	}
	if err := man.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n := bytes.Count(data, []byte{'\n'}); n != 1 {
		t.Fatalf("file has %d lines after a duplicate store, want 1", n)
	}
}

// TestManifestKeySeparatesCells: cells differing only in record budget or
// configuration must not collide.
func TestManifestKeySeparatesCells(t *testing.T) {
	a := sim.Default()
	a.MaxRecords = 1000
	b := a
	b.MaxRecords = 2000
	c := a
	c.Warmup = 500
	keys := map[string]bool{
		manifestKey("pgbench", 1, a): true,
		manifestKey("pgbench", 2, a): true,
		manifestKey("tpcc", 1, a):    true,
		manifestKey("pgbench", 1, b): true,
		manifestKey("pgbench", 1, c): true,
	}
	if len(keys) != 5 {
		t.Fatalf("cell keys collide: %v", keys)
	}
}

// TestManifestWithTelemetry: the two sweep layers compose — manifest hits
// still fold their stored metrics into the sweep totals.
func TestManifestWithTelemetry(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	man, err := OpenManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	p := manifestParams(man)
	p.Telemetry = NewTelemetry()
	cfg := traceConfig(Granularities[len(Granularities)-1], nil, 20_000, 5_000)
	first, err := p.runTrace("pgbench", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if first.Metrics == nil {
		t.Fatal("telemetry run did not collect metrics")
	}
	again, err := p.runTrace("pgbench", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if man.Ran() != 1 || man.Hits() != 1 {
		t.Fatalf("Ran=%d Hits=%d, want 1/1", man.Ran(), man.Hits())
	}
	b1, err := json.Marshal(first)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := json.Marshal(again)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("manifest hit diverged from the original run:\n got %s\nwant %s", b2, b1)
	}
	if p.Telemetry.records.Load() != first.Records+again.Records {
		t.Fatalf("telemetry records = %d, want %d", p.Telemetry.records.Load(), first.Records+again.Records)
	}
	if err := man.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestManifestSchemeFields pins the design/scheme ledger columns: stored
// cells carry the names derived from their config, pre-scheme cells stay
// field-free, and ReadManifest surfaces both for cross-scheme reporting.
func TestManifestSchemeFields(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	man, err := OpenManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	static := sim.Default()
	static.MaxRecords = 10
	mig := sim.Default()
	mig.MaxRecords = 10
	mig.Migration = &core.Options{Design: core.DesignLive, SwapInterval: 1000}
	cache := sim.Default()
	cache.MaxRecords = 10
	cache.Scheme, _ = scheme.Parse("alloy-pred")
	for _, c := range []sim.Config{static, mig, cache} {
		if err := man.store("pgbench", 1, c, sim.Result{Records: 10}); err != nil {
			t.Fatal(err)
		}
	}
	if err := man.Close(); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	entries, err := ReadManifest(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("ReadManifest returned %d entries, want 3", len(entries))
	}
	want := []struct{ design, scheme string }{{"", ""}, {"Live", ""}, {"", "alloy-pred"}}
	for i, w := range want {
		if entries[i].Design != w.design || entries[i].Scheme != w.scheme {
			t.Errorf("entry %d: design=%q scheme=%q, want %q/%q",
				i, entries[i].Design, entries[i].Scheme, w.design, w.scheme)
		}
		if entries[i].Workload != "pgbench" || entries[i].Result.Records != 10 {
			t.Errorf("entry %d payload wrong: %+v", i, entries[i])
		}
	}
}
