package experiments

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"heteromem/internal/sim"
)

// Manifest makes a sweep crash-resilient: every completed (workload, seed,
// configuration) simulation appends its Result to a JSONL file, and a sweep
// restarted against the same file skips cells that already have a record.
// Workers in a parallel sweep share one Manifest; appends are serialized
// and flushed per record, so a killed sweep loses at most the runs that
// were still in flight. A torn final line (the append the crash
// interrupted) is ignored on reopen.
type Manifest struct {
	mu   sync.Mutex
	file *os.File
	w    *bufio.Writer
	done map[string]json.RawMessage

	ran  atomic.Uint64 // cells simulated by this process
	hits atomic.Uint64 // cells satisfied from the manifest
}

// manifestRecord is one JSONL line: the cell key plus the fields it was
// derived from (for human inspection) and the completed run's Result.
type manifestRecord struct {
	Key      string          `json:"key"`
	Workload string          `json:"workload"`
	Seed     int64           `json:"seed"`
	Records  uint64          `json:"records"`
	Digest   string          `json:"digest"`
	Result   json.RawMessage `json:"result"`
}

// manifestKey identifies a sweep cell. The config digest covers everything
// semantically relevant except MaxRecords (a run-control field), so the
// record budget is keyed explicitly.
func manifestKey(name string, seed int64, cfg sim.Config) string {
	return fmt.Sprintf("%s|%d|%d|%016x", name, seed, cfg.MaxRecords, sim.ConfigDigest(cfg))
}

// OpenManifest opens (creating if needed) a sweep manifest file and loads
// its completed-run records. Unparseable lines — a torn append from a
// killed worker — are skipped, not fatal.
func OpenManifest(path string) (*Manifest, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	m := &Manifest{file: f, done: make(map[string]json.RawMessage)}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20)
	for sc.Scan() {
		var rec manifestRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil || rec.Key == "" {
			continue
		}
		m.done[rec.Key] = append(json.RawMessage(nil), rec.Result...)
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, fmt.Errorf("experiments: reading manifest %s: %w", path, err)
	}
	// Appends go after whatever is there. A torn final line (no trailing
	// newline) must not merge with the next record, so terminate it first;
	// the scanner above already ignored it and will keep ignoring the now
	// newline-terminated fragment.
	end, err := f.Seek(0, 2)
	if err != nil {
		f.Close()
		return nil, err
	}
	if end > 0 {
		last := make([]byte, 1)
		if _, err := f.ReadAt(last, end-1); err != nil {
			f.Close()
			return nil, err
		}
		if last[0] != '\n' {
			if _, err := f.Write([]byte{'\n'}); err != nil {
				f.Close()
				return nil, err
			}
		}
	}
	m.w = bufio.NewWriter(f)
	return m, nil
}

// Len reports how many completed cells the manifest holds.
func (m *Manifest) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.done)
}

// Ran reports how many cells this process simulated (manifest misses).
func (m *Manifest) Ran() uint64 { return m.ran.Load() }

// Hits reports how many cells were satisfied from stored records.
func (m *Manifest) Hits() uint64 { return m.hits.Load() }

// lookup returns the stored Result for a cell, if present.
func (m *Manifest) lookup(name string, seed int64, cfg sim.Config) (sim.Result, bool, error) {
	key := manifestKey(name, seed, cfg)
	m.mu.Lock()
	raw, ok := m.done[key]
	m.mu.Unlock()
	if !ok {
		return sim.Result{}, false, nil
	}
	var res sim.Result
	if err := json.Unmarshal(raw, &res); err != nil {
		return sim.Result{}, false, fmt.Errorf("experiments: manifest record %s: %w", key, err)
	}
	m.hits.Add(1)
	return res, true, nil
}

// store appends a completed cell and flushes it to the file, so the record
// survives even if the process is killed immediately after.
func (m *Manifest) store(name string, seed int64, cfg sim.Config, res sim.Result) error {
	m.ran.Add(1)
	raw, err := json.Marshal(res)
	if err != nil {
		return err
	}
	rec := manifestRecord{
		Key:      manifestKey(name, seed, cfg),
		Workload: name,
		Seed:     seed,
		Records:  cfg.MaxRecords,
		Digest:   fmt.Sprintf("%016x", sim.ConfigDigest(cfg)),
		Result:   raw,
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.done[rec.Key] = raw
	if _, err := m.w.Write(append(line, '\n')); err != nil {
		return err
	}
	if err := m.w.Flush(); err != nil {
		return err
	}
	return m.file.Sync()
}

// Close flushes and closes the manifest file.
func (m *Manifest) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.w.Flush(); err != nil {
		m.file.Close()
		return err
	}
	return m.file.Close()
}
