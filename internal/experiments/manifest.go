package experiments

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"heteromem/internal/scheme"
	"heteromem/internal/sim"
)

// Manifest makes a sweep crash-resilient: every completed (workload, seed,
// configuration) simulation appends its Result to a JSONL file, and a sweep
// restarted against the same file skips cells that already have a record.
// Workers in a parallel sweep share one Manifest; appends are serialized
// and flushed per record, so a killed sweep loses at most the runs that
// were still in flight. A torn final line (the append the crash
// interrupted) is ignored on reopen.
//
// The manifest is also the durable ledger of the distributed sweep service
// (internal/dsweep): the coordinator owns the file, serves leased cells
// from it, and records every remotely completed cell through StoreRaw. On
// reopen the file is compacted — superseded and duplicate cell lines (from
// takeover races or pre-compaction builds) are dropped via an atomic
// tmp+rename rewrite — so a long-lived coordinator's ledger stays
// proportional to the number of distinct cells, not the number of appends.
type Manifest struct {
	mu   sync.Mutex
	path string
	file *os.File
	w    *bufio.Writer
	done map[string]json.RawMessage

	compacted bool // reopen-time compaction rewrote the file

	ran  atomic.Uint64 // cells simulated by this process
	hits atomic.Uint64 // cells satisfied from the manifest
}

// manifestRecord is one JSONL line: the cell key plus the fields it was
// derived from (for human inspection and cross-scheme reporting) and the
// completed run's Result. Design and Scheme are derived from the config at
// store time; both stay absent for pre-scheme cells, so old ledgers and new
// ones interleave cleanly.
type manifestRecord struct {
	Key      string          `json:"key"`
	Workload string          `json:"workload"`
	Seed     int64           `json:"seed"`
	Records  uint64          `json:"records"`
	Design   string          `json:"design,omitempty"`
	Scheme   string          `json:"scheme,omitempty"`
	Digest   string          `json:"digest"`
	Result   json.RawMessage `json:"result"`
}

// manifestKey identifies a sweep cell. The config digest covers everything
// semantically relevant except MaxRecords (a run-control field), so the
// record budget is keyed explicitly.
func manifestKey(name string, seed int64, cfg sim.Config) string {
	return fmt.Sprintf("%s|%d|%d|%016x", name, seed, cfg.MaxRecords, sim.ConfigDigest(cfg))
}

// CellKey exposes the manifest's cell identity to the distributed sweep
// coordinator: workload name, generator seed, record budget, and the
// semantic config digest.
func CellKey(name string, seed int64, cfg sim.Config) string {
	return manifestKey(name, seed, cfg)
}

// OpenManifest opens (creating if needed) a sweep manifest file and loads
// its completed-run records. Unparseable lines — a torn append from a
// killed worker — are skipped, not fatal. If the file holds superseded or
// duplicate lines for the same cell (or torn garbage), it is compacted in
// place: rewritten with exactly one well-formed line per cell via an atomic
// tmp+rename, so the crash-safety contract (a reader never sees a partial
// ledger) holds across the rewrite too.
func OpenManifest(path string) (*Manifest, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	m := &Manifest{path: path, file: f, done: make(map[string]json.RawMessage)}
	var (
		order    []string              // first-completed order, for the rewrite
		lines    = map[string][]byte{} // latest well-formed line per key
		rawLines int                   // every line scanned, well-formed or not
	)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20)
	for sc.Scan() {
		rawLines++
		var rec manifestRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil || rec.Key == "" {
			continue
		}
		if _, seen := m.done[rec.Key]; !seen {
			order = append(order, rec.Key)
		}
		m.done[rec.Key] = append(json.RawMessage(nil), rec.Result...)
		lines[rec.Key] = append([]byte(nil), sc.Bytes()...)
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, fmt.Errorf("experiments: reading manifest %s: %w", path, err)
	}
	if rawLines > len(m.done) {
		// Superseded/duplicate/torn lines present: compact. The scanner
		// treats a torn trailing fragment as a line, so a freshly crashed
		// append triggers a (cheap, single-line-dropping) rewrite too.
		if err := m.compact(order, lines); err != nil {
			f.Close()
			return nil, fmt.Errorf("experiments: compacting manifest %s: %w", path, err)
		}
		m.compacted = true
		m.w = bufio.NewWriter(m.file)
		return m, nil
	}
	// Appends go after whatever is there. A torn final line (no trailing
	// newline) must not merge with the next record, so terminate it first;
	// the scanner above already ignored it and will keep ignoring the now
	// newline-terminated fragment.
	end, err := f.Seek(0, 2)
	if err != nil {
		f.Close()
		return nil, err
	}
	if end > 0 {
		last := make([]byte, 1)
		if _, err := f.ReadAt(last, end-1); err != nil {
			f.Close()
			return nil, err
		}
		if last[0] != '\n' {
			if _, err := f.Write([]byte{'\n'}); err != nil {
				f.Close()
				return nil, err
			}
		}
	}
	m.w = bufio.NewWriter(f)
	return m, nil
}

// compact rewrites the ledger with one line per cell, in first-completed
// order, via tmp file + fsync + atomic rename, then swaps the open handle
// to the new file (positioned at its end for appends).
func (m *Manifest) compact(order []string, lines map[string][]byte) error {
	dir := filepath.Dir(m.path)
	tmp, err := os.CreateTemp(dir, filepath.Base(m.path)+".compact-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op once renamed
	bw := bufio.NewWriter(tmp)
	for _, key := range order {
		if _, err := bw.Write(append(lines[key], '\n')); err != nil {
			tmp.Close()
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), m.path); err != nil {
		return err
	}
	f, err := os.OpenFile(m.path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return err
	}
	m.file.Close()
	m.file = f
	return nil
}

// Len reports how many completed cells the manifest holds.
func (m *Manifest) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.done)
}

// Compacted reports whether opening this manifest rewrote the file to drop
// superseded, duplicate, or torn lines.
func (m *Manifest) Compacted() bool { return m.compacted }

// Ran reports how many cells this process simulated (manifest misses).
func (m *Manifest) Ran() uint64 { return m.ran.Load() }

// Hits reports how many cells were satisfied from stored records.
func (m *Manifest) Hits() uint64 { return m.hits.Load() }

// lookup returns the stored Result for a cell, if present.
func (m *Manifest) lookup(name string, seed int64, cfg sim.Config) (sim.Result, bool, error) {
	key := manifestKey(name, seed, cfg)
	m.mu.Lock()
	raw, ok := m.done[key]
	m.mu.Unlock()
	if !ok {
		return sim.Result{}, false, nil
	}
	var res sim.Result
	if err := json.Unmarshal(raw, &res); err != nil {
		return sim.Result{}, false, fmt.Errorf("experiments: manifest record %s: %w", key, err)
	}
	m.hits.Add(1)
	return res, true, nil
}

// LookupRaw returns the stored raw Result JSON for a cell key, if present.
// It is the coordinator's lease filter: a cell whose key is already in the
// ledger is complete and must not be leased again.
func (m *Manifest) LookupRaw(key string) (json.RawMessage, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	raw, ok := m.done[key]
	if !ok {
		return nil, false
	}
	return append(json.RawMessage(nil), raw...), true
}

// store appends a completed cell and flushes it to the file, so the record
// survives even if the process is killed immediately after.
func (m *Manifest) store(name string, seed int64, cfg sim.Config, res sim.Result) error {
	raw, err := json.Marshal(res)
	if err != nil {
		return err
	}
	m.ran.Add(1)
	return m.storeRaw(manifestKey(name, seed, cfg), name, seed, cfg, raw)
}

// StoreRaw records a remotely completed cell: the coordinator passes the
// worker's result bytes through unmodified, so the ledger holds exactly
// what the worker computed (byte-identical to a local run of the same
// cell). Idempotent: a duplicate completion — a takeover race where the
// presumed-dead worker finished after all — is dropped, keeping exactly one
// line per cell. The first write wins.
func (m *Manifest) StoreRaw(name string, seed int64, cfg sim.Config, result json.RawMessage) (stored bool, err error) {
	key := manifestKey(name, seed, cfg)
	m.mu.Lock()
	_, dup := m.done[key]
	m.mu.Unlock()
	if dup {
		return false, nil
	}
	m.ran.Add(1)
	return true, m.storeRaw(key, name, seed, cfg, result)
}

func (m *Manifest) storeRaw(key, name string, seed int64, cfg sim.Config, raw json.RawMessage) error {
	rec := manifestRecord{
		Key:      key,
		Workload: name,
		Seed:     seed,
		Records:  cfg.MaxRecords,
		Digest:   fmt.Sprintf("%016x", sim.ConfigDigest(cfg)),
		Result:   raw,
	}
	if cfg.Migration != nil {
		rec.Design = cfg.Migration.Design.String()
	}
	if cfg.Scheme != (scheme.Spec{}) {
		rec.Scheme = cfg.Scheme.String()
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.done[rec.Key] = append(json.RawMessage(nil), raw...)
	if _, err := m.w.Write(append(line, '\n')); err != nil {
		return err
	}
	if err := m.w.Flush(); err != nil {
		return err
	}
	return m.file.Sync()
}

// ManifestEntry is the read-only view of one completed sweep cell, as
// recorded in the manifest ledger. Design and Scheme are empty for cells
// written before those fields existed (such cells ran the default migration
// scheme, but the design is unrecoverable without the original sweep grid).
type ManifestEntry struct {
	Key      string
	Workload string
	Seed     int64
	Records  uint64
	Design   string
	Scheme   string
	Result   sim.Result
}

// ReadManifest decodes every well-formed line of a sweep manifest, last
// line winning per cell key (mirroring OpenManifest's superseding rule),
// in first-seen key order. Torn or foreign lines are skipped, matching the
// ledger's crash-tolerance contract.
func ReadManifest(r io.Reader) ([]ManifestEntry, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20)
	var order []string
	byKey := map[string]ManifestEntry{}
	for sc.Scan() {
		var rec manifestRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil || rec.Key == "" {
			continue
		}
		e := ManifestEntry{
			Key:      rec.Key,
			Workload: rec.Workload,
			Seed:     rec.Seed,
			Records:  rec.Records,
			Design:   rec.Design,
			Scheme:   rec.Scheme,
		}
		if err := json.Unmarshal(rec.Result, &e.Result); err != nil {
			continue
		}
		if _, seen := byKey[rec.Key]; !seen {
			order = append(order, rec.Key)
		}
		byKey[rec.Key] = e
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("experiments: reading manifest: %w", err)
	}
	out := make([]ManifestEntry, 0, len(order))
	for _, key := range order {
		out = append(out, byKey[key])
	}
	return out, nil
}

// Close flushes and closes the manifest file.
func (m *Manifest) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.w.Flush(); err != nil {
		m.file.Close()
		return err
	}
	return m.file.Close()
}
