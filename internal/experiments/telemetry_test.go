package experiments

import (
	"context"
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"heteromem/internal/addr"
	"heteromem/internal/obs"
)

// TestTelemetryNilSafe checks that a nil aggregator is inert: every
// accounting hook must be callable through the Params wrappers without one.
func TestTelemetryNilSafe(t *testing.T) {
	var tel *Telemetry
	tel.addPlanned(3)
	tel.runStarted()
	tel.runFinished(time.Now(), nil)
	tel.setActive("x", +1)
	tel.observeRun(100, nil)

	p := Params{Records: 10_000, Workloads: []string{"pgbench"}}
	if err := p.forEach(context.Background(), 2, 2, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	res, err := p.runTrace("pgbench", traceConfig(4*addr.MiB, nil, 10_000, 5_000))
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics != nil {
		t.Fatal("nil telemetry must not force metrics collection")
	}
}

// TestTelemetryProgressAndMetrics checks the aggregate bookkeeping after a
// real (small) sweep: planned/started/completed line up, records accumulate,
// and the Prometheus rendering carries the folded simulation counters.
func TestTelemetryProgressAndMetrics(t *testing.T) {
	tel := NewTelemetry()
	p := Params{Records: 10_000, Workloads: []string{"pgbench"}, Telemetry: tel}
	if err := Fig11(context.Background(), io.Discard, p, 1000); err != nil {
		t.Fatal(err)
	}

	prog := tel.Progress()
	if prog.Planned == 0 || prog.Planned != prog.Started || prog.Planned != prog.Completed {
		t.Fatalf("sweep accounting off: %+v", prog)
	}
	if prog.Failed != 0 || len(prog.Active) != 0 {
		t.Fatalf("finished sweep still shows failures/active runs: %+v", prog)
	}
	if prog.Records == 0 {
		t.Fatal("no records accumulated")
	}
	if prog.ETASeconds != 0 {
		t.Fatalf("finished sweep ETA should be 0, got %g", prog.ETASeconds)
	}

	var b strings.Builder
	tel.WriteMetrics(&b)
	text := b.String()
	for _, want := range []string{
		"hmsim_runs_planned ",
		"hmsim_runs_completed ",
		"hmsim_records_total ",
		"hmsim_run_seconds_total ",
		"hmsim_sim_memctrl_access_on",
		"hmsim_sim_mig_swaps_completed_sum",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics text missing %q:\n%s", want, text)
		}
	}
}

// TestTelemetryConcurrentScrapes hammers every telemetry read path from many
// goroutines while a parallel sweep is writing — the race detector is the
// real assertion here. It also checks that mid-sweep scrapes stay
// well-formed.
func TestTelemetryConcurrentScrapes(t *testing.T) {
	tel := NewTelemetry()
	srv := httptest.NewServer(tel.Handler())
	defer srv.Close()

	var done atomic.Bool
	var wg sync.WaitGroup
	var scrapes atomic.Int64
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := srv.Client()
			for !done.Load() {
				resp, err := client.Get(srv.URL + "/metrics")
				if err != nil {
					t.Error(err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if !strings.Contains(string(body), "hmsim_runs_planned") {
					t.Error("mid-sweep /metrics scrape malformed")
					return
				}
				resp, err = client.Get(srv.URL + "/progress")
				if err != nil {
					t.Error(err)
					return
				}
				var prog Progress
				err = json.NewDecoder(resp.Body).Decode(&prog)
				resp.Body.Close()
				if err != nil {
					t.Errorf("mid-sweep /progress not JSON: %v", err)
					return
				}
				if prog.Started < prog.Completed+prog.Failed {
					t.Errorf("progress counters inconsistent: %+v", prog)
					return
				}
				scrapes.Add(1)
			}
		}()
	}
	// Direct (non-HTTP) readers race the same state.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !done.Load() {
			var b strings.Builder
			tel.WriteMetrics(&b)
			_ = tel.Progress()
		}
	}()

	p := Params{Records: 20_000, Parallelism: 4, Workloads: []string{"pgbench", "indexer"}, Telemetry: tel}
	if err := Fig11(context.Background(), io.Discard, p, 1000); err != nil {
		t.Fatal(err)
	}
	done.Store(true)
	wg.Wait()

	if scrapes.Load() == 0 {
		t.Fatal("no successful scrapes during the sweep")
	}
	prog := tel.Progress()
	if prog.Completed != prog.Planned || prog.Failed != 0 {
		t.Fatalf("sweep did not complete cleanly: %+v", prog)
	}
}

// TestTelemetryCountsFailures checks that erroring runs land in the failed
// counter, not completed.
func TestTelemetryCountsFailures(t *testing.T) {
	tel := NewTelemetry()
	p := Params{Telemetry: tel}
	if _, err := p.runTrace("no-such-workload", traceConfig(4*addr.MiB, nil, 1000, 500)); err == nil {
		t.Fatal("bogus workload should fail")
	}
	err := p.forEach(context.Background(), 3, 3, func(i int) error {
		if i == 1 {
			return context.DeadlineExceeded
		}
		return nil
	})
	if err == nil {
		t.Fatal("forEach should surface the job error")
	}
	prog := tel.Progress()
	if prog.Failed == 0 {
		t.Fatalf("failures not counted: %+v", prog)
	}
	if prog.Planned != 3 {
		t.Fatalf("planned should be 3, got %+v", prog)
	}
}

// TestPromName pins the sanitizer: whatever an instrument (or a worker on
// the wire) calls itself, the rendered metric name must satisfy the
// Prometheus grammar [a-zA-Z_:][a-zA-Z0-9_:]*.
func TestPromName(t *testing.T) {
	cases := []struct{ in, want string }{
		{"mig.swaps.completed", "mig_swaps_completed"},
		{"memctrl-access-on", "memctrl_access_on"},
		{"already_fine:total", "already_fine:total"},
		{"spaces and/slashes", "spaces_and_slashes"},
		{"9starts_with_digit", "_9starts_with_digit"},
		{"unicode-wörker", "unicode_w_rker"}, // one underscore per rune, not per byte
		{"quotes\"and\nnewlines", "quotes_and_newlines"},
		{"", "_"},
		{"___", "___"},
	}
	for _, c := range cases {
		if got := promName(c.in); got != c.want {
			t.Errorf("promName(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestPromLabel pins the label-value escaper against the three characters
// the exposition format treats specially.
func TestPromLabel(t *testing.T) {
	if got := PromLabel("plain"); got != "plain" {
		t.Errorf("PromLabel(plain) = %q", got)
	}
	if got := PromLabel("a\"b\\c\nd"); got != `a\"b\\c\nd` {
		t.Errorf("hostile label escaped to %q", got)
	}
}

// TestWritePromHistogram checks the cumulative-bucket rendering against a
// hand-filled snapshot: le buckets accumulate, +Inf equals the total
// count, and _sum/_count close the series.
func TestWritePromHistogram(t *testing.T) {
	h := obs.NewHistogram([]int64{10, 100, 1000})
	for _, v := range []int64{3, 7, 40, 90, 900, 5000} {
		h.Observe(v)
	}
	var b strings.Builder
	WritePromHistogram(&b, "dsweep.heartbeat-rtt.us", h.Snapshot())
	got := b.String()
	want := "# TYPE dsweep_heartbeat_rtt_us histogram\n" +
		"dsweep_heartbeat_rtt_us_bucket{le=\"10\"} 2\n" +
		"dsweep_heartbeat_rtt_us_bucket{le=\"100\"} 4\n" +
		"dsweep_heartbeat_rtt_us_bucket{le=\"1000\"} 5\n" +
		"dsweep_heartbeat_rtt_us_bucket{le=\"+Inf\"} 6\n" +
		"dsweep_heartbeat_rtt_us_sum 6040\n" +
		"dsweep_heartbeat_rtt_us_count 6\n"
	if got != want {
		t.Errorf("histogram rendering:\n got: %q\nwant: %q", got, want)
	}
}

// TestTelemetryCollectorsAndWorkerHealth checks the two fleet hooks: an
// AddCollector section appears on /metrics after the built-ins, and a
// SetWorkerHealth provider populates the sorted /progress worker table.
func TestTelemetryCollectorsAndWorkerHealth(t *testing.T) {
	tel := NewTelemetry()
	tel.AddCollector(func(b *strings.Builder) {
		b.WriteString("# TYPE dsweep_leases_outstanding gauge\ndsweep_leases_outstanding 2\n")
	})
	tel.AddCollector(nil) // must be ignored, not panic
	tel.SetWorkerHealth(func() []WorkerHealth {
		return []WorkerHealth{
			{Name: "w1", Cells: 1, LastHeartbeatSeconds: 0.5, Records: 100, RecordsPerSec: 10},
			{Name: "w0", Cells: 2, LastHeartbeatSeconds: 1.5, Records: 300, RecordsPerSec: 30},
		}
	})

	var b strings.Builder
	tel.WriteMetrics(&b)
	text := b.String()
	if !strings.Contains(text, "dsweep_leases_outstanding 2") {
		t.Errorf("collector section missing from metrics:\n%s", text)
	}
	if strings.Index(text, "hmsim_runs_planned") > strings.Index(text, "dsweep_leases_outstanding") {
		t.Error("collector section rendered before the built-in totals")
	}

	prog := tel.Progress()
	if len(prog.Workers) != 2 || prog.Workers[0].Name != "w0" || prog.Workers[1].Name != "w1" {
		t.Fatalf("worker health table wrong: %+v", prog.Workers)
	}

	// Nil telemetry swallows both hooks.
	var none *Telemetry
	none.AddCollector(func(*strings.Builder) {})
	none.SetWorkerHealth(func() []WorkerHealth { return nil })
	none.ObserveRingDrops(1, 2, 3)
}

// TestTelemetryObserveRingDrops checks that per-run observability-ring
// drops surface as hmsim_sim_obs_* counters, and that zero drops emit
// nothing (the common case must stay invisible).
func TestTelemetryObserveRingDrops(t *testing.T) {
	tel := NewTelemetry()
	tel.ObserveRingDrops(0, 0, 0)
	var b strings.Builder
	tel.WriteMetrics(&b)
	if strings.Contains(b.String(), "ring_dropped") {
		t.Errorf("zero drops should not emit ring metrics:\n%s", b.String())
	}

	tel.ObserveRingDrops(5, 0, 2)
	tel.ObserveRingDrops(1, 3, 0)
	b.Reset()
	tel.WriteMetrics(&b)
	text := b.String()
	for _, want := range []string{
		"hmsim_sim_obs_events_ring_dropped 6",
		"hmsim_sim_obs_spans_ring_dropped 3",
		"hmsim_sim_obs_series_ring_dropped 2",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}
}
