package experiments

import (
	"context"
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"heteromem/internal/addr"
)

// TestTelemetryNilSafe checks that a nil aggregator is inert: every
// accounting hook must be callable through the Params wrappers without one.
func TestTelemetryNilSafe(t *testing.T) {
	var tel *Telemetry
	tel.addPlanned(3)
	tel.runStarted()
	tel.runFinished(time.Now(), nil)
	tel.setActive("x", +1)
	tel.observeRun(100, nil)

	p := Params{Records: 10_000, Workloads: []string{"pgbench"}}
	if err := p.forEach(context.Background(), 2, 2, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	res, err := p.runTrace("pgbench", traceConfig(4*addr.MiB, nil, 10_000, 5_000))
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics != nil {
		t.Fatal("nil telemetry must not force metrics collection")
	}
}

// TestTelemetryProgressAndMetrics checks the aggregate bookkeeping after a
// real (small) sweep: planned/started/completed line up, records accumulate,
// and the Prometheus rendering carries the folded simulation counters.
func TestTelemetryProgressAndMetrics(t *testing.T) {
	tel := NewTelemetry()
	p := Params{Records: 10_000, Workloads: []string{"pgbench"}, Telemetry: tel}
	if err := Fig11(context.Background(), io.Discard, p, 1000); err != nil {
		t.Fatal(err)
	}

	prog := tel.Progress()
	if prog.Planned == 0 || prog.Planned != prog.Started || prog.Planned != prog.Completed {
		t.Fatalf("sweep accounting off: %+v", prog)
	}
	if prog.Failed != 0 || len(prog.Active) != 0 {
		t.Fatalf("finished sweep still shows failures/active runs: %+v", prog)
	}
	if prog.Records == 0 {
		t.Fatal("no records accumulated")
	}
	if prog.ETASeconds != 0 {
		t.Fatalf("finished sweep ETA should be 0, got %g", prog.ETASeconds)
	}

	var b strings.Builder
	tel.WriteMetrics(&b)
	text := b.String()
	for _, want := range []string{
		"hmsim_runs_planned ",
		"hmsim_runs_completed ",
		"hmsim_records_total ",
		"hmsim_run_seconds_total ",
		"hmsim_sim_memctrl_access_on",
		"hmsim_sim_mig_swaps_completed_sum",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics text missing %q:\n%s", want, text)
		}
	}
}

// TestTelemetryConcurrentScrapes hammers every telemetry read path from many
// goroutines while a parallel sweep is writing — the race detector is the
// real assertion here. It also checks that mid-sweep scrapes stay
// well-formed.
func TestTelemetryConcurrentScrapes(t *testing.T) {
	tel := NewTelemetry()
	srv := httptest.NewServer(tel.Handler())
	defer srv.Close()

	var done atomic.Bool
	var wg sync.WaitGroup
	var scrapes atomic.Int64
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := srv.Client()
			for !done.Load() {
				resp, err := client.Get(srv.URL + "/metrics")
				if err != nil {
					t.Error(err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if !strings.Contains(string(body), "hmsim_runs_planned") {
					t.Error("mid-sweep /metrics scrape malformed")
					return
				}
				resp, err = client.Get(srv.URL + "/progress")
				if err != nil {
					t.Error(err)
					return
				}
				var prog Progress
				err = json.NewDecoder(resp.Body).Decode(&prog)
				resp.Body.Close()
				if err != nil {
					t.Errorf("mid-sweep /progress not JSON: %v", err)
					return
				}
				if prog.Started < prog.Completed+prog.Failed {
					t.Errorf("progress counters inconsistent: %+v", prog)
					return
				}
				scrapes.Add(1)
			}
		}()
	}
	// Direct (non-HTTP) readers race the same state.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !done.Load() {
			var b strings.Builder
			tel.WriteMetrics(&b)
			_ = tel.Progress()
		}
	}()

	p := Params{Records: 20_000, Parallelism: 4, Workloads: []string{"pgbench", "indexer"}, Telemetry: tel}
	if err := Fig11(context.Background(), io.Discard, p, 1000); err != nil {
		t.Fatal(err)
	}
	done.Store(true)
	wg.Wait()

	if scrapes.Load() == 0 {
		t.Fatal("no successful scrapes during the sweep")
	}
	prog := tel.Progress()
	if prog.Completed != prog.Planned || prog.Failed != 0 {
		t.Fatalf("sweep did not complete cleanly: %+v", prog)
	}
}

// TestTelemetryCountsFailures checks that erroring runs land in the failed
// counter, not completed.
func TestTelemetryCountsFailures(t *testing.T) {
	tel := NewTelemetry()
	p := Params{Telemetry: tel}
	if _, err := p.runTrace("no-such-workload", traceConfig(4*addr.MiB, nil, 1000, 500)); err == nil {
		t.Fatal("bogus workload should fail")
	}
	err := p.forEach(context.Background(), 3, 3, func(i int) error {
		if i == 1 {
			return context.DeadlineExceeded
		}
		return nil
	})
	if err == nil {
		t.Fatal("forEach should surface the job error")
	}
	prog := tel.Progress()
	if prog.Failed == 0 {
		t.Fatalf("failures not counted: %+v", prog)
	}
	if prog.Planned != 3 {
		t.Fatalf("planned should be 3, got %+v", prog)
	}
}
