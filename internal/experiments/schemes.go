package experiments

import (
	"context"
	"fmt"
	"io"

	"heteromem/internal/core"
	"heteromem/internal/cpu"
	"heteromem/internal/scheme"
	"heteromem/internal/sim"
	"heteromem/internal/workload"
)

// SchemeVariant names one column of the cross-scheme comparison: an
// on-package capacity scheme plus the migration design its memory part
// runs (empty for pure caches, which have no migration engine).
type SchemeVariant struct {
	Scheme   string
	Design   string // "" for pure cache schemes
	Interval uint64 // swap interval for migrating variants
}

// Label is the variant's column header.
func (v SchemeVariant) Label() string {
	if v.Design == "" {
		return v.Scheme
	}
	if v.Scheme == "migrate" {
		return "migrate/" + v.Design
	}
	return v.Scheme + "/" + v.Design
}

// SchemeVariants is the comparison grid of the schemes experiment: the
// paper's live migration against the DRAM-cache alternatives, all at the
// Table II/III defaults.
var SchemeVariants = []SchemeVariant{
	{Scheme: "migrate", Design: "live", Interval: 1000},
	{Scheme: "alloy", Design: ""},
	{Scheme: "alloy-pred", Design: ""},
	{Scheme: "cachemode", Design: ""},
	{Scheme: "memcache", Design: "live", Interval: 1000},
}

// variantConfig builds the simulation configuration for one variant.
func variantConfig(v SchemeVariant, records, warmup uint64) (sim.Config, error) {
	var mig *core.Options
	if v.Design != "" {
		d, ok := map[string]core.Design{"n": core.DesignN, "n-1": core.DesignN1, "live": core.DesignLive}[v.Design]
		if !ok {
			return sim.Config{}, fmt.Errorf("experiments: scheme variant %s: unknown design %q", v.Scheme, v.Design)
		}
		mig = &core.Options{Design: d, SwapInterval: v.Interval}
	}
	cfg := traceConfig(sim.Default().Geometry.MacroPageSize, mig, records, warmup)
	sp, err := scheme.Parse(v.Scheme)
	if err != nil {
		return sim.Config{}, err
	}
	cfg.Scheme = sp
	return cfg, nil
}

// SchemeCell is one (workload, variant) outcome of the comparison.
type SchemeCell struct {
	Variant       SchemeVariant
	MeanLat       float64 // end-to-end mean memory latency
	MeanDRAMLat   float64 // DRAM access latency alone (queuing + device)
	CoreLat       float64
	OnShare       float64 // fraction of demand served on-package
	HitRate       float64 // cache schemes only (0 under pure migration)
	Effectiveness float64 // η vs this workload's static baseline
	IPC           float64 // estimated quad-core IPC (cpu.Model.EstimateIPC)
}

// SchemesRow is one workload's cross-scheme comparison.
type SchemesRow struct {
	Workload  string
	StaticLat float64 // static-mapping DRAM latency baseline
	StaticIPC float64
	Cells     []SchemeCell
}

// SchemesData runs every workload through the static baseline and each
// scheme variant, and derives the paper's η effectiveness (vs static) plus
// an estimated IPC per cell.
func SchemesData(ctx context.Context, p Params) ([]SchemesRow, error) {
	p.packed = newPackedTraces() // one packed trace per workload, replayed by every cell
	const defRecords = 2_000_000
	records := p.records(defRecords)
	warm := p.warmup(records)
	names := p.workloads(workload.Names())
	model := cpu.DefaultModel()

	type job struct {
		wl      int
		variant int // -1 marks the static baseline run
	}
	var jobs []job
	for wl := range names {
		jobs = append(jobs, job{wl: wl, variant: -1})
		for v := range SchemeVariants {
			jobs = append(jobs, job{wl: wl, variant: v})
		}
	}
	results := make([]sim.Result, len(jobs))
	err := p.forEach(ctx, len(jobs), p.Parallelism, func(i int) error {
		j := jobs[i]
		var cfg sim.Config
		var err error
		if j.variant < 0 {
			cfg = traceConfig(sim.Default().Geometry.MacroPageSize, nil, records, warm)
		} else if cfg, err = variantConfig(SchemeVariants[j.variant], records, warm); err != nil {
			return err
		}
		res, err := p.runTrace(names[j.wl], cfg)
		if err != nil {
			return fmt.Errorf("schemes %s: %w", names[j.wl], err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}

	out := make([]SchemesRow, len(names))
	for i, j := range jobs {
		res := results[i]
		row := &out[j.wl]
		row.Workload = names[j.wl]
		if j.variant < 0 {
			row.StaticLat = res.MeanDRAMLatency
			row.StaticIPC = model.EstimateIPC(res.MeanLatency)
			continue
		}
		cell := SchemeCell{
			Variant:     SchemeVariants[j.variant],
			MeanLat:     res.MeanLatency,
			MeanDRAMLat: res.MeanDRAMLatency,
			CoreLat:     res.Report.MeanCoreLat,
			OnShare:     res.Report.OnShare,
			IPC:         model.EstimateIPC(res.MeanLatency),
		}
		if res.Report.Scheme != nil {
			cell.HitRate = res.Report.Scheme.HitRate
		}
		row.Cells = append(row.Cells, cell)
	}
	for i := range out {
		for c := range out[i].Cells {
			cell := &out[i].Cells[c]
			cell.Effectiveness = sim.Effectiveness(out[i].StaticLat, cell.MeanDRAMLat, cell.CoreLat)
		}
	}
	return out, nil
}

// Schemes renders the cross-scheme comparison: per (workload, scheme) DRAM
// latency, cache hit rate, η effectiveness vs the static baseline, and the
// estimated IPC — the scheme-selection companion to Table IV and Fig. 5.
func Schemes(ctx context.Context, w io.Writer, p Params) error {
	rows, err := SchemesData(ctx, p)
	if err != nil {
		return err
	}
	t := newTable("Workload", "Scheme", "DRAM lat", "On-pkg share", "Hit rate", "Effectiveness", "Est. IPC")
	for _, r := range rows {
		t.AddRow(r.Workload, "static", fmt.Sprintf("%.1f", r.StaticLat), "", "", "", fmt.Sprintf("%.3f", r.StaticIPC))
		for _, c := range r.Cells {
			hit := ""
			if c.Variant.Design == "" || c.HitRate > 0 {
				hit = fmt.Sprintf("%.3f", c.HitRate)
			}
			t.AddRow("", c.Variant.Label(),
				fmt.Sprintf("%.1f", c.MeanDRAMLat),
				fmt.Sprintf("%.3f", c.OnShare),
				hit,
				fmt.Sprintf("%.1f%%", c.Effectiveness),
				fmt.Sprintf("%.3f", c.IPC))
		}
	}
	fmt.Fprintln(w, "Cross-scheme comparison: on-package capacity schemes vs the static baseline")
	_, err = io.WriteString(w, t.String())
	return err
}
