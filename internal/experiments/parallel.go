package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// workerPanic carries a panic out of a worker goroutine so it can be
// re-raised on the caller's goroutine with the worker's stack attached.
type workerPanic struct {
	value any
	stack []byte
}

// forEachIndex runs fn(i) for i in [0, n) on up to `workers` goroutines
// (0 = GOMAXPROCS). Each simulation owns its generator and controller, so
// configurations are embarrassingly parallel; results are written by index,
// keeping output order deterministic regardless of scheduling.
//
// The first error stops further work and is returned. Cancelling ctx stops
// new work from being claimed and returns ctx.Err() (jobs already running
// finish first; simulations are not interruptible mid-record). A panic in
// fn is recovered on the worker, the remaining work is cancelled, and the
// panic is re-raised on the calling goroutine (with the worker stack in
// the value) once every worker has exited — a crash in one configuration
// must not leak goroutines or kill the process from a detached stack.
func forEachIndex(ctx context.Context, n, workers int, fn func(i int) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		panicked *workerPanic
		next     int
	)
	claim := func() int {
		if err := ctx.Err(); err != nil {
			mu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
			return -1
		}
		mu.Lock()
		defer mu.Unlock()
		if firstErr != nil || panicked != nil || next >= n {
			return -1
		}
		i := next
		next++
		return i
	}
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := claim()
				if i < 0 {
					return
				}
				err := func() (err error) {
					defer func() {
						if r := recover(); r != nil {
							buf := make([]byte, 64<<10)
							buf = buf[:runtime.Stack(buf, false)]
							mu.Lock()
							if panicked == nil {
								panicked = &workerPanic{value: r, stack: buf}
							}
							mu.Unlock()
							err = fmt.Errorf("experiments: worker panic: %v", r)
						}
					}()
					return fn(i)
				}()
				if err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(fmt.Sprintf("experiments: panic in parallel worker: %v\n\nworker stack:\n%s",
			panicked.value, panicked.stack))
	}
	return firstErr
}
