package experiments

import (
	"runtime"
	"sync"
)

// forEachIndex runs fn(i) for i in [0, n) on up to `workers` goroutines
// (0 = GOMAXPROCS). Each simulation owns its generator and controller, so
// configurations are embarrassingly parallel; results are written by index,
// keeping output order deterministic regardless of scheduling.
func forEachIndex(n, workers int, fn func(i int) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		next     int
	)
	claim := func() int {
		mu.Lock()
		defer mu.Unlock()
		if firstErr != nil || next >= n {
			return -1
		}
		i := next
		next++
		return i
	}
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := claim()
				if i < 0 {
					return
				}
				if err := fn(i); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}
