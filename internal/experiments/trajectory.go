package experiments

import (
	"context"
	"fmt"

	"heteromem/internal/addr"
	"heteromem/internal/core"
	"heteromem/internal/sim"
)

// EpochTrajectoryPoint is one epoch of a workload's convergence trajectory
// under live migration: the cumulative routing mix, swap activity, and the
// effectiveness (η) the run had achieved by that boundary, measured against
// the same static baseline Table IV uses.
type EpochTrajectoryPoint struct {
	Epoch          uint64
	Cycle          int64
	Final          bool // the flush-time sample closing the run
	OnShare        float64
	PStalls        uint64
	StallCycles    uint64
	SwapsCompleted uint64
	MeanDRAMLat    float64
	Effectiveness  float64 // cumulative η vs the static baseline, percent
}

// TrajectoryPage and TrajectoryInterval pin the live-migration operating
// point the trajectory is sampled at (the paper's pure-hardware sweet spot:
// 4 MB macro pages swapped every 1,000 accesses).
const (
	TrajectoryPage     = 4 * addr.MiB
	TrajectoryInterval = 1000
)

// EpochTrajectoryData runs one workload twice — a static baseline and a
// live-migration run with per-epoch series sampling — and folds them into
// the effectiveness trajectory. Both runs measure from record zero (no
// warmup) so the cumulative per-epoch counters cover the whole run.
func EpochTrajectoryData(ctx context.Context, p Params, name string) ([]EpochTrajectoryPoint, error) {
	records := p.records(4_000_000)
	cfgs := []sim.Config{
		traceConfig(64*addr.KiB, nil, records, 0),
		traceConfig(TrajectoryPage, &core.Options{Design: core.DesignLive, SwapInterval: TrajectoryInterval}, records, 0),
	}
	cfgs[1].EpochSeries = 1 << 16
	results := make([]sim.Result, len(cfgs))
	err := p.forEach(ctx, len(cfgs), p.Parallelism, func(i int) error {
		res, err := p.runTrace(name, cfgs[i])
		if err != nil {
			return fmt.Errorf("trajectory %s: %w", name, err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}

	latNoMig := results[0].MeanDRAMLatency
	live := results[1]
	coreLat := live.Report.MeanCoreLat
	out := make([]EpochTrajectoryPoint, 0, len(live.Series))
	for _, s := range live.Series {
		pt := EpochTrajectoryPoint{
			Epoch:          s.Epoch,
			Cycle:          s.Cycle,
			Final:          s.Final,
			OnShare:        s.OnShare(),
			PStalls:        s.PStalls,
			StallCycles:    s.StallCycles,
			SwapsCompleted: s.SwapsCompleted,
			MeanDRAMLat:    s.MeanDRAMLatency(),
		}
		if s.DRAMLatN > 0 {
			pt.Effectiveness = sim.Effectiveness(latNoMig, pt.MeanDRAMLat, coreLat)
		}
		out = append(out, pt)
	}
	return out, nil
}
