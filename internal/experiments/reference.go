package experiments

// Paper reference values, used by cmd/hmreport to print measured-vs-paper
// comparisons and by EXPERIMENTS.md.

// PaperTable4 is the paper's Table IV effectiveness per workload (%).
var PaperTable4 = map[string]float64{
	"FT":       69.1,
	"MG":       84.3,
	"pgbench":  92.2,
	"indexer":  86.1,
	"SPECjbb":  72.2,
	"SPEC2006": 99.1,
}

// PaperTable4Average is the paper's headline number.
const PaperTable4Average = 83.0

// PaperFig16MinOverhead is the paper's observed minimum power overhead
// ("about 2X ... migration interval once per 100K accesses, granularity
// 4KB").
const PaperFig16MinOverhead = 2.0

// PaperFig10Bits4MB is the Section III-B hardware cost at 4 MB granularity.
const PaperFig10Bits4MB = 9228

// PaperLiveVsN1Improvement is Section IV-A's "live migration ... can
// further hide the migration overhead ... and reduce the average memory
// access latency by 5.2%".
const PaperLiveVsN1Improvement = 5.2
