package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"heteromem/internal/obs"
	"heteromem/internal/sim"
)

// Telemetry is a goroutine-safe sweep-level aggregator layered over the
// per-run single-threaded registries: each simulation still owns its own
// obs.Registry (nothing in the hot path synchronizes), and completed runs
// fold their snapshots into atomic sweep totals. Attach one to
// Params.Telemetry and serve Handler() to watch a parallel sweep live —
// Prometheus text at /metrics, run progress and an ETA at /progress, and
// net/http/pprof under /debug/pprof/.
type Telemetry struct {
	start time.Time

	planned   atomic.Int64
	started   atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
	records   atomic.Uint64
	wallNS    atomic.Int64 // summed wall time of finished runs

	mu     sync.Mutex
	active map[string]int // workload label -> runs currently executing

	// Sweep totals of the per-run metrics snapshots: counters and gauges
	// are summed across runs. Values are *atomic.Int64 keyed by name.
	sums sync.Map

	// collectors are extra /metrics sections appended after the sweep
	// totals (the distributed-sweep coordinator folds its lease and
	// heartbeat metrics in here); workers feeds the /progress per-worker
	// health table. Both are guarded by mu.
	collectors []func(*strings.Builder)
	workers    func() []WorkerHealth
}

// NewTelemetry returns an empty aggregator; the ETA clock starts now.
func NewTelemetry() *Telemetry {
	return &Telemetry{start: time.Now(), active: make(map[string]int)}
}

// addPlanned announces n upcoming runs. Nil-safe.
func (t *Telemetry) addPlanned(n int) {
	if t != nil {
		t.planned.Add(int64(n))
	}
}

// runStarted marks one run in flight. Nil-safe.
func (t *Telemetry) runStarted() {
	if t != nil {
		t.started.Add(1)
	}
}

// runFinished accounts one finished run and its wall time. Nil-safe.
func (t *Telemetry) runFinished(began time.Time, err error) {
	if t == nil {
		return
	}
	t.wallNS.Add(int64(time.Since(began)))
	if err != nil {
		t.failed.Add(1)
	} else {
		t.completed.Add(1)
	}
}

// setActive adjusts the in-flight count of one workload label. Nil-safe.
func (t *Telemetry) setActive(label string, delta int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.active[label] += delta
	if t.active[label] <= 0 {
		delete(t.active, label)
	}
	t.mu.Unlock()
}

// sum returns the named sweep total, creating it at zero.
func (t *Telemetry) sum(name string) *atomic.Int64 {
	if v, ok := t.sums.Load(name); ok {
		return v.(*atomic.Int64)
	}
	v, _ := t.sums.LoadOrStore(name, new(atomic.Int64))
	return v.(*atomic.Int64)
}

// observeRun folds one completed run into the sweep totals. Nil-safe; a
// nil snapshot only counts records.
func (t *Telemetry) observeRun(records uint64, snap *obs.Snapshot) {
	if t == nil {
		return
	}
	t.records.Add(records)
	if snap == nil {
		return
	}
	for name, v := range snap.Counters {
		t.sum("counter." + name).Add(int64(v))
	}
	for name, v := range snap.Gauges {
		t.sum("gauge." + name).Add(v)
	}
}

// AddPlanned announces n upcoming runs to /progress. Exported for the
// distributed sweep coordinator (internal/dsweep), which plans cells
// outside the Params.forEach wrappers. Nil-safe.
func (t *Telemetry) AddPlanned(n int) { t.addPlanned(n) }

// RunStarted marks one remote run (a leased cell) in flight under the
// given label and returns its start time for RunFinished. Nil-safe.
func (t *Telemetry) RunStarted(label string) time.Time {
	t.runStarted()
	t.setActive(label, +1)
	return time.Now()
}

// RunFinished accounts a remote run's outcome and wall time; a lease
// revoked by worker death or missed heartbeats is reported with a non-nil
// err, so /progress counts takeovers under failed. Nil-safe.
func (t *Telemetry) RunFinished(label string, began time.Time, err error) {
	t.setActive(label, -1)
	t.runFinished(began, err)
}

// AddRecords folds remotely simulated records into the sweep totals as
// heartbeats stream in, so /progress advances while a cell is still
// executing on a worker. Nil-safe.
func (t *Telemetry) AddRecords(n uint64) {
	if t != nil {
		t.records.Add(n)
	}
}

// AddCollector appends a metrics section to /metrics: fn runs on every
// scrape, after the built-in sweep totals, and must write complete
// Prometheus text exposition lines. The distributed sweep coordinator
// registers its lease/heartbeat metrics this way so one -listen endpoint
// serves the whole fleet. Nil-safe.
func (t *Telemetry) AddCollector(fn func(*strings.Builder)) {
	if t == nil || fn == nil {
		return
	}
	t.mu.Lock()
	t.collectors = append(t.collectors, fn)
	t.mu.Unlock()
}

// SetWorkerHealth installs the provider for the /progress per-worker
// health table. The provider runs on every /progress request; it should
// return quickly. Nil-safe.
func (t *Telemetry) SetWorkerHealth(fn func() []WorkerHealth) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.workers = fn
	t.mu.Unlock()
}

// ObserveRingDrops folds one run's observability-ring drop counts (event,
// span, and series rings, see internal/obs) into the sweep totals, so a
// sweep that silently overwrote trace data is visible on /metrics as
// hmsim_sim_obs_*_ring_dropped. Nil-safe.
func (t *Telemetry) ObserveRingDrops(events, spans, series uint64) {
	if t == nil || events|spans|series == 0 {
		return
	}
	if events > 0 {
		t.sum("counter.obs.events_ring_dropped").Add(int64(events))
	}
	if spans > 0 {
		t.sum("counter.obs.spans_ring_dropped").Add(int64(spans))
	}
	if series > 0 {
		t.sum("counter.obs.series_ring_dropped").Add(int64(series))
	}
}

// WorkerHealth is one row of the /progress fleet health table: a live
// worker's name, how many cells it holds, how stale its last heartbeat
// is, and its observed throughput.
type WorkerHealth struct {
	Name                 string  `json:"name"`
	Cells                int     `json:"cells"`                  // leases currently held
	LastHeartbeatSeconds float64 `json:"last_heartbeat_seconds"` // age of newest heartbeat; -1 = none yet
	Records              uint64  `json:"records"`                // records completed by this worker
	RecordsPerSec        float64 `json:"records_per_sec"`        // lifetime throughput
}

// Progress is the /progress JSON payload.
type Progress struct {
	Planned        int64    `json:"planned"`
	Started        int64    `json:"started"`
	Completed      int64    `json:"completed"`
	Failed         int64    `json:"failed"`
	Records        uint64   `json:"records"`
	Active         []string `json:"active"`          // workloads currently executing
	ElapsedSeconds float64  `json:"elapsed_seconds"` // since NewTelemetry
	ETASeconds     float64  `json:"eta_seconds"`     // -1 until a run completes

	// Workers is the fleet health table, present only when a distributed
	// sweep coordinator installed a provider via SetWorkerHealth.
	Workers []WorkerHealth `json:"workers,omitempty"`
}

// Progress assembles the current sweep state.
func (t *Telemetry) Progress() Progress {
	p := Progress{
		Planned:        t.planned.Load(),
		Started:        t.started.Load(),
		Completed:      t.completed.Load(),
		Failed:         t.failed.Load(),
		Records:        t.records.Load(),
		ElapsedSeconds: time.Since(t.start).Seconds(),
		ETASeconds:     -1,
	}
	t.mu.Lock()
	for label, n := range t.active {
		for i := 0; i < n; i++ {
			p.Active = append(p.Active, label)
		}
	}
	workers := t.workers
	t.mu.Unlock()
	sort.Strings(p.Active)
	if workers != nil {
		p.Workers = workers()
		sort.Slice(p.Workers, func(i, j int) bool { return p.Workers[i].Name < p.Workers[j].Name })
	}
	// The completion rate observed so far already bakes in the worker
	// parallelism, so remaining/rate is the natural ETA.
	if done := p.Completed + p.Failed; done > 0 && p.ElapsedSeconds > 0 {
		remaining := p.Planned - done
		if remaining < 0 {
			remaining = 0
		}
		p.ETASeconds = float64(remaining) * p.ElapsedSeconds / float64(done)
	}
	return p
}

// promName sanitizes a dotted instrument name into a valid Prometheus
// metric name: [a-zA-Z_:][a-zA-Z0-9_:]*. Every illegal rune collapses to
// an underscore (dots, dashes, slashes, spaces, anything non-ASCII), and
// a leading digit gains an underscore prefix, so arbitrary instrument
// names never produce an unscrapable exposition.
func promName(name string) string {
	if name == "" {
		return "_"
	}
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// PromLabel escapes a label value for Prometheus text exposition
// (backslash, double quote, and newline are the only escapes). Exported
// for collectors registered via AddCollector that emit labeled series —
// worker names come off the wire and cannot be trusted to be tame.
func PromLabel(v string) string {
	return strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(v)
}

// WritePromHistogram renders one obs.HistogramSnapshot as a Prometheus
// histogram: cumulative le-labeled buckets, the +Inf bucket, _sum, and
// _count. name is sanitized with the same rules as every other metric.
// Coordinator-side collectors use this for heartbeat interval, RTT, and
// checkpoint-size distributions.
func WritePromHistogram(w *strings.Builder, name string, s obs.HistogramSnapshot) {
	name = promName(name)
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	var cum uint64
	for i, bound := range s.Bounds {
		cum += s.Counts[i]
		fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, bound, cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, s.Count)
	fmt.Fprintf(w, "%s_sum %d\n", name, s.Sum)
	fmt.Fprintf(w, "%s_count %d\n", name, s.Count)
}

// WriteMetrics renders the sweep totals in Prometheus text exposition
// format (version 0.0.4), deterministically sorted.
func (t *Telemetry) WriteMetrics(w *strings.Builder) {
	p := t.Progress()
	fmt.Fprintf(w, "# TYPE hmsim_runs_planned gauge\nhmsim_runs_planned %d\n", p.Planned)
	fmt.Fprintf(w, "# TYPE hmsim_runs_started counter\nhmsim_runs_started %d\n", p.Started)
	fmt.Fprintf(w, "# TYPE hmsim_runs_completed counter\nhmsim_runs_completed %d\n", p.Completed)
	fmt.Fprintf(w, "# TYPE hmsim_runs_failed counter\nhmsim_runs_failed %d\n", p.Failed)
	fmt.Fprintf(w, "# TYPE hmsim_runs_active gauge\nhmsim_runs_active %d\n", len(p.Active))
	fmt.Fprintf(w, "# TYPE hmsim_records_total counter\nhmsim_records_total %d\n", p.Records)
	fmt.Fprintf(w, "# TYPE hmsim_run_seconds_total counter\nhmsim_run_seconds_total %g\n",
		time.Duration(t.wallNS.Load()).Seconds())

	type kv struct {
		name string
		v    int64
	}
	var rows []kv
	t.sums.Range(func(k, v any) bool {
		rows = append(rows, kv{k.(string), v.(*atomic.Int64).Load()})
		return true
	})
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	for _, r := range rows {
		kind := "counter"
		name := r.name
		if cut, ok := strings.CutPrefix(name, "gauge."); ok {
			// Summed across runs, so exposed as a counter-like total; the
			// prefix keeps the provenance visible.
			name = "hmsim_sim_" + promName(cut) + "_sum"
		} else if cut, ok := strings.CutPrefix(name, "counter."); ok {
			name = "hmsim_sim_" + promName(cut)
		} else {
			name = "hmsim_sim_" + promName(name)
		}
		fmt.Fprintf(w, "# TYPE %s %s\n%s %d\n", name, kind, name, r.v)
	}

	t.mu.Lock()
	collectors := append([]func(*strings.Builder){}, t.collectors...)
	t.mu.Unlock()
	for _, fn := range collectors {
		fn(w)
	}
}

// Handler serves the live sweep telemetry: /metrics (Prometheus text),
// /progress (JSON), and the standard pprof endpoints under /debug/pprof/.
func (t *Telemetry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		var b strings.Builder
		t.WriteMetrics(&b)
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write([]byte(b.String()))
	})
	mux.HandleFunc("/progress", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(t.Progress())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// forEach is forEachIndex plus sweep-telemetry accounting: the jobs are
// announced up front (so /progress shows a stable denominator) and every
// job's wall time and outcome is recorded.
func (p Params) forEach(ctx context.Context, n, workers int, fn func(i int) error) error {
	t := p.Telemetry
	if t == nil {
		return forEachIndex(ctx, n, workers, fn)
	}
	t.addPlanned(n)
	return forEachIndex(ctx, n, workers, func(i int) error {
		began := time.Now()
		t.runStarted()
		err := fn(i)
		t.runFinished(began, err)
		return err
	})
}

// runTrace runs one (workload, configuration) simulation with telemetry
// and manifest support: a cell already recorded in the manifest is served
// from it without simulating; otherwise the workload shows up in /progress
// while it executes, metrics collection is forced on (under telemetry) so
// the run's counters can fold into the sweep totals, and a completed run
// is recorded in the manifest before its result is returned. Without
// either, it is exactly the plain runTrace.
// simulate runs one cell: replayed from the driver's shared packed
// materialization when one is active (and the run is bounded, so the
// materialization is finite), straight from a fresh generator otherwise.
func (p Params) simulate(name string, cfg sim.Config) (sim.Result, error) {
	if p.packed != nil && cfg.MaxRecords > 0 {
		src, err := p.packed.source(name, p.seed(), cfg.MaxRecords)
		if err != nil {
			return sim.Result{}, err
		}
		return sim.Run(src, cfg)
	}
	return runTrace(name, p.seed(), cfg)
}

func (p Params) runTrace(name string, cfg sim.Config) (sim.Result, error) {
	if p.Channels > 1 {
		cfg.Channels = p.Channels
	}
	t := p.Telemetry
	if p.Manifest != nil {
		if res, ok, err := p.Manifest.lookup(name, p.seed(), cfg); err != nil {
			return sim.Result{}, err
		} else if ok {
			t.observeRun(res.Records, res.Metrics)
			t.ObserveRingDrops(res.EventsDropped, res.SpansDropped, res.SeriesDropped)
			return res, nil
		}
	}
	if t != nil {
		cfg.Metrics = true
		t.setActive(name, +1)
		defer t.setActive(name, -1)
	}
	res, err := p.simulate(name, cfg)
	if err == nil {
		if t != nil {
			t.observeRun(res.Records, res.Metrics)
			t.ObserveRingDrops(res.EventsDropped, res.SpansDropped, res.SeriesDropped)
		}
		if p.Manifest != nil {
			if serr := p.Manifest.store(name, p.seed(), cfg, res); serr != nil {
				return res, fmt.Errorf("experiments: recording manifest cell: %w", serr)
			}
		}
	}
	return res, err
}
