package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"heteromem/internal/addr"
	"heteromem/internal/core"
)

// quickParams shrinks every experiment to smoke-test size.
func quickParams() Params {
	return Params{Records: 40000, Warmup: 20000, Seed: 1, Workloads: []string{"pgbench"}}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"table1", "table2", "table3", "table4",
		"fig4", "fig5", "fig10",
		"fig11a", "fig11b", "fig11c",
		"fig12", "fig13", "fig14", "fig15", "fig16",
		"schemes",
	}
	reg := Registry()
	for _, name := range want {
		if _, ok := reg[name]; !ok {
			t.Errorf("experiment %q missing from registry", name)
		}
	}
	if len(Names()) != len(want) {
		t.Errorf("registry has %d entries, want %d", len(Names()), len(want))
	}
}

func TestTables(t *testing.T) {
	for _, name := range []string{"table1", "table2", "table3", "fig10"} {
		var buf bytes.Buffer
		if err := Registry()[name](context.Background(), &buf, Params{}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("%s produced no output", name)
		}
	}
}

func TestFig10MatchesPaperReference(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig10(context.Background(), &buf, Params{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "9228") {
		t.Fatalf("Fig. 10 output missing the paper's 9,228-bit reference point:\n%s", buf.String())
	}
}

func TestFig4Shape(t *testing.T) {
	p := Params{Records: 150000, Seed: 1, Workloads: []string{"EP.C", "FT.C"}}
	points, err := Fig4Data(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2*len(Fig4Capacities) {
		t.Fatalf("%d points", len(points))
	}
	// Miss rate must be non-increasing in capacity for each workload.
	byWL := map[string][]Fig4Point{}
	for _, pt := range points {
		byWL[pt.Workload] = append(byWL[pt.Workload], pt)
	}
	for wl, pts := range byWL {
		for i := 1; i < len(pts); i++ {
			if pts[i].MissRate > pts[i-1].MissRate+0.02 {
				t.Errorf("%s: miss rate rose from %.3f to %.3f with more capacity",
					wl, pts[i-1].MissRate, pts[i].MissRate)
			}
		}
	}
	// EP.C (16 MB footprint) must have a much lower large-cache miss rate
	// than FT.C (5 GB footprint).
	ep := byWL["EP.C"][len(Fig4Capacities)-1].MissRate
	ft := byWL["FT.C"][len(Fig4Capacities)-1].MissRate
	if ep >= ft {
		t.Errorf("EP.C miss rate %.3f >= FT.C %.3f at 1GB LLC", ep, ft)
	}
}

func TestFig5Shape(t *testing.T) {
	p := Params{Records: 150000, Seed: 1, Workloads: []string{"EP.C", "FT.C"}}
	rows, err := Fig5Data(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		_, _, all := r.Improvement()
		if all < 0 {
			t.Errorf("%s: ideal all-on-chip slower than baseline (%.1f%%)", r.Workload, all)
		}
		if r.AllOn.IPC < r.Static.IPC-1e-9 {
			t.Errorf("%s: static beats the ideal", r.Workload)
		}
	}
}

func TestFig11DesignOrdering(t *testing.T) {
	// At 4 MB granularity with frequent swapping, N must not beat Live
	// (the stall cost dominates), reproducing the Fig. 11 headline.
	p := Params{Records: 300000, Warmup: 100000, Seed: 1, Workloads: []string{"SPEC2006"}}
	points, err := Fig11Data(context.Background(), p, 1000)
	if err != nil {
		t.Fatal(err)
	}
	lat := map[core.Design]float64{}
	for _, pt := range points {
		if pt.PageSize == 4*addr.MiB {
			lat[pt.Design] = pt.MeanLatency
		}
	}
	if lat[core.DesignN] < lat[core.DesignLive] {
		t.Errorf("N (%.1f) beat Live (%.1f) at 4MB/1K — stall cost missing",
			lat[core.DesignN], lat[core.DesignLive])
	}
}

func TestTable4Effectiveness(t *testing.T) {
	p := Params{Records: 600000, Warmup: 400000, Seed: 1, Workloads: []string{"SPEC2006"}}
	rows, err := Table4Data(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("%d rows", len(rows))
	}
	r := rows[0]
	if r.BestLatMig > r.LatNoMig {
		t.Errorf("best migrated latency %.1f above static %.1f", r.BestLatMig, r.LatNoMig)
	}
	if r.Effectiveness <= 0 || r.Effectiveness > 100 {
		t.Errorf("effectiveness %.1f out of range", r.Effectiveness)
	}
}

func TestFig15CapacityMonotonic(t *testing.T) {
	p := Params{Records: 300000, Warmup: 150000, Seed: 1, Workloads: []string{"SPEC2006"}}
	points, err := Fig15Data(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(Fig15Capacities) {
		t.Fatalf("%d points", len(points))
	}
	for _, pt := range points {
		if pt.LatMig > pt.LatNoMig {
			t.Errorf("%s@%d: migration made latency worse (%.1f > %.1f)",
				pt.Workload, pt.Capacity, pt.LatMig, pt.LatNoMig)
		}
	}
	// At full experiment scale more capacity helps (EXPERIMENTS.md); at
	// smoke scale only the against-static invariant above is stable.
}

func TestFig16PowerAboveOne(t *testing.T) {
	p := quickParams()
	points, err := Fig16Data(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range points {
		if pt.Normalized <= 0 {
			t.Errorf("%s %s/%d: normalized power %.2f",
				pt.Workload, sizeLabel(pt.PageSize), pt.Interval, pt.Normalized)
		}
	}
	// Frequent swapping must cost at least as much power as infrequent
	// swapping at the same granularity.
	byIv := map[uint64]float64{}
	for _, pt := range points {
		if pt.PageSize == 64*addr.KiB {
			byIv[pt.Interval] = pt.Normalized
		}
	}
	if byIv[1000] < byIv[100000]-0.05 {
		t.Errorf("power at 1K interval (%.2f) below 100K interval (%.2f)", byIv[1000], byIv[100000])
	}
}

func TestRunnersRenderOutput(t *testing.T) {
	p := quickParams()
	for _, name := range []string{"fig12", "fig15", "fig16"} {
		var buf bytes.Buffer
		if err := Registry()[name](context.Background(), &buf, p); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !strings.Contains(buf.String(), "pgbench") {
			t.Fatalf("%s output missing workload row:\n%s", name, buf.String())
		}
	}
}
