package experiments

import (
	"context"
	"fmt"
	"io"

	"heteromem/internal/addr"
	"heteromem/internal/config"
	"heteromem/internal/core"
	"heteromem/internal/sim"
	"heteromem/internal/workload"
)

// Table3 prints the trace-based simulation parameters and workload
// descriptions (Table III).
func Table3(ctx context.Context, w io.Writer, p Params) error {
	g := config.TraceGeometry()
	t := newTable("Parameter", "Value")
	t.AddRow("Total memory capacity", sizeLabel(g.TotalCapacity))
	t.AddRow("On-package memory capacity", sizeLabel(g.OnPackageCapacity))
	t.AddRow("Macro page size", fmt.Sprintf("from %s to %s", sizeLabel(Granularities[0]), sizeLabel(Granularities[len(Granularities)-1])))
	t.AddRow("Sub-block size", sizeLabel(g.SubBlockSize))
	t.AddRow("Off-package DRAM", fmt.Sprintf("%d channels x %d banks, FR-FCFS, open page", g.OffChannels, g.OffBanksPerCh))
	t.AddRow("On-package DRAM", fmt.Sprintf("%d channels x %d banks, FR-FCFS, open page", g.OnChannels, g.OnBanksPerCh))
	fmt.Fprintln(w, "Table III: simulation parameters")
	if _, err := io.WriteString(w, t.String()); err != nil {
		return err
	}
	wt := newTable("Workload", "Footprint", "Description")
	for _, name := range workload.Names() {
		spec, err := workload.MemorySpec(name)
		if err != nil {
			return err
		}
		wt.AddRow(name, sizeLabel(spec.Footprint()), spec.Description)
	}
	fmt.Fprintln(w, "\nTable III (cont.): workload / trace descriptions")
	_, err := io.WriteString(w, wt.String())
	return err
}

// Fig10 prints the pure-hardware management cost in bits as a function of
// the migration granularity (Fig. 10), for 1 GB of on-package memory.
func Fig10(ctx context.Context, w io.Writer, p Params) error {
	t := newTable("Macro page size", "Hardware overhead (bits)")
	for _, size := range []uint64{4 * addr.KiB, 16 * addr.KiB, 64 * addr.KiB, 256 * addr.KiB, 1 * addr.MiB, 4 * addr.MiB} {
		bits := core.HardwareBits(1*addr.GiB, size, 4*addr.KiB, addr.Bits)
		t.AddRow(sizeLabel(size), fmt.Sprintf("%d", bits))
	}
	fmt.Fprintln(w, "Fig. 10: hardware overhead to manage 1GB on-package memory")
	fmt.Fprintln(w, "(paper's reference point: 9,228 bits at 4MB granularity)")
	_, err := io.WriteString(w, t.String())
	return err
}

// Fig11Point is one (workload, granularity, design) latency sample.
type Fig11Point struct {
	Workload    string
	PageSize    uint64
	Design      core.Design
	Interval    uint64
	MeanLatency float64 // DRAM access latency, cycles
	OnShare     float64
	Swaps       uint64
}

// Fig11Data runs the design comparison of Fig. 11 for one swap interval:
// N vs N-1 vs Live Migration across migration granularities.
func Fig11Data(ctx context.Context, p Params, interval uint64) ([]Fig11Point, error) {
	p.packed = newPackedTraces() // one packed trace per workload, replayed by every cell
	const defRecords = 1_500_000
	records := p.records(defRecords)
	warm := p.warmup(records)
	type job struct {
		name   string
		page   uint64
		design core.Design
	}
	var jobs []job
	for _, name := range p.workloads(workload.Names()) {
		for _, page := range Granularities {
			for _, design := range designList {
				jobs = append(jobs, job{name, page, design})
			}
		}
	}
	out := make([]Fig11Point, len(jobs))
	err := p.forEach(ctx, len(jobs), p.Parallelism, func(i int) error {
		j := jobs[i]
		mig := &core.Options{Design: j.design, SwapInterval: interval}
		res, err := p.runTrace(j.name, traceConfig(j.page, mig, records, warm))
		if err != nil {
			return fmt.Errorf("fig11 %s/%s/%s: %w", j.name, sizeLabel(j.page), j.design, err)
		}
		out[i] = Fig11Point{
			Workload: j.name, PageSize: j.page, Design: j.design, Interval: interval,
			MeanLatency: res.MeanDRAMLatency,
			OnShare:     res.Report.OnShare,
			Swaps:       res.Report.Migration.SwapsCompleted,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Fig11 renders the average memory access latency of the N, N-1, and Live
// designs across granularities for one swap interval (Fig. 11a/b/c).
func Fig11(ctx context.Context, w io.Writer, p Params, interval uint64) error {
	points, err := Fig11Data(ctx, p, interval)
	if err != nil {
		return err
	}
	t := newTable("Workload", "Granularity", "N", "N-1", "Live")
	byKey := map[string]map[core.Design]float64{}
	var order []string
	for _, pt := range points {
		k := pt.Workload + "\x00" + sizeLabel(pt.PageSize)
		if byKey[k] == nil {
			byKey[k] = map[core.Design]float64{}
			order = append(order, k)
		}
		byKey[k][pt.Design] = pt.MeanLatency
	}
	for _, k := range order {
		m := byKey[k]
		wl, gran := splitKey(k)
		t.AddRow(wl, gran,
			fmt.Sprintf("%.1f", m[core.DesignN]),
			fmt.Sprintf("%.1f", m[core.DesignN1]),
			fmt.Sprintf("%.1f", m[core.DesignLive]))
	}
	fmt.Fprintf(w, "Fig. 11 (swap interval = %d accesses): average memory access latency (cycles)\n", interval)
	_, err = io.WriteString(w, t.String())
	return err
}

func splitKey(k string) (string, string) {
	for i := 0; i < len(k); i++ {
		if k[i] == 0 {
			return k[:i], k[i+1:]
		}
	}
	return k, ""
}

// Fig1214Point is one (workload, granularity) live-migration latency
// sample for Figs. 12-14.
type Fig1214Point struct {
	Workload    string
	PageSize    uint64
	MeanLatency float64
	OnShare     float64
}

// Fig1214Data runs live migration across granularities for one interval
// (Fig. 12: 1K, Fig. 13: 10K, Fig. 14: 100K).
func Fig1214Data(ctx context.Context, p Params, interval uint64) ([]Fig1214Point, error) {
	p.packed = newPackedTraces() // one packed trace per workload, replayed by every cell
	const defRecords = 2_000_000
	records := p.records(defRecords)
	warm := p.warmup(records)
	type job struct {
		name string
		page uint64
	}
	var jobs []job
	for _, name := range p.workloads(workload.Names()) {
		for _, page := range Granularities {
			jobs = append(jobs, job{name, page})
		}
	}
	out := make([]Fig1214Point, len(jobs))
	err := p.forEach(ctx, len(jobs), p.Parallelism, func(i int) error {
		j := jobs[i]
		mig := &core.Options{Design: core.DesignLive, SwapInterval: interval}
		res, err := p.runTrace(j.name, traceConfig(j.page, mig, records, warm))
		if err != nil {
			return fmt.Errorf("fig12-14 %s/%s: %w", j.name, sizeLabel(j.page), err)
		}
		out[i] = Fig1214Point{
			Workload: j.name, PageSize: j.page,
			MeanLatency: res.MeanDRAMLatency, OnShare: res.Report.OnShare,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Fig1214 renders one of the granularity/frequency figures.
func Fig1214(ctx context.Context, w io.Writer, p Params, interval uint64) error {
	points, err := Fig1214Data(ctx, p, interval)
	if err != nil {
		return err
	}
	header := []string{"Workload"}
	for _, g := range Granularities {
		header = append(header, sizeLabel(g))
	}
	t := newTable(header...)
	var row []string
	cur := ""
	flush := func() {
		if cur != "" {
			t.AddRow(append([]string{cur}, row...)...)
		}
		row = nil
	}
	for _, pt := range points {
		if pt.Workload != cur {
			flush()
			cur = pt.Workload
		}
		row = append(row, fmt.Sprintf("%.1f", pt.MeanLatency))
	}
	flush()
	figNo := map[uint64]int{1000: 12, 10000: 13, 100000: 14}[interval]
	fmt.Fprintf(w, "Fig. %d: average memory latency, live migration (swap interval = %d accesses)\n", figNo, interval)
	_, err = io.WriteString(w, t.String())
	return err
}

// Table4Row is one workload's effectiveness summary.
type Table4Row struct {
	Workload      string
	CoreLatency   float64
	LatNoMig      float64
	BestLatMig    float64
	BestPage      uint64
	BestInterval  uint64
	Effectiveness float64
}

// Table4Data computes the per-workload effectiveness (Table IV): the static
// baseline vs the best (granularity x interval) live-migration point.
func Table4Data(ctx context.Context, p Params) ([]Table4Row, error) {
	p.packed = newPackedTraces() // one packed trace per workload, replayed by every cell
	const defRecords = 4_000_000
	records := p.records(defRecords)
	warm := p.warmup(records)
	names := p.workloads(workload.Names())

	type job struct {
		wl       int
		page     uint64
		interval uint64 // 0 marks the static baseline run
	}
	var jobs []job
	for wl := range names {
		jobs = append(jobs, job{wl: wl})
		for _, page := range Granularities {
			for _, interval := range []uint64{1000, 10000} {
				jobs = append(jobs, job{wl: wl, page: page, interval: interval})
			}
		}
	}
	results := make([]sim.Result, len(jobs))
	err := p.forEach(ctx, len(jobs), p.Parallelism, func(i int) error {
		j := jobs[i]
		var mig *core.Options
		page := j.page
		if j.interval == 0 {
			page = 64 * addr.KiB // static mapping; granularity is irrelevant
		} else {
			mig = &core.Options{Design: core.DesignLive, SwapInterval: j.interval}
		}
		res, err := p.runTrace(names[j.wl], traceConfig(page, mig, records, warm))
		if err != nil {
			return fmt.Errorf("table4 %s: %w", names[j.wl], err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}

	out := make([]Table4Row, len(names))
	haveBest := make([]bool, len(names))
	for i, j := range jobs {
		res := results[i]
		row := &out[j.wl]
		row.Workload = names[j.wl]
		if j.interval == 0 {
			row.LatNoMig = res.MeanDRAMLatency
			continue
		}
		if !haveBest[j.wl] || res.MeanDRAMLatency < row.BestLatMig {
			haveBest[j.wl] = true
			row.BestLatMig = res.MeanDRAMLatency
			row.CoreLatency = res.Report.MeanCoreLat
			row.BestPage = j.page
			row.BestInterval = j.interval
		}
	}
	for i := range out {
		if out[i].BestLatMig > out[i].LatNoMig || !haveBest[i] {
			// Migration never beat static at this scale; report static.
			out[i].BestLatMig = out[i].LatNoMig
			out[i].BestPage, out[i].BestInterval = 0, 0
		}
		out[i].Effectiveness = sim.Effectiveness(out[i].LatNoMig, out[i].BestLatMig, out[i].CoreLatency)
	}
	return out, nil
}

// Table4 renders the effectiveness table (Table IV).
func Table4(ctx context.Context, w io.Writer, p Params) error {
	rows, err := Table4Data(ctx, p)
	if err != nil {
		return err
	}
	t := newTable("Workload", "DRAM core lat", "Lat w/o migration", "Best lat w/ migration", "Best config", "Effectiveness")
	var sum float64
	for _, r := range rows {
		t.AddRow(r.Workload,
			fmt.Sprintf("%.0f", r.CoreLatency),
			fmt.Sprintf("%.1f", r.LatNoMig),
			fmt.Sprintf("%.1f", r.BestLatMig),
			fmt.Sprintf("%s/%d", sizeLabel(r.BestPage), r.BestInterval),
			fmt.Sprintf("%.1f%%", r.Effectiveness))
		sum += r.Effectiveness
	}
	fmt.Fprintln(w, "Table IV: effectiveness of memory-controller-based data migration")
	if _, err := io.WriteString(w, t.String()); err != nil {
		return err
	}
	if len(rows) > 0 {
		_, err = fmt.Fprintf(w, "Average effectiveness: %.1f%% (paper: 83%%)\n", sum/float64(len(rows)))
	}
	return err
}

// Fig15Point is one (workload, capacity) sensitivity sample.
type Fig15Point struct {
	Workload string
	Capacity uint64
	CoreLat  float64
	LatMig   float64
	LatNoMig float64
}

// Fig15Capacities is the on-package capacity sweep of Fig. 15.
var Fig15Capacities = []uint64{128 * addr.MiB, 256 * addr.MiB, 512 * addr.MiB}

// Fig15Data runs the on-package capacity sensitivity study.
func Fig15Data(ctx context.Context, p Params) ([]Fig15Point, error) {
	p.packed = newPackedTraces() // one packed trace per workload, replayed by every cell
	const defRecords = 2_000_000
	records := p.records(defRecords)
	warm := p.warmup(records)
	const page = 64 * addr.KiB
	type job struct {
		name string
		capa uint64
	}
	var jobs []job
	for _, name := range p.workloads(workload.Names()) {
		for _, capa := range Fig15Capacities {
			jobs = append(jobs, job{name, capa})
		}
	}
	out := make([]Fig15Point, len(jobs))
	err := p.forEach(ctx, len(jobs), p.Parallelism, func(i int) error {
		j := jobs[i]
		base := traceConfig(page, nil, records, warm)
		base.Geometry.OnPackageCapacity = j.capa
		static, err := p.runTrace(j.name, base)
		if err != nil {
			return err
		}
		migCfg := traceConfig(page, &core.Options{Design: core.DesignLive, SwapInterval: 1000}, records, warm)
		migCfg.Geometry.OnPackageCapacity = j.capa
		mig, err := p.runTrace(j.name, migCfg)
		if err != nil {
			return err
		}
		out[i] = Fig15Point{
			Workload: j.name, Capacity: j.capa,
			CoreLat:  mig.Report.MeanCoreLat,
			LatMig:   mig.MeanDRAMLatency,
			LatNoMig: static.MeanDRAMLatency,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Fig15 renders the capacity sensitivity figure.
func Fig15(ctx context.Context, w io.Writer, p Params) error {
	points, err := Fig15Data(ctx, p)
	if err != nil {
		return err
	}
	t := newTable("Workload", "On-pkg size", "DRAM core lat", "Avg lat w/ migration", "Avg lat w/o migration")
	for _, pt := range points {
		t.AddRow(pt.Workload, sizeLabel(pt.Capacity),
			fmt.Sprintf("%.0f", pt.CoreLat),
			fmt.Sprintf("%.1f", pt.LatMig),
			fmt.Sprintf("%.1f", pt.LatNoMig))
	}
	fmt.Fprintln(w, "Fig. 15: average memory access latency under different on-package sizes")
	_, err = io.WriteString(w, t.String())
	return err
}

// Fig16Point is one (workload, page size, interval) power sample.
type Fig16Point struct {
	Workload   string
	PageSize   uint64
	Interval   uint64
	Normalized float64 // total memory power / off-package-only baseline
}

// Fig16Sizes is the migration-granularity sweep of the power study.
var Fig16Sizes = []uint64{4 * addr.KiB, 16 * addr.KiB, 64 * addr.KiB}

// Fig16Data computes the relative memory power of the hybrid system with
// dynamic migration vs an off-package-only system.
func Fig16Data(ctx context.Context, p Params) ([]Fig16Point, error) {
	p.packed = newPackedTraces() // one packed trace per workload, replayed by every cell
	const defRecords = 1_500_000
	records := p.records(defRecords)
	warm := p.warmup(records)
	type job struct {
		name     string
		page     uint64
		interval uint64
	}
	var jobs []job
	for _, name := range p.workloads(workload.Names()) {
		for _, page := range Fig16Sizes {
			for _, interval := range Intervals {
				jobs = append(jobs, job{name, page, interval})
			}
		}
	}
	out := make([]Fig16Point, len(jobs))
	err := p.forEach(ctx, len(jobs), p.Parallelism, func(i int) error {
		j := jobs[i]
		cfg := traceConfig(j.page, &core.Options{Design: core.DesignLive, SwapInterval: j.interval}, records, warm)
		cfg.MeterPower = true
		res, err := p.runTrace(j.name, cfg)
		if err != nil {
			return err
		}
		out[i] = Fig16Point{
			Workload: j.name, PageSize: j.page, Interval: j.interval,
			Normalized: res.NormalizedPower,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Fig16 renders the power comparison.
func Fig16(ctx context.Context, w io.Writer, p Params) error {
	points, err := Fig16Data(ctx, p)
	if err != nil {
		return err
	}
	header := []string{"Workload"}
	for _, size := range Fig16Sizes {
		for _, iv := range Intervals {
			header = append(header, fmt.Sprintf("%s/%dK", sizeLabel(size), iv/1000))
		}
	}
	t := newTable(header...)
	var row []string
	cur := ""
	flush := func() {
		if cur != "" {
			t.AddRow(append([]string{cur}, row...)...)
		}
		row = nil
	}
	for _, pt := range points {
		if pt.Workload != cur {
			flush()
			cur = pt.Workload
		}
		row = append(row, fmt.Sprintf("%.2fx", pt.Normalized))
	}
	flush()
	fmt.Fprintln(w, "Fig. 16: memory power relative to an off-package-DRAM-only system")
	fmt.Fprintln(w, "(columns: macro page size / swap interval)")
	_, err = io.WriteString(w, t.String())
	return err
}
