package experiments

import (
	"context"
	"fmt"
	"io"
	"sync"

	"heteromem/internal/addr"
	"heteromem/internal/cache"
	"heteromem/internal/config"
	"heteromem/internal/cpu"
	"heteromem/internal/trace"
	"heteromem/internal/workload"
)

// Table1 prints the NPB 3.3 memory footprints (Table I), computed from the
// workload specs so the table cannot drift from the generators.
func Table1(ctx context.Context, w io.Writer, p Params) error {
	t := newTable("Workload", "Memory", "Description")
	for _, name := range workload.ProgramNames() {
		spec, err := workload.ProgramSpec(name)
		if err != nil {
			return err
		}
		t.AddRow(name, sizeLabel(spec.Footprint()), spec.Description)
	}
	fmt.Fprintln(w, "Table I: memory footprints of the NPB 3.3 benchmark suite")
	_, err := io.WriteString(w, t.String())
	return err
}

// Table2 prints the baseline configuration (Table II) including the derived
// on/off-package latency build-ups.
func Table2(ctx context.Context, w io.Writer, p Params) error {
	proc := config.Baseline()
	lat := defaultLatencies()
	t := newTable("Parameter", "Value")
	t.AddRow("Number of cores", fmt.Sprint(proc.Cores))
	t.AddRow("Frequency", fmt.Sprintf("%.1fGHz", proc.FrequencyGHz))
	for _, lvl := range config.SRAMHierarchy() {
		scope := "private"
		if lvl.Shared {
			scope = "shared"
		}
		t.AddRow(lvl.Name+" cache", fmt.Sprintf("%s, %d-way, %d-cycle, %s", sizeLabel(lvl.Size), lvl.Ways, lvl.Latency, scope))
	}
	t.AddRow("Memory controller", fmt.Sprintf("%d-cycle for processing", lat.MemCtrlProcessing))
	t.AddRow("Controller-to-core delay", fmt.Sprintf("%d-cycle each way", lat.CtrlToCoreOneWay))
	t.AddRow("Package pin delay", fmt.Sprintf("%d-cycle each way", lat.PackagePinOneWay))
	t.AddRow("PCB wire delay", fmt.Sprintf("%d-cycle round-trip", lat.PCBWireRoundTrip))
	t.AddRow("Interposer pin delay", fmt.Sprintf("%d-cycle each way", lat.InterposerOneWay))
	t.AddRow("Intra-package delay", fmt.Sprintf("%d-cycle round-trip", lat.IntraPackageRT))
	t.AddRow("DRAM core delay", fmt.Sprintf("%d-cycle", lat.DRAMCore))
	t.AddRow("Queuing delay (8-bank off-pkg)", fmt.Sprintf("%d-cycle", lat.OffPkgQueueFixed))
	t.AddRow("L4 cache (on-pkg DRAM)", fmt.Sprintf("1GB, 15-way, hit %d-cycle, miss %d-cycle", lat.L4HitLatency(), lat.L4MissProbe()))
	t.AddRow("On-package memory", fmt.Sprintf("1GB, %d-cycle", lat.OnPackageTotalEstimate()))
	t.AddRow("Off-package memory", fmt.Sprintf("%d-cycle", lat.OffPackageTotalEstimate()))
	fmt.Fprintln(w, "Table II: baseline processor and on-package DRAM options")
	_, err := io.WriteString(w, t.String())
	return err
}

// Fig4Point is one (workload, capacity) LLC miss-rate sample.
type Fig4Point struct {
	Workload string
	Capacity uint64
	MissRate float64
	Accesses uint64
	L3Misses uint64
}

// Fig4Capacities is the LLC capacity sweep of Fig. 4.
var Fig4Capacities = []uint64{
	4 * addr.MiB, 8 * addr.MiB, 16 * addr.MiB, 32 * addr.MiB, 64 * addr.MiB,
	128 * addr.MiB, 256 * addr.MiB, 512 * addr.MiB, 1 * addr.GiB,
}

// Fig4Data computes the Fig. 4 miss-rate curves.
func Fig4Data(ctx context.Context, p Params) ([]Fig4Point, error) {
	const defRecords = 2_000_000
	records := p.records(defRecords)
	names := p.workloads(workload.ProgramNames())
	out := make([]Fig4Point, len(names)*len(Fig4Capacities))
	// A 1 GB LLC model holds ~256 MB of tag state, so cap the concurrent
	// hierarchies regardless of GOMAXPROCS.
	workers := p.Parallelism
	if workers <= 0 || workers > 4 {
		workers = 4
	}
	// Every capacity point replays the identical trace (same workload, same
	// seed), so materialize each workload once into the packed columnar
	// form (~5 bytes/record vs 24 for []trace.Record) and replay it at
	// every point; the decoded stream is bit-identical to regeneration.
	// Jobs walk the capacities largest-first and recycle finished
	// hierarchies through a pool (ResizeL3 reuses the L3 slot arena), so
	// the sweep allocates one arena per worker, sized by the largest
	// points, instead of a fresh hierarchy per (workload, capacity) cell.
	packs := make([]*trace.Packed, len(names))
	for wi, name := range names {
		gen, err := workload.NewProgram(name, p.seed())
		if err != nil {
			return nil, err
		}
		if packs[wi], err = trace.Pack(gen, records); err != nil {
			return nil, err
		}
	}
	var pool struct {
		sync.Mutex
		hs []*cache.Hierarchy
	}
	cores := config.Baseline().Cores
	err := p.forEach(ctx, len(Fig4Capacities), workers, func(j int) error {
		i := len(Fig4Capacities) - 1 - j // descending capacity order
		levels := config.SRAMHierarchy()
		levels[2].Size = Fig4Capacities[i]
		pool.Lock()
		var h *cache.Hierarchy
		if n := len(pool.hs); n > 0 {
			h, pool.hs = pool.hs[n-1], pool.hs[:n-1]
		}
		pool.Unlock()
		if h == nil {
			var err error
			if h, err = cache.NewHierarchy(cores, levels); err != nil {
				return err
			}
		} else if err := h.ResizeL3(levels[2].Size); err != nil {
			return err
		}
		var b trace.Batch
		for wi, name := range names {
			if wi > 0 {
				h.Reset()
			}
			src := trace.NewPackedSource(packs[wi])
			for {
				b.Resize(trace.PackedChunkRecords)
				k, err := src.NextBatch(&b)
				for r := 0; r < k; r++ {
					h.Access(int(b.CPU[r]), b.Addr[r], b.Write[r])
				}
				if err != nil {
					break // io.EOF; packed replay has no other failure mode
				}
			}
			st := h.L3Stats()
			out[wi*len(Fig4Capacities)+i] = Fig4Point{
				Workload: name, Capacity: Fig4Capacities[i],
				MissRate: st.MissRate(), Accesses: st.Accesses, L3Misses: st.Misses,
			}
		}
		pool.Lock()
		pool.hs = append(pool.hs, h)
		pool.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Fig4 renders the LLC miss rate vs capacity curves (Fig. 4).
func Fig4(ctx context.Context, w io.Writer, p Params) error {
	points, err := Fig4Data(ctx, p)
	if err != nil {
		return err
	}
	header := []string{"Workload"}
	for _, c := range Fig4Capacities {
		header = append(header, sizeLabel(c))
	}
	t := newTable(header...)
	row := []string{}
	cur := ""
	flush := func() {
		if cur != "" {
			t.AddRow(append([]string{cur}, row...)...)
		}
		row = row[:0]
	}
	for _, pt := range points {
		if pt.Workload != cur {
			flush()
			cur = pt.Workload
		}
		row = append(row, fmt.Sprintf("%.1f%%", pt.MissRate*100))
	}
	flush()
	fmt.Fprintln(w, "Fig. 4: last-level cache miss rate vs LLC capacity")
	_, err = io.WriteString(w, t.String())
	return err
}

// Fig5Row is one workload's IPC comparison across the paper's four memory
// options, plus this reproduction's extension: an optimistic bound for the
// dynamically migrating heterogeneous memory Section III proposes.
type Fig5Row struct {
	Workload  string
	Baseline  cpu.Result
	L4        cpu.Result
	Static    cpu.Result
	AllOn     cpu.Result
	Migrating cpu.Result
}

// Improvement returns the percentage IPC improvements over baseline for
// (L4, static on-chip, all on-chip).
func (r Fig5Row) Improvement() (l4, static, allOn float64) {
	base := r.Baseline.IPC
	return (r.L4.IPC - base) / base * 100,
		(r.Static.IPC - base) / base * 100,
		(r.AllOn.IPC - base) / base * 100
}

type fig5cfg struct {
	mem cpu.MemoryModel
	dst *cpu.Result
}

// Fig5Data runs the four Section II configurations per workload (plus the
// dynamic-migration extension column). Half of each run warms the caches
// and the L4/migration state, mirroring the paper's warmup phase.
func Fig5Data(ctx context.Context, p Params) ([]Fig5Row, error) {
	const defRecords = 2_000_000
	records := p.records(defRecords)
	warmup := p.warmup(records)
	measured := records - warmup
	lat := defaultLatencies()
	model := cpu.DefaultModel()
	levels := config.SRAMHierarchy()

	var out []Fig5Row
	for _, name := range p.workloads(workload.ProgramNames()) {
		row := Fig5Row{Workload: name}
		l4, err := cpu.NewL4Backed(lat, 1*addr.GiB)
		if err != nil {
			return nil, err
		}
		migModel, err := cpu.NewMigratingModel(lat, 1*addr.GiB, config.SectionIIGeometry().TotalCapacity, 4*addr.MiB, 10000)
		if err != nil {
			return nil, err
		}
		configs := []fig5cfg{
			{cpu.OffOnly{Lat: lat}, &row.Baseline},
			{l4, &row.L4},
			{cpu.StaticSplit{Lat: lat, OnBytes: 1 * addr.GiB}, &row.Static},
			{cpu.AllOn{Lat: lat}, &row.AllOn},
			{migModel, &row.Migrating},
		}
		// All five configurations consume the identical trace, so generate
		// it once and replay the slice (bit-identical to regeneration).
		// Unlike the capacity sweep above, only five replays share the
		// work here, so the packed form's encode+decode cost would exceed
		// what a plain slice replay pays; the slice wins on time and the
		// footprint is one workload's records at a time.
		gen, err := workload.NewProgram(name, p.seed())
		if err != nil {
			return nil, err
		}
		recs, err := trace.Collect(gen, int(records))
		if err != nil {
			return nil, err
		}
		src := trace.NewSliceSource(recs)
		for _, c := range configs {
			src.Reset()
			res, err := cpu.RunWarm(src, measured, warmup, levels, lat, model, c.mem)
			if err != nil {
				return nil, fmt.Errorf("fig5 %s/%s: %w", name, c.mem.Name(), err)
			}
			*c.dst = res
		}
		out = append(out, row)
	}
	return out, nil
}

// Fig5 renders the IPC comparison (Fig. 5): IPC improvement over the
// baseline for the L4-cache, static on-chip memory, and all-on-chip options.
func Fig5(ctx context.Context, w io.Writer, p Params) error {
	rows, err := Fig5Data(ctx, p)
	if err != nil {
		return err
	}
	t := newTable("Workload", "Baseline IPC", "L4 Cache 1GB", "1GB On-Chip Memory", "Dynamic Migration*", "All Memory On-Chip")
	for _, r := range rows {
		l4, st, all := r.Improvement()
		mig := (r.Migrating.IPC - r.Baseline.IPC) / r.Baseline.IPC * 100
		t.AddRow(r.Workload,
			fmt.Sprintf("%.3f", r.Baseline.IPC),
			fmt.Sprintf("%+.1f%%", l4),
			fmt.Sprintf("%+.1f%%", st),
			fmt.Sprintf("%+.1f%%", mig),
			fmt.Sprintf("%+.1f%%", all))
	}
	fmt.Fprintln(w, "Fig. 5: IPC comparison among options for the on-package DRAM")
	fmt.Fprintln(w, "(*extension: Section III's dynamic migration, copy costs not charged —")
	fmt.Fprintln(w, " the paper's claim that dynamic mapping approaches the ideal)")
	_, err = io.WriteString(w, t.String())
	return err
}
