package experiments

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachIndexCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		for _, n := range []int{0, 1, 5, 100} {
			var hits sync.Map
			var count atomic.Int64
			err := forEachIndex(context.Background(), n, workers, func(i int) error {
				if _, dup := hits.LoadOrStore(i, true); dup {
					return fmt.Errorf("index %d visited twice", i)
				}
				count.Add(1)
				return nil
			})
			if err != nil {
				t.Fatalf("workers=%d n=%d: %v", workers, n, err)
			}
			if got := count.Load(); got != int64(n) {
				t.Fatalf("workers=%d n=%d: visited %d indices", workers, n, got)
			}
		}
	}
}

func TestForEachIndexWorkersExceedN(t *testing.T) {
	// More workers than work items must not deadlock, leak, or double-run.
	var count atomic.Int64
	if err := forEachIndex(context.Background(), 3, 100, func(i int) error {
		count.Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if count.Load() != 3 {
		t.Fatalf("ran %d of 3 items", count.Load())
	}
}

func TestForEachIndexErrorPropagation(t *testing.T) {
	sentinel := errors.New("boom")
	var after atomic.Int64
	err := forEachIndex(context.Background(), 1000, 4, func(i int) error {
		if i == 17 {
			return sentinel
		}
		after.Add(1)
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("got %v, want the sentinel error", err)
	}
	// The error must cancel the remaining work: with 4 workers, only a
	// handful of already-claimed indices may still finish.
	if after.Load() >= 1000-1 {
		t.Fatalf("error did not stop the sweep: %d items ran", after.Load())
	}
}

func TestForEachIndexFirstErrorWins(t *testing.T) {
	// Concurrent failures: exactly one error must surface, and it must be
	// one of the injected ones (not a data-race hybrid).
	errA := errors.New("a")
	errB := errors.New("b")
	err := forEachIndex(context.Background(), 100, 8, func(i int) error {
		switch i % 2 {
		case 0:
			return errA
		default:
			return errB
		}
	})
	if !errors.Is(err, errA) && !errors.Is(err, errB) {
		t.Fatalf("got %v, want errA or errB", err)
	}
}

func TestForEachIndexFirstErrorWinsOrdered(t *testing.T) {
	// Sequenced multi-error behavior: errA is recorded strictly before errB
	// is even returned, so forEachIndex must surface errA and drop errB —
	// the first error wins and later ones are discarded, not merged or
	// raced. Under -race this also pins that the firstErr slot is written
	// without a data race.
	errA := errors.New("first failure")
	errB := errors.New("later failure")
	aReturned := make(chan struct{})
	err := forEachIndex(context.Background(), 3, 2, func(i int) error {
		switch i {
		case 0:
			close(aReturned)
			return errA
		case 1:
			<-aReturned
			// errA's worker only has to finish one mutex-guarded store
			// before errB arrives; give it overwhelming margin.
			time.Sleep(300 * time.Millisecond)
			return errB
		default:
			t.Errorf("index %d claimed after two failures", i)
			return nil
		}
	})
	if !errors.Is(err, errA) {
		t.Fatalf("got %v, want the first error %v", err, errA)
	}
	if errors.Is(err, errB) {
		t.Fatalf("later error leaked into the result: %v", err)
	}
}

func TestForEachIndexCancelMidClaim(t *testing.T) {
	// Workers whose current job finishes cleanly after the context is
	// cancelled must stop at their next claim and surface ctx.Err() —
	// not nil, and not any error a pending job might have produced later.
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := forEachIndex(ctx, 10, 2, func(i int) error {
		ran.Add(1)
		cancel()
		<-ctx.Done() // both in-flight jobs finish (successfully) post-cancel
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want ctx.Err() (context.Canceled)", err)
	}
	if n := ran.Load(); n > 2 {
		t.Fatalf("%d jobs ran after a mid-sweep cancel with 2 workers", n)
	}
}

func TestForEachIndexSerialPathError(t *testing.T) {
	sentinel := errors.New("serial")
	var ran int
	err := forEachIndex(context.Background(), 10, 1, func(i int) error {
		ran++
		if i == 3 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("got %v", err)
	}
	if ran != 4 {
		t.Fatalf("serial path ran %d items after the error, want exactly 4", ran)
	}
}

func TestForEachIndexPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: panic did not propagate", workers)
				}
				msg := fmt.Sprint(r)
				if !strings.Contains(msg, "kaboom-42") {
					t.Fatalf("workers=%d: panic value lost: %q", workers, msg)
				}
				if workers > 1 && !strings.Contains(msg, "worker stack") {
					t.Fatalf("workers=%d: worker stack missing from panic: %q", workers, msg)
				}
			}()
			_ = forEachIndex(context.Background(), 50, workers, func(i int) error {
				if i == 10 {
					panic("kaboom-42")
				}
				return nil
			})
		}()
	}
}

func TestForEachIndexPanicCancelsRemainingWork(t *testing.T) {
	var after atomic.Int64
	func() {
		defer func() { _ = recover() }()
		_ = forEachIndex(context.Background(), 10000, 4, func(i int) error {
			if i == 5 {
				panic("stop")
			}
			after.Add(1)
			return nil
		})
	}()
	if after.Load() >= 10000-1 {
		t.Fatalf("panic did not cancel the sweep: %d items ran", after.Load())
	}
}

func TestForEachIndexContextCancel(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int64
		err := forEachIndex(ctx, 10000, workers, func(i int) error {
			if ran.Add(1) == 5 {
				cancel()
			}
			return nil
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: want context.Canceled, got %v", workers, err)
		}
		if n := ran.Load(); n >= 10000 {
			t.Fatalf("workers=%d: cancellation did not stop the sweep (%d ran)", workers, n)
		}
	}
}

func TestForEachIndexPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	err := forEachIndex(ctx, 100, 4, func(i int) error { ran.Add(1); return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("pre-cancelled context still ran %d jobs", ran.Load())
	}
}
