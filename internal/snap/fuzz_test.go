package snap

import (
	"errors"
	"testing"
)

// FuzzSnapshotRestore hammers the decoder with arbitrary bytes: any input
// must either decode cleanly or be rejected with ErrCorrupt / *VersionError
// — never panic, never hang, never accept structurally damaged framing.
// Valid inputs are additionally re-walked section by section to exercise
// the payload readers.
func FuzzSnapshotRestore(f *testing.F) {
	// Seed corpus: a well-formed snapshot plus near-miss mutants.
	good := func() []byte {
		e := NewEncoder()
		e.Section("meta")
		e.U64(0x1234)
		e.String("cfg")
		e.Section("state")
		e.Count(4)
		for i := 0; i < 4; i++ {
			e.U64(uint64(i))
			e.Bool(i%2 == 0)
		}
		b, err := e.Finish()
		if err != nil {
			f.Fatal(err)
		}
		return b
	}()
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte("HMSN"))
	trunc := append([]byte(nil), good[:len(good)-3]...)
	f.Add(trunc)
	flipped := append([]byte(nil), good...)
	flipped[5] ^= 0x01 // version byte
	f.Add(flipped)
	bitrot := append([]byte(nil), good...)
	bitrot[len(bitrot)/2] ^= 0x40
	f.Add(bitrot)

	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := NewDecoder(data)
		if err != nil {
			var ve *VersionError
			if !errors.Is(err, ErrCorrupt) && !errors.As(err, &ve) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		// Structurally valid: drain every section through the typed
		// readers; latched errors are fine, panics are not.
		for _, name := range d.Sections() {
			if err := d.Section(name); err != nil {
				return
			}
			for d.Remaining() > 0 && d.Err() == nil {
				switch d.Remaining() % 5 {
				case 0:
					d.U64()
				case 1:
					d.U8()
				case 2:
					d.Bytes()
				case 3:
					d.Bool()
				case 4:
					d.Count(1)
				}
			}
		}
		if err := d.Err(); err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("untyped read error: %v", err)
		}
	})
}
