// Package snap implements the simulator's checkpoint container: a
// versioned, CRC-checksummed, length-prefixed binary format plus the
// Snapshotter interface every stateful component implements.
//
// # Container layout
//
// A snapshot is a flat byte stream:
//
//	magic   "HMSN"                      4 bytes
//	version uint16 LE                   format version (Version)
//	flags   uint16 LE                   reserved, must be zero
//	section*                            one per named component
//	trailer nameLen=0 byte, then
//	        crc32 uint32 LE             IEEE CRC of every preceding byte
//
// Each section is:
//
//	nameLen uint8  (>= 1)
//	name    nameLen bytes
//	payLen  uint32 LE
//	payload payLen bytes
//	crc     uint32 LE                   IEEE CRC of the payload
//
// Section payloads are sequences of little-endian primitives written by
// the component that owns the section; the container does not interpret
// them. Decoding validates the magic, version, every section CRC, and the
// whole-file CRC before any payload is handed to a component, so a
// truncated or bit-flipped snapshot is rejected with ErrCorrupt (or a
// *VersionError for a version skew) rather than mis-restored.
//
// # Error latching
//
// Both Encoder and Decoder latch their first error: after it, every
// primitive call is a cheap no-op (reads return zero values) and the
// error surfaces once from Finish/Err. Components can therefore write and
// read their state linearly without per-call error plumbing.
package snap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// Version is the current snapshot format version. Snapshots recording any
// other version are rejected with a *VersionError.
const Version uint16 = 1

var magic = [4]byte{'H', 'M', 'S', 'N'}

// ErrCorrupt is the sentinel wrapped by every structural decoding error:
// bad magic, truncation, CRC mismatch, malformed section framing, or a
// component reading past its payload. Match with errors.Is.
var ErrCorrupt = errors.New("snap: corrupt snapshot")

// VersionError reports a snapshot written by a different format version.
type VersionError struct {
	Got, Want uint16
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("snap: snapshot format version %d, want %d", e.Got, e.Want)
}

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// Snapshotter is implemented by every component whose state participates
// in a checkpoint. SnapshotTo writes the state into the encoder's current
// section (errors latch inside the encoder); RestoreFrom reads it back and
// reports the first inconsistency.
type Snapshotter interface {
	SnapshotTo(e *Encoder)
	RestoreFrom(d *Decoder) error
}

// Encoder builds a snapshot. Open a section with Section, write primitives,
// then call Finish for the framed bytes. The zero value is not usable; use
// NewEncoder.
type Encoder struct {
	out     []byte
	name    string
	payload []byte
	open    bool
	err     error
}

// NewEncoder returns an encoder with the container header written.
func NewEncoder() *Encoder {
	e := &Encoder{out: make([]byte, 0, 4096)}
	e.out = append(e.out, magic[:]...)
	e.out = binary.LittleEndian.AppendUint16(e.out, Version)
	e.out = binary.LittleEndian.AppendUint16(e.out, 0) // flags
	return e
}

// Fail latches err (the first one wins). Subsequent writes are no-ops and
// Finish returns the error.
func (e *Encoder) Fail(err error) {
	if e.err == nil && err != nil {
		e.err = err
	}
}

// Err returns the latched error, if any.
func (e *Encoder) Err() error { return e.err }

func (e *Encoder) flushSection() {
	if !e.open {
		return
	}
	e.open = false
	if e.err != nil {
		return
	}
	if len(e.payload) > math.MaxUint32 {
		e.Fail(fmt.Errorf("snap: section %q payload exceeds 4 GiB", e.name))
		return
	}
	e.out = append(e.out, byte(len(e.name)))
	e.out = append(e.out, e.name...)
	e.out = binary.LittleEndian.AppendUint32(e.out, uint32(len(e.payload)))
	e.out = append(e.out, e.payload...)
	e.out = binary.LittleEndian.AppendUint32(e.out, crc32.ChecksumIEEE(e.payload))
	e.payload = e.payload[:0]
}

// Section closes any open section and opens a new one named name. Names
// must be 1..255 bytes.
func (e *Encoder) Section(name string) {
	e.flushSection()
	if e.err != nil {
		return
	}
	if len(name) == 0 || len(name) > 255 {
		e.Fail(fmt.Errorf("snap: invalid section name %q", name))
		return
	}
	e.name = name
	e.open = true
}

// Finish closes the last section, appends the trailer and whole-file CRC,
// and returns the snapshot bytes, or the first latched error.
func (e *Encoder) Finish() ([]byte, error) {
	e.flushSection()
	if e.err != nil {
		return nil, e.err
	}
	e.out = append(e.out, 0) // trailer: nameLen 0
	e.out = binary.LittleEndian.AppendUint32(e.out, crc32.ChecksumIEEE(e.out))
	return e.out, nil
}

func (e *Encoder) checkOpen() bool {
	if e.err != nil {
		return false
	}
	if !e.open {
		e.Fail(errors.New("snap: primitive written outside a section"))
		return false
	}
	return true
}

// U64 writes a little-endian uint64.
func (e *Encoder) U64(v uint64) {
	if e.checkOpen() {
		e.payload = binary.LittleEndian.AppendUint64(e.payload, v)
	}
}

// I64 writes an int64 (two's complement, little-endian).
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// U32 writes a little-endian uint32.
func (e *Encoder) U32(v uint32) {
	if e.checkOpen() {
		e.payload = binary.LittleEndian.AppendUint32(e.payload, v)
	}
}

// U16 writes a little-endian uint16.
func (e *Encoder) U16(v uint16) {
	if e.checkOpen() {
		e.payload = binary.LittleEndian.AppendUint16(e.payload, v)
	}
}

// U8 writes one byte.
func (e *Encoder) U8(v uint8) {
	if e.checkOpen() {
		e.payload = append(e.payload, v)
	}
}

// Bool writes one byte, 0 or 1.
func (e *Encoder) Bool(v bool) {
	b := uint8(0)
	if v {
		b = 1
	}
	e.U8(b)
}

// F64 writes a float64 as its IEEE-754 bit pattern.
func (e *Encoder) F64(v float64) { e.U64(math.Float64bits(v)) }

// Bytes writes a u32 length prefix followed by the raw bytes.
func (e *Encoder) Bytes(b []byte) {
	if !e.checkOpen() {
		return
	}
	if len(b) > math.MaxUint32 {
		e.Fail(errors.New("snap: byte slice exceeds 4 GiB"))
		return
	}
	e.payload = binary.LittleEndian.AppendUint32(e.payload, uint32(len(b)))
	e.payload = append(e.payload, b...)
}

// String writes a length-prefixed string.
func (e *Encoder) String(s string) { e.Bytes([]byte(s)) }

// Count writes a u32 element count; the decoder's Count validates it
// against the remaining payload.
func (e *Encoder) Count(n int) {
	if n < 0 || n > math.MaxUint32 {
		e.Fail(fmt.Errorf("snap: count %d out of range", n))
		return
	}
	e.U32(uint32(n))
}

// Decoder reads a snapshot previously produced by an Encoder. NewDecoder
// fully validates the container framing and checksums; Section then
// positions the reader at a named payload.
type Decoder struct {
	sections map[string][]byte
	order    []string
	cur      []byte
	curName  string
	err      error
}

// NewDecoder validates the container (magic, version, framing, every
// section CRC, whole-file CRC) and indexes the sections. It returns
// ErrCorrupt-wrapped errors for structural damage and *VersionError for a
// format version skew.
func NewDecoder(data []byte) (*Decoder, error) {
	const header = 4 + 2 + 2
	const trailer = 1 + 4
	if len(data) < header+trailer {
		return nil, corruptf("short snapshot (%d bytes)", len(data))
	}
	if [4]byte(data[:4]) != magic {
		return nil, corruptf("bad magic %q", data[:4])
	}
	// Whole-file CRC first: it covers everything up to and including the
	// trailer's zero byte, so any damage (including to a section CRC
	// field itself) is caught before deeper parsing.
	fileCRC := binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(data[:len(data)-4]) != fileCRC {
		return nil, corruptf("file checksum mismatch")
	}
	if v := binary.LittleEndian.Uint16(data[4:6]); v != Version {
		return nil, &VersionError{Got: v, Want: Version}
	}
	if f := binary.LittleEndian.Uint16(data[6:8]); f != 0 {
		return nil, corruptf("unknown flags %#x", f)
	}
	d := &Decoder{sections: make(map[string][]byte)}
	body := data[header : len(data)-4]
	for {
		if len(body) < 1 {
			return nil, corruptf("missing trailer")
		}
		nameLen := int(body[0])
		body = body[1:]
		if nameLen == 0 {
			if len(body) != 0 {
				return nil, corruptf("%d trailing bytes after trailer", len(body))
			}
			return d, nil
		}
		if len(body) < nameLen+4 {
			return nil, corruptf("truncated section header")
		}
		name := string(body[:nameLen])
		body = body[nameLen:]
		payLen := int(binary.LittleEndian.Uint32(body[:4]))
		body = body[4:]
		if len(body) < payLen+4 {
			return nil, corruptf("section %q truncated", name)
		}
		payload := body[:payLen]
		body = body[payLen:]
		crc := binary.LittleEndian.Uint32(body[:4])
		body = body[4:]
		if crc32.ChecksumIEEE(payload) != crc {
			return nil, corruptf("section %q checksum mismatch", name)
		}
		if _, dup := d.sections[name]; dup {
			return nil, corruptf("duplicate section %q", name)
		}
		d.sections[name] = payload
		d.order = append(d.order, name)
	}
}

// Sections returns the section names in file order.
func (d *Decoder) Sections() []string { return append([]string(nil), d.order...) }

// SectionLen returns the payload length of a named section and whether it
// exists; a zero-length section reports (0, true).
func (d *Decoder) SectionLen(name string) (int, bool) {
	p, ok := d.sections[name]
	return len(p), ok
}

// Section positions the decoder at the start of the named payload. A
// missing section is an ErrCorrupt-wrapped error (it also latches).
func (d *Decoder) Section(name string) error {
	if d.err != nil {
		return d.err
	}
	p, ok := d.sections[name]
	if !ok {
		d.err = corruptf("missing section %q", name)
		return d.err
	}
	d.cur = p
	d.curName = name
	return nil
}

// Err returns the first error latched by any read.
func (d *Decoder) Err() error { return d.err }

// Invalid latches a semantic validation failure found by a component while
// restoring (a count that disagrees with the rebuilt structure, an enum out
// of range, ...). It wraps ErrCorrupt like the structural errors do.
func (d *Decoder) Invalid(format string, args ...any) {
	d.fail(format, args...)
}

// Remaining reports how many unread bytes the current section holds.
func (d *Decoder) Remaining() int { return len(d.cur) }

func (d *Decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = corruptf("section %q: %s", d.curName, fmt.Sprintf(format, args...))
	}
}

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if len(d.cur) < n {
		d.fail("read past end of payload")
		return nil
	}
	b := d.cur[:n]
	d.cur = d.cur[n:]
	return b
}

// U64 reads a little-endian uint64 (zero after a latched error).
func (d *Decoder) U64() uint64 {
	if b := d.take(8); b != nil {
		return binary.LittleEndian.Uint64(b)
	}
	return 0
}

// I64 reads an int64.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// U32 reads a little-endian uint32.
func (d *Decoder) U32() uint32 {
	if b := d.take(4); b != nil {
		return binary.LittleEndian.Uint32(b)
	}
	return 0
}

// U16 reads a little-endian uint16.
func (d *Decoder) U16() uint16 {
	if b := d.take(2); b != nil {
		return binary.LittleEndian.Uint16(b)
	}
	return 0
}

// U8 reads one byte.
func (d *Decoder) U8() uint8 {
	if b := d.take(1); b != nil {
		return b[0]
	}
	return 0
}

// Bool reads one byte and requires it to be 0 or 1.
func (d *Decoder) Bool() bool {
	switch d.U8() {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail("invalid bool byte")
		return false
	}
}

// F64 reads a float64 bit pattern.
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

// Bytes reads a length-prefixed byte slice (a copy).
func (d *Decoder) Bytes() []byte {
	n := int(d.U32())
	if d.err != nil {
		return nil
	}
	if n > len(d.cur) {
		d.fail("byte slice length %d exceeds payload", n)
		return nil
	}
	return append([]byte(nil), d.take(n)...)
}

// String reads a length-prefixed string.
func (d *Decoder) String() string { return string(d.Bytes()) }

// Count reads an element count written by Encoder.Count and bounds it:
// with each element at least itemMin bytes, the count may not exceed the
// remaining payload. This keeps hostile counts from driving huge
// allocations before the per-element reads would fail anyway.
func (d *Decoder) Count(itemMin int) int {
	n := int(d.U32())
	if d.err != nil {
		return 0
	}
	if itemMin < 1 {
		itemMin = 1
	}
	if n > len(d.cur)/itemMin {
		d.fail("count %d exceeds remaining payload", n)
		return 0
	}
	return n
}
