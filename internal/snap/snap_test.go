package snap

import (
	"encoding/binary"
	"errors"
	"testing"
)

func buildSample(t *testing.T) []byte {
	t.Helper()
	e := NewEncoder()
	e.Section("alpha")
	e.U64(0xdeadbeefcafef00d)
	e.I64(-42)
	e.F64(3.5)
	e.Bool(true)
	e.Bool(false)
	e.U32(7)
	e.U16(300)
	e.U8(9)
	e.String("hello")
	e.Section("beta")
	e.Count(3)
	for i := 0; i < 3; i++ {
		e.U64(uint64(i * 11))
	}
	e.Section("empty")
	b, err := e.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestRoundTrip(t *testing.T) {
	b := buildSample(t)
	d, err := NewDecoder(b)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Sections(); len(got) != 3 || got[0] != "alpha" || got[1] != "beta" || got[2] != "empty" {
		t.Fatalf("sections = %v", got)
	}
	if err := d.Section("alpha"); err != nil {
		t.Fatal(err)
	}
	if v := d.U64(); v != 0xdeadbeefcafef00d {
		t.Fatalf("U64 = %#x", v)
	}
	if v := d.I64(); v != -42 {
		t.Fatalf("I64 = %d", v)
	}
	if v := d.F64(); v != 3.5 {
		t.Fatalf("F64 = %v", v)
	}
	if !d.Bool() || d.Bool() {
		t.Fatal("Bool round-trip failed")
	}
	if d.U32() != 7 || d.U16() != 300 || d.U8() != 9 {
		t.Fatal("small ints round-trip failed")
	}
	if s := d.String(); s != "hello" {
		t.Fatalf("String = %q", s)
	}
	if d.Remaining() != 0 {
		t.Fatalf("alpha has %d leftover bytes", d.Remaining())
	}
	if err := d.Section("beta"); err != nil {
		t.Fatal(err)
	}
	n := d.Count(8)
	if n != 3 {
		t.Fatalf("Count = %d", n)
	}
	for i := 0; i < n; i++ {
		if v := d.U64(); v != uint64(i*11) {
			t.Fatalf("beta[%d] = %d", i, v)
		}
	}
	if ln, ok := d.SectionLen("empty"); !ok || ln != 0 {
		t.Fatalf("empty section: len=%d ok=%v", ln, ok)
	}
	if d.Err() != nil {
		t.Fatal(d.Err())
	}
}

func TestReadPastEndLatches(t *testing.T) {
	b := buildSample(t)
	d, err := NewDecoder(b)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Section("empty"); err != nil {
		t.Fatal(err)
	}
	if v := d.U64(); v != 0 {
		t.Fatalf("read past end returned %d, want 0", v)
	}
	if !errors.Is(d.Err(), ErrCorrupt) {
		t.Fatalf("Err() = %v, want ErrCorrupt", d.Err())
	}
	// Latched: further reads stay zero, error unchanged.
	first := d.Err()
	if d.U32() != 0 || d.Err() != first {
		t.Fatal("error did not latch")
	}
}

func TestMissingSection(t *testing.T) {
	d, err := NewDecoder(buildSample(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Section("nope"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("missing section: %v", err)
	}
}

func TestVersionSkewRejected(t *testing.T) {
	b := buildSample(t)
	// Bump the version field and re-seal the file CRC so only the version
	// check can object.
	binary.LittleEndian.PutUint16(b[4:6], Version+1)
	reseal(b)
	_, err := NewDecoder(b)
	var ve *VersionError
	if !errors.As(err, &ve) {
		t.Fatalf("got %v, want *VersionError", err)
	}
	if ve.Got != Version+1 || ve.Want != Version {
		t.Fatalf("VersionError = %+v", ve)
	}
}

// reseal rewrites the trailing whole-file CRC after a deliberate mutation.
func reseal(b []byte) {
	binary.LittleEndian.PutUint32(b[len(b)-4:], crcIEEE(b[:len(b)-4]))
}

func crcIEEE(b []byte) uint32 {
	// Small local helper to keep the test self-contained.
	const poly = 0xedb88320
	crc := ^uint32(0)
	for _, c := range b {
		crc ^= uint32(c)
		for i := 0; i < 8; i++ {
			if crc&1 != 0 {
				crc = crc>>1 ^ poly
			} else {
				crc >>= 1
			}
		}
	}
	return ^crc
}

func TestCorruptionRejected(t *testing.T) {
	orig := buildSample(t)
	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"truncated", func(b []byte) []byte { return b[:len(b)/2] }},
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xff; return b }},
		{"payload bit flip", func(b []byte) []byte { b[12] ^= 0x01; return b }},
		// Resealing the file CRC leaves only the per-section CRC to
		// catch a payload flip (first payload byte of "alpha" is at
		// offset 18: 8-byte header + nameLen + 5-byte name + payLen).
		{"payload flip, file crc resealed", func(b []byte) []byte { b[18] ^= 0x01; reseal(b); return b }},
		{"file crc flip", func(b []byte) []byte { b[len(b)-1] ^= 0x80; return b }},
		{"empty", func(b []byte) []byte { return nil }},
	}
	for _, tc := range cases {
		b := append([]byte(nil), orig...)
		if _, err := NewDecoder(tc.mutate(b)); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: got %v, want ErrCorrupt", tc.name, err)
		}
	}
}

func TestDuplicateSectionRejected(t *testing.T) {
	e := NewEncoder()
	e.Section("x")
	e.U8(1)
	e.Section("x")
	e.U8(2)
	b, err := e.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewDecoder(b); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("duplicate section: %v", err)
	}
}

func TestCountBoundsAllocation(t *testing.T) {
	e := NewEncoder()
	e.Section("s")
	e.U32(1 << 30) // hostile count with no elements behind it
	b, err := e.Finish()
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDecoder(b)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Section("s"); err != nil {
		t.Fatal(err)
	}
	if n := d.Count(8); n != 0 {
		t.Fatalf("hostile count returned %d", n)
	}
	if !errors.Is(d.Err(), ErrCorrupt) {
		t.Fatalf("Err() = %v", d.Err())
	}
}

func TestEncoderErrorLatches(t *testing.T) {
	e := NewEncoder()
	e.U64(1) // primitive outside any section
	e.Section("late")
	e.U64(2)
	if _, err := e.Finish(); err == nil {
		t.Fatal("Finish succeeded after misuse")
	}
	e2 := NewEncoder()
	e2.Section("ok")
	sentinel := errors.New("component failed")
	e2.Fail(sentinel)
	if _, err := e2.Finish(); !errors.Is(err, sentinel) {
		t.Fatalf("Finish = %v, want sentinel", err)
	}
}

func TestBoolRejectsJunkByte(t *testing.T) {
	e := NewEncoder()
	e.Section("s")
	e.U8(2)
	b, err := e.Finish()
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDecoder(b)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Section("s"); err != nil {
		t.Fatal(err)
	}
	_ = d.Bool()
	if !errors.Is(d.Err(), ErrCorrupt) {
		t.Fatalf("Bool(2): %v", d.Err())
	}
}
