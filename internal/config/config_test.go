package config

import (
	"strings"
	"testing"

	"heteromem/internal/addr"
)

func TestTableIILatencyBuildUp(t *testing.T) {
	l := TableIILatencies()
	// Off-package fixed path: controller 5 + 2x4 core link + 2x5 pins + 11
	// PCB round trip = 34 cycles.
	if got := l.OffPackageFixed(); got != 34 {
		t.Fatalf("off-package fixed path = %d, want 34", got)
	}
	// On-package fixed path: controller 5 + 2x4 + 2x3 interposer + 1 = 20.
	if got := l.OnPackageFixed(); got != 20 {
		t.Fatalf("on-package fixed path = %d, want 20", got)
	}
	if l.OffPackageTotalEstimate() <= l.OnPackageTotalEstimate() {
		t.Fatal("off-package estimate must exceed on-package")
	}
	// The paper: an L4 hit costs 2x the on-package access (tags then data).
	if l.L4HitLatency() != 2*l.OnPackageTotalEstimate() {
		t.Fatal("L4 hit must be exactly 2x the on-package access")
	}
	if l.L4MissProbe() != l.OnPackageTotalEstimate() {
		t.Fatal("L4 miss probe must equal one on-package access")
	}
}

func TestTraceGeometryValid(t *testing.T) {
	g := TraceGeometry()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.TotalCapacity != 4*addr.GiB || g.OnPackageCapacity != 512*addr.MiB {
		t.Fatalf("Table III geometry wrong: %+v", g)
	}
	// 512 MB / 4 MB = 128 slots.
	if g.OnPackageSlots() != 128 {
		t.Fatalf("slots = %d, want 128", g.OnPackageSlots())
	}
	if g.TotalPages() != 1024 {
		t.Fatalf("total pages = %d, want 1024", g.TotalPages())
	}
}

func TestSectionIIGeometryValid(t *testing.T) {
	g := SectionIIGeometry()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.OnPackageCapacity != 1*addr.GiB {
		t.Fatalf("Section II on-package = %d, want 1GB", g.OnPackageCapacity)
	}
}

func TestGeometryValidation(t *testing.T) {
	base := TraceGeometry()
	mutations := []struct {
		name string
		mut  func(*MemoryGeometry)
	}{
		{"zero total", func(g *MemoryGeometry) { g.TotalCapacity = 0 }},
		{"on >= total", func(g *MemoryGeometry) { g.OnPackageCapacity = g.TotalCapacity }},
		{"page not pow2", func(g *MemoryGeometry) { g.MacroPageSize = 3 * addr.MiB }},
		{"page > on-pkg alignment", func(g *MemoryGeometry) { g.OnPackageCapacity = 513 * addr.MiB; g.MacroPageSize = 4 * addr.MiB }},
		{"sub > page", func(g *MemoryGeometry) { g.MacroPageSize = 4 * addr.KiB; g.SubBlockSize = 16 * addr.KiB }},
		{"zero channels", func(g *MemoryGeometry) { g.OffChannels = 0 }},
		{"bad burst", func(g *MemoryGeometry) { g.BurstBytes = 48 }},
		{"row not multiple of burst", func(g *MemoryGeometry) { g.RowSize = 100 }},
	}
	for _, m := range mutations {
		g := base
		m.mut(&g)
		if err := g.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid geometry", m.name)
		}
	}
}

func TestSRAMHierarchyShape(t *testing.T) {
	levels := SRAMHierarchy()
	if len(levels) != 3 {
		t.Fatalf("want 3 SRAM levels, got %d", len(levels))
	}
	names := []string{"L1D", "L2", "L3"}
	for i, lvl := range levels {
		if !strings.HasPrefix(lvl.Name, names[i]) {
			t.Errorf("level %d name %q, want prefix %q", i, lvl.Name, names[i])
		}
		if i > 0 && lvl.Size <= levels[i-1].Size {
			t.Errorf("level %s not larger than %s", lvl.Name, levels[i-1].Name)
		}
		if i > 0 && lvl.Latency <= levels[i-1].Latency {
			t.Errorf("level %s not slower than %s", lvl.Name, levels[i-1].Name)
		}
	}
	if !levels[2].Shared || levels[0].Shared {
		t.Error("L3 must be shared, L1 private")
	}
}

func TestOnPackageTimingFasterBus(t *testing.T) {
	off, on := OffPackageTiming(), OnPackageTiming()
	if on.TBurst >= off.TBurst {
		t.Fatal("on-package burst must be faster (wide interposer bus)")
	}
	// Same commodity-derived DRAM core.
	if on.TRCD != off.TRCD || on.TCL != off.TCL {
		t.Fatal("on-package core timings should match the commodity die")
	}
}

func TestPaperPowerConstants(t *testing.T) {
	p := PaperPower()
	if p.CorePJPerBit != 5 || p.OnWirePJPerBit != 1.66 || p.OffWirePJPerBit != 13 {
		t.Fatalf("power constants %+v do not match Section IV-D", p)
	}
}
