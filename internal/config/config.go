// Package config holds the simulation configuration of the paper's Table II
// (baseline processor and memory hierarchy) and Table III (trace-based
// simulation parameters), plus the derived latency build-ups for on- and
// off-package accesses.
//
// OCR reconstruction: the paper text available to us lost trailing zeros in
// several numeric fields. The values below are reconstructed from internal
// consistency constraints the paper states explicitly: the L4 DRAM-cache hit
// costs 2x an on-package DRAM access (tag then data), the off-package
// latency is the sum of core + queuing + controller + package pin + PCB
// components, and the off-package 8-bank queuing delay dwarfs the 128-bank
// on-package one. See DESIGN.md section 2.
package config

import (
	"fmt"

	"heteromem/internal/addr"
)

// Processor is the baseline CPU of Table II.
type Processor struct {
	Cores        int
	FrequencyGHz float64
}

// CacheLevel describes one SRAM cache level of Table II.
type CacheLevel struct {
	Name     string
	Size     uint64
	Ways     int
	Latency  int64 // access latency, CPU cycles
	LineSize uint64
	Shared   bool
}

// Latencies are the fixed path components of Table II, in CPU cycles.
type Latencies struct {
	MemCtrlProcessing int64 // memory controller processing delay
	CtrlToCoreOneWay  int64 // controller-to-core propagation, each way
	PackagePinOneWay  int64 // package pin delay, each way (off-package only)
	PCBWireRoundTrip  int64 // PCB wiring delay, round trip (off-package only)
	InterposerOneWay  int64 // silicon interposer pin delay, each way (on-package only)
	IntraPackageRT    int64 // intra-package wiring delay, round trip (on-package only)
	DRAMCore          int64 // DRAM core (array) access latency
	OffPkgQueueFixed  int64 // Table II fixed queuing estimate for the Simics-style model
	OnPkgQueueFixed   int64 // on-package queuing estimate (128 banks, Section II: "less than 30 cycles")
	OSEpochOverhead   int64 // OS-assisted table update cost per epoch (TLB-update-like, Liedtke SOSP'93)
	TranslationLookup int64 // RAM+CAM translation table lookup (paper: "2 additional clock cycles")
}

// OffPackageFixed returns the non-queuing latency of an off-package access:
// everything except the DRAM-core and queuing time that the detailed DRAM
// model simulates itself.
func (l Latencies) OffPackageFixed() int64 {
	return l.MemCtrlProcessing + 2*l.CtrlToCoreOneWay + 2*l.PackagePinOneWay + l.PCBWireRoundTrip
}

// OnPackageFixed returns the non-queuing latency of an on-package access.
// The queuing delay is "almost eliminated" by the 128-bank structure and is
// simulated, not assumed.
func (l Latencies) OnPackageFixed() int64 {
	return l.MemCtrlProcessing + 2*l.CtrlToCoreOneWay + 2*l.InterposerOneWay + l.IntraPackageRT
}

// OffPackageTotalEstimate is the Table II style single-number estimate
// (core + fixed path + fixed queuing) used by the Section II cache/IPC model.
func (l Latencies) OffPackageTotalEstimate() int64 {
	return l.DRAMCore + l.OffPackageFixed() + l.OffPkgQueueFixed
}

// OnPackageTotalEstimate is the on-package counterpart.
func (l Latencies) OnPackageTotalEstimate() int64 {
	return l.DRAMCore + l.OnPackageFixed() + l.OnPkgQueueFixed
}

// L4HitLatency is the DRAM-L4-cache hit time: tags and data are read
// sequentially from on-package DRAM, so a hit costs two accesses.
func (l Latencies) L4HitLatency() int64 { return 2 * l.OnPackageTotalEstimate() }

// L4MissProbe is the extra probe latency an L4 miss pays before going
// off-package: one on-package access to discover the tag miss.
func (l Latencies) L4MissProbe() int64 { return l.OnPackageTotalEstimate() }

// MemoryGeometry describes the heterogeneous memory space of Table III.
type MemoryGeometry struct {
	TotalCapacity     uint64 // whole main-memory space (Table III: 4 GB)
	OnPackageCapacity uint64 // on-package region (Table III: 512 MB; Section II: 1 GB)
	MacroPageSize     uint64 // migration granularity, 4 KB .. 4 MB
	SubBlockSize      uint64 // live-migration sub-block (Table III: 4 KB)

	OffChannels   int // DDR3 channels to DIMMs (Section II: four)
	OffBanksPerCh int // banks per off-package channel (Section IV: 8-bank structure)
	OnChannels    int // on-package channel count (one wide interposer bus per die pair)
	OnBanksPerCh  int // banks per on-package channel (Section IV: 128-bank structure)
	RowSize       uint64
	BurstBytes    uint64 // bytes moved per scheduled burst (cache line)
}

// OnPackageSlots returns the number of macro-page slots in the on-package
// region (N in the paper's nomenclature).
func (m MemoryGeometry) OnPackageSlots() uint64 { return m.OnPackageCapacity / m.MacroPageSize }

// TotalPages returns the number of macro pages covering the whole space.
func (m MemoryGeometry) TotalPages() uint64 { return m.TotalCapacity / m.MacroPageSize }

// Shard returns the geometry of one channel of an n-way channel-sharded
// machine: both capacities divide by n while the per-region device
// structure (channels, banks, rows) is unchanged — sharding scales the
// machine out across n controller instances, each owning a full-width
// slice of devices. n must be a positive power of two and both capacities
// must split into whole macro pages.
func (m MemoryGeometry) Shard(n int) (MemoryGeometry, error) {
	if n <= 0 || n&(n-1) != 0 {
		return MemoryGeometry{}, fmt.Errorf("config: shard count %d must be a positive power of two", n)
	}
	if n == 1 {
		return m, nil
	}
	if m.TotalCapacity%(uint64(n)*m.MacroPageSize) != 0 {
		return MemoryGeometry{}, fmt.Errorf("config: total capacity %d does not split into %d shards of whole macro pages", m.TotalCapacity, n)
	}
	if m.OnPackageCapacity%(uint64(n)*m.MacroPageSize) != 0 {
		return MemoryGeometry{}, fmt.Errorf("config: on-package capacity %d does not split into %d shards of whole macro pages", m.OnPackageCapacity, n)
	}
	s := m
	s.TotalCapacity /= uint64(n)
	s.OnPackageCapacity /= uint64(n)
	if err := s.Validate(); err != nil {
		return MemoryGeometry{}, fmt.Errorf("config: %d-way shard geometry invalid: %w", n, err)
	}
	return s, nil
}

// Validate checks the geometry for internal consistency.
func (m MemoryGeometry) Validate() error {
	switch {
	case m.TotalCapacity == 0 || m.OnPackageCapacity == 0:
		return fmt.Errorf("config: zero capacity")
	case m.OnPackageCapacity >= m.TotalCapacity:
		return fmt.Errorf("config: on-package capacity %d must be smaller than total %d (otherwise memory is homogeneous)", m.OnPackageCapacity, m.TotalCapacity)
	case m.MacroPageSize == 0 || m.MacroPageSize&(m.MacroPageSize-1) != 0:
		return fmt.Errorf("config: macro-page size %d must be a power of two", m.MacroPageSize)
	case m.OnPackageCapacity%m.MacroPageSize != 0:
		return fmt.Errorf("config: on-package capacity %d not a multiple of macro-page size %d", m.OnPackageCapacity, m.MacroPageSize)
	case m.TotalCapacity%m.MacroPageSize != 0:
		return fmt.Errorf("config: total capacity %d not a multiple of macro-page size %d", m.TotalCapacity, m.MacroPageSize)
	case m.SubBlockSize == 0 || m.SubBlockSize&(m.SubBlockSize-1) != 0:
		return fmt.Errorf("config: sub-block size %d must be a power of two", m.SubBlockSize)
	case m.MacroPageSize < m.SubBlockSize:
		return fmt.Errorf("config: macro-page size %d smaller than sub-block size %d", m.MacroPageSize, m.SubBlockSize)
	case m.OffChannels <= 0 || m.OffBanksPerCh <= 0 || m.OnChannels <= 0 || m.OnBanksPerCh <= 0:
		return fmt.Errorf("config: channel/bank counts must be positive")
	case m.BurstBytes == 0 || m.BurstBytes&(m.BurstBytes-1) != 0:
		return fmt.Errorf("config: burst size %d must be a power of two", m.BurstBytes)
	case m.RowSize == 0 || m.RowSize%m.BurstBytes != 0:
		return fmt.Errorf("config: row size %d must be a positive multiple of burst size %d", m.RowSize, m.BurstBytes)
	}
	if _, err := addr.NewPageGeom(m.MacroPageSize); err != nil {
		return err
	}
	return nil
}

// Baseline returns the Table II processor.
func Baseline() Processor { return Processor{Cores: 4, FrequencyGHz: 3.2} }

// SRAMHierarchy returns the Table II L1/L2/L3 configuration.
func SRAMHierarchy() []CacheLevel {
	return []CacheLevel{
		{Name: "L1D", Size: 32 * addr.KiB, Ways: 8, Latency: 2, LineSize: 64, Shared: false},
		{Name: "L2", Size: 256 * addr.KiB, Ways: 8, Latency: 5, LineSize: 64, Shared: false},
		{Name: "L3", Size: 8 * addr.MiB, Ways: 16, Latency: 25, LineSize: 64, Shared: true},
	}
}

// TableIILatencies returns the reconstructed Table II delay components.
func TableIILatencies() Latencies {
	return Latencies{
		MemCtrlProcessing: 5,
		CtrlToCoreOneWay:  4,
		PackagePinOneWay:  5,
		PCBWireRoundTrip:  11,
		InterposerOneWay:  3,
		IntraPackageRT:    1,
		DRAMCore:          60,
		OffPkgQueueFixed:  116,
		OnPkgQueueFixed:   3,
		OSEpochOverhead:   127,
		TranslationLookup: 2,
	}
}

// TraceGeometry returns the Table III heterogeneous-memory geometry used by
// the Section IV trace-based evaluation: 4 GB total, 512 MB on-package.
func TraceGeometry() MemoryGeometry {
	return MemoryGeometry{
		TotalCapacity:     4 * addr.GiB,
		OnPackageCapacity: 512 * addr.MiB,
		MacroPageSize:     4 * addr.MiB,
		SubBlockSize:      4 * addr.KiB,
		OffChannels:       4,
		OffBanksPerCh:     8,
		OnChannels:        2,
		OnBanksPerCh:      128,
		RowSize:           8 * addr.KiB,
		BurstBytes:        64,
	}
}

// SectionIIGeometry returns the Section II full-system geometry: 1 GB
// on-package out of the workload-dependent total.
func SectionIIGeometry() MemoryGeometry {
	g := TraceGeometry()
	g.OnPackageCapacity = 1 * addr.GiB
	g.TotalCapacity = 8 * addr.GiB
	return g
}

// DDR3Timing are DRAM bank/bus timings in CPU cycles at 3.2 GHz.
// DDR3-1333: tCK = 1.5 ns = 4.8 CPU cycles; CL-tRCD-tRP = 9-9-9 DRAM cycles
// each ~= 13.5 ns ~= 43 CPU cycles; burst of 8 transfers 64 B in 4 DRAM
// cycles = 6 ns ~= 19 CPU cycles on the 64-bit channel.
type DDR3Timing struct {
	TRCD   int64 // activate -> read/write
	TCL    int64 // read -> first data
	TRP    int64 // precharge
	TRAS   int64 // activate -> precharge minimum
	TBurst int64 // data-bus occupancy per 64 B burst
	TWR    int64 // write recovery

	// Refresh: every TREFI cycles the channel is unavailable for TRFC
	// cycles (all-bank refresh). Zero disables refresh modeling.
	TREFI int64
	TRFC  int64
}

// OffPackageTiming returns DDR3-1333 timings in CPU cycles.
func OffPackageTiming() DDR3Timing {
	return DDR3Timing{TRCD: 43, TCL: 43, TRP: 43, TRAS: 115, TBurst: 19, TWR: 48}
}

// OnPackageTiming returns the modified many-bank on-package DRAM timings:
// the same DRAM core (array) timings — the paper keeps a commodity-derived
// die — but a much faster I/O interface on the >= 2 Tbps interposer, so a
// 64 B burst occupies the bus for only ~1 CPU cycle, and 128 banks per
// channel absorb queuing.
func OnPackageTiming() DDR3Timing {
	return DDR3Timing{TRCD: 43, TCL: 43, TRP: 43, TRAS: 115, TBurst: 1, TWR: 48}
}

// Power holds the pJ/bit constants of Section IV-D.
type Power struct {
	CorePJPerBit    float64 // DRAM core access, both regions
	OnWirePJPerBit  float64 // on-package interconnect
	OffWirePJPerBit float64 // off-package interconnect
}

// WithRefresh returns t with DDR3 auto-refresh enabled: tREFI = 7.8 us and
// tRFC = 350 ns at 3.2 GHz. The paper's evaluation does not model refresh
// (its cited Smart Refresh work addresses refresh energy separately), so
// the default timings leave it off; enabling it costs ~4.5% of bandwidth
// and slightly favors the on-package region even further.
func WithRefresh(t DDR3Timing) DDR3Timing {
	t.TREFI = 24960
	t.TRFC = 1120
	return t
}

// PaperPower returns the paper's power constants (5 / 1.66 / 13 pJ/bit).
func PaperPower() Power {
	return Power{CorePJPerBit: 5, OnWirePJPerBit: 1.66, OffWirePJPerBit: 13}
}
