package dram

import (
	"testing"
	"testing/quick"

	"heteromem/internal/config"
)

func newTestDevice(t *testing.T, channels, banks int) *Device {
	t.Helper()
	d, err := New(Geometry{
		Channels: channels, BanksPerCh: banks,
		RowBytes: 8192, BurstBytes: 64,
	}, config.OffPackageTiming())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewValidation(t *testing.T) {
	bad := []Geometry{
		{Channels: 3, BanksPerCh: 8, RowBytes: 8192, BurstBytes: 64}, // non-pow2 channels
		{Channels: 4, BanksPerCh: 6, RowBytes: 8192, BurstBytes: 64}, // non-pow2 banks
		{Channels: 4, BanksPerCh: 8, RowBytes: 100, BurstBytes: 64},  // row not multiple
		{Channels: 0, BanksPerCh: 8, RowBytes: 8192, BurstBytes: 64}, // zero channels
		{Channels: 4, BanksPerCh: 8, RowBytes: 8192, BurstBytes: 0},  // zero burst
	}
	for i, g := range bad {
		if _, err := New(g, config.OffPackageTiming()); err == nil {
			t.Errorf("case %d: geometry %+v accepted", i, g)
		}
	}
}

func TestFirstAccessPaysActivation(t *testing.T) {
	d := newTestDevice(t, 1, 8)
	tm := d.Timing()
	done, core := d.Service(0, false, 0)
	want := tm.TRCD + tm.TCL + tm.TBurst
	if done != want {
		t.Fatalf("cold access done = %d, want %d (TRCD+TCL+TBurst)", done, want)
	}
	if core != want {
		t.Fatalf("core latency = %d, want %d", core, want)
	}
	hits, misses, conf, _ := d.Stats()
	if hits != 0 || misses != 1 || conf != 0 {
		t.Fatalf("stats = %d/%d/%d, want 0/1/0", hits, misses, conf)
	}
}

func TestRowHitsPipelineAtBurstRate(t *testing.T) {
	d := newTestDevice(t, 1, 8)
	tm := d.Timing()
	var prev int64 = -1
	// Sequential lines in the same row: after the first access, completions
	// must be spaced exactly TBurst apart (bus-rate streaming).
	for i := 0; i < 16; i++ {
		done, _ := d.Service(uint64(i*64), false, 0)
		if prev >= 0 && done-prev != tm.TBurst {
			t.Fatalf("access %d: spacing %d, want TBurst=%d", i, done-prev, tm.TBurst)
		}
		prev = done
	}
	hits, misses, _, _ := d.Stats()
	if misses != 1 || hits != 15 {
		t.Fatalf("hits/misses = %d/%d, want 15/1", hits, misses)
	}
}

func TestRowConflictPaysPrechargeAndWriteRecovery(t *testing.T) {
	d := newTestDevice(t, 1, 1) // single bank: easy conflicts
	tm := d.Timing()
	rowStride := uint64(8192)         // next row, same bank (1 channel, 1 bank)
	_, core0 := d.Service(0, true, 0) // write opens row 0
	if core0 != tm.TRCD+tm.TCL+tm.TBurst {
		t.Fatalf("first core latency %d", core0)
	}
	_, core1 := d.Service(rowStride, false, 1000)
	want := tm.TRP + tm.TRCD + tm.TWR + tm.TCL + tm.TBurst // conflict after write
	if core1 != want {
		t.Fatalf("conflict-after-write core latency = %d, want %d", core1, want)
	}
	_, _, conf, _ := d.Stats()
	if conf != 1 {
		t.Fatalf("conflicts = %d, want 1", conf)
	}
}

func TestRowHitDetection(t *testing.T) {
	d := newTestDevice(t, 2, 8)
	a := uint64(4096)
	if d.RowHit(a) {
		t.Fatal("cold device cannot row-hit")
	}
	d.Service(a, false, 0)
	if !d.RowHit(a) {
		t.Fatal("same address must row-hit after access")
	}
	if !d.RowHit(a + 64) {
		// a+64 maps to a different channel at line interleave, so it may
		// not share the row; use a same-channel neighbor instead.
		b := a + 64*uint64(d.Geometry().Channels)
		if d.Decode(b).Channel == d.Decode(a).Channel && d.Decode(b).Row == d.Decode(a).Row && !d.RowHit(b) {
			t.Fatal("same-row neighbor must row-hit")
		}
	}
}

func TestDecodeConsistentWithChannelOf(t *testing.T) {
	d := newTestDevice(t, 4, 8)
	f := func(a uint64) bool {
		a %= 1 << 32
		return d.Decode(a).Channel == d.ChannelOf(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeInRange(t *testing.T) {
	d := newTestDevice(t, 4, 8)
	f := func(a uint64) bool {
		loc := d.Decode(a % (1 << 40))
		return loc.Channel >= 0 && loc.Channel < 4 &&
			loc.Bank >= 0 && loc.Bank < 8 && loc.Row >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestPermutationBreaksStrideResonance: a power-of-two stride must not map
// every access to the same (channel, bank) — the XOR permutation must
// spread it.
func TestPermutationBreaksStrideResonance(t *testing.T) {
	d := newTestDevice(t, 4, 8)
	seen := map[[2]int]bool{}
	for i := 0; i < 64; i++ {
		loc := d.Decode(uint64(i) * 256 * 1024)
		seen[[2]int{loc.Channel, loc.Bank}] = true
	}
	if len(seen) < 8 {
		t.Fatalf("256KB stride touched only %d (channel,bank) pairs; resonance not broken", len(seen))
	}
}

func TestSequentialStreamKeepsRowLocality(t *testing.T) {
	d := newTestDevice(t, 4, 8)
	for i := 0; i < 512; i++ { // 32 KB sequential = 8192 B/channel = 1 row
		d.Service(uint64(i*64), false, 0)
	}
	hits, misses, conf, _ := d.Stats()
	if conf != 0 {
		t.Fatalf("sequential stream caused %d row conflicts", conf)
	}
	if hits < misses*10 {
		t.Fatalf("sequential stream: hits=%d misses=%d, want hit-dominated", hits, misses)
	}
}

func TestReserveBusBlocksChannel(t *testing.T) {
	d := newTestDevice(t, 1, 8)
	end := d.ReserveBus(0, 100, 500)
	if end != 600 {
		t.Fatalf("reserve end = %d, want 600", end)
	}
	if d.BusFree(0) != 600 {
		t.Fatalf("bus free = %d, want 600", d.BusFree(0))
	}
	// A data transfer cannot complete before the reservation ends.
	done, _ := d.Service(0, false, 0)
	if done < 600 {
		t.Fatalf("service completed at %d during reservation", done)
	}
}

func TestIdleGap(t *testing.T) {
	d := newTestDevice(t, 1, 8)
	if from, ok := d.IdleGap(0, 100); !ok || from != 0 {
		t.Fatalf("idle device gap = %d,%v", from, ok)
	}
	d.ReserveBus(0, 0, 200)
	if _, ok := d.IdleGap(0, 100); ok {
		t.Fatal("gap reported during busy period")
	}
}

func TestReset(t *testing.T) {
	d := newTestDevice(t, 2, 8)
	d.Service(0, true, 0)
	d.Reset()
	if h, m, c, b := d.Stats(); h+m+c+b != 0 {
		t.Fatal("stats not cleared")
	}
	if d.BusFree(0) != 0 || d.RowHit(0) {
		t.Fatal("device state not cleared")
	}
}

func TestRefreshWindowDelaysCommands(t *testing.T) {
	tm := config.WithRefresh(config.OffPackageTiming())
	d, err := New(Geometry{Channels: 1, BanksPerCh: 8, RowBytes: 8192, BurstBytes: 64}, tm)
	if err != nil {
		t.Fatal(err)
	}
	// An access landing inside the first refresh window (t in [0, TRFC))
	// must be pushed to the window's end.
	done, _ := d.Service(0, false, 100)
	wantMin := tm.TRFC + tm.TRCD + tm.TCL + tm.TBurst
	if done < wantMin {
		t.Fatalf("done = %d, want >= %d (pushed past refresh)", done, wantMin)
	}
	if d.RefreshStalls() == 0 {
		t.Fatal("refresh stall not counted")
	}
	// An access between windows is unaffected.
	d2, _ := New(Geometry{Channels: 1, BanksPerCh: 8, RowBytes: 8192, BurstBytes: 64}, tm)
	at := tm.TRFC + 1000
	done2, _ := d2.Service(0, false, at)
	if done2 != at+tm.TRCD+tm.TCL+tm.TBurst {
		t.Fatalf("mid-interval access delayed: done=%d", done2)
	}
}

func TestRefreshDisabledByDefault(t *testing.T) {
	if config.OffPackageTiming().TREFI != 0 {
		t.Fatal("refresh must default off (the paper's evaluation does not model it)")
	}
	d := newTestDevice(t, 1, 8)
	d.Service(0, false, 50)
	if d.RefreshStalls() != 0 {
		t.Fatal("refresh stalls counted with refresh disabled")
	}
}
