// Package dram models DRAM device timing for one memory region: channels,
// banks, open-page row buffers, and data-bus occupancy. The trace-based
// evaluation of the paper uses exactly this structure: "we model the
// detailed DRAM access latency by assuming FR-FCFS scheduling policy and
// open page access. We use 8-bank structure for the off-package DRAM and
// 128-bank structure for the on-package DRAM."
//
// The model is a resource-reservation simulation: each bank remembers its
// open row and the cycle it next becomes ready; each channel remembers when
// its data bus frees up. Servicing a request advances those clocks and
// returns the request's completion time, so queuing delay emerges from
// contention rather than being assumed.
package dram

import (
	"fmt"

	"heteromem/internal/config"
	"heteromem/internal/obs"
)

// Geometry fixes the structure of one region's DRAM.
type Geometry struct {
	Channels   int
	BanksPerCh int
	RowBytes   uint64 // row-buffer (DRAM page) size
	BurstBytes uint64 // bytes per scheduled burst (cache line)
}

// Device is the timing model for one region (on-package or off-package).
type Device struct {
	geom   Geometry
	timing config.DDR3Timing

	banks   [][]bank // [channel][bank]
	busFree []int64  // [channel] cycle the data bus frees

	colBits  uint // log2(row columns) — bursts per row
	bankBits uint
	chanMask uint64

	// faultHook, when set, is consulted once per serviced request burst;
	// returning true marks the delivered data as faulty (the burst still
	// consumed its bus and bank time — the device cannot know in advance).
	faultHook func(a uint64, write bool, at int64) bool

	// Statistics.
	rowHits       uint64
	rowMisses     uint64
	rowConf       uint64 // row-buffer conflicts (row open but different)
	bursts        uint64
	refreshStalls uint64 // commands delayed by a refresh window
	faultedBursts uint64 // serviced bursts the fault hook marked bad
}

type bank struct {
	openRow   int64 // -1 when closed
	readyAt   int64 // earliest cycle a new column command may issue
	lastWrite bool  // last column op was a write (tWR applies at precharge)
}

// New builds a Device. Channel and bank counts must be powers of two so the
// address can be sliced with masks.
func New(geom Geometry, timing config.DDR3Timing) (*Device, error) {
	if geom.Channels <= 0 || geom.Channels&(geom.Channels-1) != 0 {
		return nil, fmt.Errorf("dram: channel count %d must be a positive power of two", geom.Channels)
	}
	if geom.BanksPerCh <= 0 || geom.BanksPerCh&(geom.BanksPerCh-1) != 0 {
		return nil, fmt.Errorf("dram: bank count %d must be a positive power of two", geom.BanksPerCh)
	}
	if geom.BurstBytes == 0 || geom.RowBytes == 0 || geom.RowBytes%geom.BurstBytes != 0 {
		return nil, fmt.Errorf("dram: row %d must be a positive multiple of burst %d", geom.RowBytes, geom.BurstBytes)
	}
	d := &Device{
		geom:     geom,
		timing:   timing,
		busFree:  make([]int64, geom.Channels),
		colBits:  log2(geom.RowBytes / geom.BurstBytes),
		bankBits: log2(uint64(geom.BanksPerCh)),
		chanMask: uint64(geom.Channels - 1),
	}
	d.banks = make([][]bank, geom.Channels)
	for c := range d.banks {
		d.banks[c] = make([]bank, geom.BanksPerCh)
		for b := range d.banks[c] {
			d.banks[c][b].openRow = -1
		}
	}
	return d, nil
}

// Location is the decoded DRAM coordinates of an address.
type Location struct {
	Channel int
	Bank    int
	Row     int64
}

// Decode maps a region-relative byte address to DRAM coordinates. The
// mapping is the usual open-page-friendly row:bank:column:channel:offset
// split — consecutive cache lines rotate channels, lines within a channel
// fill a row before switching banks — with the channel and bank indices
// XOR-permuted by row bits (permutation-based interleaving, Zhang et al.),
// so power-of-two strides do not resonate onto a single bank.
func (d *Device) Decode(a uint64) Location {
	line := a / d.geom.BurstBytes
	chanBits := log2(uint64(d.geom.Channels))
	row := int64(line >> (chanBits + d.colBits + d.bankBits))
	b := int((line>>(chanBits+d.colBits) ^ uint64(row)) & (uint64(d.geom.BanksPerCh) - 1))
	ch := int((line ^ uint64(row)) & d.chanMask)
	return Location{Channel: ch, Bank: b, Row: row}
}

// RowHit reports whether an access to a would hit the currently open row.
func (d *Device) RowHit(a uint64) bool {
	loc := d.Decode(a)
	return d.banks[loc.Channel][loc.Bank].openRow == loc.Row
}

// ChannelOf returns the channel an address maps to (consistent with Decode).
func (d *Device) ChannelOf(a uint64) int { return d.Decode(a).Channel }

// BusFree returns the cycle channel ch's data bus next frees.
func (d *Device) BusFree(ch int) int64 { return d.busFree[ch] }

// Service performs one burst access to address a, not earlier than cycle
// `at`, and returns the cycle the data transfer completes. Bank and bus
// state advance accordingly.
//
// Column commands to an open row pipeline at burst rate (tCCD ~ tBurst):
// the TCL data latency overlaps across consecutive row hits, so a
// sequential stream saturates the data bus, not the sense amplifiers —
// matching real DDRx behaviour and the paper's premise that the wide
// on-package interface streams at interposer speed.
func (d *Device) Service(a uint64, write bool, at int64) (done, coreLat int64) {
	done, coreLat, _ = d.ServiceChecked(a, write, at)
	return done, coreLat
}

// ServiceChecked is Service plus the device-fault check: faulted reports
// whether the configured fault hook failed this burst (the caller decides
// whether to retry; the timing cost has already been paid either way).
func (d *Device) ServiceChecked(a uint64, write bool, at int64) (done, coreLat int64, faulted bool) {
	loc := d.Decode(a)
	bk := &d.banks[loc.Channel][loc.Bank]
	issue := at
	if bk.readyAt > issue {
		issue = bk.readyAt
	}
	issue = d.afterRefresh(issue)
	var rowDelay int64
	switch {
	case bk.openRow == loc.Row:
		d.rowHits++
	case bk.openRow < 0:
		d.rowMisses++
		rowDelay = d.timing.TRCD
		bk.openRow = loc.Row
	default:
		d.rowConf++
		rowDelay = d.timing.TRP + d.timing.TRCD
		if bk.lastWrite {
			rowDelay += d.timing.TWR // write recovery before precharge
		}
		bk.openRow = loc.Row
	}
	// Data appears TCL after the column command; the burst then occupies
	// the shared data bus.
	dataStart := issue + rowDelay + d.timing.TCL
	if d.busFree[loc.Channel] > dataStart {
		dataStart = d.busFree[loc.Channel]
	}
	done = dataStart + d.timing.TBurst
	d.busFree[loc.Channel] = done
	// The bank can take its next column command one burst slot after this
	// one (tCCD); a row change pays the activation first.
	bk.readyAt = issue + rowDelay + d.timing.TBurst
	bk.lastWrite = write
	d.bursts++
	// The DRAM-core portion: what this access would cost on an idle bank
	// and bus, given the row-buffer state it found (Table IV's per-workload
	// "DRAM core latency" row is the average of exactly this).
	if d.faultHook != nil && d.faultHook(a, write, issue) {
		d.faultedBursts++
		faulted = true
	}
	return done, rowDelay + d.timing.TCL + d.timing.TBurst, faulted
}

// SetFaultHook installs (or clears, with nil) the per-burst fault check
// consulted by ServiceChecked.
func (d *Device) SetFaultHook(h func(a uint64, write bool, at int64) bool) {
	d.faultHook = h
}

// FaultedBursts returns how many serviced bursts the fault hook failed.
func (d *Device) FaultedBursts() uint64 { return d.faultedBursts }

// ReserveBus blocks channel ch's data bus for dur cycles starting no
// earlier than `at`, returning the completion cycle. Used for background
// bulk transfers (migration sub-block copies) whose per-burst detail is
// aggregated.
func (d *Device) ReserveBus(ch int, at, dur int64) int64 {
	t := at
	if d.busFree[ch] > t {
		t = d.busFree[ch]
	}
	t = d.afterRefresh(t)
	end := t + dur
	d.busFree[ch] = end
	d.bursts += uint64(dur / max64(d.timing.TBurst, 1))
	return end
}

// IdleGap reports the idle window [from, until) available on channel ch
// before cycle `until`; ok is false when the bus is already busy past until.
func (d *Device) IdleGap(ch int, until int64) (from int64, ok bool) {
	if d.busFree[ch] >= until {
		return 0, false
	}
	return d.busFree[ch], true
}

// Stats returns cumulative (rowHits, rowMisses, rowConflicts, bursts).
func (d *Device) Stats() (hits, misses, conflicts, bursts uint64) {
	return d.rowHits, d.rowMisses, d.rowConf, d.bursts
}

// RefreshStalls returns how many commands a refresh window delayed.
func (d *Device) RefreshStalls() uint64 { return d.refreshStalls }

// PublishObs exports the device's cumulative statistics into reg as gauges
// under prefix (e.g. "dram.on"). The device keeps its counters locally so
// the timing hot path stays untouched; call this at snapshot time.
func (d *Device) PublishObs(reg *obs.Registry, prefix string) {
	if reg == nil {
		return
	}
	reg.Gauge(prefix + ".row_hits").Set(int64(d.rowHits))
	reg.Gauge(prefix + ".row_misses").Set(int64(d.rowMisses))
	reg.Gauge(prefix + ".row_conflicts").Set(int64(d.rowConf))
	reg.Gauge(prefix + ".bursts").Set(int64(d.bursts))
	reg.Gauge(prefix + ".refresh_stalls").Set(int64(d.refreshStalls))
	if d.faultHook != nil {
		// Only surfaced when fault injection is wired, so fault-free runs
		// keep their exact pre-fault metric snapshots.
		reg.Gauge(prefix + ".faulted_bursts").Set(int64(d.faultedBursts))
	}
}

// Geometry returns the device geometry.
func (d *Device) Geometry() Geometry { return d.geom }

// Timing returns the device timing parameters.
func (d *Device) Timing() config.DDR3Timing { return d.timing }

// Reset clears all bank/bus state and statistics.
func (d *Device) Reset() {
	for c := range d.banks {
		for b := range d.banks[c] {
			d.banks[c][b] = bank{openRow: -1}
		}
		d.busFree[c] = 0
	}
	d.rowHits, d.rowMisses, d.rowConf, d.bursts, d.refreshStalls = 0, 0, 0, 0, 0
	d.faultedBursts = 0
}

// afterRefresh pushes a command-issue time out of any all-bank refresh
// window: refreshes occur every TREFI cycles and block the device for TRFC.
// TRFC << TREFI, so at most one window needs skipping.
func (d *Device) afterRefresh(t int64) int64 {
	if d.timing.TREFI == 0 || t < 0 {
		return t
	}
	winStart := t / d.timing.TREFI * d.timing.TREFI
	if t < winStart+d.timing.TRFC {
		d.refreshStalls++
		return winStart + d.timing.TRFC
	}
	return t
}

func log2(v uint64) uint {
	var n uint
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
