package dram

import "heteromem/internal/snap"

// SnapshotTo writes the device's dynamic state: every bank's open row,
// ready time, and last-op flag, each channel's bus-free time, and the
// cumulative statistics. Geometry and timing are construction inputs, and
// the fault hook is re-installed by the controller that owns the device.
func (d *Device) SnapshotTo(e *snap.Encoder) {
	e.U32(uint32(len(d.banks)))
	for c := range d.banks {
		e.U32(uint32(len(d.banks[c])))
		for b := range d.banks[c] {
			bk := &d.banks[c][b]
			e.I64(bk.openRow)
			e.I64(bk.readyAt)
			e.Bool(bk.lastWrite)
		}
		e.I64(d.busFree[c])
	}
	e.U64(d.rowHits)
	e.U64(d.rowMisses)
	e.U64(d.rowConf)
	e.U64(d.bursts)
	e.U64(d.refreshStalls)
	e.U64(d.faultedBursts)
}

// RestoreFrom reads the state written by SnapshotTo into a device built
// with the same geometry.
func (d *Device) RestoreFrom(dec *snap.Decoder) error {
	nc := int(dec.U32())
	if dec.Err() != nil {
		return dec.Err()
	}
	if nc != len(d.banks) {
		dec.Invalid("device has %d channels, snapshot has %d", len(d.banks), nc)
		return dec.Err()
	}
	for c := range d.banks {
		nb := int(dec.U32())
		if dec.Err() != nil {
			return dec.Err()
		}
		if nb != len(d.banks[c]) {
			dec.Invalid("channel %d has %d banks, snapshot has %d", c, len(d.banks[c]), nb)
			return dec.Err()
		}
		for b := range d.banks[c] {
			bk := &d.banks[c][b]
			bk.openRow = dec.I64()
			bk.readyAt = dec.I64()
			bk.lastWrite = dec.Bool()
		}
		d.busFree[c] = dec.I64()
	}
	d.rowHits = dec.U64()
	d.rowMisses = dec.U64()
	d.rowConf = dec.U64()
	d.bursts = dec.U64()
	d.refreshStalls = dec.U64()
	d.faultedBursts = dec.U64()
	return dec.Err()
}
