package core

import (
	"testing"
)

func newTestMigrator(t *testing.T, design Design, interval uint64) *Migrator {
	t.Helper()
	m, err := NewMigrator(Options{
		Design:       design,
		Slots:        8,
		TotalPages:   64,
		PageSize:     64 * 1024,
		SubBlockSize: 4 * 1024,
		SwapInterval: interval,
	})
	if err != nil {
		t.Fatalf("NewMigrator: %v", err)
	}
	return m
}

// drainSwap executes an in-flight swap to completion, returning the number
// of steps run.
func drainSwap(t *testing.T, m *Migrator, subs []SubCopy) int {
	t.Helper()
	steps := 0
	for subs != nil {
		steps++
		for _, sc := range subs {
			m.SubDone(sc.SubIndex)
		}
		next, done, err := m.StepDone()
		if err != nil {
			t.Fatalf("StepDone: %v", err)
		}
		if done {
			return steps
		}
		subs = next
	}
	return steps
}

// hammer feeds accesses to one page until a swap triggers or maxTicks pass.
func hammer(m *Migrator, phys uint64, maxTicks int) []SubCopy {
	for i := 0; i < maxTicks; i++ {
		_, on := m.Translate(phys)
		m.OnAccess(phys, on)
		if subs := m.EpochTick(); subs != nil {
			return subs
		}
	}
	return nil
}

func TestMigratorPromotesHotPage(t *testing.T) {
	m := newTestMigrator(t, DesignN1, 16)
	const hot = 40 // off-package page
	if _, on := m.Translate(hot << 16); on {
		t.Fatal("page 40 should start off-package")
	}
	subs := hammer(m, hot<<16, 1000)
	if subs == nil {
		t.Fatal("no swap triggered for a hammered off-package page")
	}
	if !m.SwapInFlight() {
		t.Fatal("swap should be in flight")
	}
	drainSwap(t, m, subs)
	if m.SwapInFlight() {
		t.Fatal("swap still in flight after drain")
	}
	if _, on := m.Translate(hot << 16); !on {
		t.Fatal("hot page not on-package after swap")
	}
	if err := m.Table().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.SwapsCompleted != 1 {
		t.Fatalf("SwapsCompleted = %d, want 1", st.SwapsCompleted)
	}
	if st.PagesCopied == 0 || st.BytesCopied == 0 {
		t.Fatalf("copy accounting empty: %+v", st)
	}
}

func TestMigratorBlocksOverlappingSwaps(t *testing.T) {
	m := newTestMigrator(t, DesignN1, 8)
	subs := hammer(m, 40<<16, 1000)
	if subs == nil {
		t.Fatal("no swap triggered")
	}
	// Swap in flight: hammering another page must not start a second one.
	if got := hammer(m, 41<<16, 200); got != nil {
		t.Fatal("second swap started while first in flight")
	}
	if m.Stats().TriggersBlocked == 0 {
		t.Fatal("blocked-trigger counter not incremented")
	}
	drainSwap(t, m, subs)
	if got := hammer(m, 41<<16, 1000); got == nil {
		t.Fatal("swap should trigger again once the first completed")
	}
}

func TestMigratorColdTriggerSkipped(t *testing.T) {
	m := newTestMigrator(t, DesignN1, 32)
	// Touch on-package pages a lot, one off-package page only once per epoch:
	// the MRU is never hotter than the LRU, so no swap should start.
	for i := 0; i < 20; i++ {
		for j := 0; j < 31; j++ {
			p := uint64(j % 7)
			_, on := m.Translate(p << 16)
			m.OnAccess(p<<16, on)
			if s := m.EpochTick(); s != nil {
				t.Fatal("unexpected swap")
			}
		}
		_, on := m.Translate(50 << 16)
		m.OnAccess(50<<16, on)
		if s := m.EpochTick(); s != nil {
			t.Fatal("swap triggered by a cold page")
		}
	}
	if m.Stats().TriggersCold == 0 {
		t.Fatal("cold-trigger counter not incremented")
	}
}

func TestLiveMigrationRoutesCopiedSubBlocks(t *testing.T) {
	m := newTestMigrator(t, DesignLive, 16)
	const hot = 40
	// Make sub-block 5 the most recently touched so the copy starts there.
	base := uint64(hot << 16)
	lastAddr := base + 5*4096
	var subs []SubCopy
	for i := 0; i < 1000 && subs == nil; i++ {
		_, on := m.Translate(lastAddr)
		m.OnAccess(lastAddr, on)
		subs = m.EpochTick()
	}
	if subs == nil {
		t.Fatal("no swap triggered")
	}
	if subs[0].SubIndex != 5 {
		t.Fatalf("critical-data-first: first copied sub = %d, want 5 (the MRU sub-block)", subs[0].SubIndex)
	}
	// Nothing copied yet: all sub-blocks still route off-package.
	if _, on := m.Translate(base + 5*4096); on {
		t.Fatal("uncopied sub-block routed on-package")
	}
	// Copy the first sub-block: it must now route on-package while others
	// stay off-package.
	m.SubDone(subs[0].SubIndex)
	if _, on := m.Translate(base + 5*4096); !on {
		t.Fatal("copied sub-block still routed off-package")
	}
	if _, on := m.Translate(base + 6*4096); on {
		t.Fatal("uncopied sub-block routed on-package")
	}
	if m.Stats().LiveEarlyHits == 0 {
		t.Fatal("LiveEarlyHits not counted")
	}
	// Wrap-around order must cover all 16 sub-blocks exactly once.
	seen := make(map[int]bool)
	for _, sc := range subs {
		if seen[sc.SubIndex] {
			t.Fatalf("sub %d copied twice", sc.SubIndex)
		}
		seen[sc.SubIndex] = true
	}
	if len(seen) != 16 {
		t.Fatalf("copied %d distinct subs, want 16", len(seen))
	}
	drainSwap(t, m, subs)
	if _, on := m.Translate(base); !on {
		t.Fatal("page not fully on-package after live swap")
	}
}

func TestDesignNUsesExchanges(t *testing.T) {
	m := newTestMigrator(t, DesignN, 16)
	subs := hammer(m, 40<<16, 1000)
	if subs == nil {
		t.Fatal("no swap triggered")
	}
	if !subs[0].Exchange {
		t.Fatal("N design should produce exchange steps")
	}
	drainSwap(t, m, subs)
	if _, on := m.Translate(40 << 16); !on {
		t.Fatal("hot page not on-package after N exchange")
	}
	if err := m.Table().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if m.Table().EmptyRow() != -1 {
		t.Fatal("N design must not have an empty slot")
	}
}

func TestMigratorManySwapsKeepInvariants(t *testing.T) {
	for _, design := range []Design{DesignN, DesignN1, DesignLive} {
		m := newTestMigrator(t, design, 8)
		// Rotate hotness over many off-package pages.
		for round := 0; round < 60; round++ {
			page := uint64(10 + round%40)
			subs := hammer(m, page<<16, 200)
			if subs != nil {
				drainSwap(t, m, subs)
				if err := m.Table().CheckInvariants(); err != nil {
					t.Fatalf("%v round %d: %v", design, round, err)
				}
			}
		}
		if m.Stats().SwapsCompleted == 0 {
			t.Fatalf("%v: no swaps completed", design)
		}
	}
}

func TestNaiveMRUAblation(t *testing.T) {
	m, err := NewMigrator(Options{
		Design: DesignN1, Slots: 8, TotalPages: 64,
		PageSize: 64 * 1024, SubBlockSize: 4 * 1024,
		SwapInterval: 16, NaiveMRU: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	subs := hammer(m, 33<<16, 1000)
	if subs == nil {
		t.Fatal("naive MRU tracker never triggered a swap")
	}
	drainSwap(t, m, subs)
	if _, on := m.Translate(33 << 16); !on {
		t.Fatal("hot page not promoted under naive tracker")
	}
}

func TestMigratorOptionValidation(t *testing.T) {
	bad := []Options{
		{Design: DesignN1, Slots: 8, TotalPages: 64, PageSize: 64 << 10, SubBlockSize: 4 << 10, SwapInterval: 0},
		{Design: DesignN1, Slots: 8, TotalPages: 64, PageSize: 64 << 10, SubBlockSize: 7, SwapInterval: 10},
		{Design: DesignN1, Slots: 0, TotalPages: 64, PageSize: 64 << 10, SubBlockSize: 4 << 10, SwapInterval: 10},
	}
	for i, o := range bad {
		if _, err := NewMigrator(o); err == nil {
			t.Errorf("case %d: NewMigrator accepted invalid options %+v", i, o)
		}
	}
}

func TestMigratorVictimPolicies(t *testing.T) {
	for _, pol := range []VictimPolicy{VictimClockPLRU, VictimRandom, VictimFIFO} {
		m, err := NewMigrator(Options{
			Design: DesignN1, Slots: 8, TotalPages: 64,
			PageSize: 64 * 1024, SubBlockSize: 4 * 1024,
			SwapInterval: 16, Victim: pol,
		})
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		subs := hammer(m, 40<<16, 1000)
		if subs == nil {
			t.Fatalf("%v: no swap triggered", pol)
		}
		drainSwap(t, m, subs)
		if _, on := m.Translate(40 << 16); !on {
			t.Fatalf("%v: hot page not promoted", pol)
		}
		if err := m.Table().CheckInvariants(); err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
	}
}
