package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func newTestTable(t *testing.T, slots, total uint64, sacrifice bool) *Table {
	t.Helper()
	tb, err := NewTable(slots, total, sacrifice)
	if err != nil {
		t.Fatalf("NewTable(%d,%d,%v): %v", slots, total, sacrifice, err)
	}
	return tb
}

func TestNewTableIdentity(t *testing.T) {
	tb := newTestTable(t, 8, 64, false)
	for p := uint64(0); p < 64; p++ {
		mp, on := tb.MachinePage(p)
		if mp != p {
			t.Errorf("page %d: machine %d, want identity", p, mp)
		}
		if want := p < 8; on != want {
			t.Errorf("page %d: onPackage=%v, want %v", p, on, want)
		}
	}
	if err := tb.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tb.EmptyRow() != -1 {
		t.Errorf("N design should have no empty row, got %d", tb.EmptyRow())
	}
}

func TestNewTableSacrifice(t *testing.T) {
	tb := newTestTable(t, 8, 64, true)
	if tb.EmptyRow() != 7 {
		t.Fatalf("empty row = %d, want 7 (last slot)", tb.EmptyRow())
	}
	if got := tb.Classify(7); got != GhostPage {
		t.Errorf("page 7 class = %v, want Ghost", got)
	}
	mp, on := tb.MachinePage(7)
	if on || mp != tb.Omega() {
		t.Errorf("ghost page translated to (%d,%v), want (omega=%d,false)", mp, on, tb.Omega())
	}
	if err := tb.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestNewTableRejectsBadShapes(t *testing.T) {
	cases := []struct{ slots, total uint64 }{
		{0, 10}, {10, 10}, {10, 5},
	}
	for _, c := range cases {
		if _, err := NewTable(c.slots, c.total, true); err == nil {
			t.Errorf("NewTable(%d,%d) succeeded, want error", c.slots, c.total)
		}
	}
}

func TestClassify(t *testing.T) {
	tb := newTestTable(t, 8, 64, true)
	// Swap page 20 into slot 3 manually: 3 becomes MS, 20 MF.
	if err := tb.Install(3, 20); err != nil {
		t.Fatal(err)
	}
	if got := tb.Classify(3); got != MigratedSlow {
		t.Errorf("page 3 = %v, want MS", got)
	}
	if got := tb.Classify(20); got != MigratedFast {
		t.Errorf("page 20 = %v, want MF", got)
	}
	if got := tb.Classify(0); got != OriginalFast {
		t.Errorf("page 0 = %v, want OF", got)
	}
	if got := tb.Classify(21); got != OriginalSlow {
		t.Errorf("page 21 = %v, want OS", got)
	}
	mp, on := tb.MachinePage(20)
	if !on || mp != 3 {
		t.Errorf("MF page 20 -> (%d,%v), want (3,true)", mp, on)
	}
	mp, on = tb.MachinePage(3)
	if on || mp != 20 {
		t.Errorf("MS page 3 -> (%d,%v), want (20,false)", mp, on)
	}
}

func TestPendingBitForcesOmega(t *testing.T) {
	tb := newTestTable(t, 8, 64, true)
	if err := tb.Install(3, 20); err != nil {
		t.Fatal(err)
	}
	tb.SetPending(3, true)
	mp, on := tb.MachinePage(3)
	if on || mp != tb.Omega() {
		t.Errorf("pending page 3 -> (%d,%v), want omega", mp, on)
	}
	// CAM direction must keep working while P is set.
	if mp, on := tb.MachinePage(20); !on || mp != 3 {
		t.Errorf("CAM for page 20 broken under P bit: (%d,%v)", mp, on)
	}
	tb.SetPending(3, false)
	if mp, _ := tb.MachinePage(3); mp != 20 {
		t.Errorf("after clearing P, page 3 -> %d, want 20", mp)
	}
}

func TestInstallRejectsForeignLowPage(t *testing.T) {
	tb := newTestTable(t, 8, 64, true)
	if err := tb.Install(2, 5); err == nil {
		t.Fatal("installing page 5 into slot 2 should fail (n<N only in own slot)")
	}
}

func TestVacateAndReinstall(t *testing.T) {
	tb := newTestTable(t, 8, 64, true)
	if err := tb.Vacate(2); err != nil {
		t.Fatal(err)
	}
	if tb.EmptyRow() != 2 {
		t.Errorf("empty row = %d, want 2", tb.EmptyRow())
	}
	if got := tb.Classify(2); got != GhostPage {
		t.Errorf("page 2 = %v, want Ghost", got)
	}
	if err := tb.Install(2, 30); err != nil {
		t.Fatal(err)
	}
	if tb.EmptyRow() != -1 {
		t.Errorf("empty row should clear after install, got %d", tb.EmptyRow())
	}
}

func TestInstallPreservesForeignCAM(t *testing.T) {
	// Mid-swap a page can be re-homed before its old slot is overwritten;
	// Install must not clobber the CAM entry that now points elsewhere.
	tb := newTestTable(t, 8, 64, true)
	if err := tb.Install(3, 20); err != nil { // page 20 in slot 3
		t.Fatal(err)
	}
	if err := tb.Install(7, 20); err != nil { // re-home page 20 to slot 7 (old empty)
		t.Fatal(err)
	}
	// Now overwrite slot 3 with its own page: must NOT delete back[20]->7.
	if err := tb.Install(3, 3); err != nil {
		t.Fatal(err)
	}
	if mp, on := tb.MachinePage(20); !on || mp != 7 {
		t.Errorf("page 20 -> (%d,%v), want (7,true)", mp, on)
	}
}

func TestHardwareBitsMatchesPaperExample(t *testing.T) {
	// 1 GB on-package, 4 MB macro pages, 4 KB sub-blocks, 48-bit space:
	// 256x28 table + 1024 bitmap + 256 pLRU + 780 multi-queue = 9,228 bits.
	got := HardwareBits(1<<30, 4<<20, 4<<10, 48)
	if got != 9228 {
		t.Fatalf("HardwareBits = %d, want 9228 (paper Section III-B)", got)
	}
}

func TestHardwareBitsGrowsWithFinerPages(t *testing.T) {
	prev := uint64(0)
	for _, size := range []uint64{4 << 20, 1 << 20, 256 << 10, 64 << 10, 16 << 10, 4 << 10} {
		bits := HardwareBits(1<<30, size, 4<<10, 48)
		if bits <= prev {
			t.Fatalf("bits(%d)=%d not greater than bits at coarser granularity %d", size, bits, prev)
		}
		prev = bits
	}
}

// TestTableRandomSwapsKeepInvariants drives random N-1 swap plans to
// completion and checks structural invariants and translation consistency
// after every full swap.
func TestTableRandomSwapsKeepInvariants(t *testing.T) {
	const slots, total = 16, 128
	tb := newTestTable(t, slots, total, true)
	rng := rand.New(rand.NewSource(7))

	// data tracks where each page's bytes live, keyed by machine page.
	// Initially page p's data is at machine page p, ghost at omega.
	data := make(map[uint64]uint64) // machine page -> physical page stored there
	for p := uint64(0); p < total; p++ {
		data[p] = p
	}
	data[tb.Omega()] = slots - 1
	delete(data, slots-1)

	for iter := 0; iter < 2000; iter++ {
		m := uint64(rng.Intn(total))
		if tb.SlotOf(m) >= 0 || tb.Classify(m) == OriginalFast {
			continue
		}
		victim := rng.Intn(slots)
		if victim == tb.EmptyRow() {
			continue
		}
		plan, err := BuildPlanN1(tb, m, victim)
		if err != nil {
			t.Fatalf("iter %d: BuildPlanN1(m=%d,victim=%d): %v", iter, m, victim, err)
		}
		for _, st := range plan.Steps {
			// Execute the copy on the shadow data map.
			pg, ok := data[st.Src]
			if !ok {
				t.Fatalf("iter %d: step %q copies from machine page %d which holds no data", iter, st.Label, st.Src)
			}
			data[st.Dst] = pg
			if err := st.mutate(tb); err != nil {
				t.Fatalf("iter %d: step %q mutate: %v", iter, st.Label, err)
			}
		}
		if err := tb.CheckInvariants(); err != nil {
			t.Fatalf("iter %d after swap of page %d: %v", iter, m, err)
		}
		// Every page must translate to a machine page actually holding its
		// data.
		for p := uint64(0); p < total; p++ {
			mp, _ := tb.MachinePage(p)
			if got := data[mp]; got != p {
				t.Fatalf("iter %d: page %d translates to machine %d which holds page %d", iter, p, mp, got)
			}
		}
		// The promoted page must now be on-package.
		if _, on := tb.MachinePage(m); !on {
			t.Fatalf("iter %d: page %d still off-package after swap", iter, m)
		}
	}
}

// TestTableTranslationBijective property: distinct physical pages never
// translate to the same machine page at rest.
func TestTableTranslationBijective(t *testing.T) {
	f := func(seed int64) bool {
		tb, err := NewTable(8, 64, true)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 50; i++ {
			m := uint64(rng.Intn(64))
			if tb.SlotOf(m) >= 0 || tb.Classify(m) == OriginalFast {
				continue
			}
			v := rng.Intn(8)
			if v == tb.EmptyRow() {
				continue
			}
			plan, err := BuildPlanN1(tb, m, v)
			if err != nil {
				return false
			}
			for _, st := range plan.Steps {
				if err := st.mutate(tb); err != nil {
					return false
				}
			}
		}
		seen := make(map[uint64]uint64)
		for p := uint64(0); p < 64; p++ {
			mp, _ := tb.MachinePage(p)
			if other, dup := seen[mp]; dup {
				t.Logf("pages %d and %d both -> machine %d", other, p, mp)
				return false
			}
			seen[mp] = p
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
