// Package core implements the paper's primary contribution: the extra
// physical-to-machine address-translation layer kept by the on-chip memory
// controller, and the hottest-coldest macro-page migration engine with its
// three designs (N, N-1, and N-1 with Live Migration).
//
// Terminology follows the paper:
//
//   - N on-package macro-page slots; row s of the translation table is slot s.
//   - resident[s] is the macro page currently stored in slot s (the right
//     column of Fig. 6/7); a page p < N can only ever live in slot p.
//   - The N-1 design keeps one slot empty; the page that would occupy it is
//     the Ghost page, its data parked in the reserved off-package page Ω.
//   - The P (pending) bit of row p forces the RAM-direction translation of
//     page p to Ω while p's new off-package home is still being written.
//   - The F (filling) bit plus a sub-block bitmap implement live migration.
//
// Page categories: OF (original fast), OS (original slow), MF (migrated
// fast), MS (migrated slow), Ghost.
package core

import (
	"fmt"

	"heteromem/internal/addr"
)

// Empty is the sentinel stored in resident[s] when slot s holds no page.
const Empty = ^uint64(0)

// PageClass classifies a macro page per Section III-A.
type PageClass int

// Page categories of the paper, plus the fault-handling extension: a page
// whose slot was retired after repeated faults is Exiled to a reserved
// off-package spare frame and never migrates again.
const (
	OriginalFast PageClass = iota // ID < N, data in its own slot
	OriginalSlow                  // ID >= N, data in its own off-package home
	MigratedFast                  // ID >= N, data in some on-package slot
	MigratedSlow                  // ID < N, data at its swap partner's off-package home
	GhostPage                     // ID < N, data parked in Ω
	ExiledPage                    // ID < N, slot retired, data at a spare frame past Ω
)

// String names the page class.
func (c PageClass) String() string {
	switch c {
	case OriginalFast:
		return "OF"
	case OriginalSlow:
		return "OS"
	case MigratedFast:
		return "MF"
	case MigratedSlow:
		return "MS"
	case GhostPage:
		return "Ghost"
	case ExiledPage:
		return "Exiled"
	default:
		return fmt.Sprintf("PageClass(%d)", int(c))
	}
}

// Table is the bi-directional translation table: a RAM in the forward
// direction (row index -> resident page) and a CAM in the reverse direction
// (page -> slot holding it), as the paper requires.
type Table struct {
	n        uint64   // number of on-package slots (= rows)
	total    uint64   // total macro pages in the memory space
	resident []uint64 // resident[s]: page in slot s, or Empty
	pending  []bool   // P bit per row
	// back is the CAM as the hardware builds it: a dense reverse index over
	// the whole page-ID space (back[p] = slot holding page p, or -1). Only
	// migrated-fast pages (p >= N) ever hold an entry; the array replaces the
	// previous map so the hot-path reverse lookup is one indexed load with no
	// hashing and no allocation.
	back     []int32
	emptyRow int // row whose slot is empty; -1 in the N design

	// Fault-handling state: a retired row's slot is permanently out of
	// service (its frame faulted too often), and its page — when it held
	// data on-package — is exiled to a reserved spare frame past Ω.
	// Exiled pages are always < N, so the page -> spare-frame association is
	// a dense array indexed by page with Empty as the no-entry sentinel.
	retired     []bool
	exiledTo    []uint64 // exiledTo[p]: spare machine page of exiled page p, or Empty
	exiledCount int
	spares      uint64 // spare frames allocated so far

	pendingSets   uint64 // P-bit 0->1 transitions (observability)
	pendingClears uint64 // P-bit 1->0 transitions
}

// noSlot is the CAM's no-entry sentinel.
const noSlot = int32(-1)

// NewTable builds the initial identity mapping: pages 0..n-1 occupy slots
// 0..n-1. If sacrificeSlot is true (the N-1 and Live designs), the last
// slot starts empty and page n-1 starts as the Ghost page in Ω.
func NewTable(slots, totalPages uint64, sacrificeSlot bool) (*Table, error) {
	if slots == 0 || totalPages <= slots {
		return nil, fmt.Errorf("core: need 0 < slots(%d) < totalPages(%d)", slots, totalPages)
	}
	t := &Table{
		n:        slots,
		total:    totalPages,
		resident: make([]uint64, slots),
		pending:  make([]bool, slots),
		back:     make([]int32, totalPages),
		emptyRow: -1,
		retired:  make([]bool, slots),
		exiledTo: make([]uint64, slots),
	}
	for p := range t.back {
		t.back[p] = noSlot
	}
	for p := range t.exiledTo {
		t.exiledTo[p] = Empty
	}
	for s := range t.resident {
		t.resident[s] = uint64(s)
	}
	if sacrificeSlot {
		t.emptyRow = int(slots - 1)
		t.resident[t.emptyRow] = Empty
	}
	return t, nil
}

// Slots returns N, the number of on-package slots.
func (t *Table) Slots() uint64 { return t.n }

// TotalPages returns the number of macro pages in the memory space.
func (t *Table) TotalPages() uint64 { return t.total }

// Omega returns the reserved ghost page's machine page ID: the first page
// past the installed memory, reserved by the hardware driver after boot.
func (t *Table) Omega() uint64 { return t.total }

// EmptyRow returns the current empty row, or -1 (N design).
func (t *Table) EmptyRow() int { return t.emptyRow }

// Resident returns the page in slot s (Empty if none).
func (t *Table) Resident(s int) uint64 { return t.resident[s] }

// Pending reports row p's P bit.
func (t *Table) Pending(p uint64) bool { return p < t.n && t.pending[p] }

// SetPending sets or clears row p's P bit.
func (t *Table) SetPending(p uint64, v bool) {
	if p < t.n {
		if v && !t.pending[p] {
			t.pendingSets++
		} else if !v && t.pending[p] {
			t.pendingClears++
		}
		t.pending[p] = v
	}
}

// PendingTransitions returns the cumulative P-bit set and clear counts —
// the paper's mechanism for keeping every page reachable mid-swap, made
// countable for the observability layer.
func (t *Table) PendingTransitions() (sets, clears uint64) {
	return t.pendingSets, t.pendingClears
}

// SlotOf performs the CAM lookup: the slot holding page p, or -1.
// Pages p < N can only be in slot p (checked via the RAM side).
func (t *Table) SlotOf(p uint64) int {
	if p < t.n {
		if t.resident[p] == p {
			return int(p)
		}
		return -1
	}
	if p >= t.total {
		return -1
	}
	return int(t.back[p])
}

// Classify returns the paper's category for page p.
func (t *Table) Classify(p uint64) PageClass {
	if p >= t.total {
		return OriginalSlow
	}
	if p < t.n {
		if t.exiledTo[p] != Empty {
			return ExiledPage
		}
		switch {
		case t.resident[p] == p:
			return OriginalFast
		case t.resident[p] == Empty:
			return GhostPage
		default:
			return MigratedSlow
		}
	}
	if t.back[p] != noSlot {
		return MigratedFast
	}
	return OriginalSlow
}

// MachinePage translates physical page p to its machine page:
//   - on-package slots are machine pages 0..N-1,
//   - off-package homes keep their own IDs (machine page p for p >= N),
//   - Ω is machine page TotalPages().
//
// onPackage reports which region the machine page is in. This is the pure
// table translation; live-migration sub-block routing is layered on top by
// the Migrator.
func (t *Table) MachinePage(p uint64) (machine uint64, onPackage bool) {
	if p >= t.total {
		// Reserved/ghost page is not program-addressable; identity-map it.
		return p, false
	}
	if p < t.n {
		if spare := t.exiledTo[p]; spare != Empty {
			return spare, false // Exiled: slot retired, data at its spare frame
		}
		if t.pending[p] {
			return t.Omega(), false // P bit: RAM direction forced to Ω
		}
		switch r := t.resident[p]; {
		case r == p:
			return p, true // OF: own slot
		case r == Empty:
			return t.Omega(), false // Ghost: parked in Ω
		default:
			return r, false // MS: at partner r's off-package home
		}
	}
	if s := t.back[p]; s != noSlot {
		return uint64(s), true // MF: in slot s
	}
	return p, false // OS: own home
}

// Install records that page p now resides in slot s (CAM + RAM update).
func (t *Table) Install(s int, p uint64) error {
	if s < 0 || uint64(s) >= t.n {
		return fmt.Errorf("core: slot %d out of range", s)
	}
	if t.retired[s] {
		return fmt.Errorf("core: slot %d is retired", s)
	}
	if p < t.n && uint64(s) != p {
		return fmt.Errorf("core: page %d < N may only occupy its own slot, not %d", p, s)
	}
	// Drop the CAM entry of the page being overwritten — unless a swap step
	// has already re-homed that page to a different slot (mid-swap a page can
	// transiently have copies in two slots; the CAM tracks the live one).
	if old := t.resident[s]; old != Empty && old >= t.n && t.back[old] == int32(s) {
		t.back[old] = noSlot
	}
	t.resident[s] = p
	if p >= t.n && p != Empty {
		t.back[p] = int32(s)
	}
	if t.emptyRow == s {
		t.emptyRow = -1
	}
	return nil
}

// Vacate marks slot s empty (its original page becomes the Ghost).
func (t *Table) Vacate(s int) error {
	if s < 0 || uint64(s) >= t.n {
		return fmt.Errorf("core: slot %d out of range", s)
	}
	if t.retired[s] {
		return fmt.Errorf("core: slot %d is retired", s)
	}
	if old := t.resident[s]; old != Empty && old >= t.n && t.back[old] == int32(s) {
		t.back[old] = noSlot
	}
	t.resident[s] = Empty
	t.emptyRow = s
	return nil
}

// Retired reports whether slot s has been taken out of service.
func (t *Table) Retired(s int) bool {
	return s >= 0 && uint64(s) < t.n && t.retired[s]
}

// RetiredSlots counts slots taken out of service.
func (t *Table) RetiredSlots() int {
	n := 0
	for _, r := range t.retired {
		if r {
			n++
		}
	}
	return n
}

// Spares returns how many spare frames past Ω have been handed out to
// exiled pages. Legal machine pages therefore run up to Omega()+Spares().
func (t *Table) Spares() uint64 { return t.spares }

// ExiledTo returns the spare frame page p was exiled to, if any.
func (t *Table) ExiledTo(p uint64) (uint64, bool) {
	if p >= t.n || t.exiledTo[p] == Empty {
		return 0, false
	}
	return t.exiledTo[p], true
}

// RetireSlot takes slot s permanently out of service after repeated faults.
// The caller must have quiesced migration (no P bit on row s) and must have
// already copied the affected data:
//
//   - empty slot: nothing to copy; the table loses its empty row, so the
//     N-1 and Live designs can no longer swap (the caller degrades).
//   - OF resident (page s in its own slot): page s's data must be copied to
//     the returned spare frame before calling.
//   - MF resident q: frame q currently holds page s's data (MS) and slot s
//     holds page q's; page s's data must be copied to the spare and page q's
//     back to frame q — in that order — before calling.
//
// On return the slot reads Empty but is excluded from empty-row accounting,
// and page s (when it held data) translates to the spare frame forever.
func (t *Table) RetireSlot(s int) (spare uint64, exiledPage bool, err error) {
	if s < 0 || uint64(s) >= t.n {
		return 0, false, fmt.Errorf("core: slot %d out of range", s)
	}
	if t.retired[s] {
		return 0, false, fmt.Errorf("core: slot %d already retired", s)
	}
	if t.pending[s] {
		return 0, false, fmt.Errorf("core: cannot retire slot %d with P bit set", s)
	}
	switch r := t.resident[s]; {
	case r == Empty:
		if t.emptyRow != s {
			return 0, false, fmt.Errorf("core: slot %d empty but emptyRow=%d", s, t.emptyRow)
		}
		t.emptyRow = -1
	case r == uint64(s): // OF: page s loses its slot, exiled to a spare
		spare = t.Omega() + 1 + t.spares
		t.spares++
		t.setExiled(uint64(s), spare)
		t.resident[s] = Empty
		exiledPage = true
	default: // MF: page r returns home, page s exiled to a spare
		t.back[r] = noSlot
		spare = t.Omega() + 1 + t.spares
		t.spares++
		t.setExiled(uint64(s), spare)
		t.resident[s] = Empty
		exiledPage = true
	}
	t.retired[s] = true
	return spare, exiledPage, nil
}

// setExiled records page p's exile destination, keeping the entry count.
func (t *Table) setExiled(p, spare uint64) {
	if t.exiledTo[p] == Empty {
		t.exiledCount++
	}
	t.exiledTo[p] = spare
}

// TableSnapshot captures the mutable translation state (RAM rows, P bits,
// empty row) so an aborted swap can roll the table back. Retirement state
// is deliberately not captured: retirements only happen at quiescent points,
// never between a snapshot and its restore.
type TableSnapshot struct {
	resident []uint64
	pending  []bool
	emptyRow int
}

// Snapshot copies the current translation state.
func (t *Table) Snapshot() *TableSnapshot {
	return t.SnapshotInto(nil)
}

// SnapshotInto copies the current translation state into snap, reusing its
// buffers when the shape matches; nil (or a mismatched shape) gets a fresh
// snapshot. The returned snapshot is snap itself when it was reused, so
// callers taking a snapshot per swap can recycle one allocation for the
// life of the run.
func (t *Table) SnapshotInto(snap *TableSnapshot) *TableSnapshot {
	if snap == nil || len(snap.resident) != len(t.resident) || len(snap.pending) != len(t.pending) {
		snap = &TableSnapshot{
			resident: make([]uint64, len(t.resident)),
			pending:  make([]bool, len(t.pending)),
		}
	}
	copy(snap.resident, t.resident)
	copy(snap.pending, t.pending)
	snap.emptyRow = t.emptyRow
	return snap
}

// Restore rewinds the table to a snapshot, rebuilding the CAM from the
// restored RAM direction. P-bit transition counters keep counting through
// the restore so observability stays honest.
func (t *Table) Restore(snap *TableSnapshot) error {
	if snap == nil || len(snap.resident) != len(t.resident) {
		return fmt.Errorf("core: snapshot does not match table shape")
	}
	copy(t.resident, snap.resident)
	for p := range snap.pending {
		t.SetPending(uint64(p), snap.pending[p])
	}
	t.emptyRow = snap.emptyRow
	for p := range t.back {
		t.back[p] = noSlot
	}
	for s, r := range t.resident {
		if r != Empty && r >= t.n {
			t.back[r] = int32(s)
		}
	}
	return nil
}

// CheckInvariants validates the structural invariants the paper's design
// relies on; it is used by tests and property checks.
func (t *Table) CheckInvariants() error {
	empties := 0
	for s, r := range t.resident {
		if t.retired[s] {
			if r != Empty {
				return fmt.Errorf("core: retired slot %d holds page %d", s, r)
			}
			if t.emptyRow == s {
				return fmt.Errorf("core: emptyRow points at retired slot %d", s)
			}
			continue
		}
		switch {
		case r == Empty:
			empties++
			if t.emptyRow != s {
				return fmt.Errorf("core: slot %d empty but emptyRow=%d", s, t.emptyRow)
			}
		case r < t.n:
			if r != uint64(s) {
				return fmt.Errorf("core: page %d < N resident in foreign slot %d", r, s)
			}
		default:
			if got := t.back[r]; got != int32(s) {
				return fmt.Errorf("core: CAM out of sync for page %d in slot %d (cam=%d)", r, s, got)
			}
		}
	}
	if t.emptyRow >= 0 && empties != 1 {
		return fmt.Errorf("core: emptyRow=%d but %d empty slots", t.emptyRow, empties)
	}
	if t.emptyRow < 0 && empties != 0 {
		return fmt.Errorf("core: no emptyRow but %d empty slots", empties)
	}
	for p, s := range t.back {
		if s == noSlot {
			continue
		}
		if t.resident[s] != uint64(p) {
			return fmt.Errorf("core: CAM says page %d in slot %d, RAM says %d", p, s, t.resident[s])
		}
	}
	if uint64(t.exiledCount) > t.spares {
		return fmt.Errorf("core: %d exiled pages but only %d spares", t.exiledCount, t.spares)
	}
	seenSpare := make(map[uint64]bool, t.exiledCount)
	count := 0
	for pi, spare := range t.exiledTo {
		if spare == Empty {
			continue
		}
		count++
		p := uint64(pi)
		if !t.retired[p] {
			return fmt.Errorf("core: page %d exiled but slot %d not retired", p, p)
		}
		if spare <= t.Omega() || spare > t.Omega()+t.spares {
			return fmt.Errorf("core: page %d exiled to %d outside spare range", p, spare)
		}
		if seenSpare[spare] {
			return fmt.Errorf("core: spare frame %d exiled to twice", spare)
		}
		seenSpare[spare] = true
	}
	if count != t.exiledCount {
		return fmt.Errorf("core: exiled entry count %d != tracked %d", count, t.exiledCount)
	}
	return nil
}

// HardwareBits returns the pure-hardware cost in bits of managing
// onPkgBytes of on-package memory at macroPage granularity with subBlock
// live-migration chunks, reproducing the paper's accounting (Fig. 10 and
// the 9,228-bit example: 256 x 28 = 7,168 table bits + 1,024 fill-bitmap
// bits + 256 pseudo-LRU bits + 780 multi-queue bits).
func HardwareBits(onPkgBytes, macroPage, subBlock uint64, addrBits uint) uint64 {
	g := addr.MustPageGeom(macroPage)
	n := onPkgBytes / macroPage
	pageIDBits := uint64(addrBits) - uint64(g.OffsetBits())
	tableBits := n * (pageIDBits + 2) // right column + P bit + F bit
	fillBits := macroPage / subBlock  // live-migration bitmap
	lruBits := n                      // clock pseudo-LRU, 1 bit/slot
	const mqBits = 780                // 3 levels x 10 entries x 26-bit IDs
	return tableBits + fillBits + lruBits + mqBits
}
