package core

import (
	"sort"

	"heteromem/internal/snap"
)

// SnapshotTo writes the table's full mutable state: the RAM direction,
// P bits, empty row, retirement state, exile map, and the P-bit transition
// counters. The CAM is derived state and is rebuilt on restore. Shape
// (slot count, total pages) is a construction input and is validated.
func (t *Table) SnapshotTo(e *snap.Encoder) {
	e.U64(t.n)
	e.U64(t.total)
	for _, r := range t.resident {
		e.U64(r)
	}
	for _, p := range t.pending {
		e.Bool(p)
	}
	e.I64(int64(t.emptyRow))
	for _, r := range t.retired {
		e.Bool(r)
	}
	// Index order over the dense array is ascending-page order, matching the
	// sorted-by-page framing the map-backed encoder always wrote.
	e.U32(uint32(t.exiledCount))
	for p, spare := range t.exiledTo {
		if spare != Empty {
			e.U64(uint64(p))
			e.U64(spare)
		}
	}
	e.U64(t.spares)
	e.U64(t.pendingSets)
	e.U64(t.pendingClears)
}

// RestoreFrom reads the state written by SnapshotTo into a table built
// with the same shape. P bits are written directly (not via SetPending)
// so the serialized transition counters restore exactly.
func (t *Table) RestoreFrom(d *snap.Decoder) error {
	n := d.U64()
	total := d.U64()
	if d.Err() != nil {
		return d.Err()
	}
	if n != t.n || total != t.total {
		d.Invalid("table shape is %dx%d, snapshot has %dx%d", t.n, t.total, n, total)
		return d.Err()
	}
	for i := range t.resident {
		t.resident[i] = d.U64()
	}
	for i := range t.pending {
		t.pending[i] = d.Bool()
	}
	t.emptyRow = int(d.I64())
	for i := range t.retired {
		t.retired[i] = d.Bool()
	}
	ne := int(d.U32())
	if d.Err() != nil {
		return d.Err()
	}
	for i := range t.exiledTo {
		t.exiledTo[i] = Empty
	}
	t.exiledCount = 0
	for i := 0; i < ne; i++ {
		p := d.U64()
		spare := d.U64()
		if d.Err() != nil {
			return d.Err()
		}
		if p >= t.n {
			d.Invalid("exiled page %d out of range", p)
			return d.Err()
		}
		if t.exiledTo[p] != Empty {
			d.Invalid("exiled page %d appears twice", p)
			return d.Err()
		}
		t.setExiled(p, spare)
	}
	t.spares = d.U64()
	t.pendingSets = d.U64()
	t.pendingClears = d.U64()
	if d.Err() != nil {
		return d.Err()
	}
	if t.emptyRow < -1 || t.emptyRow >= int(t.n) {
		d.Invalid("empty row %d out of range", t.emptyRow)
		return d.Err()
	}
	for p := range t.back {
		t.back[p] = noSlot
	}
	for s, r := range t.resident {
		if r != Empty && r >= t.n {
			t.back[r] = int32(s)
		}
	}
	return d.Err()
}

// snapshotTo writes a rollback snapshot (the table state at swap start).
func (ts *TableSnapshot) snapshotTo(e *snap.Encoder) {
	e.U32(uint32(len(ts.resident)))
	for _, r := range ts.resident {
		e.U64(r)
	}
	for _, p := range ts.pending {
		e.Bool(p)
	}
	e.I64(int64(ts.emptyRow))
}

// restoreTableSnapshot reads a rollback snapshot for a table with n slots.
func restoreTableSnapshot(d *snap.Decoder, n uint64) *TableSnapshot {
	ln := int(d.U32())
	if d.Err() != nil {
		return nil
	}
	if uint64(ln) != n {
		d.Invalid("rollback snapshot covers %d slots, table has %d", ln, n)
		return nil
	}
	ts := &TableSnapshot{
		resident: make([]uint64, ln),
		pending:  make([]bool, ln),
	}
	for i := range ts.resident {
		ts.resident[i] = d.U64()
	}
	for i := range ts.pending {
		ts.pending[i] = d.Bool()
	}
	ts.emptyRow = int(d.I64())
	if d.Err() != nil {
		return nil
	}
	return ts
}

// rewoundTo builds a detached read-only view of the table as it stood at
// swap start: the snapshot's translation state over the current retirement
// state (retirements never happen mid-swap). Plan builders run against this
// view so a restored swap rebuilds the exact steps the original run built.
func (t *Table) rewoundTo(ts *TableSnapshot) *Table {
	tmp := &Table{
		n:           t.n,
		total:       t.total,
		resident:    append([]uint64(nil), ts.resident...),
		pending:     append([]bool(nil), ts.pending...),
		back:        make([]int32, t.total),
		emptyRow:    ts.emptyRow,
		retired:     t.retired,
		exiledTo:    t.exiledTo,
		exiledCount: t.exiledCount,
		spares:      t.spares,
	}
	for p := range tmp.back {
		tmp.back[p] = noSlot
	}
	for s, r := range tmp.resident {
		if r != Empty && r >= tmp.n {
			tmp.back[r] = int32(s)
		}
	}
	return tmp
}

// SnapshotTo writes the migrator's dynamic state: the table, the hotness
// trackers, the epoch counters, the in-flight swap (rebuilt on restore from
// the swap-start snapshot, since plan steps carry closures), the live-fill
// state, and the activity counters. Options and geometry are construction
// inputs.
func (m *Migrator) SnapshotTo(e *snap.Encoder) {
	m.table.SnapshotTo(e)
	m.mq.SnapshotTo(e)
	m.clock.SnapshotTo(e)

	e.U32(uint32(len(m.slotCount)))
	for _, c := range m.slotCount {
		e.U32(c)
	}
	e.Bool(m.naive != nil)
	if m.naive != nil {
		// Only this epoch's touched pages can be non-zero; sort them so the
		// framing matches the sorted-map encoding exactly.
		pages := make([]uint64, 0, len(m.naiveDirty))
		for _, p := range m.naiveDirty {
			if m.naive[p] != 0 {
				pages = append(pages, p)
			}
		}
		sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
		e.U32(uint32(len(pages)))
		for _, p := range pages {
			e.U64(p)
			e.U32(m.naive[p])
		}
	}
	nls := 0
	for _, s := range m.lastSub {
		if s >= 0 {
			nls++
		}
	}
	e.U32(uint32(nls))
	for p, s := range m.lastSub {
		if s >= 0 {
			e.U64(uint64(p))
			e.U32(uint32(s))
		}
	}
	e.U64(m.sinceTick)
	e.Bool(m.degraded)

	e.Bool(m.plan != nil)
	if m.plan != nil {
		e.U64(m.plan.MRU)
		e.I64(int64(m.plan.Victim))
		e.U32(uint32(m.stepIdx))
		e.U32(uint32(len(m.plan.Steps)))
		e.Bool(m.rollback)
		m.snap.snapshotTo(e)
	}

	e.Bool(m.fill.active)
	if m.fill.active {
		e.U64(m.fill.phys)
		e.U64(m.fill.dstSlot)
		e.U64(m.fill.old)
		e.U32(uint32(len(m.fill.done)))
		for _, b := range m.fill.done {
			e.Bool(b)
		}
	}

	e.U64(m.stats.Epochs)
	e.U64(m.stats.SwapsStarted)
	e.U64(m.stats.SwapsCompleted)
	e.U64(m.stats.TriggersBlocked)
	e.U64(m.stats.TriggersCold)
	e.U64(m.stats.PagesCopied)
	e.U64(m.stats.BytesCopied)
	e.U64(m.stats.LiveEarlyHits)
	e.U64(m.stats.SwapsRolledBack)
	e.U64(m.stats.SlotsRetired)
}

// RestoreFrom reads the state written by SnapshotTo into a migrator built
// with the same options. An in-flight swap's plan is rebuilt by running the
// design's plan builder against the table rewound to the serialized
// swap-start snapshot, which reproduces the original steps exactly (the
// builders are deterministic functions of that state).
func (m *Migrator) RestoreFrom(d *snap.Decoder) error {
	if err := m.table.RestoreFrom(d); err != nil {
		return err
	}
	if err := m.mq.RestoreFrom(d); err != nil {
		return err
	}
	if err := m.clock.RestoreFrom(d); err != nil {
		return err
	}

	nc := int(d.U32())
	if d.Err() != nil {
		return d.Err()
	}
	if nc != len(m.slotCount) {
		d.Invalid("migrator tracks %d slots, snapshot has %d", len(m.slotCount), nc)
		return d.Err()
	}
	for i := range m.slotCount {
		m.slotCount[i] = d.U32()
	}
	hasNaive := d.Bool()
	if d.Err() != nil {
		return d.Err()
	}
	if hasNaive != (m.naive != nil) {
		d.Invalid("naive-MRU tracker presence mismatch")
		return d.Err()
	}
	if hasNaive {
		nn := int(d.U32())
		if d.Err() != nil {
			return d.Err()
		}
		for i := range m.naive {
			m.naive[i] = 0
		}
		m.naiveDirty = m.naiveDirty[:0]
		for i := 0; i < nn; i++ {
			p := d.U64()
			c := d.U32()
			if d.Err() != nil {
				return d.Err()
			}
			if p >= uint64(len(m.naive)) {
				d.Invalid("naive-MRU page %d out of range", p)
				return d.Err()
			}
			if m.naive[p] == 0 && c != 0 {
				m.naiveDirty = append(m.naiveDirty, p)
			}
			m.naive[p] = c
		}
	}
	ns := int(d.U32())
	if d.Err() != nil {
		return d.Err()
	}
	for i := range m.lastSub {
		m.lastSub[i] = -1
	}
	for i := 0; i < ns; i++ {
		p := d.U64()
		s := d.U32()
		if d.Err() != nil {
			return d.Err()
		}
		if p >= uint64(len(m.lastSub)) {
			d.Invalid("lastSub page %d out of range", p)
			return d.Err()
		}
		m.lastSub[p] = int32(s)
	}
	m.sinceTick = d.U64()
	m.degraded = d.Bool()

	hasPlan := d.Bool()
	if d.Err() != nil {
		return d.Err()
	}
	m.plan, m.snap, m.stepIdx, m.rollback = nil, nil, 0, false
	if hasPlan {
		mru := d.U64()
		victim := int(d.I64())
		stepIdx := int(d.U32())
		nsteps := int(d.U32())
		rollback := d.Bool()
		ts := restoreTableSnapshot(d, m.table.Slots())
		if d.Err() != nil {
			return d.Err()
		}
		var (
			plan *Plan
			err  error
		)
		if m.opt.Design == DesignN {
			plan, err = BuildPlanN(m.table.rewoundTo(ts), mru, victim)
		} else {
			plan, err = BuildPlanN1(m.table.rewoundTo(ts), mru, victim)
		}
		if err != nil {
			d.Invalid("cannot rebuild swap plan for page %d, victim %d: %v", mru, victim, err)
			return d.Err()
		}
		if len(plan.Steps) != nsteps {
			d.Invalid("rebuilt plan has %d steps, snapshot recorded %d", len(plan.Steps), nsteps)
			return d.Err()
		}
		if stepIdx < 0 || stepIdx >= nsteps {
			d.Invalid("swap step index %d out of range (%d steps)", stepIdx, nsteps)
			return d.Err()
		}
		m.plan, m.snap, m.stepIdx, m.rollback = plan, ts, stepIdx, rollback
		m.scratch = ts // recycle the restored snapshot's buffers for later swaps
	}

	m.fill.active = d.Bool()
	m.fill.phys, m.fill.dstSlot, m.fill.old, m.fill.done = 0, 0, 0, nil
	if d.Err() != nil {
		return d.Err()
	}
	if m.fill.active {
		m.fill.phys = d.U64()
		m.fill.dstSlot = d.U64()
		m.fill.old = d.U64()
		nd := int(d.U32())
		if d.Err() != nil {
			return d.Err()
		}
		if nd != m.SubBlocksPerPage() {
			d.Invalid("fill bitmap has %d bits, page has %d sub-blocks", nd, m.SubBlocksPerPage())
			return d.Err()
		}
		m.fill.done = make([]bool, nd)
		for i := range m.fill.done {
			m.fill.done[i] = d.Bool()
		}
	}

	m.stats.Epochs = d.U64()
	m.stats.SwapsStarted = d.U64()
	m.stats.SwapsCompleted = d.U64()
	m.stats.TriggersBlocked = d.U64()
	m.stats.TriggersCold = d.U64()
	m.stats.PagesCopied = d.U64()
	m.stats.BytesCopied = d.U64()
	m.stats.LiveEarlyHits = d.U64()
	m.stats.SwapsRolledBack = d.U64()
	m.stats.SlotsRetired = d.U64()
	return d.Err()
}
