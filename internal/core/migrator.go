package core

import (
	"fmt"

	"heteromem/internal/addr"
	"heteromem/internal/policy"
)

// Design selects the migration algorithm of Section III-A.
type Design int

// The three evaluated designs.
const (
	DesignN    Design = iota // basic: all N slots used, swap stalls execution
	DesignN1                 // one slot sacrificed, P bit hides swap latency
	DesignLive               // N-1 plus F bit + sub-block bitmap (critical-data-first)
)

// String names the design the way the paper's figures do.
func (d Design) String() string {
	switch d {
	case DesignN:
		return "N"
	case DesignN1:
		return "N-1"
	case DesignLive:
		return "Live"
	default:
		return fmt.Sprintf("Design(%d)", int(d))
	}
}

// Options configures a Migrator.
type Options struct {
	Design       Design
	Slots        uint64 // N: on-package macro-page slots
	TotalPages   uint64 // macro pages covering the whole memory space
	PageSize     uint64 // macro-page size in bytes
	SubBlockSize uint64 // live-migration sub-block (Table III: 4 KB)
	SwapInterval uint64 // memory accesses per monitoring epoch
	MQLevels     int    // multi-queue shape; zero selects the paper's 3
	MQPerLevel   int    // zero selects the paper's 10
	NaiveMRU     bool   // ablation: replace the multi-queue with a plain per-epoch counter

	// NoCriticalFirst (ablation) starts live-migration copies at sub-block
	// 0 instead of the MRU sub-block, isolating the critical-data-first
	// contribution.
	NoCriticalFirst bool

	// Victim selects the on-package victim policy: the paper's clock
	// pseudo-LRU by default, or an ablation alternative.
	Victim VictimPolicy
}

// VictimPolicy selects how the coldest on-package slot is found.
type VictimPolicy int

// Victim policies.
const (
	VictimClockPLRU VictimPolicy = iota // the paper's design (default)
	VictimRandom                        // ablation: LFSR victim
	VictimFIFO                          // ablation: rotation victim
)

// String names the policy.
func (v VictimPolicy) String() string {
	switch v {
	case VictimClockPLRU:
		return "clock-plru"
	case VictimRandom:
		return "random"
	case VictimFIFO:
		return "fifo"
	default:
		return fmt.Sprintf("VictimPolicy(%d)", int(v))
	}
}

// SubCopy is one sub-block leg of the current step, in machine byte
// addresses (the simulator turns these into bus transfers).
type SubCopy struct {
	Src      uint64
	Dst      uint64
	Bytes    uint64
	SubIndex int  // index within the page (for live bitmap updates)
	Exchange bool // traffic flows both ways
}

// Stats counts migrator activity.
type Stats struct {
	Epochs          uint64
	SwapsStarted    uint64
	SwapsCompleted  uint64
	TriggersBlocked uint64 // epoch wanted to swap but one was in flight
	TriggersCold    uint64 // epoch ended with MRU not hotter than LRU
	PagesCopied     uint64
	BytesCopied     uint64
	LiveEarlyHits   uint64 // accesses served on-package thanks to the fill bitmap
	SwapsRolledBack uint64 // swaps aborted and unwound after fault-retry exhaustion
	SlotsRetired    uint64 // on-package slots taken out of service
}

// Merge folds another migrator's statistics into s (every field is a
// monotonic count, so the machine-wide view of per-channel migrators is
// their field-wise sum).
func (s *Stats) Merge(other Stats) {
	s.Epochs += other.Epochs
	s.SwapsStarted += other.SwapsStarted
	s.SwapsCompleted += other.SwapsCompleted
	s.TriggersBlocked += other.TriggersBlocked
	s.TriggersCold += other.TriggersCold
	s.PagesCopied += other.PagesCopied
	s.BytesCopied += other.BytesCopied
	s.LiveEarlyHits += other.LiveEarlyHits
	s.SwapsRolledBack += other.SwapsRolledBack
	s.SlotsRetired += other.SlotsRetired
}

// Migrator is the migration controller of Fig. 3: it owns the translation
// table, the hotness trackers, and the in-flight swap state, and hands the
// simulator the copy traffic to execute.
type Migrator struct {
	opt   Options
	geom  addr.PageGeom
	table *Table
	mq    *policy.MultiQueue
	clock policy.VictimSelector

	slotCount []uint32 // per-slot access counts for the current epoch
	// naive (ablation) is a dense per-page counter plus the list of pages
	// touched this epoch, so an epoch reset clears only what was dirtied
	// instead of rehashing a map.
	naive      []uint32
	naiveDirty []uint64
	// lastSub[p] is the last accessed sub-block of off-package page p
	// (critical-first seed), -1 when untouched. Dense so the per-access
	// update is one indexed store instead of a map insert.
	lastSub   []int32
	sinceTick uint64

	plan    *Plan
	stepIdx int

	snap     *TableSnapshot // table state at swap start, for rollback
	scratch  *TableSnapshot // recycled snapshot buffers (snap aliases it mid-swap)
	rollback bool           // in-flight swap is being unwound
	degraded bool           // migration frozen; current mapping is final

	fill struct {
		active  bool
		phys    uint64 // MRU physical page being filled
		dstSlot uint64 // destination machine page (on-package slot)
		old     uint64 // machine page of the still-valid stale copy
		done    []bool
	}

	stats Stats
}

// NewMigrator validates opt and builds the controller with the identity
// initial mapping (lowest memory on-package).
func NewMigrator(opt Options) (*Migrator, error) {
	if opt.SwapInterval == 0 {
		return nil, fmt.Errorf("core: swap interval must be positive")
	}
	if opt.SubBlockSize == 0 || opt.PageSize%opt.SubBlockSize != 0 {
		return nil, fmt.Errorf("core: page size %d not a multiple of sub-block %d", opt.PageSize, opt.SubBlockSize)
	}
	g, err := addr.NewPageGeom(opt.PageSize)
	if err != nil {
		return nil, err
	}
	table, err := NewTable(opt.Slots, opt.TotalPages, opt.Design != DesignN)
	if err != nil {
		return nil, err
	}
	levels, per := opt.MQLevels, opt.MQPerLevel
	if levels == 0 {
		levels = 3
	}
	if per == 0 {
		per = 10
	}
	mq, err := policy.NewMultiQueue(levels, per)
	if err != nil {
		return nil, err
	}
	var clock policy.VictimSelector
	switch opt.Victim {
	case VictimClockPLRU:
		clock, err = policy.NewClockPLRU(int(opt.Slots))
	case VictimRandom:
		clock, err = policy.NewRandomVictim(int(opt.Slots), 0x5eed)
	case VictimFIFO:
		clock, err = policy.NewFIFOVictim(int(opt.Slots))
	default:
		return nil, fmt.Errorf("core: unknown victim policy %v", opt.Victim)
	}
	if err != nil {
		return nil, err
	}
	m := &Migrator{
		opt:       opt,
		geom:      g,
		table:     table,
		mq:        mq,
		clock:     clock,
		slotCount: make([]uint32, opt.Slots),
		lastSub:   make([]int32, opt.TotalPages),
	}
	for i := range m.lastSub {
		m.lastSub[i] = -1
	}
	if opt.NaiveMRU {
		m.naive = make([]uint32, opt.TotalPages)
	}
	if er := table.EmptyRow(); er >= 0 {
		clock.Pin(er)
	}
	return m, nil
}

// Table exposes the translation table (read-mostly; tests and reports).
func (m *Migrator) Table() *Table { return m.table }

// Stats returns a copy of the activity counters.
func (m *Migrator) Stats() Stats { return m.stats }

// Epochs returns the epoch count alone, without copying the whole Stats
// struct — the controller compares it around every EpochTick, so this sits
// on the per-access hot path.
func (m *Migrator) Epochs() uint64 { return m.stats.Epochs }

// Design returns the configured migration design.
func (m *Migrator) Design() Design { return m.opt.Design }

// SubBlocksPerPage returns the live-migration bitmap width.
func (m *Migrator) SubBlocksPerPage() int { return int(m.opt.PageSize / m.opt.SubBlockSize) }

// Translate maps a physical byte address to (machine byte address,
// onPackage). It layers the live-migration sub-block routing over the
// table translation and costs the paper's 2-cycle RAM+CAM lookup (charged
// by the controller, not here).
func (m *Migrator) Translate(phys uint64) (machine uint64, onPackage bool) {
	p := m.geom.PageOf(phys)
	off := m.geom.OffsetOf(phys)
	if m.fill.active && p == m.fill.phys {
		sub := int(off / m.opt.SubBlockSize)
		if m.fill.done[sub] {
			m.stats.LiveEarlyHits++
			return m.geom.Join(m.fill.dstSlot, off), true
		}
		return m.geom.Join(m.fill.old, off), false
	}
	mp, on := m.table.MachinePage(p)
	return m.geom.Join(mp, off), on
}

// OnAccess feeds one program access into the hotness trackers. onPackage
// must be the routing Translate returned for the same access.
func (m *Migrator) OnAccess(phys uint64, onPackage bool) {
	if m.degraded {
		return // mapping is frozen; hotness tracking is pointless
	}
	p := m.geom.PageOf(phys)
	if p >= m.table.total {
		return // reserved pages are not tracked
	}
	if p < m.table.n && m.table.exiledTo[p] != Empty {
		return // exiled pages can never re-promote (their slot is dead)
	}
	if onPackage {
		mp, _ := m.table.MachinePage(p)
		if m.fill.active && p == m.fill.phys {
			mp = m.fill.dstSlot
		}
		if mp < m.table.Slots() {
			m.clock.Touch(int(mp))
			m.slotCount[mp]++
		}
		return
	}
	if m.naive != nil {
		if m.naive[p] == 0 {
			m.naiveDirty = append(m.naiveDirty, p)
		}
		m.naive[p]++
	} else {
		m.mq.Touch(p)
	}
	m.lastSub[p] = int32(m.geom.OffsetOf(phys) / m.opt.SubBlockSize)
}

// EpochTick advances the epoch counter by one access; when the swap
// interval elapses it evaluates the hottest-coldest trigger and, if a swap
// starts, returns the first step's sub-copies. A nil slice means no swap
// started this access.
func (m *Migrator) EpochTick() []SubCopy {
	if m.degraded {
		return nil
	}
	m.sinceTick++
	if m.sinceTick < m.opt.SwapInterval {
		return nil
	}
	m.sinceTick = 0
	m.stats.Epochs++

	if m.plan != nil {
		// "The existence of P bit and F bit prevents triggering another
		// swap if the previous swap is not complete yet."
		m.stats.TriggersBlocked++
		m.resetEpochCounts()
		return nil
	}

	if !m.CanSwap() {
		// The empty row was retired; the N-1/Live designs have no room left.
		m.resetEpochCounts()
		return nil
	}

	mru, hot, ok := m.hottest()
	if !ok {
		m.resetEpochCounts()
		return nil
	}
	victim := m.clock.Victim()
	if victim < 0 {
		m.resetEpochCounts()
		return nil
	}
	if uint64(hot) <= uint64(m.slotCount[victim]) {
		m.stats.TriggersCold++
		m.resetEpochCounts()
		return nil
	}

	var (
		plan *Plan
		err  error
	)
	if m.opt.Design == DesignN {
		plan, err = BuildPlanN(m.table, mru, victim)
	} else {
		plan, err = BuildPlanN1(m.table, mru, victim)
	}
	if err != nil {
		// Non-promotable corner (e.g. the page migrated in the same epoch);
		// skip this epoch rather than wedging the controller.
		m.resetEpochCounts()
		return nil
	}
	m.plan = plan
	m.stepIdx = 0
	// Rollback point if the swap must abort. The scratch snapshot is
	// recycled across swaps (a new swap only starts once the previous
	// one's snap is cleared), so steady-state swapping allocates nothing
	// here.
	m.scratch = m.table.SnapshotInto(m.scratch)
	m.snap = m.scratch
	m.stats.SwapsStarted++
	m.resetEpochCounts()
	return m.startStep()
}

// resetEpochCounts starts a fresh monitoring epoch: the controller compares
// hotness "during the last period of execution", so both the per-slot
// counters and the off-package trackers reset at every epoch boundary.
func (m *Migrator) resetEpochCounts() {
	for i := range m.slotCount {
		m.slotCount[i] = 0
	}
	if m.naive != nil {
		for _, p := range m.naiveDirty {
			m.naive[p] = 0
		}
		m.naiveDirty = m.naiveDirty[:0]
	} else {
		m.mq.Reset()
	}
}

// hottest returns the off-package MRU page and its heat.
func (m *Migrator) hottest() (page uint64, heat uint32, ok bool) {
	if m.naive != nil {
		var best uint64
		var bestC uint32
		for _, p := range m.naiveDirty {
			c := m.naive[p]
			if c > bestC || (c == bestC && c > 0 && p < best) {
				best, bestC = p, c
			}
		}
		return best, bestC, bestC > 0
	}
	p, ok := m.mq.Hottest()
	if !ok {
		return 0, 0, false
	}
	c := m.mq.Count(p)
	if c > uint32max {
		c = uint32max
	}
	return p, uint32(c), true
}

const uint32max = 1<<32 - 1

// SwapInFlight reports whether a swap is executing.
func (m *Migrator) SwapInFlight() bool { return m.plan != nil }

// CurrentPlan describes the in-flight swap for observers: the physical
// page being promoted, the victim slot, the current step index, and the
// total step count. ok is false when no swap is in flight.
func (m *Migrator) CurrentPlan() (mru uint64, victim int, step, steps int, ok bool) {
	if m.plan == nil {
		return 0, 0, 0, 0, false
	}
	return m.plan.MRU, m.plan.Victim, m.stepIdx, len(m.plan.Steps), true
}

// CurrentStep returns the in-flight step, if any.
func (m *Migrator) CurrentStep() (Step, bool) {
	if m.plan == nil || m.stepIdx >= len(m.plan.Steps) {
		return Step{}, false
	}
	return m.plan.Steps[m.stepIdx], true
}

// startStep materializes the current step's sub-copies and arms the live
// fill state when applicable. Copy order is critical-data-first for live
// critical steps: start at the most recently touched sub-block and wrap.
func (m *Migrator) startStep() []SubCopy {
	st := m.plan.Steps[m.stepIdx]
	nsub := m.SubBlocksPerPage()
	start := 0
	if st.Critical && m.opt.Design == DesignLive {
		if s := int(m.lastSub[m.plan.MRU]); s >= 0 && s < nsub && !m.opt.NoCriticalFirst {
			start = s
		}
		m.fill.active = true
		m.fill.phys = m.plan.MRU
		m.fill.dstSlot = st.Dst
		m.fill.old = st.OldMachine
		m.fill.done = make([]bool, nsub)
	}
	subs := make([]SubCopy, 0, nsub)
	for i := 0; i < nsub; i++ {
		sub := (start + i) % nsub
		off := uint64(sub) * m.opt.SubBlockSize
		subs = append(subs, SubCopy{
			Src:      m.geom.Join(st.Src, off),
			Dst:      m.geom.Join(st.Dst, off),
			Bytes:    m.opt.SubBlockSize,
			SubIndex: sub,
			Exchange: st.Exchange,
		})
	}
	return subs
}

// SubDone marks one sub-block of the current step as copied; for live
// critical steps this flips the bitmap bit that redirects subsequent
// accesses on-package.
func (m *Migrator) SubDone(subIndex int) {
	if m.fill.active && subIndex >= 0 && subIndex < len(m.fill.done) {
		m.fill.done[subIndex] = true
	}
}

// StepDone applies the completed step's table mutation and returns the next
// step's sub-copies; done reports whether the whole swap finished.
func (m *Migrator) StepDone() (next []SubCopy, done bool, err error) {
	if m.plan == nil {
		return nil, true, fmt.Errorf("core: StepDone with no swap in flight")
	}
	if m.rollback {
		return nil, true, fmt.Errorf("core: StepDone while rolling back")
	}
	st := m.plan.Steps[m.stepIdx]
	if st.Critical {
		m.fill.active = false
		m.fill.done = nil
	}
	if err := st.mutate(m.table); err != nil {
		m.plan = nil
		return nil, true, fmt.Errorf("core: swap step %q: %w", st.Label, err)
	}
	m.stats.PagesCopied++
	m.stats.BytesCopied += m.opt.PageSize
	if st.Exchange {
		m.stats.PagesCopied++
		m.stats.BytesCopied += m.opt.PageSize
	}
	m.stepIdx++
	if m.stepIdx >= len(m.plan.Steps) {
		m.finishSwap()
		return nil, true, nil
	}
	return m.startStep(), false, nil
}

func (m *Migrator) finishSwap() {
	mru := m.plan.MRU
	m.plan = nil
	m.snap = nil
	m.stats.SwapsCompleted++
	m.mq.Remove(mru)
	m.lastSub[mru] = -1
	// Keep the (possibly moved) empty slot pinned and give the freshly
	// promoted page a grace period by marking it referenced.
	m.repinSlots()
	if s := m.table.SlotOf(mru); s >= 0 {
		m.clock.Touch(s)
	}
}

// repinSlots rebuilds the victim selector's pin set: retired slots and the
// empty row stay pinned, everything else becomes eligible again.
func (m *Migrator) repinSlots() {
	for s := uint64(0); s < m.table.Slots(); s++ {
		if m.table.Retired(int(s)) {
			continue // pinned forever
		}
		m.clock.Unpin(int(s))
	}
	if er := m.table.EmptyRow(); er >= 0 {
		m.clock.Pin(er)
	}
}

// CanSwap reports whether the design still has the structural room to swap:
// the N design always does, the N-1 and Live designs need their empty row
// (lost if the empty slot itself is retired).
func (m *Migrator) CanSwap() bool {
	return m.opt.Design == DesignN || m.table.EmptyRow() >= 0
}

// RollingBack reports whether the in-flight swap is being unwound.
func (m *Migrator) RollingBack() bool { return m.rollback }

// Degraded reports whether migration has been permanently frozen.
func (m *Migrator) Degraded() bool { return m.degraded }

// Degrade freezes migration forever: no more epochs, swaps, or hotness
// tracking. The current mapping stays live (accesses still translate), so
// the machine keeps running — slower, but correct. The caller must have
// quiesced any in-flight swap first.
func (m *Migrator) Degrade() {
	m.degraded = true
	m.fill.active = false
	m.fill.done = nil
}

// RestartStep re-materializes the current step's sub-copies after a
// step-completion fault, so the controller can re-run the whole step.
func (m *Migrator) RestartStep() ([]SubCopy, error) {
	if m.plan == nil || m.rollback {
		return nil, fmt.Errorf("core: RestartStep with no forward swap in flight")
	}
	return m.startStep(), nil
}

// AbortSwap abandons the in-flight swap and returns the ordered undo
// copy traffic that rewinds the data movement:
//
//   - If the current (incomplete) step is an exchange, its already-copied
//     sub-blocks (partialSubs) are re-exchanged first — a partial exchange
//     is the only forward copy that destroys data in place. Partial plain
//     copies need no undo: their destination frame holds no live page under
//     the snapshot mapping.
//   - Completed steps are then undone in reverse order with full-page
//     copies Dst -> Src (forward copies never destroyed their source, so
//     the source frame is rebuilt from the still-live destination copy).
//
// The table keeps its mid-swap state — still consistent, every page
// reachable via the P-bit protocol — until RollbackDone restores the
// snapshot. Accesses may continue while the undo traffic drains.
func (m *Migrator) AbortSwap(partialSubs []int) ([]SubCopy, error) {
	if m.plan == nil {
		return nil, fmt.Errorf("core: AbortSwap with no swap in flight")
	}
	if m.rollback {
		return nil, fmt.Errorf("core: AbortSwap while already rolling back")
	}
	m.rollback = true
	m.fill.active = false
	m.fill.done = nil
	var undo []SubCopy
	if m.stepIdx < len(m.plan.Steps) {
		if st := m.plan.Steps[m.stepIdx]; st.Exchange {
			for i := len(partialSubs) - 1; i >= 0; i-- {
				sub := partialSubs[i]
				off := uint64(sub) * m.opt.SubBlockSize
				undo = append(undo, SubCopy{
					Src:      m.geom.Join(st.Dst, off),
					Dst:      m.geom.Join(st.Src, off),
					Bytes:    m.opt.SubBlockSize,
					SubIndex: -1,
					Exchange: true,
				})
			}
		}
	}
	for i := m.stepIdx - 1; i >= 0; i-- {
		st := m.plan.Steps[i]
		undo = append(undo, SubCopy{
			Src:      m.geom.Join(st.Dst, 0),
			Dst:      m.geom.Join(st.Src, 0),
			Bytes:    m.opt.PageSize,
			SubIndex: -1,
			Exchange: st.Exchange,
		})
	}
	return undo, nil
}

// RollbackDone restores the swap-start snapshot once the undo traffic has
// drained (or been abandoned, when the caller is degrading anyway). The
// promoted page stays in the off-package tracker so a later epoch can try
// again.
func (m *Migrator) RollbackDone() error {
	if m.plan == nil || !m.rollback {
		return fmt.Errorf("core: RollbackDone with no rollback in flight")
	}
	if err := m.table.Restore(m.snap); err != nil {
		return err
	}
	m.plan = nil
	m.snap = nil
	m.rollback = false
	m.stepIdx = 0
	m.stats.SwapsRolledBack++
	m.repinSlots()
	return nil
}

// RetireSlot takes on-package slot s out of service after repeated faults
// and returns the ordered copy traffic that evacuates it. Only legal at a
// quiescent point (no swap in flight). Depending on the slot's occupant:
//
//   - empty slot: no traffic; the N-1/Live designs lose their empty row and
//     can no longer swap (CanSwap turns false — the caller degrades).
//   - page s in its own slot (OF): one copy, slot -> spare frame.
//   - migrated page q in the slot (MF): page s's data sits at frame q; copy
//     frame q -> spare first (rescue page s), then slot -> frame q (send
//     page q home). Order matters: the second copy overwrites the first's
//     source.
//
// The slot is pinned in the victim selector forever and the exiled page can
// never re-promote; the design degrades toward an (N-1)-shaped layout with
// the retired slot as a hole.
func (m *Migrator) RetireSlot(s int) ([]SubCopy, error) {
	if m.plan != nil {
		return nil, fmt.Errorf("core: RetireSlot with swap in flight")
	}
	if s < 0 || uint64(s) >= m.table.Slots() {
		return nil, fmt.Errorf("core: retire slot %d out of range", s)
	}
	var copies []SubCopy
	spare := m.table.Omega() + 1 + m.table.Spares() // frame RetireSlot will assign
	switch r := m.table.Resident(s); {
	case r == Empty:
		// Nothing stored; no traffic.
	case r == uint64(s):
		copies = append(copies, SubCopy{
			Src:      m.geom.Join(uint64(s), 0),
			Dst:      m.geom.Join(spare, 0),
			Bytes:    m.opt.PageSize,
			SubIndex: -1,
		})
	default:
		copies = append(copies,
			SubCopy{
				Src:      m.geom.Join(r, 0),
				Dst:      m.geom.Join(spare, 0),
				Bytes:    m.opt.PageSize,
				SubIndex: -1,
			},
			SubCopy{
				Src:      m.geom.Join(uint64(s), 0),
				Dst:      m.geom.Join(r, 0),
				Bytes:    m.opt.PageSize,
				SubIndex: -1,
			})
	}
	if _, _, err := m.table.RetireSlot(s); err != nil {
		return nil, err
	}
	m.clock.Pin(s)
	m.mq.Remove(uint64(s))
	m.lastSub[s] = -1
	if m.naive != nil {
		m.naive[s] = 0
	}
	m.stats.SlotsRetired++
	return copies, nil
}
