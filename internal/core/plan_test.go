package core

import "testing"

// planFixture builds a table in a known state:
//   - slot 2 holds page 20 (MF); page 2 is MS at page 20's home
//   - slot 5 empty (page 5 is the Ghost in Ω)
//   - everything else identity-mapped
func planFixture(t *testing.T) *Table {
	t.Helper()
	tb := newTestTable(t, 8, 64, true)
	if err := tb.Vacate(5); err != nil {
		t.Fatal(err)
	}
	// Slot 7 (the initial empty) gets its page back for a clean fixture.
	if err := tb.Install(7, 7); err != nil {
		t.Fatal(err)
	}
	if err := tb.Install(2, 20); err != nil {
		t.Fatal(err)
	}
	if err := tb.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	return tb
}

// execute runs a plan to completion, checking invariants at the end.
func execute(t *testing.T, tb *Table, plan *Plan) {
	t.Helper()
	for _, st := range plan.Steps {
		if err := st.mutate(tb); err != nil {
			t.Fatalf("step %q: %v", st.Label, err)
		}
	}
	if err := tb.CheckInvariants(); err != nil {
		t.Fatalf("invariants after swap: %v", err)
	}
}

func TestPlanCaseA_OSMruOFVictim(t *testing.T) {
	tb := planFixture(t)
	plan, err := BuildPlanN1(tb, 30, 1) // OS page 30, OF victim slot 1
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Steps) != 3 {
		t.Fatalf("case (a) has %d steps, want 3 (Fig. 8a)", len(plan.Steps))
	}
	if !plan.Steps[0].Critical {
		t.Fatal("first step (MRU -> empty slot) must be the critical one")
	}
	execute(t, tb, plan)
	if mp, on := tb.MachinePage(30); !on || mp != 5 {
		t.Fatalf("page 30 -> (%d,%v), want old empty slot 5 on-package", mp, on)
	}
	// Page 5 (old ghost) now lives at page 30's home.
	if mp, on := tb.MachinePage(5); on || mp != 30 {
		t.Fatalf("page 5 -> (%d,%v), want 30's home off-package", mp, on)
	}
	// The victim became the new ghost.
	if tb.Classify(1) != GhostPage || tb.EmptyRow() != 1 {
		t.Fatalf("victim page 1 class %v, empty row %d", tb.Classify(1), tb.EmptyRow())
	}
}

func TestPlanCaseB_OSMruMFVictim(t *testing.T) {
	tb := planFixture(t)
	plan, err := BuildPlanN1(tb, 30, 2) // OS page 30, MF victim (slot 2 holds 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Steps) != 4 {
		t.Fatalf("case (b) has %d steps, want 4 (Fig. 8b)", len(plan.Steps))
	}
	execute(t, tb, plan)
	if mp, on := tb.MachinePage(30); !on || mp != 5 {
		t.Fatalf("page 30 -> (%d,%v)", mp, on)
	}
	// The evicted MF page 20 went back to its own home.
	if mp, on := tb.MachinePage(20); on || mp != 20 {
		t.Fatalf("page 20 -> (%d,%v), want its home", mp, on)
	}
	// Victim page 2 is the new ghost.
	if tb.Classify(2) != GhostPage {
		t.Fatalf("page 2 class %v, want Ghost", tb.Classify(2))
	}
}

func TestPlanCaseC_MSMruOFVictim(t *testing.T) {
	tb := planFixture(t)
	plan, err := BuildPlanN1(tb, 2, 1) // MS page 2 (partner 20 in slot 2), OF victim slot 1
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Steps) != 4 {
		t.Fatalf("case (c) has %d steps, want 4 (Fig. 8c)", len(plan.Steps))
	}
	execute(t, tb, plan)
	// MS page 2 is home again.
	if mp, on := tb.MachinePage(2); !on || mp != 2 {
		t.Fatalf("page 2 -> (%d,%v), want its own slot", mp, on)
	}
	// Its partner 20 moved to the old empty slot (stays on-package).
	if mp, on := tb.MachinePage(20); !on || mp != 5 {
		t.Fatalf("page 20 -> (%d,%v), want slot 5", mp, on)
	}
	if tb.Classify(1) != GhostPage {
		t.Fatalf("victim class %v", tb.Classify(1))
	}
}

func TestPlanCaseD_MSMruMFVictim(t *testing.T) {
	tb := planFixture(t)
	// Add a second MF pair: slot 3 holds page 40.
	if err := tb.Install(3, 40); err != nil {
		t.Fatal(err)
	}
	plan, err := BuildPlanN1(tb, 2, 3) // MS page 2, MF victim (slot 3 holds 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Steps) != 5 {
		t.Fatalf("case (d) has %d steps, want 5 (Fig. 8d's ten-step walkthrough)", len(plan.Steps))
	}
	execute(t, tb, plan)
	if mp, on := tb.MachinePage(2); !on || mp != 2 {
		t.Fatalf("page 2 -> (%d,%v)", mp, on)
	}
	if mp, on := tb.MachinePage(20); !on || mp != 5 {
		t.Fatalf("page 20 -> (%d,%v)", mp, on)
	}
	if mp, on := tb.MachinePage(40); on || mp != 40 {
		t.Fatalf("evicted page 40 -> (%d,%v), want home", mp, on)
	}
	if tb.Classify(3) != GhostPage {
		t.Fatalf("victim class %v", tb.Classify(3))
	}
}

func TestPlanGhostMru(t *testing.T) {
	tb := planFixture(t)
	// Page 5 is the ghost; promoting it restores it to its own slot.
	plan, err := BuildPlanN1(tb, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	execute(t, tb, plan)
	if mp, on := tb.MachinePage(5); !on || mp != 5 {
		t.Fatalf("ghost page 5 -> (%d,%v), want its own slot", mp, on)
	}
	if tb.Classify(1) != GhostPage {
		t.Fatalf("victim class %v", tb.Classify(1))
	}
}

func TestPlanGhostMruMFVictim(t *testing.T) {
	tb := planFixture(t)
	plan, err := BuildPlanN1(tb, 5, 2) // ghost MRU, MF victim (slot 2 holds 20)
	if err != nil {
		t.Fatal(err)
	}
	execute(t, tb, plan)
	if mp, on := tb.MachinePage(5); !on || mp != 5 {
		t.Fatalf("ghost page 5 -> (%d,%v)", mp, on)
	}
	if mp, on := tb.MachinePage(20); on || mp != 20 {
		t.Fatalf("page 20 -> (%d,%v), want home", mp, on)
	}
}

func TestPlanMSPartnerVictimCorner(t *testing.T) {
	tb := planFixture(t)
	// MRU = page 2 (MS) and the chosen victim is its own partner's slot.
	plan, err := BuildPlanN1(tb, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	execute(t, tb, plan)
	// Both restored; the empty slot stays where it was.
	if mp, on := tb.MachinePage(2); !on || mp != 2 {
		t.Fatalf("page 2 -> (%d,%v)", mp, on)
	}
	if mp, on := tb.MachinePage(20); on || mp != 20 {
		t.Fatalf("page 20 -> (%d,%v), want home", mp, on)
	}
	if tb.EmptyRow() != 5 {
		t.Fatalf("empty row moved to %d, want 5", tb.EmptyRow())
	}
}

func TestPlanRejections(t *testing.T) {
	tb := planFixture(t)
	if _, err := BuildPlanN1(tb, 20, 1); err == nil {
		t.Fatal("promoting an already-on-package (MF) page must fail")
	}
	if _, err := BuildPlanN1(tb, 0, 1); err == nil {
		t.Fatal("promoting an OF page must fail")
	}
	if _, err := BuildPlanN1(tb, 30, 5); err == nil {
		t.Fatal("the empty slot cannot be the victim")
	}
	if _, err := BuildPlanN1(tb, 30, 99); err == nil {
		t.Fatal("out-of-range victim accepted")
	}
	nTable := newTestTable(t, 8, 64, false)
	if _, err := BuildPlanN1(nTable, 30, 1); err == nil {
		t.Fatal("N-1 plan on a table without an empty slot accepted")
	}
	if _, err := BuildPlanN(tb, 30, 1); err == nil {
		t.Fatal("N plan on a table with an empty slot accepted")
	}
}

func TestPlanNCases(t *testing.T) {
	tb := newTestTable(t, 8, 64, false)
	// OF victim: one exchange.
	plan, err := BuildPlanN(tb, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Steps) != 1 || !plan.Steps[0].Exchange {
		t.Fatalf("N design OF case: %+v", plan.Steps)
	}
	execute(t, tb, plan)
	if mp, on := tb.MachinePage(30); !on || mp != 1 {
		t.Fatalf("page 30 -> (%d,%v)", mp, on)
	}
	// MF victim: restore exchange + promote exchange.
	plan, err = BuildPlanN(tb, 40, 1) // slot 1 now holds 30 (MF)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Steps) != 2 {
		t.Fatalf("N design MF case: %d steps, want 2", len(plan.Steps))
	}
	execute(t, tb, plan)
	if mp, on := tb.MachinePage(40); !on || mp != 1 {
		t.Fatalf("page 40 -> (%d,%v)", mp, on)
	}
	if mp, on := tb.MachinePage(30); on || mp != 30 {
		t.Fatalf("page 30 -> (%d,%v), want restored home", mp, on)
	}
	// MS MRU: restoring is the promotion.
	plan, err = BuildPlanN(tb, 1, 3) // page 1 is MS (partner 40 in slot 1)
	if err != nil {
		t.Fatal(err)
	}
	execute(t, tb, plan)
	if mp, on := tb.MachinePage(1); !on || mp != 1 {
		t.Fatalf("page 1 -> (%d,%v)", mp, on)
	}
}

// TestPlanPendingBitTransitions walks case (b) step by step verifying the
// paper's mid-swap routing guarantees: every page is reachable at a valid
// location after each table update.
func TestPlanPendingBitTransitions(t *testing.T) {
	tb := planFixture(t)
	plan, err := BuildPlanN1(tb, 30, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Before any step: page 30 off-package at home.
	if mp, on := tb.MachinePage(30); on || mp != 30 {
		t.Fatalf("pre-swap page 30 -> (%d,%v)", mp, on)
	}
	// Step 1 complete: 30 now reachable on-package; the old empty slot's
	// page (5) must still route to Ω via the P bit.
	if err := plan.Steps[0].mutate(tb); err != nil {
		t.Fatal(err)
	}
	if mp, on := tb.MachinePage(30); !on || mp != 5 {
		t.Fatalf("after step 1: page 30 -> (%d,%v)", mp, on)
	}
	if !tb.Pending(5) {
		t.Fatal("row 5 P bit not set after step 1")
	}
	if mp, on := tb.MachinePage(5); on || mp != tb.Omega() {
		t.Fatalf("after step 1: page 5 -> (%d,%v), want Ω", mp, on)
	}
	// Step 2 complete: P cleared, page 5 now at 30's home.
	if err := plan.Steps[1].mutate(tb); err != nil {
		t.Fatal(err)
	}
	if tb.Pending(5) {
		t.Fatal("row 5 P bit not cleared after step 2")
	}
	if mp, _ := tb.MachinePage(5); mp != 30 {
		t.Fatalf("after step 2: page 5 -> %d, want 30's home", mp)
	}
	// Step 3 complete: victim data in Ω, P(2) set; CAM for 20 still valid.
	if err := plan.Steps[2].mutate(tb); err != nil {
		t.Fatal(err)
	}
	if mp, on := tb.MachinePage(2); on || mp != tb.Omega() {
		t.Fatalf("after step 3: page 2 -> (%d,%v), want Ω", mp, on)
	}
	if mp, on := tb.MachinePage(20); !on || mp != 2 {
		t.Fatalf("after step 3: page 20 -> (%d,%v), CAM must keep working", mp, on)
	}
	// Step 4 complete: 20 home, slot 2 empty.
	if err := plan.Steps[3].mutate(tb); err != nil {
		t.Fatal(err)
	}
	if err := tb.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
