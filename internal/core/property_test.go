// Property-style tests: under long random access sequences, across all
// three migration designs, the translation layer must remain a bijection
// between physical and machine pages at every swap-step boundary. The
// internal/check auditor is the oracle; it lives outside this package, so
// these tests drive the Migrator purely through its public API.
package core_test

import (
	"fmt"
	"math/rand"
	"testing"

	"heteromem/internal/check"
	"heteromem/internal/core"
)

const (
	propPageSize = 4096
	propSubBlock = 512
	propSlots    = 8
	propTotal    = 32
)

func newPropMigrator(t *testing.T, d core.Design, seedVictim core.VictimPolicy) *core.Migrator {
	t.Helper()
	m, err := core.NewMigrator(core.Options{
		Design:       d,
		Slots:        propSlots,
		TotalPages:   propTotal,
		PageSize:     propPageSize,
		SubBlockSize: propSubBlock,
		SwapInterval: 50,
		Victim:       seedVictim,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// driveSwap executes an in-flight swap to completion, auditing at every
// step boundary and verifying the exhaustive bijection oracle throughout.
func driveSwap(t *testing.T, m *core.Migrator, aud *check.Auditor, subs []core.SubCopy) {
	t.Helper()
	for steps := 0; ; steps++ {
		if steps > 16 {
			t.Fatal("swap did not terminate within 16 steps")
		}
		for _, sc := range subs {
			m.SubDone(sc.SubIndex)
		}
		next, done, err := m.StepDone()
		if err != nil {
			t.Fatalf("StepDone: %v", err)
		}
		if done {
			if err := aud.AuditQuiescent(); err != nil {
				t.Fatalf("quiescent audit after swap: %v", err)
			}
			if err := aud.AuditExhaustive(); err != nil {
				t.Fatalf("exhaustive audit after swap: %v", err)
			}
			return
		}
		if err := aud.AuditStep(); err != nil {
			t.Fatalf("step audit mid-swap: %v", err)
		}
		if err := aud.AuditExhaustive(); err != nil {
			t.Fatalf("exhaustive audit mid-swap: %v", err)
		}
		subs = next
	}
}

// TestRandomSwapsKeepBijection hammers each design with random accesses,
// completing every triggered swap and checking the full invariant battery
// at each step boundary.
func TestRandomSwapsKeepBijection(t *testing.T) {
	for _, d := range []core.Design{core.DesignN, core.DesignN1, core.DesignLive} {
		for _, seed := range []int64{1, 2, 3, 42} {
			t.Run(fmt.Sprintf("%v/seed%d", d, seed), func(t *testing.T) {
				m := newPropMigrator(t, d, core.VictimClockPLRU)
				aud := check.New(m.Table(), d)
				rng := rand.New(rand.NewSource(seed))
				swaps := 0
				for i := 0; i < 50_000; i++ {
					// Skewed accesses: a hot set of pages so swaps actually
					// trigger, plus a uniform tail so victims churn.
					var page uint64
					if rng.Intn(4) > 0 {
						page = uint64(propSlots + rng.Intn(4)) // hot off-package set
					} else {
						page = uint64(rng.Intn(propTotal))
					}
					phys := page*propPageSize + uint64(rng.Intn(propPageSize/64))*64
					_, on := m.Translate(phys)
					m.OnAccess(phys, on)
					if subs := m.EpochTick(); subs != nil {
						driveSwap(t, m, aud, subs)
						swaps++
					}
				}
				if swaps == 0 {
					t.Fatal("workload triggered no swaps; property not exercised")
				}
				if err := aud.AuditQuiescent(); err != nil {
					t.Fatalf("final quiescent audit: %v", err)
				}
				st := m.Stats()
				if st.SwapsStarted != st.SwapsCompleted {
					t.Fatalf("swap accounting diverged: %d started, %d completed",
						st.SwapsStarted, st.SwapsCompleted)
				}
			})
		}
	}
}

// TestRandomSwapsTranslationTotal verifies, at quiescent points, that every
// physical page still translates to a unique in-range machine page — the
// user-visible consequence of the bijection (no two pages may alias and
// no page may vanish).
func TestRandomSwapsTranslationTotal(t *testing.T) {
	for _, d := range []core.Design{core.DesignN, core.DesignN1, core.DesignLive} {
		t.Run(d.String(), func(t *testing.T) {
			m := newPropMigrator(t, d, core.VictimFIFO)
			aud := check.New(m.Table(), d)
			rng := rand.New(rand.NewSource(7))
			for i := 0; i < 30_000; i++ {
				page := uint64(rng.Intn(propTotal))
				if rng.Intn(3) > 0 {
					page = uint64(propSlots + rng.Intn(3))
				}
				phys := page * propPageSize
				_, on := m.Translate(phys)
				m.OnAccess(phys, on)
				if subs := m.EpochTick(); subs != nil {
					driveSwap(t, m, aud, subs)
					// Quiescent: the machine image of all physical pages must
					// be exactly {0..total-1} ∪ {Ω} minus one slot (N-1/Live)
					// or {0..total-1} (N), with no duplicates.
					seen := make(map[uint64]uint64, propTotal)
					for p := uint64(0); p < propTotal; p++ {
						machine, _ := m.Translate(p * propPageSize)
						mp := machine / propPageSize
						if prev, dup := seen[mp]; dup {
							t.Fatalf("pages %d and %d alias machine page %d", prev, p, mp)
						}
						seen[mp] = p
						if mp > m.Table().Omega() {
							t.Fatalf("page %d translated out of range: machine page %d", p, mp)
						}
					}
				}
			}
		})
	}
}
