package core

import "fmt"

// Step is one macro-page copy (or exchange) of a swap plan. Steps execute
// strictly in order; the table mutation attached to a step applies when its
// last byte has moved, which is what lets the N-1 design keep every page
// reachable at a valid physical location throughout the swap.
type Step struct {
	Src uint64 // machine page the data moves from
	Dst uint64 // machine page the data moves to

	// Exchange marks an atomic two-way exchange through the controller's
	// line buffers (the N design's primitive); traffic is doubled.
	Exchange bool

	// Critical marks the step that brings the MRU page's data on-package;
	// it is the step live migration accelerates with the F bit and the
	// sub-block bitmap.
	Critical bool

	// OldMachine is the machine page still holding a valid copy of the
	// MRU page while a Critical step is in flight (live routing falls back
	// to it for not-yet-copied sub-blocks).
	OldMachine uint64

	Label  string
	mutate func(*Table) error
}

// Plan is a full hottest-coldest swap: the ordered steps plus bookkeeping.
type Plan struct {
	MRU    uint64 // physical macro page being promoted
	Victim int    // on-package slot being demoted (-1 when the swap only restores)
	Steps  []Step
}

// BuildPlanN1 constructs the swap plan of the N-1 (and Live) designs for
// promoting MRU page m and demoting the page in slot victim, covering the
// four cases of Fig. 8 plus the two corner cases (MRU is the Ghost page;
// MRU's swap partner occupies the victim slot).
func BuildPlanN1(t *Table, m uint64, victim int) (*Plan, error) {
	if t.emptyRow < 0 {
		return nil, fmt.Errorf("core: N-1 plan requires an empty slot")
	}
	if victim < 0 || uint64(victim) >= t.n {
		return nil, fmt.Errorf("core: victim slot %d out of range", victim)
	}
	if victim == t.emptyRow {
		return nil, fmt.Errorf("core: victim slot %d is the empty slot", victim)
	}
	if s := t.SlotOf(m); s >= 0 {
		return nil, fmt.Errorf("core: MRU page %d already on-package (slot %d)", m, s)
	}
	er := t.emptyRow
	erPage := uint64(er)
	omega := t.Omega()
	slotPage := func(s int) uint64 { return uint64(s) }
	x := t.resident[victim] // victim page: == victim (OF) or q >= N (MF)

	switch t.Classify(m) {
	case OriginalSlow:
		if x == uint64(victim) {
			// Case (a): MRU >= N, LRU < N (Fig. 8a).
			return &Plan{MRU: m, Victim: victim, Steps: []Step{
				{Src: m, Dst: slotPage(er), Critical: true, OldMachine: m,
					Label: "OS-MRU -> empty slot",
					mutate: func(t *Table) error {
						if err := t.Install(er, m); err != nil {
							return err
						}
						t.SetPending(erPage, true)
						return nil
					}},
				{Src: omega, Dst: m, Label: "ghost data -> MRU home",
					mutate: func(t *Table) error { t.SetPending(erPage, false); return nil }},
				{Src: slotPage(victim), Dst: omega, Label: "LRU -> omega",
					mutate: func(t *Table) error { return t.Vacate(victim) }},
			}}, nil
		}
		// Case (b): MRU >= N, LRU >= N (Fig. 8b).
		q := x
		vp := uint64(victim)
		return &Plan{MRU: m, Victim: victim, Steps: []Step{
			{Src: m, Dst: slotPage(er), Critical: true, OldMachine: m,
				Label: "OS-MRU -> empty slot",
				mutate: func(t *Table) error {
					if err := t.Install(er, m); err != nil {
						return err
					}
					t.SetPending(erPage, true)
					return nil
				}},
			{Src: omega, Dst: m, Label: "ghost data -> MRU home",
				mutate: func(t *Table) error { t.SetPending(erPage, false); return nil }},
			{Src: q, Dst: omega, Label: "victim-row data -> omega",
				mutate: func(t *Table) error { t.SetPending(vp, true); return nil }},
			{Src: slotPage(victim), Dst: q, Label: "MF-LRU -> its home",
				mutate: func(t *Table) error {
					if err := t.Vacate(victim); err != nil {
						return err
					}
					t.SetPending(vp, false)
					return nil
				}},
		}}, nil

	case MigratedSlow:
		e := t.resident[m] // MRU's swap partner, resident in slot m
		if int(m) == victim {
			// Corner case: the victim slot holds the MRU's own partner.
			// Restore both via the empty slot as a bounce buffer.
			return &Plan{MRU: m, Victim: victim, Steps: []Step{
				{Src: slotPage(int(m)), Dst: slotPage(er), Label: "partner -> empty slot",
					mutate: func(t *Table) error {
						if err := t.Install(er, e); err != nil {
							return err
						}
						t.SetPending(erPage, true)
						return nil
					}},
				{Src: e, Dst: slotPage(int(m)), Critical: true, OldMachine: e,
					Label:  "MS-MRU -> its own slot",
					mutate: func(t *Table) error { return t.Install(int(m), m) }},
				{Src: slotPage(er), Dst: e, Label: "partner -> its home",
					mutate: func(t *Table) error {
						if err := t.Vacate(er); err != nil {
							return err
						}
						t.SetPending(erPage, false)
						return nil
					}},
			}}, nil
		}
		head := []Step{
			// Case (c)/(d) steps 1-3 (Fig. 8c/8d).
			{Src: slotPage(int(m)), Dst: slotPage(er), Label: "partner -> empty slot",
				mutate: func(t *Table) error {
					if err := t.Install(er, e); err != nil {
						return err
					}
					t.SetPending(erPage, true)
					return nil
				}},
			{Src: e, Dst: slotPage(int(m)), Critical: true, OldMachine: e,
				Label:  "MS-MRU -> its own slot",
				mutate: func(t *Table) error { return t.Install(int(m), m) }},
			{Src: omega, Dst: e, Label: "ghost data -> partner home",
				mutate: func(t *Table) error { t.SetPending(erPage, false); return nil }},
		}
		if x == uint64(victim) {
			// Case (c): LRU < N.
			return &Plan{MRU: m, Victim: victim, Steps: append(head, Step{
				Src: slotPage(victim), Dst: omega, Label: "LRU -> omega",
				mutate: func(t *Table) error { return t.Vacate(victim) },
			})}, nil
		}
		// Case (d): LRU >= N.
		q := x
		vp := uint64(victim)
		return &Plan{MRU: m, Victim: victim, Steps: append(head,
			Step{Src: q, Dst: omega, Label: "victim-row data -> omega",
				mutate: func(t *Table) error { t.SetPending(vp, true); return nil }},
			Step{Src: slotPage(victim), Dst: q, Label: "MF-LRU -> its home",
				mutate: func(t *Table) error {
					if err := t.Vacate(victim); err != nil {
						return err
					}
					t.SetPending(vp, false)
					return nil
				}},
		)}, nil

	case GhostPage:
		// Corner case: the MRU is the Ghost page parked in Ω; its own slot
		// is the empty slot. Bring it home, then demote the victim.
		if int(m) != er {
			return nil, fmt.Errorf("core: ghost page %d but empty row is %d", m, er)
		}
		restore := Step{Src: omega, Dst: slotPage(er), Critical: true, OldMachine: omega,
			Label:  "ghost MRU -> its own slot",
			mutate: func(t *Table) error { return t.Install(er, m) }}
		if x == uint64(victim) {
			// OF victim: park it in Ω.
			return &Plan{MRU: m, Victim: victim, Steps: []Step{restore,
				{Src: slotPage(victim), Dst: omega, Label: "LRU -> omega",
					mutate: func(t *Table) error { return t.Vacate(victim) }},
			}}, nil
		}
		// MF victim (slot holds q >= N; the victim page's data sits at q's
		// home): park the victim page in Ω, then send q home.
		q := x
		vp := uint64(victim)
		return &Plan{MRU: m, Victim: victim, Steps: []Step{restore,
			{Src: q, Dst: omega, Label: "victim-row data -> omega",
				mutate: func(t *Table) error { t.SetPending(vp, true); return nil }},
			{Src: slotPage(victim), Dst: q, Label: "MF-LRU -> its home",
				mutate: func(t *Table) error {
					if err := t.Vacate(victim); err != nil {
						return err
					}
					t.SetPending(vp, false)
					return nil
				}},
		}}, nil

	default:
		return nil, fmt.Errorf("core: MRU page %d is %v, not promotable", m, t.Classify(m))
	}
}

// BuildPlanN constructs the swap plan of the basic N design, which uses
// atomic page exchanges through the controller (no empty slot, no Ω) and
// stalls execution until the exchange completes.
func BuildPlanN(t *Table, m uint64, victim int) (*Plan, error) {
	if t.emptyRow >= 0 {
		return nil, fmt.Errorf("core: N plan requires no empty slot")
	}
	if victim < 0 || uint64(victim) >= t.n {
		return nil, fmt.Errorf("core: victim slot %d out of range", victim)
	}
	if s := t.SlotOf(m); s >= 0 {
		return nil, fmt.Errorf("core: MRU page %d already on-package (slot %d)", m, s)
	}
	slotPage := func(s int) uint64 { return uint64(s) }

	switch t.Classify(m) {
	case OriginalSlow:
		x := t.resident[victim]
		if x == uint64(victim) {
			// OF victim: single exchange.
			return &Plan{MRU: m, Victim: victim, Steps: []Step{
				{Src: slotPage(victim), Dst: m, Exchange: true, Critical: true, OldMachine: m,
					Label:  "exchange victim slot <-> MRU home",
					mutate: func(t *Table) error { return t.Install(victim, m) }},
			}}, nil
		}
		// MF victim: restore it first, then exchange in the MRU.
		q := x
		return &Plan{MRU: m, Victim: victim, Steps: []Step{
			{Src: slotPage(victim), Dst: q, Exchange: true,
				Label:  "restore MF victim <-> its home",
				mutate: func(t *Table) error { return t.Install(victim, uint64(victim)) }},
			{Src: slotPage(victim), Dst: m, Exchange: true, Critical: true, OldMachine: m,
				Label:  "exchange victim slot <-> MRU home",
				mutate: func(t *Table) error { return t.Install(victim, m) }},
		}}, nil

	case MigratedSlow:
		// Restoring the MS page is itself the promotion: its partner is
		// evicted by the same exchange, regardless of the chosen victim.
		e := t.resident[m]
		return &Plan{MRU: m, Victim: int(m), Steps: []Step{
			{Src: slotPage(int(m)), Dst: e, Exchange: true, Critical: true, OldMachine: e,
				Label:  "restore MS MRU <-> partner home",
				mutate: func(t *Table) error { return t.Install(int(m), m) }},
		}}, nil

	default:
		return nil, fmt.Errorf("core: MRU page %d is %v, not promotable in N design", m, t.Classify(m))
	}
}
