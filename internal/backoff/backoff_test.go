package backoff

import (
	"context"
	"testing"
	"time"
)

// TestExponentialMatchesFaultLadder pins the policy to the exact formula
// the fault injector has always used (base << (attempt-1), capped
// doublings) — the 12 perf goldens depend on these delays bit-for-bit.
func TestExponentialMatchesFaultLadder(t *testing.T) {
	e := Exponential{Base: 100, MaxShift: 8}
	cases := []struct {
		attempt int
		want    int64
	}{
		{-3, 100}, {0, 100}, {1, 100}, {2, 200}, {3, 400},
		{8, 100 << 7}, {9, 100 << 8}, {10, 100 << 8}, {1000, 100 << 8},
	}
	for _, c := range cases {
		if got := e.Delay(c.attempt); got != c.want {
			t.Errorf("Delay(%d) = %d, want %d", c.attempt, got, c.want)
		}
	}
}

// TestJitterDeterministic verifies the schedule is a pure function of the
// seed, starts at exactly Base, stays within [Base, Cap], and never exceeds
// three times the previous delay.
func TestJitterDeterministic(t *testing.T) {
	const base, cap = 10 * time.Millisecond, 200 * time.Millisecond
	a := NewJitter(base, cap, 42)
	b := NewJitter(base, cap, 42)
	prev := time.Duration(0)
	for i := 0; i < 64; i++ {
		da, db := a.Next(), b.Next()
		if da != db {
			t.Fatalf("draw %d: same seed diverged: %v vs %v", i, da, db)
		}
		if da < base || da > cap {
			t.Fatalf("draw %d: %v outside [%v, %v]", i, da, base, cap)
		}
		if i == 0 && da != base {
			t.Fatalf("first delay %v, want exactly base %v", da, base)
		}
		if prev > 0 && da >= 3*prev && da > base {
			t.Fatalf("draw %d: %v not decorrelated against prev %v", i, da, prev)
		}
		prev = da
	}
	other := NewJitter(base, cap, 43)
	other.Next() // first draw is always base...
	if a.Next() == other.Next() && a.Next() == other.Next() {
		t.Fatal("different seeds produced the same schedule")
	}
}

// TestJitterReset pins that Reset forgets the escalation: the next delay is
// Base again, and the post-reset stream replays the from-scratch stream.
func TestJitterReset(t *testing.T) {
	j := NewJitter(5*time.Millisecond, time.Second, 7)
	for i := 0; i < 10; i++ {
		j.Next()
	}
	j.Reset()
	if got := j.Next(); got != 5*time.Millisecond {
		t.Fatalf("post-reset delay %v, want base", got)
	}
}

// TestJitterDegenerateConfig verifies the constructor heals non-positive
// base and cap < base instead of producing zero or negative sleeps.
func TestJitterDegenerateConfig(t *testing.T) {
	j := NewJitter(0, 0, 1)
	for i := 0; i < 8; i++ {
		if d := j.Next(); d <= 0 {
			t.Fatalf("draw %d: non-positive delay %v", i, d)
		}
	}
	j = NewJitter(time.Second, time.Millisecond, 1)
	if d := j.Next(); d != time.Second {
		t.Fatalf("cap below base: first delay %v, want base", d)
	}
}

// TestSleepHonorsCancel verifies Sleep returns promptly with ctx.Err() when
// the context is already cancelled.
func TestSleepHonorsCancel(t *testing.T) {
	j := NewJitter(time.Hour, time.Hour, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if err := j.Sleep(ctx); err != context.Canceled {
		t.Fatalf("Sleep = %v, want context.Canceled", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("Sleep blocked despite cancelled context")
	}
}
