// Package backoff is the repo's single retry-delay implementation, shared
// by the cycle-domain fault-escalation ladder in internal/memctrl and the
// wall-clock RPC retry loops of the distributed sweep service.
//
// Two shapes are provided. Exponential is the deterministic attempt-indexed
// policy the fault ladder has always used (base << (attempt-1), capped
// doublings): it is pure arithmetic, so simulated retry timing stays
// bit-reproducible and the pre-extraction perf goldens pin it byte-identical.
// Jitter is the wall-clock decorrelated-jitter policy ("full jitter" per
// attempt bounded by three times the previous sleep) recommended for
// contended RPC retries; it draws from a seeded internal/rng stream, so a
// retry schedule is deterministic under a fixed seed — chaos campaigns and
// unit tests replay exactly.
package backoff

import (
	"context"
	"time"

	"heteromem/internal/rng"
)

// Exponential is the deterministic cycle-domain policy: attempt k (1-based)
// is delayed Base << (k-1), capped at MaxShift doublings. The zero value is
// usable but degenerate (zero delay); construct via fault.Config or fill
// both fields.
type Exponential struct {
	Base     int64 // delay of the first retry
	MaxShift int   // cap on doublings (attempt MaxShift+1 and later plateau)
}

// Delay returns the backoff before retry `attempt` (1-based). Attempts
// below 1 are treated as 1, matching the fault injector's historical
// clamping.
func (e Exponential) Delay(attempt int) int64 {
	shift := attempt - 1
	if shift < 0 {
		shift = 0
	}
	if shift > e.MaxShift {
		shift = e.MaxShift
	}
	return e.Base << uint(shift)
}

// Jitter produces decorrelated-jitter wall-clock delays: the first Next
// returns Base exactly (so a lone transient costs the minimum), and each
// subsequent delay is uniform in [Base, 3*prev), capped at Cap. Draws come
// from a seeded splitmix64 stream, making the schedule reproducible; Jitter
// is not goroutine-safe — give each retry loop its own.
type Jitter struct {
	base time.Duration
	cap  time.Duration
	r    *rng.Rand
	prev time.Duration
}

// NewJitter returns a decorrelated-jitter source. base must be positive;
// cap below base is raised to base.
func NewJitter(base, cap time.Duration, seed uint64) *Jitter {
	if base <= 0 {
		base = time.Millisecond
	}
	if cap < base {
		cap = base
	}
	return &Jitter{base: base, cap: cap, r: rng.New(seed)}
}

// Next returns the delay before the next retry attempt.
func (j *Jitter) Next() time.Duration {
	if j.prev == 0 {
		j.prev = j.base
		return j.base
	}
	span := 3 * j.prev
	if span > j.cap {
		span = j.cap
	}
	d := j.base
	if span > j.base {
		d = j.base + time.Duration(j.r.Int63n(int64(span-j.base)))
	}
	j.prev = d
	return d
}

// Reset forgets the escalation history: the next delay is Base again. Call
// it after a success so an unrelated later failure starts cheap.
func (j *Jitter) Reset() { j.prev = 0 }

// Sleep waits for the next jittered delay or until ctx is cancelled,
// returning ctx.Err() in the latter case. It is the standard body of a
// dial/RPC retry loop.
func (j *Jitter) Sleep(ctx context.Context) error {
	t := time.NewTimer(j.Next())
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
