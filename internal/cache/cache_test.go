package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"heteromem/internal/config"
)

func newCache(t *testing.T, size, line uint64, ways int) *Cache {
	t.Helper()
	c, err := New("test", size, line, ways)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		size, line uint64
		ways       int
	}{
		{0, 64, 8},
		{1024, 0, 8},
		{1024, 64, 0},
		{1024, 48, 4},   // line not pow2
		{64 * 3, 64, 1}, // sets not pow2
		{64 * 7, 64, 8}, // lines not divisible by ways
	}
	for i, c := range cases {
		if _, err := New("bad", c.size, c.line, c.ways); err == nil {
			t.Errorf("case %d accepted: %+v", i, c)
		}
	}
}

func TestHitAfterMiss(t *testing.T) {
	c := newCache(t, 4096, 64, 4)
	if hit, _, _ := c.Access(128, false); hit {
		t.Fatal("cold cache hit")
	}
	if hit, _, _ := c.Access(128, false); !hit {
		t.Fatal("second access missed")
	}
	if hit, _, _ := c.Access(129, false); !hit {
		t.Fatal("same-line access missed")
	}
	st := c.Stats()
	if st.Accesses != 3 || st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	// 2-way cache with 1 set: 3 distinct lines evict the least recent.
	c := newCache(t, 128, 64, 2)
	c.Access(0, false)   // A
	c.Access(64, false)  // B
	c.Access(0, false)   // touch A (B is now LRU)
	c.Access(128, false) // C evicts B
	if !c.Contains(0) {
		t.Fatal("A evicted despite being MRU")
	}
	if c.Contains(64) {
		t.Fatal("B not evicted despite being LRU")
	}
	if !c.Contains(128) {
		t.Fatal("C not inserted")
	}
}

func TestDirtyWriteback(t *testing.T) {
	c := newCache(t, 128, 64, 1)           // direct-mapped, 2 sets
	c.Access(0, true)                      // dirty line in set 0
	hit, wb, hasWB := c.Access(128, false) // same set, evicts dirty line
	if hit {
		t.Fatal("conflicting access hit")
	}
	if !hasWB || wb != 0 {
		t.Fatalf("writeback = %d,%v, want 0,true", wb, hasWB)
	}
	st := c.Stats()
	if st.Writebacks != 1 || st.Evictions != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Clean eviction: no writeback.
	if _, _, hasWB := c.Access(0, false); hasWB {
		t.Fatal("clean eviction produced a writeback")
	}
}

func TestWriteHitSetsDirty(t *testing.T) {
	c := newCache(t, 128, 64, 1)
	c.Access(0, false) // clean
	c.Access(0, true)  // hit, makes dirty
	_, _, hasWB := c.Access(128, false)
	if !hasWB {
		t.Fatal("write hit did not mark the line dirty")
	}
}

func TestContainsDoesNotPerturb(t *testing.T) {
	c := newCache(t, 128, 64, 2)
	c.Access(0, false)
	st1 := c.Stats()
	c.Contains(0)
	c.Contains(999999)
	if c.Stats() != st1 {
		t.Fatal("Contains changed statistics")
	}
}

func TestReset(t *testing.T) {
	c := newCache(t, 4096, 64, 4)
	c.Access(0, true)
	c.Reset()
	if c.Stats() != (Stats{}) {
		t.Fatal("stats survive reset")
	}
	if c.Contains(0) {
		t.Fatal("contents survive reset")
	}
}

func TestMissRateBoundsProperty(t *testing.T) {
	f := func(addrs []uint32) bool {
		c := newCache(t, 8192, 64, 4)
		for _, a := range addrs {
			c.Access(uint64(a), false)
		}
		mr := c.Stats().MissRate()
		return mr >= 0 && mr <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a cache never holds more distinct lines than its capacity.
func TestCapacityInvariant(t *testing.T) {
	c := newCache(t, 1024, 64, 4) // 16 lines
	rng := rand.New(rand.NewSource(11))
	inserted := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		a := uint64(rng.Intn(1 << 20))
		c.Access(a, false)
		inserted[a/64] = true
	}
	held := 0
	for line := range inserted {
		if c.Contains(line * 64) {
			held++
		}
	}
	if held > 16 {
		t.Fatalf("cache holds %d lines, capacity 16", held)
	}
}

func TestHierarchyLevels(t *testing.T) {
	h, err := NewHierarchy(2, config.SRAMHierarchy())
	if err != nil {
		t.Fatal(err)
	}
	if lvl := h.Access(0, 4096, false); lvl != Memory {
		t.Fatalf("cold access served at %v, want memory", lvl)
	}
	if lvl := h.Access(0, 4096, false); lvl != L1 {
		t.Fatalf("hot access served at %v, want L1", lvl)
	}
	// A different core misses its private L1/L2 but hits the shared L3.
	if lvl := h.Access(1, 4096, false); lvl != L3 {
		t.Fatalf("cross-core access served at %v, want L3", lvl)
	}
}

func TestHierarchyValidation(t *testing.T) {
	if _, err := NewHierarchy(0, config.SRAMHierarchy()); err == nil {
		t.Fatal("zero cores accepted")
	}
	if _, err := NewHierarchy(2, config.SRAMHierarchy()[:2]); err == nil {
		t.Fatal("two levels accepted")
	}
}

func TestDRAMCacheHitCostsTwoAccesses(t *testing.T) {
	lat := config.TableIILatencies()
	d, err := NewDRAMCache(1<<30, 512, lat)
	if err != nil {
		t.Fatal(err)
	}
	hit, cost := d.Access(0, false)
	if hit {
		t.Fatal("cold L4 hit")
	}
	if cost != lat.L4MissProbe() {
		t.Fatalf("miss probe cost = %d, want %d", cost, lat.L4MissProbe())
	}
	hit, cost = d.Access(0, false)
	if !hit {
		t.Fatal("second access missed")
	}
	if cost != lat.L4HitLatency() {
		t.Fatalf("hit cost = %d, want %d (2x on-package access)", cost, lat.L4HitLatency())
	}
}

func TestDRAMCacheIs15Way(t *testing.T) {
	lat := config.TableIILatencies()
	d, err := NewDRAMCache(1<<20, 512, lat) // 1 MB for a small test
	if err != nil {
		t.Fatal(err)
	}
	// Data capacity is 15/16 of the array: fill one set with 15 lines and
	// the 16th distinct line must evict.
	sets := d.c.sets
	for i := uint64(0); i < 16; i++ {
		d.Access(i*sets*512, false)
	}
	if hit, _ := d.Access(0, false); hit {
		t.Fatal("16th line did not evict in a 15-way set")
	}
}
