// Package cache implements the SRAM cache hierarchy of the Section II
// full-system comparison (private L1/L2, shared L3) and the on-package
// DRAM L4 cache alternative: a 15-way set-associative cache built in a
// 16-way data array, with all of a set's tags packed into the 16th line so
// a hit costs two sequential DRAM accesses (tags, then data).
package cache

import (
	"fmt"
	"math/bits"
)

// Stats counts cache events.
type Stats struct {
	Accesses   uint64
	Hits       uint64
	Misses     uint64
	Evictions  uint64
	Writebacks uint64 // dirty evictions
}

// MissRate returns misses/accesses (0 when idle).
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Each slot packs into one word: tag<<2 | dirty<<1 | valid. Tag bits fit
// because the tag is the line address shifted down by the set bits. One
// word per slot halves the per-set footprint of the old 16-byte struct and
// turns the LRU shuffle into a plain word copy.
const (
	slotValid = 1 << 0
	slotDirty = 1 << 1
	slotTag   = 2 // tag shift
)

// Cache is a set-associative, write-back, write-allocate cache with true
// LRU replacement (slot order within a set is recency order).
type Cache struct {
	name      string
	lineShift uint   // log2(lineSize); New enforces the power of two
	setShift  uint   // log2(sets); New enforces the power of two
	setMask   uint64 // sets-1
	lineSize  uint64
	sets      uint64
	ways      int
	slots     []uint64 // sets*ways, set-major, index 0 of a set = MRU
	stats     Stats
}

// New builds a cache. size must be ways*lineSize*2^k for some k.
func New(name string, size, lineSize uint64, ways int) (*Cache, error) {
	return NewWithSlots(nil, name, size, lineSize, ways)
}

// NewWithSlots is New with a caller-provided slot arena: when buf has
// capacity for the cache's slot array the slots are served from it
// (cleared first, so the cache starts cold either way); otherwise a fresh
// array is allocated. Recycling one arena across sequentially built
// caches avoids re-paying the dominant allocation of capacity sweeps.
func NewWithSlots(buf []uint64, name string, size, lineSize uint64, ways int) (*Cache, error) {
	if ways <= 0 || lineSize == 0 || size == 0 {
		return nil, fmt.Errorf("cache %s: invalid shape size=%d line=%d ways=%d", name, size, lineSize, ways)
	}
	if lineSize&(lineSize-1) != 0 {
		return nil, fmt.Errorf("cache %s: line size %d not a power of two", name, lineSize)
	}
	lines := size / lineSize
	if lines%uint64(ways) != 0 {
		return nil, fmt.Errorf("cache %s: %d lines not divisible by %d ways", name, lines, ways)
	}
	sets := lines / uint64(ways)
	if sets == 0 || sets&(sets-1) != 0 {
		return nil, fmt.Errorf("cache %s: set count %d not a power of two (size=%d)", name, sets, size)
	}
	need := sets * uint64(ways)
	var slots []uint64
	if uint64(cap(buf)) >= need {
		slots = buf[:need]
		clear(slots)
	} else {
		slots = make([]uint64, need)
	}
	return &Cache{
		name:      name,
		lineShift: uint(bits.TrailingZeros64(lineSize)),
		setShift:  uint(bits.TrailingZeros64(sets)),
		setMask:   sets - 1,
		lineSize:  lineSize,
		sets:      sets,
		ways:      ways,
		slots:     slots,
	}, nil
}

// Name returns the cache's label.
func (c *Cache) Name() string { return c.name }

// LineSize returns the line size in bytes.
func (c *Cache) LineSize() uint64 { return c.lineSize }

// Access performs one access. It returns whether it hit and, on a miss
// that evicted a dirty line, the victim's line-aligned address for
// writeback accounting.
func (c *Cache) Access(a uint64, write bool) (hit bool, writeback uint64, hasWB bool) {
	c.stats.Accesses++
	line := a >> c.lineShift
	set := line & c.setMask
	tag := line >> c.setShift
	base := int(set) * c.ways
	ss := c.slots[base : base+c.ways]

	want := tag<<slotTag | slotValid
	for i, w := range ss {
		if w&^slotDirty == want {
			c.stats.Hits++
			if write {
				w |= slotDirty
			}
			// Move to MRU position.
			copy(ss[1:i+1], ss[:i])
			ss[0] = w
			return true, 0, false
		}
	}
	c.stats.Misses++

	victim := ss[c.ways-1]
	if victim&slotValid != 0 {
		c.stats.Evictions++
		if victim&slotDirty != 0 {
			c.stats.Writebacks++
			hasWB = true
			writeback = ((victim>>slotTag)<<c.setShift | set) << c.lineShift
		}
	}
	copy(ss[1:], ss[:c.ways-1])
	if write {
		want |= slotDirty
	}
	ss[0] = want
	return false, writeback, hasWB
}

// Contains reports whether the line holding a is cached, without touching
// recency or statistics.
func (c *Cache) Contains(a uint64) bool {
	line := a >> c.lineShift
	set := line & c.setMask
	tag := line >> c.setShift
	base := int(set) * c.ways
	want := tag<<slotTag | slotValid
	for _, w := range c.slots[base : base+c.ways] {
		if w&^slotDirty == want {
			return true
		}
	}
	return false
}

// Stats returns the counters so far.
func (c *Cache) Stats() Stats { return c.stats }

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	clear(c.slots)
	c.stats = Stats{}
}
