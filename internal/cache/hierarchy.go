package cache

import (
	"fmt"

	"heteromem/internal/config"
)

// Level identifies where an access was served.
type Level int

// Hierarchy levels; Memory means the access left the SRAM hierarchy.
const (
	L1 Level = iota + 1
	L2
	L3
	Memory
)

// String names the level.
func (l Level) String() string {
	switch l {
	case L1:
		return "L1"
	case L2:
		return "L2"
	case L3:
		return "L3"
	case Memory:
		return "memory"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// Hierarchy is the Table II SRAM hierarchy: private L1 and L2 per core and
// a shared L3. Write-back traffic below the hit level is accounted but not
// timed (it is off the load's critical path).
type Hierarchy struct {
	l1 []*Cache
	l2 []*Cache
	l3 *Cache
}

// NewHierarchy builds the hierarchy from Table II level descriptions for
// the given core count. levels must be ordered L1, L2, L3.
func NewHierarchy(cores int, levels []config.CacheLevel) (*Hierarchy, error) {
	if cores <= 0 {
		return nil, fmt.Errorf("cache: need at least one core")
	}
	if len(levels) != 3 {
		return nil, fmt.Errorf("cache: want 3 levels (L1,L2,L3), got %d", len(levels))
	}
	h := &Hierarchy{}
	for c := 0; c < cores; c++ {
		l1, err := New(fmt.Sprintf("%s[%d]", levels[0].Name, c), levels[0].Size, levels[0].LineSize, levels[0].Ways)
		if err != nil {
			return nil, err
		}
		l2, err := New(fmt.Sprintf("%s[%d]", levels[1].Name, c), levels[1].Size, levels[1].LineSize, levels[1].Ways)
		if err != nil {
			return nil, err
		}
		h.l1 = append(h.l1, l1)
		h.l2 = append(h.l2, l2)
	}
	l3, err := New(levels[2].Name, levels[2].Size, levels[2].LineSize, levels[2].Ways)
	if err != nil {
		return nil, err
	}
	h.l3 = l3
	return h, nil
}

// ResizeL3 rebuilds the shared L3 at a new capacity, reusing the existing
// slot array when it has room, and resets every private level — the
// result is indistinguishable from a freshly built hierarchy with the new
// L3 size. Capacity sweeps that walk sizes largest-first through one
// hierarchy therefore pay the L3 slot allocation once instead of once per
// point.
func (h *Hierarchy) ResizeL3(size uint64) error {
	old := h.l3
	l3, err := NewWithSlots(old.slots, old.name, size, old.lineSize, old.ways)
	if err != nil {
		return err
	}
	h.l3 = l3
	for i := range h.l1 {
		h.l1[i].Reset()
		h.l2[i].Reset()
	}
	return nil
}

// Access walks one access down the hierarchy and returns the level that
// served it.
func (h *Hierarchy) Access(cpu int, a uint64, write bool) Level {
	cpu %= len(h.l1)
	if hit, _, _ := h.l1[cpu].Access(a, write); hit {
		return L1
	}
	if hit, _, _ := h.l2[cpu].Access(a, write); hit {
		return L2
	}
	if hit, _, _ := h.l3.Access(a, write); hit {
		return L3
	}
	return Memory
}

// L3Stats returns the shared LLC counters.
func (h *Hierarchy) L3Stats() Stats { return h.l3.Stats() }

// Reset clears every level.
func (h *Hierarchy) Reset() {
	for i := range h.l1 {
		h.l1[i].Reset()
		h.l2[i].Reset()
	}
	h.l3.Reset()
}

// DRAMCache models the on-package 1 GB L4 alternative: 15 ways of data in
// a 16-way array, tags packed into the 16th line. A lookup always costs one
// on-package DRAM access (the tag read); a hit costs a second one (the data
// read), which is why the paper rates a hit at 2x the on-package latency.
type DRAMCache struct {
	c   *Cache
	lat config.Latencies
}

// NewDRAMCache builds the L4. The line size follows the tag-in-row layout:
// one row of 16 lines holds 15 data lines plus the set's tags, so the
// cache's data capacity is 15/16 of size.
func NewDRAMCache(size, lineSize uint64, lat config.Latencies) (*DRAMCache, error) {
	data := size / 16 * 15
	c, err := New("L4", data, lineSize, 15)
	if err != nil {
		return nil, err
	}
	return &DRAMCache{c: c, lat: lat}, nil
}

// Access looks up a and returns (hit, latency in cycles): 2x on-package
// access on a hit; the tag-probe latency alone on a miss (the off-package
// access that follows is the caller's to account).
func (d *DRAMCache) Access(a uint64, write bool) (bool, int64) {
	hit, _, _ := d.c.Access(a, write)
	if hit {
		return true, d.lat.L4HitLatency()
	}
	return false, d.lat.L4MissProbe()
}

// Stats returns the underlying cache counters.
func (d *DRAMCache) Stats() Stats { return d.c.Stats() }
