// Package rng provides the simulator's deterministic pseudo-random number
// generator: a splitmix64 stream with an explicit, serializable state word.
//
// Every stochastic component in the simulator (fault injection, synthetic
// workload generation, random victim selection) draws from a Rand so that
// the complete PRNG state of a run is a handful of uint64s — trivially
// checkpointable and bit-for-bit reproducible on restore. The core step and
// the Float64 mapping are identical to the generator previously embedded in
// internal/fault, so fault schedules keyed by seed are unchanged.
package rng

import "math"

// Rand is a splitmix64 generator. The zero value is a valid generator
// seeded with 0; use New to map seed 0 to a non-degenerate default the way
// the fault injector always has.
type Rand struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *Rand {
	return &Rand{state: seed}
}

// State returns the current state word. Capturing it and later calling
// SetState resumes the stream exactly.
func (r *Rand) State() uint64 { return r.state }

// SetState overwrites the state word, positioning the stream exactly where
// a previous State call observed it.
func (r *Rand) SetState(s uint64) { r.state = s }

// Uint64 advances the stream one step and returns 64 uniform bits
// (splitmix64, Steele et al.).
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform float64 in [0,1) built from the top 53 bits of
// one Uint64 draw — the same mapping the fault injector has always used.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Int63n returns a uniform int64 in [0,n). It panics if n <= 0.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int63n with n <= 0")
	}
	return int64(r.Uint64()>>1) % n
}

// Intn returns a uniform int in [0,n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	return int(r.Int63n(int64(n)))
}

// ExpFloat64 returns an exponentially distributed float64 with rate 1
// (mean 1) by inversion. One Uint64 draw per call.
func (r *Rand) ExpFloat64() float64 {
	return -math.Log(1 - r.Float64())
}

// Zipf draws integers in [0,imax] with probability proportional to
// (v+k)**-s, matching the parameterization of math/rand.Zipf (rejection
// method of Hörmann and Derflinger). All mutable state lives in the shared
// Rand; the Zipf itself is immutable after NewZipf, so checkpointing the
// Rand state word checkpoints the Zipf stream too.
type Zipf struct {
	r            *Rand
	imax         float64
	v            float64
	q            float64
	s            float64
	oneminusQ    float64
	oneminusQinv float64
	hxm          float64
	hx0minusHxm  float64
}

func (z *Zipf) h(x float64) float64 {
	return math.Exp(z.oneminusQ*math.Log(z.v+x)) * z.oneminusQinv
}

func (z *Zipf) hinv(x float64) float64 {
	return math.Exp(z.oneminusQinv*math.Log(z.oneminusQ*x)) - z.v
}

// NewZipf returns a Zipf variate generator drawing from r. Requirements
// match math/rand.NewZipf: s > 1 and v >= 1; nil is returned otherwise.
func NewZipf(r *Rand, s, v float64, imax uint64) *Zipf {
	if s <= 1.0 || v < 1 {
		return nil
	}
	z := &Zipf{
		r:    r,
		imax: float64(imax),
		v:    v,
		q:    s,
	}
	z.oneminusQ = 1.0 - z.q
	z.oneminusQinv = 1.0 / z.oneminusQ
	z.hxm = z.h(z.imax + 0.5)
	z.hx0minusHxm = z.h(0.5) - math.Exp(math.Log(z.v)*(-z.q)) - z.hxm
	z.s = 1 - z.hinv(z.h(1.5)-math.Exp(-z.q*math.Log(z.v+1.0)))
	return z
}

// Uint64 returns one Zipf-distributed draw.
func (z *Zipf) Uint64() uint64 {
	if z == nil {
		panic("rng: nil Zipf")
	}
	k := 0.0
	for {
		r := z.r.Float64()
		ur := z.hxm + r*z.hx0minusHxm
		x := z.hinv(ur)
		k = math.Floor(x + 0.5)
		if k-x <= z.s {
			break
		}
		if ur >= z.h(k+0.5)-math.Exp(-math.Log(k+z.v)*z.q) {
			break
		}
	}
	return uint64(k)
}
