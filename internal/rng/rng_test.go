package rng

import (
	"math"
	"testing"
)

// faultNext01 is the exact draw formula historically embedded in
// internal/fault.Injector.next01; the shared Rand must reproduce it
// bit-for-bit so fault schedules keyed by seed survive the extraction.
func faultNext01(state *uint64) float64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / float64(1<<53)
}

func TestFloat64MatchesFaultInjectorFormula(t *testing.T) {
	for _, seed := range []uint64{1, 2, 0xdeadbeef, ^uint64(0)} {
		r := New(seed)
		state := seed
		for i := 0; i < 1000; i++ {
			want := faultNext01(&state)
			got := r.Float64()
			if got != want {
				t.Fatalf("seed %#x draw %d: got %v want %v", seed, i, got, want)
			}
		}
		if r.State() != state {
			t.Fatalf("seed %#x: state diverged: got %#x want %#x", seed, r.State(), state)
		}
	}
}

func TestStateRoundTrip(t *testing.T) {
	r := New(42)
	for i := 0; i < 17; i++ {
		r.Uint64()
	}
	saved := r.State()
	var want [8]uint64
	for i := range want {
		want[i] = r.Uint64()
	}
	r2 := New(0)
	r2.SetState(saved)
	for i := range want {
		if got := r2.Uint64(); got != want[i] {
			t.Fatalf("draw %d after SetState: got %#x want %#x", i, got, want[i])
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		if v := r.Intn(13); v < 0 || v >= 13 {
			t.Fatalf("Intn(13) = %d out of range", v)
		}
		if v := r.Int63n(1); v != 0 {
			t.Fatalf("Int63n(1) = %d, want 0", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestExpFloat64Finite(t *testing.T) {
	r := New(99)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 || math.IsInf(v, 0) || math.IsNaN(v) {
			t.Fatalf("ExpFloat64 = %v", v)
		}
		sum += v
	}
	if mean := sum / n; mean < 0.95 || mean > 1.05 {
		t.Fatalf("ExpFloat64 mean = %v, want ~1", mean)
	}
}

func TestZipfDistribution(t *testing.T) {
	r := New(3)
	z := NewZipf(r, 1.2, 1, 999)
	if z == nil {
		t.Fatal("NewZipf returned nil for valid params")
	}
	counts := make([]int, 1000)
	for i := 0; i < 200000; i++ {
		k := z.Uint64()
		if k > 999 {
			t.Fatalf("Zipf draw %d out of range", k)
		}
		counts[k]++
	}
	// Rank 0 must dominate and the tail must still be populated.
	if counts[0] <= counts[1] || counts[0] <= counts[10] {
		t.Fatalf("Zipf head not dominant: c0=%d c1=%d c10=%d", counts[0], counts[1], counts[10])
	}
	var tail int
	for _, c := range counts[500:] {
		tail += c
	}
	if tail == 0 {
		t.Fatal("Zipf tail never sampled")
	}
}

func TestZipfRejectsBadParams(t *testing.T) {
	r := New(1)
	if NewZipf(r, 1.0, 1, 10) != nil {
		t.Fatal("NewZipf accepted s=1")
	}
	if NewZipf(r, 2.0, 0.5, 10) != nil {
		t.Fatal("NewZipf accepted v<1")
	}
}
