package stats

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestLatencyStatBasics(t *testing.T) {
	var s LatencyStat
	for _, v := range []int64{10, 20, 30} {
		s.Add(v)
	}
	if s.Count() != 3 {
		t.Fatalf("count = %d", s.Count())
	}
	if s.Mean() != 20 {
		t.Fatalf("mean = %f, want 20", s.Mean())
	}
	if s.Min() != 10 || s.Max() != 30 {
		t.Fatalf("min/max = %d/%d", s.Min(), s.Max())
	}
	wantSD := math.Sqrt(200.0 / 3.0)
	if math.Abs(s.StdDev()-wantSD) > 1e-9 {
		t.Fatalf("sd = %f, want %f", s.StdDev(), wantSD)
	}
}

func TestLatencyStatEmpty(t *testing.T) {
	var s LatencyStat
	if s.Mean() != 0 || s.StdDev() != 0 || s.Count() != 0 {
		t.Fatal("empty accumulator must report zeros")
	}
}

func TestLatencyStatMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var all, a, b LatencyStat
	for i := 0; i < 1000; i++ {
		v := int64(rng.Intn(10000))
		all.Add(v)
		if i%2 == 0 {
			a.Add(v)
		} else {
			b.Add(v)
		}
	}
	a.Merge(b)
	if a.Count() != all.Count() {
		t.Fatalf("merged count %d != %d", a.Count(), all.Count())
	}
	if math.Abs(a.Mean()-all.Mean()) > 1e-9 {
		t.Fatalf("merged mean %f != %f", a.Mean(), all.Mean())
	}
	if math.Abs(a.StdDev()-all.StdDev()) > 1e-6 {
		t.Fatalf("merged sd %f != %f", a.StdDev(), all.StdDev())
	}
	if a.Min() != all.Min() || a.Max() != all.Max() {
		t.Fatal("merged min/max wrong")
	}
}

func TestLatencyStatMergeEmpty(t *testing.T) {
	var a, b LatencyStat
	a.Add(5)
	a.Merge(b) // merging empty is a no-op
	if a.Count() != 1 || a.Mean() != 5 {
		t.Fatal("merge with empty changed stats")
	}
	b.Merge(a) // merging into empty copies
	if b.Count() != 1 || b.Mean() != 5 {
		t.Fatal("merge into empty did not copy")
	}
}

func TestHistogramPercentile(t *testing.T) {
	var h Histogram
	for i := int64(1); i <= 1000; i++ {
		h.Add(i)
	}
	if h.Total() != 1000 {
		t.Fatalf("total = %d", h.Total())
	}
	// p50 of 1..1000 is <= 512's bucket top edge (1024).
	if p := h.Percentile(50); p < 256 || p > 1024 {
		t.Fatalf("p50 = %d, want within (256,1024]", p)
	}
	if p99, p50 := h.Percentile(99), h.Percentile(50); p99 < p50 {
		t.Fatalf("p99 %d < p50 %d", p99, p50)
	}
}

func TestHistogramNegativeClamps(t *testing.T) {
	var h Histogram
	h.Add(-5)
	if h.Total() != 1 || h.Bucket(0) != 1 {
		t.Fatal("negative sample not clamped to bucket 0")
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter()
	c.Inc("a", 2)
	c.Inc("b", 1)
	c.Inc("a", 3)
	if c.Get("a") != 5 || c.Get("b") != 1 {
		t.Fatalf("counter values wrong: %s", c.Snapshot())
	}
	if got := c.Snapshot(); got != "a=5 b=1" {
		t.Fatalf("snapshot = %q", got)
	}
	if names := c.Names(); len(names) != 2 || names[0] != "a" {
		t.Fatalf("names = %v", names)
	}
}

// Report-time ordering must be sorted by name, not first-use order, so two
// runs that touch counters in different orders render identical reports.
func TestCounterDeterministicOrder(t *testing.T) {
	c := NewCounter()
	c.Inc("zeta", 1)
	c.Inc("alpha", 2)
	c.Inc("mid", 3)
	if names := c.Names(); !sort.StringsAreSorted(names) {
		t.Fatalf("Names not sorted: %v", names)
	}
	if got := c.Snapshot(); got != "alpha=2 mid=3 zeta=1" {
		t.Fatalf("snapshot = %q", got)
	}
}

// Reading an absent name registers it at zero: the name appears in reports
// instead of silently vanishing.
func TestCounterGetRegisters(t *testing.T) {
	c := NewCounter()
	c.Inc("hits", 4)
	if v := c.Get("misses"); v != 0 {
		t.Fatalf("absent counter = %d, want 0", v)
	}
	if got := c.Snapshot(); got != "hits=4 misses=0" {
		t.Fatalf("snapshot after Get = %q", got)
	}
	if names := c.Names(); len(names) != 2 {
		t.Fatalf("names = %v, want both registered", names)
	}
}

func TestCounterSet(t *testing.T) {
	const (
		ctrHits CounterID = iota
		ctrMisses
		ctrEvicts
	)
	s := NewCounterSet("hits", "misses", "evicts")
	s.Inc(ctrHits, 2)
	s.Inc(ctrMisses, 1)
	s.Inc(ctrHits, 3)
	s.Inc(-1, 99)           // ignored
	s.Inc(CounterID(7), 99) // ignored
	if s.Get(ctrHits) != 5 || s.Get(ctrMisses) != 1 || s.Get(ctrEvicts) != 0 {
		t.Fatalf("values wrong: %s", s.Snapshot())
	}
	if s.Get(CounterID(7)) != 0 {
		t.Fatal("out-of-range Get not zero")
	}
	if s.Name(ctrEvicts) != "evicts" || s.Name(-1) != "" {
		t.Fatal("Name lookup wrong")
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if got := s.Snapshot(); got != "evicts=0 hits=5 misses=1" {
		t.Fatalf("snapshot = %q", got)
	}
	s.Reset()
	if got := s.Snapshot(); got != "evicts=0 hits=0 misses=0" {
		t.Fatalf("snapshot after reset = %q", got)
	}
}

func TestCounterSetZeroAlloc(t *testing.T) {
	const ctrA CounterID = 0
	s := NewCounterSet("a", "b")
	allocs := testing.AllocsPerRun(1000, func() { s.Inc(ctrA, 1) })
	if allocs != 0 {
		t.Fatalf("CounterSet.Inc allocates %.1f/op, want 0", allocs)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := NewTable("Name", "Value")
	tbl.AddRow("x", "1")
	tbl.AddRowf("yyyy", 2.5)
	out := tbl.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header, rule, 2 rows
		t.Fatalf("want 4 lines, got %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Name") {
		t.Fatalf("header missing: %q", lines[0])
	}
	if !strings.Contains(lines[3], "2.5") {
		t.Fatalf("float row missing: %q", lines[3])
	}
	if tbl.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tbl.NumRows())
	}
}

func TestTableRowWidthMismatch(t *testing.T) {
	tbl := NewTable("A", "B")
	tbl.AddRow("only-one")
	tbl.AddRow("one", "two", "three-dropped")
	out := tbl.String()
	if strings.Contains(out, "three-dropped") {
		t.Fatal("extra cell should be dropped")
	}
}

// Property: mean is always within [min, max].
func TestMeanWithinBounds(t *testing.T) {
	f := func(vs []int64) bool {
		if len(vs) == 0 {
			return true
		}
		var s LatencyStat
		for _, v := range vs {
			s.Add(v % 100000)
		}
		return s.Mean() >= float64(s.Min()) && s.Mean() <= float64(s.Max())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: merge order does not change the result.
func TestMergeCommutative(t *testing.T) {
	f := func(xs, ys []int64) bool {
		var a1, b1, a2, b2 LatencyStat
		for _, v := range xs {
			a1.Add(v % 1000)
			a2.Add(v % 1000)
		}
		for _, v := range ys {
			b1.Add(v % 1000)
			b2.Add(v % 1000)
		}
		a1.Merge(b1)
		b2.Merge(a2)
		return a1.Count() == b2.Count() &&
			math.Abs(a1.Mean()-b2.Mean()) < 1e-9 &&
			math.Abs(a1.StdDev()-b2.StdDev()) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
