// Package stats provides the small statistics toolkit used by the
// simulator: streaming latency accumulators, bucketed histograms, and
// fixed-width table rendering for experiment output.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// LatencyStat accumulates a stream of latency samples.
type LatencyStat struct {
	n   uint64
	sum float64
	min int64
	max int64
	m2  float64 // Welford second moment for variance
	mu  float64 // running mean for Welford
}

// Add records one sample.
func (s *LatencyStat) Add(v int64) {
	if s.n == 0 {
		s.min, s.max = v, v
	} else {
		if v < s.min {
			s.min = v
		}
		if v > s.max {
			s.max = v
		}
	}
	s.n++
	s.sum += float64(v)
	delta := float64(v) - s.mu
	s.mu += delta / float64(s.n)
	s.m2 += delta * (float64(v) - s.mu)
}

// Merge folds other into s.
func (s *LatencyStat) Merge(other LatencyStat) {
	if other.n == 0 {
		return
	}
	if s.n == 0 {
		*s = other
		return
	}
	if other.min < s.min {
		s.min = other.min
	}
	if other.max > s.max {
		s.max = other.max
	}
	// Chan et al. parallel variance combination.
	n1, n2 := float64(s.n), float64(other.n)
	delta := other.mu - s.mu
	s.mu = (n1*s.mu + n2*other.mu) / (n1 + n2)
	s.m2 = s.m2 + other.m2 + delta*delta*n1*n2/(n1+n2)
	s.n += other.n
	s.sum += other.sum
}

// Count returns the number of samples.
func (s LatencyStat) Count() uint64 { return s.n }

// Sum returns the sample sum.
func (s LatencyStat) Sum() float64 { return s.sum }

// Mean returns the arithmetic mean, or 0 with no samples.
func (s LatencyStat) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Min returns the smallest sample, or 0 with no samples.
func (s LatencyStat) Min() int64 { return s.min }

// Max returns the largest sample, or 0 with no samples.
func (s LatencyStat) Max() int64 { return s.max }

// StdDev returns the population standard deviation.
func (s LatencyStat) StdDev() float64 {
	if s.n < 2 {
		return 0
	}
	return math.Sqrt(s.m2 / float64(s.n))
}

// String summarizes the accumulator.
func (s LatencyStat) String() string {
	return fmt.Sprintf("n=%d mean=%.1f min=%d max=%d sd=%.1f", s.n, s.Mean(), s.min, s.max, s.StdDev())
}

// Histogram is a power-of-two bucketed latency histogram: bucket i counts
// samples in [2^i, 2^(i+1)).
type Histogram struct {
	buckets [64]uint64
	total   uint64
}

// Add records one non-negative sample.
func (h *Histogram) Add(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketOf(uint64(v))]++
	h.total++
}

func bucketOf(v uint64) int {
	b := 0
	for v > 1 {
		v >>= 1
		b++
	}
	return b
}

// Total returns the sample count.
func (h *Histogram) Total() uint64 { return h.total }

// Bucket returns the count of bucket i.
func (h *Histogram) Bucket(i int) uint64 {
	if i < 0 || i >= len(h.buckets) {
		return 0
	}
	return h.buckets[i]
}

// Percentile returns an upper bound for the p-th percentile (0 < p <= 100)
// as the top edge of the bucket containing it.
func (h *Histogram) Percentile(p float64) int64 {
	if h.total == 0 {
		return 0
	}
	target := uint64(math.Ceil(p / 100 * float64(h.total)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.buckets {
		cum += c
		if cum >= target {
			return int64(1) << uint(i+1)
		}
	}
	return math.MaxInt64
}

// Merge folds other's buckets into h. Percentiles over the merged histogram
// equal percentiles over the concatenated sample streams, so per-channel
// histograms can be combined without replaying samples.
func (h *Histogram) Merge(other *Histogram) {
	for i, c := range other.buckets {
		h.buckets[i] += c
	}
	h.total += other.total
}

// Counter is a named monotonic counter set. It is a convenience API for
// report-time accounting; code on a per-record hot path should use a
// CounterSet, which replaces the string hashing with an array index.
type Counter struct {
	names  []string
	values map[string]uint64
}

// NewCounter returns an empty counter set.
func NewCounter() *Counter {
	return &Counter{values: make(map[string]uint64)}
}

// Inc adds delta to name, creating it at zero if absent.
func (c *Counter) Inc(name string, delta uint64) {
	if _, ok := c.values[name]; !ok {
		c.names = append(c.names, name)
	}
	c.values[name] += delta
}

// Get returns the current value of name, registering it at zero if absent:
// a read is a declaration of interest, so the name shows up in Names and
// Snapshot instead of silently vanishing from reports.
func (c *Counter) Get(name string) uint64 {
	v, ok := c.values[name]
	if !ok {
		c.names = append(c.names, name)
		c.values[name] = 0
	}
	return v
}

// Merge folds other's counters into c, summing values name by name. Names
// only c has keep their values; names only other has are registered. Since
// Names and Snapshot sort, the merged report is identical no matter the
// order counters were folded in — shards can finish in any order.
func (c *Counter) Merge(other *Counter) {
	if other == nil {
		return
	}
	for _, name := range other.names {
		c.Inc(name, other.values[name])
	}
}

// Names returns the registered counter names in sorted order, so report
// output is deterministic regardless of first-use order.
func (c *Counter) Names() []string {
	names := append([]string(nil), c.names...)
	sort.Strings(names)
	return names
}

// Snapshot returns a sorted name=value dump.
func (c *Counter) Snapshot() string {
	var b strings.Builder
	for i, k := range c.Names() {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", k, c.values[k])
	}
	return b.String()
}

// CounterID indexes one counter of a CounterSet.
type CounterID int

// CounterSet is a fixed, enum-indexed set of monotonic counters: the hot
// path increments a slot by integer index (one bounds-checked array write,
// no hashing, no allocation) and the string names are only consulted at
// report time. Declare the IDs as an iota enum matching the construction
// order of the names.
type CounterSet struct {
	names  []string
	values []uint64
}

// NewCounterSet builds a set with one slot per name, all zero.
func NewCounterSet(names ...string) *CounterSet {
	return &CounterSet{
		names:  append([]string(nil), names...),
		values: make([]uint64, len(names)),
	}
}

// Inc adds delta to counter id. Out-of-range IDs are ignored.
func (c *CounterSet) Inc(id CounterID, delta uint64) {
	if id >= 0 && int(id) < len(c.values) {
		c.values[id] += delta
	}
}

// Get returns counter id's value (zero for out-of-range IDs).
func (c *CounterSet) Get(id CounterID) uint64 {
	if id >= 0 && int(id) < len(c.values) {
		return c.values[id]
	}
	return 0
}

// Name returns counter id's report-time name.
func (c *CounterSet) Name(id CounterID) string {
	if id >= 0 && int(id) < len(c.names) {
		return c.names[id]
	}
	return ""
}

// Len returns the number of counters.
func (c *CounterSet) Len() int { return len(c.values) }

// Reset zeroes every counter, keeping the names.
func (c *CounterSet) Reset() {
	for i := range c.values {
		c.values[i] = 0
	}
}

// Snapshot returns a sorted name=value dump, matching Counter.Snapshot.
func (c *CounterSet) Snapshot() string {
	idx := make([]int, len(c.names))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return c.names[idx[a]] < c.names[idx[b]] })
	var b strings.Builder
	for i, k := range idx {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", c.names[k], c.values[k])
	}
	return b.String()
}

// Table renders aligned fixed-width tables for experiment output.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends a row; cells beyond the header width are dropped and
// missing cells are blank.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row formatting each cell with %v.
func (t *Table) AddRowf(cells ...interface{}) {
	s := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			s[i] = fmt.Sprintf("%.1f", v)
		default:
			s[i] = fmt.Sprint(c)
		}
	}
	t.AddRow(s...)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
