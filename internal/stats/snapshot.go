package stats

import (
	"encoding/json"

	"heteromem/internal/snap"
)

// SnapshotTo writes the accumulator's full Welford state.
func (s *LatencyStat) SnapshotTo(e *snap.Encoder) {
	e.U64(s.n)
	e.F64(s.sum)
	e.I64(s.min)
	e.I64(s.max)
	e.F64(s.m2)
	e.F64(s.mu)
}

// RestoreFrom reads the state written by SnapshotTo.
func (s *LatencyStat) RestoreFrom(d *snap.Decoder) error {
	s.n = d.U64()
	s.sum = d.F64()
	s.min = d.I64()
	s.max = d.I64()
	s.m2 = d.F64()
	s.mu = d.F64()
	return d.Err()
}

// latencyStatJSON is the exported JSON shape of a LatencyStat. The fields
// carry the complete accumulator state (not just derived summaries) so a
// Result stored in a sweep manifest reloads with full fidelity.
type latencyStatJSON struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	Min   int64   `json:"min"`
	Max   int64   `json:"max"`
	Mean  float64 `json:"mean"`
	M2    float64 `json:"m2"`
}

// MarshalJSON encodes the full accumulator state.
func (s LatencyStat) MarshalJSON() ([]byte, error) {
	return json.Marshal(latencyStatJSON{
		Count: s.n, Sum: s.sum, Min: s.min, Max: s.max, Mean: s.mu, M2: s.m2,
	})
}

// UnmarshalJSON decodes the state written by MarshalJSON.
func (s *LatencyStat) UnmarshalJSON(b []byte) error {
	var j latencyStatJSON
	if err := json.Unmarshal(b, &j); err != nil {
		return err
	}
	s.n, s.sum, s.min, s.max, s.mu, s.m2 = j.Count, j.Sum, j.Min, j.Max, j.Mean, j.M2
	return nil
}

// SnapshotTo writes the bucket counts and total.
func (h *Histogram) SnapshotTo(e *snap.Encoder) {
	for _, b := range h.buckets {
		e.U64(b)
	}
	e.U64(h.total)
}

// RestoreFrom reads the state written by SnapshotTo.
func (h *Histogram) RestoreFrom(d *snap.Decoder) error {
	for i := range h.buckets {
		h.buckets[i] = d.U64()
	}
	h.total = d.U64()
	return d.Err()
}
