package stats

import (
	"math/rand"
	"testing"
)

// TestCounterMergeFoldOrderIndependent pins the per-channel counter fold:
// merging the same set of shard counters in any completion order must
// produce identical values and identical (sorted) name order.
func TestCounterMergeFoldOrderIndependent(t *testing.T) {
	shards := make([]*Counter, 4)
	for i := range shards {
		c := NewCounter()
		c.Inc("swaps", uint64(10*(i+1)))
		c.Inc("stalls", uint64(i))
		if i%2 == 0 {
			c.Inc("rollbacks", 1) // present on only some shards
		}
		shards[i] = c
	}

	fold := func(order []int) *Counter {
		total := NewCounter()
		for _, i := range order {
			total.Merge(shards[i])
		}
		return total
	}

	want := fold([]int{0, 1, 2, 3}).Snapshot()
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		order := rng.Perm(len(shards))
		if got := fold(order).Snapshot(); got != want {
			t.Fatalf("fold order %v diverged:\n got %s\nwant %s", order, got, want)
		}
	}

	total := fold([]int{0, 1, 2, 3})
	if got := total.Get("swaps"); got != 100 {
		t.Fatalf("swaps = %d, want 100", got)
	}
	if got := total.Get("rollbacks"); got != 2 {
		t.Fatalf("rollbacks = %d, want 2", got)
	}
	total.Merge(nil) // nil shard (e.g. an instrument only some channels have)
	if got := total.Get("swaps"); got != 100 {
		t.Fatalf("nil merge changed swaps to %d", got)
	}
}

// TestHistogramMergeMatchesCombinedStream: merging per-shard histograms
// must equal the histogram of the combined stream, so a sharded P95 is
// exactly the unsharded one.
func TestHistogramMergeMatchesCombinedStream(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var combined Histogram
	parts := make([]Histogram, 3)
	for i := 0; i < 10_000; i++ {
		v := int64(rng.Intn(1 << 20))
		combined.Add(v)
		parts[i%3].Add(v)
	}
	var merged Histogram
	for i := range parts {
		merged.Merge(&parts[i])
	}
	if merged.Total() != combined.Total() {
		t.Fatalf("Total = %d, want %d", merged.Total(), combined.Total())
	}
	for i := 0; i < 64; i++ {
		if merged.Bucket(i) != combined.Bucket(i) {
			t.Fatalf("bucket %d = %d, want %d", i, merged.Bucket(i), combined.Bucket(i))
		}
	}
	for _, p := range []float64{50, 95, 99} {
		if got, want := merged.Percentile(p), combined.Percentile(p); got != want {
			t.Fatalf("P%g = %d, want %d", p, got, want)
		}
	}
}

// TestLatencyStatMergeFoldOrderIndependent: the Welford-state combination
// used by the hub report must give bit-identical moments regardless of the
// channel fold order (the shards themselves always fold in channel order;
// this pins that the merge would be safe even if they did not).
func TestLatencyStatMergeFoldOrderIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	parts := make([]LatencyStat, 4)
	for i := 0; i < 20_000; i++ {
		parts[i%4].Add(int64(rng.Intn(1 << 16)))
	}
	fold := func(order []int) LatencyStat {
		var total LatencyStat
		for _, i := range order {
			total.Merge(parts[i])
		}
		return total
	}
	want := fold([]int{0, 1, 2, 3})
	got := fold([]int{0, 1, 2, 3})
	if got != want {
		t.Fatal("identical folds differ")
	}
	// Count/Sum/Min/Max are exactly order-independent; the variance term is
	// floating point, so a different order must still agree to full display
	// precision even if the last ulp differs.
	other := fold([]int{3, 1, 0, 2})
	if other.Count() != want.Count() || other.Sum() != want.Sum() ||
		other.Min() != want.Min() || other.Max() != want.Max() {
		t.Fatalf("shuffled fold moments differ: %v vs %v", other, want)
	}
	if other.String() != want.String() {
		t.Fatalf("shuffled fold renders differently: %s vs %s", other.String(), want.String())
	}
}
