package sched

import (
	"testing"

	"heteromem/internal/config"
	"heteromem/internal/dram"
)

func newSched(t *testing.T, channels int, cfg Config, onDone func(*Request), onBulk func(*BulkJob)) *Scheduler {
	t.Helper()
	dev, err := dram.New(dram.Geometry{
		Channels: channels, BanksPerCh: 8, RowBytes: 8192, BurstBytes: 64,
	}, config.OffPackageTiming())
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(dev, cfg, onDone, onBulk)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSingleRequestLatency(t *testing.T) {
	var done []*Request
	s := newSched(t, 1, Config{}, func(r *Request) { done = append(done, r) }, nil)
	r := &Request{ID: 1, Arrive: 100, Addr: 0}
	s.Submit(r, 100)
	s.Advance(10000)
	if len(done) != 1 {
		t.Fatalf("%d requests completed, want 1", len(done))
	}
	tm := s.Device().Timing()
	if r.Done != 100+tm.TRCD+tm.TCL+tm.TBurst {
		t.Fatalf("done = %d", r.Done)
	}
	if r.Latency() != tm.TRCD+tm.TCL+tm.TBurst {
		t.Fatalf("latency = %d", r.Latency())
	}
}

func TestDecisionsWaitForClock(t *testing.T) {
	var done int
	s := newSched(t, 1, Config{}, func(*Request) { done++ }, nil)
	s.Submit(&Request{Arrive: 50}, 50)
	if done != 0 {
		// The decision at cycle 50 can only commit once the clock reaches
		// it — it did (now=50), so service should have happened.
		t.Log("request served at submit time (expected)")
	}
	s.Advance(50)
	if done != 1 {
		t.Fatalf("request not served by its arrival time, done=%d", done)
	}
}

func TestFRFCFSPrefersRowHit(t *testing.T) {
	var order []uint64
	s := newSched(t, 1, Config{}, func(r *Request) { order = append(order, r.ID) }, nil)
	// Open a row; the next command-issue slot lands after both later
	// arrivals, so IDs 2 and 3 queue up and contend at one decision point.
	s.Submit(&Request{ID: 1, Arrive: 0, Addr: 0}, 0)
	// ID 2 misses (different row), ID 3 hits the open row; both have
	// arrived by the decision time, so FR-FCFS must pick ID 3 first.
	s.Submit(&Request{ID: 2, Arrive: 10, Addr: 64 * 1024}, 10)
	s.Submit(&Request{ID: 3, Arrive: 11, Addr: 64}, 11)
	s.Flush()
	if len(order) != 3 {
		t.Fatalf("served %d, want 3", len(order))
	}
	if order[1] != 3 || order[2] != 2 {
		t.Fatalf("service order = %v, want [1 3 2] (row hit first)", order)
	}
}

func TestFCFSWithinSameRow(t *testing.T) {
	var order []uint64
	s := newSched(t, 1, Config{}, func(r *Request) { order = append(order, r.ID) }, nil)
	s.Submit(&Request{ID: 1, Arrive: 10, Addr: 0}, 10)
	s.Submit(&Request{ID: 2, Arrive: 11, Addr: 64}, 11)
	s.Submit(&Request{ID: 3, Arrive: 12, Addr: 128}, 12)
	s.Flush()
	for i, want := range []uint64{1, 2, 3} {
		if order[i] != want {
			t.Fatalf("order = %v, want FCFS [1 2 3]", order)
		}
	}
}

func TestBulkRunsOnIdleChannel(t *testing.T) {
	var bulkDone []*BulkJob
	s := newSched(t, 1, Config{}, nil, func(j *BulkJob) { bulkDone = append(bulkDone, j) })
	j := &BulkJob{Tag: 7, Duration: 1000, Earliest: 0}
	s.SubmitBulk(0, j, 0)
	s.Advance(500)
	if len(bulkDone) != 0 {
		t.Fatal("job finished before enough idle time elapsed")
	}
	s.Advance(2000)
	if len(bulkDone) != 1 || bulkDone[0].Tag != 7 {
		t.Fatalf("bulk job not completed: %v", bulkDone)
	}
	if j.Done > 1000 {
		t.Fatalf("idle channel: job should finish at 1000, got %d", j.Done)
	}
}

func TestBulkDoesNotDelayForeground(t *testing.T) {
	var reqDone *Request
	s := newSched(t, 1, Config{}, func(r *Request) { reqDone = r }, nil)
	// A long bulk job is pending, then a request arrives. The request's
	// queuing delay must stay bounded by the aging quantum, not the whole
	// job.
	s.SubmitBulk(0, &BulkJob{Duration: 100000, Earliest: 0}, 0)
	r := &Request{ID: 1, Arrive: 50, Addr: 0}
	s.Submit(r, 50)
	s.Flush()
	if reqDone == nil {
		t.Fatal("request never completed")
	}
	// Bus was running the bulk job since cycle 0; the request waits at
	// most the rest of... with preemption the wait is one decision point.
	if r.Start-r.Arrive > DefaultStealQuantum+100 {
		t.Fatalf("foreground delayed %d cycles by background job", r.Start-r.Arrive)
	}
}

func TestBulkStarvationBackstop(t *testing.T) {
	// Saturate the channel with foreground row hits and verify the bulk
	// job still completes (aging quantum guarantees progress).
	var bulkDone bool
	s := newSched(t, 1, Config{AgingLimit: 1000, StealQuantum: 200},
		nil, func(*BulkJob) { bulkDone = true })
	s.SubmitBulk(0, &BulkJob{Duration: 2000, Earliest: 0}, 0)
	now := int64(0)
	tm := s.Device().Timing()
	for i := 0; i < 3000; i++ {
		now += tm.TBurst // arrivals at exactly bus rate: zero natural idle
		s.Submit(&Request{ID: uint64(i), Arrive: now, Addr: uint64(i%128) * 64}, now)
	}
	if !bulkDone {
		t.Fatal("bulk job starved despite aging backstop")
	}
}

func TestBulkChainsByEarliest(t *testing.T) {
	var doneAt []int64
	s := newSched(t, 1, Config{}, nil, func(j *BulkJob) { doneAt = append(doneAt, j.Done) })
	s.SubmitBulk(0, &BulkJob{Duration: 100, Earliest: 0}, 0)
	s.SubmitBulk(0, &BulkJob{Duration: 100, Earliest: 5000}, 0)
	s.Advance(10000)
	if len(doneAt) != 2 {
		t.Fatalf("completed %d jobs, want 2", len(doneAt))
	}
	if doneAt[0] != 100 {
		t.Fatalf("first job done at %d, want 100", doneAt[0])
	}
	if doneAt[1] != 5100 {
		t.Fatalf("second job done at %d, want 5100 (respects Earliest)", doneAt[1])
	}
}

func TestFlushDrainsEverything(t *testing.T) {
	var reqs, bulks int
	s := newSched(t, 2, Config{}, func(*Request) { reqs++ }, func(*BulkJob) { bulks++ })
	for i := 0; i < 50; i++ {
		s.Submit(&Request{ID: uint64(i), Arrive: int64(i), Addr: uint64(i) * 64}, int64(i))
	}
	s.SubmitBulk(0, &BulkJob{Duration: 10000, Earliest: 0}, 0)
	s.SubmitBulk(1, &BulkJob{Duration: 10000, Earliest: 0}, 0)
	s.Flush()
	if reqs != 50 || bulks != 2 {
		t.Fatalf("flush left work behind: reqs=%d bulks=%d", reqs, bulks)
	}
	if s.QueueLen() != 0 || s.BulkBacklog() != 0 {
		t.Fatal("queues not empty after flush")
	}
}

func TestSchedulerStats(t *testing.T) {
	s := newSched(t, 1, Config{}, nil, nil)
	for i := 0; i < 10; i++ {
		s.Submit(&Request{ID: uint64(i), Arrive: int64(i), Addr: 0}, int64(i))
	}
	s.Flush()
	served, _, meanQ := s.Stats()
	if served != 10 {
		t.Fatalf("served = %d", served)
	}
	if meanQ < 0 {
		t.Fatalf("mean queue = %f", meanQ)
	}
}

func TestNilDeviceRejected(t *testing.T) {
	if _, err := New(nil, Config{}, nil, nil); err == nil {
		t.Fatal("nil device accepted")
	}
}
