// Package sched implements the per-region transaction scheduler of the
// heterogeneity-aware memory controller: FR-FCFS (first-ready,
// first-come-first-served — Rixner et al., ISCA'00, the policy the paper's
// trace simulation assumes) over a dram.Device, with a background priority
// class for migration copy traffic.
//
// Background bulk transfers steal idle bus cycles: they are preemptible at
// burst granularity, so they fill the gaps between foreground requests
// without delaying them. Under a saturated channel an aging backstop grants
// the head bulk job one small quantum per aging period so copies always
// make forward progress (a real copy engine is guaranteed some minimum
// service rate too).
//
// Scheduling decisions commit only once every request that could
// participate has arrived: because trace arrivals are monotonic, a decision
// at bus-free cycle f is safe when the global clock has reached f. Until
// then requests wait in the pending queue, which is exactly where queuing
// delay comes from.
package sched

import (
	"fmt"
	"math"
	"sort"

	"heteromem/internal/dram"
	"heteromem/internal/obs"
)

// Request is one memory transaction submitted to a region scheduler.
type Request struct {
	ID     uint64
	Arrive int64  // cycle the request reaches the controller
	Addr   uint64 // region-relative machine address
	Write  bool

	// Outputs, valid once the completion callback fires.
	Start   int64 // cycle service began (decision time)
	Done    int64 // cycle the data burst completed
	CoreLat int64 // DRAM-core-only portion (row state + CAS + burst)

	// Attempts counts faulted service attempts so far; on a retry the
	// request re-arrives (Arrive is advanced past the backoff) and goes
	// through arbitration again.
	Attempts int

	// Intrusive caller metadata: the memory controller records the access's
	// origin and routing directly on the request, so it needs no
	// pointer-keyed side table and can pool completed requests.
	Phys    uint64
	Machine uint64
	Issue   int64
	OnPkg   bool

	// Stage and Aux extend the intrusive metadata for the cache schemes'
	// multi-leg accesses (tag probe → data → fill chaining in memctrl):
	// Stage is the controller's leg state, Aux carries the slot address
	// across legs. The default scheme leaves both zero.
	Stage uint8
	Aux   uint64
}

// Latency returns the request's region-internal latency (queue + DRAM).
func (r *Request) Latency() int64 { return r.Done - r.Arrive }

// BulkJob is one background bulk transfer (a migration sub-block copy leg).
type BulkJob struct {
	Tag      uint64 // caller-defined grouping (copy-step ID)
	Duration int64  // total bus cycles the transfer needs
	Earliest int64  // not schedulable before this cycle
	Done     int64  // completion cycle, valid once the callback fires

	// Meta is an opaque caller slot: the memory controller hangs its
	// copy-leg state here instead of keying a side map on the job pointer.
	Meta any

	remaining int64
	enqueued  int64
}

// Config tunes scheduler behaviour.
type Config struct {
	// AgingLimit is how long (cycles) the head background job may starve on
	// a saturated channel before it is granted one quantum ahead of
	// foreground work. Zero selects the default.
	AgingLimit int64
	// StealQuantum is the bus time granted per aging grant. Zero selects
	// the default.
	StealQuantum int64
	// FCFSOnly (ablation) disables the first-ready reordering: requests
	// are served strictly oldest-first.
	FCFSOnly bool
}

// Default background service parameters.
const (
	DefaultAgingLimit   = 4096
	DefaultStealQuantum = 256
)

// Scheduler schedules one region.
type Scheduler struct {
	dev     *dram.Device
	aging   int64
	quantum int64
	onDone  func(*Request)
	onBulk  func(*BulkJob)

	// onFault, when set, decides what happens after the device reports a
	// faulted burst for a request: retry (after backoff cycles of settling
	// time) or give up and deliver the access as-is. The faulted attempt's
	// bus and bank time has been spent either way.
	onFault func(*Request) (retry bool, backoff int64)

	pending [][]*Request // per channel, arrival order
	bulk    [][]*BulkJob // per channel, FIFO
	next    []int64      // per channel: earliest next command-issue decision
	grant   []int64      // per channel: last aging-grant time (starvation backstop)
	wake    []int64      // per channel: no decision can commit before this (0 = unknown)
	work    int          // outstanding requests + bulk jobs across all channels
	tcl     int64        // cached device TCL for command/data pipelining
	fcfs    bool         // ablation: strict FCFS instead of FR-FCFS

	served      uint64
	bulkServed  uint64
	sumQueueing int64
	agingGrants uint64

	// Optional observability instruments (nil-safe; see SetObs).
	obsGrants *obs.Counter
	obsStolen *obs.Counter
}

// New builds a scheduler over dev. onDone fires as each request's service
// is finalized (possibly out of submission order); onBulk fires as each
// background job completes. Either callback may be nil.
func New(dev *dram.Device, cfg Config, onDone func(*Request), onBulk func(*BulkJob)) (*Scheduler, error) {
	if dev == nil {
		return nil, fmt.Errorf("sched: nil device")
	}
	aging := cfg.AgingLimit
	if aging <= 0 {
		aging = DefaultAgingLimit
	}
	quantum := cfg.StealQuantum
	if quantum <= 0 {
		quantum = DefaultStealQuantum
	}
	n := dev.Geometry().Channels
	return &Scheduler{
		dev:     dev,
		aging:   aging,
		quantum: quantum,
		fcfs:    cfg.FCFSOnly,
		onDone:  onDone,
		onBulk:  onBulk,
		pending: make([][]*Request, n),
		bulk:    make([][]*BulkJob, n),
		next:    make([]int64, n),
		grant:   make([]int64, n),
		wake:    make([]int64, n),
		tcl:     dev.Timing().TCL,
	}, nil
}

// Submit enqueues a request and advances its channel as far as the global
// clock `now` (>= r.Arrive) allows.
func (s *Scheduler) Submit(r *Request, now int64) {
	ch := s.dev.ChannelOf(r.Addr)
	s.insert(ch, r)
	s.drain(ch, now)
}

// SetFaultHandler installs the retry-policy callback consulted when the
// device faults a request's burst (see the onFault field). Pass nil to
// treat faults as silently delivered.
func (s *Scheduler) SetFaultHandler(h func(*Request) (retry bool, backoff int64)) {
	s.onFault = h
}

// insert adds r to its channel queue keeping arrival order. Trace arrivals
// are monotonic so this is normally an append; fault retries re-arrive in
// the future and may interleave with younger submissions, so the queue
// must stay sorted for the decision-time logic to hold.
func (s *Scheduler) insert(ch int, r *Request) {
	s.work++
	q := s.pending[ch]
	i := sort.Search(len(q), func(i int) bool { return q[i].Arrive > r.Arrive })
	q = append(q, nil)
	copy(q[i+1:], q[i:])
	q[i] = r
	s.pending[ch] = q
}

// SubmitBulk enqueues a background bulk job on channel ch.
func (s *Scheduler) SubmitBulk(ch int, j *BulkJob, now int64) {
	j.remaining = j.Duration
	j.enqueued = now
	if j.Earliest > j.enqueued {
		j.enqueued = j.Earliest
	}
	s.work++
	s.bulk[ch] = append(s.bulk[ch], j)
	s.drain(ch, now)
}

// Advance lets every channel commit decisions up to the global clock `now`;
// call this periodically so background traffic progresses on channels with
// no foreground arrivals.
func (s *Scheduler) Advance(now int64) {
	// Advance runs on every access; when the region is fully idle (the
	// common case for the lightly-loaded side) it is one integer check.
	if s.work == 0 {
		return
	}
	for ch := range s.pending {
		if len(s.pending[ch]) == 0 && len(s.bulk[ch]) == 0 {
			continue
		}
		// drain recorded when the channel's next decision becomes safe;
		// until the clock gets there a re-drain would just recompute the
		// same early exit.
		if s.wake[ch] > now {
			continue
		}
		s.drain(ch, now)
	}
}

// Flush finalizes everything still queued, as if time ran to infinity, and
// returns the largest completion cycle seen.
func (s *Scheduler) Flush() int64 {
	const horizon = int64(1) << 62
	var last int64
	for ch := range s.pending {
		s.drain(ch, horizon)
		if f := s.dev.BusFree(ch); f > last {
			last = f
		}
	}
	return last
}

// drain commits scheduling decisions on channel ch while they are safe
// (decision time <= now).
func (s *Scheduler) drain(ch int, now int64) {
	s.wake[ch] = 0
	for {
		fg := s.pending[ch]
		bg := s.bulk[ch]
		if len(fg) == 0 && len(bg) == 0 {
			return
		}
		busFree := s.dev.BusFree(ch)

		// Commands issue ahead of data: the next scheduling decision happens
		// when the channel can accept another column command, which runs TCL
		// ahead of the data bus. This is what lets row hits stream at burst
		// rate instead of re-paying the CAS latency per request.
		fgAt := int64(math.MaxInt64)
		if len(fg) > 0 {
			fgAt = s.next[ch]
			if fg[0].Arrive > fgAt {
				fgAt = fg[0].Arrive
			}
		}

		// Background cycle-stealing.
		if len(bg) > 0 {
			j := bg[0]
			if j.Earliest <= now {
				bgAt := busFree
				if j.Earliest > bgAt {
					bgAt = j.Earliest
				}
				var quantum int64
				switch {
				case len(fg) == 0:
					// Idle channel: run as much as the clock allows.
					if bgAt < now {
						quantum = min64(j.remaining, now-bgAt)
					}
				case fgAt > bgAt:
					// Fill the gap before the next foreground decision.
					quantum = min64(j.remaining, fgAt-bgAt)
				case now-j.enqueued > s.aging && now-s.grant[ch] > s.aging:
					// Saturated channel: the job has starved a full aging
					// period of wall-clock time; grant one quantum ahead of
					// foreground work so copies keep a minimum service rate.
					// The grant time is per channel so a backlog of equally
					// starved jobs cannot cascade back-to-back.
					quantum = min64(j.remaining, s.quantum)
					j.enqueued = now
					s.grant[ch] = now
					s.agingGrants++
					s.obsGrants.Inc()
				}
				if quantum > 0 {
					s.obsStolen.Add(uint64(quantum))
					end := s.dev.ReserveBus(ch, bgAt, quantum)
					if n := end - s.tcl; n > s.next[ch] {
						s.next[ch] = n
					}
					j.remaining -= quantum
					if j.remaining == 0 {
						j.Done = end
						s.bulk[ch] = bg[1:]
						s.bulkServed++
						if s.onBulk != nil {
							s.onBulk(j)
						}
					}
					continue
				}
				if len(fg) == 0 {
					return // wait for the clock to advance
				}
			} else if len(fg) == 0 {
				return
			}
		}

		if len(fg) == 0 || fgAt > now {
			if len(fg) > 0 && len(bg) == 0 {
				// Nothing can commit before fgAt: the queue is sorted by
				// arrival and s.next only moves through this loop, and with
				// no background job there is no cycle-stealing to revisit.
				s.wake[ch] = fgAt
			}
			return
		}

		// FR-FCFS: among requests that have arrived by the decision time,
		// prefer the oldest row-buffer hit; otherwise the oldest request.
		pick := -1
		if !s.fcfs {
			for i, r := range fg {
				if r.Arrive > fgAt {
					break
				}
				if s.dev.RowHit(r.Addr) {
					pick = i
					break
				}
			}
		}
		if pick < 0 {
			pick = 0
		}
		r := fg[pick]
		done, coreLat, faulted := s.dev.ServiceChecked(r.Addr, r.Write, fgAt)
		if n := done - s.tcl; n > s.next[ch] {
			s.next[ch] = n
		}
		s.pending[ch] = append(fg[:pick], fg[pick+1:]...)
		s.work--
		if faulted && s.onFault != nil {
			if retry, backoff := s.onFault(r); retry {
				// The bad burst consumed real bus time; the retry re-arrives
				// after the backoff and arbitrates like any other request.
				r.Attempts++
				r.Arrive = done + backoff
				s.insert(ch, r)
				continue
			}
		}
		r.Start = fgAt
		r.Done, r.CoreLat = done, coreLat
		s.served++
		s.sumQueueing += r.Start - r.Arrive
		if s.onDone != nil {
			s.onDone(r)
		}
	}
}

// QueueLen returns the total number of waiting foreground requests.
func (s *Scheduler) QueueLen() int {
	n := 0
	for _, q := range s.pending {
		n += len(q)
	}
	return n
}

// BulkBacklog returns the number of waiting background jobs.
func (s *Scheduler) BulkBacklog() int {
	n := 0
	for _, q := range s.bulk {
		n += len(q)
	}
	return n
}

// SetObs wires optional observability counters: grants counts aging-backstop
// grants (background jobs served ahead of foreground work on a saturated
// channel), stolen counts total bus cycles the background class consumed.
// Either may be nil; recording into nil instruments is a no-op.
func (s *Scheduler) SetObs(grants, stolen *obs.Counter) {
	s.obsGrants = grants
	s.obsStolen = stolen
}

// AgingGrants returns how many times the aging backstop promoted a starved
// background job ahead of foreground traffic.
func (s *Scheduler) AgingGrants() uint64 { return s.agingGrants }

// Stats returns (requests served, bulk jobs served, mean queuing delay).
func (s *Scheduler) Stats() (served, bulkServed uint64, meanQueue float64) {
	if s.served > 0 {
		meanQueue = float64(s.sumQueueing) / float64(s.served)
	}
	return s.served, s.bulkServed, meanQueue
}

// QueueTotals returns the raw (requests served, summed queuing delay)
// accumulators behind Stats. A multi-channel hub folds these across its
// per-channel schedulers so the aggregate mean queue delay is exact rather
// than a mean of per-channel means.
func (s *Scheduler) QueueTotals() (served uint64, sumQueueing int64) {
	return s.served, s.sumQueueing
}

// Device exposes the underlying DRAM model (for stats and power).
func (s *Scheduler) Device() *dram.Device { return s.dev }

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
