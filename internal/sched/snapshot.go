package sched

import "heteromem/internal/snap"

// SnapshotTo writes the scheduler's dynamic state: per-channel decision
// clocks, the waiting foreground requests and background bulk jobs, and
// the service counters. Requests still in the queue carry no output fields
// yet (Start/Done/CoreLat are set at completion), so their identity,
// arrival, address, and retry count reconstruct them exactly. The device,
// callbacks, and tuning parameters are construction inputs.
func (s *Scheduler) SnapshotTo(e *snap.Encoder) {
	e.U32(uint32(len(s.pending)))
	for ch := range s.pending {
		e.I64(s.next[ch])
		e.I64(s.grant[ch])
		e.U32(uint32(len(s.pending[ch])))
		for _, r := range s.pending[ch] {
			e.U64(r.ID)
			e.I64(r.Arrive)
			e.U64(r.Addr)
			e.Bool(r.Write)
			e.U32(uint32(r.Attempts))
		}
		e.U32(uint32(len(s.bulk[ch])))
		for _, j := range s.bulk[ch] {
			e.U64(j.Tag)
			e.I64(j.Duration)
			e.I64(j.Earliest)
			e.I64(j.remaining)
			e.I64(j.enqueued)
		}
	}
	e.U64(s.served)
	e.U64(s.bulkServed)
	e.I64(s.sumQueueing)
	e.U64(s.agingGrants)
}

// RestoreFrom reads the state written by SnapshotTo into a scheduler built
// over the same device and config, materializing fresh Request and BulkJob
// objects. Callers that keyed auxiliary state on the old pointers reattach
// it through ForEachPending / ForEachBulk.
func (s *Scheduler) RestoreFrom(d *snap.Decoder) error {
	nc := int(d.U32())
	if d.Err() != nil {
		return d.Err()
	}
	if nc != len(s.pending) {
		d.Invalid("scheduler has %d channels, snapshot has %d", len(s.pending), nc)
		return d.Err()
	}
	for ch := range s.pending {
		s.next[ch] = d.I64()
		s.grant[ch] = d.I64()
		nf := int(d.U32())
		if d.Err() != nil {
			return d.Err()
		}
		s.pending[ch] = make([]*Request, 0, nf)
		for i := 0; i < nf; i++ {
			r := &Request{
				ID:     d.U64(),
				Arrive: d.I64(),
				Addr:   d.U64(),
				Write:  d.Bool(),
			}
			r.Attempts = int(d.U32())
			if d.Err() != nil {
				return d.Err()
			}
			s.pending[ch] = append(s.pending[ch], r)
		}
		nb := int(d.U32())
		if d.Err() != nil {
			return d.Err()
		}
		s.bulk[ch] = make([]*BulkJob, 0, nb)
		for i := 0; i < nb; i++ {
			j := &BulkJob{
				Tag:      d.U64(),
				Duration: d.I64(),
				Earliest: d.I64(),
			}
			j.remaining = d.I64()
			j.enqueued = d.I64()
			if d.Err() != nil {
				return d.Err()
			}
			s.bulk[ch] = append(s.bulk[ch], j)
		}
	}
	s.served = d.U64()
	s.bulkServed = d.U64()
	s.sumQueueing = d.I64()
	s.agingGrants = d.U64()
	// The outstanding-work count is derived state; rebuild it from the
	// restored queues rather than serializing it.
	s.work = s.QueueLen() + s.BulkBacklog()
	return d.Err()
}

// ForEachPending visits every waiting foreground request in deterministic
// order (channel ascending, queue position ascending).
func (s *Scheduler) ForEachPending(fn func(ch int, r *Request)) {
	for ch, q := range s.pending {
		for _, r := range q {
			fn(ch, r)
		}
	}
}

// ForEachBulk visits every waiting background job in deterministic order
// (channel ascending, queue position ascending).
func (s *Scheduler) ForEachBulk(fn func(ch int, j *BulkJob)) {
	for ch, q := range s.bulk {
		for _, j := range q {
			fn(ch, j)
		}
	}
}
