// Package flog is the fleet observability journal: a leveled, schema'd
// JSONL event log for the distributed sweep service (internal/dsweep).
// The coordinator and every worker write one Record per lifecycle event —
// cell planned, leased, heartbeat, completed, expired, revoked, bad
// resume, duplicate; worker dial, retry, acquire, checkpoint ship, done —
// so a sweep's full cross-host history can be reconstructed from the
// journal alone: takeover chains, exactly-once completion, per-worker
// throughput, and a wall-clock Chrome-trace timeline (see timeline.go).
//
// The journal is an operational artifact, not a hot-path instrument: one
// mutex-guarded write per record, one JSON line per record, flushed to the
// sink immediately so a SIGKILLed process loses at most the line it was
// writing. Every method is nil-safe, matching the internal/obs idiom — a
// component wired without a journal pays a single pointer test.
package flog

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Level classifies a record's severity. The zero value is LevelInfo, so
// hand-built Records journal sensibly without setting it.
type Level int8

// Journal levels, ordered. Debug carries the high-volume per-heartbeat
// records; Info the lease lifecycle; Warn recoverable trouble (expiries,
// revocations, bad resume checkpoints); Error permanent failures.
const (
	LevelDebug Level = iota - 1
	LevelInfo
	LevelWarn
	LevelError
)

// String names the level as it appears in the JSONL records.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return fmt.Sprintf("Level(%d)", int8(l))
	}
}

// MarshalJSON renders the level as its string name.
func (l Level) MarshalJSON() ([]byte, error) { return json.Marshal(l.String()) }

// UnmarshalJSON parses the string names written by MarshalJSON. Unknown
// names land on LevelInfo rather than erroring, so a journal from a newer
// build still parses.
func (l *Level) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	switch s {
	case "debug":
		*l = LevelDebug
	case "warn":
		*l = LevelWarn
	case "error":
		*l = LevelError
	default:
		*l = LevelInfo
	}
	return nil
}

// Journal event names. The coordinator events narrate each cell's lease
// lifecycle; the worker events narrate one process's view of the sweep.
// hmreport -fleet and the chaos campaign's assertions key off these, so
// they are part of the journal schema (DESIGN.md section 13).
const (
	// Coordinator-side events.
	EvPlanned   = "cell-planned"   // cell entered the sweep grid incomplete; Cell, Key, Records=resume point
	EvSkipped   = "cell-skipped"   // cell already complete in the manifest; Cell, Key
	EvLeased    = "cell-leased"    // lease granted; Worker, Lease, Attempt, Records=resume point
	EvHeartbeat = "heartbeat"      // lease renewed; Worker, Lease, Records, Bytes=checkpoint size, RTTMicros
	EvCompleted = "cell-completed" // result recorded in the manifest ledger; Worker, Lease, Records
	EvDuplicate = "cell-duplicate" // completion dropped by first-write-wins; Worker, Lease
	EvExpired   = "lease-expired"  // TTL passed without a heartbeat; Worker, Lease, Attempt=attempts burned
	EvRevoked   = "lease-revoked"  // connection dropped mid-lease; Worker, Lease, Attempt=attempts burned
	EvBadResume = "bad-resume"     // shipped resume checkpoint unusable, cleared for a fresh retry; Worker, Lease
	EvCellFail  = "cell-failed"    // worker-reported attempt failure; Worker, Lease, Err
	EvGiveUp    = "cell-abandoned" // attempts exhausted, cell failed permanently; Cell, Attempt, Err
	EvDrain     = "drain"          // coordinator draining: no new leases
	EvSweepDone = "sweep-done"     // every cell resolved; Records=completed cells

	// Worker-side events.
	EvDial     = "dial"            // dialing the coordinator; Attempt=consecutive failures so far
	EvDialFail = "dial-failed"     // one dial attempt failed; Attempt, Err
	EvAcquire  = "acquire"         // lease received; Cell, Lease, Attempt unused, Records=resume point
	EvShip     = "checkpoint-ship" // checkpoint heartbeated to the coordinator; Lease, Records, Bytes, RTTMicros
	EvWorkDone = "worker-done"     // coordinator reported the sweep over; this worker exits
	EvWorkFail = "worker-failed"   // this worker reported a cell failure; Lease, Err
)

// Record is one journal line. The field set is the union of what every
// event carries; unused fields stay at their zero value and json omitempty
// keeps lines compact. A fixed schema (rather than free-form maps) is what
// lets hmreport -fleet and the chaos assertions consume journals from any
// build without reflection.
type Record struct {
	TS    time.Time `json:"ts"`             // wall clock, RFC 3339 with nanoseconds
	Level Level     `json:"level"`          // debug | info | warn | error
	Role  string    `json:"role"`           // "coordinator" or "worker"
	Node  string    `json:"node,omitempty"` // journal owner: coordinator name or worker name
	Event string    `json:"event"`          // one of the Ev* constants

	Cell    string `json:"cell,omitempty"`    // cell label (workload/design)
	Key     string `json:"key,omitempty"`     // manifest ledger key
	Worker  string `json:"worker,omitempty"`  // worker the event concerns (coordinator records)
	Lease   uint64 `json:"lease,omitempty"`   // lease id
	Attempt int    `json:"attempt,omitempty"` // cell attempt count at the event
	Records uint64 `json:"records,omitempty"` // records completed / resume point
	Bytes   int    `json:"bytes,omitempty"`   // checkpoint payload size

	// RTTMicros is the worker-measured round trip of its previous
	// heartbeat exchange in microseconds (0 = not measured yet).
	RTTMicros int64 `json:"rtt_us,omitempty"`

	Err string `json:"err,omitempty"` // failure cause, verbatim
}

// Journal writes Records as JSONL onto one sink. Goroutine-safe (the
// coordinator journals from per-connection handlers) and nil-safe: every
// method on a nil *Journal is a no-op, so the dsweep hooks cost a pointer
// test when journaling is off.
type Journal struct {
	mu   sync.Mutex
	w    io.Writer
	min  Level
	err  error            // first write error, latched
	now  func() time.Time // test seam; time.Now outside tests
	role string
	node string
}

// Option configures a Journal at construction.
type Option func(*Journal)

// WithMinLevel drops records below min. The default keeps everything
// including debug-level heartbeats — the fleet timeline needs them.
func WithMinLevel(min Level) Option { return func(j *Journal) { j.min = min } }

// WithClock substitutes the wall clock (tests pin timestamps with it).
func WithClock(now func() time.Time) Option { return func(j *Journal) { j.now = now } }

// New returns a journal writing to w, stamping every record with the given
// role ("coordinator" or "worker") and node name.
func New(w io.Writer, role, node string, opts ...Option) *Journal {
	j := &Journal{w: w, min: LevelDebug, now: time.Now, role: role, node: node}
	for _, opt := range opts {
		opt(j)
	}
	return j
}

// Emit stamps rec with the journal's clock, role, and node, then writes it
// as one JSON line. Records below the minimum level are dropped. Safe on a
// nil receiver (no-op). Write errors latch: the first failure is kept and
// later emits are dropped silently (a dying disk must not take the sweep
// down with it); Err surfaces it.
func (j *Journal) Emit(rec Record) {
	if j == nil || rec.Level < j.min {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	rec.TS = j.now()
	rec.Role = j.role
	rec.Node = j.node
	line, err := json.Marshal(rec)
	if err != nil {
		j.err = err
		return
	}
	line = append(line, '\n')
	if _, err := j.w.Write(line); err != nil {
		j.err = err
	}
}

// Err returns the journal's latched write error, if any.
func (j *Journal) Err() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Read parses a JSONL journal. A torn final line — the fingerprint of a
// SIGKILLed writer — is tolerated and dropped; a malformed line anywhere
// else is an error, because it means the file is not a journal at all.
func Read(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	var out []Record
	var pendingErr error
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		if pendingErr != nil {
			// The malformed line was not the last one: corrupt journal.
			return nil, pendingErr
		}
		var rec Record
		if err := json.Unmarshal(raw, &rec); err != nil {
			pendingErr = fmt.Errorf("flog: line %d: %w", line, err)
			continue
		}
		if rec.Event == "" {
			pendingErr = fmt.Errorf("flog: line %d: record missing event", line)
			continue
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("flog: reading journal: %w", err)
	}
	return out, nil
}
