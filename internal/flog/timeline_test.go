package flog

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// chaosJournal synthesizes the journal of a small sweep with one takeover
// chain: cell a/live is leased to w0, expires, is re-leased to w1 (which
// reports a bad resume), fails, and finally completes on w1's retry; cell
// b/n-1 completes first try on w0; a duplicate completion is dropped.
func chaosJournal(t *testing.T) []Record {
	t.Helper()
	var buf bytes.Buffer
	j := New(&buf, "coordinator", "coord", WithClock(testClock()))
	emit := func(rec Record) { j.Emit(rec) }

	emit(Record{Event: EvPlanned, Cell: "a/live", Key: "ka"})
	emit(Record{Event: EvPlanned, Cell: "b/n-1", Key: "kb"})
	emit(Record{Event: EvLeased, Cell: "a/live", Key: "ka", Worker: "w0", Lease: 1, Attempt: 1})
	emit(Record{Event: EvLeased, Cell: "b/n-1", Key: "kb", Worker: "w0", Lease: 2, Attempt: 1})
	emit(Record{Event: EvHeartbeat, Level: LevelDebug, Worker: "w0", Lease: 1, Records: 1000, Bytes: 64, RTTMicros: 90})
	emit(Record{Event: EvHeartbeat, Level: LevelDebug, Worker: "w0", Lease: 2, Records: 2000, Bytes: 64, RTTMicros: 80})
	emit(Record{Event: EvExpired, Level: LevelWarn, Worker: "w0", Lease: 1, Attempt: 1})
	emit(Record{Event: EvCompleted, Worker: "w0", Lease: 2, Records: 8000})
	emit(Record{Event: EvLeased, Cell: "a/live", Key: "ka", Worker: "w1", Lease: 3, Attempt: 2, Records: 1000})
	emit(Record{Event: EvBadResume, Level: LevelWarn, Worker: "w1", Lease: 3})
	emit(Record{Event: EvCellFail, Level: LevelWarn, Worker: "w1", Lease: 3, Err: "unusable resume checkpoint"})
	emit(Record{Event: EvLeased, Cell: "a/live", Key: "ka", Worker: "w1", Lease: 4, Attempt: 3})
	emit(Record{Event: EvHeartbeat, Level: LevelDebug, Worker: "w1", Lease: 4, Records: 4000, Bytes: 64, RTTMicros: 110})
	emit(Record{Event: EvCompleted, Worker: "w1", Lease: 4, Records: 8000})
	emit(Record{Event: EvDuplicate, Level: LevelWarn, Worker: "w0", Lease: 9})
	emit(Record{Event: EvSweepDone, Records: 2})

	recs, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

func TestBuildFleetReconstructsTakeoverChain(t *testing.T) {
	f := BuildFleet(chaosJournal(t))

	if got, want := len(f.Cells), 2; got != want {
		t.Fatalf("%d cells, want %d", got, want)
	}
	if f.Completions != 2 || f.Duplicates != 1 || f.Expiries != 1 || f.BadResumes != 1 || f.Failures != 1 {
		t.Fatalf("counts wrong: %+v", f)
	}
	if f.Takeovers() != 1 {
		t.Fatalf("takeovers = %d, want 1", f.Takeovers())
	}

	a := f.Cells[0]
	if a.Cell != "a/live" || !a.Completed || a.Abandoned {
		t.Fatalf("cell a state wrong: %+v", a)
	}
	if len(a.Attempts) != 3 {
		t.Fatalf("cell a has %d attempts, want the full takeover chain of 3", len(a.Attempts))
	}
	outcomes := []string{a.Attempts[0].Outcome, a.Attempts[1].Outcome, a.Attempts[2].Outcome}
	if outcomes[0] != "expired" || outcomes[1] != "failed" || outcomes[2] != "completed" {
		t.Fatalf("chain outcomes %v", outcomes)
	}
	if a.Attempts[0].Worker != "w0" || a.Attempts[1].Worker != "w1" || a.Attempts[2].Worker != "w1" {
		t.Fatalf("chain workers wrong: %+v", a.Attempts)
	}
	if !a.Attempts[1].BadResume {
		t.Error("bad-resume flag lost on attempt 2")
	}
	if a.Attempts[1].StartRecords != 1000 {
		t.Errorf("attempt 2 resume point = %d, want 1000", a.Attempts[1].StartRecords)
	}
	if a.Attempts[2].EndRecords != 8000 {
		t.Errorf("final attempt records = %d, want 8000", a.Attempts[2].EndRecords)
	}
	if a.Wall <= 0 {
		t.Error("cell wall time not measured")
	}

	// Worker attribution: w0 ran 2 attempts (1 completed), w1 ran 2 (1
	// completed); records flow from heartbeat/completion deltas.
	if len(f.Workers) != 2 {
		t.Fatalf("%d workers, want 2", len(f.Workers))
	}
	byName := map[string]WorkerSummary{}
	for _, w := range f.Workers {
		byName[w.Name] = w
	}
	if w0 := byName["w0"]; w0.Attempts != 2 || w0.Completed != 1 || w0.Records != 1000+8000 {
		t.Errorf("w0 summary wrong: %+v", w0)
	}
	if w1 := byName["w1"]; w1.Attempts != 2 || w1.Completed != 1 || w1.Records != 8000 {
		t.Errorf("w1 summary wrong: %+v", w1)
	}
	if byName["w1"].RecordsSec <= 0 {
		t.Error("w1 throughput not computed")
	}
}

func TestFleetTimelineIsLoadableChromeTrace(t *testing.T) {
	f := BuildFleet(chaosJournal(t))
	var buf bytes.Buffer
	if err := f.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string          `json:"name"`
			Ph   string          `json:"ph"`
			TID  int             `json:"tid"`
			Args json.RawMessage `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("trace is not valid Chrome trace JSON: %v", err)
	}
	if trace.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit %q, want ms (wall-clock domain)", trace.DisplayTimeUnit)
	}
	lanes := map[string]bool{}
	attempts, instants := 0, 0
	for _, ev := range trace.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name == "thread_name" {
				var meta struct {
					Name string `json:"name"`
				}
				if err := json.Unmarshal(ev.Args, &meta); err != nil {
					t.Fatal(err)
				}
				lanes[meta.Name] = true
			}
		case "X":
			attempts++
		case "i":
			instants++
		}
	}
	for _, want := range []string{"coordinator", "w0", "w1"} {
		if !lanes[want] {
			t.Errorf("lane %q missing from trace (have %v)", want, lanes)
		}
	}
	if attempts == 0 || instants == 0 {
		t.Errorf("trace has %d spans and %d instants, want both > 0", attempts, instants)
	}
}

func TestFleetSummaryPostMortem(t *testing.T) {
	f := BuildFleet(chaosJournal(t))
	var buf bytes.Buffer
	f.WriteSummary(&buf)
	out := buf.String()
	for _, want := range []string{
		"2 cells, 2 completed",
		"1 takeovers (1 expired, 0 conn-dropped)",
		"1 duplicates, 1 bad-resumes, 1 failures, 0 abandoned",
		"takeover chains:",
		"a/live: 3 attempts, completed",
		"[bad resume cleared]",
		"slowest cells:",
		"per-worker throughput:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestBuildFleetSkipsWorkerRecordsAndOpenAttempts(t *testing.T) {
	clock := testClock()
	ts := func() time.Time { return clock() }
	recs := []Record{
		{TS: ts(), Role: "worker", Node: "w0", Event: EvDial},
		{TS: ts(), Role: "coordinator", Event: EvPlanned, Cell: "a/live", Key: "k"},
		{TS: ts(), Role: "coordinator", Event: EvLeased, Cell: "a/live", Key: "k", Worker: "w0", Lease: 1, Attempt: 1},
		{TS: ts(), Role: "coordinator", Event: EvHeartbeat, Worker: "w0", Lease: 1, Records: 700},
	}
	f := BuildFleet(recs)
	if len(f.Cells) != 1 || len(f.Cells[0].Attempts) != 1 {
		t.Fatalf("fleet shape wrong: %+v", f)
	}
	a := f.Cells[0].Attempts[0]
	if a.Outcome != "running" {
		t.Errorf("journal cut mid-attempt should leave outcome running, got %q", a.Outcome)
	}
	if a.EndRecords != 700 {
		t.Errorf("open attempt records = %d, want 700", a.EndRecords)
	}
	if f.Cells[0].Completed {
		t.Error("incomplete cell marked completed")
	}
}
