package flog

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"
)

// testClock returns a deterministic clock ticking one second per call.
func testClock() func() time.Time {
	t0 := time.Date(2026, 8, 9, 12, 0, 0, 0, time.UTC)
	n := 0
	return func() time.Time {
		t := t0.Add(time.Duration(n) * time.Second)
		n++
		return t
	}
}

func TestJournalRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	j := New(&buf, "coordinator", "coord-1", WithClock(testClock()))
	j.Emit(Record{Event: EvPlanned, Cell: "pgbench/live", Key: "k1"})
	j.Emit(Record{Event: EvLeased, Level: LevelInfo, Cell: "pgbench/live", Worker: "w0", Lease: 1, Attempt: 1})
	j.Emit(Record{Event: EvHeartbeat, Level: LevelDebug, Worker: "w0", Lease: 1, Records: 500, Bytes: 2048, RTTMicros: 120})
	j.Emit(Record{Event: EvExpired, Level: LevelWarn, Worker: "w0", Lease: 1, Attempt: 1})
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}

	recs, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("read %d records, want 4", len(recs))
	}
	for i, rec := range recs {
		if rec.Role != "coordinator" || rec.Node != "coord-1" {
			t.Errorf("record %d missing role/node stamp: %+v", i, rec)
		}
		if rec.TS.IsZero() {
			t.Errorf("record %d missing timestamp", i)
		}
	}
	if recs[2].RTTMicros != 120 || recs[2].Bytes != 2048 || recs[2].Level != LevelDebug {
		t.Errorf("heartbeat record mangled: %+v", recs[2])
	}
	if recs[1].TS.After(recs[2].TS) {
		t.Error("clock not monotonic across emits")
	}
}

func TestJournalNilSafe(t *testing.T) {
	var j *Journal
	j.Emit(Record{Event: EvLeased})
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestJournalMinLevel(t *testing.T) {
	var buf bytes.Buffer
	j := New(&buf, "worker", "w0", WithMinLevel(LevelInfo), WithClock(testClock()))
	j.Emit(Record{Event: EvShip, Level: LevelDebug})
	j.Emit(Record{Event: EvAcquire, Level: LevelInfo})
	recs, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Event != EvAcquire {
		t.Fatalf("min-level filter kept %v", recs)
	}
}

type failWriter struct{ after int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.after <= 0 {
		return 0, errors.New("disk gone")
	}
	f.after--
	return len(p), nil
}

func TestJournalLatchesWriteError(t *testing.T) {
	j := New(&failWriter{after: 1}, "coordinator", "c", WithClock(testClock()))
	j.Emit(Record{Event: EvPlanned})
	if err := j.Err(); err != nil {
		t.Fatalf("first write failed: %v", err)
	}
	j.Emit(Record{Event: EvLeased})
	if err := j.Err(); err == nil {
		t.Fatal("write error not latched")
	}
	j.Emit(Record{Event: EvCompleted}) // must not panic or clear the error
	if err := j.Err(); err == nil {
		t.Fatal("latched error cleared by a later emit")
	}
}

func TestReadToleratesTornFinalLine(t *testing.T) {
	var buf bytes.Buffer
	j := New(&buf, "coordinator", "c", WithClock(testClock()))
	j.Emit(Record{Event: EvPlanned, Cell: "a/live"})
	j.Emit(Record{Event: EvLeased, Cell: "a/live", Lease: 1})
	full := buf.String()
	torn := full[:len(full)-10] // SIGKILL mid-line

	recs, err := Read(strings.NewReader(torn))
	if err != nil {
		t.Fatalf("torn final line not tolerated: %v", err)
	}
	if len(recs) != 1 || recs[0].Event != EvPlanned {
		t.Fatalf("torn read kept %v", recs)
	}

	// A malformed line in the middle is corruption, not a torn tail.
	corrupt := "{\"event\":\"x\"}\nnot json\n{\"event\":\"y\"}\n"
	if _, err := Read(strings.NewReader(corrupt)); err == nil {
		t.Fatal("mid-journal corruption accepted")
	}
}

func TestLevelJSONRoundTrip(t *testing.T) {
	for _, l := range []Level{LevelDebug, LevelInfo, LevelWarn, LevelError} {
		raw, err := json.Marshal(l)
		if err != nil {
			t.Fatal(err)
		}
		var back Level
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatal(err)
		}
		if back != l {
			t.Errorf("level %v round-tripped to %v", l, back)
		}
	}
	var unknown Level
	if err := json.Unmarshal([]byte(`"fancy-new-level"`), &unknown); err != nil || unknown != LevelInfo {
		t.Errorf("unknown level name should parse as info, got %v err %v", unknown, err)
	}
}
