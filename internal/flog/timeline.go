package flog

import (
	"fmt"
	"io"
	"sort"
	"time"

	"heteromem/internal/obs"
)

// Fleet is a sweep's cross-host history, reconstructed from a journal: per
// cell, the full takeover chain of lease attempts; per worker, attributed
// throughput; and the wall-clock envelope. BuildFleet assembles it from
// coordinator records — the coordinator journal alone tells the whole
// story, because every worker action that matters (heartbeat, completion,
// failure) passes through a coordinator handler.
type Fleet struct {
	Start time.Time // earliest journal record
	End   time.Time // latest journal record

	Cells   []CellHistory
	Workers []WorkerSummary

	Completions int // cells recorded in the ledger
	Duplicates  int // completions dropped by first-write-wins
	Expiries    int // leases lost to missed heartbeats
	Revocations int // leases lost to dropped connections
	BadResumes  int // resume checkpoints cleared as unusable
	Failures    int // worker-reported attempt failures
	Abandoned   int // cells that exhausted their attempts
}

// Takeovers counts crash-driven lease reassignments (expiries plus
// connection-drop revocations) — the number the chaos campaign gates on.
func (f *Fleet) Takeovers() int { return f.Expiries + f.Revocations }

// CellHistory is one cell's lifecycle: every lease attempt in order. More
// than one attempt means the cell survived at least one takeover.
type CellHistory struct {
	Cell string // label (workload/design)
	Key  string // manifest ledger key

	Attempts  []Attempt
	Completed bool
	Abandoned bool // attempts exhausted, failed permanently

	// Wall is planned→completed (or →last attempt end): the cell's total
	// wall-clock cost including every takeover and re-lease gap.
	Wall time.Duration
}

// Attempt is one lease on one cell.
type Attempt struct {
	Worker string
	Lease  uint64
	Number int // 1-based attempt ordinal as the coordinator counted it

	Start, End time.Time
	Outcome    string // "completed", "expired", "revoked", "failed", "running"

	StartRecords uint64 // resume point the lease shipped out
	EndRecords   uint64 // last record count seen (heartbeat or completion)
	Heartbeats   int
	BadResume    bool // this attempt reported an unusable resume checkpoint
}

// WorkerSummary aggregates one worker's contribution to the sweep.
type WorkerSummary struct {
	Name       string
	Attempts   int
	Completed  int
	Records    uint64        // records attributed: per-attempt progress deltas
	Busy       time.Duration // summed attempt durations
	RecordsSec float64       // Records / Busy (0 when Busy is 0)
}

// cellBuilder is CellHistory under assembly: attempts held by pointer so
// heartbeats and closures mutate in place.
type cellBuilder struct {
	cell      string
	key       string
	attempts  []*Attempt
	completed bool
	abandoned bool
	wall      time.Duration
}

// BuildFleet reconstructs the sweep history from journal records. Records
// from worker journals (Role != "coordinator") are tolerated and skipped,
// so a concatenation of every node's journal still assembles cleanly.
func BuildFleet(records []Record) *Fleet {
	f := &Fleet{}
	cells := map[string]*cellBuilder{} // by label
	order := []string{}
	open := map[uint64]*Attempt{} // lease id -> open attempt
	owner := map[uint64]*cellBuilder{}
	workers := map[string]*WorkerSummary{}
	workerOrder := []string{}

	cell := func(label, key string) *cellBuilder {
		c, ok := cells[label]
		if !ok {
			c = &cellBuilder{cell: label, key: key}
			cells[label] = c
			order = append(order, label)
		}
		if c.key == "" {
			c.key = key
		}
		return c
	}
	workerOf := func(name string) *WorkerSummary {
		w, ok := workers[name]
		if !ok {
			w = &WorkerSummary{Name: name}
			workers[name] = w
			workerOrder = append(workerOrder, name)
		}
		return w
	}
	closeAttempt := func(rec Record, outcome string) *Attempt {
		a, ok := open[rec.Lease]
		if !ok {
			return nil
		}
		delete(open, rec.Lease)
		a.End = rec.TS
		a.Outcome = outcome
		if rec.Records > a.EndRecords {
			a.EndRecords = rec.Records
		}
		w := workerOf(a.Worker)
		w.Busy += a.End.Sub(a.Start)
		if a.EndRecords > a.StartRecords {
			w.Records += a.EndRecords - a.StartRecords
		}
		return a
	}

	for _, rec := range records {
		if rec.Role != "coordinator" {
			continue
		}
		if f.Start.IsZero() || rec.TS.Before(f.Start) {
			f.Start = rec.TS
		}
		if rec.TS.After(f.End) {
			f.End = rec.TS
		}
		switch rec.Event {
		case EvPlanned, EvSkipped:
			cell(rec.Cell, rec.Key)
		case EvLeased:
			c := cell(rec.Cell, rec.Key)
			a := &Attempt{
				Worker:       rec.Worker,
				Lease:        rec.Lease,
				Number:       rec.Attempt,
				Start:        rec.TS,
				Outcome:      "running",
				StartRecords: rec.Records,
				EndRecords:   rec.Records,
			}
			c.attempts = append(c.attempts, a)
			open[rec.Lease] = a
			owner[rec.Lease] = c
			workerOf(rec.Worker).Attempts++
		case EvHeartbeat:
			if a, ok := open[rec.Lease]; ok {
				a.Heartbeats++
				if rec.Records > a.EndRecords {
					a.EndRecords = rec.Records
				}
			}
		case EvCompleted:
			f.Completions++
			if a := closeAttempt(rec, "completed"); a != nil {
				workerOf(a.Worker).Completed++
			}
			if c := owner[rec.Lease]; c != nil {
				c.completed = true
				c.wall = rec.TS.Sub(c.attempts[0].Start)
			}
		case EvDuplicate:
			f.Duplicates++
			// A duplicate on a known lease still resolved its cell: the
			// ledger already held the result, the lease retired. Unknown
			// leases (a takeover race's late completion) just count.
			if a := closeAttempt(rec, "duplicate"); a != nil {
				if c := owner[rec.Lease]; c != nil {
					c.completed = true
					c.wall = rec.TS.Sub(c.attempts[0].Start)
				}
			}
		case EvExpired:
			f.Expiries++
			closeAttempt(rec, "expired")
		case EvRevoked:
			f.Revocations++
			closeAttempt(rec, "revoked")
		case EvBadResume:
			f.BadResumes++
			if a, ok := open[rec.Lease]; ok {
				a.BadResume = true
			}
		case EvCellFail:
			f.Failures++
			closeAttempt(rec, "failed")
		case EvGiveUp:
			f.Abandoned++
			if c, ok := cells[rec.Cell]; ok {
				c.abandoned = true
			}
		}
	}
	// Attempts still open at journal end: the sweep (or the journal) was
	// cut short. Close them at the last observed instant.
	for _, a := range open {
		a.End = f.End
		w := workerOf(a.Worker)
		w.Busy += a.End.Sub(a.Start)
		if a.EndRecords > a.StartRecords {
			w.Records += a.EndRecords - a.StartRecords
		}
	}
	for _, c := range cells {
		if !c.completed && len(c.attempts) > 0 {
			c.wall = c.attempts[len(c.attempts)-1].End.Sub(c.attempts[0].Start)
		}
	}

	for _, label := range order {
		f.Cells = append(f.Cells, cells[label].history())
	}
	for _, name := range workerOrder {
		w := workers[name]
		if secs := w.Busy.Seconds(); secs > 0 {
			w.RecordsSec = float64(w.Records) / secs
		}
		f.Workers = append(f.Workers, *w)
	}
	return f
}

// history flattens the builder's pointer-linked attempts into the value
// form the public struct carries.
func (c *cellBuilder) history() CellHistory {
	out := CellHistory{
		Cell:      c.cell,
		Key:       c.key,
		Completed: c.completed,
		Abandoned: c.abandoned,
		Wall:      c.wall,
	}
	for _, a := range c.attempts {
		out.Attempts = append(out.Attempts, *a)
	}
	return out
}

// micros converts a journal timestamp to trace microseconds past origin.
func micros(origin, t time.Time) int64 { return t.Sub(origin).Microseconds() }

// Timeline renders the fleet history as named-lane wall-clock spans for
// obs.WriteChromeTimeline: a coordinator lane of lifecycle instants, one
// lane per worker carrying its lease attempts as spans and heartbeats as
// instant marks. Lanes are ordered coordinator first, then workers by
// first appearance.
func (f *Fleet) Timeline() (lanes []string, spans []obs.NamedSpan) {
	const coordLane = "coordinator"
	lanes = []string{coordLane}
	for _, w := range f.Workers {
		lanes = append(lanes, w.Name)
	}
	for _, c := range f.Cells {
		for _, a := range c.Attempts {
			spans = append(spans, obs.NamedSpan{
				Lane:  a.Worker,
				Name:  fmt.Sprintf("%s #%d %s", c.Cell, a.Number, a.Outcome),
				Cat:   "attempt",
				Begin: micros(f.Start, a.Start),
				End:   micros(f.Start, a.End),
				Args: map[string]uint64{
					"lease":      a.Lease,
					"resume_at":  a.StartRecords,
					"records":    a.EndRecords,
					"heartbeats": uint64(a.Heartbeats),
				},
			})
			// Lease lifecycle instants on the coordinator lane: the lane
			// where takeover chains read as a single narrative.
			spans = append(spans, obs.NamedSpan{
				Lane: coordLane, Name: "lease " + c.Cell, Cat: "lease",
				Begin: micros(f.Start, a.Start), End: micros(f.Start, a.Start),
				Args: map[string]uint64{"lease": a.Lease, "attempt": uint64(a.Number)},
			})
			if a.Outcome != "running" {
				spans = append(spans, obs.NamedSpan{
					Lane: coordLane, Name: a.Outcome + " " + c.Cell, Cat: "lease",
					Begin: micros(f.Start, a.End), End: micros(f.Start, a.End),
					Args: map[string]uint64{"lease": a.Lease, "records": a.EndRecords},
				})
			}
		}
	}
	return lanes, spans
}

// WriteTrace emits the fleet timeline as Chrome trace-event JSON.
func (f *Fleet) WriteTrace(w io.Writer) error {
	lanes, spans := f.Timeline()
	return obs.WriteChromeTimeline(w, lanes, spans)
}

// WriteSummary prints the sweep post-mortem: the headline counts, every
// takeover chain, the slowest cells, and per-worker throughput. Output is
// deterministic for a given journal (ordering ties break on labels), so it
// goldens cleanly.
func (f *Fleet) WriteSummary(w io.Writer) {
	fmt.Fprintf(w, "fleet post-mortem: %d cells, %d completed, %d takeovers (%d expired, %d conn-dropped), %d duplicates, %d bad-resumes, %d failures, %d abandoned\n",
		len(f.Cells), f.Completions, f.Takeovers(), f.Expiries, f.Revocations,
		f.Duplicates, f.BadResumes, f.Failures, f.Abandoned)
	if !f.Start.IsZero() {
		fmt.Fprintf(w, "wall clock: %s (%s -> %s)\n",
			fmtDur(f.End.Sub(f.Start)), f.Start.UTC().Format(time.RFC3339), f.End.UTC().Format(time.RFC3339))
	}

	chains := 0
	for _, c := range f.Cells {
		if len(c.Attempts) > 1 || c.Abandoned {
			chains++
		}
	}
	if chains > 0 {
		fmt.Fprintf(w, "takeover chains:\n")
		for _, c := range f.Cells {
			if len(c.Attempts) <= 1 && !c.Abandoned {
				continue
			}
			state := "completed"
			if c.Abandoned {
				state = "ABANDONED"
			} else if !c.Completed {
				state = "incomplete"
			}
			fmt.Fprintf(w, "  %s: %d attempts, %s, %s wall\n", c.Cell, len(c.Attempts), state, fmtDur(c.Wall))
			for _, a := range c.Attempts {
				extra := ""
				if a.BadResume {
					extra = " [bad resume cleared]"
				}
				fmt.Fprintf(w, "    #%d %-14s lease %-4d %8s  %-9s at %d records%s\n",
					a.Number, a.Worker, a.Lease, fmtDur(a.End.Sub(a.Start)), a.Outcome, a.EndRecords, extra)
			}
		}
	}

	if len(f.Cells) > 0 {
		slowest := append([]CellHistory(nil), f.Cells...)
		sort.SliceStable(slowest, func(i, j int) bool {
			if slowest[i].Wall != slowest[j].Wall {
				return slowest[i].Wall > slowest[j].Wall
			}
			return slowest[i].Cell < slowest[j].Cell
		})
		n := len(slowest)
		if n > 5 {
			n = 5
		}
		fmt.Fprintf(w, "slowest cells:\n")
		for _, c := range slowest[:n] {
			fmt.Fprintf(w, "  %-24s %8s  %d attempt(s)\n", c.Cell, fmtDur(c.Wall), len(c.Attempts))
		}
	}

	if len(f.Workers) > 0 {
		fmt.Fprintf(w, "per-worker throughput:\n")
		sorted := append([]WorkerSummary(nil), f.Workers...)
		sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
		for _, ws := range sorted {
			fmt.Fprintf(w, "  %-14s %d attempt(s), %d completed, %d records, %8s busy, %.0f records/s\n",
				ws.Name, ws.Attempts, ws.Completed, ws.Records, fmtDur(ws.Busy), ws.RecordsSec)
		}
	}
}

// fmtDur renders a duration with fixed millisecond precision so summaries
// golden deterministically regardless of sub-millisecond jitter in inputs.
func fmtDur(d time.Duration) string {
	return d.Round(time.Millisecond).String()
}
