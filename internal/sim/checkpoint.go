// Checkpoint/restore: a run can periodically serialize its complete
// simulation state — controller, devices, schedulers, migration engine,
// fault injector, and trace-source position — into a versioned, checksummed
// snapshot (internal/snap), and a later run can resume from any such
// snapshot and produce a Result byte-identical to the uninterrupted run.
package sim

import (
	"errors"
	"fmt"
	"hash/fnv"

	"heteromem/internal/core"
	"heteromem/internal/memctrl"
	"heteromem/internal/scheme"
	"heteromem/internal/snap"
	"heteromem/internal/trace"
)

// ErrConfigMismatch reports a checkpoint taken under a different simulation
// configuration than the one resuming from it.
var ErrConfigMismatch = errors.New("sim: checkpoint was taken under a different configuration")

// ErrSourceNotCheckpointable reports a trace source that can neither
// serialize its state (snap.Snapshotter) nor seek (trace.Positioner).
var ErrSourceNotCheckpointable = errors.New("sim: trace source supports neither snapshot nor positioning")

// Source kinds recorded in a checkpoint's meta section.
const (
	sourceSnapshot = 0 // full source state serialized (snap.Snapshotter)
	sourcePosition = 1 // record index only (trace.Positioner)
)

// ConfigDigest hashes the semantically relevant configuration — everything
// that shapes the simulated state stream — so a checkpoint can only be
// resumed under the configuration that produced it. Run-control fields
// (MaxRecords, checkpoint settings) and the observability switches (which
// must be off while checkpointing) are excluded.
func ConfigDigest(cfg Config) uint64 {
	h := fnv.New64a()
	var mig core.Options
	if cfg.Migration != nil {
		mig = *cfg.Migration
	}
	fmt.Fprintf(h, "%#v|%#v|%#v|%#v|%v|%#v|%v|%#v|%v|%d|%#v",
		cfg.Geometry, cfg.Latencies, cfg.OffTiming, cfg.OnTiming,
		cfg.Migration != nil, mig, cfg.OSAssisted, cfg.Sched, cfg.MeterPower,
		cfg.Warmup, cfg.Fault)
	// Channel sharding shapes the state stream; the digest uses the
	// effective (defaulted) values so equivalent spellings — Channels 0 vs
	// 1, explicit vs defaulted interleave/hop — resume interchangeably.
	// BarrierWindow is deliberately excluded: results do not depend on it.
	ch, il, hop := effectiveSharding(cfg)
	fmt.Fprintf(h, "|%d|%d|%d", ch, il, hop)
	// The scheme is appended only when non-default so every pre-scheme
	// digest (and the checkpoints and sweep manifests keyed on it) is
	// unchanged for default-scheme runs.
	if cfg.Scheme != (scheme.Spec{}) {
		fmt.Fprintf(h, "|scheme=%s", cfg.Scheme)
	}
	return h.Sum64()
}

// effectiveSharding normalizes the sharding knobs: a single channel has no
// interleave or hop, and a sharded run fills in the defaults the hub would.
func effectiveSharding(cfg Config) (channels int, interleave uint64, hop int64) {
	channels = cfg.Channels
	if channels < 1 {
		channels = 1
	}
	if channels == 1 {
		return 1, 0, 0
	}
	interleave = cfg.InterleaveBytes
	if interleave == 0 {
		interleave = cfg.Geometry.MacroPageSize
	}
	hop = cfg.HopLatency
	if hop == 0 {
		hop = memctrl.DefaultHopLatency
	}
	return channels, interleave, hop
}

// checkpointIncompatible reports which observability feature blocks
// checkpointing, if any. Observability rings and window series are
// deliberately not serialized (they are diagnostic, unbounded, and not part
// of the equivalence contract), so a checkpointed run must not collect them.
func checkpointIncompatible(cfg Config) error {
	switch {
	case cfg.Metrics:
		return fmt.Errorf("sim: checkpointing is incompatible with Metrics collection")
	case cfg.EventTrace > 0:
		return fmt.Errorf("sim: checkpointing is incompatible with EventTrace collection")
	case cfg.SpanTrace > 0:
		return fmt.Errorf("sim: checkpointing is incompatible with SpanTrace collection")
	case cfg.EpochSeries > 0:
		return fmt.Errorf("sim: checkpointing is incompatible with EpochSeries collection")
	case cfg.WindowRecords > 0:
		return fmt.Errorf("sim: checkpointing is incompatible with WindowRecords collection")
	}
	return nil
}

// takeCheckpoint serializes the run state after n completed records. A
// single-channel hub writes the same "ctrl" section as always (checkpoint
// bytes are unchanged by the hub layer); a sharded hub writes one
// "ctrl<i>" section per channel, in channel order, so InspectCheckpoint
// shows the per-channel layout.
func takeCheckpoint(cfg Config, src trace.Source, hub *memctrl.Hub, n uint64) ([]byte, error) {
	e := snap.NewEncoder()
	e.Section("meta")
	e.U64(ConfigDigest(cfg))
	e.U64(n)
	switch s := src.(type) {
	case snap.Snapshotter:
		e.U8(sourceSnapshot)
		e.U64(0)
		e.Section("source")
		s.SnapshotTo(e)
	case trace.Positioner:
		e.U8(sourcePosition)
		e.U64(s.Position())
	default:
		return nil, fmt.Errorf("%w (%T)", ErrSourceNotCheckpointable, src)
	}
	if hub.Channels() == 1 {
		e.Section("ctrl")
		hub.Shard(0).SnapshotTo(e)
	} else {
		for i := 0; i < hub.Channels(); i++ {
			e.Section(fmt.Sprintf("ctrl%d", i))
			hub.Shard(i).SnapshotTo(e)
		}
	}
	return e.Finish()
}

// restoreCheckpoint rebuilds the run state from a checkpoint, returning the
// number of records the checkpointed run had completed. The source and hub
// must have been freshly constructed from the same configuration the
// checkpoint was taken under; the config digest guarantees the channel
// layout (and hence section list) matches.
func restoreCheckpoint(cfg Config, src trace.Source, hub *memctrl.Hub, data []byte) (uint64, error) {
	d, err := snap.NewDecoder(data)
	if err != nil {
		return 0, err
	}
	if err := d.Section("meta"); err != nil {
		return 0, err
	}
	digest := d.U64()
	n := d.U64()
	kind := d.U8()
	pos := d.U64()
	if err := d.Err(); err != nil {
		return 0, err
	}
	if digest != ConfigDigest(cfg) {
		return 0, fmt.Errorf("%w: digest %016x, this run is %016x", ErrConfigMismatch, digest, ConfigDigest(cfg))
	}
	switch kind {
	case sourceSnapshot:
		s, ok := src.(snap.Snapshotter)
		if !ok {
			return 0, fmt.Errorf("sim: checkpoint holds source state but %T cannot restore it", src)
		}
		if err := d.Section("source"); err != nil {
			return 0, err
		}
		if err := s.RestoreFrom(d); err != nil {
			return 0, err
		}
	case sourcePosition:
		s, ok := src.(trace.Positioner)
		if !ok {
			return 0, fmt.Errorf("sim: checkpoint holds a source position but %T cannot seek", src)
		}
		if err := s.SkipTo(pos); err != nil {
			return 0, err
		}
	default:
		d.Invalid("unknown source kind %d", kind)
		return 0, d.Err()
	}
	if hub.Channels() == 1 {
		if err := d.Section("ctrl"); err != nil {
			return 0, err
		}
		if err := hub.Shard(0).RestoreFrom(d); err != nil {
			return 0, err
		}
	} else {
		for i := 0; i < hub.Channels(); i++ {
			if err := d.Section(fmt.Sprintf("ctrl%d", i)); err != nil {
				return 0, err
			}
			if err := hub.Shard(i).RestoreFrom(d); err != nil {
				return 0, err
			}
		}
	}
	return n, d.Err()
}

// CheckpointInfo summarizes a checkpoint without restoring it.
type CheckpointInfo struct {
	Records        uint64   // program accesses completed when it was taken
	ConfigDigest   uint64   // digest of the configuration that produced it
	SourceKind     string   // "snapshot" (full state) or "position" (seek)
	SourcePosition uint64   // record index, for the "position" kind
	Sections       []string // container sections, in file order
	Bytes          int      // total container size
}

// InspectCheckpoint validates a checkpoint's container (checksums, version)
// and returns its metadata. It does not need — or check against — any
// simulation configuration.
func InspectCheckpoint(data []byte) (CheckpointInfo, error) {
	d, err := snap.NewDecoder(data)
	if err != nil {
		return CheckpointInfo{}, err
	}
	info := CheckpointInfo{Sections: d.Sections(), Bytes: len(data)}
	if err := d.Section("meta"); err != nil {
		return CheckpointInfo{}, err
	}
	info.ConfigDigest = d.U64()
	info.Records = d.U64()
	kind := d.U8()
	info.SourcePosition = d.U64()
	if err := d.Err(); err != nil {
		return CheckpointInfo{}, err
	}
	switch kind {
	case sourceSnapshot:
		info.SourceKind = "snapshot"
		info.SourcePosition = 0
	case sourcePosition:
		info.SourceKind = "position"
	default:
		d.Invalid("unknown source kind %d", kind)
		return CheckpointInfo{}, d.Err()
	}
	return info, nil
}
