package sim

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"heteromem/internal/core"
	"heteromem/internal/workload"
)

var updatePerfGoldens = flag.Bool("update", false, "rewrite the perf-rewrite byte-identity goldens")

// perfGoldenConfig mirrors equivConfig but always runs with the invariant
// auditor attached, so the goldens also pin that the audited pipeline is
// observationally unchanged.
func perfGoldenConfig(design core.Design, faults bool) Config {
	cfg := equivConfig(design, faults)
	cfg.Audit = true
	return cfg
}

// TestPerfRewriteByteIdentical is the contract for the zero-allocation
// data-path rewrite: for the seed workloads, every design × faults-on/off
// combination (audit on) must produce a Result whose canonical JSON is
// byte-identical to the goldens committed BEFORE the rewrite. The rewrite
// must be observationally invisible except for speed; regenerate with
// -update only for a real behavior bug, with justification in the PR.
func TestPerfRewriteByteIdentical(t *testing.T) {
	for _, wl := range []string{"pgbench", "SPEC2006"} {
		for _, design := range []core.Design{core.DesignN, core.DesignN1, core.DesignLive} {
			for _, faults := range []bool{false, true} {
				name := fmt.Sprintf("%s/%v/faults=%v", wl, design, faults)
				t.Run(name, func(t *testing.T) {
					gen, err := workload.NewMemory(wl, 1)
					if err != nil {
						t.Fatal(err)
					}
					res, err := Run(gen, perfGoldenConfig(design, faults))
					if err != nil {
						t.Fatal(err)
					}
					got := canonical(t, res)

					file := fmt.Sprintf("%s_%s_faults%v.json", wl,
						strings.ReplaceAll(design.String(), "-", ""), faults)
					path := filepath.Join("testdata", "perf", file)
					if *updatePerfGoldens {
						if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
							t.Fatal(err)
						}
						if err := os.WriteFile(path, got, 0o644); err != nil {
							t.Fatal(err)
						}
						return
					}
					want, err := os.ReadFile(path)
					if err != nil {
						t.Fatalf("missing golden (run with -update before the rewrite): %v", err)
					}
					if !bytes.Equal(got, want) {
						t.Fatalf("result diverged from pre-rewrite golden %s:\n got %s\nwant %s", path, got, want)
					}
				})
			}
		}
	}
}
