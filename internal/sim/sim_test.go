package sim

import (
	"testing"

	"heteromem/internal/addr"
	"heteromem/internal/config"
	"heteromem/internal/core"
	"heteromem/internal/trace"
	"heteromem/internal/workload"
)

// smallGeometry shrinks the memory space so tests run fast: 64 MB total,
// 8 MB on-package, 256 KB macro pages.
func smallGeometry() config.MemoryGeometry {
	g := config.TraceGeometry()
	g.TotalCapacity = 64 * addr.MiB
	g.OnPackageCapacity = 8 * addr.MiB
	g.MacroPageSize = 256 * addr.KiB
	return g
}

// skewedSource builds a workload with a hot set that misses the static
// on-package region: all traffic on a 4 MB region starting at 32 MB.
func skewedSource(n uint64, seed int64) (trace.Source, error) {
	spec := workload.Spec{
		Name: "skewed", MeanGap: 60, Cores: 4,
		Components: []workload.Component{
			{Name: "cold-prefix", Weight: 1, Region: 32 * addr.MiB,
				Make: workload.SeqMaker(64)},
			{Name: "hot", Weight: 19, Region: 4 * addr.MiB,
				Make: workload.ZipfMaker(4096, 1.2, false)},
		},
	}
	g, err := workload.New(spec, seed)
	if err != nil {
		return nil, err
	}
	return trace.NewLimit(g, n), nil
}

func run(t *testing.T, mig *core.Options, n uint64) Result {
	t.Helper()
	src, err := skewedSource(n, 42)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Default()
	cfg.Geometry = smallGeometry()
	cfg.Migration = mig
	cfg.MeterPower = true
	res, err := Run(src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != n {
		t.Fatalf("processed %d records, want %d", res.Records, n)
	}
	return res
}

func TestStaticMappingRoutesBySplit(t *testing.T) {
	res := run(t, nil, 20000)
	// The hot region sits above the 8 MB split: most accesses must be
	// off-package under static mapping.
	if res.Report.OnShare > 0.5 {
		t.Fatalf("static mapping on-package share = %.2f, want < 0.5", res.Report.OnShare)
	}
	if res.MeanLatency <= 0 {
		t.Fatalf("mean latency %.1f not positive", res.MeanLatency)
	}
}

func TestMigrationBeatsStaticOnSkewedWorkload(t *testing.T) {
	const n = 60000
	static := run(t, nil, n)
	for _, design := range []core.Design{core.DesignN1, core.DesignLive} {
		mig := run(t, &core.Options{Design: design, SwapInterval: 2000}, n)
		if mig.Report.Migration.SwapsCompleted == 0 {
			t.Fatalf("%v: no swaps completed", design)
		}
		if mig.MeanLatency >= static.MeanLatency {
			t.Fatalf("%v: migration latency %.1f not better than static %.1f",
				design, mig.MeanLatency, static.MeanLatency)
		}
		if mig.Report.OnShare <= static.Report.OnShare {
			t.Fatalf("%v: on-package share %.2f did not improve over static %.2f",
				design, mig.Report.OnShare, static.Report.OnShare)
		}
	}
}

func TestMigrationPowerIncludesCopyTraffic(t *testing.T) {
	mig := run(t, &core.Options{Design: core.DesignLive, SwapInterval: 2000}, 40000)
	if mig.EnergyPJ <= 0 {
		t.Fatal("no energy accounted")
	}
	// Migration keeps most traffic on-package, so total power should drop
	// below the off-package-only baseline unless copies dominate.
	if mig.NormalizedPower <= 0 {
		t.Fatalf("normalized power %.2f not positive", mig.NormalizedPower)
	}
}

func TestEffectivenessMetric(t *testing.T) {
	// Perfect migration: latency reaches the core latency -> 100%.
	if got := Effectiveness(200, 60, 60); got != 100 {
		t.Fatalf("Effectiveness(200,60,60) = %.1f, want 100", got)
	}
	// No improvement -> 0%.
	if got := Effectiveness(200, 200, 60); got != 0 {
		t.Fatalf("Effectiveness(200,200,60) = %.1f, want 0", got)
	}
	// Degenerate denominator -> 0.
	if got := Effectiveness(60, 50, 60); got != 0 {
		t.Fatalf("Effectiveness with no headroom = %.1f, want 0", got)
	}
}

func TestDesignNStallsExecution(t *testing.T) {
	const n = 40000
	nDesign := run(t, &core.Options{Design: core.DesignN, SwapInterval: 2000}, n)
	live := run(t, &core.Options{Design: core.DesignLive, SwapInterval: 2000}, n)
	if nDesign.Report.Migration.SwapsCompleted == 0 {
		t.Fatal("N design completed no swaps")
	}
	// With frequent swapping at coarse granularity the stalling N design
	// must be slower than live migration (the paper's Fig. 11 point).
	if nDesign.MeanLatency <= live.MeanLatency {
		t.Fatalf("N design latency %.1f not worse than live %.1f",
			nDesign.MeanLatency, live.MeanLatency)
	}
}

func TestConvergenceWindows(t *testing.T) {
	src, err := skewedSource(60000, 42)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Default()
	cfg.Geometry = smallGeometry()
	cfg.Migration = &core.Options{Design: core.DesignLive, SwapInterval: 2000}
	cfg.WindowRecords = 10000
	res, err := Run(src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Windows) != 6 {
		t.Fatalf("%d windows, want 6", len(res.Windows))
	}
	// Convergence: on-package share must grow from the first window to the
	// last, and swap counts must be cumulative (non-decreasing).
	if res.Windows[len(res.Windows)-1].OnShare <= res.Windows[0].OnShare {
		t.Fatalf("on-share did not converge upward: first %.2f last %.2f",
			res.Windows[0].OnShare, res.Windows[len(res.Windows)-1].OnShare)
	}
	for i := 1; i < len(res.Windows); i++ {
		if res.Windows[i].SwapsSoFar < res.Windows[i-1].SwapsSoFar {
			t.Fatal("swap counter decreased between windows")
		}
	}
	for _, w := range res.Windows {
		if w.MeanLatency <= 0 {
			t.Fatalf("window with non-positive latency: %+v", w)
		}
	}
}

type failingSource struct{ n int }

func (f *failingSource) Next() (trace.Record, error) {
	if f.n >= 3 {
		return trace.Record{}, errInjected
	}
	f.n++
	return trace.Record{Cycle: uint64(f.n) * 10, Addr: uint64(f.n) * 64}, nil
}

var errInjected = &injectedError{}

type injectedError struct{}

func (*injectedError) Error() string { return "injected trace failure" }

func TestRunPropagatesSourceErrors(t *testing.T) {
	cfg := Default()
	cfg.Geometry = smallGeometry()
	_, err := Run(&failingSource{}, cfg)
	if err == nil {
		t.Fatal("source error swallowed")
	}
}

func TestOutOfRangeAddressesServedOffPackage(t *testing.T) {
	// Addresses beyond TotalCapacity (e.g. a trace wider than the simulated
	// memory) are identity-mapped off-package rather than rejected, like a
	// controller forwarding to a larger physical space.
	cfg := Default()
	cfg.Geometry = smallGeometry()
	cfg.Migration = &core.Options{Design: core.DesignLive, SwapInterval: 1000}
	recs := []trace.Record{
		{Cycle: 10, Addr: cfg.Geometry.TotalCapacity + 4096},
		{Cycle: 50, Addr: cfg.Geometry.TotalCapacity * 2},
	}
	res, err := Run(trace.NewSliceSource(recs), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 2 || res.Report.OnShare != 0 {
		t.Fatalf("out-of-range accesses mishandled: %+v", res.Report.OnShare)
	}
}
