package sim

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"testing"

	"heteromem/internal/core"
	"heteromem/internal/fault"
	"heteromem/internal/scheme"
	"heteromem/internal/snap"
	"heteromem/internal/trace"
	"heteromem/internal/workload"
)

// equivConfig builds a small but busy run: migration on, warmup reset, and
// enough records for several swaps (and rollbacks, when faults are on).
func equivConfig(design core.Design, faults bool) Config {
	cfg := Default()
	cfg.Migration = &core.Options{Design: design, SwapInterval: 400}
	cfg.MaxRecords = 12_000
	cfg.Warmup = 2_000
	if faults {
		cfg.Fault = fault.Config{
			Seed:       7,
			DeviceRate: 2e-4,
			CopyRate:   2e-3,
			BulkRate:   1e-3,
		}
	}
	return cfg
}

func equivSource(t *testing.T) trace.Source {
	t.Helper()
	gen, err := workload.NewMemory("pgbench", 1)
	if err != nil {
		t.Fatal(err)
	}
	return gen
}

func canonical(t *testing.T, r Result) []byte {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestResumeEquivalence is the subsystem's correctness contract: for every
// design, with fault injection off and on, a run resumed from ANY
// checkpoint boundary produces a Result byte-identical (canonical JSON) to
// the uninterrupted run.
func TestResumeEquivalence(t *testing.T) {
	for _, design := range []core.Design{core.DesignN, core.DesignN1, core.DesignLive} {
		for _, faults := range []bool{false, true} {
			t.Run(fmt.Sprintf("%v/faults=%v", design, faults), func(t *testing.T) {
				cfg := equivConfig(design, faults)

				base, err := Run(equivSource(t), cfg)
				if err != nil {
					t.Fatal(err)
				}
				want := canonical(t, base)

				// Checkpoint frequently so boundaries land mid-swap,
				// mid-rollback, and inside the warmup phase.
				cps := map[uint64][]byte{}
				ckCfg := cfg
				ckCfg.CheckpointEvery = 1_000
				ckCfg.CheckpointSink = func(data []byte, n uint64) error {
					cps[n] = append([]byte(nil), data...)
					return nil
				}
				ckRes, err := Run(equivSource(t), ckCfg)
				if err != nil {
					t.Fatal(err)
				}
				if got := canonical(t, ckRes); !bytes.Equal(got, want) {
					t.Fatalf("checkpointing changed the result:\n got %s\nwant %s", got, want)
				}
				if len(cps) == 0 {
					t.Fatal("no checkpoints captured")
				}

				for n, data := range cps {
					resCfg := cfg
					resCfg.Resume = data
					res, err := Run(equivSource(t), resCfg)
					if err != nil {
						t.Fatalf("resume from %d: %v", n, err)
					}
					if got := canonical(t, res); !bytes.Equal(got, want) {
						t.Fatalf("resume from record %d diverged:\n got %s\nwant %s", n, got, want)
					}
				}
			})
		}
	}
}

// TestResumeEquivalenceSchemes extends the correctness contract to every
// cache scheme: resume from any boundary is byte-identical, with the cache
// state (set arrays, tag buffer, predictor counters) and in-flight scheme
// jobs riding the checkpoint.
func TestResumeEquivalenceSchemes(t *testing.T) {
	for _, tc := range []struct {
		name    string
		migrate bool // memcache keeps the migration engine
	}{
		{name: "alloy"},
		{name: "alloy-pred"},
		{name: "cachemode"},
		{name: "memcache", migrate: true},
		{name: "memcache-pred:25", migrate: true},
	} {
		for _, faults := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s/faults=%v", tc.name, faults), func(t *testing.T) {
				cfg := equivConfig(core.DesignLive, faults)
				if !tc.migrate {
					cfg.Migration = nil
				}
				sp, err := scheme.Parse(tc.name)
				if err != nil {
					t.Fatal(err)
				}
				cfg.Scheme = sp

				base, err := Run(equivSource(t), cfg)
				if err != nil {
					t.Fatal(err)
				}
				want := canonical(t, base)
				if base.Report.Scheme == nil || base.Report.Scheme.Accesses == 0 {
					t.Fatal("scheme engine saw no traffic")
				}

				cps := map[uint64][]byte{}
				ckCfg := cfg
				ckCfg.CheckpointEvery = 1_000
				ckCfg.CheckpointSink = func(data []byte, n uint64) error {
					cps[n] = append([]byte(nil), data...)
					return nil
				}
				ckRes, err := Run(equivSource(t), ckCfg)
				if err != nil {
					t.Fatal(err)
				}
				if got := canonical(t, ckRes); !bytes.Equal(got, want) {
					t.Fatalf("checkpointing changed the result:\n got %s\nwant %s", got, want)
				}
				if len(cps) == 0 {
					t.Fatal("no checkpoints captured")
				}
				for n, data := range cps {
					resCfg := cfg
					resCfg.Resume = data
					res, err := Run(equivSource(t), resCfg)
					if err != nil {
						t.Fatalf("resume from %d: %v", n, err)
					}
					if got := canonical(t, res); !bytes.Equal(got, want) {
						t.Fatalf("resume from record %d diverged:\n got %s\nwant %s", n, got, want)
					}
				}

				// A scheme checkpoint must not resume under another scheme:
				// the digest carries the spec.
				var anyCp []byte
				for _, data := range cps {
					anyCp = data
					break
				}
				wrong := cfg
				wrong.Scheme = scheme.Spec{}
				if !tc.migrate {
					wrong.Migration = equivConfig(core.DesignLive, faults).Migration
				}
				wrong.Resume = anyCp
				if _, err := Run(equivSource(t), wrong); !errors.Is(err, ErrConfigMismatch) {
					t.Fatalf("cross-scheme resume: got %v, want ErrConfigMismatch", err)
				}
			})
		}
	}
}

// TestResumeEquivalencePositioner exercises the seek-based resume path: a
// SliceSource carries no PRNG state, so the checkpoint stores its record
// index and resume re-seeks it.
func TestResumeEquivalencePositioner(t *testing.T) {
	recs, err := trace.Collect(equivSource(t), 8_000)
	if err != nil {
		t.Fatal(err)
	}
	cfg := equivConfig(core.DesignLive, false)
	cfg.MaxRecords = 0
	cfg.Warmup = 1_000

	base, err := Run(trace.NewSliceSource(recs), cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := canonical(t, base)

	cps := map[uint64][]byte{}
	ckCfg := cfg
	ckCfg.CheckpointEvery = 1_500
	ckCfg.CheckpointSink = func(data []byte, n uint64) error {
		cps[n] = append([]byte(nil), data...)
		return nil
	}
	if _, err := Run(trace.NewSliceSource(recs), ckCfg); err != nil {
		t.Fatal(err)
	}
	for n, data := range cps {
		resCfg := cfg
		resCfg.Resume = data
		res, err := Run(trace.NewSliceSource(recs), resCfg)
		if err != nil {
			t.Fatalf("resume from %d: %v", n, err)
		}
		if got := canonical(t, res); !bytes.Equal(got, want) {
			t.Fatalf("resume from record %d diverged", n)
		}
	}
}

// captureOne runs until the first checkpoint and returns it.
func captureOne(t *testing.T, cfg Config) []byte {
	t.Helper()
	var cp []byte
	ckCfg := cfg
	ckCfg.CheckpointEvery = 1_000
	ckCfg.CheckpointSink = func(data []byte, n uint64) error {
		if cp == nil {
			cp = append([]byte(nil), data...)
		}
		return nil
	}
	if _, err := Run(equivSource(t), ckCfg); err != nil {
		t.Fatal(err)
	}
	if cp == nil {
		t.Fatal("no checkpoint captured")
	}
	return cp
}

func TestResumeRejectsConfigMismatch(t *testing.T) {
	cfg := equivConfig(core.DesignN1, false)
	cp := captureOne(t, cfg)

	other := cfg
	other.Migration = &core.Options{Design: core.DesignLive, SwapInterval: 400}
	other.Resume = cp
	if _, err := Run(equivSource(t), other); !errors.Is(err, ErrConfigMismatch) {
		t.Fatalf("resume under different config: err = %v, want ErrConfigMismatch", err)
	}
}

func TestResumeRejectsWrongWorkload(t *testing.T) {
	cfg := equivConfig(core.DesignN1, false)
	cp := captureOne(t, cfg)

	other, err := workload.NewMemory("SPECjbb", 1)
	if err != nil {
		t.Fatal(err)
	}
	resCfg := cfg
	resCfg.Resume = cp
	if _, err := Run(other, resCfg); !errors.Is(err, snap.ErrCorrupt) {
		t.Fatalf("resume under a different workload: err = %v, want a snap.ErrCorrupt identity rejection", err)
	}
}

func TestResumeRejectsCorruption(t *testing.T) {
	cfg := equivConfig(core.DesignN1, false)
	cp := captureOne(t, cfg)

	for name, mangle := range map[string]func([]byte) []byte{
		"truncated": func(b []byte) []byte { return b[:len(b)/2] },
		"bit-flip": func(b []byte) []byte {
			m := append([]byte(nil), b...)
			m[len(m)/3] ^= 0x40
			return m
		},
		"empty": func(b []byte) []byte { return []byte{} },
	} {
		t.Run(name, func(t *testing.T) {
			bad := cfg
			bad.Resume = mangle(cp)
			_, err := Run(equivSource(t), bad)
			if !errors.Is(err, snap.ErrCorrupt) {
				t.Fatalf("err = %v, want snap.ErrCorrupt", err)
			}
		})
	}

	t.Run("version-skew", func(t *testing.T) {
		m := append([]byte(nil), cp...)
		m[4]++ // bump the container version field
		bad := cfg
		bad.Resume = m
		var verr *snap.VersionError
		_, err := Run(equivSource(t), bad)
		// The version field is covered by the file checksum, so a raw bump
		// reads as corruption; a resealed container reads as version skew.
		if !errors.As(err, &verr) && !errors.Is(err, snap.ErrCorrupt) {
			t.Fatalf("err = %v, want VersionError or ErrCorrupt", err)
		}
	})
}

func TestCheckpointRejectsObservability(t *testing.T) {
	cfg := equivConfig(core.DesignN1, false)
	cfg.Metrics = true
	cfg.CheckpointEvery = 1_000
	cfg.CheckpointSink = func([]byte, uint64) error { return nil }
	if _, err := Run(equivSource(t), cfg); err == nil {
		t.Fatal("checkpointing with Metrics should be rejected")
	}
}

func TestInspectCheckpoint(t *testing.T) {
	cfg := equivConfig(core.DesignN1, false)
	cp := captureOne(t, cfg)
	info, err := InspectCheckpoint(cp)
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != 1_000 {
		t.Fatalf("Records = %d, want 1000", info.Records)
	}
	if info.ConfigDigest != ConfigDigest(cfg) {
		t.Fatalf("digest mismatch")
	}
	if info.SourceKind != "snapshot" {
		t.Fatalf("SourceKind = %q, want snapshot", info.SourceKind)
	}
	if len(info.Sections) != 3 {
		t.Fatalf("Sections = %v, want meta/source/ctrl", info.Sections)
	}
	if _, err := InspectCheckpoint(cp[:10]); !errors.Is(err, snap.ErrCorrupt) {
		t.Fatalf("truncated inspect err = %v, want ErrCorrupt", err)
	}
}
