package sim

import (
	"bytes"
	"fmt"
	"testing"

	"heteromem/internal/core"
	"heteromem/internal/trace"
)

// cappedSource is a BatchSource that never fills more than cap records per
// NextBatch call, regardless of how large a batch the runner offers. It
// forwards Positioner so checkpoints store a plain record index.
type cappedSource struct {
	src *trace.SliceSource
	cap int
}

func (c *cappedSource) Next() (trace.Record, error) { return c.src.Next() }
func (c *cappedSource) Position() uint64            { return c.src.Position() }
func (c *cappedSource) SkipTo(n uint64) error       { return c.src.SkipTo(n) }

func (c *cappedSource) NextBatch(b *trace.Batch) (int, error) {
	n := b.Len()
	if n > c.cap {
		n = c.cap
	}
	for i := 0; i < n; i++ {
		r, err := c.src.Next()
		if err != nil {
			return i, err
		}
		b.Set(i, r)
	}
	return n, nil
}

// plainSource hides the batch and seek interfaces of the wrapped source, so
// the runner must fall back to per-record FillBatch reads and snapshot-free
// positional state never appears. It still forwards Positioner — without it
// checkpoints could not capture the source at all.
type plainSource struct {
	src *trace.SliceSource
}

func (p *plainSource) Next() (trace.Record, error) { return p.src.Next() }
func (p *plainSource) Position() uint64            { return p.src.Position() }
func (p *plainSource) SkipTo(n uint64) error       { return p.src.SkipTo(n) }

// TestBatchSizeInvariance is the tentpole's semantic contract: batching is
// an execution detail, never a behavior change. For every design (plus the
// sharded path) the run must produce byte-identical results AND
// byte-identical checkpoints at every boundary, no matter how records are
// grouped: singleton batches, odd sizes, the cancel stride, one giant
// batch, or the per-record FillBatch fallback. CheckpointEvery and Warmup
// are deliberately unaligned with the 4096-record cancel stride so batch
// splits land at awkward offsets.
func TestBatchSizeInvariance(t *testing.T) {
	recs, err := trace.Collect(equivSource(t), 12_000)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name     string
		design   core.Design
		channels int
	}{
		{"n", core.DesignN, 1},
		{"n-1", core.DesignN1, 1},
		{"live", core.DesignLive, 1},
		{"live-sharded", core.DesignLive, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := equivConfig(tc.design, tc.design == core.DesignLive)
			cfg.Channels = tc.channels
			cfg.CheckpointEvery = 3_500 // unaligned with warmup and cancel stride
			type capture struct {
				res []byte
				cps map[uint64][]byte
			}
			run := func(src trace.Source) capture {
				t.Helper()
				c := capture{cps: map[uint64][]byte{}}
				runCfg := cfg
				runCfg.CheckpointSink = func(data []byte, n uint64) error {
					c.cps[n] = append([]byte(nil), data...)
					return nil
				}
				res, err := Run(src, runCfg)
				if err != nil {
					t.Fatal(err)
				}
				c.res = canonical(t, res)
				return c
			}

			want := run(trace.NewSliceSource(recs))
			if len(want.cps) == 0 {
				t.Fatal("no checkpoints captured")
			}

			variants := map[string]func() trace.Source{
				"cap-1":        func() trace.Source { return &cappedSource{src: trace.NewSliceSource(recs), cap: 1} },
				"cap-7":        func() trace.Source { return &cappedSource{src: trace.NewSliceSource(recs), cap: 7} },
				"cap-4096":     func() trace.Source { return &cappedSource{src: trace.NewSliceSource(recs), cap: 4096} },
				"cap-huge":     func() trace.Source { return &cappedSource{src: trace.NewSliceSource(recs), cap: 1 << 20} },
				"per-record":   func() trace.Source { return &plainSource{src: trace.NewSliceSource(recs)} },
				"packed-chunk": func() trace.Source { return trace.NewPackedSource(trace.PackRecords(recs)) },
			}
			for name, mk := range variants {
				got := run(mk())
				if !bytes.Equal(got.res, want.res) {
					t.Errorf("%s: result diverged:\n got %s\nwant %s", name, got.res, want.res)
				}
				if len(got.cps) != len(want.cps) {
					t.Errorf("%s: %d checkpoints, want %d", name, len(got.cps), len(want.cps))
					continue
				}
				for n, data := range want.cps {
					if !bytes.Equal(got.cps[n], data) {
						t.Errorf("%s: checkpoint at record %d diverged (%d vs %d bytes)",
							name, n, len(got.cps[n]), len(data))
					}
				}
			}
		})
	}
}

// TestResumeEquivalencePacked extends the resume contract to the packed
// columnar source the experiment drivers replay: a run checkpointed over a
// PackedSource resumes from any boundary into a byte-identical Result, with
// the checkpoint carrying only the record index (Positioner branch).
func TestResumeEquivalencePacked(t *testing.T) {
	recs, err := trace.Collect(equivSource(t), 12_000)
	if err != nil {
		t.Fatal(err)
	}
	p := trace.PackRecords(recs)

	for _, channels := range []int{1, 2} {
		t.Run(fmt.Sprintf("c%d", channels), func(t *testing.T) {
			cfg := equivConfig(core.DesignLive, true)
			cfg.Channels = channels

			base, err := Run(trace.NewPackedSource(p), cfg)
			if err != nil {
				t.Fatal(err)
			}
			want := canonical(t, base)

			cps := map[uint64][]byte{}
			ckCfg := cfg
			ckCfg.CheckpointEvery = 1_500
			ckCfg.CheckpointSink = func(data []byte, n uint64) error {
				cps[n] = append([]byte(nil), data...)
				return nil
			}
			if _, err := Run(trace.NewPackedSource(p), ckCfg); err != nil {
				t.Fatal(err)
			}
			if len(cps) == 0 {
				t.Fatal("no checkpoints captured")
			}
			for n, data := range cps {
				resCfg := cfg
				resCfg.Resume = data
				res, err := Run(trace.NewPackedSource(p), resCfg)
				if err != nil {
					t.Fatalf("resume from %d: %v", n, err)
				}
				if got := canonical(t, res); !bytes.Equal(got, want) {
					t.Fatalf("resume from record %d diverged", n)
				}
			}
		})
	}
}
