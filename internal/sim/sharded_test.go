package sim

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"heteromem/internal/core"
	"heteromem/internal/workload"
)

// shardedConfig is the equivalence-suite configuration of a sharded run:
// the perf-golden setup (migration, warmup, audit, optional faults) striped
// across the given channel count.
func shardedConfig(channels int, design core.Design, faults bool) Config {
	cfg := perfGoldenConfig(design, faults)
	cfg.Channels = channels
	return cfg
}

// TestShardedByteIdentical pins the sharded path the same way the perf
// goldens pin the single-channel path: channels 2 and 4, every design ×
// faults on/off, must reproduce the committed canonical-JSON goldens
// byte-for-byte. Together with TestShardedDeterminism this makes the
// parallel runs' bit-reproducibility a regression contract, not a property
// of today's scheduler. Regenerate with -update only for a real behavior
// change, with justification in the PR.
func TestShardedByteIdentical(t *testing.T) {
	for _, channels := range []int{2, 4} {
		for _, design := range []core.Design{core.DesignN, core.DesignN1, core.DesignLive} {
			for _, faults := range []bool{false, true} {
				name := fmt.Sprintf("c%d/%v/faults=%v", channels, design, faults)
				t.Run(name, func(t *testing.T) {
					gen, err := workload.NewMemory("pgbench", 1)
					if err != nil {
						t.Fatal(err)
					}
					res, err := Run(gen, shardedConfig(channels, design, faults))
					if err != nil {
						t.Fatal(err)
					}
					got := canonical(t, res)

					file := fmt.Sprintf("sharded_c%d_%s_faults%v.json", channels,
						strings.ReplaceAll(design.String(), "-", ""), faults)
					path := filepath.Join("testdata", "perf", file)
					if *updatePerfGoldens {
						if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
							t.Fatal(err)
						}
						if err := os.WriteFile(path, got, 0o644); err != nil {
							t.Fatal(err)
						}
						return
					}
					want, err := os.ReadFile(path)
					if err != nil {
						t.Fatalf("missing golden (generate with -update): %v", err)
					}
					if !bytes.Equal(got, want) {
						t.Fatalf("sharded result diverged from golden %s:\n got %s\nwant %s", path, got, want)
					}
				})
			}
		}
	}
}

// TestResumeEquivalenceSharded extends the resume contract to the sharded
// path: for channels 2 and 4, every design × faults on/off, a run resumed
// from ANY checkpoint boundary produces a Result byte-identical (canonical
// JSON) to the uninterrupted parallel run.
func TestResumeEquivalenceSharded(t *testing.T) {
	for _, channels := range []int{2, 4} {
		for _, design := range []core.Design{core.DesignN, core.DesignN1, core.DesignLive} {
			for _, faults := range []bool{false, true} {
				t.Run(fmt.Sprintf("c%d/%v/faults=%v", channels, design, faults), func(t *testing.T) {
					cfg := equivConfig(design, faults)
					cfg.Channels = channels

					base, err := Run(equivSource(t), cfg)
					if err != nil {
						t.Fatal(err)
					}
					want := canonical(t, base)

					cps := map[uint64][]byte{}
					ckCfg := cfg
					ckCfg.CheckpointEvery = 1_000
					ckCfg.CheckpointSink = func(data []byte, n uint64) error {
						cps[n] = append([]byte(nil), data...)
						return nil
					}
					ckRes, err := Run(equivSource(t), ckCfg)
					if err != nil {
						t.Fatal(err)
					}
					if got := canonical(t, ckRes); !bytes.Equal(got, want) {
						t.Fatalf("checkpointing changed the sharded result:\n got %s\nwant %s", got, want)
					}
					if len(cps) == 0 {
						t.Fatal("no checkpoints captured")
					}

					for n, data := range cps {
						resCfg := cfg
						resCfg.Resume = data
						res, err := Run(equivSource(t), resCfg)
						if err != nil {
							t.Fatalf("resume from %d: %v", n, err)
						}
						if got := canonical(t, res); !bytes.Equal(got, want) {
							t.Fatalf("resume from record %d diverged:\n got %s\nwant %s", n, got, want)
						}
					}
				})
			}
		}
	}
}

// TestShardedDeterminism is the bit-reproducibility contract of the
// parallel execution: the same channels=4 configuration — with every
// observability collector attached, so events, spans, and series are part
// of the comparison — run five times under each of GOMAXPROCS 1, 2, and 8
// must produce byte-identical canonical JSON every single time.
func TestShardedDeterminism(t *testing.T) {
	cfg := shardedConfig(4, core.DesignLive, true)
	cfg.Metrics = true
	cfg.EventTrace = 512
	cfg.SpanTrace = 1024
	cfg.EpochSeries = 64

	run := func() []byte {
		gen, err := workload.NewMemory("pgbench", 1)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(gen, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return canonical(t, res)
	}

	want := run()
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, procs := range []int{1, 2, 8} {
		runtime.GOMAXPROCS(procs)
		for i := 0; i < 5; i++ {
			if got := run(); !bytes.Equal(got, want) {
				t.Fatalf("GOMAXPROCS=%d run %d diverged:\n got %s\nwant %s", procs, i, got, want)
			}
		}
	}
}

// TestShardedBarrierWindowInvariance pins the design claim that the barrier
// window only trades buffering against synchronization overhead: results
// are byte-identical across radically different window sizes.
func TestShardedBarrierWindowInvariance(t *testing.T) {
	base := shardedConfig(2, core.DesignN1, true)
	want := func() []byte {
		gen, err := workload.NewMemory("pgbench", 1)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(gen, base)
		if err != nil {
			t.Fatal(err)
		}
		return canonical(t, res)
	}()
	for _, window := range []int64{1, 64, 100_000, 1 << 30} {
		cfg := base
		cfg.BarrierWindow = window
		gen, err := workload.NewMemory("pgbench", 1)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(gen, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got := canonical(t, res); !bytes.Equal(got, want) {
			t.Fatalf("BarrierWindow=%d diverged from the default window", window)
		}
	}
}

// TestShardedCheckpointSections verifies the sharded container layout (one
// ctrl<i> section per channel) and that the config digest separates channel
// layouts: a checkpoint taken at channels=2 must not resume at channels=4.
func TestShardedCheckpointSections(t *testing.T) {
	cfg := equivConfig(core.DesignN1, false)
	cfg.Channels = 4
	cp := captureOne(t, cfg)

	info, err := InspectCheckpoint(cp)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"meta", "source", "ctrl0", "ctrl1", "ctrl2", "ctrl3"}
	if fmt.Sprint(info.Sections) != fmt.Sprint(want) {
		t.Fatalf("Sections = %v, want %v", info.Sections, want)
	}
	if info.ConfigDigest != ConfigDigest(cfg) {
		t.Fatal("digest mismatch")
	}

	single := equivConfig(core.DesignN1, false)
	if ConfigDigest(single) == ConfigDigest(cfg) {
		t.Fatal("channels=1 and channels=4 must not share a config digest")
	}
	other := cfg
	other.Channels = 2
	other.Resume = cp
	if _, err := Run(equivSource(t), other); !errors.Is(err, ErrConfigMismatch) {
		t.Fatalf("resume under a different channel count: err = %v, want ErrConfigMismatch", err)
	}
}

// TestShardedRejectsWindowRecords: the convergence window series has no
// global completion order across channels, so a sharded run refuses it
// rather than emitting schedule-dependent output.
func TestShardedRejectsWindowRecords(t *testing.T) {
	cfg := shardedConfig(2, core.DesignLive, false)
	cfg.WindowRecords = 1_000
	if _, err := Run(equivSource(t), cfg); err == nil {
		t.Fatal("WindowRecords with Channels > 1 should be rejected")
	}
}

// TestShardedRejectsBadLayouts covers the hub's validation: non-power-of-two
// channel counts, interleaves that split a macro page, and capacities that
// do not divide into whole stripes.
func TestShardedRejectsBadLayouts(t *testing.T) {
	t.Run("channels-not-power-of-two", func(t *testing.T) {
		cfg := shardedConfig(3, core.DesignLive, false)
		if _, err := Run(equivSource(t), cfg); err == nil {
			t.Fatal("channels=3 should be rejected")
		}
	})
	t.Run("interleave-below-page", func(t *testing.T) {
		cfg := shardedConfig(2, core.DesignLive, false)
		cfg.InterleaveBytes = cfg.Geometry.MacroPageSize / 2
		if _, err := Run(equivSource(t), cfg); err == nil {
			t.Fatal("interleave below the macro page size should be rejected")
		}
	})
	t.Run("capacity-not-stripe-aligned", func(t *testing.T) {
		cfg := shardedConfig(4, core.DesignLive, false)
		cfg.InterleaveBytes = cfg.Geometry.OnPackageCapacity / 2
		if _, err := Run(equivSource(t), cfg); err == nil {
			t.Fatal("on-package capacity of half a stripe should be rejected")
		}
	})
}
