// The sharded run path: with Config.Channels > 1 the physical address space
// stripes across per-channel controllers (memctrl.Hub) and the simulation
// executes in parallel — one goroutine per channel — under an epoch-aligned
// cycle barrier.
//
// Determinism argument. Shards share no mutable state: migration is
// shard-local (the interleave granularity is a multiple of the macro page
// size, so a page never straddles channels) and the cross-channel hop is a
// fixed latency constant folded into each shard's own copy legs. Each
// shard's final state is therefore a pure function of the subsequence of
// trace records routed to it, in trace order — which the feeder preserves —
// and is independent of goroutine scheduling, GOMAXPROCS, and the barrier
// window size. The barrier exists to bound buffering and to give the feeder
// globally consistent points (exact record counts) for warmup resets and
// checkpoints; it never influences results.
package sim

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"

	"heteromem/internal/config"
	"heteromem/internal/memctrl"
	"heteromem/internal/obs"
	"heteromem/internal/power"
	"heteromem/internal/trace"
)

// defaultBarrierWindow is the lockstep epoch, in trace cycles, when
// Config.BarrierWindow is zero. It only needs to be no smaller than the
// minimum cross-channel latency (the hop) for the lockstep reading of the
// barrier to hold; beyond that it purely trades barrier overhead against
// batch size.
const defaultBarrierWindow = 4096

// shardAccess is one pre-routed trace record: the shard-local address plus
// the original cycle and direction.
type shardAccess struct {
	local uint64
	cycle int64
	write bool
}

// runSharded executes cfg over src with one goroutine per channel under the
// cycle barrier. See the package comment above for the determinism argument.
// ctx is polled in the feeder loop every cancelStride records, mirroring the
// single-channel path.
func runSharded(ctx context.Context, src trace.Source, cfg Config) (Result, error) {
	if cfg.WindowRecords > 0 {
		return Result{}, fmt.Errorf("sim: WindowRecords is not supported with Channels > 1 (completion interleaving across channels has no global window order)")
	}
	if cfg.CheckpointEvery > 0 || cfg.Resume != nil {
		if err := checkpointIncompatible(cfg); err != nil {
			return Result{}, err
		}
	}
	mcfg := memctrl.Config{
		Geometry:   cfg.Geometry,
		Latencies:  cfg.Latencies,
		OffTiming:  cfg.OffTiming,
		OnTiming:   cfg.OnTiming,
		Migration:  cfg.Migration,
		Scheme:     cfg.Scheme,
		OSAssisted: cfg.OSAssisted,
		Sched:      cfg.Sched,
		Audit:      cfg.Audit,
		Fault:      cfg.Fault,
	}
	n := cfg.Channels
	hubCfg := memctrl.HubConfig{
		Channels:   n,
		Interleave: cfg.InterleaveBytes,
		HopLatency: cfg.HopLatency,
	}
	var regs []*obs.Registry
	if cfg.Metrics || cfg.EventTrace > 0 || cfg.SpanTrace > 0 || cfg.EpochSeries > 0 {
		regs = make([]*obs.Registry, n)
		for i := range regs {
			reg := obs.NewRegistry()
			if cfg.EventTrace > 0 {
				reg.EnableEvents(cfg.EventTrace)
			}
			if cfg.SpanTrace > 0 {
				reg.EnableSpans(cfg.SpanTrace)
			}
			if cfg.EpochSeries > 0 {
				reg.EnableSeries(cfg.EpochSeries)
			}
			regs[i] = reg
		}
		hubCfg.ShardObs = regs
	}
	var meters []*power.Meter
	if cfg.MeterPower {
		meters = make([]*power.Meter, n)
		for i := range meters {
			meters[i] = power.NewMeter(config.PaperPower())
		}
		hubCfg.ShardPower = meters
	}
	hub, err := memctrl.NewHub(mcfg, hubCfg, nil)
	if err != nil {
		return Result{}, err
	}

	window := cfg.BarrierWindow
	if window <= 0 {
		window = defaultBarrierWindow
		if h := hub.HopLatency(); h > window {
			window = h
		}
	}

	// One worker goroutine per shard; each owns its controller exclusively.
	// Batches are handed over at barrier boundaries and the WaitGroup is
	// both the barrier and the memory fence: wg.Wait() happens-after every
	// worker's writes, so the feeder may reuse batch slices and read errs.
	work := make([]chan []shardAccess, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		in := make(chan []shardAccess, 1)
		work[i] = in
		go func(i int, ctrl *memctrl.Controller, in <-chan []shardAccess) {
			for batch := range in {
				if errs[i] == nil {
					for _, a := range batch {
						if err := ctrl.Access(a.local, a.write, a.cycle); err != nil {
							errs[i] = err
							break
						}
					}
				}
				wg.Done()
			}
		}(i, hub.Shard(i), in)
	}
	workersOpen := true
	closeWorkers := func() {
		if workersOpen {
			workersOpen = false
			for _, in := range work {
				close(in)
			}
		}
	}
	defer closeWorkers()

	batches := make([][]shardAccess, n)
	pending := 0
	dispatch := func() error {
		if pending == 0 {
			return nil
		}
		wg.Add(n)
		for i := 0; i < n; i++ {
			work[i] <- batches[i]
		}
		wg.Wait()
		for i := 0; i < n; i++ {
			if errs[i] != nil {
				return fmt.Errorf("sim: channel %d: %w", i, errs[i])
			}
			batches[i] = batches[i][:0]
		}
		pending = 0
		return nil
	}

	var done uint64
	if cfg.Resume != nil {
		if done, err = restoreCheckpoint(cfg, src, hub, cfg.Resume); err != nil {
			return Result{}, err
		}
	}
	// The feeder reads batches split at the same semantic boundaries as the
	// single-channel loop (see batchBoundary) and routes each whole batch
	// across the per-channel queues; barrier-epoch dispatches still happen
	// per record inside the batch, because they depend on trace cycles, not
	// record counts.
	var curEpoch int64
	started := false
	var recs trace.Batch
	for cfg.MaxRecords == 0 || done < cfg.MaxRecords {
		if done%cancelStride == 0 {
			if err := ctx.Err(); err != nil {
				return Result{}, fmt.Errorf("sim: cancelled at record %d: %w", done, err)
			}
		}
		want := batchBoundary(&cfg, done)
		recs.Resize(int(want))
		k, rerr := trace.ReadBatch(src, &recs)
		for j := 0; j < k; j++ {
			cycle := int64(recs.Cycle[j])
			// Barrier epoch boundary: all shards drain the previous window
			// before any shard sees the next one.
			epoch := cycle / window
			if started && epoch != curEpoch {
				if err := dispatch(); err != nil {
					return Result{}, err
				}
			}
			curEpoch, started = epoch, true
			ch, local := hub.Route(recs.Addr[j])
			batches[ch] = append(batches[ch], shardAccess{local: local, cycle: cycle, write: recs.Write[j]})
			pending++
		}
		done += uint64(k)
		if cfg.Warmup > 0 && done == cfg.Warmup && k > 0 {
			// Drain so the reset lands after exactly Warmup records on
			// every shard, matching the single-channel path.
			if err := dispatch(); err != nil {
				return Result{}, err
			}
			hub.ResetStats()
		}
		if cfg.CheckpointEvery > 0 && cfg.CheckpointSink != nil && k > 0 && done%cfg.CheckpointEvery == 0 {
			if err := dispatch(); err != nil {
				return Result{}, err
			}
			data, err := takeCheckpoint(cfg, src, hub, done)
			if err != nil {
				return Result{}, fmt.Errorf("sim: checkpoint at record %d: %w", done, err)
			}
			if err := cfg.CheckpointSink(data, done); err != nil {
				return Result{}, fmt.Errorf("sim: checkpoint sink at record %d: %w", done, err)
			}
		}
		if errors.Is(rerr, io.EOF) {
			break
		}
		if rerr != nil {
			return Result{}, fmt.Errorf("sim: reading trace record %d: %w", done, rerr)
		}
		if k == 0 {
			return Result{}, fmt.Errorf("sim: reading trace record %d: %w", done, io.ErrNoProgress)
		}
	}
	if err := dispatch(); err != nil {
		return Result{}, err
	}
	closeWorkers()
	last := hub.Flush()
	if err := hub.Err(); err != nil {
		return Result{}, fmt.Errorf("sim: %w", err)
	}

	var res Result
	if regs != nil {
		hub.PublishObs()
		// Shards fold in fixed channel order, so the merged snapshot and
		// the concatenated rings are identical regardless of which shard's
		// goroutine finished first.
		snaps := make([]*obs.Snapshot, n)
		for i, reg := range regs {
			snaps[i] = reg.Snapshot()
		}
		res.Metrics = obs.MergeSnapshots(snaps...)
		for _, reg := range regs {
			if ring := reg.Events(); ring != nil {
				res.Events = append(res.Events, ring.Events()...)
				res.EventsTotal += ring.Total()
				res.EventsDropped += ring.Dropped()
			}
			if tr := reg.Spans(); tr != nil {
				res.Spans = append(res.Spans, tr.Spans()...)
				res.SpansDropped += tr.Dropped()
			}
			if ser := reg.Series(); ser != nil {
				res.Series = append(res.Series, ser.Samples()...)
				res.SeriesDropped += ser.Dropped()
			}
		}
	}
	res.Report = hub.Report()
	res.Faults = res.Report.Faults
	res.Records = done
	res.LastCycle = last
	res.MeanLatency = res.Report.All.Mean()
	res.MeanDRAMLatency = res.Report.DRAMAll.Mean()
	if meters != nil {
		total := power.NewMeter(config.PaperPower())
		for _, m := range meters {
			total.Merge(m)
		}
		res.EnergyPJ = total.EnergyPJ()
		res.NormalizedPower = total.Normalized()
	}
	return res, nil
}
