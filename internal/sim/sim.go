// Package sim is the trace-driven heterogeneous-main-memory simulator of
// Section IV: it feeds a trace source through a heterogeneity-aware memory
// controller and reports average memory access latency, region routing,
// migration activity, and power.
//
// Like the paper's evaluation it is an open-loop trace simulation: record
// timestamps come from the trace; memory latency does not throttle the
// request stream. That matches "trace-based simulation makes it practical
// to process trillions of main memory accesses".
package sim

import (
	"context"
	"errors"
	"fmt"
	"io"

	"heteromem/internal/config"
	"heteromem/internal/core"
	"heteromem/internal/fault"
	"heteromem/internal/memctrl"
	"heteromem/internal/obs"
	"heteromem/internal/power"
	"heteromem/internal/sched"
	"heteromem/internal/scheme"
	"heteromem/internal/trace"
)

// Config describes one simulation run.
type Config struct {
	Geometry  config.MemoryGeometry
	Latencies config.Latencies
	OffTiming config.DDR3Timing
	OnTiming  config.DDR3Timing

	// Migration enables dynamic migration; nil simulates the static
	// mapping (the "w/o migration" baseline rows of Table IV).
	Migration *core.Options

	// Scheme selects the on-package capacity policy (internal/scheme). The
	// zero value is the paper's migration scheme and keeps configs,
	// digests, and results byte-identical to pre-scheme builds.
	Scheme scheme.Spec

	// OSAssisted charges the OS-epoch overhead; the experiment drivers set
	// it for macro pages < 1 MB per the paper's feasibility split.
	OSAssisted bool

	// Channels shards the controller: the physical space stripes across
	// this many per-channel controllers behind a hub (internal/memctrl),
	// and the run executes deterministically in parallel — one goroutine
	// per channel under a cycle-barrier (see runSharded). 0 and 1 both mean
	// the classic single controller; values > 1 must be powers of two and
	// divide both capacities into whole-stripe shards.
	Channels int

	// InterleaveBytes is the channel-striping granularity (0 = the macro
	// page size). Must be a power-of-two multiple of the macro page size.
	InterleaveBytes uint64

	// HopLatency is the cross-channel interconnect hop in cycles charged
	// on swap copy legs of a sharded run (0 = memctrl.DefaultHopLatency).
	HopLatency int64

	// BarrierWindow is the lockstep window of the sharded run, in trace
	// cycles per barrier epoch (0 = a default sized no smaller than the
	// minimum cross-channel latency). Results never depend on it — shards
	// only interact at hop latency and migration is shard-local — so it
	// trades barrier overhead against scheduling skew only.
	BarrierWindow int64

	// Sched tunes the per-region transaction schedulers (ablations).
	Sched sched.Config

	// MeterPower attaches a power meter using the paper's constants.
	MeterPower bool

	// MaxRecords bounds the run (0 = whole trace).
	MaxRecords uint64

	// Warmup discards statistics for the first Warmup records so reported
	// numbers reflect the steady state after the hot set has migrated.
	Warmup uint64

	// WindowRecords, when positive, collects a latency/routing time series
	// with one point per that many records (including warmup), so migration
	// convergence can be observed. See Result.Windows.
	WindowRecords uint64

	// Metrics enables the observability registry: counters, gauges, and
	// latency histograms collected across the whole pipeline and returned
	// in Result.Metrics. Off by default; the disabled cost is a nil check
	// per record.
	Metrics bool

	// EventTrace, when positive, keeps a ring buffer of the last N
	// structured pipeline events (epoch ticks, swap steps, P-bit stalls,
	// copy completions, audits) and returns them in Result.Events.
	// Implies Metrics.
	EventTrace int

	// SpanTrace, when positive, records up to N cycle-domain spans (swap
	// lifecycles, copy legs, stalls, rollbacks, fault ladders) into
	// Result.Spans, exportable as Chrome trace-event JSON. Implies Metrics.
	SpanTrace int

	// EpochSeries, when positive, samples the cumulative pipeline counters
	// at every monitoring-epoch boundary (plus once at flush) into a ring of
	// the last N samples, returned in Result.Series. Implies Metrics.
	EpochSeries int

	// Audit attaches the invariant auditor to the migration pipeline: the
	// translation table is verified after every swap step and at every
	// quiescent point, and any violation fails the run with a diagnostic
	// error.
	Audit bool

	// Fault configures deterministic fault injection into the memory
	// pipeline (internal/fault): DRAM bursts, migration copy legs, and step
	// completions can be failed by rate or schedule, and the controller
	// degrades gracefully (retry, rollback, slot retirement, frozen
	// migration) instead of erroring out. The zero value disables injection
	// and leaves results byte-identical to a fault-free build.
	Fault fault.Config

	// CheckpointEvery, when positive, serializes the complete run state
	// every that many records and hands it to CheckpointSink. A run resumed
	// from any such checkpoint produces a Result identical to the
	// uninterrupted run. Incompatible with the observability collectors
	// (Metrics, EventTrace, SpanTrace, EpochSeries, WindowRecords).
	CheckpointEvery uint64

	// CheckpointSink receives each checkpoint (the encoded snapshot and the
	// number of records completed). A sink error aborts the run.
	CheckpointSink func(data []byte, records uint64) error

	// Resume restores the run from a checkpoint before processing records.
	// The configuration must match the one the checkpoint was taken under
	// (ErrConfigMismatch otherwise), and the trace source must be the same
	// source the checkpointed run used, freshly constructed.
	Resume []byte
}

// Default fills in the Table II/III defaults for anything left zero.
func Default() Config {
	return Config{
		Geometry:  config.TraceGeometry(),
		Latencies: config.TableIILatencies(),
		OffTiming: config.OffPackageTiming(),
		OnTiming:  config.OnPackageTiming(),
	}
}

// Result is the outcome of one run.
type Result struct {
	Report    memctrl.Report
	Records   uint64
	LastCycle int64

	// MeanLatency is the average end-to-end memory access latency in CPU
	// cycles (translation + controller + wires + DRAM access).
	MeanLatency float64

	// MeanDRAMLatency is the average DRAM access latency (queuing + device
	// service) — the quantity the paper's trace-based figures (Figs. 11-15,
	// Table IV) report, measured at the memory controller's DRAM interface.
	MeanDRAMLatency float64

	// Power results (zero when not metered).
	EnergyPJ        float64
	NormalizedPower float64

	// Windows is the convergence time series (empty unless
	// Config.WindowRecords was set).
	Windows []Window

	// Metrics is the observability snapshot (nil unless Config.Metrics or
	// Config.EventTrace was set).
	Metrics *obs.Snapshot `json:",omitempty"`

	// Events is the tail of the structured event trace, oldest first
	// (nil unless Config.EventTrace was set). EventsTotal counts every
	// event emitted over the run, including those the ring dropped;
	// EventsDropped is how many the ring overwrote (non-zero means the
	// trace is truncated at the front — no silent caps).
	Events        []obs.Event `json:",omitempty"`
	EventsTotal   uint64      `json:",omitempty"`
	EventsDropped uint64      `json:",omitempty"`

	// Spans is the cycle-domain span trace, earliest-first (nil unless
	// Config.SpanTrace was set); SpansDropped counts spans discarded once
	// the buffer filled.
	Spans        []obs.Span `json:",omitempty"`
	SpansDropped uint64     `json:",omitempty"`

	// Series is the per-epoch time series, oldest-first, ending with the
	// flush-time sample (nil unless Config.EpochSeries was set);
	// SeriesDropped counts samples the ring overwrote.
	Series        []obs.EpochSample `json:",omitempty"`
	SeriesDropped uint64            `json:",omitempty"`

	// Faults is the fault-handling ledger: injected fault counts per point
	// and the disposition of each (retried, rolled back, retired,
	// degraded). Nil unless Config.Fault enabled injection.
	Faults *fault.Report `json:",omitempty"`
}

// Window is one point of the convergence time series.
type Window struct {
	Records     uint64  // records completed in this window
	MeanLatency float64 // mean end-to-end latency in the window
	OnShare     float64 // fraction routed on-package
	SwapsSoFar  uint64  // cumulative completed swaps at window end
}

// cancelStride is how many records pass between cooperative cancellation
// checks in RunContext: frequent enough that a signal aborts a run within
// microseconds of wall time, sparse enough that the per-record hot path
// never touches the context.
const cancelStride = 4096

// batchBoundary returns how many records the run loop may read in one
// batch starting at record n without crossing a semantic boundary: the
// next cancel-poll stride, the warmup edge, the next checkpoint edge, and
// MaxRecords. Splitting batches there keeps the batched loop's boundary
// actions at exactly the record counts of the old per-record loop. Always
// at least 1 when the loop condition admitted another record.
func batchBoundary(cfg *Config, n uint64) uint64 {
	want := cancelStride - n%cancelStride
	if cfg.MaxRecords > 0 {
		if rem := cfg.MaxRecords - n; rem < want {
			want = rem
		}
	}
	if cfg.Warmup > n {
		if rem := cfg.Warmup - n; rem < want {
			want = rem
		}
	}
	if cfg.CheckpointEvery > 0 && cfg.CheckpointSink != nil {
		if rem := cfg.CheckpointEvery - n%cfg.CheckpointEvery; rem < want {
			want = rem
		}
	}
	return want
}

// Run simulates src through a controller built from cfg. With
// cfg.Channels > 1 the run shards across per-channel controllers and
// executes deterministically in parallel; the single-channel path below
// still goes through the (delegating) hub so the two share one entry point.
func Run(src trace.Source, cfg Config) (Result, error) {
	return RunContext(context.Background(), src, cfg)
}

// RunContext is Run with cooperative cancellation: ctx is polled every
// cancelStride records (and at every checkpoint boundary), and a cancelled
// run returns ctx.Err() without flushing. Simulated results are unaffected
// by when — or whether — the context machinery observes the run, so Run
// and RunContext with an inert context are byte-identical.
func RunContext(ctx context.Context, src trace.Source, cfg Config) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.Channels > 1 {
		return runSharded(ctx, src, cfg)
	}
	if cfg.CheckpointEvery > 0 || cfg.Resume != nil {
		if err := checkpointIncompatible(cfg); err != nil {
			return Result{}, err
		}
	}
	mcfg := memctrl.Config{
		Geometry:   cfg.Geometry,
		Latencies:  cfg.Latencies,
		OffTiming:  cfg.OffTiming,
		OnTiming:   cfg.OnTiming,
		Migration:  cfg.Migration,
		Scheme:     cfg.Scheme,
		OSAssisted: cfg.OSAssisted,
		Sched:      cfg.Sched,
		Audit:      cfg.Audit,
		Fault:      cfg.Fault,
	}
	var reg *obs.Registry
	if cfg.Metrics || cfg.EventTrace > 0 || cfg.SpanTrace > 0 || cfg.EpochSeries > 0 {
		reg = obs.NewRegistry()
		if cfg.EventTrace > 0 {
			reg.EnableEvents(cfg.EventTrace)
		}
		if cfg.SpanTrace > 0 {
			reg.EnableSpans(cfg.SpanTrace)
		}
		if cfg.EpochSeries > 0 {
			reg.EnableSeries(cfg.EpochSeries)
		}
		mcfg.Obs = reg
	}
	var meter *power.Meter
	if cfg.MeterPower {
		meter = power.NewMeter(config.PaperPower())
		mcfg.Power = meter
	}
	var res Result
	var ctrl *memctrl.Hub
	var onDone func(memctrl.AccessResult)
	if cfg.WindowRecords > 0 {
		var win struct {
			n, on  uint64
			sumLat int64
		}
		onDone = func(r memctrl.AccessResult) {
			win.n++
			win.sumLat += r.Done - r.Issue
			if r.Region == memctrl.OnPackage {
				win.on++
			}
			if win.n >= cfg.WindowRecords {
				w := Window{
					Records:     win.n,
					OnShare:     float64(win.on) / float64(win.n),
					MeanLatency: float64(win.sumLat) / float64(win.n),
				}
				if m := ctrl.Migrator(); m != nil {
					w.SwapsSoFar = m.Stats().SwapsCompleted
				}
				res.Windows = append(res.Windows, w)
				win.n, win.on, win.sumLat = 0, 0, 0
			}
		}
	}
	ctrl, err := memctrl.NewHub(mcfg, memctrl.HubConfig{Channels: 1}, onDone)
	if err != nil {
		return Result{}, err
	}

	var n uint64
	if cfg.Resume != nil {
		if n, err = restoreCheckpoint(cfg, src, ctrl, cfg.Resume); err != nil {
			return Result{}, err
		}
	}
	// Records stream through in batches sized to the next semantic boundary
	// (cancel stride, warmup edge, checkpoint edge, MaxRecords), so every
	// per-record check of the old loop hoists to a batch edge while firing
	// at exactly the same record counts — semantics are bit-identical.
	var batch trace.Batch
	for cfg.MaxRecords == 0 || n < cfg.MaxRecords {
		if n%cancelStride == 0 {
			if err := ctx.Err(); err != nil {
				return Result{}, fmt.Errorf("sim: cancelled at record %d: %w", n, err)
			}
		}
		want := batchBoundary(&cfg, n)
		batch.Resize(int(want))
		k, rerr := trace.ReadBatch(src, &batch)
		for j := 0; j < k; j++ {
			if err := ctrl.Access(batch.Addr[j], batch.Write[j], int64(batch.Cycle[j])); err != nil {
				return Result{}, fmt.Errorf("sim: access %d: %w", n+uint64(j), err)
			}
		}
		n += uint64(k)
		if cfg.Warmup > 0 && n == cfg.Warmup && k > 0 {
			ctrl.ResetStats()
		}
		if cfg.CheckpointEvery > 0 && cfg.CheckpointSink != nil && k > 0 && n%cfg.CheckpointEvery == 0 {
			if err := ctx.Err(); err != nil {
				return Result{}, fmt.Errorf("sim: cancelled at record %d: %w", n, err)
			}
			data, err := takeCheckpoint(cfg, src, ctrl, n)
			if err != nil {
				return Result{}, fmt.Errorf("sim: checkpoint at record %d: %w", n, err)
			}
			if err := cfg.CheckpointSink(data, n); err != nil {
				return Result{}, fmt.Errorf("sim: checkpoint sink at record %d: %w", n, err)
			}
		}
		if errors.Is(rerr, io.EOF) {
			break
		}
		if rerr != nil {
			return Result{}, fmt.Errorf("sim: reading trace record %d: %w", n, rerr)
		}
		if k == 0 {
			return Result{}, fmt.Errorf("sim: reading trace record %d: %w", n, io.ErrNoProgress)
		}
	}
	last := ctrl.Flush()
	if err := ctrl.Err(); err != nil {
		return Result{}, fmt.Errorf("sim: %w", err)
	}

	if reg != nil {
		ctrl.PublishObs()
		res.Metrics = reg.Snapshot()
		if ring := reg.Events(); ring != nil {
			res.Events = ring.Events()
			res.EventsTotal = ring.Total()
			res.EventsDropped = ring.Dropped()
		}
		if tr := reg.Spans(); tr != nil {
			res.Spans = tr.Spans()
			res.SpansDropped = tr.Dropped()
		}
		if ser := reg.Series(); ser != nil {
			res.Series = ser.Samples()
			res.SeriesDropped = ser.Dropped()
		}
	}
	res.Report = ctrl.Report()
	res.Faults = res.Report.Faults
	res.Records = n
	res.LastCycle = last
	res.MeanLatency = res.Report.All.Mean()
	res.MeanDRAMLatency = res.Report.DRAMAll.Mean()
	if meter != nil {
		res.EnergyPJ = meter.EnergyPJ()
		res.NormalizedPower = meter.Normalized()
	}
	return res, nil
}

// Effectiveness computes the paper's η metric (Section IV-B):
//
//	η = (Lat_noMig − Lat_mig) / (Lat_noMig − DRAMCoreLat) × 100%
//
// which "approximately reflects how many memory accesses are routed to the
// on-package memory region".
func Effectiveness(latNoMig, latMig, coreLat float64) float64 {
	denom := latNoMig - coreLat
	if denom <= 0 {
		return 0
	}
	return (latNoMig - latMig) / denom * 100
}
