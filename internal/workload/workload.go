package workload

import (
	"fmt"

	"heteromem/internal/rng"
	"heteromem/internal/trace"
)

// Component is one weighted access-pattern stream of a workload. Components
// are laid out contiguously in the workload's address space in declaration
// order.
type Component struct {
	Name      string
	Weight    int     // relative share of accesses
	Region    uint64  // bytes of address space this component covers
	WriteFrac float64 // fraction of accesses that are stores
	// Make builds the stream; region is the component's size.
	Make func(rng *rng.Rand, region uint64) stream
}

// Spec describes a synthetic workload.
type Spec struct {
	Name        string
	Description string
	MeanGap     float64 // mean CPU cycles between consecutive accesses
	Cores       int     // CPUs issuing accesses (round-robin-ish)
	Components  []Component
}

// Footprint returns the total address-space coverage in bytes.
func (s Spec) Footprint() uint64 {
	var f uint64
	for _, c := range s.Components {
		f += c.Region
	}
	return f
}

// Generator emits the trace of a Spec; it implements trace.Source. The
// per-component fields consulted on every record (region, write fraction)
// are mirrored into parallel slices so the hot loop never copies a whole
// Component struct out of the spec.
type Generator struct {
	spec       Spec
	rng        *rng.Rand
	streams    []stream
	bases      []uint64
	regions    []uint64
	writeFracs []float64
	cum        []int // cumulative weights
	total      int
	meanGap    float64
	cores      int
	cycle      uint64
	n          uint64
}

// New builds a deterministic generator for spec with the given seed.
func New(spec Spec, seed int64) (*Generator, error) {
	if len(spec.Components) == 0 {
		return nil, fmt.Errorf("workload %q: no components", spec.Name)
	}
	if spec.MeanGap <= 0 {
		return nil, fmt.Errorf("workload %q: mean gap must be positive", spec.Name)
	}
	g := &Generator{spec: spec, rng: rng.New(uint64(seed)), meanGap: spec.MeanGap, cores: spec.Cores}
	if g.cores <= 0 {
		g.cores = 4
	}
	var base uint64
	total := 0
	for _, c := range spec.Components {
		if c.Weight <= 0 || c.Region == 0 {
			return nil, fmt.Errorf("workload %q: component %q needs positive weight and region", spec.Name, c.Name)
		}
		g.streams = append(g.streams, c.Make(g.rng, c.Region))
		g.bases = append(g.bases, base)
		g.regions = append(g.regions, c.Region)
		g.writeFracs = append(g.writeFracs, c.WriteFrac)
		base += c.Region
		total += c.Weight
		g.cum = append(g.cum, total)
	}
	g.total = total
	return g, nil
}

// Spec returns the generator's specification.
func (g *Generator) Spec() Spec { return g.spec }

// Footprint returns the workload footprint in bytes.
func (g *Generator) Footprint() uint64 { return g.spec.Footprint() }

// Next implements trace.Source. The stream is unbounded; wrap it in
// trace.NewLimit for a finite run.
func (g *Generator) Next() (trace.Record, error) {
	w := g.rng.Intn(g.total)
	// Pick the component whose cumulative-weight bucket holds w. Component
	// counts are tiny (a handful per spec), so a linear scan beats the
	// binary search's branches; the picked index is identical.
	i := 0
	for g.cum[i] <= w {
		i++
	}
	region := g.regions[i]
	off := g.streams[i].next(g.rng)
	if off >= region {
		off %= region
	}
	addr := g.bases[i] + off

	gap := g.rng.ExpFloat64() * g.meanGap
	if gap < 1 {
		gap = 1
	}
	g.cycle += uint64(gap)
	g.n++
	return trace.Record{
		Cycle: g.cycle,
		Addr:  addr,
		CPU:   uint8(g.rng.Intn(g.cores)),
		Write: g.rng.Float64() < g.writeFracs[i],
	}, nil
}

// NextBatch implements trace.BatchSource: the batch columns are filled
// with exactly the records Next would have produced (same RNG consumption
// per record), without the per-record interface dispatch and struct copy.
func (g *Generator) NextBatch(b *trace.Batch) (int, error) {
	n := b.Len()
	cycle := g.cycle
	for k := 0; k < n; k++ {
		w := g.rng.Intn(g.total)
		i := 0
		for g.cum[i] <= w {
			i++
		}
		region := g.regions[i]
		off := g.streams[i].next(g.rng)
		if off >= region {
			off %= region
		}
		gap := g.rng.ExpFloat64() * g.meanGap
		if gap < 1 {
			gap = 1
		}
		cycle += uint64(gap)
		b.Cycle[k] = cycle
		b.Addr[k] = g.bases[i] + off
		b.CPU[k] = uint8(g.rng.Intn(g.cores))
		b.Write[k] = g.rng.Float64() < g.writeFracs[i]
	}
	g.cycle = cycle
	g.n += uint64(n)
	return n, nil
}

// Names returns the registered memory-trace workload names in the order
// the paper's figures list them.
func Names() []string {
	return []string{"FT", "MG", "pgbench", "indexer", "SPECjbb", "SPEC2006"}
}

// ProgramNames returns the NPB 3.3 program-level workload names (Table I).
func ProgramNames() []string {
	return []string{"BT.C", "CG.C", "DC.B", "EP.C", "FT.C", "IS.C", "LU.C", "MG.C", "SP.C", "UA.C"}
}

// MemorySpec returns the Section IV memory-trace spec for name.
func MemorySpec(name string) (Spec, error) {
	if s, ok := memorySpecs[name]; ok {
		return s(), nil
	}
	return Spec{}, fmt.Errorf("workload: unknown memory workload %q (have %v)", name, Names())
}

// ProgramSpec returns the Section II program-level spec for name.
func ProgramSpec(name string) (Spec, error) {
	if s, ok := programSpecs[name]; ok {
		return s(), nil
	}
	return Spec{}, fmt.Errorf("workload: unknown program workload %q (have %v)", name, ProgramNames())
}

// NewMemory is shorthand for New(MemorySpec(name), seed).
func NewMemory(name string, seed int64) (*Generator, error) {
	s, err := MemorySpec(name)
	if err != nil {
		return nil, err
	}
	return New(s, seed)
}

// NewProgram is shorthand for New(ProgramSpec(name), seed).
func NewProgram(name string, seed int64) (*Generator, error) {
	s, err := ProgramSpec(name)
	if err != nil {
		return nil, err
	}
	return New(s, seed)
}
