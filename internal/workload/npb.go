package workload

import (
	"heteromem/internal/rng"

	"heteromem/internal/addr"
)

// Program-level models of the NAS Parallel Benchmarks 3.3 suite (CLASS C,
// except DC which uses CLASS B exactly as the paper does). Footprints follow
// Table I; the OCR of the paper dropped digits in a few rows, so values are
// reconstructed to satisfy the text's constraint that exactly seven of the
// ten workloads fit in 1 GB (the three that do not: DC.B, FT.C, MG.C).
//
// Each spec mixes a small cache-resident "scratch" component (locals,
// loop temporaries — the traffic the L1/L2 absorb) with the kernel's
// characteristic main-memory pattern.

func scratch(weight int) Component {
	return Component{
		Name:   "scratch",
		Weight: weight,
		Region: 2 * addr.MiB,
		Make: func(rng *rng.Rand, region uint64) stream {
			return newZipfStream(rng, region, 256, 1.3, false)
		},
	}
}

var programSpecs = map[string]func() Spec{
	"BT.C": func() Spec {
		return Spec{
			Name:        "BT.C",
			Description: "block tri-diagonal solver: blocked grid sweeps",
			MeanGap:     2, Cores: 4,
			Components: []Component{
				scratch(55),
				{Name: "grid-sweep", Weight: 35, Region: 640 * addr.MiB, WriteFrac: 0.35,
					Make: func(rng *rng.Rand, region uint64) stream {
						return &seqStream{size: region, stride: 8}
					}},
				{Name: "block-reuse", Weight: 10, Region: 64 * addr.MiB, WriteFrac: 0.2,
					Make: func(rng *rng.Rand, region uint64) stream {
						return newZipfStream(rng, region, 4096, 1.1, false)
					}},
			},
		}
	},
	"CG.C": func() Spec {
		return Spec{
			Name:        "CG.C",
			Description: "conjugate gradient: sparse matvec gathers",
			MeanGap:     2, Cores: 4,
			Components: []Component{
				scratch(45),
				{Name: "matrix-scan", Weight: 25, Region: 800 * addr.MiB, WriteFrac: 0.05,
					Make: func(rng *rng.Rand, region uint64) stream {
						return &seqStream{size: region, stride: 8}
					}},
				{Name: "vector-gather", Weight: 30, Region: 118 * addr.MiB, WriteFrac: 0.1,
					Make: func(rng *rng.Rand, region uint64) stream {
						return &uniformStream{size: region}
					}},
			},
		}
	},
	"DC.B": func() Spec {
		return Spec{
			Name:        "DC.B",
			Description: "data cube: massive scans with hash-table updates",
			MeanGap:     2, Cores: 4,
			Components: []Component{
				scratch(39),
				// Input tuples staged low in the address space and touched
				// only during loading: the statically mapped first gigabyte
				// is wasted on them, which is why DC.B is one of the paper's
				// two workloads where the L4 cache beats static mapping.
				{Name: "input-staging", Weight: 1, Region: 1024 * addr.MiB, WriteFrac: 0.05,
					Make: func(rng *rng.Rand, region uint64) stream {
						return newSeqStreamAt(rng, region, 64)
					}},
				{Name: "cube-scan", Weight: 15, Region: 4352 * addr.MiB, WriteFrac: 0.15,
					Make: func(rng *rng.Rand, region uint64) stream {
						return &seqStream{size: region, stride: 8}
					}},
				// The aggregation hash tables: working set ~96 MB — too big
				// for the 8 MB L3, comfortably inside a 1 GB L4.
				{Name: "hash-update", Weight: 45, Region: 498 * addr.MiB, WriteFrac: 0.5,
					Make: func(rng *rng.Rand, region uint64) stream {
						return newZipfStream(rng, 96*addr.MiB, 4096, 1.05, false)
					}},
			},
		}
	},
	"EP.C": func() Spec {
		return Spec{
			Name:        "EP.C",
			Description: "embarrassingly parallel: tiny footprint, cache resident",
			MeanGap:     3, Cores: 4,
			Components: []Component{
				scratch(80),
				{Name: "tables", Weight: 20, Region: 14 * addr.MiB, WriteFrac: 0.1,
					Make: func(rng *rng.Rand, region uint64) stream {
						return newZipfStream(rng, region, 1024, 1.2, false)
					}},
			},
		}
	},
	"FT.C": func() Spec {
		return Spec{
			Name:        "FT.C",
			Description: "3D FFT: sequential and transposed-dimension sweeps",
			MeanGap:     2, Cores: 4,
			Components: []Component{
				scratch(40),
				{Name: "dim-x", Weight: 13, Region: 2560 * addr.MiB, WriteFrac: 0.4,
					Make: func(rng *rng.Rand, region uint64) stream {
						return &seqStream{size: region, stride: 16}
					}},
				{Name: "dim-yz", Weight: 35, Region: 2395 * addr.MiB, WriteFrac: 0.4,
					Make: func(rng *rng.Rand, region uint64) stream {
						// Each transposed position moves a 512 B element row
						// (8 cache lines), so the walk has block-level
						// spatial reuse a DRAM cache can exploit even though
						// consecutive positions are 64 KB apart.
						return &stridedStream{size: region, stride: 64 * addr.KiB, unit: 64, chunk: 512}
					}},
				// Twiddle factors and blocking buffers: revisited every
				// butterfly stage, far above the first gigabyte — L4-cache
				// friendly, static-mapping hostile (the paper's FT.C case).
				{Name: "twiddle", Weight: 12, Region: 192 * addr.MiB, WriteFrac: 0.1,
					Make: func(rng *rng.Rand, region uint64) stream {
						// Working set ~96 MB: L3-exceeding, L4-resident.
						return newZipfStream(rng, 96*addr.MiB, 4096, 1.3, false)
					}},
			},
		}
	},
	"IS.C": func() Spec {
		return Spec{
			Name:        "IS.C",
			Description: "integer sort: bucket scatter over key arrays",
			MeanGap:     2, Cores: 4,
			Components: []Component{
				scratch(40),
				{Name: "key-scan", Weight: 30, Region: 100 * addr.MiB, WriteFrac: 0.1,
					Make: func(rng *rng.Rand, region uint64) stream {
						return &seqStream{size: region, stride: 8}
					}},
				{Name: "bucket-scatter", Weight: 30, Region: 62 * addr.MiB, WriteFrac: 0.6,
					Make: func(rng *rng.Rand, region uint64) stream {
						return &uniformStream{size: region}
					}},
			},
		}
	},
	"LU.C": func() Spec {
		return Spec{
			Name:        "LU.C",
			Description: "LU solver: pipelined wavefront sweeps",
			MeanGap:     2, Cores: 4,
			Components: []Component{
				scratch(50),
				{Name: "wavefront", Weight: 40, Region: 560 * addr.MiB, WriteFrac: 0.35,
					Make: func(rng *rng.Rand, region uint64) stream {
						return &seqStream{size: region, stride: 8}
					}},
				{Name: "factor-reuse", Weight: 10, Region: 53 * addr.MiB, WriteFrac: 0.2,
					Make: func(rng *rng.Rand, region uint64) stream {
						return newZipfStream(rng, region, 4096, 1.1, false)
					}},
			},
		}
	},
	"MG.C": func() Spec {
		return Spec{
			Name:        "MG.C",
			Description: "multigrid: V-cycle over a 3.4 GB grid hierarchy",
			MeanGap:     2, Cores: 4,
			Components: []Component{
				scratch(40),
				{Name: "v-cycle", Weight: 60, Region: 3424 * addr.MiB, WriteFrac: 0.3,
					Make: func(rng *rng.Rand, region uint64) stream {
						return newVCycleStream(region, 5, 1<<16)
					}},
			},
		}
	},
	"SP.C": func() Spec {
		return Spec{
			Name:        "SP.C",
			Description: "scalar penta-diagonal solver: grid sweeps",
			MeanGap:     2, Cores: 4,
			Components: []Component{
				scratch(50),
				{Name: "grid-sweep", Weight: 40, Region: 700 * addr.MiB, WriteFrac: 0.35,
					Make: func(rng *rng.Rand, region uint64) stream {
						return &seqStream{size: region, stride: 8}
					}},
				{Name: "rhs-reuse", Weight: 10, Region: 56 * addr.MiB, WriteFrac: 0.2,
					Make: func(rng *rng.Rand, region uint64) stream {
						return newZipfStream(rng, region, 4096, 1.1, false)
					}},
			},
		}
	},
	"UA.C": func() Spec {
		return Spec{
			Name:        "UA.C",
			Description: "unstructured adaptive mesh: irregular element access",
			MeanGap:     2, Cores: 4,
			Components: []Component{
				scratch(45),
				{Name: "mesh-gather", Weight: 35, Region: 400 * addr.MiB, WriteFrac: 0.25,
					Make: func(rng *rng.Rand, region uint64) stream {
						return newZipfStream(rng, region, 4096, 1.05, true)
					}},
				{Name: "refine-scan", Weight: 20, Region: 108 * addr.MiB, WriteFrac: 0.3,
					Make: func(rng *rng.Rand, region uint64) stream {
						return &seqStream{size: region, stride: 8}
					}},
			},
		}
	},
}

// TableIFootprints returns the reconstructed Table I footprints in bytes,
// computed from the specs so the table and the generators cannot drift.
func TableIFootprints() map[string]uint64 {
	out := make(map[string]uint64, len(programSpecs))
	for name, f := range programSpecs {
		out[name] = f().Footprint()
	}
	return out
}
