package workload

import (
	"io"
	"testing"

	"heteromem/internal/trace"
)

// TestGeneratorNextBatchMatchesNext pins the batched generator path to the
// per-record one: both must consume the RNG identically and emit the same
// stream, for every registered workload and across uneven batch sizes.
func TestGeneratorNextBatchMatchesNext(t *testing.T) {
	const n = 20_000
	for _, name := range append(Names(), ProgramNames()...) {
		single, err := newAny(name, 42)
		if err != nil {
			t.Fatal(err)
		}
		batched, err := newAny(name, 42)
		if err != nil {
			t.Fatal(err)
		}
		var b trace.Batch
		got := 0
		size := 1
		for got < n {
			if size > n-got {
				size = n - got
			}
			b.Resize(size)
			k, err := batched.NextBatch(&b)
			if err != nil || k != size {
				t.Fatalf("%s: NextBatch(%d) = %d, %v", name, size, k, err)
			}
			for i := 0; i < k; i++ {
				want, err := single.Next()
				if err != nil {
					t.Fatal(err)
				}
				if b.Record(i) != want {
					t.Fatalf("%s: record %d = %+v, want %+v", name, got+i, b.Record(i), want)
				}
			}
			got += k
			size = size*3 + 1 // uneven, growing batch sizes
		}
	}
}

// newAny resolves name in either workload registry.
func newAny(name string, seed int64) (*Generator, error) {
	if g, err := NewMemory(name, seed); err == nil {
		return g, nil
	}
	return NewProgram(name, seed)
}

// TestPackedCompressionRatio pins the tentpole's size target: the packed
// form of real workload traces must be at least 4x smaller than the
// equivalent []trace.Record (24 bytes per record in memory).
func TestPackedCompressionRatio(t *testing.T) {
	const n = 100_000
	for _, name := range []string{"SPEC2006", "FT", "pgbench", "EP.C", "CG.C"} {
		gen, err := newAny(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		p, err := trace.Pack(gen, n)
		if err != nil {
			t.Fatal(err)
		}
		if p.NumRecords() != n {
			t.Fatalf("%s: packed %d records, want %d", name, p.NumRecords(), n)
		}
		raw := uint64(n) * 24
		if ratio := float64(raw) / float64(p.EncodedBytes()); ratio < 4 {
			t.Errorf("%s: packed %d bytes for %d raw (%.2fx), want >= 4x", name, p.EncodedBytes(), raw, ratio)
		} else {
			t.Logf("%s: %.2fx (%.2f B/record)", name, ratio, float64(p.EncodedBytes())/n)
		}
	}
}

// TestPackedGeneratorRoundTrip checks pack -> decode equality against the
// generator stream itself (the form the experiment drivers replay).
func TestPackedGeneratorRoundTrip(t *testing.T) {
	const n = 50_000
	gen, err := NewMemory("SPEC2006", 9)
	if err != nil {
		t.Fatal(err)
	}
	p, err := trace.Pack(gen, n)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewMemory("SPEC2006", 9)
	if err != nil {
		t.Fatal(err)
	}
	src := trace.NewPackedSource(p)
	for i := 0; i < n; i++ {
		want, err := ref.Next()
		if err != nil {
			t.Fatal(err)
		}
		got, err := src.Next()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("record %d = %+v, want %+v", i, got, want)
		}
	}
	if _, err := src.Next(); err != io.EOF {
		t.Fatalf("after %d records: %v, want EOF", n, err)
	}
}
