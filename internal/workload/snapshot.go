package workload

import (
	"fmt"

	"heteromem/internal/snap"
)

// SnapshotTo writes the generator's mutable state: the shared PRNG state
// word, the output cursor (cycle and record ordinal), and each component
// stream's position, tagged with the workload name so a restore against
// the wrong workload fails by name rather than by structural accident.
// The Spec, weights, and layout are construction inputs — a restore
// target must be built from the identical Spec and the snapshot's stream
// count is validated against it.
func (g *Generator) SnapshotTo(e *snap.Encoder) {
	e.String(g.spec.Name)
	e.U64(g.rng.State())
	e.U64(g.cycle)
	e.U64(g.n)
	e.U32(uint32(len(g.streams)))
	for _, s := range g.streams {
		s.snapshotTo(e)
	}
}

// RestoreFrom reads the state written by SnapshotTo into a generator
// freshly built from the same Spec and seed.
func (g *Generator) RestoreFrom(d *snap.Decoder) error {
	name := d.String()
	if err := d.Err(); err != nil {
		return err
	}
	if name != g.spec.Name {
		d.Invalid("snapshot is of workload %q, generator is %q", name, g.spec.Name)
		return d.Err()
	}
	g.rng.SetState(d.U64())
	g.cycle = d.U64()
	g.n = d.U64()
	n := int(d.U32())
	if err := d.Err(); err != nil {
		return err
	}
	if n != len(g.streams) {
		d.Invalid("generator has %d streams, snapshot has %d", len(g.streams), n)
		return d.Err()
	}
	for _, s := range g.streams {
		s.restoreFrom(d)
	}
	return d.Err()
}

// Position implements trace.Positioner: the number of records emitted.
func (g *Generator) Position() uint64 { return g.n }

// SkipTo advances the generator so the next record is record n (0-based)
// by regenerating and discarding; the stream is unbounded, so only a
// backward skip can fail.
func (g *Generator) SkipTo(n uint64) error {
	if n < g.n {
		return fmt.Errorf("workload: cannot skip backward from record %d to %d", g.n, n)
	}
	for g.n < n {
		if _, err := g.Next(); err != nil {
			return err
		}
	}
	return nil
}
