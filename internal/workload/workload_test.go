package workload

import (
	"heteromem/internal/rng"
	"testing"

	"heteromem/internal/addr"
	"heteromem/internal/trace"
)

func TestAllMemorySpecsBuild(t *testing.T) {
	for _, name := range Names() {
		gen, err := NewMemory(name, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		fp := gen.Footprint()
		if fp <= 2*addr.GiB {
			t.Errorf("%s: footprint %d, paper requires > 2GB", name, fp)
		}
		if fp >= 4*addr.GiB {
			t.Errorf("%s: footprint %d exceeds the 4GB simulated memory", name, fp)
		}
		// Records stay in range, cycles are monotonic.
		var last uint64
		for i := 0; i < 20000; i++ {
			rec, err := gen.Next()
			if err != nil {
				t.Fatalf("%s: record %d: %v", name, i, err)
			}
			if rec.Addr >= fp {
				t.Fatalf("%s: addr %#x beyond footprint %#x", name, rec.Addr, fp)
			}
			if rec.Cycle < last {
				t.Fatalf("%s: cycles not monotonic", name)
			}
			last = rec.Cycle
			if rec.CPU > 3 {
				t.Fatalf("%s: cpu %d out of range", name, rec.CPU)
			}
		}
	}
}

func TestAllProgramSpecsBuild(t *testing.T) {
	for _, name := range ProgramNames() {
		gen, err := NewProgram(name, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i := 0; i < 5000; i++ {
			rec, err := gen.Next()
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if rec.Addr >= gen.Footprint() {
				t.Fatalf("%s: addr out of range", name)
			}
		}
	}
}

func TestTableIFootprintSplit(t *testing.T) {
	// The paper: exactly 7 of the 10 NPB workloads fit in 1 GB; the three
	// that do not are DC.B, FT.C, and MG.C.
	fits := 0
	big := map[string]bool{}
	for name, fp := range TableIFootprints() {
		if fp < 1*addr.GiB {
			fits++
		} else {
			big[name] = true
		}
	}
	if fits != 7 {
		t.Fatalf("%d workloads fit in 1GB, want 7", fits)
	}
	for _, name := range []string{"DC.B", "FT.C", "MG.C"} {
		if !big[name] {
			t.Errorf("%s should exceed 1GB", name)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, _ := NewMemory("pgbench", 42)
	b, _ := NewMemory("pgbench", 42)
	for i := 0; i < 10000; i++ {
		ra, _ := a.Next()
		rb, _ := b.Next()
		if ra != rb {
			t.Fatalf("record %d diverged: %+v vs %+v", i, ra, rb)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, _ := NewMemory("pgbench", 1)
	b, _ := NewMemory("pgbench", 2)
	same := 0
	for i := 0; i < 1000; i++ {
		ra, _ := a.Next()
		rb, _ := b.Next()
		if ra.Addr == rb.Addr {
			same++
		}
	}
	if same > 900 {
		t.Fatalf("seeds 1 and 2 produced %d/1000 identical addresses", same)
	}
}

func TestUnknownWorkloads(t *testing.T) {
	if _, err := NewMemory("nope", 1); err == nil {
		t.Fatal("unknown memory workload accepted")
	}
	if _, err := NewProgram("nope", 1); err == nil {
		t.Fatal("unknown program workload accepted")
	}
}

func TestSpecValidation(t *testing.T) {
	bad := []Spec{
		{Name: "no-components", MeanGap: 10},
		{Name: "no-gap", Components: []Component{{Name: "x", Weight: 1, Region: 4096, Make: SeqMaker(64)}}},
		{Name: "zero-weight", MeanGap: 10, Components: []Component{{Name: "x", Weight: 0, Region: 4096, Make: SeqMaker(64)}}},
		{Name: "zero-region", MeanGap: 10, Components: []Component{{Name: "x", Weight: 1, Region: 0, Make: SeqMaker(64)}}},
	}
	for _, spec := range bad {
		if _, err := New(spec, 1); err == nil {
			t.Errorf("spec %q accepted", spec.Name)
		}
	}
}

func TestWriteFractionRespected(t *testing.T) {
	spec := Spec{
		Name: "w", MeanGap: 10,
		Components: []Component{{Name: "x", Weight: 1, Region: 1 << 20, WriteFrac: 0.5, Make: UniformMaker()}},
	}
	gen, err := New(spec, 9)
	if err != nil {
		t.Fatal(err)
	}
	writes := 0
	const n = 10000
	for i := 0; i < n; i++ {
		rec, _ := gen.Next()
		if rec.Write {
			writes++
		}
	}
	if writes < n*4/10 || writes > n*6/10 {
		t.Fatalf("writes = %d/%d, want ~50%%", writes, n)
	}
}

func TestZipfSkew(t *testing.T) {
	r := rng.New(5)
	z := newZipfStream(r, 1<<24, 4096, 1.3, false)
	counts := map[uint64]int{}
	for i := 0; i < 100000; i++ {
		counts[z.next(r)/4096]++
	}
	// The hottest block must carry far more than a uniform share.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	uniform := 100000 / (1 << 12)
	if max < uniform*20 {
		t.Fatalf("hottest block %d accesses, uniform share %d: not skewed", max, uniform)
	}
}

func TestSeqStreamWraps(t *testing.T) {
	s := &seqStream{size: 256, stride: 64}
	seen := map[uint64]bool{}
	for i := 0; i < 8; i++ {
		seen[s.next(nil)] = true
	}
	if len(seen) != 4 {
		t.Fatalf("wrap produced %d distinct addresses, want 4", len(seen))
	}
}

func TestDriftStreamMovesHotRegion(t *testing.T) {
	r := rng.New(5)
	d := &driftStream{
		inner:  &seqStream{size: 4096, stride: 64},
		window: 1 << 24, span: 4096, period: 100,
	}
	first := d.next(r)
	var moved bool
	for i := 0; i < 1000; i++ {
		a := d.next(r)
		if a/4096 != first/4096 && a-first > 8192 {
			moved = true
		}
	}
	if !moved {
		t.Fatal("drift stream never moved its base")
	}
}

func TestDriftStreamSlideWraps(t *testing.T) {
	r := rng.New(5)
	d := &driftStream{
		inner:  &seqStream{size: 1024, stride: 64},
		window: 8192, span: 1024, period: 10, slide: 2048,
	}
	for i := 0; i < 500; i++ {
		if a := d.next(r); a >= 8192+1024 {
			t.Fatalf("slide escaped the window: %d", a)
		}
	}
}

func TestVCycleStaysInRegion(t *testing.T) {
	v := newVCycleStream(1<<24, 4, 64)
	r := rng.New(5)
	for i := 0; i < 100000; i++ {
		if a := v.next(r); a >= 1<<24 {
			t.Fatalf("v-cycle address %d out of region", a)
		}
	}
}

func TestMergeSPEC2006StyleMixture(t *testing.T) {
	// The Merge tool must build a multi-programmed trace the way the paper
	// built its SPEC2006 mixture.
	var parts []trace.Source
	for i := 0; i < 4; i++ {
		gen, err := NewProgram("EP.C", int64(i+1))
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, trace.NewLimit(gen, 1000))
	}
	m := trace.NewMerge(1<<32, true, parts...)
	recs, err := trace.Collect(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4000 {
		t.Fatalf("merged %d records, want 4000", len(recs))
	}
	cpus := map[uint8]bool{}
	for i, r := range recs {
		cpus[r.CPU] = true
		if i > 0 && r.Cycle < recs[i-1].Cycle {
			t.Fatal("merged trace out of order")
		}
	}
	if len(cpus) != 4 {
		t.Fatalf("mixture uses %d CPUs, want 4", len(cpus))
	}
}

func TestMemoryWorkloadCharacter(t *testing.T) {
	// Validate via trace analysis that each Section IV workload has the
	// structure its spec claims: footprint growth for streaming workloads,
	// a bounded instantaneous working set for skewed ones, and the paper's
	// stated write mixes within tolerance.
	type expect struct {
		maxWSSMB  float64 // bound on per-window working set (256K-access windows)
		writeFrac [2]float64
	}
	expects := map[string]expect{
		"FT":       {maxWSSMB: 170, writeFrac: [2]float64{0.30, 0.55}},
		"MG":       {maxWSSMB: 130, writeFrac: [2]float64{0.20, 0.40}},
		"pgbench":  {maxWSSMB: 60, writeFrac: [2]float64{0.25, 0.45}},
		"indexer":  {maxWSSMB: 60, writeFrac: [2]float64{0.20, 0.45}},
		"SPECjbb":  {maxWSSMB: 120, writeFrac: [2]float64{0.25, 0.50}},
		"SPEC2006": {maxWSSMB: 60, writeFrac: [2]float64{0.20, 0.45}},
	}
	for _, name := range Names() {
		gen, err := NewMemory(name, 3)
		if err != nil {
			t.Fatal(err)
		}
		a, err := trace.Analyze(trace.NewLimit(gen, 512*1024), 256*1024, 4096)
		if err != nil {
			t.Fatal(err)
		}
		e := expects[name]
		ws := a.WriteShare()
		if ws < e.writeFrac[0] || ws > e.writeFrac[1] {
			t.Errorf("%s: write share %.2f outside [%.2f, %.2f]", name, ws, e.writeFrac[0], e.writeFrac[1])
		}
		for i, w := range a.Windows {
			wss := float64(w.UniqueHot*4096) / (1 << 20)
			if wss > e.maxWSSMB {
				t.Errorf("%s window %d: WSS %.1f MB exceeds expected bound %.1f MB",
					name, i, wss, e.maxWSSMB)
			}
		}
		if a.MeanGap < 20 || a.MeanGap > 80 {
			t.Errorf("%s: mean gap %.1f cycles outside the plausible post-L3 range", name, a.MeanGap)
		}
	}
}
