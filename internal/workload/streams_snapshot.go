package workload

import "heteromem/internal/snap"

// Per-stream snapshot state. Only mutable cursor state is serialized;
// sizes, strides, schedules, and distribution parameters are rebuilt from
// the Spec when the generator is reconstructed, and the random state all
// streams draw from lives in the Generator's shared PRNG.

func (s *seqStream) snapshotTo(e *snap.Encoder) { e.U64(s.pos) }
func (s *seqStream) restoreFrom(d *snap.Decoder) {
	s.pos = d.U64()
}

func (s *stridedStream) snapshotTo(e *snap.Encoder) {
	e.U64(s.pos)
	e.U64(s.base)
	e.U64(s.inCh)
}
func (s *stridedStream) restoreFrom(d *snap.Decoder) {
	s.pos = d.U64()
	s.base = d.U64()
	s.inCh = d.U64()
}

func (s *zipfStream) snapshotTo(*snap.Encoder)  {} // draws only from the shared PRNG
func (s *zipfStream) restoreFrom(*snap.Decoder) {}

func (s *uniformStream) snapshotTo(*snap.Encoder)  {}
func (s *uniformStream) restoreFrom(*snap.Decoder) {}

func (s *chaseStream) snapshotTo(e *snap.Encoder) { e.U64(s.cur) }
func (s *chaseStream) restoreFrom(d *snap.Decoder) {
	s.cur = d.U64()
}

func (v *vcycleStream) snapshotTo(e *snap.Encoder) {
	e.U32(uint32(v.idx))
	e.U32(uint32(v.count))
	for i := range v.levels {
		v.levels[i].snapshotTo(e)
	}
}
func (v *vcycleStream) restoreFrom(d *snap.Decoder) {
	v.idx = int(d.U32())
	v.count = int(d.U32())
	if d.Err() == nil && v.idx >= len(v.sched) {
		d.Invalid("vcycle index %d out of range", v.idx)
		v.idx = 0
	}
	for i := range v.levels {
		v.levels[i].restoreFrom(d)
	}
}

func (s *driftStream) snapshotTo(e *snap.Encoder) {
	e.U64(s.count)
	e.U64(s.base)
	e.Bool(s.init)
	s.inner.snapshotTo(e)
}
func (s *driftStream) restoreFrom(d *snap.Decoder) {
	s.count = d.U64()
	s.base = d.U64()
	s.init = d.Bool()
	s.inner.restoreFrom(d)
}
