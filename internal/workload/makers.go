package workload

import "heteromem/internal/rng"

// The exported Maker helpers let callers (tests, examples, custom
// experiments) assemble Specs from the same pattern primitives the built-in
// workloads use.

// SeqMaker returns a Component.Make for a sequential sweep with the given
// stride.
func SeqMaker(stride uint64) func(*rng.Rand, uint64) stream {
	return func(_ *rng.Rand, region uint64) stream {
		return &seqStream{size: region, stride: stride}
	}
}

// StridedMaker returns a Component.Make for a transposed-dimension walk
// touching 64 B per stride position; use StridedChunkMaker for wider
// per-position touches.
func StridedMaker(stride, unit uint64) func(*rng.Rand, uint64) stream {
	return func(_ *rng.Rand, region uint64) stream {
		return &stridedStream{size: region, stride: stride, unit: unit}
	}
}

// StridedChunkMaker is StridedMaker with `chunk` contiguous bytes touched
// at each stride position.
func StridedChunkMaker(stride, unit, chunk uint64) func(*rng.Rand, uint64) stream {
	return func(_ *rng.Rand, region uint64) stream {
		return &stridedStream{size: region, stride: stride, unit: unit, chunk: chunk}
	}
}

// ZipfMaker returns a Component.Make for Zipf-skewed block accesses.
// scatter hashes block ranks across the region so the hot set is not
// contiguous.
func ZipfMaker(block uint64, s float64, scatter bool) func(*rng.Rand, uint64) stream {
	return func(rng *rng.Rand, region uint64) stream {
		return newZipfStream(rng, region, block, s, scatter)
	}
}

// UniformMaker returns a Component.Make for uniform random accesses.
func UniformMaker() func(*rng.Rand, uint64) stream {
	return func(_ *rng.Rand, region uint64) stream {
		return &uniformStream{size: region}
	}
}

// ChaseMaker returns a Component.Make for a pointer-chase walk.
func ChaseMaker() func(*rng.Rand, uint64) stream {
	return func(_ *rng.Rand, region uint64) stream {
		return &chaseStream{size: region, cur: 0x9e3779b97f4a7c15}
	}
}

// DriftMaker wraps another maker so its hot region wanders over the whole
// component every period accesses.
func DriftMaker(inner func(*rng.Rand, uint64) stream, span, period uint64) func(*rng.Rand, uint64) stream {
	return func(rng *rng.Rand, region uint64) stream {
		return &driftStream{inner: inner(rng, span), window: region, span: span, period: period}
	}
}

// VCycleMaker returns a Component.Make for a multigrid V-cycle pattern.
func VCycleMaker(levels, perVisit int) func(*rng.Rand, uint64) stream {
	return func(_ *rng.Rand, region uint64) stream {
		return newVCycleStream(region, levels, perVisit)
	}
}
