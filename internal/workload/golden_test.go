package workload

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"heteromem/internal/snap"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// TestGeneratorGolden pins the exact trace the shared splitmix64 PRNG
// produces, so an accidental change to the generator's draw order or the
// rng package shows up as a diff rather than silently invalidating every
// checkpointed or archived run.
func TestGeneratorGolden(t *testing.T) {
	var buf bytes.Buffer
	for _, tc := range []struct {
		name string
		seed int64
	}{{"pgbench", 1}, {"FT", 7}} {
		gen, err := NewMemory(tc.name, tc.seed)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&buf, "# %s seed=%d\n", tc.name, tc.seed)
		for i := 0; i < 24; i++ {
			rec, err := gen.Next()
			if err != nil {
				t.Fatal(err)
			}
			fmt.Fprintf(&buf, "%d %#x %d %v\n", rec.Cycle, rec.Addr, rec.CPU, rec.Write)
		}
	}
	path := filepath.Join("testdata", "generator.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("generator output drifted from golden file\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestGeneratorSnapshotRoundTrip checkpoints a generator mid-trace into a
// fresh one and requires the continuations to be bit-identical, for every
// registered workload (each exercises a different stream mix).
func TestGeneratorSnapshotRoundTrip(t *testing.T) {
	for _, name := range append(Names(), ProgramNames()...) {
		var gen *Generator
		var err error
		if _, merr := MemorySpec(name); merr == nil {
			gen, err = NewMemory(name, 11)
		} else {
			gen, err = NewProgram(name, 11)
		}
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5000; i++ {
			gen.Next()
		}
		e := snap.NewEncoder()
		e.Section("gen")
		gen.SnapshotTo(e)
		b, err := e.Finish()
		if err != nil {
			t.Fatal(err)
		}

		var fresh *Generator
		if _, merr := MemorySpec(name); merr == nil {
			fresh, _ = NewMemory(name, 11)
		} else {
			fresh, _ = NewProgram(name, 11)
		}
		d, err := snap.NewDecoder(b)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Section("gen"); err != nil {
			t.Fatal(err)
		}
		if err := fresh.RestoreFrom(d); err != nil {
			t.Fatalf("%s: restore: %v", name, err)
		}
		if fresh.Position() != gen.Position() {
			t.Fatalf("%s: position %d after restore, want %d", name, fresh.Position(), gen.Position())
		}
		for i := 0; i < 5000; i++ {
			ra, _ := gen.Next()
			rb, _ := fresh.Next()
			if ra != rb {
				t.Fatalf("%s: record %d diverged after restore: %+v vs %+v", name, i, ra, rb)
			}
		}
	}
}

// TestGeneratorSkipTo regenerates forward and must agree with a generator
// that walked there record by record.
func TestGeneratorSkipTo(t *testing.T) {
	walked, _ := NewMemory("pgbench", 5)
	for i := 0; i < 1234; i++ {
		walked.Next()
	}
	skipped, _ := NewMemory("pgbench", 5)
	if err := skipped.SkipTo(1234); err != nil {
		t.Fatal(err)
	}
	ra, _ := walked.Next()
	rb, _ := skipped.Next()
	if ra != rb {
		t.Fatalf("record 1234 diverged: %+v vs %+v", ra, rb)
	}
	if err := skipped.SkipTo(3); err == nil {
		t.Fatal("backward skip accepted")
	}
	if err := skipped.SkipTo(skipped.Position()); err != nil {
		t.Fatalf("zero-length skip: %v", err)
	}
}
