// Package workload synthesizes the memory-access traces of the paper's
// evaluation. The real study collected traces from a full-system simulator
// running NPB 3.3, SPEC2006, pgbench, a Nutch indexer, and SPECjbb2005;
// those traces are not available, so each workload is modeled as a weighted
// mixture of access-pattern streams whose footprint (Table I / Table III),
// hot-set size, skew, drift, and read/write mix match the workload's
// published character. DESIGN.md section 2 documents why this substitution
// preserves the behaviour the experiments measure.
package workload

import (
	"heteromem/internal/rng"
	"heteromem/internal/snap"
)

// stream produces a sequence of byte offsets within a region of the
// workload's address space. Every stream serializes its mutable position
// state (streams_snapshot.go) so a Generator mid-trace is checkpointable;
// distribution parameters and layout are rebuilt from the Spec.
type stream interface {
	next(rng *rng.Rand) uint64
	snapshotTo(e *snap.Encoder)
	restoreFrom(d *snap.Decoder)
}

// seqStream walks a region sequentially with a fixed stride, wrapping.
// Models array sweeps (the dominant pattern of stencil/FFT kernels).
type seqStream struct {
	size   uint64 // region size in bytes
	stride uint64
	pos    uint64
}

// newSeqStreamAt returns a sweep starting 5/8 of the way into the region,
// so a finite trace window samples the sweep mid-flight instead of
// beginning at the region's start. The position is deterministic: a random
// start would make the static-mapping baseline swing wildly between seeds
// depending on whether the front happens to begin inside the statically
// on-package low addresses.
func newSeqStreamAt(_ *rng.Rand, size, stride uint64) *seqStream {
	pos := size * 5 / 8 / stride * stride
	return &seqStream{size: size, stride: stride, pos: pos}
}

func (s *seqStream) next(*rng.Rand) uint64 {
	a := s.pos
	s.pos += s.stride
	if s.pos >= s.size {
		s.pos -= s.size
	}
	return a
}

// stridedStream sweeps a region with a large stride, restarting at an
// incremented base after each pass — the classic transposed-dimension walk
// of a multidimensional FFT. At each stride position it touches `chunk`
// bytes in 64 B steps (one element row worth of cache lines) before
// jumping; chunk 0 means a single 64 B touch.
type stridedStream struct {
	size   uint64
	stride uint64 // large stride (row length of the transposed walk)
	unit   uint64 // base increment after a full pass
	chunk  uint64 // contiguous bytes touched per stride position
	pos    uint64
	base   uint64
	inCh   uint64
}

func (s *stridedStream) next(*rng.Rand) uint64 {
	chunk := s.chunk
	if chunk < 64 {
		chunk = 64
	}
	a := s.base + s.pos + s.inCh
	s.inCh += 64
	if s.inCh >= chunk {
		s.inCh = 0
		s.pos += s.stride
		if s.base+s.pos+chunk > s.size {
			s.base += s.unit
			if s.base >= s.stride {
				s.base = 0
			}
			s.pos = 0
		}
	}
	return a
}

// zipfStream draws blocks from a region with Zipf-skewed popularity. Block
// ranks are scattered across the region with a hash so the hot set is not
// physically contiguous — the shape of transactional/server heaps, and the
// reason those workloads favor fine migration granularity in the paper.
type zipfStream struct {
	z       *rng.Zipf
	block   uint64
	nblocks uint64
	scatter bool
}

func newZipfStream(r *rng.Rand, size, block uint64, s float64, scatter bool) *zipfStream {
	n := size / block
	if n == 0 {
		n = 1
	}
	return &zipfStream{
		z:       rng.NewZipf(r, s, 1, n-1),
		block:   block,
		nblocks: n,
		scatter: scatter,
	}
}

func (s *zipfStream) next(rng *rng.Rand) uint64 {
	rank := s.z.Uint64()
	blk := rank
	if s.scatter {
		blk = splitmix64(rank) % s.nblocks
	}
	return blk*s.block + uint64(rng.Int63n(int64(s.block)))&^63
}

// uniformStream touches a region uniformly at random — the cache-hostile
// gather of CG's sparse matvec or IS's bucket scatter.
type uniformStream struct {
	size uint64
}

func (s *uniformStream) next(rng *rng.Rand) uint64 {
	return uint64(rng.Int63n(int64(s.size))) &^ 63
}

// chaseStream is a pseudo pointer chase: a multiplicative LCG walk over the
// region, dependent-load-like with no spatial locality (mcf's lists).
type chaseStream struct {
	size uint64
	cur  uint64
}

func (s *chaseStream) next(*rng.Rand) uint64 {
	s.cur = s.cur*6364136223846793005 + 1442695040888963407
	return s.cur % s.size &^ 63
}

// vcycleStream models a multigrid V-cycle: mostly sequential sweeps of the
// finest grid, periodically descending through geometrically smaller grids
// and back — a large footprint whose instantaneous working set shrinks and
// grows with the cycle.
type vcycleStream struct {
	levels []seqStream // level 0 = finest
	sched  []int       // visit order: 0,1,2,...,k,...,2,1,0 repeated
	per    int         // accesses per level visit (scaled by level size)
	idx    int
	count  int
}

func newVCycleStream(size uint64, levels int, perVisit int) *vcycleStream {
	v := &vcycleStream{per: perVisit}
	// The finest level takes 7/8 of the region so the geometric level
	// series (ratio 1/8, 3D coarsening) fits inside the region exactly.
	sz := size / 8 * 7
	for i := 0; i < levels; i++ {
		v.levels = append(v.levels, seqStream{size: sz, stride: 64})
		if sz > 4096*8 {
			sz /= 8 // 3D coarsening
		}
	}
	for i := 0; i < levels; i++ {
		v.sched = append(v.sched, i)
	}
	for i := levels - 2; i >= 0; i-- {
		v.sched = append(v.sched, i)
	}
	return v
}

// base returns the byte offset of level l within the workload region
// (levels are laid out contiguously, finest first).
func (v *vcycleStream) base(l int) uint64 {
	var b uint64
	for i := 0; i < l; i++ {
		b += v.levels[i].size
	}
	return b
}

func (v *vcycleStream) next(rng *rng.Rand) uint64 {
	l := v.sched[v.idx]
	a := v.base(l) + v.levels[l].next(rng)
	v.count++
	// Coarser grids get proportionally fewer accesses per visit.
	quota := v.per >> uint(2*l)
	if quota < 1 {
		quota = 1
	}
	if v.count >= quota {
		v.count = 0
		v.idx = (v.idx + 1) % len(v.sched)
	}
	return a
}

// driftStream shifts another stream's base offset within a window every
// `period` accesses — the slowly moving hot set that makes dynamic
// migration beat static mapping.
type driftStream struct {
	inner  stream
	window uint64 // region the base may wander over
	span   uint64 // size of the inner stream's footprint
	period uint64
	slide  uint64 // bytes the base advances per period; 0 = random jumps
	count  uint64
	base   uint64
	init   bool
}

func (d *driftStream) next(rng *rng.Rand) uint64 {
	if !d.init {
		// Start mid-window for the same determinism reason as
		// newSeqStreamAt: the static baseline must not depend on whether
		// the first hot window lands in the statically mapped low region.
		d.init = true
		if d.window > d.span {
			d.base = (d.window - d.span) / 2 &^ 4095
		}
	}
	d.count++
	if d.count >= d.period {
		d.count = 0
		if d.slide > 0 {
			// Sliding hot region (an FFT pass progressing through its
			// arrays): promoted pages stay useful until the window passes.
			d.base += d.slide
			if d.base+d.span > d.window {
				d.base = 0
			}
		} else if d.window > d.span {
			d.base = uint64(rng.Int63n(int64(d.window-d.span))) &^ 4095
		}
	}
	return d.base + d.inner.next(rng)
}

// splitmix64 is the SplitMix64 finalizer, used as a deterministic scatter
// hash.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
