package workload

import (
	"heteromem/internal/rng"

	"heteromem/internal/addr"
)

// Memory-trace models of the six Section IV workloads (Table III). These
// synthesize the post-L3 main-memory access stream directly — the level the
// paper's collected traces record — so footprints are capped to the 4 GB
// simulated memory and every workload exceeds 2 GB as the paper states.
//
// The knobs that matter to the migration study are footprint, hot-set size
// relative to the 512 MB on-package region, skew, drift rate, and
// read/write mix; each spec is tuned so the workload's character matches
// its published behaviour: the SPEC2006 mixture concentrates nearly all
// traffic in a stable hot set that fits on-package (the paper's best case,
// η = 99.1%), pgbench/indexer have skewed-but-scattered server heaps,
// SPECjbb's hot objects churn with allocation/GC, FT's hot region sweeps
// the whole footprint (the paper's worst case, η = 69.1%), and MG's
// V-cycle concentrates reuse in the coarser grids. Long sweeps start at a
// random position so a finite trace window samples them mid-flight.

var memorySpecs = map[string]func() Spec{
	"FT": func() Spec {
		return Spec{
			Name:        "FT",
			Description: "NPB FT.C: 3D FFT spectral kernel, strided dimension walks",
			MeanGap:     60, Cores: 4,
			Components: []Component{
				// The transposed-dimension walks are FT's signature: every
				// access lands in a new DRAM row, so the 8-bank off-package
				// DIMMs thrash on row conflicts while the 128-bank
				// on-package region absorbs the same pattern — migrating
				// these pages pays off through bank parallelism, not reuse.
				{Name: "dim-yz-walk", Weight: 45, Region: 1600 * addr.MiB, WriteFrac: 0.45,
					Make: func(rng *rng.Rand, region uint64) stream {
						// The walk transforms one 512 MB array section at a
						// time (an FFT phase), then moves to the next.
						return &driftStream{
							inner:  &stridedStream{size: 256 * addr.MiB, stride: 8 * addr.KiB, unit: 64},
							window: region, span: 256 * addr.MiB, period: 300000,
							slide: 8 * addr.MiB,
						}
					}},
				{Name: "dim-x-sweep", Weight: 25, Region: 1200 * addr.MiB, WriteFrac: 0.4,
					Make: func(rng *rng.Rand, region uint64) stream {
						return newSeqStreamAt(rng, region, 64)
					}},
				{Name: "phase-local", Weight: 30, Region: 800 * addr.MiB, WriteFrac: 0.4,
					Make: func(rng *rng.Rand, region uint64) stream {
						return &driftStream{
							inner:  newSeqStreamAt(rng, 384*addr.MiB, 64),
							window: region, span: 384 * addr.MiB, period: 400000,
							slide: 24 * addr.MiB,
						}
					}},
			},
		}
	},
	"MG": func() Spec {
		return Spec{
			Name:        "MG",
			Description: "NPB MG.C: multigrid V-cycle, coarse grids fit on-package",
			MeanGap:     55, Cores: 4,
			Components: []Component{
				{Name: "finest-grid", Weight: 17, Region: 2600 * addr.MiB, WriteFrac: 0.3,
					Make: func(rng *rng.Rand, region uint64) stream {
						return newSeqStreamAt(rng, region, 64)
					}},
				// Inter-grid restriction/prolongation: strided touches that
				// conflict in the 8-bank off-package DRAM.
				{Name: "grid-transfer", Weight: 8, Region: 160 * addr.MiB, WriteFrac: 0.4,
					Make: func(rng *rng.Rand, region uint64) stream {
						return &stridedStream{size: region, stride: 128 * addr.KiB, unit: 64}
					}},
				// Smoothing of the coarser grids plus residual/boundary
				// arrays: touched every V-cycle step, so the reuse is dense
				// and concentrated toward the coarse end of the hierarchy.
				{Name: "coarse-grids", Weight: 75, Region: 300 * addr.MiB, WriteFrac: 0.3,
					Make: func(rng *rng.Rand, region uint64) stream {
						return newZipfStream(rng, region, 16*addr.KiB, 1.15, false)
					}},
			},
		}
	},
	"pgbench": func() Spec {
		return Spec{
			Name:        "pgbench",
			Description: "TPC-B-like PostgreSQL: Zipf-skewed buffer pool, hot indexes",
			MeanGap:     45, Cores: 4,
			Components: []Component{
				{Name: "buffer-pool", Weight: 60, Region: 2200 * addr.MiB, WriteFrac: 0.35,
					Make: func(rng *rng.Rand, region uint64) stream {
						return newZipfStream(rng, region, 8192, 1.5, true)
					}},
				{Name: "indexes", Weight: 34, Region: 160 * addr.MiB, WriteFrac: 0.25,
					Make: func(rng *rng.Rand, region uint64) stream {
						return newZipfStream(rng, region, 4096, 1.3, true)
					}},
				{Name: "wal+vacuum", Weight: 6, Region: 300 * addr.MiB, WriteFrac: 0.8,
					Make: func(rng *rng.Rand, region uint64) stream {
						return newSeqStreamAt(rng, region, 64)
					}},
			},
		}
	},
	"indexer": func() Spec {
		return Spec{
			Name:        "indexer",
			Description: "Nutch/HDFS indexer: streaming documents into hot index structures",
			MeanGap:     50, Cores: 4,
			Components: []Component{
				{Name: "doc-stream", Weight: 30, Region: 1700 * addr.MiB, WriteFrac: 0.1,
					Make: func(rng *rng.Rand, region uint64) stream {
						return newSeqStreamAt(rng, region, 64)
					}},
				{Name: "index-heap", Weight: 60, Region: 500 * addr.MiB, WriteFrac: 0.45,
					Make: func(rng *rng.Rand, region uint64) stream {
						return newZipfStream(rng, region, 4096, 1.3, true)
					}},
				{Name: "merge", Weight: 10, Region: 256 * addr.MiB, WriteFrac: 0.5,
					Make: func(rng *rng.Rand, region uint64) stream {
						return &driftStream{
							inner:  newSeqStreamAt(rng, 64*addr.MiB, 64),
							window: region, span: 64 * addr.MiB, period: 250000,
						}
					}},
			},
		}
	},
	"SPECjbb": func() Spec {
		return Spec{
			Name:        "SPECjbb",
			Description: "4 x SPECjbb2005 JVMs, 16 warehouses each: churning object heaps",
			MeanGap:     35, Cores: 4,
			Components: []Component{
				{Name: "jvm0-heap", Weight: 20, Region: 720 * addr.MiB, WriteFrac: 0.4, Make: jbbHeap},
				{Name: "jvm1-heap", Weight: 20, Region: 720 * addr.MiB, WriteFrac: 0.4, Make: jbbHeap},
				{Name: "jvm2-heap", Weight: 20, Region: 720 * addr.MiB, WriteFrac: 0.4, Make: jbbHeap},
				{Name: "jvm3-heap", Weight: 20, Region: 720 * addr.MiB, WriteFrac: 0.4, Make: jbbHeap},
				{Name: "gc-scans", Weight: 20, Region: 256 * addr.MiB, WriteFrac: 0.2,
					Make: func(rng *rng.Rand, region uint64) stream {
						return newSeqStreamAt(rng, region, 64)
					}},
			},
		}
	},
	"SPEC2006": func() Spec {
		return Spec{
			Name:        "SPEC2006",
			Description: "mixture of gcc, mcf, perl, zeusmp traces, one per core",
			MeanGap:     40, Cores: 4,
			Components: []Component{
				// Each program keeps a compact, stable hot set; together they
				// total ~400 MB, comfortably inside the 512 MB on-package
				// region — which is why the mixture is the paper's best case.
				{Name: "gcc", Weight: 30, Region: 700 * addr.MiB, WriteFrac: 0.3,
					Make: func(rng *rng.Rand, region uint64) stream {
						return newZipfStream(rng, 96*addr.MiB, 4096, 1.7, false)
					}},
				{Name: "mcf", Weight: 15, Region: 900 * addr.MiB, WriteFrac: 0.2,
					Make: func(rng *rng.Rand, region uint64) stream {
						return newZipfStream(rng, 112*addr.MiB, 4096, 1.5, false)
					}},
				{Name: "perl", Weight: 35, Region: 500 * addr.MiB, WriteFrac: 0.35,
					Make: func(rng *rng.Rand, region uint64) stream {
						return newZipfStream(rng, 32*addr.MiB, 4096, 1.8, false)
					}},
				{Name: "zeusmp", Weight: 20, Region: 900 * addr.MiB, WriteFrac: 0.35,
					Make: func(rng *rng.Rand, region uint64) stream {
						return newSeqStreamAt(rng, 64*addr.MiB, 64)
					}},
			},
		}
	},
}

// jbbHeap builds one JVM's heap stream: Zipf-hot live objects whose
// placement churns (allocation/GC moves the hot set every few hundred
// thousand accesses).
func jbbHeap(rng *rng.Rand, region uint64) stream {
	return &driftStream{
		inner:  newZipfStream(rng, 280*addr.MiB, 4096, 1.2, true),
		window: region, span: 280 * addr.MiB, period: 200000,
	}
}
