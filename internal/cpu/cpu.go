// Package cpu provides the stall-accounting core model behind the
// Section II IPC comparison (Fig. 5). It is not a pipeline simulator: like
// the paper's own use of a fixed-latency memory model inside Simics, it
// charges each access the latency of the level that served it and derives
// aggregate IPC from base CPI plus memory stall cycles. Relative IPC across
// memory configurations — the quantity Fig. 5 plots — depends only on miss
// rates and the latency gaps, which this model carries exactly.
package cpu

import (
	"errors"
	"fmt"
	"io"

	"heteromem/internal/cache"
	"heteromem/internal/config"
	"heteromem/internal/trace"
)

// MemoryModel prices a main-memory access for one Fig. 5 configuration.
type MemoryModel interface {
	Name() string
	// Latency returns the cycles to serve the access at physical address a.
	Latency(a uint64, write bool) int64
}

// OffOnly is configuration (a): every access goes to off-package DIMMs.
type OffOnly struct{ Lat config.Latencies }

// Name implements MemoryModel.
func (OffOnly) Name() string { return "baseline" }

// Latency implements MemoryModel.
func (m OffOnly) Latency(uint64, bool) int64 { return m.Lat.OffPackageTotalEstimate() }

// L4Backed is configuration (b): a 1 GB on-package DRAM L4 in front of the
// off-package memory.
type L4Backed struct {
	Lat config.Latencies
	L4  *cache.DRAMCache
}

// NewL4Backed builds configuration (b) with the given L4 capacity.
func NewL4Backed(lat config.Latencies, size uint64) (*L4Backed, error) {
	l4, err := cache.NewDRAMCache(size, 512, lat)
	if err != nil {
		return nil, err
	}
	return &L4Backed{Lat: lat, L4: l4}, nil
}

// Name implements MemoryModel.
func (*L4Backed) Name() string { return "L4 cache 1GB" }

// Latency implements MemoryModel.
func (m *L4Backed) Latency(a uint64, write bool) int64 {
	hit, lat := m.L4.Access(a, write)
	if hit {
		return lat
	}
	return lat + m.Lat.OffPackageTotalEstimate()
}

// StaticSplit is configuration (c): the lowest OnBytes of physical memory
// map to on-package DRAM, the rest to DIMMs (no migration).
type StaticSplit struct {
	Lat     config.Latencies
	OnBytes uint64
}

// Name implements MemoryModel.
func (StaticSplit) Name() string { return "1GB on-chip memory" }

// Latency implements MemoryModel.
func (m StaticSplit) Latency(a uint64, _ bool) int64 {
	if a < m.OnBytes {
		return m.Lat.OnPackageTotalEstimate()
	}
	return m.Lat.OffPackageTotalEstimate()
}

// AllOn is configuration (d): the ideal, all memory on-package.
type AllOn struct{ Lat config.Latencies }

// Name implements MemoryModel.
func (AllOn) Name() string { return "all memory on-chip" }

// Latency implements MemoryModel.
func (m AllOn) Latency(uint64, bool) int64 { return m.Lat.OnPackageTotalEstimate() }

// Model holds the per-workload execution parameters.
type Model struct {
	BaseCPI        float64 // cycles per instruction with a perfect memory
	AccessPerInstr float64 // memory references per instruction
	Cores          int
	// MLPOverlap discounts memory stalls for overlap between outstanding
	// misses (1 = fully serialized). In-order quad-core with small windows:
	// modest overlap.
	MLPOverlap float64
}

// DefaultModel matches the Table II quad-core.
func DefaultModel() Model {
	return Model{BaseCPI: 1.0, AccessPerInstr: 0.3, Cores: 4, MLPOverlap: 0.8}
}

// EstimateIPC converts a mean memory-access latency (in cycles) into the
// model's aggregate IPC under the approximation that every trace record
// misses the SRAM hierarchy — the regime of the post-L3 memory traces the
// sim package consumes. Dividing the RunWarm accounting by the access
// count collapses it to
//
//	IPC = Cores / (BaseCPI + AccessPerInstr · MLPOverlap · meanLat)
//
// It prices recorded sim results (e.g. sweep manifest cells) into IPC
// without re-simulating: absolute values sit below Fig. 5's (no SRAM hits
// dilute the stalls), but the relative ordering across memory
// configurations is preserved.
func (m Model) EstimateIPC(meanLat float64) float64 {
	return float64(m.Cores) / (m.BaseCPI + m.AccessPerInstr*m.MLPOverlap*meanLat)
}

// Result is one configuration's outcome.
type Result struct {
	Config      string
	Accesses    uint64
	Instr       float64
	Cycles      float64
	IPC         float64 // total (all cores) instructions per cycle
	L3MissRate  float64
	MemAccesses uint64
}

// Run feeds n records from src through the hierarchy and prices L3 misses
// with mem, returning the configuration's aggregate IPC. The first `warmup`
// records exercise the caches and the memory model but are excluded from
// the cycle accounting, mirroring the paper's 1-billion-instruction warmup
// before full simulation (Table II).
func Run(src trace.Source, n uint64, levels []config.CacheLevel, lats config.Latencies, m Model, mem MemoryModel) (Result, error) {
	return RunWarm(src, n, 0, levels, lats, m, mem)
}

// RunWarm is Run with an explicit warmup length.
func RunWarm(src trace.Source, n, warmup uint64, levels []config.CacheLevel, lats config.Latencies, m Model, mem MemoryModel) (Result, error) {
	h, err := cache.NewHierarchy(m.Cores, levels)
	if err != nil {
		return Result{}, err
	}
	if m.MLPOverlap <= 0 || m.MLPOverlap > 1 {
		return Result{}, fmt.Errorf("cpu: MLP overlap %f out of (0,1]", m.MLPOverlap)
	}
	var stalls float64
	var count, seen, memAcc uint64
	latL1 := float64(levels[0].Latency)
	latL2 := float64(levels[1].Latency)
	latL3 := float64(levels[2].Latency)
	for seen < n+warmup {
		rec, err := src.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return Result{}, err
		}
		seen++
		lvl := h.Access(int(rec.CPU), rec.Addr, rec.Write)
		var memLat float64
		if lvl == cache.Memory {
			// Always drive the memory model so L4 contents and migration
			// state warm up alongside the SRAM hierarchy.
			memLat = float64(mem.Latency(rec.Addr, rec.Write))
		}
		if seen <= warmup {
			continue
		}
		count++
		switch lvl {
		case cache.L1:
			stalls += latL1
		case cache.L2:
			stalls += latL2
		case cache.L3:
			stalls += latL3
		case cache.Memory:
			memAcc++
			stalls += latL3 + memLat*m.MLPOverlap
		}
	}
	if count == 0 {
		return Result{}, fmt.Errorf("cpu: empty trace")
	}
	instr := float64(count) / m.AccessPerInstr
	cycles := instr*m.BaseCPI/float64(m.Cores) + stalls/float64(m.Cores)
	return Result{
		Config:      mem.Name(),
		Accesses:    count,
		Instr:       instr,
		Cycles:      cycles,
		IPC:         instr / cycles,
		L3MissRate:  h.L3Stats().MissRate(),
		MemAccesses: memAcc,
	}, nil
}
