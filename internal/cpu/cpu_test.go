package cpu

import (
	"testing"

	"heteromem/internal/addr"
	"heteromem/internal/config"
	"heteromem/internal/trace"
	"heteromem/internal/workload"
)

func testSource(t *testing.T, n uint64) trace.Source {
	t.Helper()
	gen, err := workload.NewProgram("EP.C", 3)
	if err != nil {
		t.Fatal(err)
	}
	return trace.NewLimit(gen, n)
}

func TestMemoryModelLatencies(t *testing.T) {
	lat := config.TableIILatencies()
	off := OffOnly{Lat: lat}
	on := AllOn{Lat: lat}
	if off.Latency(0, false) <= on.Latency(0, false) {
		t.Fatal("off-package must be slower than on-package")
	}
	st := StaticSplit{Lat: lat, OnBytes: 1 * addr.GiB}
	if st.Latency(0, false) != on.Latency(0, false) {
		t.Fatal("static split low address must cost on-package latency")
	}
	if st.Latency(2*addr.GiB, false) != off.Latency(0, false) {
		t.Fatal("static split high address must cost off-package latency")
	}
}

func TestL4BackedLatency(t *testing.T) {
	lat := config.TableIILatencies()
	l4, err := NewL4Backed(lat, 64*addr.MiB)
	if err != nil {
		t.Fatal(err)
	}
	first := l4.Latency(0, false)
	if first != lat.L4MissProbe()+lat.OffPackageTotalEstimate() {
		t.Fatalf("L4 miss latency = %d", first)
	}
	second := l4.Latency(0, false)
	if second != lat.L4HitLatency() {
		t.Fatalf("L4 hit latency = %d, want %d", second, lat.L4HitLatency())
	}
}

func TestRunProducesOrderedIPC(t *testing.T) {
	lat := config.TableIILatencies()
	levels := config.SRAMHierarchy()
	model := DefaultModel()
	const n = 200000

	runWith := func(mem MemoryModel) Result {
		res, err := Run(testSource(t, n), n, levels, lat, model, mem)
		if err != nil {
			t.Fatalf("%s: %v", mem.Name(), err)
		}
		return res
	}
	base := runWith(OffOnly{Lat: lat})
	ideal := runWith(AllOn{Lat: lat})
	if base.Accesses != n || ideal.Accesses != n {
		t.Fatalf("access counts: %d, %d", base.Accesses, ideal.Accesses)
	}
	// The ideal all-on-chip configuration can never be slower.
	if ideal.IPC < base.IPC {
		t.Fatalf("ideal IPC %.3f < baseline %.3f", ideal.IPC, base.IPC)
	}
	if base.IPC <= 0 || base.Cycles <= 0 {
		t.Fatalf("degenerate result: %+v", base)
	}
	if base.L3MissRate < 0 || base.L3MissRate > 1 {
		t.Fatalf("miss rate %f", base.L3MissRate)
	}
}

func TestRunValidation(t *testing.T) {
	lat := config.TableIILatencies()
	levels := config.SRAMHierarchy()
	m := DefaultModel()
	m.MLPOverlap = 0
	if _, err := Run(testSource(t, 10), 10, levels, lat, m, OffOnly{Lat: lat}); err == nil {
		t.Fatal("zero MLP overlap accepted")
	}
	if _, err := Run(trace.NewSliceSource(nil), 10, levels, lat, DefaultModel(), OffOnly{Lat: lat}); err == nil {
		t.Fatal("empty trace accepted")
	}
}

func TestMigratingModelBetweenStaticAndIdeal(t *testing.T) {
	lat := config.TableIILatencies()
	levels := config.SRAMHierarchy()
	model := DefaultModel()
	const n = 400000

	gen := func() trace.Source {
		g, err := workload.NewProgram("MG.C", 5)
		if err != nil {
			t.Fatal(err)
		}
		return trace.NewLimit(g, n)
	}
	static, err := Run(gen(), n, levels, lat, model, StaticSplit{Lat: lat, OnBytes: 1 * addr.GiB})
	if err != nil {
		t.Fatal(err)
	}
	mm, err := NewMigratingModel(lat, 1*addr.GiB, 8*addr.GiB, 4*addr.MiB, 10000)
	if err != nil {
		t.Fatal(err)
	}
	mig, err := Run(gen(), n, levels, lat, model, mm)
	if err != nil {
		t.Fatal(err)
	}
	ideal, err := Run(gen(), n, levels, lat, model, AllOn{Lat: lat})
	if err != nil {
		t.Fatal(err)
	}
	// MG.C's footprint exceeds 1 GB, so static mapping leaves hot data
	// off-package; migration must improve on it, and the ideal bounds it.
	if mig.IPC < static.IPC {
		t.Fatalf("migration IPC %.4f below static %.4f", mig.IPC, static.IPC)
	}
	if mig.IPC > ideal.IPC {
		t.Fatalf("migration IPC %.4f above the ideal %.4f", mig.IPC, ideal.IPC)
	}
	if mm.Migrator().Stats().SwapsCompleted == 0 {
		t.Fatal("migrating model never swapped")
	}
}
