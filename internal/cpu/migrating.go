package cpu

import (
	"heteromem/internal/config"
	"heteromem/internal/core"
)

// MigratingModel extends the Fig. 5 comparison with the system Section III
// builds: a heterogeneous memory whose on-chip controller migrates macro
// pages dynamically. The paper's Section II notes that "a heterogeneous
// main memory with dynamic mapping ... can further improve the performance
// and approach the ideal performance"; this model quantifies that claim at
// the Table II latency level.
//
// It drives a real Migrator (translation table, hotness trackers,
// hottest-coldest trigger) but executes swaps instantaneously and does not
// charge copy-bandwidth interference — an optimistic bound, clearly labeled
// as such, sitting between the static split and the all-on-chip ideal. The
// full-cost version is what internal/sim measures in Section IV.
type MigratingModel struct {
	lat config.Latencies
	mig *core.Migrator
}

// NewMigratingModel builds the model for onBytes of on-package memory over
// a totalBytes space, migrating at pageSize granularity.
func NewMigratingModel(lat config.Latencies, onBytes, totalBytes, pageSize uint64, swapInterval uint64) (*MigratingModel, error) {
	mig, err := core.NewMigrator(core.Options{
		Design:       core.DesignLive,
		Slots:        onBytes / pageSize,
		TotalPages:   totalBytes / pageSize,
		PageSize:     pageSize,
		SubBlockSize: 4 * 1024,
		SwapInterval: swapInterval,
	})
	if err != nil {
		return nil, err
	}
	return &MigratingModel{lat: lat, mig: mig}, nil
}

// Name implements MemoryModel.
func (*MigratingModel) Name() string { return "1GB dynamic migration (bound)" }

// Latency implements MemoryModel.
func (m *MigratingModel) Latency(a uint64, write bool) int64 {
	_, on := m.mig.Translate(a)
	m.mig.OnAccess(a, on)
	if subs := m.mig.EpochTick(); subs != nil {
		m.drain(subs)
	}
	// The translation-table lookup is charged on top of the region latency.
	if on {
		return m.lat.OnPackageTotalEstimate() + m.lat.TranslationLookup
	}
	return m.lat.OffPackageTotalEstimate() + m.lat.TranslationLookup
}

// drain completes an in-flight swap instantaneously (the optimistic bound).
func (m *MigratingModel) drain(subs []core.SubCopy) {
	for subs != nil {
		for _, sc := range subs {
			m.mig.SubDone(sc.SubIndex)
		}
		next, done, err := m.mig.StepDone()
		if err != nil || done {
			return
		}
		subs = next
	}
}

// Migrator exposes the underlying controller for inspection.
func (m *MigratingModel) Migrator() *core.Migrator { return m.mig }
