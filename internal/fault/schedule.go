package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Schedule is a parsed deterministic fault schedule: for each injection
// point, the set of operation ordinals (1-based) that must fault,
// represented as sorted disjoint inclusive intervals.
type Schedule struct {
	spans [numPoints][]span
}

type span struct{ lo, hi uint64 }

// ParseSchedule parses the schedule grammar:
//
//	schedule := entry (',' entry)*
//	entry    := point '@' spec
//	point    := "device" | "copy" | "bulk"
//	spec     := N          fault the Nth operation
//	          | N '-' M    fault operations N through M inclusive
//	          | N 'x' K    fault K consecutive operations starting at N
//
// Ordinals are 1-based and count every operation probed at that point,
// including retried ones — "copy@5x4" therefore faults a copy leg and its
// next three retries if nothing else intervenes. Whitespace around tokens
// is ignored; entries for the same point merge.
func ParseSchedule(s string) (Schedule, error) {
	var sched Schedule
	for _, raw := range strings.Split(s, ",") {
		entry := strings.TrimSpace(raw)
		if entry == "" {
			if strings.TrimSpace(s) == "" {
				return Schedule{}, fmt.Errorf("fault: empty schedule")
			}
			return Schedule{}, fmt.Errorf("fault: empty schedule entry in %q", s)
		}
		at := strings.IndexByte(entry, '@')
		if at < 0 {
			return Schedule{}, fmt.Errorf("fault: schedule entry %q missing '@'", entry)
		}
		var p Point
		switch name := strings.TrimSpace(entry[:at]); name {
		case "device":
			p = PointDevice
		case "copy":
			p = PointCopy
		case "bulk":
			p = PointBulk
		default:
			return Schedule{}, fmt.Errorf("fault: unknown injection point %q (want device, copy, or bulk)", name)
		}
		sp, err := parseSpan(strings.TrimSpace(entry[at+1:]))
		if err != nil {
			return Schedule{}, fmt.Errorf("fault: entry %q: %w", entry, err)
		}
		sched.spans[p] = append(sched.spans[p], sp)
	}
	for p := range sched.spans {
		sched.spans[p] = mergeSpans(sched.spans[p])
	}
	return sched, nil
}

// parseSpan parses N, N-M, or NxK into an inclusive interval.
func parseSpan(spec string) (span, error) {
	if spec == "" {
		return span{}, fmt.Errorf("empty ordinal spec")
	}
	if i := strings.IndexAny(spec, "-x"); i >= 0 {
		lo, err := parseOrdinal(spec[:i])
		if err != nil {
			return span{}, err
		}
		rest := strings.TrimSpace(spec[i+1:])
		if spec[i] == '-' {
			hi, err := parseOrdinal(rest)
			if err != nil {
				return span{}, err
			}
			if hi < lo {
				return span{}, fmt.Errorf("range %d-%d runs backwards", lo, hi)
			}
			return span{lo, hi}, nil
		}
		k, err := parseOrdinal(rest)
		if err != nil {
			return span{}, err
		}
		hi := lo + k - 1
		if hi < lo { // overflow
			return span{}, fmt.Errorf("count %d overflows from %d", k, lo)
		}
		return span{lo, hi}, nil
	}
	n, err := parseOrdinal(spec)
	if err != nil {
		return span{}, err
	}
	return span{n, n}, nil
}

// parseOrdinal parses a positive 1-based decimal ordinal.
func parseOrdinal(s string) (uint64, error) {
	s = strings.TrimSpace(s)
	n, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad ordinal %q: %w", s, err)
	}
	if n == 0 {
		return 0, fmt.Errorf("ordinals are 1-based, got 0")
	}
	return n, nil
}

// mergeSpans sorts and coalesces overlapping or adjacent intervals.
func mergeSpans(spans []span) []span {
	if len(spans) < 2 {
		return spans
	}
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].lo != spans[j].lo {
			return spans[i].lo < spans[j].lo
		}
		return spans[i].hi < spans[j].hi
	})
	out := spans[:1]
	for _, sp := range spans[1:] {
		last := &out[len(out)-1]
		if sp.lo <= last.hi+1 && last.hi+1 > last.hi { // adjacent/overlap, no overflow
			if sp.hi > last.hi {
				last.hi = sp.hi
			}
			continue
		}
		if sp.lo <= last.hi { // overlap when last.hi is the max ordinal
			continue
		}
		out = append(out, sp)
	}
	return out
}

// hits reports whether ordinal n at point p is scheduled to fault.
func (s Schedule) hits(p Point, n uint64) bool {
	spans := s.spans[p]
	i := sort.Search(len(spans), func(i int) bool { return spans[i].hi >= n })
	return i < len(spans) && spans[i].lo <= n
}

// Empty reports whether the schedule contains no entries.
func (s Schedule) Empty() bool {
	for _, sp := range s.spans {
		if len(sp) > 0 {
			return false
		}
	}
	return true
}

// String renders the schedule back into the grammar (normalized: sorted,
// merged, one entry per interval). Parsing the result yields an equal
// schedule.
func (s Schedule) String() string {
	var parts []string
	for p := Point(0); p < numPoints; p++ {
		for _, sp := range s.spans[p] {
			switch {
			case sp.lo == sp.hi:
				parts = append(parts, fmt.Sprintf("%s@%d", p, sp.lo))
			default:
				parts = append(parts, fmt.Sprintf("%s@%d-%d", p, sp.lo, sp.hi))
			}
		}
	}
	return strings.Join(parts, ",")
}
