package fault

import (
	"math"
	"testing"
)

func TestDisabledConfig(t *testing.T) {
	inj, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if inj != nil {
		t.Fatalf("zero config built an injector: %+v", inj)
	}
	// The nil injector is the off state: no faults, zero counts, defaults.
	if inj.Fault(PointDevice) || inj.Fault(PointCopy) || inj.Fault(PointBulk) {
		t.Fatal("nil injector injected a fault")
	}
	if inj.Faults() != 0 || inj.Probes(PointDevice) != 0 {
		t.Fatal("nil injector has non-zero counts")
	}
	if inj.RetryBudget() != DefaultRetryBudget || inj.RetireAfter() != DefaultRetireAfter {
		t.Fatal("nil injector does not report defaults")
	}
	if inj.DegradeBudget() != 0 {
		t.Fatal("nil injector has a degrade budget")
	}
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{DeviceRate: -0.1},
		{CopyRate: 1.5},
		{BulkRate: math.NaN()},
		{RetryBudget: -1, DeviceRate: 0.1},
		{RetryBackoff: -5, DeviceRate: 0.1},
		{RetireAfter: -2, DeviceRate: 0.1},
		{DegradeBudget: -3, DeviceRate: 0.1},
		{Schedule: "nope"},
		{Schedule: "device@0"},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v validated", c)
		}
		if _, err := New(c); err == nil {
			t.Errorf("config %+v built", c)
		}
	}
	good := Config{Seed: 7, DeviceRate: 1e-4, CopyRate: 0.5, BulkRate: 1, Schedule: "copy@3"}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := Config{Seed: 42, DeviceRate: 0.3, CopyRate: 0.1}
	run := func() []bool {
		inj, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var out []bool
		for i := 0; i < 2000; i++ {
			out = append(out, inj.Fault(PointDevice), inj.Fault(PointCopy))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs between identical runs", i)
		}
	}
}

func TestRateConverges(t *testing.T) {
	inj, err := New(Config{Seed: 9, DeviceRate: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	const n = 200000
	hits := 0
	for i := 0; i < n; i++ {
		if inj.Fault(PointDevice) {
			hits++
		}
	}
	got := float64(hits) / n
	if got < 0.24 || got > 0.26 {
		t.Fatalf("rate 0.25 produced %.4f over %d probes", got, n)
	}
	if inj.Faults() != uint64(hits) || inj.Probes(PointDevice) != n {
		t.Fatalf("counts: faults=%d probes=%d want %d/%d", inj.Faults(), inj.Probes(PointDevice), hits, n)
	}
}

func TestScheduleExactOrdinals(t *testing.T) {
	inj, err := New(Config{Schedule: "device@3, copy@2x2, bulk@5-6"})
	if err != nil {
		t.Fatal(err)
	}
	var devHits, copyHits, bulkHits []uint64
	for i := uint64(1); i <= 8; i++ {
		if inj.Fault(PointDevice) {
			devHits = append(devHits, i)
		}
		if inj.Fault(PointCopy) {
			copyHits = append(copyHits, i)
		}
		if inj.Fault(PointBulk) {
			bulkHits = append(bulkHits, i)
		}
	}
	want := func(name string, got, exp []uint64) {
		if len(got) != len(exp) {
			t.Fatalf("%s faulted at %v, want %v", name, got, exp)
		}
		for i := range exp {
			if got[i] != exp[i] {
				t.Fatalf("%s faulted at %v, want %v", name, got, exp)
			}
		}
	}
	want("device", devHits, []uint64{3})
	want("copy", copyHits, []uint64{2, 3})
	want("bulk", bulkHits, []uint64{5, 6})
	if inj.Faults() != 5 {
		t.Fatalf("faults=%d, want 5", inj.Faults())
	}
}

func TestBackoff(t *testing.T) {
	inj, err := New(Config{DeviceRate: 0.1, RetryBackoff: 100})
	if err != nil {
		t.Fatal(err)
	}
	if got := inj.Backoff(1); got != 100 {
		t.Fatalf("attempt 1 backoff %d, want 100", got)
	}
	if got := inj.Backoff(3); got != 400 {
		t.Fatalf("attempt 3 backoff %d, want 400", got)
	}
	// The doubling caps so huge attempt counts stay in the cycle domain.
	if got := inj.Backoff(1000); got != 100<<MaxBackoffShift {
		t.Fatalf("capped backoff %d, want %d", got, 100<<MaxBackoffShift)
	}
	var nilInj *Injector
	if got := nilInj.Backoff(2); got != DefaultRetryBackoff*2 {
		t.Fatalf("nil injector backoff %d", got)
	}
}

func TestReportAccounting(t *testing.T) {
	var r Report
	r.Account(PointDevice, Retried)
	r.Account(PointCopy, Retried)
	r.Account(PointCopy, RolledBack)
	r.Account(PointDevice, Retired)
	r.Account(PointBulk, Degraded)
	if !r.Balanced(5) {
		t.Fatalf("ledger unbalanced: %+v", r)
	}
	if r.Balanced(4) {
		t.Fatal("ledger balanced against wrong injected count")
	}
	if r.DeviceFaults != 2 || r.CopyFaults != 2 || r.BulkFaults != 1 {
		t.Fatalf("per-point counts wrong: %+v", r)
	}
	if r.Retried != 2 || r.RolledBack != 1 || r.Retired != 1 || r.Degraded != 1 {
		t.Fatalf("per-disposition counts wrong: %+v", r)
	}
}

func TestDispositionAndPointNames(t *testing.T) {
	if PointDevice.String() != "device" || PointCopy.String() != "copy" || PointBulk.String() != "bulk" {
		t.Fatal("point names drifted from the schedule grammar")
	}
	for _, d := range []Disposition{Retried, RolledBack, Retired, Degraded} {
		if d.String() == "" {
			t.Fatalf("disposition %d has no name", d)
		}
	}
}
