package fault

import "testing"

// FuzzParseSchedule drives the fault-schedule grammar with arbitrary input.
// The parser must never panic; on accepted input the normalized rendering
// must re-parse to the same normalized form (the parse/render fixed point),
// and interval queries must be consistent with interval bounds.
func FuzzParseSchedule(f *testing.F) {
	for _, seed := range []string{
		"device@1",
		"copy@3",
		"bulk@10",
		"device@1-5",
		"copy@2x3",
		"device@3, copy@100x2, bulk@1-4",
		"device@18446744073709551615",
		"copy@1-3,copy@3-5,copy@6",
		" device@ 7 x 2 ",
		"bulk@2,device@2,copy@2",
		"",
		"@",
		"device@0",
		"device@5-1",
		"pizza@1",
		"device@1e9",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		sched, err := ParseSchedule(s)
		if err != nil {
			return
		}
		rendered := sched.String()
		again, err := ParseSchedule(rendered)
		if err != nil && rendered != "" {
			t.Fatalf("normalized form %q (from %q) does not re-parse: %v", rendered, s, err)
		}
		if err == nil && again.String() != rendered {
			t.Fatalf("normalization not a fixed point: %q -> %q -> %q", s, rendered, again.String())
		}
		// Spot-check interval coherence: every stored span must answer hits
		// at both ends and miss just outside.
		for p := Point(0); p < numPoints; p++ {
			for _, sp := range sched.spans[p] {
				if sp.lo == 0 || sp.hi < sp.lo {
					t.Fatalf("invalid span %+v for %v from %q", sp, p, s)
				}
				if !sched.hits(p, sp.lo) || !sched.hits(p, sp.hi) {
					t.Fatalf("span %+v for %v does not hit its own bounds (%q)", sp, p, s)
				}
				if sp.lo > 1 && sched.hits(p, sp.lo-1) {
					// Only a failure if the previous span doesn't cover it.
					covered := false
					for _, other := range sched.spans[p] {
						if other != sp && other.lo <= sp.lo-1 && sp.lo-1 <= other.hi {
							covered = true
						}
					}
					if !covered {
						t.Fatalf("span %+v for %v hit below lo (%q)", sp, p, s)
					}
				}
			}
		}
	})
}
