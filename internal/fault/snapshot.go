package fault

import "heteromem/internal/snap"

// SnapshotTo writes the injector's mutable state — the PRNG state word,
// the per-point probe ordinals, and the fault count — into the current
// snapshot section. The configuration, rates, and parsed schedule are
// construction inputs and are rebuilt from Config on restore.
func (i *Injector) SnapshotTo(e *snap.Encoder) {
	e.U64(i.prng.State())
	for p := Point(0); p < numPoints; p++ {
		e.U64(i.probes[p])
	}
	e.U64(i.faults)
}

// RestoreFrom reads the state written by SnapshotTo into an injector
// freshly built from the same Config.
func (i *Injector) RestoreFrom(d *snap.Decoder) error {
	i.prng.SetState(d.U64())
	for p := Point(0); p < numPoints; p++ {
		i.probes[p] = d.U64()
	}
	i.faults = d.U64()
	return d.Err()
}

// SnapshotTo writes the fault ledger.
func (r *Report) SnapshotTo(e *snap.Encoder) {
	e.U64(r.Injected)
	e.U64(r.DeviceFaults)
	e.U64(r.CopyFaults)
	e.U64(r.BulkFaults)
	e.U64(r.Retried)
	e.U64(r.RolledBack)
	e.U64(r.Retired)
	e.U64(r.Degraded)
	e.U64(r.SwapsRolledBack)
	e.U64(r.SlotsRetired)
	e.Bool(r.DegradedMode)
}

// RestoreFrom reads the fault ledger written by SnapshotTo.
func (r *Report) RestoreFrom(d *snap.Decoder) error {
	r.Injected = d.U64()
	r.DeviceFaults = d.U64()
	r.CopyFaults = d.U64()
	r.BulkFaults = d.U64()
	r.Retried = d.U64()
	r.RolledBack = d.U64()
	r.Retired = d.U64()
	r.Degraded = d.U64()
	r.SwapsRolledBack = d.U64()
	r.SlotsRetired = d.U64()
	r.DegradedMode = d.Bool()
	return d.Err()
}
