// Package fault is a deterministic, seedable fault injector for the
// migration pipeline. It decides — by probability, by an explicit schedule,
// or both — whether a given operation fails: a DRAM device access
// (PointDevice), one leg of a swap sub-block copy (PointCopy), or the
// completion check of a whole bulk-copy step (PointBulk).
//
// The injector only decides; the controller owns the responses (bounded
// retry with cycle-domain backoff, swap abort-and-rollback, on-package slot
// retirement, and full migration degradation) and the accounting that pairs
// every injected fault with exactly one response. Determinism matters: the
// same Config over the same access stream injects the same faults, so a
// failing soak run is replayable from its seed and schedule alone.
package fault

import (
	"fmt"

	"heteromem/internal/backoff"
	"heteromem/internal/rng"
)

// Point identifies an injection site in the pipeline.
type Point uint8

// The three injection sites.
const (
	// PointDevice is one serviced DRAM burst for a program access: the
	// transfer occupied the bus but the data failed its check.
	PointDevice Point = iota
	// PointCopy is one background sub-block copy leg (read or write side).
	PointCopy
	// PointBulk is the completion check of a whole swap step's bulk copy
	// (an end-to-end checksum over the step, failing after all legs landed).
	PointBulk

	numPoints
)

// String names the point the way the schedule grammar spells it.
func (p Point) String() string {
	switch p {
	case PointDevice:
		return "device"
	case PointCopy:
		return "copy"
	case PointBulk:
		return "bulk"
	default:
		return fmt.Sprintf("Point(%d)", uint8(p))
	}
}

// Config describes a fault-injection campaign. The zero value disables
// injection entirely: every pipeline hook stays nil and simulation results
// are bit-identical to a build without the injector.
type Config struct {
	// Seed drives the probability draws. A zero seed with non-zero rates is
	// normalized to 1 so "rates without a seed" still injects.
	Seed uint64

	// DeviceRate, CopyRate, and BulkRate are per-operation fault
	// probabilities in [0, 1] for the three points.
	DeviceRate float64
	CopyRate   float64
	BulkRate   float64

	// Schedule injects faults at exact operation ordinals, independent of
	// the rates (either may fire a probe). See ParseSchedule for the
	// grammar, e.g. "copy@3, device@100x2, bulk@1-4".
	Schedule string

	// RetryBudget bounds fault-triggered re-attempts of one copy leg or one
	// step completion before the controller aborts and rolls the swap back.
	// Zero selects DefaultRetryBudget.
	RetryBudget int

	// RetryBackoff is the base backoff in cycles before a retry; attempt k
	// waits RetryBackoff << (k-1), capped at MaxBackoffShift doublings.
	// Zero selects DefaultRetryBackoff.
	RetryBackoff int64

	// RetireAfter is how many faults the same on-package macro-page frame
	// may accumulate before the controller retires its slot. Zero selects
	// DefaultRetireAfter.
	RetireAfter int

	// DegradeBudget is the total on-package fault count at which the
	// controller disables migration entirely and falls back to a static
	// mapping. Zero means never degrade.
	DegradeBudget int
}

// Defaults for the zero-valued knobs of Config.
const (
	DefaultRetryBudget  = 3
	DefaultRetryBackoff = 256
	DefaultRetireAfter  = 8
	MaxBackoffShift     = 8
)

// Enabled reports whether the config injects anything at all.
func (c Config) Enabled() bool {
	return c.DeviceRate > 0 || c.CopyRate > 0 || c.BulkRate > 0 || c.Schedule != ""
}

// Validate rejects malformed configurations.
func (c Config) Validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{{"DeviceRate", c.DeviceRate}, {"CopyRate", c.CopyRate}, {"BulkRate", c.BulkRate}} {
		if r.v < 0 || r.v > 1 || r.v != r.v {
			return fmt.Errorf("fault: %s %v outside [0, 1]", r.name, r.v)
		}
	}
	if c.RetryBudget < 0 {
		return fmt.Errorf("fault: negative retry budget %d", c.RetryBudget)
	}
	if c.RetryBackoff < 0 {
		return fmt.Errorf("fault: negative retry backoff %d", c.RetryBackoff)
	}
	if c.RetireAfter < 0 {
		return fmt.Errorf("fault: negative retire-after %d", c.RetireAfter)
	}
	if c.DegradeBudget < 0 {
		return fmt.Errorf("fault: negative degrade budget %d", c.DegradeBudget)
	}
	if c.Schedule != "" {
		if _, err := ParseSchedule(c.Schedule); err != nil {
			return err
		}
	}
	return nil
}

// retryBudget returns the effective retry budget.
func (c Config) retryBudget() int {
	if c.RetryBudget > 0 {
		return c.RetryBudget
	}
	return DefaultRetryBudget
}

// retireAfter returns the effective per-frame retirement threshold.
func (c Config) retireAfter() int {
	if c.RetireAfter > 0 {
		return c.RetireAfter
	}
	return DefaultRetireAfter
}

// retryBackoff returns the effective base backoff.
func (c Config) retryBackoff() int64 {
	if c.RetryBackoff > 0 {
		return c.RetryBackoff
	}
	return DefaultRetryBackoff
}

// Injector makes the per-operation fault decisions. All methods are safe on
// a nil receiver (no fault, zero counts), so pipeline components hold the
// injector unconditionally and a disabled run costs one pointer test per
// probe site.
type Injector struct {
	cfg   Config
	prng  rng.Rand
	rates [numPoints]float64
	sched Schedule

	probes [numPoints]uint64
	faults uint64
}

// New validates cfg and builds an Injector. A disabled config (zero value)
// returns (nil, nil): the nil injector is the "off" state.
func New(cfg Config) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !cfg.Enabled() {
		return nil, nil
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	inj := &Injector{cfg: cfg}
	inj.prng.SetState(seed)
	inj.rates[PointDevice] = cfg.DeviceRate
	inj.rates[PointCopy] = cfg.CopyRate
	inj.rates[PointBulk] = cfg.BulkRate
	if cfg.Schedule != "" {
		s, err := ParseSchedule(cfg.Schedule)
		if err != nil {
			return nil, err
		}
		inj.sched = s
	}
	return inj, nil
}

// Fault probes injection point p for its next operation and reports whether
// that operation faults. Every call advances the point's operation ordinal,
// so schedules count real operations (including retried ones).
func (i *Injector) Fault(p Point) bool {
	if i == nil || p >= numPoints {
		return false
	}
	i.probes[p]++
	hit := i.sched.hits(p, i.probes[p])
	if r := i.rates[p]; r > 0 && i.next01() < r {
		hit = true
	}
	if hit {
		i.faults++
	}
	return hit
}

// Faults returns the total number of faults injected so far; the
// controller's response counters must sum to exactly this.
func (i *Injector) Faults() uint64 {
	if i == nil {
		return 0
	}
	return i.faults
}

// Probes returns how many operations have been probed at point p.
func (i *Injector) Probes(p Point) uint64 {
	if i == nil || p >= numPoints {
		return 0
	}
	return i.probes[p]
}

// RetryBudget returns the effective bounded-retry budget.
func (i *Injector) RetryBudget() int {
	if i == nil {
		return DefaultRetryBudget
	}
	return i.cfg.retryBudget()
}

// RetireAfter returns the effective per-frame retirement threshold.
func (i *Injector) RetireAfter() int {
	if i == nil {
		return DefaultRetireAfter
	}
	return i.cfg.retireAfter()
}

// DegradeBudget returns the on-package fault budget (0 = never degrade).
func (i *Injector) DegradeBudget() int {
	if i == nil {
		return 0
	}
	return i.cfg.DegradeBudget
}

// Backoff returns the cycle-domain backoff before retry attempt `attempt`
// (1-based): base << (attempt-1), with the doubling capped so a long retry
// chain cannot overflow the cycle domain.
func (i *Injector) Backoff(attempt int) int64 {
	return i.BackoffPolicy().Delay(attempt)
}

// BackoffPolicy returns the injector's retry-delay policy as the shared
// backoff.Exponential. Nil-safe: a nil injector yields the defaults, so the
// memory controller can hold the policy unconditionally.
func (i *Injector) BackoffPolicy() backoff.Exponential {
	base := int64(DefaultRetryBackoff)
	if i != nil {
		base = i.cfg.retryBackoff()
	}
	return backoff.Exponential{Base: base, MaxShift: MaxBackoffShift}
}

// next01 draws the next deterministic uniform in [0, 1) from the shared
// splitmix64 generator (bit-identical to the formula this package embedded
// before internal/rng existed, so seeded campaigns are unchanged).
func (i *Injector) next01() float64 {
	return i.prng.Float64()
}

// Disposition is the controller's response to one injected fault. Every
// fault gets exactly one disposition, so the four counters of Report sum to
// the injector's fault count.
type Disposition uint8

// The four graceful-degradation responses.
const (
	Retried    Disposition = iota // operation re-attempted within budget
	RolledBack                    // swap aborted, table rolled back
	Retired                       // on-package slot retired off-package
	Degraded                      // absorbed in (or by entering) degraded mode
)

// String names the disposition.
func (d Disposition) String() string {
	switch d {
	case Retried:
		return "retried"
	case RolledBack:
		return "rolled-back"
	case Retired:
		return "retired"
	case Degraded:
		return "degraded"
	default:
		return fmt.Sprintf("Disposition(%d)", uint8(d))
	}
}

// Report is the fault ledger of one run: what was injected where, and how
// the controller answered each fault.
type Report struct {
	// Injected is the total fault count; Retried + RolledBack + Retired +
	// Degraded always equals it.
	Injected uint64

	// Per-point injection counts (these also sum to Injected).
	DeviceFaults uint64
	CopyFaults   uint64
	BulkFaults   uint64

	// Per-disposition counts.
	Retried    uint64
	RolledBack uint64
	Retired    uint64
	Degraded   uint64

	// Response-event counts (not part of the fault ledger: one rollback
	// answers one fault but undoes many copies).
	SwapsRolledBack uint64 // in-flight swaps aborted and rolled back
	SlotsRetired    uint64 // on-package slots permanently retired
	DegradedMode    bool   // migration disabled by the fault budget
}

// Account records one fault at point p with disposition d.
func (r *Report) Account(p Point, d Disposition) {
	r.Injected++
	switch p {
	case PointDevice:
		r.DeviceFaults++
	case PointCopy:
		r.CopyFaults++
	case PointBulk:
		r.BulkFaults++
	}
	switch d {
	case Retried:
		r.Retried++
	case RolledBack:
		r.RolledBack++
	case Retired:
		r.Retired++
	case Degraded:
		r.Degraded++
	}
}

// Merge folds another channel's ledger into r: counts sum, and the machine
// is in degraded mode if any channel is.
func (r *Report) Merge(other *Report) {
	if other == nil {
		return
	}
	r.Injected += other.Injected
	r.DeviceFaults += other.DeviceFaults
	r.CopyFaults += other.CopyFaults
	r.BulkFaults += other.BulkFaults
	r.Retried += other.Retried
	r.RolledBack += other.RolledBack
	r.Retired += other.Retired
	r.Degraded += other.Degraded
	r.SwapsRolledBack += other.SwapsRolledBack
	r.SlotsRetired += other.SlotsRetired
	r.DegradedMode = r.DegradedMode || other.DegradedMode
}

// Balanced reports whether the ledger is internally consistent and matches
// the injector's fault count.
func (r *Report) Balanced(injected uint64) bool {
	sum := r.Retried + r.RolledBack + r.Retired + r.Degraded
	return r.Injected == injected && sum == r.Injected &&
		r.DeviceFaults+r.CopyFaults+r.BulkFaults == r.Injected
}
