package fault

import (
	"strings"
	"testing"
)

func TestParseScheduleForms(t *testing.T) {
	s, err := ParseSchedule(" device@3 ,copy@ 2 x 3, bulk@10-12, device@5-5 ")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		p    Point
		n    uint64
		want bool
	}{
		{PointDevice, 2, false}, {PointDevice, 3, true}, {PointDevice, 4, false},
		{PointDevice, 5, true}, {PointDevice, 6, false},
		{PointCopy, 1, false}, {PointCopy, 2, true}, {PointCopy, 3, true},
		{PointCopy, 4, true}, {PointCopy, 5, false},
		{PointBulk, 9, false}, {PointBulk, 10, true}, {PointBulk, 12, true}, {PointBulk, 13, false},
	}
	for _, c := range cases {
		if got := s.hits(c.p, c.n); got != c.want {
			t.Errorf("hits(%v, %d) = %v, want %v", c.p, c.n, got, c.want)
		}
	}
}

func TestParseScheduleMerges(t *testing.T) {
	s, err := ParseSchedule("copy@1-3,copy@3-5,copy@6,copy@10")
	if err != nil {
		t.Fatal(err)
	}
	// 1-3, 3-5, and the adjacent 6 coalesce into 1-6.
	if got := s.String(); got != "copy@1-6,copy@10" {
		t.Fatalf("normalized form %q", got)
	}
}

func TestParseScheduleErrors(t *testing.T) {
	bad := []string{
		"", "  ", ",", "device", "device@", "@3", "pizza@3",
		"device@0", "device@x", "device@3-1", "device@-1",
		"device@1x0", "device@1-", "device@1x", "device@18446744073709551615x2",
		"device@3;copy@4", "device@3,,copy@4", "device@1e3",
	}
	for _, s := range bad {
		if _, err := ParseSchedule(s); err == nil {
			t.Errorf("ParseSchedule(%q) accepted", s)
		}
	}
}

func TestScheduleRoundTrip(t *testing.T) {
	for _, src := range []string{
		"device@1", "copy@2-7,bulk@1", "device@3x4,device@100",
		"bulk@1,copy@1,device@1",
	} {
		s, err := ParseSchedule(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		rendered := s.String()
		s2, err := ParseSchedule(rendered)
		if err != nil {
			t.Fatalf("re-parse %q (from %q): %v", rendered, src, err)
		}
		if s2.String() != rendered {
			t.Fatalf("round trip drifted: %q -> %q -> %q", src, rendered, s2.String())
		}
	}
}

func TestScheduleEmpty(t *testing.T) {
	var s Schedule
	if !s.Empty() {
		t.Fatal("zero schedule not empty")
	}
	if s.hits(PointCopy, 1) {
		t.Fatal("empty schedule hit")
	}
	parsed, err := ParseSchedule("bulk@2")
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Empty() {
		t.Fatal("parsed schedule reported empty")
	}
}

func TestScheduleMaxOrdinal(t *testing.T) {
	// The top of the ordinal space must not overflow interval merging.
	s, err := ParseSchedule("device@18446744073709551615,device@18446744073709551614")
	if err != nil {
		t.Fatal(err)
	}
	if !s.hits(PointDevice, 18446744073709551615) || !s.hits(PointDevice, 18446744073709551614) {
		t.Fatal("max ordinals missed")
	}
	if s.hits(PointDevice, 18446744073709551613) {
		t.Fatal("unexpected hit below the scheduled pair")
	}
	if !strings.Contains(s.String(), "device@18446744073709551614-18446744073709551615") {
		t.Fatalf("adjacent max ordinals did not merge: %q", s.String())
	}
}
