package power

import "heteromem/internal/snap"

// SnapshotTo writes the four traffic accumulators; the energy constants
// are construction inputs.
func (m *Meter) SnapshotTo(e *snap.Encoder) {
	e.F64(m.accessBitsOn)
	e.F64(m.accessBitsOff)
	e.F64(m.copyBitsOn)
	e.F64(m.copyBitsOff)
}

// RestoreFrom reads the state written by SnapshotTo.
func (m *Meter) RestoreFrom(d *snap.Decoder) error {
	m.accessBitsOn = d.F64()
	m.accessBitsOff = d.F64()
	m.copyBitsOn = d.F64()
	m.copyBitsOff = d.F64()
	return d.Err()
}
