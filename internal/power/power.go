// Package power implements the Section IV-D energy accounting: 5 pJ/bit
// for DRAM core access in both regions, 1.66 pJ/bit for the on-package
// interconnect and 13 pJ/bit for the off-package interconnect. Migration
// traffic is charged like any other traffic, which is what produces the
// paper's power overhead for frequent swapping (Fig. 16).
package power

import "heteromem/internal/config"

// Meter accumulates traffic and converts it to energy.
type Meter struct {
	p config.Power

	accessBitsOn  float64 // program traffic served on-package
	accessBitsOff float64 // program traffic served off-package
	copyBitsOn    float64 // migration traffic over the on-package interconnect
	copyBitsOff   float64 // migration traffic over the off-package interconnect
}

// NewMeter builds a meter with the given constants.
func NewMeter(p config.Power) *Meter { return &Meter{p: p} }

// Access records one program access of `bytes` served on- or off-package.
func (m *Meter) Access(onPackage bool, bytes uint64) {
	bits := float64(bytes * 8)
	if onPackage {
		m.accessBitsOn += bits
	} else {
		m.accessBitsOff += bits
	}
}

// Copy records one migration sub-block transfer: a read on the source
// region and a write on the destination region. Exchanges move data both
// ways and double the traffic.
func (m *Meter) Copy(srcOn, dstOn bool, bytes uint64, exchange bool) {
	bits := float64(bytes * 8)
	if exchange {
		bits *= 2
	}
	if srcOn {
		m.copyBitsOn += bits
	} else {
		m.copyBitsOff += bits
	}
	if dstOn {
		m.copyBitsOn += bits
	} else {
		m.copyBitsOff += bits
	}
}

// EnergyPJ returns the total energy in picojoules: every bit pays the DRAM
// core cost once per touch plus its region's interconnect cost.
func (m *Meter) EnergyPJ() float64 {
	core := (m.accessBitsOn + m.accessBitsOff + m.copyBitsOn + m.copyBitsOff) * m.p.CorePJPerBit
	wire := (m.accessBitsOn+m.copyBitsOn)*m.p.OnWirePJPerBit + (m.accessBitsOff+m.copyBitsOff)*m.p.OffWirePJPerBit
	return core + wire
}

// BaselineOffOnlyPJ returns the energy the same program traffic would have
// cost in an off-package-DRAM-only system (no migration traffic, every
// access over the off-package interconnect) — the Fig. 16 denominator.
func (m *Meter) BaselineOffOnlyPJ() float64 {
	bits := m.accessBitsOn + m.accessBitsOff
	return bits * (m.p.CorePJPerBit + m.p.OffWirePJPerBit)
}

// Normalized returns EnergyPJ / BaselineOffOnlyPJ (0 with no traffic).
func (m *Meter) Normalized() float64 {
	base := m.BaselineOffOnlyPJ()
	if base == 0 {
		return 0
	}
	return m.EnergyPJ() / base
}

// Merge folds another meter's traffic into m, so per-channel meters of a
// sharded run can be combined into one machine-wide energy account.
func (m *Meter) Merge(other *Meter) {
	if other == nil {
		return
	}
	m.accessBitsOn += other.accessBitsOn
	m.accessBitsOff += other.accessBitsOff
	m.copyBitsOn += other.copyBitsOn
	m.copyBitsOff += other.copyBitsOff
}

// Reset clears all accumulated traffic.
func (m *Meter) Reset() { m.accessBitsOn, m.accessBitsOff, m.copyBitsOn, m.copyBitsOff = 0, 0, 0, 0 }

// TrafficBits returns the accumulated traffic split:
// (program on, program off, migration on, migration off), in bits.
func (m *Meter) TrafficBits() (accessOn, accessOff, copyOn, copyOff float64) {
	return m.accessBitsOn, m.accessBitsOff, m.copyBitsOn, m.copyBitsOff
}
