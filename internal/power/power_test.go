package power

import (
	"math"
	"testing"

	"heteromem/internal/config"
)

func TestAccessEnergy(t *testing.T) {
	m := NewMeter(config.PaperPower())
	m.Access(false, 64) // off-package: 512 bits x (5 + 13) pJ
	want := 512.0 * 18
	if got := m.EnergyPJ(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("off access energy = %f, want %f", got, want)
	}
	m2 := NewMeter(config.PaperPower())
	m2.Access(true, 64) // on-package: 512 x (5 + 1.66)
	if got, want := m2.EnergyPJ(), 512.0*6.66; math.Abs(got-want) > 1e-6 {
		t.Fatalf("on access energy = %f, want %f", got, want)
	}
}

func TestOnPackageCheaperThanBaseline(t *testing.T) {
	m := NewMeter(config.PaperPower())
	for i := 0; i < 100; i++ {
		m.Access(true, 64)
	}
	if m.Normalized() >= 1 {
		t.Fatalf("all-on-package normalized power %f, want < 1", m.Normalized())
	}
}

func TestCopyChargedBothSides(t *testing.T) {
	m := NewMeter(config.PaperPower())
	m.Copy(false, true, 4096, false) // off -> on
	bits := 4096.0 * 8
	want := bits*(5+13) + bits*(5+1.66)
	if got := m.EnergyPJ(); math.Abs(got-want) > 1e-6 {
		t.Fatalf("copy energy = %f, want %f", got, want)
	}
}

func TestExchangeDoublesTraffic(t *testing.T) {
	a := NewMeter(config.PaperPower())
	a.Copy(false, true, 4096, false)
	b := NewMeter(config.PaperPower())
	b.Copy(false, true, 4096, true)
	if math.Abs(b.EnergyPJ()-2*a.EnergyPJ()) > 1e-6 {
		t.Fatalf("exchange energy %f != 2x copy %f", b.EnergyPJ(), a.EnergyPJ())
	}
}

func TestMigrationRaisesPowerAtHighFrequency(t *testing.T) {
	// The Fig. 16 effect: heavy copy traffic makes the hybrid system burn
	// more than the off-only baseline even though accesses are cheaper.
	m := NewMeter(config.PaperPower())
	for i := 0; i < 1000; i++ {
		m.Access(true, 64)
	}
	for i := 0; i < 100; i++ {
		m.Copy(false, true, 4096, false) // 100 x 4KB copies vs 64KB accesses
	}
	if m.Normalized() < 2 {
		t.Fatalf("normalized power %f, want >= 2 under copy-dominated traffic", m.Normalized())
	}
}

func TestNormalizedZeroWithoutTraffic(t *testing.T) {
	m := NewMeter(config.PaperPower())
	if m.Normalized() != 0 {
		t.Fatal("empty meter should normalize to 0")
	}
}

func TestReset(t *testing.T) {
	m := NewMeter(config.PaperPower())
	m.Access(true, 64)
	m.Copy(true, false, 64, false)
	m.Reset()
	if m.EnergyPJ() != 0 {
		t.Fatal("reset did not clear traffic")
	}
	aOn, aOff, cOn, cOff := m.TrafficBits()
	if aOn+aOff+cOn+cOff != 0 {
		t.Fatal("traffic bits survive reset")
	}
}
