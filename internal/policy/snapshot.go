package policy

import "heteromem/internal/snap"

// Snapshot helpers for the policy trackers. Shapes (slot counts, level
// counts, capacities) are construction inputs; restore targets must be
// built with the same shape, and the snapshot's dimensions are validated
// against it.

func snapshotBools(e *snap.Encoder, bits []bool) {
	e.U32(uint32(len(bits)))
	for _, b := range bits {
		e.Bool(b)
	}
}

func restoreBools(d *snap.Decoder, bits []bool, what string) {
	n := int(d.U32())
	if d.Err() != nil {
		return
	}
	if n != len(bits) {
		d.Invalid("%s has %d slots, snapshot has %d", what, len(bits), n)
		return
	}
	for i := range bits {
		bits[i] = d.Bool()
	}
}

// snapshotBits writes a packed bitmap with the same framing as
// snapshotBools, so the on-disk format is unchanged by the bitmap layout.
func snapshotBits(e *snap.Encoder, w []uint64, n int) {
	e.U32(uint32(n))
	for i := 0; i < n; i++ {
		e.Bool(bitGet(w, i))
	}
}

// restoreBits reads the framing snapshotBits writes into a packed bitmap.
func restoreBits(d *snap.Decoder, w []uint64, n int, what string) {
	got := int(d.U32())
	if d.Err() != nil {
		return
	}
	if got != n {
		d.Invalid("%s has %d slots, snapshot has %d", what, n, got)
		return
	}
	for i := 0; i < n; i++ {
		bitSet(w, i, d.Bool())
	}
}

// SnapshotTo writes the reference bits, pin bits, and clock hand.
func (c *ClockPLRU) SnapshotTo(e *snap.Encoder) {
	snapshotBits(e, c.ref, c.n)
	snapshotBits(e, c.pinned, c.n)
	e.U32(uint32(c.hand))
}

// RestoreFrom reads the state written by SnapshotTo.
func (c *ClockPLRU) RestoreFrom(d *snap.Decoder) error {
	restoreBits(d, c.ref, c.n, "clock")
	restoreBits(d, c.pinned, c.n, "clock")
	c.hand = int(d.U32())
	if d.Err() == nil && c.hand >= c.n {
		d.Invalid("clock hand %d out of range", c.hand)
	}
	return d.Err()
}

// SnapshotTo writes the PRNG state and pin bits.
func (r *RandomVictim) SnapshotTo(e *snap.Encoder) {
	e.U64(r.prng.State())
	snapshotBools(e, r.pinned)
}

// RestoreFrom reads the state written by SnapshotTo.
func (r *RandomVictim) RestoreFrom(d *snap.Decoder) error {
	r.prng.SetState(d.U64())
	restoreBools(d, r.pinned, "random victim")
	return d.Err()
}

// SnapshotTo writes the rotation hand and pin bits.
func (f *FIFOVictim) SnapshotTo(e *snap.Encoder) {
	e.U32(uint32(f.hand))
	snapshotBools(e, f.pinned)
}

// RestoreFrom reads the state written by SnapshotTo.
func (f *FIFOVictim) RestoreFrom(d *snap.Decoder) error {
	f.hand = int(d.U32())
	restoreBools(d, f.pinned, "fifo victim")
	if d.Err() == nil && f.hand >= len(f.pinned) {
		d.Invalid("fifo hand %d out of range", f.hand)
	}
	return d.Err()
}

// SnapshotTo writes every tracked entry, level by level in LRU-to-MRU
// order, so the lists and the index rebuild exactly.
func (m *MultiQueue) SnapshotTo(e *snap.Encoder) {
	e.U32(uint32(len(m.head)))
	for l := range m.head {
		e.U32(uint32(m.sizes[l]))
		for i := m.head[l]; i != mqNil; i = m.nodes[i].next {
			e.U64(m.nodes[i].page)
			e.U64(m.nodes[i].count)
		}
	}
}

// RestoreFrom rebuilds the lists and index from the state written by
// SnapshotTo into a tracker constructed with the same shape.
func (m *MultiQueue) RestoreFrom(d *snap.Decoder) error {
	nl := int(d.U32())
	if d.Err() != nil {
		return d.Err()
	}
	if nl != len(m.head) {
		d.Invalid("multi-queue has %d levels, snapshot has %d", len(m.head), nl)
		return d.Err()
	}
	m.Reset()
	for l := range m.head {
		n := int(d.U32())
		if d.Err() != nil {
			return d.Err()
		}
		if n > m.perLevel {
			d.Invalid("multi-queue level %d holds %d entries, capacity %d", l, n, m.perLevel)
			return d.Err()
		}
		for i := 0; i < n; i++ {
			page := d.U64()
			count := d.U64()
			if d.Err() != nil {
				return d.Err()
			}
			if _, dup := m.index[page]; dup {
				d.Invalid("multi-queue page %d appears twice", page)
				return d.Err()
			}
			node := m.alloc()
			m.nodes[node].page = page
			m.nodes[node].count = count
			m.index[page] = node
			m.pushBack(l, node)
		}
	}
	return d.Err()
}
