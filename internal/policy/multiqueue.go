package policy

import (
	"container/list"
	"fmt"
)

// MultiQueue approximates MRU tracking for off-package macro pages with the
// multi-queue algorithm (Zhou et al., as adapted by Loh MICRO'09, cited by
// the paper): a small fixed number of LRU-ordered levels; a page is promoted
// to level floor(log2(accessCount)) capped at the top level. The hottest
// page is the most recently used entry of the highest occupied level.
//
// Capacity is bounded (levels x entriesPerLevel) like the hardware the paper
// sizes (3 levels x 10 entries = 78 bits x 10): when a level overflows, its
// least recently used entry is demoted one level; overflow out of level 0
// evicts the page from the tracker entirely.
type MultiQueue struct {
	levels    []*list.List // each element value is *mqEntry; front = LRU, back = MRU
	index     map[uint64]*list.Element
	perLevel  int
	bitsEntry int
}

type mqEntry struct {
	page  uint64
	count uint64
	level int
}

// NewMultiQueue returns a tracker with the given shape. The paper's
// configuration is NewMultiQueue(3, 10).
func NewMultiQueue(levels, entriesPerLevel int) (*MultiQueue, error) {
	if levels <= 0 || entriesPerLevel <= 0 {
		return nil, fmt.Errorf("policy: multi-queue shape %dx%d invalid", levels, entriesPerLevel)
	}
	m := &MultiQueue{
		levels:   make([]*list.List, levels),
		index:    make(map[uint64]*list.Element),
		perLevel: entriesPerLevel,
		// The page ID (26 bits for a 48-bit space at 4 MB pages) dominates
		// the per-entry cost; 26 bits x 30 entries gives the 780-bit
		// figure the paper reports for the 3x10 multi-queue.
		bitsEntry: 26,
	}
	for i := range m.levels {
		m.levels[i] = list.New()
	}
	return m, nil
}

// Touch records an access to page, inserting or promoting it.
func (m *MultiQueue) Touch(page uint64) {
	if el, ok := m.index[page]; ok {
		e := el.Value.(*mqEntry)
		e.count++
		want := levelFor(e.count, len(m.levels))
		if want != e.level {
			m.levels[e.level].Remove(el)
			e.level = want
			m.index[page] = m.levels[want].PushBack(e)
			m.spill(want)
		} else {
			m.levels[e.level].MoveToBack(el)
		}
		return
	}
	e := &mqEntry{page: page, count: 1, level: 0}
	m.index[page] = m.levels[0].PushBack(e)
	m.spill(0)
}

// spill demotes the LRU entry of any overfull level, cascading downward.
func (m *MultiQueue) spill(level int) {
	for l := level; l >= 0; l-- {
		for m.levels[l].Len() > m.perLevel {
			victim := m.levels[l].Front()
			e := victim.Value.(*mqEntry)
			m.levels[l].Remove(victim)
			if l == 0 {
				delete(m.index, e.page)
				continue
			}
			e.level = l - 1
			// Demoted entries land at the MRU end of the lower level so a
			// recently hot page is not immediately evicted outright.
			m.index[e.page] = m.levels[l-1].PushBack(e)
		}
	}
}

func levelFor(count uint64, levels int) int {
	l := 0
	for c := count; c > 1 && l < levels-1; c >>= 1 {
		l++
	}
	return l
}

// Hottest returns the most recently used page of the highest occupied
// level, or ok=false if the tracker is empty.
func (m *MultiQueue) Hottest() (page uint64, ok bool) {
	for l := len(m.levels) - 1; l >= 0; l-- {
		if back := m.levels[l].Back(); back != nil {
			return back.Value.(*mqEntry).page, true
		}
	}
	return 0, false
}

// Count returns the recorded access count for page (0 if untracked).
func (m *MultiQueue) Count(page uint64) uint64 {
	if el, ok := m.index[page]; ok {
		return el.Value.(*mqEntry).count
	}
	return 0
}

// Remove drops page from the tracker (after it migrates on-package).
func (m *MultiQueue) Remove(page uint64) {
	if el, ok := m.index[page]; ok {
		m.levels[el.Value.(*mqEntry).level].Remove(el)
		delete(m.index, page)
	}
}

// Reset clears all entries, starting a fresh monitoring epoch.
func (m *MultiQueue) Reset() {
	for _, l := range m.levels {
		l.Init()
	}
	m.index = make(map[uint64]*list.Element)
}

// Len returns the number of tracked pages.
func (m *MultiQueue) Len() int { return len(m.index) }

// BitCost returns the hardware cost in bits: page ID per entry times
// capacity, the accounting behind the paper's "size of multi-queue is 780
// bits" for 3 levels x 10 entries.
func (m *MultiQueue) BitCost() int { return m.bitsEntry * m.perLevel * len(m.levels) }
