package policy

import (
	"fmt"
)

// MultiQueue approximates MRU tracking for off-package macro pages with the
// multi-queue algorithm (Zhou et al., as adapted by Loh MICRO'09, cited by
// the paper): a small fixed number of LRU-ordered levels; a page is promoted
// to level floor(log2(accessCount)) capped at the top level. The hottest
// page is the most recently used entry of the highest occupied level.
//
// Capacity is bounded (levels x entriesPerLevel) like the hardware the paper
// sizes (3 levels x 10 entries = 78 bits x 10): when a level overflows, its
// least recently used entry is demoted one level; overflow out of level 0
// evicts the page from the tracker entirely.
//
// The per-level LRU lists are intrusive doubly-linked lists threaded through
// a fixed slice arena — the hardware's shape is a handful of registers, and
// mirroring that keeps the per-access hot path free of heap allocation
// (container/list allocated an element per insert). The page->node index is
// a map kept alive across Reset so its buckets are reused.
type mqNode struct {
	page       uint64
	count      uint64
	level      int32
	prev, next int32 // arena indices; -1 terminates
}

// MultiQueue is the bounded multi-queue MRU tracker.
type MultiQueue struct {
	nodes      []mqNode
	head, tail []int32 // per level; head = LRU end, tail = MRU end
	sizes      []int32
	free       int32 // free-list head, linked through next
	index      map[uint64]int32
	perLevel   int
	bitsEntry  int
}

const mqNil = int32(-1)

// NewMultiQueue returns a tracker with the given shape. The paper's
// configuration is NewMultiQueue(3, 10).
func NewMultiQueue(levels, entriesPerLevel int) (*MultiQueue, error) {
	if levels <= 0 || entriesPerLevel <= 0 {
		return nil, fmt.Errorf("policy: multi-queue shape %dx%d invalid", levels, entriesPerLevel)
	}
	m := &MultiQueue{
		// One node beyond capacity: an insert lands before the spill that
		// restores the bound, so the arena transiently holds capacity+1.
		nodes: make([]mqNode, levels*entriesPerLevel+1),
		head:  make([]int32, levels),
		tail:  make([]int32, levels),
		sizes: make([]int32, levels),
		index: make(map[uint64]int32, levels*entriesPerLevel+1),
		// The page ID (26 bits for a 48-bit space at 4 MB pages) dominates
		// the per-entry cost; 26 bits x 30 entries gives the 780-bit
		// figure the paper reports for the 3x10 multi-queue.
		perLevel:  entriesPerLevel,
		bitsEntry: 26,
	}
	m.initLinks()
	return m, nil
}

// initLinks empties every level and threads the whole arena onto the free
// list.
func (m *MultiQueue) initLinks() {
	for l := range m.head {
		m.head[l], m.tail[l], m.sizes[l] = mqNil, mqNil, 0
	}
	for i := range m.nodes {
		m.nodes[i].next = int32(i) + 1
	}
	m.nodes[len(m.nodes)-1].next = mqNil
	m.free = 0
}

// alloc pops a node off the free list.
func (m *MultiQueue) alloc() int32 {
	i := m.free
	m.free = m.nodes[i].next
	return i
}

// release returns node i to the free list.
func (m *MultiQueue) release(i int32) {
	m.nodes[i].next = m.free
	m.free = i
}

// unlink removes node i from its level's list.
func (m *MultiQueue) unlink(i int32) {
	n := &m.nodes[i]
	if n.prev != mqNil {
		m.nodes[n.prev].next = n.next
	} else {
		m.head[n.level] = n.next
	}
	if n.next != mqNil {
		m.nodes[n.next].prev = n.prev
	} else {
		m.tail[n.level] = n.prev
	}
	m.sizes[n.level]--
}

// pushBack appends node i at level l's MRU end.
func (m *MultiQueue) pushBack(l int, i int32) {
	n := &m.nodes[i]
	n.level = int32(l)
	n.prev = m.tail[l]
	n.next = mqNil
	if m.tail[l] != mqNil {
		m.nodes[m.tail[l]].next = i
	} else {
		m.head[l] = i
	}
	m.tail[l] = i
	m.sizes[l]++
}

// Touch records an access to page, inserting or promoting it.
func (m *MultiQueue) Touch(page uint64) {
	if i, ok := m.index[page]; ok {
		n := &m.nodes[i]
		n.count++
		want := levelFor(n.count, len(m.head))
		if want != int(n.level) {
			m.unlink(i)
			m.pushBack(want, i)
			m.spill(want)
		} else if m.tail[n.level] != i {
			m.unlink(i)
			m.pushBack(int(n.level), i)
		}
		return
	}
	i := m.alloc()
	m.nodes[i].page = page
	m.nodes[i].count = 1
	m.index[page] = i
	m.pushBack(0, i)
	m.spill(0)
}

// spill demotes the LRU entry of any overfull level, cascading downward.
func (m *MultiQueue) spill(level int) {
	for l := level; l >= 0; l-- {
		for int(m.sizes[l]) > m.perLevel {
			victim := m.head[l]
			m.unlink(victim)
			if l == 0 {
				delete(m.index, m.nodes[victim].page)
				m.release(victim)
				continue
			}
			// Demoted entries land at the MRU end of the lower level so a
			// recently hot page is not immediately evicted outright.
			m.pushBack(l-1, victim)
		}
	}
}

func levelFor(count uint64, levels int) int {
	l := 0
	for c := count; c > 1 && l < levels-1; c >>= 1 {
		l++
	}
	return l
}

// Hottest returns the most recently used page of the highest occupied
// level, or ok=false if the tracker is empty.
func (m *MultiQueue) Hottest() (page uint64, ok bool) {
	for l := len(m.head) - 1; l >= 0; l-- {
		if t := m.tail[l]; t != mqNil {
			return m.nodes[t].page, true
		}
	}
	return 0, false
}

// Count returns the recorded access count for page (0 if untracked).
func (m *MultiQueue) Count(page uint64) uint64 {
	if i, ok := m.index[page]; ok {
		return m.nodes[i].count
	}
	return 0
}

// Remove drops page from the tracker (after it migrates on-package).
func (m *MultiQueue) Remove(page uint64) {
	if i, ok := m.index[page]; ok {
		m.unlink(i)
		delete(m.index, page)
		m.release(i)
	}
}

// Reset clears all entries, starting a fresh monitoring epoch. The index
// map is cleared in place so its buckets (sized by earlier epochs) are
// reused without reallocation.
func (m *MultiQueue) Reset() {
	m.initLinks()
	clear(m.index)
}

// Len returns the number of tracked pages.
func (m *MultiQueue) Len() int { return len(m.index) }

// BitCost returns the hardware cost in bits: page ID per entry times
// capacity, the accounting behind the paper's "size of multi-queue is 780
// bits" for 3 levels x 10 entries.
func (m *MultiQueue) BitCost() int { return m.bitsEntry * m.perLevel * len(m.head) }
