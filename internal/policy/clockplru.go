// Package policy implements the two hotness trackers of the paper's
// migration controller: a clock-based pseudo-LRU over the on-package
// macro-page slots (to find the coldest on-package page, 1 bit per slot —
// 256 bits for 256 slots as in Section III-B) and a multi-queue tracker
// over off-package macro pages (to find the hottest off-package page,
// "three-level of queue with ten entries per level").
package policy

import "fmt"

// ClockPLRU is a clock (second-chance) pseudo-LRU over a fixed set of
// slots. Each slot has one reference bit; Victim sweeps the clock hand,
// clearing reference bits, and returns the first unreferenced slot.
//
// Reference and pin state are packed bitmaps — literally the 1 bit per
// slot the paper's overhead accounting charges — so the tracker is a few
// words of state with allocation-free operations.
type ClockPLRU struct {
	ref    []uint64
	pinned []uint64
	n      int
	hand   int
}

func bitGet(w []uint64, i int) bool { return w[i>>6]>>(uint(i)&63)&1 != 0 }

func bitSet(w []uint64, i int, v bool) {
	if v {
		w[i>>6] |= 1 << (uint(i) & 63)
	} else {
		w[i>>6] &^= 1 << (uint(i) & 63)
	}
}

// NewClockPLRU returns a tracker over n slots, all unreferenced.
func NewClockPLRU(n int) (*ClockPLRU, error) {
	if n <= 0 {
		return nil, fmt.Errorf("policy: clock needs at least one slot, got %d", n)
	}
	words := (n + 63) / 64
	return &ClockPLRU{ref: make([]uint64, words), pinned: make([]uint64, words), n: n}, nil
}

// Len returns the slot count.
func (c *ClockPLRU) Len() int { return c.n }

// Touch marks slot as recently used.
func (c *ClockPLRU) Touch(slot int) {
	if slot >= 0 && slot < c.n {
		bitSet(c.ref, slot, true)
	}
}

// Pin excludes slot from victim selection (e.g. the empty slot of the N-1
// design, or a slot whose copy is still in flight).
func (c *ClockPLRU) Pin(slot int) {
	if slot >= 0 && slot < c.n {
		bitSet(c.pinned, slot, true)
	}
}

// Unpin re-admits slot to victim selection.
func (c *ClockPLRU) Unpin(slot int) {
	if slot >= 0 && slot < c.n {
		bitSet(c.pinned, slot, false)
	}
}

// Pinned reports whether slot is pinned.
func (c *ClockPLRU) Pinned(slot int) bool {
	return slot >= 0 && slot < c.n && bitGet(c.pinned, slot)
}

// Victim advances the clock hand and returns the first slot whose
// reference bit is clear, clearing reference bits as it sweeps. Pinned
// slots are skipped without clearing. Returns -1 if every slot is pinned.
func (c *ClockPLRU) Victim() int {
	// At most two sweeps: the first may clear every reference bit,
	// the second must then find a victim among unpinned slots.
	for pass := 0; pass < 2*c.n; pass++ {
		s := c.hand
		c.hand = (c.hand + 1) % c.n
		if bitGet(c.pinned, s) {
			continue
		}
		if bitGet(c.ref, s) {
			bitSet(c.ref, s, false)
			continue
		}
		return s
	}
	return -1
}

// BitCost returns the hardware cost of the tracker in bits (one reference
// bit per slot), matching the paper's overhead accounting.
func (c *ClockPLRU) BitCost() int { return c.n }
