package policy

import (
	"fmt"

	"heteromem/internal/rng"
	"heteromem/internal/snap"
)

// VictimSelector abstracts the on-package LRU-victim tracker so alternative
// policies can be compared against the paper's clock pseudo-LRU (the
// BenchmarkAblationVictimPolicy study). Selectors are also Snapshotters:
// their recency/hand/PRNG state checkpoints with the migration controller.
type VictimSelector interface {
	// Touch marks slot as recently used.
	Touch(slot int)
	// Pin excludes slot from victim selection; Unpin re-admits it.
	Pin(slot int)
	Unpin(slot int)
	// Victim returns the next victim slot, or -1 if every slot is pinned.
	Victim() int
	// BitCost is the hardware cost in bits.
	BitCost() int

	snap.Snapshotter
}

// ClockPLRU implements VictimSelector.
var _ VictimSelector = (*ClockPLRU)(nil)

// RandomVictim picks victims uniformly at random among unpinned slots.
// It models the cheapest possible hardware (an LFSR) and ignores recency
// entirely — the ablation baseline below which a real policy must not fall.
type RandomVictim struct {
	prng   *rng.Rand
	pinned []bool
}

// NewRandomVictim returns a selector over n slots seeded deterministically.
func NewRandomVictim(n int, seed int64) (*RandomVictim, error) {
	if n <= 0 {
		return nil, fmt.Errorf("policy: random victim needs at least one slot, got %d", n)
	}
	return &RandomVictim{prng: rng.New(uint64(seed)), pinned: make([]bool, n)}, nil
}

// Touch implements VictimSelector (recency is ignored).
func (r *RandomVictim) Touch(int) {}

// Pin implements VictimSelector.
func (r *RandomVictim) Pin(slot int) {
	if slot >= 0 && slot < len(r.pinned) {
		r.pinned[slot] = true
	}
}

// Unpin implements VictimSelector.
func (r *RandomVictim) Unpin(slot int) {
	if slot >= 0 && slot < len(r.pinned) {
		r.pinned[slot] = false
	}
}

// Victim implements VictimSelector.
func (r *RandomVictim) Victim() int {
	n := len(r.pinned)
	start := r.prng.Intn(n)
	for i := 0; i < n; i++ {
		s := (start + i) % n
		if !r.pinned[s] {
			return s
		}
	}
	return -1
}

// BitCost implements VictimSelector: a 16-bit LFSR.
func (r *RandomVictim) BitCost() int { return 16 }

// FIFOVictim evicts slots in rotation regardless of use — one counter of
// hardware, but it cannot protect a persistently hot slot.
type FIFOVictim struct {
	hand   int
	pinned []bool
}

// NewFIFOVictim returns a selector over n slots.
func NewFIFOVictim(n int) (*FIFOVictim, error) {
	if n <= 0 {
		return nil, fmt.Errorf("policy: fifo victim needs at least one slot, got %d", n)
	}
	return &FIFOVictim{pinned: make([]bool, n)}, nil
}

// Touch implements VictimSelector (recency is ignored).
func (f *FIFOVictim) Touch(int) {}

// Pin implements VictimSelector.
func (f *FIFOVictim) Pin(slot int) {
	if slot >= 0 && slot < len(f.pinned) {
		f.pinned[slot] = true
	}
}

// Unpin implements VictimSelector.
func (f *FIFOVictim) Unpin(slot int) {
	if slot >= 0 && slot < len(f.pinned) {
		f.pinned[slot] = false
	}
}

// Victim implements VictimSelector.
func (f *FIFOVictim) Victim() int {
	n := len(f.pinned)
	for i := 0; i < n; i++ {
		s := f.hand
		f.hand = (f.hand + 1) % n
		if !f.pinned[s] {
			return s
		}
	}
	return -1
}

// BitCost implements VictimSelector: one log2(n)-bit counter.
func (f *FIFOVictim) BitCost() int {
	bits := 0
	for n := len(f.pinned) - 1; n > 0; n >>= 1 {
		bits++
	}
	if bits == 0 {
		bits = 1
	}
	return bits
}
