package policy

import (
	"testing"
	"testing/quick"
)

func TestClockVictimPrefersUntouched(t *testing.T) {
	c, err := NewClockPLRU(4)
	if err != nil {
		t.Fatal(err)
	}
	c.Touch(0)
	c.Touch(1)
	c.Touch(3)
	if v := c.Victim(); v != 2 {
		t.Fatalf("victim = %d, want 2 (only untouched slot)", v)
	}
}

func TestClockSecondChance(t *testing.T) {
	c, _ := NewClockPLRU(3)
	for i := 0; i < 3; i++ {
		c.Touch(i)
	}
	// All referenced: the sweep clears bits, then slot 0 is the victim.
	if v := c.Victim(); v != 0 {
		t.Fatalf("victim = %d, want 0 after full sweep", v)
	}
	// Reference bits were cleared; re-touching 1 protects it.
	c.Touch(1)
	if v := c.Victim(); v != 2 {
		t.Fatalf("victim = %d, want 2 (hand at 1, which is referenced)", v)
	}
}

func TestClockPinning(t *testing.T) {
	c, _ := NewClockPLRU(2)
	c.Pin(0)
	if v := c.Victim(); v != 1 {
		t.Fatalf("victim = %d, want 1 (0 pinned)", v)
	}
	c.Pin(1)
	if v := c.Victim(); v != -1 {
		t.Fatalf("victim = %d, want -1 (all pinned)", v)
	}
	c.Unpin(0)
	if v := c.Victim(); v != 0 {
		t.Fatalf("victim = %d, want 0 after unpin", v)
	}
	if !c.Pinned(1) || c.Pinned(0) {
		t.Fatal("Pinned() disagrees with pin state")
	}
}

func TestClockBitCost(t *testing.T) {
	c, _ := NewClockPLRU(256)
	if c.BitCost() != 256 {
		t.Fatalf("bit cost = %d, want 256 (paper: 256 bits for 256 slots)", c.BitCost())
	}
}

func TestClockRejectsZeroSlots(t *testing.T) {
	if _, err := NewClockPLRU(0); err == nil {
		t.Fatal("NewClockPLRU(0) should fail")
	}
}

func TestClockVictimAlwaysValid(t *testing.T) {
	f := func(touches []uint8) bool {
		c, _ := NewClockPLRU(8)
		for _, v := range touches {
			c.Touch(int(v) % 8)
		}
		v := c.Victim()
		return v >= 0 && v < 8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMultiQueueHottest(t *testing.T) {
	m, err := NewMultiQueue(3, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		m.Touch(100) // very hot page
	}
	m.Touch(200)
	m.Touch(300)
	hot, ok := m.Hottest()
	if !ok || hot != 100 {
		t.Fatalf("hottest = %d,%v, want 100", hot, ok)
	}
	if m.Count(100) != 16 {
		t.Fatalf("count(100) = %d", m.Count(100))
	}
}

func TestMultiQueuePromotion(t *testing.T) {
	m, _ := NewMultiQueue(3, 10)
	for i := 0; i < 4; i++ {
		m.Touch(2) // count 4 -> level 2
	}
	// Page 2 should outrank page 1 even if page 1 was touched later.
	m.Touch(1)
	m.Touch(1) // count 2 -> level 1, below page 2's level
	hot, _ := m.Hottest()
	if hot != 2 {
		t.Fatalf("hottest = %d, want promoted page 2", hot)
	}
}

func TestMultiQueueCapacityEviction(t *testing.T) {
	m, _ := NewMultiQueue(2, 3)
	// Insert more level-0 pages than capacity: oldest are evicted.
	for p := uint64(0); p < 10; p++ {
		m.Touch(p)
	}
	if m.Len() > 6 {
		t.Fatalf("tracker holds %d pages, capacity is 6", m.Len())
	}
	if m.Count(0) != 0 {
		t.Fatal("page 0 should have been evicted")
	}
}

func TestMultiQueueRemoveAndReset(t *testing.T) {
	m, _ := NewMultiQueue(3, 10)
	m.Touch(7)
	m.Remove(7)
	if _, ok := m.Hottest(); ok {
		t.Fatal("tracker should be empty after Remove")
	}
	m.Touch(8)
	m.Reset()
	if m.Len() != 0 {
		t.Fatal("tracker should be empty after Reset")
	}
}

func TestMultiQueueBitCost(t *testing.T) {
	m, _ := NewMultiQueue(3, 10)
	if m.BitCost() != 780 {
		t.Fatalf("bit cost = %d, want 780 (paper Section III-B)", m.BitCost())
	}
}

func TestMultiQueueShapeValidation(t *testing.T) {
	if _, err := NewMultiQueue(0, 10); err == nil {
		t.Fatal("zero levels accepted")
	}
	if _, err := NewMultiQueue(3, 0); err == nil {
		t.Fatal("zero entries accepted")
	}
}

// Property: Hottest always returns a tracked page, and the tracker never
// exceeds its capacity.
func TestMultiQueueInvariants(t *testing.T) {
	f := func(touches []uint8) bool {
		m, _ := NewMultiQueue(3, 4)
		for _, v := range touches {
			m.Touch(uint64(v) % 32)
		}
		if m.Len() > 12 {
			return false
		}
		if hot, ok := m.Hottest(); ok {
			return m.Count(hot) >= 1
		}
		return len(touches) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandomVictimSkipsPinned(t *testing.T) {
	r, err := NewRandomVictim(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	r.Pin(0)
	r.Pin(1)
	r.Pin(2)
	for i := 0; i < 20; i++ {
		if v := r.Victim(); v != 3 {
			t.Fatalf("victim = %d, want 3 (only unpinned)", v)
		}
	}
	r.Pin(3)
	if v := r.Victim(); v != -1 {
		t.Fatalf("all pinned: victim = %d, want -1", v)
	}
}

func TestFIFOVictimRotates(t *testing.T) {
	f, err := NewFIFOVictim(3)
	if err != nil {
		t.Fatal(err)
	}
	f.Touch(0) // ignored: FIFO has no recency
	got := []int{f.Victim(), f.Victim(), f.Victim(), f.Victim()}
	want := []int{0, 1, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rotation = %v, want %v", got, want)
		}
	}
	f.Pin(1)
	if v := f.Victim(); v == 1 {
		t.Fatal("pinned slot evicted")
	}
}

func TestVictimSelectorsValidate(t *testing.T) {
	if _, err := NewRandomVictim(0, 1); err == nil {
		t.Fatal("zero slots accepted")
	}
	if _, err := NewFIFOVictim(0); err == nil {
		t.Fatal("zero slots accepted")
	}
}

func TestVictimBitCosts(t *testing.T) {
	r, _ := NewRandomVictim(256, 1)
	f, _ := NewFIFOVictim(256)
	c, _ := NewClockPLRU(256)
	if r.BitCost() <= 0 || f.BitCost() != 8 || c.BitCost() != 256 {
		t.Fatalf("bit costs: random=%d fifo=%d clock=%d", r.BitCost(), f.BitCost(), c.BitCost())
	}
}
