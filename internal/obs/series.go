package obs

// Per-epoch time-series: at every monitoring-epoch boundary the controller
// snapshots its cumulative pipeline counters into an EpochSample, so the
// temporal shape of a run — how the on-package hit ratio converges, when
// swaps burst, where stall cycles accumulate — is visible instead of only
// the end-of-run aggregate. Samples are cumulative since the start of the
// run (latency sums since the last stats reset, i.e. post-warmup), so any
// window's activity is the difference of two samples and the last sample
// reconciles against the final metrics snapshot.

// EpochSample is the state of the pipeline at one epoch boundary. All
// counters are cumulative.
type EpochSample struct {
	Epoch uint64 `json:"epoch"`           // epoch index (1-based); on the final sample, the epoch count at flush
	Cycle int64  `json:"cycle"`           // cycle of the boundary
	Final bool   `json:"final,omitempty"` // true for the extra flush-time sample

	AccOn  uint64 `json:"acc_on"`  // program accesses routed on-package
	AccOff uint64 `json:"acc_off"` // program accesses routed off-package

	PStalls     uint64 `json:"p_stalls"`     // accesses redirected to Ω by a P bit
	StallCycles uint64 `json:"stall_cycles"` // N-design execution stall cycles
	OSPenalties uint64 `json:"os_penalties"` // OS-assisted epoch charges

	SwapsStarted    uint64 `json:"swaps_started"`
	SwapsCompleted  uint64 `json:"swaps_completed"`
	SwapsRolledBack uint64 `json:"swaps_rolled_back"`

	// Fault dispositions (all zero when injection is off).
	FaultsInjected uint64 `json:"faults_injected,omitempty"`
	FaultsRetried  uint64 `json:"faults_retried,omitempty"`
	FaultsRetired  uint64 `json:"faults_retired,omitempty"`
	FaultsDegraded uint64 `json:"faults_degraded,omitempty"`

	// DRAM access latency (queue + device) sums over completed accesses,
	// and the queue-wait portion alone; device time is the difference.
	DRAMLatSum  float64 `json:"dram_lat_sum"`
	DRAMLatN    uint64  `json:"dram_lat_n"`
	QueueLatSum int64   `json:"queue_lat_sum"`
}

// OnShare returns the cumulative fraction of accesses routed on-package.
func (s EpochSample) OnShare() float64 {
	total := s.AccOn + s.AccOff
	if total == 0 {
		return 0
	}
	return float64(s.AccOn) / float64(total)
}

// MeanDRAMLatency returns the cumulative mean DRAM access latency.
func (s EpochSample) MeanDRAMLatency() float64 {
	if s.DRAMLatN == 0 {
		return 0
	}
	return s.DRAMLatSum / float64(s.DRAMLatN)
}

// MeanQueueLatency returns the cumulative mean queue-wait portion.
func (s EpochSample) MeanQueueLatency() float64 {
	if s.DRAMLatN == 0 {
		return 0
	}
	return float64(s.QueueLatSum) / float64(s.DRAMLatN)
}

// MeanDeviceLatency returns the cumulative mean device-service portion.
func (s EpochSample) MeanDeviceLatency() float64 {
	return s.MeanDRAMLatency() - s.MeanQueueLatency()
}

// SeriesSampler keeps the per-epoch samples in a fixed-capacity ring:
// recording is O(1), and when a run produces more epochs than the capacity
// the oldest samples are overwritten — the trajectory's tail (and the
// reconciling final sample) always survives, and Dropped counts the loss.
//
// Every method is nil-safe, matching the instrument idiom.
type SeriesSampler struct {
	buf   []EpochSample
	next  int
	total uint64
}

// NewSeriesSampler returns a sampler retaining the last `capacity` samples
// (minimum 1).
func NewSeriesSampler(capacity int) *SeriesSampler {
	if capacity < 1 {
		capacity = 1
	}
	return &SeriesSampler{buf: make([]EpochSample, capacity)}
}

// Record appends one sample, overwriting the oldest when full. Safe on a
// nil receiver (no-op).
func (s *SeriesSampler) Record(sample EpochSample) {
	if s == nil {
		return
	}
	s.buf[s.next] = sample
	s.next++
	if s.next == len(s.buf) {
		s.next = 0
	}
	s.total++
}

// Samples returns the retained samples oldest-first (at most capacity).
func (s *SeriesSampler) Samples() []EpochSample {
	if s == nil {
		return nil
	}
	if s.total < uint64(len(s.buf)) {
		return append([]EpochSample(nil), s.buf[:s.next]...)
	}
	out := make([]EpochSample, 0, len(s.buf))
	out = append(out, s.buf[s.next:]...)
	out = append(out, s.buf[:s.next]...)
	return out
}

// Total returns how many samples were recorded over the sampler's
// lifetime, including any overwritten.
func (s *SeriesSampler) Total() uint64 {
	if s == nil {
		return 0
	}
	return s.total
}

// Dropped returns how many samples have been overwritten.
func (s *SeriesSampler) Dropped() uint64 {
	if s == nil {
		return 0
	}
	if s.total <= uint64(len(s.buf)) {
		return 0
	}
	return s.total - uint64(len(s.buf))
}
