package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// golden compares got against testdata/<name>, rewriting it under -update.
func golden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden:\n got: %s\nwant: %s", name, got, want)
	}
}

// TestWriteChromeTraceGolden pins the exporter's exact output for a span
// set covering every rendering path: one span per lane, a zero-duration
// mark (instant event), out-of-order begin cycles (the exporter sorts),
// and the lane/process metadata preamble.
func TestWriteChromeTraceGolden(t *testing.T) {
	spans := []Span{
		{Lane: LaneMigrator, Kind: SpanSwap, Begin: 100, End: 900, A: 7, B: 3, C: 4},
		{Lane: LaneSchedOn, Kind: SpanCopyRead, Begin: 150, End: 180, A: 12, B: 0, C: 256},
		{Lane: LaneSchedOff, Kind: SpanCopyWrite, Begin: 60, End: 90, A: 44, B: 1, C: 256},
		{Lane: LaneMigrator, Kind: MarkEpoch, Begin: 50, End: 50, A: 1},
		{Lane: LaneFault, Kind: SpanBackoff, Begin: 400, End: 464, A: 2, B: 1},
		{Lane: LaneFault, Kind: MarkFault, Begin: 400, End: 400, A: 2, B: 9000},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, spans); err != nil {
		t.Fatal(err)
	}
	golden(t, "chrometrace.golden", buf.Bytes())

	// Sanity beyond the byte pin: the output must stay loadable JSON with
	// the instant mark rendered as a thread-scoped "i" event.
	var trace struct {
		TraceEvents []struct {
			Ph    string `json:"ph"`
			Scope string `json:"s"`
			Dur   *int64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("golden output is not valid JSON: %v", err)
	}
	instants := 0
	for _, ev := range trace.TraceEvents {
		if ev.Ph == "i" {
			instants++
			if ev.Scope != "t" {
				t.Errorf("instant event scope %q, want thread-scoped t", ev.Scope)
			}
			if ev.Dur != nil {
				t.Error("instant event carries a duration")
			}
		}
	}
	if instants != 2 {
		t.Errorf("%d instant events, want 2 (the zero-duration marks)", instants)
	}
}

// TestWriteChromeTimelineGolden pins the named-lane wall-clock exporter:
// explicit lane ordering plus appended unlisted lanes, instant marks, and
// JSON escaping of hostile lane/span names (quotes, backslashes, control
// characters, non-ASCII worker names).
func TestWriteChromeTimelineGolden(t *testing.T) {
	lanes := []string{"coordinator", `worker "w0"\host`, "wörker-1"}
	spans := []NamedSpan{
		{Lane: `worker "w0"\host`, Name: `cell "pg/live" #1`, Cat: "attempt", Begin: 10, End: 500,
			Args: map[string]uint64{"lease": 1}},
		{Lane: "coordinator", Name: "lease pg/live", Cat: "lease", Begin: 10, End: 10},
		{Lane: "wörker-1", Name: "newline\nname\ttab", Begin: 20, End: 80},
		{Lane: "straggler", Name: "unlisted lane appends", Begin: 5, End: 5},
	}
	var buf bytes.Buffer
	if err := WriteChromeTimeline(&buf, lanes, spans); err != nil {
		t.Fatal(err)
	}
	golden(t, "chrometimeline.golden", buf.Bytes())

	var trace struct {
		TraceEvents []struct {
			Name string          `json:"name"`
			Ph   string          `json:"ph"`
			TID  int             `json:"tid"`
			Args json.RawMessage `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("timeline output is not valid JSON despite hostile names: %v", err)
	}
	if trace.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit %q, want ms", trace.DisplayTimeUnit)
	}
	// Listed lanes keep their positions; the unlisted lane appends after.
	laneTID := map[string]int{}
	for _, ev := range trace.TraceEvents {
		if ev.Ph == "M" && ev.Name == "thread_name" {
			var meta struct {
				Name string `json:"name"`
			}
			if err := json.Unmarshal(ev.Args, &meta); err != nil {
				t.Fatal(err)
			}
			laneTID[meta.Name] = ev.TID
		}
	}
	if laneTID["coordinator"] != 0 || laneTID[`worker "w0"\host`] != 1 || laneTID["wörker-1"] != 2 || laneTID["straggler"] != 3 {
		t.Errorf("lane ordering wrong: %v", laneTID)
	}
}
