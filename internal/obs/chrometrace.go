package obs

import (
	"encoding/json"
	"io"
	"sort"
)

// Chrome trace-event export: spans serialize into the JSON object format
// consumed by chrome://tracing and Perfetto (ui.perfetto.dev). Timestamps
// are simulation cycles, not microseconds — the viewer's time axis reads
// directly in the cycle domain. Each Lane becomes one "thread" so swap
// lifecycles, per-region bus occupancy, and the fault ladder render as
// parallel tracks.

// chromeEvent is one trace-event record. Only the fields the viewers
// require are emitted.
type chromeEvent struct {
	Name  string            `json:"name"`
	Cat   string            `json:"cat,omitempty"`
	Phase string            `json:"ph"`
	TS    int64             `json:"ts"`
	Dur   *int64            `json:"dur,omitempty"`
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	Scope string            `json:"s,omitempty"`    // instant-event scope
	Args  map[string]uint64 `json:"args,omitempty"` // A/B/C payload
	// Metadata payload (thread names); a different shape than Args.
	MetaArgs map[string]interface{} `json:"margs,omitempty"`
}

// MarshalJSON emits metadata and span events with the single "args" key
// the trace format uses for both shapes.
func (e chromeEvent) MarshalJSON() ([]byte, error) {
	if e.MetaArgs != nil {
		return json.Marshal(struct {
			Name  string                 `json:"name"`
			Phase string                 `json:"ph"`
			PID   int                    `json:"pid"`
			TID   int                    `json:"tid"`
			Args  map[string]interface{} `json:"args"`
		}{e.Name, e.Phase, e.PID, e.TID, e.MetaArgs})
	}
	return json.Marshal(struct {
		Name  string            `json:"name"`
		Cat   string            `json:"cat,omitempty"`
		Phase string            `json:"ph"`
		TS    int64             `json:"ts"`
		Dur   *int64            `json:"dur,omitempty"`
		PID   int               `json:"pid"`
		TID   int               `json:"tid"`
		Scope string            `json:"s,omitempty"`
		Args  map[string]uint64 `json:"args,omitempty"`
	}{e.Name, e.Cat, e.Phase, e.TS, e.Dur, e.PID, e.TID, e.Scope, e.Args})
}

// chromeTrace is the top-level JSON object format.
type chromeTrace struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
	// displayTimeUnit must be "ms" or "ns"; "ns" keeps the axis closest to
	// raw cycle numbers.
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

// tracePID is the single simulated process in the exported trace.
const tracePID = 1

// WriteChromeTrace serializes spans as Chrome trace-event JSON onto w.
// Spans are sorted by begin cycle (stable across runs of the same
// simulation); zero-duration spans become instant events.
func WriteChromeTrace(w io.Writer, spans []Span) error {
	sorted := append([]Span(nil), spans...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Begin < sorted[j].Begin })

	events := make([]chromeEvent, 0, len(sorted)+int(laneEnd)+1)
	events = append(events, chromeEvent{
		Name: "process_name", Phase: "M", PID: tracePID, TID: 0,
		MetaArgs: map[string]interface{}{"name": "hmsim"},
	})
	for lane := Lane(0); lane < laneEnd; lane++ {
		events = append(events,
			chromeEvent{
				Name: "thread_name", Phase: "M", PID: tracePID, TID: int(lane),
				MetaArgs: map[string]interface{}{"name": lane.String()},
			},
			chromeEvent{
				Name: "thread_sort_index", Phase: "M", PID: tracePID, TID: int(lane),
				MetaArgs: map[string]interface{}{"sort_index": int(lane)},
			})
	}
	for _, s := range sorted {
		ev := chromeEvent{
			Name: s.Kind.String(),
			Cat:  s.Lane.String(),
			TS:   s.Begin,
			PID:  tracePID,
			TID:  int(s.Lane),
			Args: map[string]uint64{"a": s.A, "b": s.B, "c": s.C},
		}
		if d := s.Duration(); d > 0 {
			ev.Phase = "X"
			ev.Dur = &d
		} else {
			ev.Phase = "i"
			ev.Scope = "t" // thread-scoped instant
		}
		events = append(events, ev)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ns"})
}

// NamedSpan is one interval (or instant, when Begin == End) on a named
// lane, for traces whose lane set is dynamic — the fleet timeline renders
// one lane per sweep worker plus a coordinator lane, and worker names are
// only known at runtime. Timestamps are wall-clock microseconds relative
// to the trace origin, so the viewer's axis reads directly in real time.
type NamedSpan struct {
	Lane  string            // lane (thread) name
	Name  string            // event name shown on the span
	Cat   string            // category ("" omits it)
	Begin int64             // microseconds since the trace origin
	End   int64             // microseconds; == Begin for an instant mark
	Args  map[string]uint64 // optional payload shown in the viewer
}

// WriteChromeTimeline serializes named-lane spans as Chrome trace-event
// JSON onto w. Lanes appear in the order given; spans referencing a lane
// not listed get lanes appended in first-reference order, so a caller that
// doesn't care about ordering can pass nil. Spans are sorted by begin time
// (stable), zero-duration spans become thread-scoped instant events —
// the same conventions as WriteChromeTrace, in the wall-clock domain.
func WriteChromeTimeline(w io.Writer, lanes []string, spans []NamedSpan) error {
	tids := make(map[string]int, len(lanes))
	order := append([]string(nil), lanes...)
	for _, lane := range lanes {
		if _, ok := tids[lane]; !ok {
			tids[lane] = len(tids)
		}
	}
	for _, s := range spans {
		if _, ok := tids[s.Lane]; !ok {
			tids[s.Lane] = len(tids)
			order = append(order, s.Lane)
		}
	}

	sorted := append([]NamedSpan(nil), spans...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Begin < sorted[j].Begin })

	events := make([]chromeEvent, 0, len(sorted)+2*len(order)+1)
	events = append(events, chromeEvent{
		Name: "process_name", Phase: "M", PID: tracePID, TID: 0,
		MetaArgs: map[string]interface{}{"name": "hmsim fleet"},
	})
	for i, lane := range order {
		events = append(events,
			chromeEvent{
				Name: "thread_name", Phase: "M", PID: tracePID, TID: i,
				MetaArgs: map[string]interface{}{"name": lane},
			},
			chromeEvent{
				Name: "thread_sort_index", Phase: "M", PID: tracePID, TID: i,
				MetaArgs: map[string]interface{}{"sort_index": i},
			})
	}
	for _, s := range sorted {
		ev := chromeEvent{
			Name: s.Name,
			Cat:  s.Cat,
			TS:   s.Begin,
			PID:  tracePID,
			TID:  tids[s.Lane],
			Args: s.Args,
		}
		if d := s.End - s.Begin; d > 0 {
			dur := d
			ev.Phase = "X"
			ev.Dur = &dur
		} else {
			ev.Phase = "i"
			ev.Scope = "t"
		}
		events = append(events, ev)
	}
	enc := json.NewEncoder(w)
	// Wall-clock microseconds: "ms" keeps the viewer's axis in real time.
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}
