package obs

import (
	"encoding/json"
	"fmt"
)

// Lane is the pipeline stage a span belongs to. The Chrome-trace exporter
// renders one "thread" per lane, so spans on different lanes can overlap
// freely while spans within a lane are expected to nest.
type Lane uint8

// The pipeline lanes.
const (
	LaneSchedOn  Lane = iota // on-package transaction scheduler / bus
	LaneSchedOff             // off-package transaction scheduler / bus
	LaneMigrator             // migration engine: epochs, swaps, steps, stalls
	LaneFault                // fault-escalation ladder: retries, rollbacks, retirements

	laneEnd // sentinel; keep last
)

// String names the lane the way the trace viewer shows it.
func (l Lane) String() string {
	switch l {
	case LaneSchedOn:
		return "sched on-pkg"
	case LaneSchedOff:
		return "sched off-pkg"
	case LaneMigrator:
		return "migrator"
	case LaneFault:
		return "fault ladder"
	default:
		return fmt.Sprintf("Lane(%d)", uint8(l))
	}
}

// MarshalJSON renders the lane as its string name.
func (l Lane) MarshalJSON() ([]byte, error) { return json.Marshal(l.String()) }

// SpanKind discriminates trace spans. Zero-duration spans (Begin == End)
// are instant marks; the exporter renders them as instant events.
type SpanKind uint8

// Span kinds recorded by the instrumented pipeline. The meaning of the
// A/B/C payload depends on the kind.
const (
	SpanSwap      SpanKind = iota + 1 // whole swap lifecycle; A=MRU page, B=victim slot, C=steps
	SpanStep                          // one swap step (copies + table update); A=MRU page, B=step index
	SpanCopyRead                      // source leg of one sub-block copy; A=src machine page, B=sub index, C=bytes
	SpanCopyWrite                     // destination leg of one sub-block copy; A=dst machine page, B=sub index, C=bytes
	SpanStall                         // N-design execution stall; A=stall cycles
	SpanRollback                      // swap abort -> table restored; A=MRU page, B=undo copies
	SpanBackoff                       // fault-retry backoff window; A=injection point, B=attempt
	SpanRetire                        // slot retirement evacuation; A=slot, B=spare machine page
	MarkEpoch                         // instant: monitoring epoch boundary; A=epoch index
	MarkPStall                        // instant: access redirected to Ω by a P bit; A=physical page
	MarkFault                         // instant: injected fault observed; A=injection point, B=machine address
	MarkDegrade                       // instant: migration permanently frozen; A=total faults

	spanKindEnd // sentinel; keep last
)

// String names the span kind.
func (k SpanKind) String() string {
	switch k {
	case SpanSwap:
		return "swap"
	case SpanStep:
		return "swap-step"
	case SpanCopyRead:
		return "copy-read"
	case SpanCopyWrite:
		return "copy-write"
	case SpanStall:
		return "stall"
	case SpanRollback:
		return "rollback"
	case SpanBackoff:
		return "backoff"
	case SpanRetire:
		return "retire"
	case MarkEpoch:
		return "epoch"
	case MarkPStall:
		return "p-stall"
	case MarkFault:
		return "fault"
	case MarkDegrade:
		return "degrade"
	default:
		return fmt.Sprintf("SpanKind(%d)", uint8(k))
	}
}

// MarshalJSON renders the kind as its string name.
func (k SpanKind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// Span is one begin/end interval in the cycle domain. A fixed-shape struct
// (no pointers, no strings) so appends into the tracer never allocate
// beyond the backing array; the meaning of A/B/C depends on Kind.
type Span struct {
	Lane  Lane     `json:"lane"`
	Kind  SpanKind `json:"kind"`
	Begin int64    `json:"begin"`
	End   int64    `json:"end"`
	A     uint64   `json:"a"`
	B     uint64   `json:"b"`
	C     uint64   `json:"c"`
}

// Duration returns the span length in cycles (0 for instant marks).
func (s Span) Duration() int64 { return s.End - s.Begin }

// SpanTracer records cycle-domain spans into a bounded buffer. Unlike the
// event ring it keeps the earliest spans and counts the overflow: a trace
// is most useful from the beginning, and the dropped count makes the
// truncation visible (no silent caps).
//
// Every method is nil-safe, matching the instrument idiom: a component
// wired against a disabled registry holds a nil tracer and recording is a
// single pointer test.
type SpanTracer struct {
	spans   []Span
	cap     int
	dropped uint64
}

// NewSpanTracer returns a tracer retaining up to capacity spans
// (minimum 1).
func NewSpanTracer(capacity int) *SpanTracer {
	if capacity < 1 {
		capacity = 1
	}
	return &SpanTracer{cap: capacity}
}

// Span records one interval. Safe on a nil receiver (no-op).
func (t *SpanTracer) Span(lane Lane, kind SpanKind, begin, end int64, a, b, c uint64) {
	if t == nil {
		return
	}
	if len(t.spans) >= t.cap {
		t.dropped++
		return
	}
	t.spans = append(t.spans, Span{Lane: lane, Kind: kind, Begin: begin, End: end, A: a, B: b, C: c})
}

// Mark records an instant (zero-duration) span. Safe on a nil receiver.
func (t *SpanTracer) Mark(lane Lane, kind SpanKind, cycle int64, a, b, c uint64) {
	t.Span(lane, kind, cycle, cycle, a, b, c)
}

// Spans returns a copy of the retained spans in recording order.
func (t *SpanTracer) Spans() []Span {
	if t == nil {
		return nil
	}
	return append([]Span(nil), t.spans...)
}

// Len returns the number of retained spans (0 for nil).
func (t *SpanTracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.spans)
}

// Dropped returns how many spans were discarded once the buffer filled.
func (t *SpanTracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// Total returns every span ever recorded, retained or dropped.
func (t *SpanTracer) Total() uint64 {
	if t == nil {
		return 0
	}
	return uint64(len(t.spans)) + t.dropped
}
