package obs

import (
	"math"
	"strings"
	"testing"
)

func TestNilSeriesSamplerIsSafe(t *testing.T) {
	var s *SeriesSampler
	s.Record(EpochSample{Epoch: 1})
	if s.Samples() != nil || s.Total() != 0 || s.Dropped() != 0 {
		t.Fatal("nil sampler must be a no-op sink")
	}
}

func TestSeriesSamplerKeepsTail(t *testing.T) {
	s := NewSeriesSampler(3)
	for i := uint64(1); i <= 5; i++ {
		s.Record(EpochSample{Epoch: i, Cycle: int64(i * 100)})
	}
	got := s.Samples()
	if len(got) != 3 {
		t.Fatalf("retained %d samples, want 3", len(got))
	}
	// The ring keeps the LAST samples: the tail of the trajectory and the
	// reconciling final record always survive.
	for i, want := range []uint64{3, 4, 5} {
		if got[i].Epoch != want {
			t.Fatalf("sample %d epoch = %d, want %d", i, got[i].Epoch, want)
		}
	}
	if s.Total() != 5 || s.Dropped() != 2 {
		t.Fatalf("total=%d dropped=%d, want 5/2", s.Total(), s.Dropped())
	}
}

func TestSeriesSamplerMinimumCapacity(t *testing.T) {
	s := NewSeriesSampler(-1)
	s.Record(EpochSample{Epoch: 1})
	s.Record(EpochSample{Epoch: 2})
	got := s.Samples()
	if len(got) != 1 || got[0].Epoch != 2 {
		t.Fatalf("samples = %+v, want just epoch 2", got)
	}
	if s.Dropped() != 1 {
		t.Fatalf("Dropped = %d, want 1", s.Dropped())
	}
}

func TestEpochSampleDerivedRates(t *testing.T) {
	var zero EpochSample
	if zero.OnShare() != 0 || zero.MeanDRAMLatency() != 0 || zero.MeanQueueLatency() != 0 {
		t.Fatal("zero sample rates must be 0, not NaN")
	}
	s := EpochSample{
		AccOn: 75, AccOff: 25,
		DRAMLatSum: 4000, DRAMLatN: 100, QueueLatSum: 1000,
	}
	if got := s.OnShare(); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("OnShare = %v", got)
	}
	if got := s.MeanDRAMLatency(); math.Abs(got-40) > 1e-9 {
		t.Fatalf("MeanDRAMLatency = %v", got)
	}
	if got := s.MeanQueueLatency(); math.Abs(got-10) > 1e-9 {
		t.Fatalf("MeanQueueLatency = %v", got)
	}
	if got := s.MeanDeviceLatency(); math.Abs(got-30) > 1e-9 {
		t.Fatalf("MeanDeviceLatency = %v", got)
	}
}

func TestRegistrySeriesLifecycle(t *testing.T) {
	var nilReg *Registry
	if nilReg.EnableSeries(16) != nil || nilReg.Series() != nil {
		t.Fatal("nil registry must return nil sampler")
	}
	r := NewRegistry()
	if r.Series() != nil {
		t.Fatal("series must be off until enabled")
	}
	s := r.EnableSeries(16)
	if s == nil || r.Series() != s {
		t.Fatal("EnableSeries must attach and return the sampler")
	}
	if again := r.EnableSeries(99); again != s {
		t.Fatal("EnableSeries must be idempotent")
	}
}

func TestEventRingDropped(t *testing.T) {
	var nilRing *EventRing
	if nilRing.Dropped() != 0 {
		t.Fatal("nil ring Dropped")
	}
	r := NewEventRing(4)
	for i := int64(0); i < 4; i++ {
		r.Emit(i, EvEpoch, uint64(i), 0, 0)
	}
	if r.Dropped() != 0 {
		t.Fatalf("Dropped = %d before overflow, want 0", r.Dropped())
	}
	r.Emit(4, EvEpoch, 4, 0, 0)
	r.Emit(5, EvEpoch, 5, 0, 0)
	if r.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", r.Dropped())
	}
	if got := r.Total() - uint64(len(r.Events())); got != r.Dropped() {
		t.Fatalf("Dropped inconsistent with Total-retained: %d vs %d", r.Dropped(), got)
	}
}

// Every EventKind must have a real name so traces never show
// "EventKind(n)" for a shipped kind.
func TestEventKindStringExhaustive(t *testing.T) {
	seen := map[string]EventKind{}
	for k := EventKind(1); k < evKindEnd; k++ {
		name := k.String()
		if strings.HasPrefix(name, "EventKind(") {
			t.Errorf("EventKind %d has no name", k)
		}
		if prev, dup := seen[name]; dup {
			t.Errorf("EventKind %d and %d share name %q", prev, k, name)
		}
		seen[name] = k
	}
	if EventKind(0).String() != "EventKind(0)" {
		t.Error("out-of-range kinds must render as EventKind(n)")
	}
}

func BenchmarkSeriesRecord(b *testing.B) {
	s := NewSeriesSampler(1 << 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Record(EpochSample{Epoch: uint64(i), Cycle: int64(i)})
	}
}
