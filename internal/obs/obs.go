// Package obs is the simulator's observability substrate: a metrics
// registry (monotonic counters, gauges, fixed-bucket latency histograms)
// and an optional structured event trace (a ring buffer of migration,
// swap, stall, and routing events with cycle timestamps).
//
// The design goal is zero allocation and near-zero cost on hot paths:
//
//   - Instruments are registered once at construction time and held as
//     typed pointers by the instrumented component; recording is a plain
//     field update, no map lookup and no interface call.
//   - Every instrument method is nil-safe. A component wired against a nil
//     *Registry receives nil instruments, and recording into a nil
//     instrument is a single pointer test — so observability can stay
//     compiled into the hot path and be turned off per run without
//     branching on configuration.
//
// Like the rest of the simulator, a Registry is owned by a single
// simulation and is not goroutine-safe; parallel experiments own one
// registry per run.
package obs

import (
	"fmt"
	"sort"
	"strings"
)

// Counter is a monotonic event count.
type Counter struct{ v uint64 }

// Inc adds one. Safe on a nil receiver (no-op).
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add adds d. Safe on a nil receiver (no-op).
func (c *Counter) Add(d uint64) {
	if c != nil {
		c.v += d
	}
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a last-value-wins measurement.
type Gauge struct{ v int64 }

// Set records v. Safe on a nil receiver (no-op).
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v = v
	}
}

// Add adds d to the current value. Safe on a nil receiver (no-op).
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v += d
	}
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Histogram is a fixed-bucket latency histogram: bucket i counts samples
// v <= bounds[i] (first matching bucket), with one implicit overflow
// bucket past the last bound. Bounds are fixed at registration, so
// Observe never allocates.
type Histogram struct {
	bounds []int64  // ascending upper bounds
	counts []uint64 // len(bounds)+1; last is overflow
	n      uint64
	sum    int64
	max    int64
}

// Observe records one sample. Safe on a nil receiver (no-op).
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.n++
	h.sum += v
	if v > h.max {
		h.max = v
	}
	// The bound lists are short (tens of buckets); linear scan beats the
	// branch misprediction profile of binary search at this size.
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
			return
		}
	}
	h.counts[len(h.bounds)]++
}

// Count returns the number of samples (0 for nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.n
}

// Sum returns the sample sum (0 for nil).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Mean returns the sample mean, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	if h == nil || h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Max returns the largest sample (0 for nil or empty).
func (h *Histogram) Max() int64 {
	if h == nil {
		return 0
	}
	return h.max
}

// Quantile returns an upper bound for the q-quantile (0 < q <= 1): the
// bound of the bucket containing it, or Max for the overflow bucket.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil || h.n == 0 {
		return 0
	}
	target := uint64(q * float64(h.n))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.max
		}
	}
	return h.max
}

// ExpBuckets returns n upper bounds starting at `first` and doubling:
// first, 2*first, 4*first, ... — the natural shape for cycle latencies.
func ExpBuckets(first int64, n int) []int64 {
	if first <= 0 {
		first = 1
	}
	out := make([]int64, n)
	b := first
	for i := range out {
		out[i] = b
		b *= 2
	}
	return out
}

// DefaultLatencyBuckets covers 16..65536 cycles in octaves, bracketing
// everything from an L4-speed on-package hit to a pathological queue stall.
func DefaultLatencyBuckets() []int64 { return ExpBuckets(16, 13) }

// Snapshot copies the histogram's current state — the standalone
// counterpart of Registry.Snapshot for histograms owned outside a registry
// (the sweep coordinator's heartbeat/RTT/checkpoint-size histograms).
// Returns the zero snapshot on a nil receiver.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	return HistogramSnapshot{
		Bounds: append([]int64(nil), h.bounds...),
		Counts: append([]uint64(nil), h.counts...),
		Count:  h.n,
		Sum:    h.sum,
		Mean:   h.Mean(),
		Max:    h.max,
	}
}

// NewHistogram returns a standalone histogram with the given bucket bounds
// (sorted ascending), for callers that need an instrument outside any
// Registry. A nil return never happens; the zero-bounds case still counts.
func NewHistogram(bounds []int64) *Histogram {
	b := append([]int64(nil), bounds...)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	return &Histogram{bounds: b, counts: make([]uint64, len(b)+1)}
}

// Registry holds a simulation run's named instruments. The zero of
// *Registry (nil) is a valid "disabled" registry: every constructor
// returns a nil instrument whose methods no-op.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	ring     *EventRing
	spans    *SpanTracer
	series   *SeriesSampler
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it at zero on first use.
// Returns nil (a valid no-op counter) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
// Returns nil (a valid no-op gauge) on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// bounds on first use (later calls reuse the existing buckets). Returns
// nil (a valid no-op histogram) on a nil registry.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	h, ok := r.hists[name]
	if !ok {
		b := append([]int64(nil), bounds...)
		sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
		h = &Histogram{bounds: b, counts: make([]uint64, len(b)+1)}
		r.hists[name] = h
	}
	return h
}

// EnableEvents attaches an event ring of the given capacity (idempotent;
// the first capacity wins). No-op on a nil registry.
func (r *Registry) EnableEvents(capacity int) *EventRing {
	if r == nil {
		return nil
	}
	if r.ring == nil && capacity > 0 {
		r.ring = NewEventRing(capacity)
	}
	return r.ring
}

// Events returns the attached event ring (nil when events are disabled;
// a nil ring is a valid no-op sink).
func (r *Registry) Events() *EventRing {
	if r == nil {
		return nil
	}
	return r.ring
}

// EnableSpans attaches a span tracer of the given capacity (idempotent;
// the first capacity wins). No-op on a nil registry.
func (r *Registry) EnableSpans(capacity int) *SpanTracer {
	if r == nil {
		return nil
	}
	if r.spans == nil && capacity > 0 {
		r.spans = NewSpanTracer(capacity)
	}
	return r.spans
}

// Spans returns the attached span tracer (nil when tracing is disabled;
// a nil tracer is a valid no-op sink).
func (r *Registry) Spans() *SpanTracer {
	if r == nil {
		return nil
	}
	return r.spans
}

// EnableSeries attaches a per-epoch series sampler of the given capacity
// (idempotent; the first capacity wins). No-op on a nil registry.
func (r *Registry) EnableSeries(capacity int) *SeriesSampler {
	if r == nil {
		return nil
	}
	if r.series == nil && capacity > 0 {
		r.series = NewSeriesSampler(capacity)
	}
	return r.series
}

// Series returns the attached series sampler (nil when sampling is
// disabled; a nil sampler is a valid no-op sink).
func (r *Registry) Series() *SeriesSampler {
	if r == nil {
		return nil
	}
	return r.series
}

// HistogramSnapshot is the exported state of one histogram.
type HistogramSnapshot struct {
	Bounds []int64  `json:"bounds"` // ascending bucket upper bounds
	Counts []uint64 `json:"counts"` // len(Bounds)+1; last is overflow
	Count  uint64   `json:"count"`
	Sum    int64    `json:"sum"`
	Mean   float64  `json:"mean"`
	Max    int64    `json:"max"`
}

// Snapshot is a JSON-marshallable copy of every instrument in a registry.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies the registry's current state. Returns nil on a nil
// registry.
func (r *Registry) Snapshot() *Snapshot {
	if r == nil {
		return nil
	}
	s := &Snapshot{
		Counters:   make(map[string]uint64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.v
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.v
	}
	for name, h := range r.hists {
		s.Histograms[name] = HistogramSnapshot{
			Bounds: append([]int64(nil), h.bounds...),
			Counts: append([]uint64(nil), h.counts...),
			Count:  h.n,
			Sum:    h.sum,
			Mean:   h.Mean(),
			Max:    h.max,
		}
	}
	return s
}

// MergeSnapshots folds per-channel snapshots into one: counters and gauges
// sum name by name, histogram buckets add (their bucket layouts derive from
// the instrument name, so same-named histograms share bounds). Nil parts
// are skipped; the result is nil only if every part is nil. Summation is
// commutative and map keys are unordered, so the merged snapshot — and any
// sorted rendering of it — is identical no matter which channel finished
// first.
func MergeSnapshots(parts ...*Snapshot) *Snapshot {
	var out *Snapshot
	for _, p := range parts {
		if p == nil {
			continue
		}
		if out == nil {
			out = &Snapshot{
				Counters:   make(map[string]uint64),
				Gauges:     make(map[string]int64),
				Histograms: make(map[string]HistogramSnapshot),
			}
		}
		for name, v := range p.Counters {
			out.Counters[name] += v
		}
		for name, v := range p.Gauges {
			out.Gauges[name] += v
		}
		for name, h := range p.Histograms {
			cur, ok := out.Histograms[name]
			if !ok {
				cur = HistogramSnapshot{
					Bounds: append([]int64(nil), h.Bounds...),
					Counts: make([]uint64, len(h.Counts)),
				}
			}
			for i := range h.Counts {
				if i < len(cur.Counts) {
					cur.Counts[i] += h.Counts[i]
				}
			}
			cur.Count += h.Count
			cur.Sum += h.Sum
			if h.Max > cur.Max {
				cur.Max = h.Max
			}
			if cur.Count > 0 {
				cur.Mean = float64(cur.Sum) / float64(cur.Count)
			}
			out.Histograms[name] = cur
		}
	}
	return out
}

// Get returns a counter value from the snapshot (0 if absent or nil).
func (s *Snapshot) Get(name string) uint64 {
	if s == nil {
		return 0
	}
	return s.Counters[name]
}

// String renders the snapshot as sorted name=value lines, histograms as
// their summary statistics — a debugging aid, not a stable format.
func (s *Snapshot) String() string {
	if s == nil {
		return "<no metrics>"
	}
	var lines []string
	for name, v := range s.Counters {
		lines = append(lines, fmt.Sprintf("%s=%d", name, v))
	}
	for name, v := range s.Gauges {
		lines = append(lines, fmt.Sprintf("%s=%d", name, v))
	}
	for name, h := range s.Histograms {
		lines = append(lines, fmt.Sprintf("%s: n=%d mean=%.1f max=%d", name, h.Count, h.Mean, h.Max))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
