package obs

import (
	"encoding/json"
	"fmt"
)

// EventKind discriminates trace events.
type EventKind uint8

// Event kinds emitted by the instrumented pipeline.
const (
	EvEpoch     EventKind = iota + 1 // monitoring epoch boundary; A=epoch index
	EvSwapStart                      // swap began; A=MRU page, B=victim slot
	EvSwapStep                       // one plan step's table mutation applied; A=MRU page, B=step index
	EvSwapDone                       // swap completed; A=MRU page, B=step count
	EvPStall                         // access redirected to Ω by a P bit; A=physical page
	EvStall                          // N-design execution stall; A=stall cycles
	EvOSPenalty                      // OS-assisted epoch table update charged; A=penalty cycles
	EvCopyDone                       // background sub-block copy finished; A=src machine page, B=dst machine page, C=bytes
	EvAudit                          // invariant audit ran; A=1 for quiescent, 0 for step-level

	// Fault-injection pipeline events (kinds appended so traces from
	// fault-free builds keep their numbering).
	EvFault        // injected fault observed; A=injection point, B=machine address, C=attempt count
	EvFaultRetry   // faulted operation rescheduled; A=injection point, B=new attempt count, C=backoff cycles
	EvSwapAbort    // in-flight swap aborted for rollback; A=MRU page, B=victim slot
	EvRollbackDone // rollback finished, table restored; A=MRU page
	EvRetire       // on-package slot retired; A=slot, B=spare machine page (0 if none)
	EvDegrade      // migration permanently disabled; A=total injected faults so far

	evKindEnd // sentinel; keep last
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EvEpoch:
		return "epoch"
	case EvSwapStart:
		return "swap-start"
	case EvSwapStep:
		return "swap-step"
	case EvSwapDone:
		return "swap-done"
	case EvPStall:
		return "p-stall"
	case EvStall:
		return "stall"
	case EvOSPenalty:
		return "os-penalty"
	case EvCopyDone:
		return "copy-done"
	case EvAudit:
		return "audit"
	case EvFault:
		return "fault"
	case EvFaultRetry:
		return "fault-retry"
	case EvSwapAbort:
		return "swap-abort"
	case EvRollbackDone:
		return "rollback-done"
	case EvRetire:
		return "retire"
	case EvDegrade:
		return "degrade"
	default:
		return fmt.Sprintf("EventKind(%d)", uint8(k))
	}
}

// MarshalJSON renders the kind as its string name.
func (k EventKind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// Event is one structured trace event. A fixed-shape struct (no pointers,
// no strings) so appends into the ring never allocate; the meaning of
// A/B/C depends on Kind (see the kind constants).
type Event struct {
	Cycle int64     `json:"cycle"`
	Kind  EventKind `json:"kind"`
	A     uint64    `json:"a"`
	B     uint64    `json:"b"`
	C     uint64    `json:"c"`
}

// EventRing is a fixed-capacity ring buffer of events: recording is O(1)
// and allocation-free, and when the simulation produces more events than
// the capacity the oldest are overwritten (Total still counts them).
type EventRing struct {
	buf   []Event
	next  int
	total uint64
}

// NewEventRing returns a ring with the given capacity (minimum 1).
func NewEventRing(capacity int) *EventRing {
	if capacity < 1 {
		capacity = 1
	}
	return &EventRing{buf: make([]Event, capacity)}
}

// Emit appends one event, overwriting the oldest when full. Safe on a nil
// receiver (no-op), so components can hold the ring unconditionally.
func (r *EventRing) Emit(cycle int64, kind EventKind, a, b, c uint64) {
	if r == nil {
		return
	}
	r.buf[r.next] = Event{Cycle: cycle, Kind: kind, A: a, B: b, C: c}
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
	}
	r.total++
}

// Total returns how many events were emitted over the ring's lifetime,
// including any that have since been overwritten.
func (r *EventRing) Total() uint64 {
	if r == nil {
		return 0
	}
	return r.total
}

// Dropped returns how many events have been overwritten — the gap between
// Total and what Events can still return. Non-zero means the trace is
// truncated at the front.
func (r *EventRing) Dropped() uint64 {
	if r == nil {
		return 0
	}
	if r.total <= uint64(len(r.buf)) {
		return 0
	}
	return r.total - uint64(len(r.buf))
}

// Events returns the retained events oldest-first (at most capacity).
func (r *EventRing) Events() []Event {
	if r == nil {
		return nil
	}
	if r.total < uint64(len(r.buf)) {
		return append([]Event(nil), r.buf[:r.next]...)
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}
