package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestNilSpanTracerIsSafe(t *testing.T) {
	var tr *SpanTracer
	tr.Span(LaneMigrator, SpanSwap, 0, 10, 1, 2, 3)
	tr.Mark(LaneMigrator, MarkEpoch, 5, 1, 0, 0)
	if tr.Spans() != nil || tr.Len() != 0 || tr.Dropped() != 0 || tr.Total() != 0 {
		t.Fatal("nil tracer must be a no-op sink")
	}
}

func TestSpanTracerKeepsEarliestAndCountsDropped(t *testing.T) {
	tr := NewSpanTracer(3)
	for i := int64(0); i < 5; i++ {
		tr.Span(LaneMigrator, SpanStep, i, i+2, uint64(i), 0, 0)
	}
	got := tr.Spans()
	if len(got) != 3 {
		t.Fatalf("retained %d spans, want 3", len(got))
	}
	for i, s := range got {
		if s.Begin != int64(i) || s.A != uint64(i) {
			t.Fatalf("span %d = %+v: earliest spans must survive", i, s)
		}
	}
	if tr.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", tr.Dropped())
	}
	if tr.Total() != 5 {
		t.Fatalf("Total = %d, want 5", tr.Total())
	}
	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tr.Len())
	}
}

func TestSpanTracerMarkIsInstant(t *testing.T) {
	tr := NewSpanTracer(8)
	tr.Mark(LaneFault, MarkFault, 42, 1, 2, 0)
	got := tr.Spans()
	if len(got) != 1 || got[0].Begin != 42 || got[0].End != 42 || got[0].Duration() != 0 {
		t.Fatalf("mark = %+v", got)
	}
}

func TestSpanTracerMinimumCapacity(t *testing.T) {
	tr := NewSpanTracer(0)
	tr.Span(LaneSchedOn, SpanCopyRead, 1, 2, 0, 0, 0)
	tr.Span(LaneSchedOn, SpanCopyRead, 3, 4, 0, 0, 0)
	if tr.Len() != 1 || tr.Dropped() != 1 {
		t.Fatalf("len=%d dropped=%d, want 1/1", tr.Len(), tr.Dropped())
	}
}

func TestSpanJSONUsesStringNames(t *testing.T) {
	b, err := json.Marshal(Span{Lane: LaneSchedOff, Kind: SpanCopyWrite, Begin: 3, End: 9, A: 7})
	if err != nil {
		t.Fatal(err)
	}
	want := `{"lane":"sched off-pkg","kind":"copy-write","begin":3,"end":9,"a":7,"b":0,"c":0}`
	if string(b) != want {
		t.Fatalf("span json = %s\nwant       %s", b, want)
	}
}

// Every Lane and SpanKind must have a real name: trace lanes named
// "Lane(7)" mean a new constant was added without extending String().
func TestLaneStringExhaustive(t *testing.T) {
	seen := map[string]Lane{}
	for l := Lane(0); l < laneEnd; l++ {
		name := l.String()
		if strings.HasPrefix(name, "Lane(") {
			t.Errorf("Lane %d has no name", l)
		}
		if prev, dup := seen[name]; dup {
			t.Errorf("Lane %d and %d share name %q", prev, l, name)
		}
		seen[name] = l
	}
}

func TestSpanKindStringExhaustive(t *testing.T) {
	seen := map[string]SpanKind{}
	for k := SpanKind(1); k < spanKindEnd; k++ {
		name := k.String()
		if strings.HasPrefix(name, "SpanKind(") {
			t.Errorf("SpanKind %d has no name", k)
		}
		if prev, dup := seen[name]; dup {
			t.Errorf("SpanKind %d and %d share name %q", prev, k, name)
		}
		seen[name] = k
	}
	if SpanKind(0).String() != "SpanKind(0)" || spanKindEnd.String() != "SpanKind(13)" {
		t.Error("out-of-range kinds must render as SpanKind(n)")
	}
}

func TestRegistrySpansLifecycle(t *testing.T) {
	var nilReg *Registry
	if nilReg.EnableSpans(16) != nil || nilReg.Spans() != nil {
		t.Fatal("nil registry must return nil tracer")
	}
	r := NewRegistry()
	if r.Spans() != nil {
		t.Fatal("spans must be off until enabled")
	}
	tr := r.EnableSpans(16)
	if tr == nil || r.Spans() != tr {
		t.Fatal("EnableSpans must attach and return the tracer")
	}
	if again := r.EnableSpans(99); again != tr {
		t.Fatal("EnableSpans must be idempotent")
	}
	if r.EnableSpans(0) != tr {
		t.Fatal("EnableSpans(0) after enabling must keep the tracer")
	}
}

// WriteChromeTrace must produce JSON loadable by chrome://tracing /
// Perfetto: a traceEvents array where every event has name/ph/pid/tid,
// "X" events carry ts+dur, instants carry scope "t", and each lane is
// announced by thread_name metadata.
func TestWriteChromeTraceSchema(t *testing.T) {
	tr := NewSpanTracer(16)
	// Recorded out of begin order on purpose: the exporter sorts.
	tr.Span(LaneMigrator, SpanSwap, 100, 900, 7, 3, 2)
	tr.Span(LaneSchedOff, SpanCopyRead, 120, 340, 11, 0, 4096)
	tr.Mark(LaneMigrator, MarkEpoch, 50, 1, 0, 0)
	tr.Mark(LaneFault, MarkFault, 200, 2, 99, 0)

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr.Spans()); err != nil {
		t.Fatal(err)
	}
	var top struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
		Unit        string                   `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &top); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if top.Unit != "ns" {
		t.Fatalf("displayTimeUnit = %q", top.Unit)
	}

	threadNames := map[float64]string{}
	var complete, instant int
	var lastTS float64 = -1
	for _, ev := range top.TraceEvents {
		for _, req := range []string{"name", "ph", "pid", "tid"} {
			if _, ok := ev[req]; !ok {
				t.Fatalf("event missing %q: %v", req, ev)
			}
		}
		switch ev["ph"] {
		case "M":
			if ev["name"] == "thread_name" {
				args := ev["args"].(map[string]interface{})
				threadNames[ev["tid"].(float64)] = args["name"].(string)
			}
		case "X":
			complete++
			if _, ok := ev["dur"]; !ok {
				t.Fatalf("complete event missing dur: %v", ev)
			}
			fallthrough
		case "i":
			if ev["ph"] == "i" {
				instant++
				if ev["s"] != "t" {
					t.Fatalf("instant event missing thread scope: %v", ev)
				}
			}
			ts := ev["ts"].(float64)
			if ts < lastTS {
				t.Fatalf("events not sorted by ts: %v after %v", ts, lastTS)
			}
			lastTS = ts
		default:
			t.Fatalf("unexpected phase %v", ev["ph"])
		}
	}
	if complete != 2 || instant != 2 {
		t.Fatalf("complete=%d instant=%d, want 2/2", complete, instant)
	}
	for lane := Lane(0); lane < laneEnd; lane++ {
		if threadNames[float64(lane)] != lane.String() {
			t.Fatalf("lane %d thread_name = %q, want %q",
				lane, threadNames[float64(lane)], lane.String())
		}
	}
}

func TestWriteChromeTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var top struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &top); err != nil {
		t.Fatal(err)
	}
	// Metadata only: process_name + 2 per lane.
	if want := 1 + 2*int(laneEnd); len(top.TraceEvents) != want {
		t.Fatalf("empty trace has %d events, want %d", len(top.TraceEvents), want)
	}
}

func BenchmarkSpanRecord(b *testing.B) {
	tr := NewSpanTracer(1 << 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Span(LaneMigrator, SpanStep, int64(i), int64(i)+8, uint64(i), 0, 0)
	}
}

func BenchmarkNilSpanRecord(b *testing.B) {
	var tr *SpanTracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Span(LaneMigrator, SpanStep, int64(i), int64(i)+8, uint64(i), 0, 0)
	}
}
