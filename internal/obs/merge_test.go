package obs

import (
	"math/rand"
	"reflect"
	"testing"
)

// shardSnapshot builds one per-channel registry snapshot with overlapping
// and shard-unique instruments.
func shardSnapshot(shard int) *Snapshot {
	r := NewRegistry()
	r.Counter("mc.reads").Add(uint64(100 * (shard + 1)))
	r.Counter("mc.writes").Add(uint64(10 + shard))
	if shard%2 == 0 {
		r.Counter("mig.rollbacks").Inc()
	}
	r.Gauge("mig.slots_free").Set(int64(8 - shard))
	h := r.Histogram("mc.latency", DefaultLatencyBuckets())
	rng := rand.New(rand.NewSource(int64(shard + 1)))
	for i := 0; i < 500; i++ {
		h.Observe(int64(rng.Intn(4096)))
	}
	return r.Snapshot()
}

// TestMergeSnapshotsOrderIndependent pins the sharded-run metrics fold:
// merging the per-channel snapshots in any completion order produces the
// same aggregate — counters and gauges sum name-wise, histogram buckets
// add, and the recomputed mean comes from integer totals, so no order can
// perturb it.
func TestMergeSnapshotsOrderIndependent(t *testing.T) {
	parts := make([]*Snapshot, 4)
	for i := range parts {
		parts[i] = shardSnapshot(i)
	}
	want := MergeSnapshots(parts...)
	if want == nil {
		t.Fatal("merged snapshot is nil")
	}

	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		order := rng.Perm(len(parts))
		shuffled := make([]*Snapshot, len(parts))
		for i, j := range order {
			shuffled[i] = parts[j]
		}
		got := MergeSnapshots(shuffled...)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("merge order %v diverged:\n got %+v\nwant %+v", order, got, want)
		}
	}

	if got, wantV := want.Get("mc.reads"), uint64(100+200+300+400); got != wantV {
		t.Fatalf("mc.reads = %d, want %d", got, wantV)
	}
	if got := want.Get("mig.rollbacks"); got != 2 {
		t.Fatalf("mig.rollbacks = %d, want 2", got)
	}
	h := want.Histograms["mc.latency"]
	if h.Count != 4*500 {
		t.Fatalf("histogram count = %d, want 2000", h.Count)
	}
	if h.Mean != float64(h.Sum)/float64(h.Count) {
		t.Fatalf("histogram mean %v not recomputed from totals", h.Mean)
	}
}

// TestMergeSnapshotsNilParts: nil shard snapshots (channels with no
// registry) are skipped; all-nil input merges to nil.
func TestMergeSnapshotsNilParts(t *testing.T) {
	if MergeSnapshots(nil, nil) != nil {
		t.Fatal("all-nil merge should be nil")
	}
	one := shardSnapshot(1)
	got := MergeSnapshots(nil, one, nil)
	if got == nil || got.Get("mc.reads") != one.Get("mc.reads") {
		t.Fatal("nil parts must not perturb the merge")
	}
}
