package obs

import (
	"encoding/json"
	"testing"
)

func TestNilSafety(t *testing.T) {
	// A nil registry must hand out nil instruments whose methods all no-op:
	// this is the "metrics disabled" fast path.
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z", DefaultLatencyBuckets())
	ring := r.Events()
	c.Inc()
	c.Add(7)
	g.Set(3)
	g.Add(1)
	h.Observe(100)
	ring.Emit(1, EvEpoch, 0, 0, 0)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || ring.Total() != 0 {
		t.Fatal("nil instruments recorded something")
	}
	if r.Snapshot() != nil {
		t.Fatal("nil registry produced a snapshot")
	}
	if r.EnableEvents(8) != nil {
		t.Fatal("nil registry produced an event ring")
	}
}

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("swaps")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if r.Counter("swaps") != c {
		t.Fatal("re-registration returned a different counter")
	}
	g := r.Gauge("depth")
	g.Set(-3)
	g.Add(5)
	if g.Value() != 2 {
		t.Fatalf("gauge = %d, want 2", g.Value())
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []int64{10, 100, 1000})
	for _, v := range []int64{5, 10, 11, 99, 100, 5000} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Max() != 5000 {
		t.Fatalf("max = %d", h.Max())
	}
	snap := r.Snapshot().Histograms["lat"]
	want := []uint64{2, 3, 0, 1} // <=10: {5,10}; <=100: {11,99,100}; <=1000: {}; overflow: {5000}
	for i, w := range want {
		if snap.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, snap.Counts[i], w, snap.Counts)
		}
	}
	if q := h.Quantile(0.5); q != 100 {
		t.Fatalf("median bound = %d, want 100", q)
	}
	if q := h.Quantile(1); q != 5000 {
		t.Fatalf("p100 = %d, want max 5000", q)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(16, 4)
	want := []int64{16, 32, 64, 128}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", b, want)
		}
	}
}

func TestEventRingWraparound(t *testing.T) {
	ring := NewEventRing(3)
	for i := 0; i < 5; i++ {
		ring.Emit(int64(i), EvSwapStart, uint64(i), 0, 0)
	}
	if ring.Total() != 5 {
		t.Fatalf("total = %d", ring.Total())
	}
	evs := ring.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d events", len(evs))
	}
	for i, ev := range evs {
		if ev.Cycle != int64(i+2) {
			t.Fatalf("event %d cycle = %d, want %d (oldest-first)", i, ev.Cycle, i+2)
		}
	}
}

func TestEventRingPartial(t *testing.T) {
	ring := NewEventRing(8)
	ring.Emit(10, EvPStall, 42, 0, 0)
	evs := ring.Events()
	if len(evs) != 1 || evs[0].A != 42 || evs[0].Kind != EvPStall {
		t.Fatalf("events = %+v", evs)
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("memctrl.swap.completed").Add(2)
	r.Gauge("mig.epochs").Set(9)
	r.Histogram("memctrl.qlat.on", []int64{8, 16}).Observe(5)
	b, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["memctrl.swap.completed"] != 2 {
		t.Fatalf("roundtrip counters: %v", back.Counters)
	}
	if back.Gauges["mig.epochs"] != 9 {
		t.Fatalf("roundtrip gauges: %v", back.Gauges)
	}
	if h := back.Histograms["memctrl.qlat.on"]; h.Count != 1 || len(h.Counts) != 3 {
		t.Fatalf("roundtrip histogram: %+v", h)
	}
	// Event kinds marshal as names.
	eb, err := json.Marshal(Event{Cycle: 7, Kind: EvSwapDone, A: 1})
	if err != nil {
		t.Fatal(err)
	}
	if string(eb) != `{"cycle":7,"kind":"swap-done","a":1,"b":0,"c":0}` {
		t.Fatalf("event json = %s", eb)
	}
}

func TestSnapshotGetAndString(t *testing.T) {
	var s *Snapshot
	if s.Get("anything") != 0 {
		t.Fatal("nil snapshot Get")
	}
	if s.String() != "<no metrics>" {
		t.Fatal("nil snapshot String")
	}
	r := NewRegistry()
	r.Counter("a").Inc()
	s = r.Snapshot()
	if s.Get("a") != 1 || s.Get("missing") != 0 {
		t.Fatalf("Get: %v", s.Counters)
	}
	if s.String() == "" {
		t.Fatal("empty String")
	}
}

func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkNilCounterInc(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("x", DefaultLatencyBuckets())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i & 4095))
	}
}

func BenchmarkEventEmit(b *testing.B) {
	ring := NewEventRing(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ring.Emit(int64(i), EvCopyDone, 1, 2, 4096)
	}
}
