// Package trace defines the memory-access trace format of the Section IV
// evaluation and codecs for it. A trace record carries the fields the paper
// collected from its full-system simulator: physical address, CPU ID, time
// stamp, and read/write status of every main-memory access (i.e. L3 misses).
//
// Traces can be materialized to files (binary or text) or streamed from a
// generator without touching disk; the Source interface abstracts both.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Record is one main-memory access.
type Record struct {
	Cycle uint64 // CPU cycle of issue (3.2 GHz domain)
	Addr  uint64 // 48-bit physical address
	CPU   uint8  // issuing core
	Write bool   // true for store, false for load
}

// Source yields trace records in nondecreasing Cycle order.
// Next returns io.EOF after the last record.
type Source interface {
	Next() (Record, error)
}

// SliceSource serves records from an in-memory slice.
type SliceSource struct {
	recs []Record
	i    int
}

// NewSliceSource wraps recs; the slice is not copied.
func NewSliceSource(recs []Record) *SliceSource { return &SliceSource{recs: recs} }

// Next implements Source.
func (s *SliceSource) Next() (Record, error) {
	if s.i >= len(s.recs) {
		return Record{}, io.EOF
	}
	r := s.recs[s.i]
	s.i++
	return r, nil
}

// Reset rewinds the source to the first record.
func (s *SliceSource) Reset() { s.i = 0 }

// Collect drains a source into a slice, up to max records (0 = unlimited).
// A finite max pre-sizes the slice, so bounded collection never pays
// append growth copies.
func Collect(src Source, max int) ([]Record, error) {
	var out []Record
	if max > 0 {
		out = make([]Record, 0, max)
	}
	for max == 0 || len(out) < max {
		r, err := src.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}

const binaryMagic = "HMTR"

// binary record layout: cycle u64 | addr u64 | cpu u8 | flags u8, little endian.
const binRecSize = 8 + 8 + 1 + 1

// Writer encodes records to the binary trace format.
type Writer struct {
	w   *bufio.Writer
	n   uint64
	err error
}

// NewWriter writes the file header and returns a Writer.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return nil, fmt.Errorf("trace: writing header: %w", err)
	}
	return &Writer{w: bw}, nil
}

// Write appends one record.
func (w *Writer) Write(r Record) error {
	if w.err != nil {
		return w.err
	}
	var buf [binRecSize]byte
	binary.LittleEndian.PutUint64(buf[0:], r.Cycle)
	binary.LittleEndian.PutUint64(buf[8:], r.Addr)
	buf[16] = r.CPU
	if r.Write {
		buf[17] = 1
	}
	if _, err := w.w.Write(buf[:]); err != nil {
		w.err = fmt.Errorf("trace: writing record %d: %w", w.n, err)
		return w.err
	}
	w.n++
	return nil
}

// Count returns how many records have been written.
func (w *Writer) Count() uint64 { return w.n }

// Flush flushes buffered output.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// Reader decodes the binary trace format and implements Source.
type Reader struct {
	r *bufio.Reader
	n uint64 // records yielded so far
}

// NewReader validates the header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	return &Reader{r: br}, nil
}

// Next implements Source.
func (r *Reader) Next() (Record, error) {
	var buf [binRecSize]byte
	if _, err := io.ReadFull(r.r, buf[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return Record{}, io.EOF
		}
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return Record{}, fmt.Errorf("trace: truncated record: %w", err)
		}
		return Record{}, err
	}
	r.n++
	return Record{
		Cycle: binary.LittleEndian.Uint64(buf[0:]),
		Addr:  binary.LittleEndian.Uint64(buf[8:]),
		CPU:   buf[16],
		Write: buf[17] != 0,
	}, nil
}

// WriteText renders records in the human-readable text format, one record
// per line: "cycle addr cpu R|W" with addr in hex.
func WriteText(w io.Writer, src Source) (uint64, error) {
	bw := bufio.NewWriter(w)
	var n uint64
	for {
		r, err := src.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return n, err
		}
		rw := 'R'
		if r.Write {
			rw = 'W'
		}
		if _, err := fmt.Fprintf(bw, "%d 0x%x %d %c\n", r.Cycle, r.Addr, r.CPU, rw); err != nil {
			return n, fmt.Errorf("trace: writing text record %d: %w", n, err)
		}
		n++
	}
	return n, bw.Flush()
}

// TextReader parses the text format and implements Source.
type TextReader struct {
	sc   *bufio.Scanner
	line int
	n    uint64 // records yielded so far
}

// NewTextReader returns a TextReader over r.
func NewTextReader(r io.Reader) *TextReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	return &TextReader{sc: sc}
}

// Next implements Source.
func (t *TextReader) Next() (Record, error) {
	for t.sc.Scan() {
		t.line++
		line := strings.TrimSpace(t.sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		if len(f) != 4 {
			return Record{}, fmt.Errorf("trace: line %d: want 4 fields, got %d", t.line, len(f))
		}
		cycle, err := strconv.ParseUint(f[0], 10, 64)
		if err != nil {
			return Record{}, fmt.Errorf("trace: line %d: cycle: %w", t.line, err)
		}
		a, err := strconv.ParseUint(strings.TrimPrefix(f[1], "0x"), 16, 64)
		if err != nil {
			return Record{}, fmt.Errorf("trace: line %d: addr: %w", t.line, err)
		}
		cpu, err := strconv.ParseUint(f[2], 10, 8)
		if err != nil {
			return Record{}, fmt.Errorf("trace: line %d: cpu: %w", t.line, err)
		}
		var write bool
		switch f[3] {
		case "R":
		case "W":
			write = true
		default:
			return Record{}, fmt.Errorf("trace: line %d: bad rw flag %q", t.line, f[3])
		}
		t.n++
		return Record{Cycle: cycle, Addr: a, CPU: uint8(cpu), Write: write}, nil
	}
	if err := t.sc.Err(); err != nil {
		return Record{}, err
	}
	return Record{}, io.EOF
}
