package trace

import (
	"bytes"
	"strings"
	"testing"

	"heteromem/internal/snap"
)

func positionTestRecords(n int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{Cycle: uint64(i * 10), Addr: uint64(i) << 6, CPU: uint8(i % 4), Write: i%3 == 0}
	}
	return recs
}

// sources builds one of each Positioner implementation over the same records.
func positionSources(t *testing.T, recs []Record) map[string]Positioner {
	t.Helper()
	var bin bytes.Buffer
	w, err := NewWriter(&bin)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	rd, err := NewReader(bytes.NewReader(bin.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var txt bytes.Buffer
	if _, err := WriteText(&txt, NewSliceSource(recs)); err != nil {
		t.Fatal(err)
	}
	return map[string]Positioner{
		"slice":  NewSliceSource(recs),
		"binary": rd,
		"text":   NewTextReader(strings.NewReader(txt.String())),
	}
}

func TestPositionerSkipTo(t *testing.T) {
	recs := positionTestRecords(20)
	for name, src := range positionSources(t, recs) {
		t.Run(name, func(t *testing.T) {
			if got := src.Position(); got != 0 {
				t.Fatalf("initial position = %d, want 0", got)
			}
			if err := src.SkipTo(0); err != nil {
				t.Fatalf("skip-to-zero: %v", err)
			}
			if err := src.SkipTo(7); err != nil {
				t.Fatalf("SkipTo(7): %v", err)
			}
			if got := src.Position(); got != 7 {
				t.Fatalf("position after skip = %d, want 7", got)
			}
			r, err := src.Next()
			if err != nil {
				t.Fatalf("Next after skip: %v", err)
			}
			if r != recs[7] {
				t.Fatalf("record after skip = %+v, want %+v", r, recs[7])
			}
			if got := src.Position(); got != 8 {
				t.Fatalf("position after next = %d, want 8", got)
			}
			// Skipping to the exact record count parks the source at EOF.
			if err := src.SkipTo(uint64(len(recs))); err != nil {
				t.Fatalf("SkipTo(end): %v", err)
			}
			if _, err := src.Next(); err == nil {
				t.Fatal("Next at end should return EOF")
			}
		})
	}
}

func TestPositionerSkipPastEOF(t *testing.T) {
	recs := positionTestRecords(5)
	for name, src := range positionSources(t, recs) {
		t.Run(name, func(t *testing.T) {
			if err := src.SkipTo(uint64(len(recs)) + 1); err == nil {
				t.Fatal("skip past EOF should fail")
			}
		})
	}
}

func TestStreamingSkipBackward(t *testing.T) {
	recs := positionTestRecords(5)
	for name, src := range positionSources(t, recs) {
		if name == "slice" {
			// In-memory sources may rewind.
			if err := src.SkipTo(3); err != nil {
				t.Fatal(err)
			}
			if err := src.SkipTo(1); err != nil {
				t.Fatalf("slice rewind: %v", err)
			}
			continue
		}
		t.Run(name, func(t *testing.T) {
			if err := src.SkipTo(3); err != nil {
				t.Fatal(err)
			}
			if err := src.SkipTo(1); err == nil {
				t.Fatal("backward seek on a streaming source should fail")
			}
		})
	}
}

// snapSource is a Snapshotter test double: a counting source whose only
// state is how many records it has emitted.
type snapSource struct{ n uint64 }

func (s *snapSource) Next() (Record, error) {
	r := Record{Cycle: s.n * 10, Addr: s.n << 6}
	s.n++
	return r, nil
}
func (s *snapSource) SnapshotTo(e *snap.Encoder) { e.U64(s.n) }
func (s *snapSource) RestoreFrom(d *snap.Decoder) error {
	s.n = d.U64()
	return d.Err()
}

// limitRoundTrip snapshots l after consuming k records and restores the
// snapshot into fresh, returning the next record from each.
func limitRoundTrip(t *testing.T, l, fresh *Limit, k int) (Record, Record) {
	t.Helper()
	for i := 0; i < k; i++ {
		if _, err := l.Next(); err != nil {
			t.Fatal(err)
		}
	}
	e := snap.NewEncoder()
	e.Section("limit")
	l.SnapshotTo(e)
	data, err := e.Finish()
	if err != nil {
		t.Fatal(err)
	}
	d, err := snap.NewDecoder(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Section("limit"); err != nil {
		t.Fatal(err)
	}
	if err := fresh.RestoreFrom(d); err != nil {
		t.Fatal(err)
	}
	want, err := l.Next()
	if err != nil {
		t.Fatal(err)
	}
	got, err := fresh.Next()
	if err != nil {
		t.Fatal(err)
	}
	return want, got
}

func TestLimitSnapshotSnapshotterSource(t *testing.T) {
	want, got := limitRoundTrip(t, NewLimit(&snapSource{}, 10), NewLimit(&snapSource{}, 10), 4)
	if want != got {
		t.Fatalf("restored Limit yielded %+v, want %+v", got, want)
	}
}

func TestLimitSnapshotPositionerSource(t *testing.T) {
	recs := positionTestRecords(12)
	want, got := limitRoundTrip(t, NewLimit(NewSliceSource(recs), 10), NewLimit(NewSliceSource(recs), 10), 4)
	if want != got {
		t.Fatalf("restored Limit yielded %+v, want %+v", got, want)
	}
}

func TestLimitSnapshotUnsupportedSource(t *testing.T) {
	l := NewLimit(NewMerge(0, false), 10)
	e := snap.NewEncoder()
	e.Section("limit")
	l.SnapshotTo(e)
	if _, err := e.Finish(); err == nil {
		t.Fatal("snapshotting a Limit over a non-checkpointable source should fail")
	}
}
