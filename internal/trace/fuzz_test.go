package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

// drainText parses every record out of data, stopping at the first error.
func drainText(data []byte) ([]Record, error) {
	tr := NewTextReader(bytes.NewReader(data))
	var recs []Record
	for {
		r, err := tr.Next()
		if errors.Is(err, io.EOF) {
			return recs, nil
		}
		if err != nil {
			return recs, err
		}
		recs = append(recs, r)
	}
}

// FuzzTextReader feeds arbitrary bytes to the text parser. The parser must
// never panic; whatever it does accept must survive a render/re-parse
// round trip unchanged.
func FuzzTextReader(f *testing.F) {
	f.Add([]byte("100 0x1000 0 R\n200 0x2000 1 W\n"))
	f.Add([]byte("# comment\n\n  5 0xdeadbeef 255 W  \n"))
	f.Add([]byte("1 1000 0 R\n")) // hex field without 0x prefix
	f.Add([]byte("18446744073709551615 0xffffffffffffffff 255 W\n"))
	f.Add([]byte("1 0x1 0 X\n"))    // bad rw flag
	f.Add([]byte("1 0x1 256 R\n"))  // cpu out of uint8 range
	f.Add([]byte("1 0x1 0\n"))      // too few fields
	f.Add([]byte("1 0x1 0 R R\n"))  // too many fields
	f.Add([]byte("-1 0x1 0 R\n"))   // negative cycle
	f.Add([]byte("1 0x 0 R\n"))     // empty hex digits
	f.Add([]byte("\x00\xff\x00 R")) // binary noise
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := drainText(data)
		if err != nil {
			return // rejected input: any error is fine, panics are not
		}
		// Accepted input must round-trip exactly.
		var buf bytes.Buffer
		n, werr := WriteText(&buf, NewSliceSource(recs))
		if werr != nil {
			t.Fatalf("WriteText failed on parsed records: %v", werr)
		}
		if n != uint64(len(recs)) {
			t.Fatalf("WriteText wrote %d of %d records", n, len(recs))
		}
		again, rerr := drainText(buf.Bytes())
		if rerr != nil {
			t.Fatalf("re-parse of rendered output failed: %v\noutput: %q", rerr, buf.String())
		}
		if len(again) != len(recs) {
			t.Fatalf("round trip changed record count: %d != %d", len(again), len(recs))
		}
		for i := range recs {
			if recs[i] != again[i] {
				t.Fatalf("record %d changed in round trip: %+v != %+v", i, recs[i], again[i])
			}
		}
	})
}

// FuzzPackedTrace exercises the packed columnar codec from both ends.
// The input bytes are first decoded as fixed-width records and driven
// through packed encode -> chunk decode -> []Record equality (including a
// file-format round trip); then the same bytes are fed to ReadPacked as an
// untrusted file, which must reject corruption with an error — never a
// panic — and anything it accepts must survive re-encoding unchanged.
func FuzzPackedTrace(f *testing.F) {
	var good bytes.Buffer
	if _, err := PackRecords([]Record{
		{Cycle: 1, Addr: 0x1000, CPU: 0, Write: false},
		{Cycle: 9, Addr: 0x2040, CPU: 3, Write: true},
		{Cycle: 2, Addr: 1 << 40, CPU: 255, Write: false}, // cycle steps backwards
	}).WriteTo(&good); err != nil {
		f.Fatal(err)
	}
	f.Add(good.Bytes())
	f.Add(good.Bytes()[:len(good.Bytes())-3]) // truncated payload
	f.Add([]byte("HMPK"))                     // header only
	f.Add([]byte("HMTR\x00\x00"))             // wrong container
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Arbitrary bytes as records: 18-byte groups, like the binary
		// record framing (cycle u64 | addr u64 | cpu u8 | flags u8).
		recs := make([]Record, 0, len(data)/18)
		for len(data)-len(recs)*18 >= 18 {
			d := data[len(recs)*18:]
			recs = append(recs, Record{
				Cycle: binary.LittleEndian.Uint64(d[0:8]),
				Addr:  binary.LittleEndian.Uint64(d[8:16]),
				CPU:   d[16],
				Write: d[17]&1 != 0,
			})
		}
		p := PackRecords(recs)
		check := func(label string, q *Packed) {
			got, err := Collect(NewPackedSource(q), 0)
			if err != nil {
				t.Fatalf("%s: decode: %v", label, err)
			}
			if len(got) != len(recs) {
				t.Fatalf("%s: decoded %d records, want %d", label, len(got), len(recs))
			}
			for i := range recs {
				if got[i] != recs[i] {
					t.Fatalf("%s: record %d changed: %+v != %+v", label, i, got[i], recs[i])
				}
			}
		}
		check("in-memory", p)
		var buf bytes.Buffer
		if _, err := p.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := ReadPacked(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-read of written packed trace failed: %v", err)
		}
		check("file round trip", back)

		// The raw input as an untrusted packed file: errors are fine,
		// panics are not, and accepted input must re-encode stably.
		q, err := ReadPacked(bytes.NewReader(data))
		if err != nil {
			return
		}
		if q.NumRecords() > 1<<22 {
			return // bound fuzz work on giant claimed traces
		}
		first, err := Collect(NewPackedSource(q), 0)
		if err != nil {
			t.Fatalf("accepted packed file failed to decode: %v", err)
		}
		again := PackRecords(first)
		second, err := Collect(NewPackedSource(again), 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(first) != len(second) {
			t.Fatalf("re-encode changed record count: %d != %d", len(first), len(second))
		}
		for i := range first {
			if first[i] != second[i] {
				t.Fatalf("re-encode changed record %d: %+v != %+v", i, first[i], second[i])
			}
		}
	})
}

// FuzzReader feeds arbitrary bytes to the binary decoder. Truncated or
// corrupt input must produce errors, never panics; valid frames must
// round-trip through Writer unchanged.
func FuzzReader(f *testing.F) {
	// A well-formed two-record trace as a seed.
	var good bytes.Buffer
	w, err := NewWriter(&good)
	if err != nil {
		f.Fatal(err)
	}
	_ = w.Write(Record{Cycle: 1, Addr: 0x1000, CPU: 0, Write: false})
	_ = w.Write(Record{Cycle: 2, Addr: 0x2000, CPU: 3, Write: true})
	if err := w.Flush(); err != nil {
		f.Fatal(err)
	}
	f.Add(good.Bytes())
	f.Add([]byte("HMTR"))                     // header only
	f.Add([]byte("HMTRxx"))                   // truncated record
	f.Add([]byte("XXXX"))                     // bad magic
	f.Add([]byte(""))                         // empty
	f.Add(good.Bytes()[:len(good.Bytes())-1]) // last record truncated
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		var recs []Record
		for {
			rec, err := r.Next()
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				return // truncation etc.: error, not panic
			}
			recs = append(recs, rec)
			if len(recs) > 1<<16 {
				break // bound fuzz work on giant inputs
			}
		}
		// Fully decoded input: re-encode and compare.
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			t.Fatal(err)
		}
		for _, rec := range recs {
			if err := w.Write(rec); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		r2, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-read of re-encoded trace failed: %v", err)
		}
		for i, want := range recs {
			got, err := r2.Next()
			if err != nil {
				t.Fatalf("record %d: %v", i, err)
			}
			if got != want {
				t.Fatalf("record %d changed in round trip: %+v != %+v", i, got, want)
			}
		}
		if _, err := r2.Next(); !errors.Is(err, io.EOF) {
			t.Fatalf("expected EOF after %d records, got %v", len(recs), err)
		}
	})
}
