package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math/bits"
	"sort"
)

// Packed is a compressed in-memory trace: records are grouped into chunks
// of up to PackedChunkRecords, and each chunk bit-packs its columns at the
// minimum widths that cover the chunk — cycles as deltas from the previous
// record, addresses as shifted offsets from the chunk's minimum address,
// CPUs and the write flag as narrow integers. The paper's sweep drivers
// replay the same trace across dozens of configurations, so the packed
// form is built once per workload and decoded chunk-at-a-time into a
// caller-owned Batch with zero allocations on the decode path.
//
// Typical traces from the built-in generators pack to ~5–6 bytes/record
// against 24 bytes/record for []Record.
type Packed struct {
	chunks []packedChunk
	n      uint64
}

// PackedChunkRecords is the maximum (and, for builder output, the usual)
// number of records per packed chunk. It matches the run loop's cancel
// stride so a decoded chunk is one run-loop batch.
const PackedChunkRecords = 4096

// PackedMagic is the 4-byte magic that opens the packed container format;
// external tools use it to tell packed files from the per-record binary
// format.
const PackedMagic = "HMPK"

// maxChunkRecords bounds the per-chunk record count accepted from
// untrusted files, limiting what a corrupt header can make ReadPacked
// allocate.
const maxChunkRecords = 1 << 20

type packedChunk struct {
	start     uint64 // absolute index of the chunk's first record
	count     uint32
	baseCycle uint64 // cycle of the first record
	baseAddr  uint64 // minimum address in the chunk
	addrShift uint8  // trailing zero bits common to all address offsets
	cycleBits uint8  // width of each cycle delta (0..64)
	addrBits  uint8  // width of each shifted address offset (0..64)
	cpuBits   uint8  // width of each CPU id (0..8)
	writeBits uint8  // 0 when the whole chunk is reads, else 1
	data      []byte // bit-packed columns; padded for unaligned 64-bit loads
}

// payloadPad is the in-memory slack appended to each chunk payload so the
// bit readers/writers can issue unaligned 64-bit loads and stores at the
// tail without bounds failures. It is not written to files.
const payloadPad = 8

// payloadLen returns the on-disk payload size in bytes (without padding).
func (c *packedChunk) payloadLen() uint64 {
	bits := uint64(c.count) * uint64(c.cycleBits+c.addrBits+c.cpuBits+c.writeBits)
	return (bits + 7) / 8
}

// putBits writes the low width bits of v at bit offset bitoff. The buffer
// must be zeroed past the write cursor and padded by payloadPad bytes.
func putBits(buf []byte, bitoff uint64, width uint8, v uint64) {
	if width == 0 {
		return
	}
	if width < 64 {
		v &= 1<<width - 1
	}
	off, sh := bitoff>>3, bitoff&7
	w := binary.LittleEndian.Uint64(buf[off:]) | v<<sh
	binary.LittleEndian.PutUint64(buf[off:], w)
	if sh+uint64(width) > 64 {
		buf[off+8] |= byte(v >> (64 - sh))
	}
}

// getBits reads width bits at bit offset bitoff. The buffer must be padded
// by payloadPad bytes past the last payload byte.
func getBits(buf []byte, bitoff uint64, width uint8) uint64 {
	if width == 0 {
		return 0
	}
	off, sh := bitoff>>3, bitoff&7
	v := binary.LittleEndian.Uint64(buf[off:]) >> sh
	if sh+uint64(width) > 64 {
		v |= uint64(buf[off+8]) << (64 - sh)
	}
	if width < 64 {
		v &= 1<<width - 1
	}
	return v
}

// packChunk encodes the first n records of b into a chunk. Cycle deltas
// use wrapping arithmetic, so even non-monotone cycle sequences round-trip
// exactly (a backwards step just costs a 64-bit delta column).
func packChunk(b *Batch, n int) packedChunk {
	c := packedChunk{count: uint32(n), baseCycle: b.Cycle[0]}
	var maxDelta uint64
	prev := c.baseCycle
	for _, cyc := range b.Cycle[:n] {
		if d := cyc - prev; d > maxDelta {
			maxDelta = d
		}
		prev = cyc
	}
	c.cycleBits = uint8(bits.Len64(maxDelta))

	c.baseAddr = b.Addr[0]
	for _, a := range b.Addr[1:n] {
		if a < c.baseAddr {
			c.baseAddr = a
		}
	}
	var orOff, maxOff uint64
	for _, a := range b.Addr[:n] {
		off := a - c.baseAddr
		orOff |= off
		if off > maxOff {
			maxOff = off
		}
	}
	if orOff != 0 {
		c.addrShift = uint8(bits.TrailingZeros64(orOff))
	}
	c.addrBits = uint8(bits.Len64(maxOff >> c.addrShift))

	var maxCPU uint8
	for _, cpu := range b.CPU[:n] {
		if cpu > maxCPU {
			maxCPU = cpu
		}
	}
	c.cpuBits = uint8(bits.Len8(maxCPU))
	for _, w := range b.Write[:n] {
		if w {
			c.writeBits = 1
			break
		}
	}

	c.data = make([]byte, c.payloadLen()+payloadPad)
	bitoff := uint64(0)
	prev = c.baseCycle
	for _, cyc := range b.Cycle[:n] {
		putBits(c.data, bitoff, c.cycleBits, cyc-prev)
		prev = cyc
		bitoff += uint64(c.cycleBits)
	}
	for _, a := range b.Addr[:n] {
		putBits(c.data, bitoff, c.addrBits, (a-c.baseAddr)>>c.addrShift)
		bitoff += uint64(c.addrBits)
	}
	for _, cpu := range b.CPU[:n] {
		putBits(c.data, bitoff, c.cpuBits, uint64(cpu))
		bitoff += uint64(c.cpuBits)
	}
	if c.writeBits != 0 {
		for _, w := range b.Write[:n] {
			if w {
				putBits(c.data, bitoff, 1, 1)
			}
			bitoff++
		}
	}
	return c
}

// decode expands the chunk into b, which the caller must have resized to
// the chunk's record count. It allocates nothing.
func (c *packedChunk) decode(b *Batch) {
	n := int(c.count)
	bitoff := uint64(0)
	cyc := c.baseCycle
	for k := 0; k < n; k++ {
		cyc += getBits(c.data, bitoff, c.cycleBits)
		b.Cycle[k] = cyc
		bitoff += uint64(c.cycleBits)
	}
	for k := 0; k < n; k++ {
		b.Addr[k] = c.baseAddr + getBits(c.data, bitoff, c.addrBits)<<c.addrShift
		bitoff += uint64(c.addrBits)
	}
	for k := 0; k < n; k++ {
		b.CPU[k] = uint8(getBits(c.data, bitoff, c.cpuBits))
		bitoff += uint64(c.cpuBits)
	}
	if c.writeBits == 0 {
		for k := range b.Write[:n] {
			b.Write[k] = false
		}
	} else {
		for k := 0; k < n; k++ {
			b.Write[k] = getBits(c.data, bitoff, 1) != 0
			bitoff++
		}
	}
}

// NumRecords returns the number of records in the packed trace.
func (p *Packed) NumRecords() uint64 { return p.n }

// EncodedBytes returns the packed size in bytes as written by WriteTo
// (headers included); compare against 24×NumRecords for the in-memory
// []Record footprint.
func (p *Packed) EncodedBytes() uint64 {
	total := uint64(4 + 8 + 4)
	for i := range p.chunks {
		total += chunkHeaderSize + p.chunks[i].payloadLen()
	}
	return total
}

// PackedBuilder accumulates records and packs them into chunks.
type PackedBuilder struct {
	p   *Packed
	buf Batch
	n   int // pending records in buf
}

// NewPackedBuilder returns an empty builder.
func NewPackedBuilder() *PackedBuilder {
	pb := &PackedBuilder{p: &Packed{}}
	pb.buf.Resize(PackedChunkRecords)
	return pb
}

// Count returns the number of records appended so far.
func (pb *PackedBuilder) Count() uint64 { return pb.p.n + uint64(pb.n) }

// Append adds one record.
func (pb *PackedBuilder) Append(r Record) {
	pb.buf.Set(pb.n, r)
	pb.n++
	if pb.n == PackedChunkRecords {
		pb.flush()
	}
}

// AppendBatch adds the first k records of b.
func (pb *PackedBuilder) AppendBatch(b *Batch, k int) {
	done := 0
	for done < k {
		take := PackedChunkRecords - pb.n
		if rem := k - done; rem < take {
			take = rem
		}
		pb.buf.copyFrom(b, pb.n, done, take)
		pb.n += take
		done += take
		if pb.n == PackedChunkRecords {
			pb.flush()
		}
	}
}

func (pb *PackedBuilder) flush() {
	if pb.n == 0 {
		return
	}
	c := packChunk(&pb.buf, pb.n)
	c.start = pb.p.n
	pb.p.chunks = append(pb.p.chunks, c)
	pb.p.n += uint64(pb.n)
	pb.n = 0
}

// Finish flushes the pending partial chunk and returns the packed trace.
// The builder must not be used afterwards.
func (pb *PackedBuilder) Finish() *Packed {
	pb.flush()
	return pb.p
}

// Pack drains src into a packed trace, stopping after max records when
// max > 0 (or at EOF, whichever comes first).
func Pack(src Source, max uint64) (*Packed, error) {
	pb := NewPackedBuilder()
	var b Batch
	for max == 0 || pb.Count() < max {
		want := PackedChunkRecords
		if max > 0 {
			if rem := max - pb.Count(); rem < uint64(want) {
				want = int(rem)
			}
		}
		b.Resize(want)
		k, err := ReadBatch(src, &b)
		if k > 0 {
			pb.AppendBatch(&b, k)
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if k == 0 {
			return nil, fmt.Errorf("trace: pack: source returned no progress: %w", io.ErrNoProgress)
		}
	}
	return pb.Finish(), nil
}

// PackRecords packs a record slice.
func PackRecords(recs []Record) *Packed {
	p, err := Pack(NewSliceSource(recs), 0)
	if err != nil { // SliceSource cannot fail
		panic(err)
	}
	return p
}

// PackedSource replays a packed trace, decoding one chunk at a time into
// an internal batch. It implements Source, BatchSource, and Positioner
// (random access via SkipTo, so packed replays checkpoint and resume like
// slice-backed ones).
type PackedSource struct {
	p   *Packed
	buf Batch
	ci  int    // index of the chunk decoded into buf; -1 before the first
	bi  int    // cursor within buf
	pos uint64 // absolute index of the next record to yield
}

// NewPackedSource returns a source positioned at the first record.
func NewPackedSource(p *Packed) *PackedSource {
	return &PackedSource{p: p, ci: -1}
}

// loadNext decodes the next chunk into the internal batch.
func (s *PackedSource) loadNext() bool {
	if s.ci+1 >= len(s.p.chunks) {
		return false
	}
	s.ci++
	s.load()
	return true
}

func (s *PackedSource) load() {
	c := &s.p.chunks[s.ci]
	s.buf.Resize(int(c.count))
	c.decode(&s.buf)
	s.bi = 0
}

// Next implements Source.
func (s *PackedSource) Next() (Record, error) {
	if s.bi >= s.buf.Len() {
		if !s.loadNext() {
			return Record{}, io.EOF
		}
	}
	r := s.buf.Record(s.bi)
	s.bi++
	s.pos++
	return r, nil
}

// NextBatch implements BatchSource by copying decoded columns into b.
func (s *PackedSource) NextBatch(b *Batch) (int, error) {
	want := b.Len()
	n := 0
	for n < want {
		if s.bi >= s.buf.Len() {
			if !s.loadNext() {
				break
			}
		}
		take := want - n
		if rem := s.buf.Len() - s.bi; rem < take {
			take = rem
		}
		b.copyFrom(&s.buf, n, s.bi, take)
		n += take
		s.bi += take
	}
	s.pos += uint64(n)
	if n == 0 && want > 0 {
		return 0, io.EOF
	}
	return n, nil
}

// Position implements Positioner.
func (s *PackedSource) Position() uint64 { return s.pos }

// SkipTo implements Positioner: packed sources seek in both directions
// (a seek decodes at most one chunk).
func (s *PackedSource) SkipTo(n uint64) error {
	if n > s.p.n {
		return fmt.Errorf("trace: skip to record %d past end of %d-record trace", n, s.p.n)
	}
	if len(s.p.chunks) == 0 { // n must be 0
		s.pos = 0
		return nil
	}
	ci := sort.Search(len(s.p.chunks), func(i int) bool { return s.p.chunks[i].start > n }) - 1
	if n == s.p.n {
		// One past the last record: park the cursor at the end of the
		// final chunk so the next read reports EOF.
		ci = len(s.p.chunks) - 1
	}
	if ci != s.ci {
		s.ci = ci
		s.load()
	}
	s.bi = int(n - s.p.chunks[ci].start)
	s.pos = n
	return nil
}

// Reset rewinds to the first record.
func (s *PackedSource) Reset() {
	if err := s.SkipTo(0); err != nil { // cannot fail for 0
		panic(err)
	}
}

// chunkHeaderSize is the on-disk per-chunk header: count u32, baseCycle
// u64, baseAddr u64, then addrShift/cycleBits/addrBits/cpuBits/writeBits
// as single bytes. The payload length is derived from count and the
// widths, so it is not stored.
const chunkHeaderSize = 4 + 8 + 8 + 5

// WriteTo writes the packed trace in the HMPK container format:
// magic, total record count (u64), chunk count (u32), then each chunk's
// header followed by its payload. All integers are little-endian.
func (p *Packed) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var written int64
	put := func(b []byte) error {
		n, err := bw.Write(b)
		written += int64(n)
		return err
	}
	var hdr [chunkHeaderSize]byte
	if err := put([]byte(PackedMagic)); err != nil {
		return written, err
	}
	binary.LittleEndian.PutUint64(hdr[:8], p.n)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(p.chunks)))
	if err := put(hdr[:12]); err != nil {
		return written, err
	}
	for i := range p.chunks {
		c := &p.chunks[i]
		binary.LittleEndian.PutUint32(hdr[0:4], c.count)
		binary.LittleEndian.PutUint64(hdr[4:12], c.baseCycle)
		binary.LittleEndian.PutUint64(hdr[12:20], c.baseAddr)
		hdr[20] = c.addrShift
		hdr[21] = c.cycleBits
		hdr[22] = c.addrBits
		hdr[23] = c.cpuBits
		hdr[24] = c.writeBits
		if err := put(hdr[:]); err != nil {
			return written, err
		}
		if err := put(c.data[:c.payloadLen()]); err != nil {
			return written, err
		}
	}
	return written, bw.Flush()
}

// ReadPacked parses a packed trace from r, validating every header field
// so corrupt or truncated input is rejected rather than decoded into
// garbage. The whole trace is loaded into memory (packed, so ~4–5× smaller
// than the records it holds).
func ReadPacked(r io.Reader) (*Packed, error) {
	br := bufio.NewReader(r)
	var hdr [chunkHeaderSize]byte
	if _, err := io.ReadFull(br, hdr[:4]); err != nil {
		return nil, fmt.Errorf("trace: packed header: %w", err)
	}
	if string(hdr[:4]) != PackedMagic {
		return nil, fmt.Errorf("trace: bad magic %q", hdr[:4])
	}
	if _, err := io.ReadFull(br, hdr[:12]); err != nil {
		return nil, fmt.Errorf("trace: packed header: %w", err)
	}
	p := &Packed{n: binary.LittleEndian.Uint64(hdr[:8])}
	nchunks := binary.LittleEndian.Uint32(hdr[8:12])
	var start uint64
	for i := uint32(0); i < nchunks; i++ {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return nil, fmt.Errorf("trace: packed chunk %d header: %w", i, err)
		}
		c := packedChunk{
			start:     start,
			count:     binary.LittleEndian.Uint32(hdr[0:4]),
			baseCycle: binary.LittleEndian.Uint64(hdr[4:12]),
			baseAddr:  binary.LittleEndian.Uint64(hdr[12:20]),
			addrShift: hdr[20],
			cycleBits: hdr[21],
			addrBits:  hdr[22],
			cpuBits:   hdr[23],
			writeBits: hdr[24],
		}
		switch {
		case c.count == 0 || c.count > maxChunkRecords:
			return nil, fmt.Errorf("trace: packed chunk %d: bad record count %d", i, c.count)
		case c.cycleBits > 64 || c.addrBits > 64 || c.cpuBits > 8 || c.writeBits > 1:
			return nil, fmt.Errorf("trace: packed chunk %d: bad column widths %d/%d/%d/%d",
				i, c.cycleBits, c.addrBits, c.cpuBits, c.writeBits)
		case c.addrShift > 63 || (c.addrBits > 0 && uint(c.addrBits)+uint(c.addrShift) > 64):
			return nil, fmt.Errorf("trace: packed chunk %d: bad address shift %d for %d-bit offsets",
				i, c.addrShift, c.addrBits)
		}
		plen := c.payloadLen()
		c.data = make([]byte, plen+payloadPad)
		if _, err := io.ReadFull(br, c.data[:plen]); err != nil {
			return nil, fmt.Errorf("trace: packed chunk %d payload: %w", i, err)
		}
		start += uint64(c.count)
		p.chunks = append(p.chunks, c)
	}
	if start != p.n {
		return nil, fmt.Errorf("trace: packed trace claims %d records but chunks hold %d", p.n, start)
	}
	if _, err := br.ReadByte(); err != io.EOF {
		if err != nil {
			return nil, fmt.Errorf("trace: after packed trace: %w", err)
		}
		return nil, fmt.Errorf("trace: trailing data after packed trace")
	}
	return p, nil
}
