package trace

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"testing/quick"
)

func sample() []Record {
	return []Record{
		{Cycle: 1, Addr: 0x1000, CPU: 0, Write: false},
		{Cycle: 5, Addr: 0xdeadbeef, CPU: 3, Write: true},
		{Cycle: 9, Addr: 0xffff_ffff_ffff, CPU: 1, Write: false},
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range sample() {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 3 {
		t.Fatalf("count = %d", w.Count())
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Collect(r, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("read %d records", len(got))
	}
	for i, want := range sample() {
		if got[i] != want {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], want)
		}
	}
}

func TestBadMagicRejected(t *testing.T) {
	if _, err := NewReader(strings.NewReader("NOPE....")); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Write(sample()[0])
	w.Flush()
	raw := buf.Bytes()[:buf.Len()-3] // chop mid-record
	r, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("truncated record: err = %v, want explicit error", err)
	}
}

func TestTextRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	n, err := WriteText(&buf, NewSliceSource(sample()))
	if err != nil || n != 3 {
		t.Fatalf("WriteText = %d, %v", n, err)
	}
	got, err := Collect(NewTextReader(&buf), 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range sample() {
		if got[i] != want {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], want)
		}
	}
}

func TestTextReaderSkipsCommentsAndBlanks(t *testing.T) {
	in := "# header\n\n1 0x40 0 R\n  \n2 0x80 1 W\n"
	got, err := Collect(NewTextReader(strings.NewReader(in)), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || !got[1].Write {
		t.Fatalf("got %+v", got)
	}
}

func TestTextReaderErrors(t *testing.T) {
	bad := []string{
		"1 0x40 0",     // too few fields
		"x 0x40 0 R",   // bad cycle
		"1 zz 0 R",     // bad addr
		"1 0x40 999 R", // cpu out of range
		"1 0x40 0 Q",   // bad rw
	}
	for _, line := range bad {
		if _, err := NewTextReader(strings.NewReader(line)).Next(); err == nil {
			t.Errorf("line %q accepted", line)
		}
	}
}

func TestSliceSourceReset(t *testing.T) {
	s := NewSliceSource(sample())
	Collect(s, 0)
	if _, err := s.Next(); !errors.Is(err, io.EOF) {
		t.Fatal("drained source should EOF")
	}
	s.Reset()
	got, _ := Collect(s, 0)
	if len(got) != 3 {
		t.Fatal("reset did not rewind")
	}
}

func TestLimit(t *testing.T) {
	got, err := Collect(NewLimit(NewSliceSource(sample()), 2), 0)
	if err != nil || len(got) != 2 {
		t.Fatalf("limit: %d records, %v", len(got), err)
	}
}

func TestCollectMax(t *testing.T) {
	got, _ := Collect(NewSliceSource(sample()), 1)
	if len(got) != 1 {
		t.Fatalf("collect max: %d", len(got))
	}
}

func TestMergeOrdersByCycle(t *testing.T) {
	a := NewSliceSource([]Record{{Cycle: 1, Addr: 0}, {Cycle: 10, Addr: 64}})
	b := NewSliceSource([]Record{{Cycle: 5, Addr: 128}, {Cycle: 6, Addr: 192}})
	m := NewMerge(0, false, a, b)
	got, err := Collect(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("merged %d records", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Cycle < got[i-1].Cycle {
			t.Fatalf("merge out of order: %v", got)
		}
	}
}

func TestMergeStripesAndRelabels(t *testing.T) {
	a := NewSliceSource([]Record{{Cycle: 1, Addr: 100, CPU: 9}})
	b := NewSliceSource([]Record{{Cycle: 2, Addr: 100, CPU: 9}})
	m := NewMerge(1<<20, true, a, b)
	got, _ := Collect(m, 0)
	if got[0].Addr == got[1].Addr {
		t.Fatal("stripe did not separate address spaces")
	}
	if got[0].CPU == got[1].CPU {
		t.Fatal("relabel did not assign distinct CPUs")
	}
}

// Property: binary round-trip preserves arbitrary records (addresses
// masked to the encodable range).
func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(cycle, a uint64, cpu uint8, wr bool) bool {
		rec := Record{Cycle: cycle, Addr: a, CPU: cpu, Write: wr}
		var buf bytes.Buffer
		w, _ := NewWriter(&buf)
		w.Write(rec)
		w.Flush()
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		got, err := r.Next()
		return err == nil && got == rec
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAnalyzeBasics(t *testing.T) {
	recs := []Record{
		{Cycle: 0, Addr: 0, Write: false},
		{Cycle: 10, Addr: 4096, Write: true},
		{Cycle: 20, Addr: 0, Write: false},
		{Cycle: 30, Addr: 8192, Write: true},
	}
	a, err := Analyze(NewSliceSource(recs), 2, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if a.Records != 4 || a.Writes != 2 {
		t.Fatalf("records/writes = %d/%d", a.Records, a.Writes)
	}
	if a.Footprint != 3*4096 {
		t.Fatalf("footprint = %d, want 3 blocks", a.Footprint)
	}
	if len(a.Windows) != 2 {
		t.Fatalf("%d windows, want 2", len(a.Windows))
	}
	if a.Windows[0].UniqueHot != 2 || a.Windows[0].NewBlocks != 2 {
		t.Fatalf("window 0: %+v", a.Windows[0])
	}
	// Window 1 re-touches block 0 (not new) and touches block 2 (new).
	if a.Windows[1].UniqueHot != 2 || a.Windows[1].NewBlocks != 1 {
		t.Fatalf("window 1: %+v", a.Windows[1])
	}
	if a.WriteShare() != 0.5 {
		t.Fatalf("write share = %f", a.WriteShare())
	}
	if a.MeanGap != 10 {
		t.Fatalf("mean gap = %f", a.MeanGap)
	}
}

func TestAnalyzeValidation(t *testing.T) {
	if _, err := Analyze(NewSliceSource(nil), 0, 4096); err == nil {
		t.Fatal("zero window accepted")
	}
	if _, err := Analyze(NewSliceSource(nil), 10, 100); err == nil {
		t.Fatal("non-power-of-two block accepted")
	}
	a, err := Analyze(NewSliceSource(nil), 10, 4096)
	if err != nil || a.Records != 0 || len(a.Windows) != 0 {
		t.Fatalf("empty trace analysis: %+v, %v", a, err)
	}
}
