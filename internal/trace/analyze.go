package trace

import (
	"errors"
	"fmt"
	"io"
)

// WindowStat summarizes one analysis window of a trace.
type WindowStat struct {
	FirstCycle uint64
	LastCycle  uint64
	Accesses   uint64
	Writes     uint64
	UniqueHot  uint64 // distinct blocks touched within the window (the instantaneous working set)
	NewBlocks  uint64 // blocks never seen in any earlier window (footprint growth)
}

// Analysis is the outcome of Analyze.
type Analysis struct {
	Records   uint64
	Writes    uint64
	MinAddr   uint64
	MaxAddr   uint64
	Footprint uint64 // distinct blocks ever touched x block size
	BlockSize uint64
	Windows   []WindowStat
	MeanGap   float64 // mean cycles between accesses
	LastCycle uint64
}

// WriteShare returns the store fraction.
func (a Analysis) WriteShare() float64 {
	if a.Records == 0 {
		return 0
	}
	return float64(a.Writes) / float64(a.Records)
}

// Analyze scans a trace and reports footprint, write mix, inter-arrival
// statistics, and the working-set size per window of `window` accesses at
// `blockSize` granularity. It is the tool for validating that a synthetic
// workload has the footprint and drift its spec claims (DESIGN.md
// substitutions), and for sizing the on-package region for a real trace.
func Analyze(src Source, window uint64, blockSize uint64) (Analysis, error) {
	if window == 0 {
		return Analysis{}, fmt.Errorf("trace: analysis window must be positive")
	}
	if blockSize == 0 || blockSize&(blockSize-1) != 0 {
		return Analysis{}, fmt.Errorf("trace: block size %d must be a power of two", blockSize)
	}
	a := Analysis{MinAddr: ^uint64(0), BlockSize: blockSize}
	ever := make(map[uint64]struct{})
	cur := make(map[uint64]struct{})
	var w WindowStat
	var firstCycle uint64
	flush := func() {
		if w.Accesses > 0 {
			w.UniqueHot = uint64(len(cur))
			a.Windows = append(a.Windows, w)
		}
		cur = make(map[uint64]struct{})
		w = WindowStat{}
	}
	for {
		rec, err := src.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return a, err
		}
		if a.Records == 0 {
			firstCycle = rec.Cycle
		}
		a.Records++
		a.LastCycle = rec.Cycle
		if rec.Write {
			a.Writes++
			w.Writes++
		}
		if rec.Addr < a.MinAddr {
			a.MinAddr = rec.Addr
		}
		if rec.Addr > a.MaxAddr {
			a.MaxAddr = rec.Addr
		}
		blk := rec.Addr / blockSize
		if _, seen := ever[blk]; !seen {
			ever[blk] = struct{}{}
			w.NewBlocks++
		}
		cur[blk] = struct{}{}
		if w.Accesses == 0 {
			w.FirstCycle = rec.Cycle
		}
		w.Accesses++
		w.LastCycle = rec.Cycle
		if w.Accesses >= window {
			flush()
		}
	}
	flush()
	a.Footprint = uint64(len(ever)) * blockSize
	if a.Records > 1 && a.LastCycle > firstCycle {
		a.MeanGap = float64(a.LastCycle-firstCycle) / float64(a.Records-1)
	}
	if a.Records == 0 {
		a.MinAddr = 0
	}
	return a, nil
}
