package trace

import (
	"container/heap"
	"errors"
	"fmt"
	"io"

	"heteromem/internal/snap"
)

// Merge combines several per-program sources into one multi-programmed
// source ordered by cycle, the way the paper built its "SPEC2006 Mixture"
// from the gcc, mcf, perl, and zeusmp traces. Each input is assigned a
// distinct CPU ID (its index) and its addresses are offset into a private
// address-space stripe so the programs do not alias.
type Merge struct {
	h        mergeHeap
	stripe   uint64
	relabel  bool
	primed   bool
	initErrs []error
}

// NewMerge builds a merged source. stripeBytes is the size of the private
// address stripe given to each input (0 disables address offsetting).
// If relabelCPU is true, records from input i are tagged CPU=i.
func NewMerge(stripeBytes uint64, relabelCPU bool, inputs ...Source) *Merge {
	m := &Merge{stripe: stripeBytes, relabel: relabelCPU}
	for i, in := range inputs {
		m.h = append(m.h, &mergeEntry{src: in, idx: i})
	}
	return m
}

type mergeEntry struct {
	src  Source
	idx  int
	head Record
}

type mergeHeap []*mergeEntry

func (h mergeHeap) Len() int            { return len(h) }
func (h mergeHeap) Less(i, j int) bool  { return h[i].head.Cycle < h[j].head.Cycle }
func (h mergeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x interface{}) { *h = append(*h, x.(*mergeEntry)) }
func (h *mergeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

func (m *Merge) prime() {
	live := m.h[:0]
	for _, e := range m.h {
		r, err := e.src.Next()
		if errors.Is(err, io.EOF) {
			continue
		}
		if err != nil {
			m.initErrs = append(m.initErrs, err)
			continue
		}
		e.head = r
		live = append(live, e)
	}
	m.h = live
	heap.Init(&m.h)
	m.primed = true
}

// Next implements Source.
func (m *Merge) Next() (Record, error) {
	if !m.primed {
		m.prime()
	}
	if len(m.initErrs) > 0 {
		err := m.initErrs[0]
		m.initErrs = m.initErrs[1:]
		return Record{}, err
	}
	if len(m.h) == 0 {
		return Record{}, io.EOF
	}
	e := m.h[0]
	out := e.head
	if m.stripe > 0 {
		out.Addr = out.Addr%m.stripe + uint64(e.idx)*m.stripe
	}
	if m.relabel {
		out.CPU = uint8(e.idx)
	}
	r, err := e.src.Next()
	switch {
	case errors.Is(err, io.EOF):
		heap.Pop(&m.h)
	case err != nil:
		heap.Pop(&m.h)
		m.initErrs = append(m.initErrs, err)
	default:
		e.head = r
		heap.Fix(&m.h, 0)
	}
	return out, nil
}

// Limit wraps a source and stops after n records.
type Limit struct {
	src  Source
	left uint64
}

// NewLimit returns a source yielding at most n records from src.
func NewLimit(src Source, n uint64) *Limit { return &Limit{src: src, left: n} }

// Next implements Source.
func (l *Limit) Next() (Record, error) {
	if l.left == 0 {
		return Record{}, io.EOF
	}
	r, err := l.src.Next()
	if err != nil {
		return r, err
	}
	l.left--
	return r, nil
}

// Limit source kinds recorded in a snapshot.
const (
	limitSrcSnapshot = 0 // inner source state serialized (snap.Snapshotter)
	limitSrcPosition = 1 // inner record index only (Positioner)
)

// SnapshotTo makes a Limit checkpointable whenever its inner source is:
// the remaining budget is serialized together with either the inner
// source's full state or its position. A Limit over a source that supports
// neither fails the snapshot with a clear error.
func (l *Limit) SnapshotTo(e *snap.Encoder) {
	e.U64(l.left)
	switch s := l.src.(type) {
	case snap.Snapshotter:
		e.U8(limitSrcSnapshot)
		s.SnapshotTo(e)
	case Positioner:
		e.U8(limitSrcPosition)
		e.U64(s.Position())
	default:
		e.Fail(fmt.Errorf("trace: Limit source %T supports neither snapshot nor positioning", l.src))
	}
}

// RestoreFrom implements snap.Snapshotter.
func (l *Limit) RestoreFrom(d *snap.Decoder) error {
	left := d.U64()
	switch kind := d.U8(); kind {
	case limitSrcSnapshot:
		s, ok := l.src.(snap.Snapshotter)
		if !ok {
			d.Invalid("snapshot holds inner source state but %T cannot restore it", l.src)
			return d.Err()
		}
		if err := d.Err(); err != nil {
			return err
		}
		if err := s.RestoreFrom(d); err != nil {
			return err
		}
	case limitSrcPosition:
		pos := d.U64()
		s, ok := l.src.(Positioner)
		if !ok {
			d.Invalid("snapshot holds an inner source position but %T cannot seek", l.src)
			return d.Err()
		}
		if err := d.Err(); err != nil {
			return err
		}
		if err := s.SkipTo(pos); err != nil {
			return err
		}
	default:
		d.Invalid("unknown Limit source kind %d", kind)
		return d.Err()
	}
	if err := d.Err(); err != nil {
		return err
	}
	l.left = left
	return nil
}
