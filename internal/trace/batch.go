package trace

import "io"

// Batch is a columnar block of records: four parallel slices, one per
// Record field, always of equal length. The run loop and the workload
// generators exchange records in batches so the per-record cost of the
// Source interface (a dispatch and a 24-byte struct copy per record) is
// paid once per few thousand records instead of once per record.
//
// The caller sizes a batch with Resize to say how many records it wants;
// a BatchSource fills the columns from index 0 and returns how many it
// wrote. Columns may hold stale data past the returned count.
type Batch struct {
	Cycle []uint64
	Addr  []uint64
	CPU   []uint8
	Write []bool
}

// Resize sets the batch length to n records, reusing column capacity when
// it suffices and reallocating (all four columns together) when not.
func (b *Batch) Resize(n int) {
	if cap(b.Cycle) < n {
		b.Cycle = make([]uint64, n)
		b.Addr = make([]uint64, n)
		b.CPU = make([]uint8, n)
		b.Write = make([]bool, n)
		return
	}
	b.Cycle = b.Cycle[:n]
	b.Addr = b.Addr[:n]
	b.CPU = b.CPU[:n]
	b.Write = b.Write[:n]
}

// Len returns the batch length in records.
func (b *Batch) Len() int { return len(b.Cycle) }

// Record returns record i as a Record value.
func (b *Batch) Record(i int) Record {
	return Record{Cycle: b.Cycle[i], Addr: b.Addr[i], CPU: b.CPU[i], Write: b.Write[i]}
}

// Set stores r at index i.
func (b *Batch) Set(i int, r Record) {
	b.Cycle[i] = r.Cycle
	b.Addr[i] = r.Addr
	b.CPU[i] = r.CPU
	b.Write[i] = r.Write
}

// head returns a view of the first n records without copying.
func (b *Batch) head(n int) Batch {
	return Batch{Cycle: b.Cycle[:n], Addr: b.Addr[:n], CPU: b.CPU[:n], Write: b.Write[:n]}
}

// copyFrom copies records [from, from+n) of src into b starting at index
// at, and returns n.
func (b *Batch) copyFrom(src *Batch, at, from, n int) int {
	copy(b.Cycle[at:at+n], src.Cycle[from:from+n])
	copy(b.Addr[at:at+n], src.Addr[from:from+n])
	copy(b.CPU[at:at+n], src.CPU[from:from+n])
	copy(b.Write[at:at+n], src.Write[from:from+n])
	return n
}

// BatchSource is a Source that can fill a caller-sized batch in one call.
// NextBatch writes up to b.Len() records into b's columns starting at
// index 0 and returns how many it wrote. Like io.Reader, it may return
// n > 0 alongside a non-nil error (including io.EOF); the caller must
// process the n records before handling the error. It never returns
// (0, nil) when b.Len() > 0, so a read loop always makes progress.
type BatchSource interface {
	Source
	NextBatch(b *Batch) (int, error)
}

// FillBatch adapts any Source to batch reads by calling Next per record.
// It stops at the first error and returns the records filled so far with
// that error (io.EOF included), matching the BatchSource contract.
func FillBatch(src Source, b *Batch) (int, error) {
	n := b.Len()
	for i := 0; i < n; i++ {
		r, err := src.Next()
		if err != nil {
			return i, err
		}
		b.Cycle[i] = r.Cycle
		b.Addr[i] = r.Addr
		b.CPU[i] = r.CPU
		b.Write[i] = r.Write
	}
	return n, nil
}

// ReadBatch fills b from src: through NextBatch when src implements
// BatchSource, through the per-record fallback otherwise.
func ReadBatch(src Source, b *Batch) (int, error) {
	if bs, ok := src.(BatchSource); ok {
		return bs.NextBatch(b)
	}
	return FillBatch(src, b)
}

// NextBatch implements BatchSource by copying straight out of the backing
// slice (a scatter from the array-of-structs form into the columns).
func (s *SliceSource) NextBatch(b *Batch) (int, error) {
	n := b.Len()
	if rem := len(s.recs) - s.i; rem < n {
		n = rem
	}
	if n == 0 {
		if b.Len() == 0 {
			return 0, nil
		}
		return 0, io.EOF
	}
	for k, r := range s.recs[s.i : s.i+n] {
		b.Cycle[k] = r.Cycle
		b.Addr[k] = r.Addr
		b.CPU[k] = r.CPU
		b.Write[k] = r.Write
	}
	s.i += n
	return n, nil
}

// NextBatch implements BatchSource: the budgeted prefix of the batch is
// delegated to the inner source (batched when it supports it).
func (l *Limit) NextBatch(b *Batch) (int, error) {
	n := b.Len()
	if uint64(n) > l.left {
		n = int(l.left)
	}
	if n == 0 {
		if b.Len() == 0 {
			return 0, nil
		}
		return 0, io.EOF
	}
	var k int
	var err error
	if n == b.Len() {
		k, err = ReadBatch(l.src, b)
	} else {
		sub := b.head(n)
		k, err = ReadBatch(l.src, &sub)
	}
	l.left -= uint64(k)
	return k, err
}
