package trace

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
)

// randomRecords builds a trace with the statistics of a real workload
// stream (mostly-ascending cycles, clustered addresses) plus adversarial
// outliers (cycle wrap, huge addresses) so the packed form's wrapping
// delta arithmetic is exercised.
func randomRecords(t *testing.T, n int, seed int64) []Record {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	recs := make([]Record, n)
	cycle := uint64(0)
	for i := range recs {
		switch rng.Intn(20) {
		case 0:
			cycle -= uint64(rng.Intn(1000)) // non-monotone step backwards
		default:
			cycle += uint64(rng.Intn(200))
		}
		addr := uint64(rng.Intn(1<<28)) &^ 63
		if rng.Intn(50) == 0 {
			addr = rng.Uint64() // occasional far outlier
		}
		recs[i] = Record{
			Cycle: cycle,
			Addr:  addr,
			CPU:   uint8(rng.Intn(8)),
			Write: rng.Intn(4) == 0,
		}
	}
	return recs
}

func packedEqual(t *testing.T, want []Record, p *Packed) {
	t.Helper()
	if p.NumRecords() != uint64(len(want)) {
		t.Fatalf("packed holds %d records, want %d", p.NumRecords(), len(want))
	}
	got, err := Collect(NewPackedSource(p), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestPackedRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 2, 100, PackedChunkRecords, PackedChunkRecords + 1, 3*PackedChunkRecords + 17} {
		recs := randomRecords(t, n, int64(n)+1)
		packedEqual(t, recs, PackRecords(recs))
	}
}

func TestPackedRoundTripEdgeValues(t *testing.T) {
	recs := []Record{
		{Cycle: 0, Addr: 0, CPU: 0, Write: false},
		{Cycle: ^uint64(0), Addr: ^uint64(0), CPU: 255, Write: true},
		{Cycle: 0, Addr: 1 << 63, CPU: 7, Write: false}, // cycle wraps back down
		{Cycle: 5, Addr: 0, CPU: 0, Write: true},
	}
	packedEqual(t, recs, PackRecords(recs))
}

func TestPackedFileRoundTrip(t *testing.T) {
	recs := randomRecords(t, 2*PackedChunkRecords+99, 7)
	p := PackRecords(recs)
	var buf bytes.Buffer
	written, err := p.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(written) != p.EncodedBytes() {
		t.Fatalf("WriteTo wrote %d bytes, EncodedBytes says %d", written, p.EncodedBytes())
	}
	back, err := ReadPacked(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	packedEqual(t, recs, back)
}

func TestPackedSourcePositioner(t *testing.T) {
	recs := randomRecords(t, 2*PackedChunkRecords+50, 11)
	p := PackRecords(recs)
	src := NewPackedSource(p)
	var _ Positioner = src
	var _ BatchSource = src

	// Forward, backward, and boundary seeks all land exactly.
	for _, pos := range []uint64{0, 1, 100, PackedChunkRecords - 1, PackedChunkRecords, PackedChunkRecords + 1, uint64(len(recs)) - 1, 5, uint64(len(recs))} {
		if err := src.SkipTo(pos); err != nil {
			t.Fatalf("SkipTo(%d): %v", pos, err)
		}
		if got := src.Position(); got != pos {
			t.Fatalf("Position after SkipTo(%d) = %d", pos, got)
		}
		if pos == uint64(len(recs)) {
			if _, err := src.Next(); err != io.EOF {
				t.Fatalf("Next at end = %v, want EOF", err)
			}
			continue
		}
		r, err := src.Next()
		if err != nil {
			t.Fatalf("Next after SkipTo(%d): %v", pos, err)
		}
		if r != recs[pos] {
			t.Fatalf("record at %d = %+v, want %+v", pos, r, recs[pos])
		}
		if got := src.Position(); got != pos+1 {
			t.Fatalf("Position after Next = %d, want %d", got, pos+1)
		}
	}
	if err := src.SkipTo(uint64(len(recs)) + 1); err == nil {
		t.Fatal("SkipTo past end accepted")
	}
	src.Reset()
	if src.Position() != 0 {
		t.Fatalf("Position after Reset = %d", src.Position())
	}
	if r, err := src.Next(); err != nil || r != recs[0] {
		t.Fatalf("Next after Reset = %+v, %v", r, err)
	}
}

func TestPackedSourceNextBatchOddSizes(t *testing.T) {
	recs := randomRecords(t, PackedChunkRecords+777, 13)
	p := PackRecords(recs)
	for _, size := range []int{1, 7, 100, PackedChunkRecords, PackedChunkRecords * 2} {
		src := NewPackedSource(p)
		var got []Record
		var b Batch
		for {
			b.Resize(size)
			k, err := ReadBatch(src, &b)
			for i := 0; i < k; i++ {
				got = append(got, b.Record(i))
			}
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
		}
		if len(got) != len(recs) {
			t.Fatalf("size %d: got %d records, want %d", size, len(got), len(recs))
		}
		for i := range recs {
			if got[i] != recs[i] {
				t.Fatalf("size %d: record %d = %+v, want %+v", size, i, got[i], recs[i])
			}
		}
	}
}

func TestReadPackedRejectsCorruptInput(t *testing.T) {
	recs := randomRecords(t, PackedChunkRecords+12, 17)
	var buf bytes.Buffer
	if _, err := PackRecords(recs).WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := map[string][]byte{
		"empty":      {},
		"bad magic":  append([]byte("HMTR"), good[4:]...),
		"short head": good[:10],
		"truncated":  good[:len(good)-5],
		"trailing":   append(append([]byte{}, good...), 0),
	}
	// Record-count mismatch: total claims one more record than chunks hold.
	mismatch := append([]byte{}, good...)
	mismatch[4]++
	cases["count mismatch"] = mismatch
	// Bad column width in the first chunk header (cycleBits > 64).
	badWidth := append([]byte{}, good...)
	badWidth[4+8+4+4+8+8+1] = 65
	cases["bad width"] = badWidth
	// Zero-record chunk.
	zeroCount := append([]byte{}, good...)
	copy(zeroCount[4+8+4:], []byte{0, 0, 0, 0})
	cases["zero-count chunk"] = zeroCount

	for name, data := range cases {
		if _, err := ReadPacked(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: corrupt input accepted", name)
		}
	}
	if _, err := ReadPacked(bytes.NewReader(good)); err != nil {
		t.Fatalf("pristine input rejected: %v", err)
	}
}

func TestPackNoProgressSource(t *testing.T) {
	if _, err := Pack(noProgressSource{}, 10); !errors.Is(err, io.ErrNoProgress) {
		t.Fatalf("Pack over a no-progress source = %v, want ErrNoProgress", err)
	}
}

// noProgressSource violates the BatchSource contract by returning (0, nil).
type noProgressSource struct{}

func (noProgressSource) Next() (Record, error)         { return Record{}, nil }
func (noProgressSource) NextBatch(*Batch) (int, error) { return 0, nil }
