package trace

import (
	"errors"
	"fmt"
	"io"
)

// Positioner is a Source that tracks an absolute record index and can seek
// to one. Position returns the index of the record the next Next call will
// yield; SkipTo advances the source so the next record yielded is record n.
// Streaming sources reject seeking backward, and every implementation
// rejects skipping past the end of the trace.
type Positioner interface {
	Source
	Position() uint64
	SkipTo(n uint64) error
}

// Position implements Positioner.
func (s *SliceSource) Position() uint64 { return uint64(s.i) }

// SkipTo implements Positioner; an in-memory source can seek both ways.
// Skipping to exactly the record count positions the source at EOF.
func (s *SliceSource) SkipTo(n uint64) error {
	if n > uint64(len(s.recs)) {
		return fmt.Errorf("trace: skip to record %d past end of %d-record trace", n, len(s.recs))
	}
	s.i = int(n)
	return nil
}

// Position implements Positioner.
func (r *Reader) Position() uint64 { return r.n }

// SkipTo implements Positioner by decoding and discarding records; the
// binary stream cannot seek backward.
func (r *Reader) SkipTo(n uint64) error {
	if n < r.n {
		return fmt.Errorf("trace: cannot seek backward from record %d to %d", r.n, n)
	}
	for r.n < n {
		if _, err := r.Next(); err != nil {
			if errors.Is(err, io.EOF) {
				return fmt.Errorf("trace: skip to record %d past end of trace (%d records)", n, r.n)
			}
			return err
		}
	}
	return nil
}

// Position implements Positioner.
func (t *TextReader) Position() uint64 { return t.n }

// SkipTo implements Positioner by parsing and discarding records; the text
// stream cannot seek backward.
func (t *TextReader) SkipTo(n uint64) error {
	if n < t.n {
		return fmt.Errorf("trace: cannot seek backward from record %d to %d", t.n, n)
	}
	for t.n < n {
		if _, err := t.Next(); err != nil {
			if errors.Is(err, io.EOF) {
				return fmt.Errorf("trace: skip to record %d past end of trace (%d records)", n, t.n)
			}
			return err
		}
	}
	return nil
}
