package scheme

import (
	"fmt"
	"math/bits"

	"heteromem/internal/snap"
)

// predictorEntries sizes the miss predictor's saturating-counter table.
// MAP-I indexes by instruction PC; a trace-driven model has no PCs, so
// this is the MAP-M variant: indexed by block address.
const predictorEntries = 512

// predictor is a table of 3-bit saturating counters, initialized weakly
// toward "hit" so an untrained predictor serializes probes (safe) rather
// than spraying off-package fetches.
type predictor struct {
	ctr []uint8
}

func newPredictor() *predictor {
	p := &predictor{ctr: make([]uint8, predictorEntries)}
	for i := range p.ctr {
		p.ctr[i] = 4
	}
	return p
}

func (p *predictor) predictHit(block uint64) bool {
	return p.ctr[block&(predictorEntries-1)] >= 4
}

func (p *predictor) update(block uint64, hit bool) {
	i := block & (predictorEntries - 1)
	if hit {
		if p.ctr[i] < 7 {
			p.ctr[i]++
		}
	} else if p.ctr[i] > 0 {
		p.ctr[i]--
	}
}

// Alloy is the direct-mapped tag-and-data (TAD) cache of AlloyCache
// (Qureshi & Loh, MICRO'11): tag and data stream out in one burst, so a
// hit costs a single on-package access and a miss's probe returns the
// victim's data for free (no separate victim read on writeback). With the
// predictor enabled, a predicted miss overlaps the probe with the
// off-package fetch instead of paying them serially.
//
// base offsets the slot addresses: 0 for the standalone scheme, the
// memory-part boundary for the cache part of memcache.
type Alloy struct {
	spec       Spec
	blockShift uint
	base       uint64
	arr        *SetArray
	pred       *predictor
	stats      Stats
}

// NewAlloy builds an alloy cache over capacity bytes of on-package space
// starting at machine address base, with blockBytes lines.
func NewAlloy(spec Spec, capacity, base, blockBytes uint64) (*Alloy, error) {
	if blockBytes == 0 || blockBytes&(blockBytes-1) != 0 {
		return nil, fmt.Errorf("scheme: alloy block size %d not a power of two", blockBytes)
	}
	sets := capacity / blockBytes
	arr, err := NewSetArray(sets, 1)
	if err != nil {
		return nil, fmt.Errorf("scheme: alloy capacity %d / block %d: %w", capacity, blockBytes, err)
	}
	a := &Alloy{
		spec:       spec,
		blockShift: uint(bits.TrailingZeros64(blockBytes)),
		base:       base,
		arr:        arr,
	}
	if spec.Predictor {
		a.pred = newPredictor()
	}
	return a, nil
}

// Kind implements Scheme.
func (a *Alloy) Kind() Kind { return a.spec.Kind }

// String implements Scheme.
func (a *Alloy) String() string { return a.spec.String() }

// Stats implements Scheme.
func (a *Alloy) Stats() Stats { return a.stats }

// BlockBytes implements Cache.
func (a *Alloy) BlockBytes() uint64 { return 1 << a.blockShift }

// Lookup implements Cache. Allocation-free.
func (a *Alloy) Lookup(phys uint64, write bool) Result {
	a.stats.Accesses++
	block := phys >> a.blockShift
	set := block % a.arr.Sets()
	tag := block / a.arr.Sets()
	res := Result{Slot: a.base + set<<a.blockShift}
	if hit, _ := a.arr.Probe(set, tag, write); hit {
		a.stats.Hits++
		res.Hit = true
		if a.pred != nil {
			if !a.pred.predictHit(block) {
				// Predicted miss on a hit: the speculative off-package
				// fetch was already in flight and is thrown away.
				res.WastedOff = true
				a.stats.WastedOff++
			}
			a.pred.update(block, true)
		}
		return res
	}
	a.stats.Misses++
	a.stats.Fills++
	res.Probe = true
	if a.pred != nil {
		if !a.pred.predictHit(block) {
			res.Parallel = true
			a.stats.ProbeSkips++
		}
		a.pred.update(block, false)
	}
	vt, vd, vv := a.arr.Insert(set, tag, write)
	if vv && vd {
		a.stats.Writebacks++
		res.WB = true
		res.WBAddr = (vt*a.arr.Sets() + set) << a.blockShift
	}
	return res
}

// SnapshotTo implements snap.Snapshotter.
func (a *Alloy) SnapshotTo(e *snap.Encoder) {
	a.arr.SnapshotTo(e)
	snapshotStats(e, a.stats)
	e.Bool(a.pred != nil)
	if a.pred != nil {
		for _, c := range a.pred.ctr {
			e.U8(c)
		}
	}
}

// RestoreFrom implements snap.Snapshotter.
func (a *Alloy) RestoreFrom(d *snap.Decoder) error {
	if err := a.arr.RestoreFrom(d); err != nil {
		return err
	}
	a.stats = restoreStats(d)
	hasPred := d.Bool()
	if d.Err() != nil {
		return d.Err()
	}
	if hasPred != (a.pred != nil) {
		d.Invalid("alloy predictor presence mismatch")
		return d.Err()
	}
	if a.pred != nil {
		for i := range a.pred.ctr {
			a.pred.ctr[i] = d.U8()
		}
	}
	return d.Err()
}
