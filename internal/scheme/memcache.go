package scheme

import (
	"fmt"

	"heteromem/internal/snap"
)

// MemCache splits the on-package capacity: the low MemBytes run as
// migrated memory under the existing N / N-1 / Live machinery (the
// controller builds its migrator with proportionally fewer slots), and the
// rest runs as an alloy-style cache in front of the off-package region.
// Accesses whose page is resident in the memory part never consult the
// cache part; everything routed off-package tries the cache first. This is
// the part-cache/part-memory hybrid of "Die-Stacked DRAM: Memory, Cache,
// or MemCache?".
type MemCache struct {
	spec     Spec
	memBytes uint64
	part     *Alloy
}

// NewMemCache builds the split over capacity bytes of on-package space.
// pageSize aligns the memory part (it must hold whole migration slots);
// blockBytes is the cache part's line size.
func NewMemCache(spec Spec, capacity, pageSize, blockBytes uint64) (*MemCache, error) {
	mem := spec.MemFraction(capacity, pageSize)
	if mem < pageSize || mem >= capacity {
		return nil, fmt.Errorf("scheme: memcache split %d%% of %d leaves no usable memory part (page %d)",
			spec.memPercent(), capacity, pageSize)
	}
	part, err := NewAlloy(spec, capacity-mem, mem, blockBytes)
	if err != nil {
		return nil, fmt.Errorf("scheme: memcache cache part: %w", err)
	}
	return &MemCache{spec: spec, memBytes: mem, part: part}, nil
}

// Kind implements Scheme.
func (m *MemCache) Kind() Kind { return KindMemCache }

// String implements Scheme.
func (m *MemCache) String() string { return m.spec.String() }

// Stats implements Scheme (the cache part's counters).
func (m *MemCache) Stats() Stats { return m.part.Stats() }

// MemBytes returns the memory-part capacity: the boundary between the
// migrated region and the cache region in on-package machine space.
func (m *MemCache) MemBytes() uint64 { return m.memBytes }

// BlockBytes implements Cache.
func (m *MemCache) BlockBytes() uint64 { return m.part.BlockBytes() }

// Lookup implements Cache for the cache part; the controller calls it only
// for accesses the migrator routed off-package.
func (m *MemCache) Lookup(phys uint64, write bool) Result {
	return m.part.Lookup(phys, write)
}

// SnapshotTo implements snap.Snapshotter. The memory part's migrator
// snapshots through the controller's existing migration slot; this covers
// the cache part only.
func (m *MemCache) SnapshotTo(e *snap.Encoder) { m.part.SnapshotTo(e) }

// RestoreFrom implements snap.Snapshotter.
func (m *MemCache) RestoreFrom(d *snap.Decoder) error { return m.part.RestoreFrom(d) }
