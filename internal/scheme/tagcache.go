package scheme

import (
	"fmt"
	"math/bits"

	"heteromem/internal/snap"
)

// TagCache parameters: the paper's Section II strawman is a set-associative
// L4 with tags held in the DRAM array itself, so a hit costs a tag read
// plus a data read — about 2× one on-package access, the L4HitLatency the
// latency table already carries. A small SRAM tag buffer caches recently
// read set tags; a buffer hit skips the in-DRAM tag read.
const (
	tagCacheWays     = 16
	tagBufferEntries = 8192
)

// TagCache is the cachemode scheme.
type TagCache struct {
	spec       Spec
	blockShift uint
	arr        *SetArray
	tb         []uint64 // direct-mapped SRAM tag buffer: set+1, 0 = empty
	tbMask     uint64
	stats      Stats
}

// NewTagCache builds the tag-in-DRAM L4 over capacity bytes with
// blockBytes lines.
func NewTagCache(spec Spec, capacity, blockBytes uint64) (*TagCache, error) {
	if blockBytes == 0 || blockBytes&(blockBytes-1) != 0 {
		return nil, fmt.Errorf("scheme: cachemode block size %d not a power of two", blockBytes)
	}
	sets := capacity / blockBytes / tagCacheWays
	arr, err := NewSetArray(sets, tagCacheWays)
	if err != nil {
		return nil, fmt.Errorf("scheme: cachemode capacity %d / block %d: %w", capacity, blockBytes, err)
	}
	return &TagCache{
		spec:       spec,
		blockShift: uint(bits.TrailingZeros64(blockBytes)),
		arr:        arr,
		tb:         make([]uint64, tagBufferEntries),
		tbMask:     tagBufferEntries - 1,
	}, nil
}

// Kind implements Scheme.
func (t *TagCache) Kind() Kind { return KindCacheMode }

// String implements Scheme.
func (t *TagCache) String() string { return t.spec.String() }

// Stats implements Scheme.
func (t *TagCache) Stats() Stats { return t.stats }

// BlockBytes implements Cache.
func (t *TagCache) BlockBytes() uint64 { return 1 << t.blockShift }

// slotAddr maps (set, recency way) to the on-package machine address of
// the data line. Slot order within a set is recency order, so the model
// places a block at its recency position — an approximation that keeps one
// word per slot (the alternative is tracking physical ways separately,
// which changes only which bank a line's bursts land in).
func (t *TagCache) slotAddr(set uint64, way int) uint64 {
	return (set*tagCacheWays + uint64(way)) << t.blockShift
}

// Lookup implements Cache. Allocation-free.
func (t *TagCache) Lookup(phys uint64, write bool) Result {
	t.stats.Accesses++
	block := phys >> t.blockShift
	set := block % t.arr.Sets()
	tag := block / t.arr.Sets()

	// SRAM tag buffer: a miss means the set's tag line must be read from
	// the DRAM array before the data access can issue (serial probe). The
	// probe installs the set's tags either way.
	probe := t.tb[set&t.tbMask] != set+1
	if probe {
		t.stats.TagProbes++
		t.tb[set&t.tbMask] = set + 1
	}

	if hit, way := t.arr.Probe(set, tag, write); hit {
		t.stats.Hits++
		return Result{Hit: true, Probe: probe, Slot: t.slotAddr(set, way)}
	}
	t.stats.Misses++
	t.stats.Fills++
	res := Result{Probe: probe, Slot: t.slotAddr(set, 0)}
	vt, vd, vv := t.arr.Insert(set, tag, write)
	if vv && vd {
		t.stats.Writebacks++
		res.WB = true
		res.WBAddr = (vt*t.arr.Sets() + set) << t.blockShift
		// The in-DRAM tag line carries no data, so evicting a dirty
		// victim costs a real on-package read before the off write.
		res.VictimRead = true
	}
	return res
}

// SnapshotTo implements snap.Snapshotter. The tag buffer serializes
// sparsely like the slot array.
func (t *TagCache) SnapshotTo(e *snap.Encoder) {
	t.arr.SnapshotTo(e)
	n := 0
	for _, v := range t.tb {
		if v != 0 {
			n++
		}
	}
	e.U32(uint32(n))
	for i, v := range t.tb {
		if v != 0 {
			e.U32(uint32(i))
			e.U64(v)
		}
	}
	snapshotStats(e, t.stats)
}

// RestoreFrom implements snap.Snapshotter.
func (t *TagCache) RestoreFrom(d *snap.Decoder) error {
	if err := t.arr.RestoreFrom(d); err != nil {
		return err
	}
	n := int(d.U32())
	if d.Err() != nil {
		return d.Err()
	}
	clear(t.tb)
	for k := 0; k < n; k++ {
		i := d.U32()
		v := d.U64()
		if d.Err() != nil {
			return d.Err()
		}
		if int(i) >= len(t.tb) {
			d.Invalid("tag-buffer index %d out of range (%d entries)", i, len(t.tb))
			return d.Err()
		}
		t.tb[i] = v
	}
	t.stats = restoreStats(d)
	return d.Err()
}
