// Package scheme defines the on-package capacity policy: how a program
// access is routed between the on-package and off-package regions, what
// state is kept per slot or set, and what background traffic a hit, miss,
// fill, or writeback generates.
//
// The paper under reproduction manages the on-package DRAM as *memory*
// (macro pages migrated by the N / N-1 / Live designs). The literature it
// argues against manages the same capacity as a *cache* (AlloyCache, the
// tag-in-DRAM L4 "CacheMode" strawman of the paper's own Section II), and
// "Die-Stacked DRAM: Memory, Cache, or MemCache?" splits it into both. All
// of these are Scheme implementations, selected by Spec, so the sweep,
// checkpoint, and fleet machinery race them under one harness:
//
//	migrate    — the paper's designs; a pure delegation to core.Migrator
//	alloy      — direct-mapped, tag-and-data fused in one burst (TAD)
//	alloy-pred — alloy plus a miss predictor (MAP-style, address-indexed)
//	cachemode  — set-associative tag-in-DRAM L4 with an SRAM tag buffer
//	memcache   — part memory (migration machinery), part alloy-style cache
package scheme

import (
	"fmt"
	"strconv"
	"strings"

	"heteromem/internal/snap"
)

// Kind enumerates the capacity policies. The zero value is the paper's
// migration scheme, so zero-valued configs everywhere keep their meaning.
type Kind uint8

// The implemented schemes.
const (
	KindMigrate   Kind = iota // paper designs N / N-1 / Live (or static, no migrator)
	KindAlloy                 // direct-mapped TAD cache (AlloyCache, MICRO'11)
	KindCacheMode             // set-associative tag-in-DRAM L4 + SRAM tag buffer
	KindMemCache              // part-cache/part-memory split
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindMigrate:
		return "migrate"
	case KindAlloy:
		return "alloy"
	case KindCacheMode:
		return "cachemode"
	case KindMemCache:
		return "memcache"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// DefaultMemPercent is the memory share of the on-package capacity under
// memcache when the spec does not pin one.
const DefaultMemPercent = 50

// Spec selects and parameterizes a scheme. The zero value is the default
// migration scheme, which keeps every pre-scheme config digest and golden
// byte-identical.
type Spec struct {
	Kind Kind

	// Predictor enables the miss predictor on the alloy-style cache
	// (alloy and the cache part of memcache): a predicted miss overlaps
	// the TAD probe with the off-package fetch instead of serializing it.
	Predictor bool

	// MemPercent is the memcache split: the percentage of the on-package
	// capacity run as migrated memory (the rest is the cache part).
	// 0 means DefaultMemPercent. Only meaningful for KindMemCache.
	MemPercent int
}

// Parse reads a scheme name as accepted by hmsim -scheme. The empty string
// and "migrate" are the paper's migration scheme; "memcache" and
// "memcache-pred" take an optional ":NN" memory-percent suffix (e.g.
// "memcache:25").
func Parse(s string) (Spec, error) {
	name, arg, hasArg := strings.Cut(s, ":")
	var sp Spec
	switch name {
	case "", "migrate":
		sp.Kind = KindMigrate
	case "alloy":
		sp.Kind = KindAlloy
	case "alloy-pred":
		sp.Kind = KindAlloy
		sp.Predictor = true
	case "cachemode":
		sp.Kind = KindCacheMode
	case "memcache":
		sp.Kind = KindMemCache
	case "memcache-pred":
		sp.Kind = KindMemCache
		sp.Predictor = true
	default:
		return Spec{}, fmt.Errorf("scheme: unknown scheme %q (want migrate, alloy, alloy-pred, cachemode, or memcache[:PCT])", s)
	}
	if hasArg {
		if sp.Kind != KindMemCache {
			return Spec{}, fmt.Errorf("scheme: %s takes no argument (got %q)", name, s)
		}
		pct, err := strconv.Atoi(arg)
		if err != nil || pct < 1 || pct > 99 {
			return Spec{}, fmt.Errorf("scheme: memcache split %q must be an integer percent in [1,99]", arg)
		}
		if pct != DefaultMemPercent { // canonical: the default split is the zero value
			sp.MemPercent = pct
		}
	}
	return sp, sp.Validate()
}

// String renders the canonical name Parse accepts. The default memcache
// split prints bare so specs round-trip to their shortest spelling.
func (sp Spec) String() string {
	switch sp.Kind {
	case KindAlloy:
		if sp.Predictor {
			return "alloy-pred"
		}
		return "alloy"
	case KindCacheMode:
		return "cachemode"
	case KindMemCache:
		s := "memcache"
		if sp.Predictor {
			s = "memcache-pred"
		}
		if p := sp.memPercent(); p != DefaultMemPercent {
			return fmt.Sprintf("%s:%d", s, p)
		}
		return s
	}
	return "migrate"
}

func (sp Spec) memPercent() int {
	if sp.MemPercent == 0 {
		return DefaultMemPercent
	}
	return sp.MemPercent
}

// MemFraction returns the memcache memory share as bytes of cap, rounded
// down to a multiple of pageSize.
func (sp Spec) MemFraction(capacity, pageSize uint64) uint64 {
	mem := capacity * uint64(sp.memPercent()) / 100
	return mem - mem%pageSize
}

// Validate rejects malformed specs.
func (sp Spec) Validate() error {
	switch sp.Kind {
	case KindMigrate, KindAlloy, KindCacheMode, KindMemCache:
	default:
		return fmt.Errorf("scheme: invalid kind %d", sp.Kind)
	}
	if sp.Predictor && sp.Kind != KindAlloy && sp.Kind != KindMemCache {
		return fmt.Errorf("scheme: predictor applies only to alloy-style caches, not %s", sp.Kind)
	}
	if sp.MemPercent != 0 {
		if sp.Kind != KindMemCache {
			return fmt.Errorf("scheme: memory percent applies only to memcache, not %s", sp.Kind)
		}
		if sp.MemPercent < 1 || sp.MemPercent > 99 {
			return fmt.Errorf("scheme: memcache memory percent %d out of [1,99]", sp.MemPercent)
		}
	}
	return nil
}

// IsCache reports whether the scheme runs the whole on-package capacity as
// a cache (no migration engine at all).
func (sp Spec) IsCache() bool { return sp.Kind == KindAlloy || sp.Kind == KindCacheMode }

// UsesMigration reports whether the scheme hosts the migration engine
// (and therefore honors -design, -interval, and the fault/audit machinery).
func (sp Spec) UsesMigration() bool { return sp.Kind == KindMigrate || sp.Kind == KindMemCache }

// Stats counts scheme-level events. All fields are cumulative.
type Stats struct {
	Accesses   uint64 // lookups routed through the cache engine
	Hits       uint64
	Misses     uint64
	Fills      uint64 // blocks installed (== misses for the implemented caches)
	Writebacks uint64 // dirty victims pushed off-package
	TagProbes  uint64 // serial in-DRAM tag reads (SRAM tag-buffer misses)
	ProbeSkips uint64 // predicted misses whose probe overlapped the fetch
	WastedOff  uint64 // predicted misses that actually hit (off fetch wasted)
}

// HitRate returns Hits/Accesses (0 when idle).
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// Add accumulates o into s (used by the sharded hub's report merge).
func (s *Stats) Add(o Stats) {
	s.Accesses += o.Accesses
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Fills += o.Fills
	s.Writebacks += o.Writebacks
	s.TagProbes += o.TagProbes
	s.ProbeSkips += o.ProbeSkips
	s.WastedOff += o.WastedOff
}

// Result describes how one access routes and what background traffic it
// owes. Slot and WBAddr are byte addresses; Slot is in the on-package
// machine space, WBAddr in the physical space.
type Result struct {
	Hit bool

	// Probe: a DRAM tag access is needed before (serial) or alongside
	// (Parallel) the data access. For alloy the probe IS the fused TAD
	// data burst; for cachemode it is a separate tag-line read.
	Probe    bool
	Parallel bool

	// WastedOff: the predictor guessed miss, launched the off-package
	// fetch, and the access hit anyway — the fetch burns off bandwidth.
	WastedOff bool

	Slot uint64 // on-package machine address serving (or receiving) the block

	// Writeback of the evicted dirty victim. VictimRead marks schemes
	// whose tag probe does not return the victim's data (cachemode), so
	// the writeback additionally costs an on-package read burst.
	WB         bool
	WBAddr     uint64
	VictimRead bool
}

// Scheme is the on-package capacity policy. Every implementation is a
// snap.Snapshotter: its state rides in the controller checkpoint so
// resume-equivalence and distributed-sweep takeover hold per scheme.
type Scheme interface {
	Kind() Kind
	String() string
	Stats() Stats
	snap.Snapshotter
}

// Cache is the block-grain engine behind the cache-managed schemes. Lookup
// must not allocate: it is on the per-record access path.
type Cache interface {
	Scheme
	Lookup(phys uint64, write bool) Result
	BlockBytes() uint64
}
