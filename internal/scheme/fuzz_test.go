package scheme

import "testing"

// FuzzSetCodec pins the packed tag/valid/dirty slot codec the cache
// schemes build sets from: Pack/Unpack must round-trip every 48-bit tag
// and flag combination, and two packed words may only compare equal
// (ignoring the dirty bit, as the set-probe loop does) when they encode
// the same tag and validity — no aliasing between tags, and never between
// a valid word and an empty slot.
func FuzzSetCodec(f *testing.F) {
	f.Add(uint64(0), false, false, uint64(0), false, false)
	f.Add(uint64(1), true, true, uint64(2), false, true)
	f.Add(uint64(1)<<47, true, true, uint64(1)<<47-1, true, true)
	f.Add(uint64(0xdeadbeef), false, true, uint64(0xdeadbeef), true, true)
	f.Add(uint64(1)<<48-1, true, true, uint64(0), false, true)
	f.Fuzz(func(t *testing.T, tagA uint64, dirtyA, validA bool, tagB uint64, dirtyB, validB bool) {
		const tagMask = uint64(1)<<48 - 1
		tagA &= tagMask
		tagB &= tagMask

		wa := PackSlot(tagA, dirtyA, validA)
		ta, da, va := UnpackSlot(wa)
		if ta != tagA || da != dirtyA || va != validA {
			t.Fatalf("round-trip: pack(%d,%v,%v) -> unpack = (%d,%v,%v)", tagA, dirtyA, validA, ta, da, va)
		}

		wb := PackSlot(tagB, dirtyB, validB)
		// The probe loop matches on w &^ dirty: equality there must imply
		// identical (tag, valid).
		if wa&^uint64(slotDirty) == wb&^uint64(slotDirty) {
			if tagA != tagB || validA != validB {
				t.Fatalf("alias: (%d,%v) and (%d,%v) pack to the same probe key %#x",
					tagA, validA, tagB, validB, wa&^uint64(slotDirty))
			}
		} else if tagA == tagB && validA == validB {
			t.Fatalf("split: identical (tag,valid) (%d,%v) packed to distinct probe keys %#x %#x",
				tagA, validA, wa, wb)
		}
		// A valid word never looks like an empty slot.
		if validA && wa == 0 {
			t.Fatalf("valid tag %d packed to the empty-slot word", tagA)
		}
	})
}
