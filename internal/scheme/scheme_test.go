package scheme

import (
	"testing"

	"heteromem/internal/snap"
)

func TestParseRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Spec
		out  string // canonical String(); "" means same as in
	}{
		{in: "", want: Spec{}, out: "migrate"},
		{in: "migrate", want: Spec{}},
		{in: "alloy", want: Spec{Kind: KindAlloy}},
		{in: "alloy-pred", want: Spec{Kind: KindAlloy, Predictor: true}},
		{in: "cachemode", want: Spec{Kind: KindCacheMode}},
		{in: "memcache", want: Spec{Kind: KindMemCache}},
		{in: "memcache:50", want: Spec{Kind: KindMemCache}, out: "memcache"},
		{in: "memcache:25", want: Spec{Kind: KindMemCache, MemPercent: 25}},
		{in: "memcache-pred", want: Spec{Kind: KindMemCache, Predictor: true}},
		{in: "memcache-pred:30", want: Spec{Kind: KindMemCache, Predictor: true, MemPercent: 30}},
	} {
		sp, err := Parse(tc.in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", tc.in, err)
		}
		if sp != tc.want {
			t.Errorf("Parse(%q) = %+v, want %+v", tc.in, sp, tc.want)
		}
		want := tc.out
		if want == "" {
			want = tc.in
		}
		if got := sp.String(); got != want {
			t.Errorf("Parse(%q).String() = %q, want %q", tc.in, got, want)
		}
		if rt, err := Parse(sp.String()); err != nil || rt != sp {
			t.Errorf("String round-trip of %q: %+v, %v", tc.in, rt, err)
		}
	}
}

func TestParseRejects(t *testing.T) {
	for _, in := range []string{
		"bogus", "alloy:3", "cachemode:50", "memcache:0", "memcache:100", "memcache:x", "migrate:1",
	} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) accepted", in)
		}
	}
}

func TestSpecValidate(t *testing.T) {
	if err := (Spec{Kind: KindCacheMode, Predictor: true}).Validate(); err == nil {
		t.Error("predictor on cachemode accepted")
	}
	if err := (Spec{Kind: KindAlloy, MemPercent: 30}).Validate(); err == nil {
		t.Error("mem percent on alloy accepted")
	}
	if err := (Spec{Kind: Kind(9)}).Validate(); err == nil {
		t.Error("invalid kind accepted")
	}
}

func TestAlloyDirectMapped(t *testing.T) {
	// 4 sets of 64B: addresses 0 and 256 collide in set 0.
	a, err := NewAlloy(Spec{Kind: KindAlloy}, 256, 0, 64)
	if err != nil {
		t.Fatal(err)
	}
	if r := a.Lookup(0, true); r.Hit || !r.Probe || r.WB {
		t.Fatalf("cold miss: %+v", r)
	}
	if r := a.Lookup(32, false); !r.Hit || r.Slot != 0 {
		t.Fatalf("same-block hit: %+v", r)
	}
	// Conflict evicts the dirty block 0 and owes its writeback.
	r := a.Lookup(256, false)
	if r.Hit || !r.WB || r.WBAddr != 0 || r.VictimRead {
		t.Fatalf("conflict miss: %+v", r)
	}
	if r.Slot != 0 {
		t.Fatalf("set 0 slot = %d", r.Slot)
	}
	st := a.Stats()
	if st.Accesses != 3 || st.Hits != 1 || st.Misses != 2 || st.Writebacks != 1 || st.Fills != 2 {
		t.Fatalf("stats %+v", st)
	}
}

func TestAlloyBase(t *testing.T) {
	a, err := NewAlloy(Spec{Kind: KindMemCache}, 256, 1024, 64)
	if err != nil {
		t.Fatal(err)
	}
	if r := a.Lookup(64, false); r.Slot != 1024+64 {
		t.Fatalf("based slot = %d, want %d", r.Slot, 1024+64)
	}
}

func TestAlloyPredictorOverlapsTrainedMisses(t *testing.T) {
	a, err := NewAlloy(Spec{Kind: KindAlloy, Predictor: true}, 256, 0, 64)
	if err != nil {
		t.Fatal(err)
	}
	// Untrained counters predict hit: the first misses probe serially.
	if r := a.Lookup(0, false); r.Parallel {
		t.Fatalf("untrained predictor overlapped the probe: %+v", r)
	}
	// Train block 0's counter down with conflict misses (0 and 256 share a
	// set and a predictor entry is per 64B block address).
	for i := 0; i < 8; i++ {
		a.Lookup(0, false)
		a.Lookup(256, false)
	}
	if r := a.Lookup(0, false); !r.Parallel {
		t.Fatalf("trained predictor still serial: %+v", r)
	}
	// A hit the predictor called a miss wastes the off-package fetch.
	if r := a.Lookup(0, false); !r.Hit || !r.WastedOff {
		t.Fatalf("mispredicted hit: %+v", r)
	}
	if st := a.Stats(); st.ProbeSkips == 0 || st.WastedOff == 0 {
		t.Fatalf("predictor stats %+v", st)
	}
}

func TestTagCacheAssociativityAndTagBuffer(t *testing.T) {
	// 2 sets × 16 ways × 64B = 2048 bytes.
	tc, err := NewTagCache(Spec{Kind: KindCacheMode}, 2048, 64)
	if err != nil {
		t.Fatal(err)
	}
	// Cold access probes (tag buffer empty) and misses.
	if r := tc.Lookup(0, false); r.Hit || !r.Probe {
		t.Fatalf("cold: %+v", r)
	}
	// Same set, tag buffer now warm: no probe on the next access.
	if r := tc.Lookup(128, true); r.Probe {
		t.Fatalf("warm set probed: %+v", r)
	}
	// Hit on the dirty block.
	if r := tc.Lookup(128, false); !r.Hit {
		t.Fatalf("hit: %+v", r)
	}
	// Fill the set's remaining ways, then two more to evict LRU (block 0)
	// and then the dirty 128: the dirty eviction owes WB + victim read.
	for i := 2; i < 17; i++ {
		tc.Lookup(uint64(i)*128, false)
	}
	r := tc.Lookup(17*128, false)
	if r.Hit || !r.WB || r.WBAddr != 128 || !r.VictimRead {
		t.Fatalf("dirty eviction: %+v", r)
	}
}

func TestMemCacheSplit(t *testing.T) {
	const MiB = uint64(1) << 20
	m, err := NewMemCache(Spec{Kind: KindMemCache}, 512*MiB, 4*MiB, 64)
	if err != nil {
		t.Fatal(err)
	}
	if m.MemBytes() != 256*MiB {
		t.Fatalf("MemBytes = %d", m.MemBytes())
	}
	if r := m.Lookup(0, false); r.Slot < 256*MiB || r.Slot >= 512*MiB {
		t.Fatalf("cache-part slot %d outside [%d,%d)", r.Slot, 256*MiB, 512*MiB)
	}
	m25, err := NewMemCache(Spec{Kind: KindMemCache, MemPercent: 25}, 512*MiB, 4*MiB, 64)
	if err != nil {
		t.Fatal(err)
	}
	if m25.MemBytes() != 128*MiB {
		t.Fatalf("25%% MemBytes = %d", m25.MemBytes())
	}
	if _, err := NewMemCache(Spec{Kind: KindMemCache, MemPercent: 1}, 8*MiB, 4*MiB, 64); err == nil {
		t.Error("degenerate split accepted")
	}
}

// roundTrip snapshots s into a fresh encoder section and restores it into
// fresh.
func roundTrip(t *testing.T, s, fresh Scheme) {
	t.Helper()
	e := snap.NewEncoder()
	e.Section("scheme")
	s.SnapshotTo(e)
	blob, err := e.Finish()
	if err != nil {
		t.Fatal(err)
	}
	d, err := snap.NewDecoder(blob)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Section("scheme"); err != nil {
		t.Fatal(err)
	}
	if err := fresh.RestoreFrom(d); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	a, _ := NewAlloy(Spec{Kind: KindAlloy, Predictor: true}, 4096, 0, 64)
	for i := uint64(0); i < 300; i++ {
		a.Lookup(i*64*7, i%3 == 0)
	}
	a2, _ := NewAlloy(Spec{Kind: KindAlloy, Predictor: true}, 4096, 0, 64)
	roundTrip(t, a, a2)
	if a2.Stats() != a.Stats() {
		t.Fatalf("alloy stats: %+v vs %+v", a2.Stats(), a.Stats())
	}
	// Identical behavior after restore: same probe results on a spray.
	for i := uint64(0); i < 100; i++ {
		r1, r2 := a.Lookup(i*64*5, false), a2.Lookup(i*64*5, false)
		if r1 != r2 {
			t.Fatalf("alloy diverged at %d: %+v vs %+v", i, r1, r2)
		}
	}

	tc, _ := NewTagCache(Spec{Kind: KindCacheMode}, 1<<16, 64)
	for i := uint64(0); i < 500; i++ {
		tc.Lookup(i*64*11, i%2 == 0)
	}
	tc2, _ := NewTagCache(Spec{Kind: KindCacheMode}, 1<<16, 64)
	roundTrip(t, tc, tc2)
	for i := uint64(0); i < 100; i++ {
		r1, r2 := tc.Lookup(i*64*13, false), tc2.Lookup(i*64*13, false)
		if r1 != r2 {
			t.Fatalf("tagcache diverged at %d: %+v vs %+v", i, r1, r2)
		}
	}

	// Shape mismatches are refused, not silently misread.
	small, _ := NewAlloy(Spec{Kind: KindAlloy}, 2048, 0, 64)
	e := snap.NewEncoder()
	e.Section("scheme")
	a.SnapshotTo(e)
	blob, _ := e.Finish()
	d, _ := snap.NewDecoder(blob)
	if err := d.Section("scheme"); err != nil {
		t.Fatal(err)
	}
	if err := small.RestoreFrom(d); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

func TestMigrateDelegation(t *testing.T) {
	m := &Migrate{}
	if m.Kind() != KindMigrate || m.String() != "migrate" || m.Stats() != (Stats{}) {
		t.Fatalf("migrate scheme surface: %v %q %+v", m.Kind(), m.String(), m.Stats())
	}
	// nil migrator (static mapping) snapshots to nothing and restores from
	// nothing.
	roundTrip(t, m, &Migrate{})
}
