package scheme

import (
	"fmt"

	"heteromem/internal/snap"
)

// Each slot packs into one word: tag<<2 | dirty<<1 | valid — the same
// layout the SRAM hierarchy uses (internal/cache), so the recency shuffle
// is a word copy and a set fits a few cache lines. Physical addresses are
// at most 48 bits and the tag drops the block and set bits, so the tag
// always fits the 62 bits above the flag pair.
const (
	slotValid = 1 << 0
	slotDirty = 1 << 1
	slotTag   = 2 // tag shift

	// TagBits bounds the tags PackSlot accepts losslessly: 48-bit physical
	// addresses leave at most 48 significant tag bits after the block
	// shift, comfortably under the 62 the packed word carries.
	TagBits = 62
)

// PackSlot packs a slot word. The fuzz target FuzzSetCodec pins that
// Pack/Unpack round-trip and that distinct tags never alias.
func PackSlot(tag uint64, dirty, valid bool) uint64 {
	w := tag << slotTag
	if dirty {
		w |= slotDirty
	}
	if valid {
		w |= slotValid
	}
	return w
}

// UnpackSlot unpacks a slot word.
func UnpackSlot(w uint64) (tag uint64, dirty, valid bool) {
	return w >> slotTag, w&slotDirty != 0, w&slotValid != 0
}

// SetArray is the packed slot store shared by the cache schemes: sets×ways
// words, set-major, index 0 of a set is the MRU way (slot order within a
// set is recency order, exactly the internal/cache discipline). The set
// index is block % sets and the tag block / sets, so any set count works —
// a memcache split leaves the cache part with a non-power-of-two capacity.
type SetArray struct {
	sets  uint64
	ways  int
	slots []uint64
}

// NewSetArray builds a sets×ways array.
func NewSetArray(sets uint64, ways int) (*SetArray, error) {
	if sets == 0 {
		return nil, fmt.Errorf("scheme: zero set count")
	}
	if ways <= 0 {
		return nil, fmt.Errorf("scheme: invalid way count %d", ways)
	}
	return &SetArray{
		sets:  sets,
		ways:  ways,
		slots: make([]uint64, sets*uint64(ways)),
	}, nil
}

// Sets returns the set count.
func (a *SetArray) Sets() uint64 { return a.sets }

// Probe looks tag up in set. On a hit the way moves to MRU and, for a
// write, turns dirty; way is the block's recency position after the
// reorder (always 0 on a hit).
func (a *SetArray) Probe(set, tag uint64, write bool) (hit bool, way int) {
	base := int(set) * a.ways
	ss := a.slots[base : base+a.ways]
	want := tag<<slotTag | slotValid
	for i, w := range ss {
		if w&^uint64(slotDirty) == want {
			if write {
				w |= slotDirty
			}
			copy(ss[1:i+1], ss[:i])
			ss[0] = w
			return true, 0
		}
	}
	return false, 0
}

// Insert fills tag into set at the MRU way, evicting the LRU way. It
// returns the victim's tag and flags (victimValid false when the way was
// empty).
func (a *SetArray) Insert(set, tag uint64, write bool) (victimTag uint64, victimDirty, victimValid bool) {
	base := int(set) * a.ways
	ss := a.slots[base : base+a.ways]
	victimTag, victimDirty, victimValid = UnpackSlot(ss[a.ways-1])
	copy(ss[1:], ss[:a.ways-1])
	ss[0] = PackSlot(tag, write, true)
	return victimTag, victimDirty && victimValid, victimValid
}

// SnapshotTo serializes the array sparsely: cold sets stay all-zero for
// most of a run, so (index, word) pairs keep checkpoints proportional to
// the touched footprint, not the configured capacity.
func (a *SetArray) SnapshotTo(e *snap.Encoder) {
	n := 0
	for _, w := range a.slots {
		if w != 0 {
			n++
		}
	}
	e.U64(a.sets)
	e.U32(uint32(a.ways))
	e.U32(uint32(n))
	for i, w := range a.slots {
		if w != 0 {
			e.U32(uint32(i))
			e.U64(w)
		}
	}
}

// RestoreFrom reads the state written by SnapshotTo.
func (a *SetArray) RestoreFrom(d *snap.Decoder) error {
	sets := d.U64()
	ways := int(d.U32())
	n := int(d.U32())
	if d.Err() != nil {
		return d.Err()
	}
	if sets != a.sets || ways != a.ways {
		d.Invalid("set array shape %dx%d, snapshot has %dx%d", a.sets, a.ways, sets, ways)
		return d.Err()
	}
	clear(a.slots)
	for k := 0; k < n; k++ {
		i := d.U32()
		w := d.U64()
		if d.Err() != nil {
			return d.Err()
		}
		if int(i) >= len(a.slots) {
			d.Invalid("slot index %d out of range (%d slots)", i, len(a.slots))
			return d.Err()
		}
		a.slots[i] = w
	}
	return d.Err()
}

func snapshotStats(e *snap.Encoder, s Stats) {
	e.U64(s.Accesses)
	e.U64(s.Hits)
	e.U64(s.Misses)
	e.U64(s.Fills)
	e.U64(s.Writebacks)
	e.U64(s.TagProbes)
	e.U64(s.ProbeSkips)
	e.U64(s.WastedOff)
}

func restoreStats(d *snap.Decoder) Stats {
	var s Stats
	s.Accesses = d.U64()
	s.Hits = d.U64()
	s.Misses = d.U64()
	s.Fills = d.U64()
	s.Writebacks = d.U64()
	s.TagProbes = d.U64()
	s.ProbeSkips = d.U64()
	s.WastedOff = d.U64()
	return s
}
