package scheme

import (
	"heteromem/internal/core"
	"heteromem/internal/snap"
)

// Migrate is the paper's scheme — the on-package capacity is OS-visible
// memory managed by the N / N-1 / Live migration designs — refactored
// behind the Scheme interface as a pure delegation to core.Migrator. The
// controller drives the migrator through the exact code paths it always
// had, so the delegation is pinned byte-identical against the pre-scheme
// perf goldens; what this type adds is the uniform handle the sweep,
// report, and checkpoint layers use to treat "migrate" as one scheme among
// several.
//
// Mig is nil under static mapping (migration disabled), which is still the
// migrate scheme: the capacity is memory either way.
type Migrate struct {
	Mig *core.Migrator
}

// Kind implements Scheme.
func (m *Migrate) Kind() Kind { return KindMigrate }

// String implements Scheme.
func (m *Migrate) String() string { return "migrate" }

// Stats implements Scheme: the migration scheme has no cache engine, so
// its scheme-level stats are empty (migration activity reports through
// core.Stats as always).
func (m *Migrate) Stats() Stats { return Stats{} }

// SnapshotTo implements snap.Snapshotter by delegating to the migrator.
func (m *Migrate) SnapshotTo(e *snap.Encoder) {
	if m.Mig != nil {
		m.Mig.SnapshotTo(e)
	}
}

// RestoreFrom implements snap.Snapshotter by delegating to the migrator.
func (m *Migrate) RestoreFrom(d *snap.Decoder) error {
	if m.Mig != nil {
		return m.Mig.RestoreFrom(d)
	}
	return nil
}
