// Package check is the invariant auditor for the migration pipeline: it
// verifies, while a simulation runs, the structural guarantees the paper's
// designs depend on — the physical→machine mapping stays injective (no
// macro page is ever lost or duplicated), at most one page is parked in Ω,
// the N-1/Live designs keep exactly one empty slot when quiescent, and P
// bits never leak past the swap that set them.
//
// The auditor distinguishes two phases:
//
//   - AuditStep runs after every completed swap-step mutation, while a
//     swap may still be in flight. Transient states are legal here: the
//     empty slot can be filled, a P bit can be set, and a page's stale
//     copy can still sit in a slot the CAM no longer points at.
//   - AuditQuiescent runs when no swap is in flight (after each swap
//     completes and at flush). It additionally requires the empty slot
//     back in place, all P bits clear, and full RAM/CAM coherence.
//
// Failures return a *Violation carrying a compact table dump, so a broken
// swap plan produces a diagnosable error instead of silently wrong
// latencies downstream.
package check

import (
	"fmt"
	"strings"

	"heteromem/internal/core"
)

// Violation is a rich invariant-audit failure.
type Violation struct {
	Design core.Design
	Phase  string // "step" or "quiescent" or "exhaustive"
	Reason string
	Dump   string // compact rendering of the offending table state
}

// Error implements error.
func (v *Violation) Error() string {
	return fmt.Sprintf("check: %s audit failed (design %v): %s\n%s", v.Phase, v.Design, v.Reason, v.Dump)
}

// Auditor verifies the translation-table invariants of one migrator.
type Auditor struct {
	t      *core.Table
	design core.Design

	steps      uint64
	quiescents uint64
}

// New builds an auditor over the given table and design.
func New(t *core.Table, design core.Design) *Auditor {
	return &Auditor{t: t, design: design}
}

// Audits reports how many step-level and quiescent audits have run.
func (a *Auditor) Audits() (steps, quiescents uint64) { return a.steps, a.quiescents }

// AuditStep verifies the invariants that must hold at every swap-step
// boundary, including mid-swap.
func (a *Auditor) AuditStep() error {
	a.steps++
	return a.audit("step", false)
}

// AuditQuiescent verifies the stronger invariants that must hold whenever
// no swap is in flight.
func (a *Auditor) AuditQuiescent() error {
	a.quiescents++
	return a.audit("quiescent", true)
}

// audit runs the shared mapping checks; strict adds the quiescent-only ones.
func (a *Auditor) audit(phase string, strict bool) error {
	t := a.t
	n := t.Slots()
	omega := t.Omega()
	fail := func(format string, args ...interface{}) error {
		return &Violation{Design: a.design, Phase: phase, Reason: fmt.Sprintf(format, args...), Dump: a.dump()}
	}

	// Collect the pages whose translation can deviate from identity: every
	// page < N, plus every page resident in a slot (the CAM population).
	// All other pages (p >= N, not resident anywhere) translate to their
	// own off-package home, which is injective among themselves by
	// construction; collisions with that identity region are caught below.
	residents := make(map[uint64]int, n) // page -> slot holding it
	empties := 0
	for s := 0; uint64(s) < n; s++ {
		r := t.Resident(s)
		if t.Retired(s) {
			// A retired slot is permanently out of service: it must read
			// Empty and is excluded from empty-row accounting.
			if r != core.Empty {
				return fail("retired slot %d still holds %s", s, pageName(r))
			}
			continue
		}
		if r == core.Empty {
			empties++
			continue
		}
		if r >= t.TotalPages() {
			return fail("slot %d holds out-of-space page %d (total %d)", s, r, t.TotalPages())
		}
		if prev, dup := residents[r]; dup && strict {
			return fail("page %d resident in two slots (%d and %d)", r, prev, s)
		}
		if _, dup := residents[r]; !dup {
			residents[r] = s
		}
		// Weak CAM coherence (valid even mid-swap, when a stale copy of a
		// page may linger in its old slot): the CAM must point at *a* slot
		// that really holds the page.
		if r >= n {
			cam := t.SlotOf(r)
			if cam < 0 {
				return fail("migrated page %d resident in slot %d but absent from CAM", r, s)
			}
			if t.Resident(cam) != r {
				return fail("CAM maps page %d to slot %d which holds %s",
					r, cam, pageName(t.Resident(cam)))
			}
		}
	}

	// Injectivity of the deviating pages' translations, and validity of
	// each target. A target in the off-package identity range must itself
	// be a resident page (its home vacated by its own migration), or two
	// pages' data would share one machine page.
	target := make(map[uint64]uint64, uint64(len(residents))+n)
	omegaPages := 0
	audit1 := func(p uint64) error {
		machine, onPkg := t.MachinePage(p)
		if prev, dup := target[machine]; dup {
			return fail("pages %d and %d both translate to machine page %d", prev, p, machine)
		}
		target[machine] = p
		switch {
		case machine == omega:
			omegaPages++
			if a.design == core.DesignN {
				return fail("page %d translates to Ω under the N design (no Ω exists)", p)
			}
			if omegaPages > 1 {
				return fail("more than one page translates to Ω (page %d is the second)", p)
			}
			if onPkg {
				return fail("page %d translates to Ω but is reported on-package", p)
			}
		case machine < n:
			if !onPkg {
				return fail("page %d translates to slot %d but is reported off-package", p, machine)
			}
		case machine < t.TotalPages():
			if onPkg {
				return fail("page %d translates to off-package home %d but is reported on-package", p, machine)
			}
			if _, ok := residents[machine]; !ok && machine != p {
				return fail("page %d translates to home of page %d, which still owns it (page %d is not migrated)",
					p, machine, machine)
			}
		case machine > omega && machine <= omega+t.Spares():
			// Spare frames past Ω hold exiled pages (fault retirement).
			if spare, ok := t.ExiledTo(p); !ok || spare != machine {
				return fail("page %d translates to spare frame %d without being exiled there", p, machine)
			}
			if onPkg {
				return fail("exiled page %d reported on-package", p)
			}
		default:
			return fail("page %d translates to invalid machine page %d", p, machine)
		}
		return nil
	}
	for p := uint64(0); p < n; p++ {
		if err := audit1(p); err != nil {
			return err
		}
	}
	for p := range residents {
		if p < n {
			continue // already audited above
		}
		if err := audit1(p); err != nil {
			return err
		}
	}

	// P bits exist only on rows < N; pending rows must be routed to Ω.
	pendingRows := 0
	for p := uint64(0); p < n; p++ {
		if !t.Pending(p) {
			continue
		}
		pendingRows++
		if m, _ := t.MachinePage(p); m != omega {
			return fail("row %d has P set but translates to %d, not Ω", p, m)
		}
	}

	if !strict {
		return nil
	}

	// Quiescent-only invariants.
	if pendingRows != 0 {
		return fail("%d P bit(s) still set with no swap in flight (P bits must not leak across epochs)", pendingRows)
	}
	switch a.design {
	case core.DesignN:
		if empties != 0 || t.EmptyRow() >= 0 {
			return fail("N design has %d empty slot(s) (emptyRow=%d); it must use all N", empties, t.EmptyRow())
		}
		if omegaPages != 0 {
			return fail("N design parked a page in Ω")
		}
	default: // N-1 and Live sacrifice one slot
		if t.EmptyRow() < 0 {
			// Legal only after the empty slot itself was retired: the table
			// keeps no spare room, the former Ghost page stays parked in Ω,
			// and migration is structurally over (the controller degrades).
			if t.RetiredSlots() == 0 {
				return fail("design %v must keep exactly one empty slot when quiescent, found %d (emptyRow=-1 with no retired slot to explain it)",
					a.design, empties)
			}
			if empties != 0 {
				return fail("design %v has emptyRow=-1 but %d live empty slot(s)", a.design, empties)
			}
			if omegaPages == 1 {
				ghost := target[omega]
				if !t.Retired(int(ghost)) {
					return fail("Ω holds page %d but its slot is not retired (no empty row to justify a Ghost)", ghost)
				}
			}
			break
		}
		if empties != 1 {
			return fail("design %v must keep exactly one empty slot when quiescent, found %d (emptyRow=%d)",
				a.design, empties, t.EmptyRow())
		}
		if omegaPages != 1 {
			return fail("design %v must park exactly the Ghost page in Ω when quiescent, found %d", a.design, omegaPages)
		}
		if ghost, ok := target[omega]; !ok || ghost != uint64(t.EmptyRow()) {
			return fail("Ω holds page %d but the empty row is %d (the Ghost must be the empty row's page)",
				target[omega], t.EmptyRow())
		}
	}
	// Full RAM/CAM coherence only holds with no swap mid-flight.
	if err := t.CheckInvariants(); err != nil {
		return fail("table self-check: %v", err)
	}
	return nil
}

// AuditExhaustive walks every program-addressable page (O(TotalPages))
// and verifies the whole translation is injective into the machine space.
// It is the brute-force oracle the structural audits are checked against
// in tests; production runs use AuditStep/AuditQuiescent.
func (a *Auditor) AuditExhaustive() error {
	t := a.t
	omega := t.Omega()
	seen := make(map[uint64]uint64, t.TotalPages())
	for p := uint64(0); p < t.TotalPages(); p++ {
		machine, _ := t.MachinePage(p)
		if machine > omega+t.Spares() {
			return &Violation{Design: a.design, Phase: "exhaustive",
				Reason: fmt.Sprintf("page %d translates past the spare frames to %d", p, machine), Dump: a.dump()}
		}
		if prev, dup := seen[machine]; dup {
			return &Violation{Design: a.design, Phase: "exhaustive",
				Reason: fmt.Sprintf("pages %d and %d both translate to machine page %d", prev, p, machine),
				Dump:   a.dump()}
		}
		seen[machine] = p
	}
	return nil
}

// dump renders the interesting table state: the empty row, pending rows,
// and every slot whose resident deviates from the identity mapping. Output
// is capped so a huge table cannot flood an error message.
func (a *Auditor) dump() string {
	const maxLines = 24
	t := a.t
	var b strings.Builder
	fmt.Fprintf(&b, "  table: N=%d total=%d Ω=%d emptyRow=%d\n", t.Slots(), t.TotalPages(), t.Omega(), t.EmptyRow())
	lines := 0
	for s := 0; uint64(s) < t.Slots(); s++ {
		r := t.Resident(s)
		deviates := r == core.Empty || r != uint64(s)
		pending := uint64(s) < t.Slots() && t.Pending(uint64(s))
		if !deviates && !pending {
			continue
		}
		if lines >= maxLines {
			b.WriteString("  ...\n")
			break
		}
		lines++
		fmt.Fprintf(&b, "  row %d: resident=%s class(row-page)=%v", s, pageName(r), t.Classify(uint64(s)))
		if pending {
			b.WriteString(" P=1")
		}
		if t.Retired(s) {
			b.WriteString(" retired")
		}
		b.WriteByte('\n')
	}
	return strings.TrimRight(b.String(), "\n")
}

// pageName renders a page ID, naming the Empty sentinel.
func pageName(p uint64) string {
	if p == core.Empty {
		return "Empty"
	}
	return fmt.Sprintf("page %d", p)
}
