package check

import (
	"strings"
	"testing"

	"heteromem/internal/core"
)

func newN1(t *testing.T) *core.Table {
	t.Helper()
	tab, err := core.NewTable(8, 32, true)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestFreshTablesPass(t *testing.T) {
	for _, tc := range []struct {
		design    core.Design
		sacrifice bool
	}{
		{core.DesignN, false},
		{core.DesignN1, true},
		{core.DesignLive, true},
	} {
		tab, err := core.NewTable(8, 32, tc.sacrifice)
		if err != nil {
			t.Fatal(err)
		}
		a := New(tab, tc.design)
		if err := a.AuditStep(); err != nil {
			t.Fatalf("%v fresh step audit: %v", tc.design, err)
		}
		if err := a.AuditQuiescent(); err != nil {
			t.Fatalf("%v fresh quiescent audit: %v", tc.design, err)
		}
		if err := a.AuditExhaustive(); err != nil {
			t.Fatalf("%v fresh exhaustive audit: %v", tc.design, err)
		}
		if s, q := a.Audits(); s != 1 || q != 1 {
			t.Fatalf("audit counts = %d,%d", s, q)
		}
	}
}

func TestMidSwapStateLegalOnlyAtStepLevel(t *testing.T) {
	// Promote page 20 into the empty slot and set its row's P bit — the
	// exact state after step 1 of Fig. 8 case (a). Legal mid-swap, illegal
	// quiescent (empty slot consumed, P bit set).
	tab := newN1(t)
	er := tab.EmptyRow()
	if err := tab.Install(er, 20); err != nil {
		t.Fatal(err)
	}
	tab.SetPending(uint64(er), true)
	a := New(tab, core.DesignN1)
	if err := a.AuditStep(); err != nil {
		t.Fatalf("step audit rejected a legal mid-swap state: %v", err)
	}
	if err := a.AuditQuiescent(); err == nil {
		t.Fatal("quiescent audit accepted a mid-swap state")
	}
	if err := a.AuditExhaustive(); err != nil {
		t.Fatalf("exhaustive audit rejected an injective mid-swap state: %v", err)
	}
}

func TestPendingBitLeakDetected(t *testing.T) {
	// A P bit left set while the ghost also parks in Ω means two pages map
	// to Ω: both audit levels must reject it, and the quiescent audit
	// names the leak.
	tab := newN1(t)
	tab.SetPending(2, true)
	a := New(tab, core.DesignN1)
	if err := a.AuditStep(); err == nil {
		t.Fatal("step audit missed double-parking in Ω")
	}
	err := a.AuditQuiescent()
	if err == nil {
		t.Fatal("quiescent audit missed a leaked P bit")
	}
	v, ok := err.(*Violation)
	if !ok {
		t.Fatalf("error type %T, want *Violation", err)
	}
	if v.Phase != "quiescent" || v.Dump == "" {
		t.Fatalf("violation lacks context: %+v", v)
	}
	if err := a.AuditExhaustive(); err == nil {
		t.Fatal("exhaustive audit missed the Ω collision")
	}
}

func TestOmegaForbiddenUnderN(t *testing.T) {
	tab, err := core.NewTable(8, 32, false)
	if err != nil {
		t.Fatal(err)
	}
	tab.SetPending(3, true) // routes page 3 to Ω, which the N design lacks
	a := New(tab, core.DesignN)
	err = a.AuditStep()
	if err == nil || !strings.Contains(err.Error(), "N design") {
		t.Fatalf("step audit under N: %v", err)
	}
}

func TestConsumedEmptySlotFailsQuiescent(t *testing.T) {
	// Promoting a page into the empty slot without finishing the swap is a
	// legal transient but not a legal resting state for N-1/Live.
	tab := newN1(t)
	if err := tab.Install(tab.EmptyRow(), 21); err != nil {
		t.Fatal(err)
	}
	a := New(tab, core.DesignLive)
	if err := a.AuditStep(); err != nil {
		t.Fatalf("step audit: %v", err)
	}
	err := a.AuditQuiescent()
	if err == nil || !strings.Contains(err.Error(), "exactly one empty slot") {
		t.Fatalf("quiescent audit: %v", err)
	}
}

func TestDoubleVacateDetected(t *testing.T) {
	// Two empty slots mean two Ghost pages fighting over Ω: data loss.
	tab := newN1(t)
	if err := tab.Vacate(2); err != nil {
		t.Fatal(err)
	}
	a := New(tab, core.DesignN1)
	if err := a.AuditStep(); err == nil {
		t.Fatal("step audit missed two pages parked in Ω")
	}
	if err := a.AuditExhaustive(); err == nil {
		t.Fatal("exhaustive audit missed the Ω collision")
	}
}

func TestMigratedStatePasses(t *testing.T) {
	// A settled post-swap state — MF pages in foreign slots, their MS
	// partners re-homed, Ghost in Ω — is exactly what the audits must
	// accept at every level.
	tab := newN1(t)
	for s, p := range map[int]uint64{0: 20, 3: 22, 5: 30} {
		if err := tab.Install(s, p); err != nil {
			t.Fatal(err)
		}
	}
	a := New(tab, core.DesignN1)
	if err := a.AuditStep(); err != nil {
		t.Fatalf("step audit rejected a consistent migrated state: %v", err)
	}
	if err := a.AuditExhaustive(); err != nil {
		t.Fatalf("exhaustive audit rejected a consistent migrated state: %v", err)
	}
	if err := a.AuditQuiescent(); err != nil {
		t.Fatalf("quiescent audit rejected a consistent migrated state: %v", err)
	}
}

func TestViolationDumpIsBounded(t *testing.T) {
	tab, err := core.NewTable(64, 256, true)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 40; s++ {
		if err := tab.Install(s, uint64(64+s)); err != nil {
			t.Fatal(err)
		}
	}
	tab.SetPending(1, true)
	a := New(tab, core.DesignN1)
	verr := a.AuditQuiescent()
	if verr == nil {
		t.Fatal("expected violation")
	}
	if n := strings.Count(verr.Error(), "\n"); n > 30 {
		t.Fatalf("dump not bounded: %d lines", n)
	}
}
